// Package surfbless is a cycle-accurate reproduction of "Surf-Bless: A
// Confined-interference Routing for Energy-Efficient Communication in
// NoCs" (DAC 2019).
//
// It provides the four 8×8-mesh network-on-chip models the paper
// compares — the WH wormhole baseline, the BLESS bufferless baseline,
// the Surf (SurfNoC-style) confined-interference network and the
// paper's Surf-Bless (SB) — two related-work extensions (CHIPPER and
// RUNAHEAD), plus the substrates the paper's evaluation runs on:
// synthetic traffic generators, a DSENT-like energy model, and a
// 64-core MESI cache-coherence full-system simulator with nine
// PARSEC-like application profiles.
//
// Two entry points cover the paper's two evaluation styles:
//
//   - RunSynthetic drives a network with open-loop synthetic traffic
//     (the §5.1 experiments: non-interference, energy vs domains,
//     latency vs load), and
//   - RunSystem boots the full-system simulator and measures application
//     execution time, packet latency and NoC energy (the §5.2
//     experiments).
//
// The exported names are aliases of the implementation packages under
// internal/, so the documented methods on Config, Result etc. are
// available through this package.  See DESIGN.md for the system map and
// EXPERIMENTS.md for the paper-vs-measured record.
package surfbless

import (
	"surfbless/internal/config"
	"surfbless/internal/cpu"
	"surfbless/internal/experiments"
	"surfbless/internal/power"
	"surfbless/internal/sim"
	"surfbless/internal/system"
	"surfbless/internal/traffic"
	"surfbless/internal/wave"
)

// Model selects the router microarchitecture.
type Model = config.Model

// The four networks of the paper's evaluation.
const (
	WH    = config.WH    // wormhole VC baseline
	BLESS = config.BLESS // bufferless deflection baseline
	Surf  = config.Surf  // confined interference with per-domain VCs
	SB    = config.SB    // Surf-Bless: confined interference, bufferless
	// CHIPPER is the permutation-network bufferless router of the
	// paper's related work [10], built as an extension.
	CHIPPER = config.CHIPPER
	// RUNAHEAD is the dropping single-cycle bufferless network of the
	// paper's related work [11], built as an extension.
	RUNAHEAD = config.RUNAHEAD
)

// Config is the full parameter set (Table 1 defaults via DefaultConfig).
type Config = config.Config

// DefaultConfig returns the paper's Table-1 configuration for a model.
func DefaultConfig(m Model) Config { return config.Default(m) }

// Pattern selects a synthetic destination distribution.
type Pattern = traffic.Pattern

// Synthetic traffic patterns.
const (
	UniformRandom = traffic.UniformRandom // the paper's pattern
	Transpose     = traffic.Transpose
	BitComplement = traffic.BitComplement
	Hotspot       = traffic.Hotspot
)

// Source describes one domain's injection process.
type Source = traffic.Source

// SimOptions configures a synthetic run (see sim.Options).
type SimOptions = sim.Options

// SimResult is a synthetic run's outcome (see sim.Result).
type SimResult = sim.Result

// RunSynthetic executes one synthetic-traffic simulation.
func RunSynthetic(o SimOptions) (SimResult, error) { return sim.Run(o) }

// Profile is one synthetic application (see cpu.Profile).
type Profile = cpu.Profile

// Applications returns the nine PARSEC-like profiles of §5.2.
func Applications() []Profile { return cpu.Profiles() }

// Application returns the named profile.
func Application(name string) (Profile, error) { return cpu.ProfileByName(name) }

// SystemOptions configures a full-system run (see system.Options).
type SystemOptions = system.Options

// SystemResult is a full-system run's outcome (see system.Result).
type SystemResult = system.Result

// RunSystem executes one full-system (cores + MESI + NoC) simulation.
func RunSystem(o SystemOptions) (SystemResult, error) { return system.Run(o) }

// Energy is a NoC energy report in the paper's breakdown.
type Energy = power.Energy

// PowerCoefficients parameterizes the energy model.
type PowerCoefficients = power.Coefficients

// DefaultPowerCoefficients returns the calibrated 45 nm-flavoured model.
func DefaultPowerCoefficients() PowerCoefficients { return power.Default45nm() }

// WaveSchedule is the paper's core scheduling structure (Section 4):
// three per-router sub-wave counters realizing the repetitive wave
// pattern, exposed for research on wave-based scheduling.
type WaveSchedule = wave.Schedule

// WaveDecoder maps wave indices to interference domains.
type WaveDecoder = wave.Decoder

// ExperimentScale sizes the figure-reproduction harnesses.
type ExperimentScale = experiments.Scale

// Experiment scales: Tiny for tests, Quick for benchmarks, Full near
// the paper's operating points.
var (
	TinyScale  = experiments.Tiny
	QuickScale = experiments.Quick
	FullScale  = experiments.Full
)
