package surfbless_test

import (
	"fmt"
	"log"

	"surfbless"
	"surfbless/internal/packet"
)

// ExampleRunSynthetic shows the paper's headline property: the victim
// domain's delivered-packet statistics do not change when another
// domain floods the network.
func ExampleRunSynthetic() {
	victim := func(interference float64) int64 {
		cfg := surfbless.DefaultConfig(surfbless.SB)
		cfg.Domains = 2
		res, err := surfbless.RunSynthetic(surfbless.SimOptions{
			Cfg:     cfg,
			Pattern: surfbless.UniformRandom,
			Sources: []surfbless.Source{
				{Rate: 0.05, Class: packet.Ctrl, VNet: -1},
				{Rate: interference, Class: packet.Ctrl, VNet: -1},
			},
			Warmup: 500, Measure: 2000, Drain: 20000,
			Seed: 7,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res.Domains[0].TotalLatencySum
	}
	quiet, loud := victim(0), victim(0.2)
	fmt.Println("victim latency identical under interference:", quiet == loud)
	// Output:
	// victim latency identical under interference: true
}

// ExampleRunSystem runs the §5.2 full-system simulator: 64 cores, MESI
// coherence, multi-class packets over Surf-Bless domains.
func ExampleRunSystem() {
	app, err := surfbless.Application("swaptions")
	if err != nil {
		log.Fatal(err)
	}
	res, err := surfbless.RunSystem(surfbless.SystemOptions{
		Model:        surfbless.SB,
		App:          app,
		InstrPerCore: 1000,
		Seed:         3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("finished:", res.Finished)
	fmt.Println("all three virtual networks carried traffic:",
		res.VNets[0].Ejected > 0 && res.VNets[1].Ejected > 0 && res.VNets[2].Ejected > 0)
	// Output:
	// finished: true
	// all three virtual networks carried traffic: true
}

// ExampleDefaultConfig shows the Table-1 derived quantities.
func ExampleDefaultConfig() {
	cfg := surfbless.DefaultConfig(surfbless.SB)
	fmt.Printf("mesh %dx%d, hop delay P=%d, Smax=%d waves\n",
		cfg.Width, cfg.Height, cfg.HopDelay(), cfg.Smax())
	// Output:
	// mesh 8x8, hop delay P=3, Smax=42 waves
}
