//go:build race

package surfbless_test

// raceEnabled reports whether the race detector instruments this
// build; its allocation bookkeeping breaks exact allocs-per-op
// assertions, so the zero-alloc guards skip themselves under -race.
const raceEnabled = true
