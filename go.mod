module surfbless

go 1.22
