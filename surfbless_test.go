package surfbless_test

import (
	"testing"

	"surfbless"
	"surfbless/internal/packet"
)

// The public API must carry a complete §5.1-style run end to end.
func TestPublicSyntheticAPI(t *testing.T) {
	cfg := surfbless.DefaultConfig(surfbless.SB)
	cfg.Domains = 2
	res, err := surfbless.RunSynthetic(surfbless.SimOptions{
		Cfg:     cfg,
		Pattern: surfbless.UniformRandom,
		Sources: []surfbless.Source{
			{Rate: 0.03, Class: packet.Ctrl, VNet: -1},
			{Rate: 0.03, Class: packet.Ctrl, VNet: -1},
		},
		Warmup: 200, Measure: 1500, Drain: 10000,
		Seed: 3, AuditEvery: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.Ejected == 0 || res.LeftInFlight != 0 {
		t.Fatalf("synthetic run broken: %+v", res.Total)
	}
	if res.Throughput(0) <= 0 {
		t.Error("zero victim throughput")
	}
}

// …and a §5.2-style full-system run.
func TestPublicSystemAPI(t *testing.T) {
	app, err := surfbless.Application("swaptions")
	if err != nil {
		t.Fatal(err)
	}
	res, err := surfbless.RunSystem(surfbless.SystemOptions{
		Model:        surfbless.SB,
		App:          app,
		InstrPerCore: 1200,
		Seed:         5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished || res.ExecCycles < 1200 {
		t.Fatalf("system run broken: %+v", res)
	}
	if res.Energy.Total() <= 0 {
		t.Error("no energy accounted")
	}
}

func TestApplications(t *testing.T) {
	apps := surfbless.Applications()
	if len(apps) != 9 {
		t.Fatalf("%d applications, want 9", len(apps))
	}
	if _, err := surfbless.Application("nope"); err == nil {
		t.Error("unknown application accepted")
	}
}

func TestModelsExported(t *testing.T) {
	for _, m := range []surfbless.Model{surfbless.WH, surfbless.BLESS, surfbless.Surf, surfbless.SB} {
		if err := surfbless.DefaultConfig(m).Validate(); err != nil {
			t.Errorf("%v default config invalid: %v", m, err)
		}
	}
	if !surfbless.SB.ConfinedInterference() || !surfbless.SB.Bufferless() {
		t.Error("SB must be confined-interference and bufferless")
	}
}

func TestPowerCoefficientsExported(t *testing.T) {
	co := surfbless.DefaultPowerCoefficients()
	if co.BufferSlot <= 0 || co.LinkTraversal <= 0 {
		t.Error("default coefficients empty")
	}
}

func TestScalesExported(t *testing.T) {
	for _, f := range []func() surfbless.ExperimentScale{
		surfbless.TinyScale, surfbless.QuickScale, surfbless.FullScale,
	} {
		if err := f().Validate(); err != nil {
			t.Errorf("scale invalid: %v", err)
		}
	}
}
