// Benchmarks: one per table/figure of the paper's evaluation (each
// iteration regenerates the figure's data at the Tiny scale and reports
// the headline quantities via b.ReportMetric), plus ablation and
// micro-benchmarks of the simulator itself.
//
// Run a single figure with e.g.
//
//	go test -bench=BenchmarkFig6 -benchtime=1x
//
// Timings stay honest: TestMain pins the experiments result cache off,
// so every iteration performs real simulations even if some earlier
// test or harness installed a cache in the same process.
package surfbless_test

import (
	"os"
	"sort"
	"testing"
	"time"

	"surfbless"
	"surfbless/internal/config"
	"surfbless/internal/experiments"
	"surfbless/internal/network"
	"surfbless/internal/packet"
	"surfbless/internal/power"
	"surfbless/internal/probe"
	"surfbless/internal/sim"
	"surfbless/internal/stats"
	"surfbless/internal/system"
	"surfbless/internal/traffic"
)

// TestMain keeps the benchmarks cache-free: cached figure
// regeneration would report the cost of a map lookup, not of the
// simulator.
func TestMain(m *testing.M) {
	experiments.SetCache(nil)
	os.Exit(m.Run())
}

// BenchmarkTable1Config regenerates Table 1 from the live configuration.
func BenchmarkTable1Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Table1()
		if t.Rows() < 11 {
			b.Fatal("Table 1 incomplete")
		}
	}
}

// BenchmarkFig5aInterferenceLatency reproduces Fig. 5(a): the victim
// domain's latency under rising interference on BLESS vs SB.
func BenchmarkFig5aInterferenceLatency(b *testing.B) {
	var r experiments.Fig5Result
	var err error
	for i := 0; i < b.N; i++ {
		if r, err = experiments.Fig5(experiments.Tiny()); err != nil {
			b.Fatal(err)
		}
	}
	last := len(r.Rates) - 1
	b.ReportMetric(r.SBLatency[last]-r.SBLatency[0], "SB_latency_drift_cycles")
	b.ReportMetric(r.BLESSLatency[last]-r.BLESSLatency[0], "BLESS_latency_drift_cycles")
}

// BenchmarkFig5bInterferenceThroughput reproduces Fig. 5(b).
func BenchmarkFig5bInterferenceThroughput(b *testing.B) {
	var r experiments.Fig5Result
	var err error
	for i := 0; i < b.N; i++ {
		if r, err = experiments.Fig5(experiments.Tiny()); err != nil {
			b.Fatal(err)
		}
	}
	last := len(r.Rates) - 1
	b.ReportMetric(r.SBThroughput[last]/r.SBThroughput[0], "SB_throughput_ratio")
	b.ReportMetric(r.BLESSThroughput[last]/r.BLESSThroughput[0], "BLESS_throughput_ratio")
}

// BenchmarkFig6EnergyDomains reproduces Fig. 6: energy vs domain count
// for WH, BLESS, Surf(D) and SB(D).
func BenchmarkFig6EnergyDomains(b *testing.B) {
	var r experiments.Fig6Result
	var err error
	for i := 0; i < b.N; i++ {
		if r, err = experiments.Fig6(experiments.Tiny()); err != nil {
			b.Fatal(err)
		}
	}
	var surf9, sb9 float64
	for _, row := range r.Rows {
		if row.Label == "Surf 9_D" {
			surf9 = row.Energy.Total()
		}
		if row.Label == "SB 9_D" {
			sb9 = row.Energy.Total()
		}
	}
	b.ReportMetric(sb9/surf9, "SB9_over_Surf9_energy")
}

// BenchmarkFig7aLatencySB reproduces Fig. 7(a): SB latency vs load
// across domain counts (D_1 = BLESS).
func BenchmarkFig7aLatencySB(b *testing.B) {
	var r experiments.Fig7Result
	var err error
	for i := 0; i < b.N; i++ {
		if r, err = experiments.Fig7Domains(experiments.Tiny(), []int{1, 2, 3, 4, 6, 9}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.A[1].Latency[1], "D2_latency_low_load")
	b.ReportMetric(r.A[3].Latency[1], "D4_latency_low_load")
}

// BenchmarkFig7bLatencySurf reproduces Fig. 7(b): Surf latency vs load
// across domain counts (D_1 = WH).
func BenchmarkFig7bLatencySurf(b *testing.B) {
	var r experiments.Fig7Result
	var err error
	for i := 0; i < b.N; i++ {
		if r, err = experiments.Fig7Domains(experiments.Tiny(), []int{1, 2, 4, 9}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.B[0].Latency[1], "WH_latency_low_load")
	b.ReportMetric(r.B[3].Latency[1], "D9_latency_low_load")
}

// appsOnce caches the §5.2 matrix so Figs. 8, 9 and 10 share one run
// set per benchmark invocation.
func appsRun(b *testing.B) experiments.AppsResult {
	b.Helper()
	r, err := experiments.Apps(experiments.Tiny())
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkFig8ExecutionTime reproduces Fig. 8: per-application
// execution time on WH, Surf and SB.
func BenchmarkFig8ExecutionTime(b *testing.B) {
	var r experiments.AppsResult
	for i := 0; i < b.N; i++ {
		r = appsRun(b)
	}
	b.ReportMetric(r.SBExecPenalty()*100, "SB_exec_penalty_%")
}

// BenchmarkFig9PacketLatency reproduces Fig. 9: the queue/network
// latency breakdown normalized to WH.
func BenchmarkFig9PacketLatency(b *testing.B) {
	var r experiments.AppsResult
	for i := 0; i < b.N; i++ {
		r = appsRun(b)
	}
	// Mean SB total latency relative to WH across apps.
	var sum float64
	for _, app := range r.Apps {
		sum += r.Runs[app][config.SB].Total.AvgTotalLatency() /
			r.Runs[app][config.WH].Total.AvgTotalLatency()
	}
	b.ReportMetric(sum/float64(len(r.Apps)), "SB_latency_vs_WH")
}

// BenchmarkFig10AppEnergy reproduces Fig. 10: per-application NoC
// energy breakdown.
func BenchmarkFig10AppEnergy(b *testing.B) {
	var r experiments.AppsResult
	for i := 0; i < b.N; i++ {
		r = appsRun(b)
	}
	b.ReportMetric(r.SBEnergySaving()*100, "SB_energy_saving_%")
}

// --- Ablation benches (design choices called out in DESIGN.md) ---

// BenchmarkAblationWaveSets compares the tuned worm-window placement
// against the paper's literal sets.
func BenchmarkAblationWaveSets(b *testing.B) {
	var rows []experiments.WaveSetRow
	var err error
	for i := 0; i < b.N; i++ {
		if rows, err = experiments.AblationWaveSets(experiments.Tiny()); err != nil {
			b.Fatal(err)
		}
	}
	var ratio float64
	for _, r := range rows {
		ratio += float64(r.PaperExec) / float64(r.TunedExec)
	}
	b.ReportMetric(ratio/float64(len(rows)), "paper_sets_exec_ratio")
}

// BenchmarkAblationRouting compares §4.3 Step-2 variants.
func BenchmarkAblationRouting(b *testing.B) {
	var rows []experiments.RoutingRow
	var err error
	for i := 0; i < b.N; i++ {
		if rows, err = experiments.AblationRouting(experiments.Tiny()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[1].Deflections-rows[0].Deflections, "noYX_extra_deflections")
}

// BenchmarkAblationMeshSweep measures SB across mesh sizes (Smax law).
func BenchmarkAblationMeshSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationMeshSweep(experiments.Tiny()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Micro-benchmarks of the simulator core ---

func benchFabricCycles(b *testing.B, model config.Model) {
	benchFabric(b, model, false)
}

// benchWarmup is the unmeasured lead-in that grows every scratch
// buffer, link queue and free-list slot to working capacity, so the
// timed loop measures pure steady-state stepping (DESIGN.md §12).
const benchWarmup = 3000

// benchFabric drives one fabric for b.N cycles after a warm-up, with
// the packet free list armed (except RUNAHEAD, which cannot recycle);
// allocs/op is reported and expected to be 0 — TestStepNoAlloc asserts
// the same property exactly.  With probed set it arms an interval
// probe first, so the *Probed variants measure the observability
// layer's hot-path overhead against their plain twins (the probe-off
// path must stay within noise of the seed timings).
func benchFabric(b *testing.B, model config.Model, probed bool) {
	cfg := config.Default(model)
	cfg.Domains = 2
	col := stats.NewCollector(2, 0, 0)
	meter := power.NewMeter(cfg, power.Default45nm())
	fl := &packet.FreeList{}
	var sink network.Sink
	if model != config.RUNAHEAD {
		sink = func(_ int, p *packet.Packet, _ int64) { fl.Put(p) }
	}
	fab, err := sim.BuildFabric(cfg, nil, sink, col, meter)
	if err != nil {
		b.Fatal(err)
	}
	var p *probe.Probe
	if probed {
		p = &probe.Probe{}
		p.Arm(probe.Config{Mesh: cfg.Mesh(), Domains: 2, Every: 100, WarmupEnd: 0, MeasureEnd: benchWarmup + int64(b.N)})
		col.SetProbe(p)
		if ps, ok := fab.(interface{ SetProbe(*probe.Probe) }); ok {
			ps.SetProbe(p)
		}
	}
	gen := traffic.New(cfg.Mesh(), traffic.UniformRandom, []traffic.Source{
		{Rate: 0.025, Class: packet.Ctrl, VNet: -1},
		{Rate: 0.025, Class: packet.Ctrl, VNet: -1},
	}, 1)
	if sink != nil {
		gen.SetFreeList(fl)
	}
	now := int64(0)
	for ; now < benchWarmup; now++ {
		gen.Tick(fab, now)
		fab.Step(now)
		if probed {
			p.Tick(now, fab.InFlight())
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for end := now + int64(b.N); now < end; now++ {
		gen.Tick(fab, now)
		fab.Step(now)
		if probed {
			p.Tick(now, fab.InFlight())
		}
	}
	b.ReportMetric(float64(cfg.Nodes()), "routers/cycle")
}

// BenchmarkStepSB measures simulated SB cycles per second at 0.05 load.
func BenchmarkStepSB(b *testing.B) { benchFabricCycles(b, config.SB) }

// BenchmarkStepBLESS measures simulated BLESS cycles per second.
func BenchmarkStepBLESS(b *testing.B) { benchFabricCycles(b, config.BLESS) }

// BenchmarkStepWH measures simulated WH cycles per second.
func BenchmarkStepWH(b *testing.B) { benchFabricCycles(b, config.WH) }

// BenchmarkStepSurf measures simulated Surf cycles per second.
func BenchmarkStepSurf(b *testing.B) { benchFabricCycles(b, config.Surf) }

// BenchmarkStepSBProbed is BenchmarkStepSB with a 100-cycle interval
// probe armed, collecting time series and heatmaps while stepping.
func BenchmarkStepSBProbed(b *testing.B) { benchFabric(b, config.SB, true) }

// BenchmarkStepBLESSProbed is BenchmarkStepBLESS with a probe armed.
func BenchmarkStepBLESSProbed(b *testing.B) { benchFabric(b, config.BLESS, true) }

// BenchmarkStepWHProbed is BenchmarkStepWH with a probe armed.
func BenchmarkStepWHProbed(b *testing.B) { benchFabric(b, config.WH, true) }

// BenchmarkStepSurfProbed is BenchmarkStepSurf with a probe armed.
func BenchmarkStepSurfProbed(b *testing.B) { benchFabric(b, config.Surf, true) }

// benchFabricGiant drives one fabric on a 32×32 mesh (16× the paper's
// node count) for b.N cycles after the standard warm-up, optionally
// stepping the mesh as parallel tiles.  The sharded entries are the
// wall-clock counterpart of the bit-identity gate (`make bench-shard`,
// DESIGN.md §17): same schedule, measured instead of compared.
func benchFabricGiant(b *testing.B, model config.Model, shards int) {
	cfg := config.Default(model)
	cfg.Width, cfg.Height = 32, 32
	cfg.Domains = 2
	col := stats.NewCollector(2, 0, 0)
	meter := power.NewMeter(cfg, power.Default45nm())
	fl := &packet.FreeList{}
	sink := network.Sink(func(_ int, p *packet.Packet, _ int64) { fl.Put(p) })
	fab, err := sim.BuildFabric(cfg, nil, sink, col, meter)
	if err != nil {
		b.Fatal(err)
	}
	if shards > 1 {
		ss, ok := fab.(interface {
			SetShards(int) error
			StopShards()
		})
		if !ok {
			b.Fatalf("%v fabric has no sharded stepping", model)
		}
		if err := ss.SetShards(shards); err != nil {
			b.Fatal(err)
		}
		defer ss.StopShards()
	}
	gen := traffic.New(cfg.Mesh(), traffic.UniformRandom, []traffic.Source{
		{Rate: 0.025, Class: packet.Ctrl, VNet: -1},
		{Rate: 0.025, Class: packet.Ctrl, VNet: -1},
	}, 1)
	gen.SetFreeList(fl)
	now := int64(0)
	for ; now < benchWarmup; now++ {
		gen.Tick(fab, now)
		fab.Step(now)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for end := now + int64(b.N); now < end; now++ {
		gen.Tick(fab, now)
		fab.Step(now)
	}
	b.ReportMetric(float64(cfg.Nodes()), "routers/cycle")
}

// BenchmarkStepSBGiant measures serial SB stepping at 32×32.
func BenchmarkStepSBGiant(b *testing.B) { benchFabricGiant(b, config.SB, 1) }

// BenchmarkStepSBGiantSharded is BenchmarkStepSBGiant on four tiles.
func BenchmarkStepSBGiantSharded(b *testing.B) { benchFabricGiant(b, config.SB, 4) }

// BenchmarkStepWHGiant measures serial WH stepping at 32×32.
func BenchmarkStepWHGiant(b *testing.B) { benchFabricGiant(b, config.WH, 1) }

// BenchmarkStepWHGiantSharded is BenchmarkStepWHGiant on four tiles.
func BenchmarkStepWHGiantSharded(b *testing.B) { benchFabricGiant(b, config.WH, 4) }

// BenchmarkStepSurfGiant measures serial Surf stepping at 32×32.
func BenchmarkStepSurfGiant(b *testing.B) { benchFabricGiant(b, config.Surf, 1) }

// BenchmarkStepSurfGiantSharded is BenchmarkStepSurfGiant on four tiles.
func BenchmarkStepSurfGiantSharded(b *testing.B) { benchFabricGiant(b, config.Surf, 4) }

// benchStepOverhead measures the probe's hot-path cost as a ratio: it
// builds twin rigs — one probed, one not — and steps them in
// alternating short chunks, reporting the median per-pair
// probed/unprobed wall-time as the "probed/unprobed" metric.  Timing
// both sides within the same few milliseconds cancels the machine-level
// drift (frequency scaling, noisy neighbours) that makes ratios of two
// independently timed benchmarks useless for a 10% budget; the median
// over many pairs discards the chunks a descheduling spike lands in.
// `make probe-overhead` gates on this metric via benchjson.
func benchStepOverhead(b *testing.B, model config.Model) {
	const chunk = 500 // cycles per timed slice: ~ms, well under drift timescales
	type rig struct {
		fab network.Fabric
		gen *traffic.Generator
		p   *probe.Probe
		now int64
	}
	build := func(probed bool) *rig {
		cfg := config.Default(model)
		cfg.Domains = 2
		col := stats.NewCollector(2, 0, 0)
		meter := power.NewMeter(cfg, power.Default45nm())
		fl := &packet.FreeList{}
		fab, err := sim.BuildFabric(cfg, nil, func(_ int, p *packet.Packet, _ int64) { fl.Put(p) }, col, meter)
		if err != nil {
			b.Fatal(err)
		}
		r := &rig{fab: fab}
		if probed {
			r.p = &probe.Probe{}
			r.p.Arm(probe.Config{Mesh: cfg.Mesh(), Domains: 2, Every: 100, WarmupEnd: 0, MeasureEnd: benchWarmup + int64(b.N)})
			col.SetProbe(r.p)
			if ps, ok := fab.(interface{ SetProbe(*probe.Probe) }); ok {
				ps.SetProbe(r.p)
			}
		}
		r.gen = traffic.New(cfg.Mesh(), traffic.UniformRandom, []traffic.Source{
			{Rate: 0.025, Class: packet.Ctrl, VNet: -1},
			{Rate: 0.025, Class: packet.Ctrl, VNet: -1},
		}, 1)
		r.gen.SetFreeList(fl)
		for ; r.now < benchWarmup; r.now++ {
			r.gen.Tick(r.fab, r.now)
			r.fab.Step(r.now)
			if r.p != nil {
				r.p.Tick(r.now, r.fab.InFlight())
			}
		}
		return r
	}
	plain, probed := build(false), build(true)
	runChunk := func(r *rig, n int64) time.Duration {
		start := time.Now()
		for end := r.now + n; r.now < end; r.now++ {
			r.gen.Tick(r.fab, r.now)
			r.fab.Step(r.now)
			if r.p != nil {
				r.p.Tick(r.now, r.fab.InFlight())
			}
		}
		return time.Since(start)
	}
	ratios := make([]float64, 0, int64(b.N)/chunk+1)
	b.ResetTimer()
	for remaining := int64(b.N); remaining > 0; remaining -= chunk {
		n := min(chunk, remaining)
		// Alternate which rig goes first so a within-pair trend (cache
		// warming, GC) biases neither side.
		var tu, tp time.Duration
		if len(ratios)%2 == 0 {
			tu, tp = runChunk(plain, n), runChunk(probed, n)
		} else {
			tp, tu = runChunk(probed, n), runChunk(plain, n)
		}
		if tu > 0 {
			ratios = append(ratios, float64(tp)/float64(tu))
		}
	}
	b.StopTimer()
	if len(ratios) > 0 {
		sort.Float64s(ratios)
		b.ReportMetric(ratios[len(ratios)/2], "probed/unprobed")
	}
	b.ReportMetric(float64(config.Default(model).Nodes()), "routers/cycle")
}

// BenchmarkStepSBOverhead gates SB's probed-Step budget (≤ 1.10x).
func BenchmarkStepSBOverhead(b *testing.B) { benchStepOverhead(b, config.SB) }

// BenchmarkStepWHOverhead gates WH's probed-Step budget.
func BenchmarkStepWHOverhead(b *testing.B) { benchStepOverhead(b, config.WH) }

// BenchmarkStepSurfOverhead gates Surf's probed-Step budget.
func BenchmarkStepSurfOverhead(b *testing.B) { benchStepOverhead(b, config.Surf) }

// BenchmarkSystemCycle measures full-system simulation speed (cores +
// MESI + SB NoC).
func BenchmarkSystemCycle(b *testing.B) {
	app, err := surfbless.Application("swaptions")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := system.Run(system.Options{
			Model: config.SB, App: app, InstrPerCore: 500, Seed: 3,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionBufferless compares BLESS, CHIPPER and SB.
func BenchmarkExtensionBufferless(b *testing.B) {
	var rows []experiments.BufferlessRow
	var err error
	for i := 0; i < b.N; i++ {
		if rows, err = experiments.ExtensionBufferless(experiments.Tiny()); err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Model == config.CHIPPER && r.Rate == 0.25 {
			b.ReportMetric(float64(r.P99Latency), "CHIPPER_p99_high_load")
		}
	}
}

// BenchmarkExtensionPatterns verifies confinement across patterns.
func BenchmarkExtensionPatterns(b *testing.B) {
	var rows []experiments.PatternRow
	var err error
	for i := 0; i < b.N; i++ {
		if rows, err = experiments.ExtensionPatterns(experiments.Tiny()); err != nil {
			b.Fatal(err)
		}
	}
	var drift float64
	for _, r := range rows {
		drift += r.VictimDrift
	}
	b.ReportMetric(drift, "SB_total_drift_cycles")
}

// BenchmarkStepCHIPPER measures simulated CHIPPER cycles per second.
func BenchmarkStepCHIPPER(b *testing.B) { benchFabricCycles(b, config.CHIPPER) }

// BenchmarkStepRUNAHEAD measures simulated Runahead cycles per second.
// Packet construction is excluded from the timed region (StopTimer
// brackets gen.Tick): RUNAHEAD cannot recycle packets — its retry
// timers hold pointers past ejection — so Tick allocates by design,
// while Step itself stays allocation-free.
func BenchmarkStepRUNAHEAD(b *testing.B) {
	cfg := config.Default(config.RUNAHEAD)
	cfg.Domains = 2
	col := stats.NewCollector(2, 0, 0)
	meter := power.NewMeter(cfg, power.Default45nm())
	fab, err := sim.BuildFabric(cfg, nil, nil, col, meter)
	if err != nil {
		b.Fatal(err)
	}
	gen := traffic.New(cfg.Mesh(), traffic.UniformRandom, []traffic.Source{
		{Rate: 0.025, Class: packet.Ctrl, VNet: -1},
		{Rate: 0.025, Class: packet.Ctrl, VNet: -1},
	}, 1)
	now := int64(0)
	for ; now < benchWarmup; now++ {
		gen.Tick(fab, now)
		fab.Step(now)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for end := now + int64(b.N); now < end; now++ {
		b.StopTimer()
		gen.Tick(fab, now)
		b.StartTimer()
		fab.Step(now)
	}
	b.ReportMetric(float64(cfg.Nodes()), "routers/cycle")
}
