// Energysweep: the Fig-6 scenario in miniature — how NoC energy scales
// with the number of interference domains.  Surf pays for one VC
// complement per domain at every input port of every router; Surf-Bless
// buffers only at injection, so its energy stays nearly flat.
package main

import (
	"fmt"
	"log"

	"surfbless"
	"surfbless/internal/packet"
)

const cycles = 50_000

func run(model surfbless.Model, domains int) surfbless.Energy {
	cfg := surfbless.DefaultConfig(model)
	cfg.Domains = domains
	if model == surfbless.Surf || model == surfbless.SB {
		// §5.1.2: each domain owns one 4-flit VC.
		cfg.CtrlVCsPerPort, cfg.CtrlVCDepth = 0, 0
		cfg.DataVCsPerPort, cfg.DataVCDepth = 1, 4
		cfg.InjectionVCDepth = 4
	}
	sources := make([]surfbless.Source, domains)
	for i := range sources {
		sources[i] = surfbless.Source{Rate: 0.05 / float64(domains), Class: packet.Ctrl, VNet: -1}
	}
	res, err := surfbless.RunSynthetic(surfbless.SimOptions{
		Cfg:     cfg,
		Pattern: surfbless.UniformRandom,
		Sources: sources,
		Measure: cycles,
		Seed:    1,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res.Energy
}

func main() {
	fmt.Printf("NoC energy (mJ) over %d cycles at 0.05 pkts/node/cycle\n\n", cycles)
	fmt.Printf("%-10s %12s %12s %12s %12s\n", "domains", "Surf total", "SB total", "Surf static", "SB static")
	for d := 1; d <= 9; d++ {
		surf := run(surfbless.Surf, d)
		sb := run(surfbless.SB, d)
		fmt.Printf("%-10d %12.4f %12.4f %12.4f %12.4f\n",
			d, surf.Total()*1e3, sb.Total()*1e3, surf.RouterStatic*1e3, sb.RouterStatic*1e3)
	}
	wh := run(surfbless.WH, 1)
	bless := run(surfbless.BLESS, 1)
	fmt.Printf("\nbaselines: WH %.4f mJ, BLESS %.4f mJ\n", wh.Total()*1e3, bless.Total()*1e3)
	fmt.Println("\nSurf grows with every added domain (5 buffered ports × D VCs);")
	fmt.Println("Surf-Bless adds only one injection VC per domain per router.")
}
