// Quickstart: build a Surf-Bless NoC with two interference domains,
// push uniform-random traffic through it, and print what each domain
// experienced.  This is the smallest complete use of the public API.
package main

import (
	"fmt"
	"log"

	"surfbless"
	"surfbless/internal/packet"
)

func main() {
	// Table-1 defaults: an 8×8 mesh of 2-stage bufferless routers with
	// the wave schedule sized as Smax = 2·P·(N−1) = 42.
	cfg := surfbless.DefaultConfig(surfbless.SB)
	cfg.Domains = 2

	res, err := surfbless.RunSynthetic(surfbless.SimOptions{
		Cfg:     cfg,
		Pattern: surfbless.UniformRandom,
		Sources: []surfbless.Source{
			{Rate: 0.04, Class: packet.Ctrl, VNet: -1}, // domain 0
			{Rate: 0.04, Class: packet.Ctrl, VNet: -1}, // domain 1
		},
		Warmup:  1_000,
		Measure: 10_000,
		Drain:   50_000,
		Seed:    42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Surf-Bless on an %dx%d mesh, %d waves, %d domains\n",
		cfg.Width, cfg.Height, cfg.Smax(), cfg.Domains)
	for d, dom := range res.Domains {
		fmt.Printf("  domain %d: %5d packets, avg latency %6.2f cycles "+
			"(queue %5.2f + network %6.2f), %.3f deflections/packet\n",
			d, dom.Ejected, dom.AvgTotalLatency(),
			dom.AvgQueueLatency(), dom.AvgNetworkLatency(), dom.AvgDeflections())
	}
	fmt.Printf("  energy: %v\n", res.Energy)
}
