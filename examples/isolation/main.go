// Isolation: the paper's headline property, live.  A victim domain runs
// at a fixed load while an interfering domain's load rises from zero to
// near saturation; on Surf-Bless the victim's latency and throughput do
// not move by a single bit, while on BLESS they degrade (Fig. 5).
package main

import (
	"fmt"
	"log"

	"surfbless"
	"surfbless/internal/packet"
)

func victim(model surfbless.Model, interference float64) (latency, throughput float64) {
	cfg := surfbless.DefaultConfig(model)
	cfg.Domains = 2
	res, err := surfbless.RunSynthetic(surfbless.SimOptions{
		Cfg:     cfg,
		Pattern: surfbless.UniformRandom,
		Sources: []surfbless.Source{
			{Rate: 0.05, Class: packet.Ctrl, VNet: -1},         // victim
			{Rate: interference, Class: packet.Ctrl, VNet: -1}, // interference
		},
		Warmup: 1_000, Measure: 8_000, Drain: 80_000,
		Seed: 99,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res.Domains[0].AvgTotalLatency(), res.Throughput(0)
}

func main() {
	fmt.Println("victim domain at 0.05 pkts/node/cycle; interference domain swept")
	fmt.Println()
	fmt.Println("interference   BLESS latency   SB latency   BLESS thpt   SB thpt")
	for _, rate := range []float64{0, 0.08, 0.16, 0.24} {
		bl, bt := victim(surfbless.BLESS, rate)
		sl, st := victim(surfbless.SB, rate)
		fmt.Printf("    %4.2f        %8.2f      %8.2f      %7.4f     %7.4f\n",
			rate, bl, sl, bt, st)
	}
	fmt.Println()
	fmt.Println("SB's victim column is constant to the last digit: packets of the")
	fmt.Println("interfering domain can never touch a wave owned by the victim's")
	fmt.Println("domain, so the victim's entire packet history is bit-identical.")
}
