// Coherence: the §5.2 scenario — a 64-core system running the MESI
// protocol whose three message classes (1-flit control, two 5-flit data
// networks) ride three Surf-Bless domains, which is what lets a
// bufferless NoC carry multi-class cache traffic without protocol
// deadlock.  The same workload runs on the WH baseline for comparison.
package main

import (
	"fmt"
	"log"

	"surfbless"
)

func main() {
	app, err := surfbless.Application("dedup")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("application %q on a 64-core, 8x8-mesh MESI system\n\n", app.Name)

	for _, model := range []surfbless.Model{surfbless.WH, surfbless.SB} {
		res, err := surfbless.RunSystem(surfbless.SystemOptions{
			Model:        model,
			App:          app,
			InstrPerCore: 3_000,
			Seed:         7,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-4v execution %7d cycles, L1 miss rate %.3f, DRAM reads %d\n",
			model, res.ExecCycles, res.L1MissRate, res.MemReads)
		names := []string{"ctrl (1 flit)", "data A (5 flit)", "data B (5 flit)"}
		for v, d := range res.VNets {
			fmt.Printf("     vnet %d %-15s %6d pkts, latency %6.2f (queue %5.2f + network %6.2f)\n",
				v, names[v], d.Ejected, d.AvgTotalLatency(), d.AvgQueueLatency(), d.AvgNetworkLatency())
		}
		fmt.Printf("     NoC energy: %v\n\n", res.Energy)
	}
	fmt.Println("SB pays a few percent of execution time and recovers half the")
	fmt.Println("NoC energy: the routers keep no per-class VCs, only per-domain")
	fmt.Println("injection queues plus three small wave schedulers.")
}
