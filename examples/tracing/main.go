// Tracing: attach a packet-lifecycle trace writer and an interval
// probe to a simulation, analyze one packet's journey and sketch the
// run's time series — useful for understanding how waves, deflections
// and the old-first policy interact.  The trace is CSV; pipe it into
// your favourite tooling.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"surfbless/internal/config"
	"surfbless/internal/packet"
	"surfbless/internal/power"
	"surfbless/internal/probe"
	"surfbless/internal/sim"
	"surfbless/internal/stats"
	"surfbless/internal/trace"
	"surfbless/internal/traffic"
)

func main() {
	cfg := config.Default(config.SB)
	cfg.Domains = 4 // a misaligned domain count: deflections will show

	col := stats.NewCollector(cfg.Domains, 0, 0)
	var buf strings.Builder
	tw := trace.New(&buf)
	col.SetTracer(tw.Tracer())

	// A probe rides along with the tracer: same lifecycle events,
	// bucketed into 200-cycle intervals instead of logged line by line.
	p := &probe.Probe{}
	p.Arm(probe.Config{Mesh: cfg.Mesh(), Domains: cfg.Domains, Every: 200, WarmupEnd: 0, MeasureEnd: 2000})
	col.SetProbe(p)

	// A Chrome-trace exporter taps the same event stream: every hop and
	// packet life becomes a timeline slice loadable in
	// https://ui.perfetto.dev (one simulated cycle = 1 µs of trace time).
	spans, err := os.CreateTemp("", "surfbless_spans_*.json")
	if err != nil {
		log.Fatal(err)
	}
	pf := trace.NewPerfetto(spans, cfg.Mesh())
	p.AttachTap(pf)

	meter := power.NewMeter(cfg, power.Default45nm())
	fab, err := sim.BuildFabric(cfg, nil, nil, col, meter)
	if err != nil {
		log.Fatal(err)
	}
	if ps, ok := fab.(interface{ SetProbe(*probe.Probe) }); ok {
		ps.SetProbe(p) // spatial heatmaps too
	}
	sources := make([]traffic.Source, cfg.Domains)
	for i := range sources {
		sources[i] = traffic.Source{Rate: 0.02, Class: packet.Ctrl, VNet: -1}
	}
	gen := traffic.New(cfg.Mesh(), traffic.UniformRandom, sources, 7)

	now := int64(0)
	for ; now < 2000; now++ {
		gen.Tick(fab, now)
		fab.Step(now)
		p.Tick(now, fab.InFlight())
	}
	for ; fab.InFlight() > 0; now++ {
		fab.Step(now)
		p.Tick(now, fab.InFlight())
	}
	if err := tw.Close(); err != nil {
		log.Fatal(err)
	}
	p.Flush() // drain the event ring into the tap before closing it
	if err := pf.Close(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("traced %d events over %d cycles\n\n", tw.Events(), now)
	fmt.Printf("chrome trace: %d spans in %s (load at https://ui.perfetto.dev)\n\n", pf.Events(), spans.Name())
	fmt.Println(trace.Header())
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	for _, l := range lines[:10] {
		fmt.Println(l)
	}
	fmt.Println("…")

	// Find the most-deflected packet of the run.
	worst, worstDefl := "", -1
	for _, l := range lines {
		f := strings.Split(l, ",")
		if f[1] != "ejected" {
			continue
		}
		var d int
		fmt.Sscanf(f[7], "%d", &d)
		if d > worstDefl {
			worstDefl, worst = d, l
		}
	}
	fmt.Printf("\nmost-deflected packet: %s\n", worst)
	fmt.Printf("(%d deflections — an ejection-miss victim bouncing to a wave turn row)\n", worstDefl)

	// Per-domain tail latency from the built-in histograms.
	fmt.Println()
	for d := 0; d < cfg.Domains; d++ {
		fmt.Printf("domain %d latency: %v\n", d, col.Latency(d))
	}

	// The probe's sparkline digest: injections, ejections, latency and
	// occupancy per 200-cycle interval, one block per domain.
	fmt.Println()
	fmt.Println(p.Summary())
	_ = os.Stdout
}
