package probe

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"surfbless/internal/geom"
	"surfbless/internal/textplot"
)

// SeriesPoint is one JSONL time-series record: one domain over one
// interval.  Field order is the wire schema; keep it stable.
type SeriesPoint struct {
	Start       int64   `json:"start"`
	End         int64   `json:"end"`
	Domain      int     `json:"domain"`
	Created     int64   `json:"created"`
	Refused     int64   `json:"refused"`
	Injected    int64   `json:"injected"`
	Ejected     int64   `json:"ejected"`
	Deflections int64   `json:"deflections"`
	LatencySum  int64   `json:"latency_sum"`
	MeanLatency float64 `json:"mean_latency"`
	InFlight    int64   `json:"in_flight"`
	NetInFlight int64   `json:"net_in_flight"`
}

// WriteTimeSeriesJSONL streams the recorded series as one JSON object
// per line, one line per (interval, domain) in time order.
func (pr *Probe) WriteTimeSeriesJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, iv := range pr.Intervals() {
		for d, s := range iv.Domains {
			if err := enc.Encode(SeriesPoint{
				Start:       iv.Start,
				End:         iv.End,
				Domain:      d,
				Created:     s.Created,
				Refused:     s.Refused,
				Injected:    s.Injected,
				Ejected:     s.Ejected,
				Deflections: s.Deflections,
				LatencySum:  s.LatencySum,
				MeanLatency: s.MeanLatency(),
				InFlight:    s.InFlight,
				NetInFlight: iv.NetInFlight,
			}); err != nil {
				return err
			}
		}
	}
	return nil
}

// HeatmapHeader is the CSV header WriteHeatmapCSV emits.
const HeatmapHeader = "node,x,y,flits,deflections,ejections,link_n,link_e,link_s,link_w,util_n,util_e,util_s,util_w"

// WriteHeatmapCSV writes one row per router: traversal/deflection/
// ejection totals plus per-out-link flit counts and utilizations.
func (pr *Probe) WriteHeatmapCSV(w io.Writer) error {
	h := pr.Heatmap()
	if h.RouterFlits == nil {
		return fmt.Errorf("probe: heatmap export before Arm")
	}
	if _, err := fmt.Fprintln(w, HeatmapHeader); err != nil {
		return err
	}
	for id := range h.RouterFlits {
		c := h.Mesh.CoordOf(id)
		_, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.4f,%.4f,%.4f,%.4f\n",
			id, c.X, c.Y,
			h.RouterFlits[id], h.RouterDeflections[id], h.RouterEjections[id],
			h.LinkFlits[id][geom.North], h.LinkFlits[id][geom.East],
			h.LinkFlits[id][geom.South], h.LinkFlits[id][geom.West],
			h.Utilization(id, geom.North), h.Utilization(id, geom.East),
			h.Utilization(id, geom.South), h.Utilization(id, geom.West))
		if err != nil {
			return err
		}
	}
	return nil
}

// Summary renders a per-domain sparkline digest of the run — one line
// per domain and metric (injections, ejections, mean latency, in-flight
// occupancy over the intervals) — for quick terminal inspection.
func (pr *Probe) Summary() string {
	ivs := pr.Intervals()
	if len(ivs) == 0 {
		return "probe: no data recorded\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "probe: %d intervals of %d cycles, %d domains\n",
		len(ivs), pr.cfg.Every, pr.cfg.Domains)
	series := func(f func(DomainSlice) float64, d int) []float64 {
		vals := make([]float64, len(ivs))
		for i, iv := range ivs {
			vals[i] = f(iv.Domains[d])
		}
		return vals
	}
	for d := 0; d < pr.cfg.Domains; d++ {
		fmt.Fprintf(&b, "  domain %d injected %s\n", d,
			textplot.Spark(series(func(s DomainSlice) float64 { return float64(s.Injected) }, d)))
		fmt.Fprintf(&b, "  domain %d ejected  %s\n", d,
			textplot.Spark(series(func(s DomainSlice) float64 { return float64(s.Ejected) }, d)))
		fmt.Fprintf(&b, "  domain %d latency  %s\n", d,
			textplot.Spark(series(DomainSlice.MeanLatency, d)))
		fmt.Fprintf(&b, "  domain %d inflight %s\n", d,
			textplot.Spark(series(func(s DomainSlice) float64 { return float64(s.InFlight) }, d)))
	}
	return b.String()
}
