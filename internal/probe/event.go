package probe

import "fmt"

// Kind classifies one ring event.  The hot-path hooks record a Kind
// and a fixed set of scalar fields instead of calling into the
// accumulation logic, so appending an event costs a handful of stores
// regardless of kind; the meaning of each field is resolved once per
// batch at drain time (see Probe.fold).
type Kind uint8

// Ring event kinds.
const (
	// KindCreated: an NI accepted a generator offer.  Cycle ==
	// Created == the packet's CreatedAt; Src/Dst carry the route.
	KindCreated Kind = iota
	// KindRefused: a full NI queue rejected an offer.  No packet.
	KindRefused
	// KindInjected: a head flit entered the network (Cycle ==
	// InjectedAt; Created keeps the measurement-window key).
	KindInjected
	// KindEjected: a tail flit left the network at router Node.
	KindEjected
	// KindDropped: the fault machinery discarded the packet after
	// exhausting its retransmission budget.
	KindDropped
	// KindRetransmit: a fault drop re-queued the packet at its source.
	KindRetransmit
	// KindLinkBusy: Flits flits of the packet crossed router Node's
	// out-link Dir — the router hot-path event (one per forward on
	// packet-granular fabrics, one per link flit on VC fabrics).
	KindLinkBusy
	// KindDeflect: a KindLinkBusy hop that was unproductive.
	KindDeflect
	// KindTick: the driver's end-of-cycle occupancy sample; Flits
	// carries the fabric's total in-flight count.
	KindTick

	numKinds
)

// String names the kind (the flight-recorder dump vocabulary).
func (k Kind) String() string {
	switch k {
	case KindCreated:
		return "created"
	case KindRefused:
		return "refused"
	case KindInjected:
		return "injected"
	case KindEjected:
		return "ejected"
	case KindDropped:
		return "dropped"
	case KindRetransmit:
		return "retransmit"
	case KindLinkBusy:
		return "link-busy"
	case KindDeflect:
		return "deflect"
	case KindTick:
		return "tick"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one fixed-size ring record: every observability fact the
// simulator emits, flattened to plain scalars so that appending never
// allocates, never chases a pointer, and never needs the packet again
// (free-list recycling may reset the packet long before the ring
// drains).  48 bytes; keep it that way — the hot path copies one per
// event.
type Event struct {
	// Cycle is the cycle the event happened at (its time-series
	// bucket key).
	Cycle int64 `json:"cycle"`
	// Created is the packet's CreatedAt — the measurement-window key
	// (windowing is by creation cycle, exactly as in package stats).
	// Zero and meaningless for KindRefused and KindTick.
	Created int64 `json:"created"`
	// ID is the packet ID (0 for KindRefused and KindTick).
	ID uint64 `json:"packet"`
	// Node is the router the event happened at (mesh node ID), or -1
	// for driver/NI-side lifecycle events.
	Node int32 `json:"node"`
	// Src and Dst are the packet's route as mesh node IDs, or -1 when
	// the event does not record them (hot router events skip them; the
	// packet's KindCreated/KindInjected/KindEjected records carry them).
	Src int32 `json:"src"`
	Dst int32 `json:"dst"`
	// Flits is the flit count of a KindLinkBusy/KindDeflect hop, or
	// the fabric's total occupancy for KindTick.
	Flits int32 `json:"flits"`
	// Domain is the packet's interference domain.
	Domain int16 `json:"domain"`
	// Kind classifies the event.
	Kind Kind `json:"kind"`
	// Dir is the out-link direction of a KindLinkBusy/KindDeflect hop
	// (geom.Dir).
	Dir uint8 `json:"dir"`
}

// Tap observes drained event batches.  The probe hands each flushed
// ring segment to every attached tap in attachment order; batches
// arrive in append order within a segment and cycle order is
// non-decreasing inside one batch.  The slice is only valid for the
// duration of the call — a tap that retains events must copy them
// (the flight recorder does).
type Tap interface {
	Consume(batch []Event)
}
