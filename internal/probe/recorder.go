package probe

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"surfbless/internal/geom"
)

// DefaultFlightWindow is the number of trailing cycles a flight
// recorder retains when the caller does not choose a window.
const DefaultFlightWindow = 512

// flightCap bounds the recorder's ring: at most this many events are
// held regardless of the cycle window, so a recorder's memory is fixed
// at construction no matter how hot the fabric runs.
const flightCap = 1 << 15

// FlightRecorder is a bounded forensic buffer: attached to a probe as
// a Tap, it retains the last Window cycles of drained events (up to a
// fixed event capacity) so that a watchdog trip, a DegradedError, or a
// WCTA conformance violation can be dumped and replayed after the
// fact.  Like the probe it is a single-goroutine state machine.
//
//hook:nil-disabled
type FlightRecorder struct {
	window   int64
	buf      []Event
	head     int // next write position
	n        int // live events (≤ len(buf))
	maxCycle int64
}

// NewFlightRecorder returns a recorder retaining the last windowCycles
// cycles of events (≤0 = DefaultFlightWindow).
func NewFlightRecorder(windowCycles int64) *FlightRecorder {
	if windowCycles <= 0 {
		windowCycles = DefaultFlightWindow
	}
	return &FlightRecorder{
		window:   windowCycles,
		buf:      make([]Event, flightCap),
		maxCycle: -1,
	}
}

// Window returns the recorder's retention window in cycles.
func (r *FlightRecorder) Window() int64 { return r.window }

// Reset discards all recorded events; sim.Run calls it when arming so
// a recorder can be reused across runs.
func (r *FlightRecorder) Reset() {
	r.head = 0
	r.n = 0
	r.maxCycle = -1
}

// Consume implements Tap: it copies the batch into the ring,
// overwriting the oldest events once full.  Events are copied by
// value — the batch slice is ring memory the probe reuses.
func (r *FlightRecorder) Consume(batch []Event) {
	for i := range batch {
		e := batch[i]
		if e.Cycle > r.maxCycle {
			r.maxCycle = e.Cycle
		}
		r.buf[r.head] = e
		r.head++
		if r.head == len(r.buf) {
			r.head = 0
		}
		if r.n < len(r.buf) {
			r.n++
		}
	}
}

// Snapshot returns the retained events inside the trailing window,
// deterministically ordered by (cycle, node, kind, packet, dir).
// Call Probe.Flush first (sim.Run does) so the ring segments'
// freshest events have reached the recorder.
func (r *FlightRecorder) Snapshot() []Event {
	if r == nil || r.n == 0 {
		return nil
	}
	floor := r.maxCycle - r.window + 1
	start := r.head - r.n
	if start < 0 {
		start += len(r.buf)
	}
	out := make([]Event, 0, r.n)
	for i := 0; i < r.n; i++ {
		e := r.buf[(start+i)%len(r.buf)]
		if e.Cycle >= floor {
			out = append(out, e)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.Cycle != b.Cycle {
			return a.Cycle < b.Cycle
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.ID != b.ID {
			return a.ID < b.ID
		}
		return a.Dir < b.Dir
	})
	return out
}

// FlightDumpVersion is the on-disk schema version of FlightDump.
const FlightDumpVersion = 1

// FlightDump is the serialized form of a flight-recorder snapshot: the
// forensic record sim.Run attaches to a DegradedError and the WCTA
// conformance harness attaches to a violated Report.  cmd/replay
// -flight renders it as a timeline.
type FlightDump struct {
	Version int     `json:"version"`
	Reason  string  `json:"reason"` // what tripped the dump (watchdog reason, panic, "wcta-conformance", …)
	Cycle   int64   `json:"cycle"`  // cycle the run stopped/tripped at
	Window  int64   `json:"window_cycles"`
	Model   string  `json:"model,omitempty"`
	Width   int     `json:"mesh_width,omitempty"`
	Height  int     `json:"mesh_height,omitempty"`
	Domains int     `json:"domains,omitempty"`
	Events  []Event `json:"events"`
}

// Dump snapshots the recorder into a FlightDump describing the failed
// run.  mesh/domains may be zero when unknown.
func (r *FlightRecorder) Dump(reason string, cycle int64, model string, mesh geom.Mesh, domains int) *FlightDump {
	if r == nil {
		return nil
	}
	return &FlightDump{
		Version: FlightDumpVersion,
		Reason:  reason,
		Cycle:   cycle,
		Window:  r.window,
		Model:   model,
		Width:   mesh.Width,
		Height:  mesh.Height,
		Domains: domains,
		Events:  r.Snapshot(),
	}
}

// WriteJSON writes the dump as indented JSON.
func (d *FlightDump) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(d)
}

// ReadFlightDump parses a dump written by WriteJSON.
func ReadFlightDump(r io.Reader) (*FlightDump, error) {
	var d FlightDump
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("flight dump: %w", err)
	}
	if d.Version != FlightDumpVersion {
		return nil, fmt.Errorf("flight dump: unsupported version %d (want %d)", d.Version, FlightDumpVersion)
	}
	return &d, nil
}
