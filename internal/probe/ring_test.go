package probe_test

import (
	"strings"
	"testing"
	"unsafe"

	"surfbless/internal/geom"
	"surfbless/internal/probe"
)

// TestEventStaysSmall pins the ring record at 48 bytes: the hot path
// copies one per event, so accidental growth is a performance bug.
func TestEventStaysSmall(t *testing.T) {
	if s := unsafe.Sizeof(probe.Event{}); s != 48 {
		t.Fatalf("Event is %d bytes, want 48", s)
	}
}

// TestRingOverflowFlushes: appending more router events than one ring
// segment holds must flush mid-interval and lose nothing — exactness
// never depends on segment capacity.
func TestRingOverflowFlushes(t *testing.T) {
	pr := &probe.Probe{}
	// A 1×1 mesh gets the max per-router segment (1024 events);
	// overflow it several times over from a single node.
	pr.Arm(probe.Config{Mesh: geom.NewMesh(1, 1), Domains: 1, Every: 100})
	const hops = 5000
	p := pkt(1, 0, 0, 0, 0)
	for i := 0; i < hops; i++ {
		pr.Traverse(0, geom.East, p, 2, i%10 == 0, int64(i%50))
	}
	h := pr.Heatmap()
	if h.RouterFlits[0] != 2*hops {
		t.Errorf("router flits = %d, want %d", h.RouterFlits[0], 2*hops)
	}
	if h.LinkFlits[0][geom.East] != 2*hops {
		t.Errorf("link flits = %d, want %d", h.LinkFlits[0][geom.East], 2*hops)
	}
	if h.RouterDeflections[0] != hops/10 {
		t.Errorf("deflections = %d, want %d", h.RouterDeflections[0], hops/10)
	}
}

// batchTap records every batch it is handed (copying, per the Tap
// contract).
type batchTap struct {
	batches int
	events  []probe.Event
}

func (bt *batchTap) Consume(batch []probe.Event) {
	bt.batches++
	bt.events = append(bt.events, batch...)
}

// TestTapSeesEveryEvent: an attached tap receives the full event
// stream across interval drains and the final flush, and re-arming
// detaches it.
func TestTapSeesEveryEvent(t *testing.T) {
	pr := &probe.Probe{}
	pr.Arm(probe.Config{Mesh: geom.NewMesh(2, 2), Domains: 1, Every: 50})
	bt := &batchTap{}
	pr.AttachTap(bt)

	p := pkt(7, 0, 10, 11, 90)
	pr.Created(p)
	pr.Injected(p)
	for now := int64(0); now < 120; now++ {
		if now == 40 {
			pr.Traverse(1, geom.South, p, 1, false, now)
		}
		pr.Tick(now, 1)
	}
	pr.Ejected(p)
	pr.Flush()

	// created + injected + traverse + ejected + 120 ticks.
	if want := 4 + 120; len(bt.events) != want {
		t.Fatalf("tap saw %d events, want %d", len(bt.events), want)
	}
	if bt.batches < 2 {
		t.Errorf("tap saw %d batches; interval draining should produce several", bt.batches)
	}
	kinds := map[probe.Kind]int{}
	for _, e := range bt.events {
		kinds[e.Kind]++
	}
	for _, k := range []probe.Kind{probe.KindCreated, probe.KindInjected, probe.KindLinkBusy, probe.KindEjected} {
		if kinds[k] != 1 {
			t.Errorf("tap saw %d %v events, want 1", kinds[k], k)
		}
	}

	pr.Arm(probe.Config{Mesh: geom.NewMesh(2, 2), Domains: 1, Every: 50})
	pr.Tick(0, 0)
	pr.Flush()
	if len(bt.events) != 4+120 {
		t.Errorf("re-arm did not detach the tap (saw %d events)", len(bt.events))
	}
}

// TestDroppedAndRetransmitCounters: the new fault-path events land in
// the series (windowed like package stats) and drops end occupancy.
func TestDroppedAndRetransmitCounters(t *testing.T) {
	pr := &probe.Probe{}
	pr.Arm(probe.Config{Mesh: geom.NewMesh(2, 2), Domains: 2, Every: 100, WarmupEnd: 50})
	in := pkt(1, 0, 60, 61, 0)  // in-window
	out := pkt(2, 1, 10, 11, 0) // created pre-warm-up
	pr.Created(in)
	pr.Created(out)
	pr.Retransmitted(in, 120)
	pr.Retransmitted(out, 130) // windowed by now, which IS in window
	pr.Dropped(in, 150)
	pr.Dropped(out, 160)
	pr.Tick(200, 0)

	tot := pr.Totals()
	if tot[0].Dropped != 1 || tot[0].Retransmits != 1 {
		t.Errorf("domain 0: dropped=%d retransmits=%d, want 1/1", tot[0].Dropped, tot[0].Retransmits)
	}
	// Domain 1's packet was created before warm-up: its drop is
	// unwindowed, but the retransmission event (keyed by cycle, like
	// stats.Collector.Retransmitted) counts.
	if tot[1].Dropped != 0 || tot[1].Retransmits != 1 {
		t.Errorf("domain 1: dropped=%d retransmits=%d, want 0/1", tot[1].Dropped, tot[1].Retransmits)
	}
	// Both drops end occupancy regardless of window.
	ivs := pr.Intervals()
	last := ivs[len(ivs)-1]
	for d, s := range last.Domains {
		if s.InFlight != 0 {
			t.Errorf("domain %d in-flight = %d after drops, want 0", d, s.InFlight)
		}
	}
}

// TestFlightRecorderWindow: the recorder retains only the trailing
// window, snapshots deterministically, and Reset empties it.
func TestFlightRecorderWindow(t *testing.T) {
	pr := &probe.Probe{}
	pr.Arm(probe.Config{Mesh: geom.NewMesh(2, 2), Domains: 1, Every: 10})
	rec := probe.NewFlightRecorder(32)
	pr.AttachTap(rec)
	for now := int64(0); now < 100; now++ {
		pr.Tick(now, int(now))
	}
	pr.Flush()

	snap := rec.Snapshot()
	if len(snap) != 32 {
		t.Fatalf("snapshot holds %d events, want the 32-cycle window", len(snap))
	}
	if snap[0].Cycle != 68 || snap[len(snap)-1].Cycle != 99 {
		t.Errorf("window covers [%d,%d], want [68,99]", snap[0].Cycle, snap[len(snap)-1].Cycle)
	}
	for i := 1; i < len(snap); i++ {
		if snap[i].Cycle < snap[i-1].Cycle {
			t.Fatalf("snapshot not cycle-ordered at %d", i)
		}
	}
	snap2 := rec.Snapshot()
	for i := range snap {
		if snap[i] != snap2[i] {
			t.Fatalf("snapshot not deterministic at %d", i)
		}
	}

	rec.Reset()
	if got := rec.Snapshot(); got != nil {
		t.Errorf("post-Reset snapshot holds %d events", len(got))
	}
}

// TestMetricsExposition: registration is idempotent, func metrics
// rebind, and the text format carries HELP/TYPE lines.
func TestMetricsExposition(t *testing.T) {
	m := probe.NewMetrics()
	c := m.Counter("surfbless_x_total", "things")
	c.Add(3)
	c2 := m.Counter("surfbless_x_total", "things")
	c2.Inc()
	if c.Value() != 4 {
		t.Errorf("re-registered counter diverged: %d", c.Value())
	}
	v := int64(1)
	m.GaugeFunc("surfbless_y", "level", func() int64 { return v })
	m.GaugeFunc("surfbless_y", "level", func() int64 { return v * 10 })

	var b strings.Builder
	m.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# HELP surfbless_x_total things",
		"# TYPE surfbless_x_total counter",
		"surfbless_x_total 4",
		"# TYPE surfbless_y gauge",
		"surfbless_y 10",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	defer func() {
		if recover() == nil {
			t.Error("invalid metric name accepted")
		}
	}()
	m.Counter("bad name", "")
}
