package probe_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"surfbless/internal/probe"
)

func TestProgressSnapshotAndLine(t *testing.T) {
	g := probe.NewProgress()
	g.SetStage("fig5")
	g.SetTotal(10)
	g.AddTotal(10)
	g.Add(5)
	g.SetCacheStats(func() (int64, int64) { return 3, 2 })

	s := g.Snapshot()
	if s.Stage != "fig5" || s.Done != 5 || s.Total != 20 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Percent != 25 {
		t.Errorf("percent = %v, want 25", s.Percent)
	}
	if s.ETASec < 0 {
		t.Errorf("eta = %v, want an estimate once points completed", s.ETASec)
	}
	if s.CacheHits != 3 || s.CacheMisses != 2 {
		t.Errorf("cache stats = %d/%d", s.CacheHits, s.CacheMisses)
	}

	line := g.Line()
	for _, want := range []string{"stage=fig5", "done=5", "total=20", "cache_hits=3"} {
		if !strings.Contains(line, want) {
			t.Errorf("line %q missing %q", line, want)
		}
	}

	// Unknown total: no ETA, percent 0.
	g2 := probe.NewProgress()
	g2.Add(7)
	if s := g2.Snapshot(); s.ETASec != -1 || s.Percent != 0 {
		t.Errorf("unknown-total snapshot = %+v", s)
	}
}

// TestServeProgress drives the acceptance criterion: a GET on
// /progress during a run returns live JSON counts, and the expvar and
// pprof endpoints answer.
func TestServeProgress(t *testing.T) {
	g := probe.NewProgress()
	g.SetStage("sweep")
	g.SetTotal(4)
	g.Add(1)
	srv, err := probe.Serve("127.0.0.1:0", g, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := srv.Addr()

	resp, err := http.Get(fmt.Sprintf("http://%s/progress", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/progress status %d", resp.StatusCode)
	}
	var s probe.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.Stage != "sweep" || s.Done != 1 || s.Total != 4 {
		t.Fatalf("/progress returned %+v", s)
	}

	// Counters advance between polls.
	g.Add(2)
	resp2, err := http.Get(fmt.Sprintf("http://%s/progress", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.Done != 3 {
		t.Fatalf("second poll done = %d, want 3", s.Done)
	}

	for _, path := range []string{"/debug/vars", "/debug/pprof/"} {
		r, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("%s status %d", path, r.StatusCode)
		}
	}
}

// TestServeMetricsConcurrent is the satellite acceptance test: /metrics
// and /progress are scraped concurrently while the counters advance
// (run under -race to prove the scrape path is data-race free), and
// the owned + func-backed instruments render valid Prometheus text.
func TestServeMetricsConcurrent(t *testing.T) {
	g := probe.NewProgress()
	g.SetTotal(1000)
	m := probe.NewMetrics()
	steps := m.Counter("surfbless_test_steps_total", "cycles stepped")
	m.GaugeFunc("surfbless_test_inflight", "packets in flight", func() int64 { return 7 })
	srv, err := probe.Serve("127.0.0.1:0", g, m)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// "Simulation" goroutine advancing counters while scrapers poll.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			steps.Inc()
			g.Add(1)
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 4; w++ {
		for _, path := range []string{"/metrics", "/progress"} {
			wg.Add(1)
			go func(path string) {
				defer wg.Done()
				for i := 0; i < 20; i++ {
					resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr(), path))
					if err != nil {
						errs <- err
						return
					}
					body, err := io.ReadAll(resp.Body)
					resp.Body.Close()
					if err != nil {
						errs <- err
						return
					}
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("%s status %d", path, resp.StatusCode)
						return
					}
					if path == "/metrics" && !strings.Contains(string(body), "# TYPE surfbless_test_steps_total counter") {
						errs <- fmt.Errorf("/metrics missing TYPE line:\n%s", body)
						return
					}
				}
			}(path)
		}
	}
	wg.Wait()
	<-done
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Final scrape sees the settled counter values, including the
	// func-backed gauge and the Serve-registered progress gauges.
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"surfbless_test_steps_total 500",
		"surfbless_test_inflight 7",
		"surfbless_points_done 500",
		"surfbless_points_total 1000",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
}

// TestServeGracefulShutdown proves Close releases the listener (the
// old fire-and-forget Serve leaked it until process exit): after
// Close, scrapes fail and the port can be rebound immediately.
func TestServeGracefulShutdown(t *testing.T) {
	g := probe.NewProgress()
	srv, err := probe.Serve("127.0.0.1:0", g, probe.NewMetrics())
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	if _, err := http.Get(fmt.Sprintf("http://%s/progress", addr)); err != nil {
		t.Fatalf("pre-shutdown scrape: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/progress", addr)); err == nil {
		t.Fatal("scrape succeeded after Close; listener not released")
	}
	// The exact address rebinds: nothing holds the socket.
	srv2, err := probe.Serve(addr, g, nil)
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	if err := srv2.Close(); err != nil {
		t.Fatal(err)
	}
}
