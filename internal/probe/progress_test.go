package probe_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"surfbless/internal/probe"
)

func TestProgressSnapshotAndLine(t *testing.T) {
	g := probe.NewProgress()
	g.SetStage("fig5")
	g.SetTotal(10)
	g.AddTotal(10)
	g.Add(5)
	g.SetCacheStats(func() (int64, int64) { return 3, 2 })

	s := g.Snapshot()
	if s.Stage != "fig5" || s.Done != 5 || s.Total != 20 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Percent != 25 {
		t.Errorf("percent = %v, want 25", s.Percent)
	}
	if s.ETASec < 0 {
		t.Errorf("eta = %v, want an estimate once points completed", s.ETASec)
	}
	if s.CacheHits != 3 || s.CacheMisses != 2 {
		t.Errorf("cache stats = %d/%d", s.CacheHits, s.CacheMisses)
	}

	line := g.Line()
	for _, want := range []string{"stage=fig5", "done=5", "total=20", "cache_hits=3"} {
		if !strings.Contains(line, want) {
			t.Errorf("line %q missing %q", line, want)
		}
	}

	// Unknown total: no ETA, percent 0.
	g2 := probe.NewProgress()
	g2.Add(7)
	if s := g2.Snapshot(); s.ETASec != -1 || s.Percent != 0 {
		t.Errorf("unknown-total snapshot = %+v", s)
	}
}

// TestServeProgress drives the acceptance criterion: a GET on
// /progress during a run returns live JSON counts, and the expvar and
// pprof endpoints answer.
func TestServeProgress(t *testing.T) {
	g := probe.NewProgress()
	g.SetStage("sweep")
	g.SetTotal(4)
	g.Add(1)
	addr, err := probe.Serve("127.0.0.1:0", g)
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/progress", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/progress status %d", resp.StatusCode)
	}
	var s probe.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.Stage != "sweep" || s.Done != 1 || s.Total != 4 {
		t.Fatalf("/progress returned %+v", s)
	}

	// Counters advance between polls.
	g.Add(2)
	resp2, err := http.Get(fmt.Sprintf("http://%s/progress", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&s); err != nil {
		t.Fatal(err)
	}
	if s.Done != 3 {
		t.Fatalf("second poll done = %d, want 3", s.Done)
	}

	for _, path := range []string{"/debug/vars", "/debug/pprof/"} {
		r, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("%s status %d", path, r.StatusCode)
		}
	}
}
