package probe

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// Progress tracks a long-running driver's point counts for live
// introspection.  Unlike Probe it is safe for concurrent use: sweep
// and experiment harnesses fan simulation points out across workers,
// and every worker calls Add.
type Progress struct {
	start   time.Time
	done    atomic.Int64
	total   atomic.Int64 // 0 = unknown (no ETA)
	stage   atomic.Value // string: current figure / phase
	cacheFn atomic.Value // func() (hits, misses int64)
}

// NewProgress returns a progress tracker whose clock starts now.
func NewProgress() *Progress {
	g := &Progress{start: time.Now()}
	g.stage.Store("")
	return g
}

// SetStage labels the phase currently running (e.g. "fig5").
func (g *Progress) SetStage(s string) { g.stage.Store(s) }

// SetTotal declares the number of points the run will compute
// (0 = unknown; ETA is then omitted).
func (g *Progress) SetTotal(n int64) { g.total.Store(n) }

// AddTotal grows the declared point count by n.
func (g *Progress) AddTotal(n int64) { g.total.Add(n) }

// Add records n completed points.
func (g *Progress) Add(n int64) { g.done.Add(n) }

// SetCacheStats installs a snapshot function reporting the result
// cache's (hits, misses); nil-safe to leave unset.
func (g *Progress) SetCacheStats(fn func() (hits, misses int64)) { g.cacheFn.Store(fn) }

// Snapshot is the /progress wire format.
type Snapshot struct {
	Stage       string  `json:"stage,omitempty"`
	Done        int64   `json:"done"`
	Total       int64   `json:"total"` // 0 = unknown
	Percent     float64 `json:"percent"`
	ElapsedSec  float64 `json:"elapsed_s"`
	ETASec      float64 `json:"eta_s"` // -1 = unknown
	CacheHits   int64   `json:"cache_hits"`
	CacheMisses int64   `json:"cache_misses"`
}

// Snapshot returns the current counters with derived percent and ETA.
func (g *Progress) Snapshot() Snapshot {
	s := Snapshot{
		Stage:      g.stage.Load().(string),
		Done:       g.done.Load(),
		Total:      g.total.Load(),
		ElapsedSec: time.Since(g.start).Seconds(),
		ETASec:     -1,
	}
	if fn, ok := g.cacheFn.Load().(func() (int64, int64)); ok && fn != nil {
		s.CacheHits, s.CacheMisses = fn()
	}
	if s.Total > 0 {
		s.Percent = 100 * float64(s.Done) / float64(s.Total)
		if s.Done > 0 && s.Done < s.Total {
			s.ETASec = s.ElapsedSec / float64(s.Done) * float64(s.Total-s.Done)
		} else if s.Done >= s.Total {
			s.ETASec = 0
		}
	}
	return s
}

// Line renders the snapshot as one structured key=value stderr line
// for headless runs.
func (g *Progress) Line() string {
	s := g.Snapshot()
	line := fmt.Sprintf("progress done=%d total=%d pct=%.1f elapsed=%.1fs",
		s.Done, s.Total, s.Percent, s.ElapsedSec)
	if s.Stage != "" {
		line = "progress stage=" + s.Stage + line[len("progress"):]
	}
	if s.ETASec >= 0 {
		line += fmt.Sprintf(" eta=%.1fs", s.ETASec)
	}
	return line + fmt.Sprintf(" cache_hits=%d cache_misses=%d", s.CacheHits, s.CacheMisses)
}

// Report prints Line to w every interval until the returned stop
// function is called (stop prints one final line).
func (g *Progress) Report(w io.Writer, every time.Duration) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				fmt.Fprintln(w, g.Line())
			case <-done:
				return
			}
		}
	}()
	return func() {
		once.Do(func() {
			close(done)
			fmt.Fprintln(w, g.Line())
		})
	}
}

// handler serves the /progress JSON endpoint.
func (g *Progress) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(g.Snapshot()) //nolint:errcheck // best-effort diagnostics
	})
}

// publishOnce guards the process-global expvar registration: expvar
// panics on duplicate names, and tests may start several servers.
var publishOnce sync.Once

// Server is a running introspection HTTP server.  Close it to release
// the listener; drivers that want the old fire-and-forget behavior
// simply never call Close.
type Server struct {
	addr string
	srv  *http.Server
	done chan struct{} // closed when the serve goroutine exits
}

// Addr returns the server's bound address (host:port).
func (s *Server) Addr() string { return s.addr }

// Close gracefully shuts the server down: in-flight scrapes finish
// (bounded by a short timeout), the listener closes, and the serve
// goroutine exits before Close returns.  Idempotent.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	<-s.done
	if err != nil && err != http.ErrServerClosed {
		return fmt.Errorf("probe: http shutdown: %w", err)
	}
	return nil
}

// Serve starts the introspection HTTP server on addr (host:port; use
// 127.0.0.1:0 for an ephemeral port).  Endpoints: /progress (JSON
// snapshot), /metrics (Prometheus text, when m != nil), /debug/vars
// (expvar), /debug/pprof/* (net/http/pprof).  The caller owns the
// returned Server and should Close it for a graceful shutdown; an
// unclosed server lives until the process exits.
func Serve(addr string, g *Progress, m *Metrics) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("probe: http listen: %w", err)
	}
	publishOnce.Do(func() {
		expvar.Publish("progress", expvar.Func(func() any { return g.Snapshot() }))
	})
	mux := http.NewServeMux()
	mux.Handle("/progress", g.handler())
	if m != nil {
		// The run's point counters are always worth scraping; the caller
		// adds domain metrics (cache counters, run totals) on top.
		m.GaugeFunc("surfbless_points_done", "simulation points completed this run", func() int64 { return g.done.Load() })
		m.GaugeFunc("surfbless_points_total", "simulation points planned this run (0 = unknown)", func() int64 { return g.total.Load() })
		mux.Handle("/metrics", m.Handler())
	}
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{
		addr: ln.Addr().String(),
		srv:  &http.Server{Handler: mux},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed on shutdown
	}()
	return s, nil
}
