// Package probe is the simulator's low-overhead observability layer:
// it turns a run's packet-lifecycle and router hot-path events into
// (a) per-interval time series — injections, ejections, refusals,
// deflections, in-flight occupancy and mean latency per domain,
// bucketed every Every cycles — and (b) spatial heatmaps — per-router
// flit traversals, deflections and ejections plus per-link flit counts
// accumulated over the run.
//
// Measurement discipline matches package stats exactly: only packets
// created inside [WarmupEnd, MeasureEnd) contribute, so the probe's
// totals reconcile with the collector's stats.Domain aggregates (to
// the packet, once the network has fully drained).  Events are
// bucketed by the cycle they happen at, which may fall after
// MeasureEnd for in-window packets that eject during the drain phase.
//
// Overhead: a disarmed (nil) *Probe is safe to call and costs one
// branch — fabrics guard their hot-path hooks with a nil check, and
// every method returns immediately on a nil receiver — so probe-off
// runs pay nothing measurable (bench_test.go tracks both paths).
// Like the fabrics, a Probe is a single-goroutine state machine: do
// not share one across concurrent runs.
package probe

import (
	"surfbless/internal/geom"
	"surfbless/internal/packet"
)

// DefaultEvery is the interval width used when a caller arms a probe
// without choosing one.
const DefaultEvery = 100

// Config arms a probe for one run.
type Config struct {
	Mesh    geom.Mesh
	Domains int
	// Every is the time-series bucket width in cycles (≤0 = DefaultEvery).
	Every int64
	// WarmupEnd / MeasureEnd bound the measurement window, exactly as in
	// stats.NewCollector.  MeasureEnd == 0 means "no upper bound".
	WarmupEnd  int64
	MeasureEnd int64
}

// DomainSlice is one domain's counters over one time-series interval.
type DomainSlice struct {
	Created     int64 // in-window packets accepted by an NI this interval
	Refused     int64 // offers rejected by a full NI queue
	Injected    int64 // in-window packets entering the network
	Ejected     int64 // in-window packets delivered
	Deflections int64 // unproductive hops suffered by in-window packets
	LatencySum  int64 // total (creation→ejection) latency of the interval's ejections
	InFlight    int64 // domain occupancy at the interval's last sampled cycle
}

// MeanLatency returns the interval's average total packet latency, or
// 0 when nothing was delivered in it.
func (s DomainSlice) MeanLatency() float64 {
	if s.Ejected == 0 {
		return 0
	}
	return float64(s.LatencySum) / float64(s.Ejected)
}

// Interval is one closed time-series bucket.
type Interval struct {
	Start int64 // first cycle of the bucket
	End   int64 // one past the last observed cycle (Start+Every, except a trailing partial bucket)
	// NetInFlight is the fabric's total occupancy (queued + in network)
	// at the interval's last sampled cycle.
	NetInFlight int64
	Domains     []DomainSlice
}

// Heatmap is the spatial view of one run: per-router and per-out-link
// counters indexed by mesh node ID (and geom direction for links).
type Heatmap struct {
	Mesh              geom.Mesh
	RouterFlits       []int64                    // flits forwarded through each router
	RouterDeflections []int64                    // deflections suffered at each router
	RouterEjections   []int64                    // packets delivered at each router
	LinkFlits         [][geom.NumLinkDirs]int64  // flits sent on each out-link
	Cycles            int64                      // observed cycles, for utilization
}

// Utilization returns the flits-per-cycle utilization of node's
// out-link in direction d over the observed cycles.
func (h Heatmap) Utilization(node int, d geom.Dir) float64 {
	if h.Cycles == 0 {
		return 0
	}
	return float64(h.LinkFlits[node][d]) / float64(h.Cycles)
}

// Probe accumulates one run's time series and heatmaps.  The zero
// value is disarmed and ignores every event; call Arm (sim.Run does it
// when Options.Probe is set) before driving a fabric.
type Probe struct {
	cfg   Config
	armed bool

	buckets []Interval
	occ     []int64 // per-domain live occupancy (created − ejected, unwindowed)
	last    int64   // last cycle observed by Tick (or any event)

	routerFlits       []int64
	routerDeflections []int64
	routerEjections   []int64
	linkFlits         [][geom.NumLinkDirs]int64
}

// Armed reports whether the probe has been armed for a run.
func (pr *Probe) Armed() bool { return pr != nil && pr.armed }

// Arm resets the probe and configures it for one run.  Re-arming
// discards all previously recorded data.
func (pr *Probe) Arm(cfg Config) {
	if cfg.Every <= 0 {
		cfg.Every = DefaultEvery
	}
	nodes := cfg.Mesh.Nodes()
	pr.cfg = cfg
	pr.armed = true
	pr.buckets = nil
	pr.occ = make([]int64, cfg.Domains)
	pr.last = -1
	pr.routerFlits = make([]int64, nodes)
	pr.routerDeflections = make([]int64, nodes)
	pr.routerEjections = make([]int64, nodes)
	pr.linkFlits = make([][geom.NumLinkDirs]int64, nodes)
}

// inWindow mirrors stats.Collector.InWindow.
func (pr *Probe) inWindow(createdAt int64) bool {
	return createdAt >= pr.cfg.WarmupEnd &&
		(pr.cfg.MeasureEnd == 0 || createdAt < pr.cfg.MeasureEnd)
}

// bucket returns the interval holding cycle now, growing the series as
// the run advances.
func (pr *Probe) bucket(now int64) *Interval {
	idx := int(now / pr.cfg.Every)
	for len(pr.buckets) <= idx {
		start := int64(len(pr.buckets)) * pr.cfg.Every
		pr.buckets = append(pr.buckets, Interval{
			Start:   start,
			End:     start + pr.cfg.Every,
			//nocvet:alloc amortized lazy bucket growth; the probe is armed only on observed runs
			Domains: make([]DomainSlice, pr.cfg.Domains),
		})
	}
	if now > pr.last {
		pr.last = now
	}
	return &pr.buckets[idx]
}

// Created records an in-window NI acceptance (and domain occupancy for
// any packet).  Wired from stats.Collector.
func (pr *Probe) Created(p *packet.Packet) {
	if pr == nil || !pr.armed {
		return
	}
	pr.occ[p.Domain]++
	if pr.inWindow(p.CreatedAt) {
		pr.bucket(p.CreatedAt).Domains[p.Domain].Created++
	}
}

// Refused records a rejected offer at cycle now.
func (pr *Probe) Refused(domain int, now int64) {
	if pr == nil || !pr.armed {
		return
	}
	if pr.inWindow(now) {
		pr.bucket(now).Domains[domain].Refused++
	}
}

// Injected records an in-window packet entering the network.
func (pr *Probe) Injected(p *packet.Packet) {
	if pr == nil || !pr.armed {
		return
	}
	if pr.inWindow(p.CreatedAt) {
		pr.bucket(p.InjectedAt).Domains[p.Domain].Injected++
	}
}

// Ejected records a delivery: the time series entry at the ejection
// cycle and the destination router's heatmap cell.
func (pr *Probe) Ejected(p *packet.Packet) {
	if pr == nil || !pr.armed {
		return
	}
	pr.occ[p.Domain]--
	if !pr.inWindow(p.CreatedAt) {
		return
	}
	d := &pr.bucket(p.EjectedAt).Domains[p.Domain]
	d.Ejected++
	d.LatencySum += p.TotalLatency()
	pr.routerEjections[pr.cfg.Mesh.ID(p.Dst)]++
}

// Traverse is the router hot-path hook: flits of p left node through
// out-link dir at cycle now; deflected marks an unproductive hop.
// Packet-granular fabrics call it once per forward with flits =
// p.Size; flit-granular (VC) fabrics once per link flit with flits = 1.
func (pr *Probe) Traverse(node int, dir geom.Dir, p *packet.Packet, flits int, deflected bool, now int64) {
	if pr == nil || !pr.armed || !pr.inWindow(p.CreatedAt) {
		return
	}
	pr.routerFlits[node] += int64(flits)
	pr.linkFlits[node][dir] += int64(flits)
	if deflected {
		pr.routerDeflections[node]++
		pr.bucket(now).Domains[p.Domain].Deflections++
	}
	if now > pr.last {
		pr.last = now
	}
}

// Tick samples occupancy at the end of cycle now; the driver calls it
// once per cycle after Fabric.Step.  inFlight is the fabric's total
// occupancy (network.Fabric.InFlight).
func (pr *Probe) Tick(now int64, inFlight int) {
	if pr == nil || !pr.armed {
		return
	}
	b := pr.bucket(now)
	b.NetInFlight = int64(inFlight)
	for d := range b.Domains {
		b.Domains[d].InFlight = pr.occ[d]
	}
}

// Intervals returns the recorded time series.  The trailing bucket of
// a run whose length is not a multiple of Every is truncated to the
// last observed cycle (End = last+1), so interval widths are exact.
func (pr *Probe) Intervals() []Interval {
	if pr == nil || len(pr.buckets) == 0 {
		return nil
	}
	out := make([]Interval, len(pr.buckets))
	copy(out, pr.buckets)
	lastIdx := len(out) - 1
	if end := pr.last + 1; end < out[lastIdx].End {
		out[lastIdx].End = end
	}
	return out
}

// Heatmap returns the spatial counters accumulated so far.  Cycles is
// the utilization denominator: the measurement-window length, or the
// observed post-warm-up span when the window is unbounded.
func (pr *Probe) Heatmap() Heatmap {
	if pr == nil || !pr.armed {
		return Heatmap{}
	}
	cycles := pr.cfg.MeasureEnd - pr.cfg.WarmupEnd
	if pr.cfg.MeasureEnd == 0 {
		if cycles = pr.last + 1 - pr.cfg.WarmupEnd; cycles < 0 {
			cycles = 0
		}
	}
	return Heatmap{
		Mesh:              pr.cfg.Mesh,
		RouterFlits:       pr.routerFlits,
		RouterDeflections: pr.routerDeflections,
		RouterEjections:   pr.routerEjections,
		LinkFlits:         pr.linkFlits,
		Cycles:            cycles,
	}
}

// Totals sums the time series per domain — the reconciliation point
// against stats.Domain (exact once LeftInFlight is zero).
func (pr *Probe) Totals() []DomainSlice {
	if pr == nil {
		return nil
	}
	tot := make([]DomainSlice, pr.cfg.Domains)
	for _, b := range pr.buckets {
		for d, s := range b.Domains {
			tot[d].Created += s.Created
			tot[d].Refused += s.Refused
			tot[d].Injected += s.Injected
			tot[d].Ejected += s.Ejected
			tot[d].Deflections += s.Deflections
			tot[d].LatencySum += s.LatencySum
		}
	}
	return tot
}

// Domains returns the number of domains the probe was armed for.
func (pr *Probe) Domains() int {
	if pr == nil {
		return 0
	}
	return pr.cfg.Domains
}

// Every returns the armed bucket width in cycles.
func (pr *Probe) Every() int64 {
	if pr == nil {
		return 0
	}
	return pr.cfg.Every
}
