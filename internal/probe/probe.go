// Package probe is the simulator's low-overhead observability layer:
// it turns a run's packet-lifecycle and router hot-path events into
// (a) per-interval time series — injections, ejections, refusals,
// deflections, drops, retransmissions, in-flight occupancy and mean
// latency per domain, bucketed every Every cycles — and (b) spatial
// heatmaps — per-router flit traversals, deflections and ejections
// plus per-link flit counts accumulated over the run.
//
// Measurement discipline matches package stats exactly: only packets
// created inside [WarmupEnd, MeasureEnd) contribute, so the probe's
// totals reconcile with the collector's stats.Domain aggregates (to
// the packet, once the network has fully drained).  Events are
// bucketed by the cycle they happen at, which may fall after
// MeasureEnd for in-window packets that eject during the drain phase.
//
// Hot-path architecture (DESIGN.md §15): hooks do not accumulate.
// Every hook appends one fixed-size Event into a preallocated ring
// segment — per-router segments for the router events, one driver
// segment for the NI/collector lifecycle stream — and all windowing,
// bucketing and counter arithmetic happens once per ProbeEvery
// interval when the ring drains (Probe.fold).  An append is a bounds
// check, a capacity check and a 48-byte store: no allocation, no
// pointer chase, no interface dispatch.  Drained batches additionally
// fan out to attached Taps (flight recorder, Perfetto span export).
//
// Overhead: a disarmed (nil) *Probe is safe to call and costs one
// branch — fabrics guard their hot-path hooks with a nil check, and
// every method returns immediately on a nil receiver — so probe-off
// runs pay nothing measurable.  Probe-on runs are gated to ≤1.10×
// the unprobed Step time on SB/WH/Surf (`make probe-overhead`).
// Like the fabrics, a Probe is a single-goroutine state machine: do
// not share one across concurrent runs.
package probe

import (
	"surfbless/internal/geom"
	"surfbless/internal/packet"
)

// DefaultEvery is the interval width used when a caller arms a probe
// without choosing one.
const DefaultEvery = 100

// Ring sizing: each router gets a segment of ringBudget/nodes events
// (clamped to [minSegCap, maxSegCap]); the driver lifecycle stream,
// which multiplexes every NI and the per-cycle occupancy samples,
// gets driverSegCap.  A full segment flushes early — exactness never
// depends on capacity, only batching efficiency does.
const (
	ringBudget   = 1 << 14
	minSegCap    = 64
	maxSegCap    = 1024
	driverSegCap = 4096
)

// drainStride paces ring drains: Tick flushes the ring every
// min(Every, drainStride) cycles.  Draining more often than the bucket
// width costs nothing in exactness (fold windows each event by its own
// cycle) but keeps the batch working set small enough to stay
// cache-resident while it is written and immediately re-read.
const drainStride = 32

// Config arms a probe for one run.
type Config struct {
	Mesh    geom.Mesh
	Domains int
	// Every is the time-series bucket width in cycles (≤0 = DefaultEvery).
	Every int64
	// WarmupEnd / MeasureEnd bound the measurement window, exactly as in
	// stats.NewCollector.  MeasureEnd == 0 means "no upper bound".
	WarmupEnd  int64
	MeasureEnd int64
}

// DomainSlice is one domain's counters over one time-series interval.
type DomainSlice struct {
	Created     int64 // in-window packets accepted by an NI this interval
	Refused     int64 // offers rejected by a full NI queue
	Injected    int64 // in-window packets entering the network
	Ejected     int64 // in-window packets delivered
	Deflections int64 // unproductive hops suffered by in-window packets
	Dropped     int64 // in-window packets discarded by the fault machinery
	Retransmits int64 // source retransmission attempts this interval
	LatencySum  int64 // total (creation→ejection) latency of the interval's ejections
	InFlight    int64 // domain occupancy at the interval's last sampled cycle
}

// MeanLatency returns the interval's average total packet latency, or
// 0 when nothing was delivered in it.
func (s DomainSlice) MeanLatency() float64 {
	if s.Ejected == 0 {
		return 0
	}
	return float64(s.LatencySum) / float64(s.Ejected)
}

// Interval is one closed time-series bucket.
type Interval struct {
	Start int64 // first cycle of the bucket
	End   int64 // one past the last observed cycle (Start+Every, except a trailing partial bucket)
	// NetInFlight is the fabric's total occupancy (queued + in network)
	// at the interval's last sampled cycle.
	NetInFlight int64
	Domains     []DomainSlice
}

// Heatmap is the spatial view of one run: per-router and per-out-link
// counters indexed by mesh node ID (and geom direction for links).
type Heatmap struct {
	Mesh              geom.Mesh
	RouterFlits       []int64                   // flits forwarded through each router
	RouterDeflections []int64                   // deflections suffered at each router
	RouterEjections   []int64                   // packets delivered at each router
	LinkFlits         [][geom.NumLinkDirs]int64 // flits sent on each out-link
	Cycles            int64                     // observed cycles, for utilization
}

// Utilization returns the flits-per-cycle utilization of node's
// out-link in direction d over the observed cycles.
func (h Heatmap) Utilization(node int, d geom.Dir) float64 {
	if h.Cycles == 0 {
		return 0
	}
	return float64(h.LinkFlits[node][d]) / float64(h.Cycles)
}

// segment is one preallocated ring region.  buf never grows after
// Arm; n is the append cursor, reset by each flush.
type segment struct {
	buf []Event
	n   int
}

// Probe accumulates one run's time series and heatmaps.  The zero
// value is disarmed and ignores every event; call Arm (sim.Run does it
// when Options.Probe is set) before driving a fabric.
//
//hook:nil-disabled
type Probe struct {
	cfg   Config
	armed bool

	// Event ring: segs[node] for router events, segs[len-1] for the
	// driver lifecycle/tick stream.
	segs      []segment
	taps      []Tap
	nextDrain int64
	stride    int64 // drain pacing, min(Every, drainStride)

	// Drain-side accumulation.  The series is flat —
	// dom[bucket*Domains+d] — so folding an event costs one indexed
	// store, never a per-bucket pointer chase.
	dom  []DomainSlice
	net  []int64 // per-bucket NetInFlight
	occ  []int64 // per-domain live occupancy (created − ejected − dropped, unwindowed)
	last int64   // last cycle observed by any event

	routerFlits       []int64
	routerDeflections []int64
	routerEjections   []int64
	linkFlits         [][geom.NumLinkDirs]int64
}

// Armed reports whether the probe has been armed for a run.
func (pr *Probe) Armed() bool { return pr != nil && pr.armed }

// Arm resets the probe and configures it for one run.  Re-arming
// discards all previously recorded data and detaches any taps.
func (pr *Probe) Arm(cfg Config) {
	if cfg.Every <= 0 {
		cfg.Every = DefaultEvery
	}
	nodes := cfg.Mesh.Nodes()
	segCap := ringBudget / nodes
	if segCap < minSegCap {
		segCap = minSegCap
	}
	if segCap > maxSegCap {
		segCap = maxSegCap
	}
	pr.cfg = cfg
	pr.armed = true
	pr.segs = make([]segment, nodes+1)
	for i := 0; i < nodes; i++ {
		pr.segs[i].buf = make([]Event, segCap)
		// Router segments only ever hold Traverse events, whose Src/Dst
		// are always "not recorded": pin them once so the hot-path
		// append never writes them.
		for j := range pr.segs[i].buf {
			pr.segs[i].buf[j].Src = -1
			pr.segs[i].buf[j].Dst = -1
		}
	}
	pr.segs[nodes].buf = make([]Event, driverSegCap)
	pr.taps = nil
	pr.stride = cfg.Every
	if pr.stride > drainStride {
		pr.stride = drainStride
	}
	pr.nextDrain = pr.stride

	// Preallocate the series for the bounded part of the run so that
	// steady-state probed stepping stays allocation-free; drain-phase
	// buckets past MeasureEnd (and unbounded runs) grow amortized.
	nb := 64
	if cfg.MeasureEnd > 0 {
		if nb = int(cfg.MeasureEnd/cfg.Every) + 8; nb > 1<<16 {
			nb = 1 << 16
		}
	}
	pr.dom = make([]DomainSlice, 0, nb*cfg.Domains)
	pr.net = make([]int64, 0, nb)
	pr.occ = make([]int64, cfg.Domains)
	pr.last = -1
	pr.routerFlits = make([]int64, nodes)
	pr.routerDeflections = make([]int64, nodes)
	pr.routerEjections = make([]int64, nodes)
	pr.linkFlits = make([][geom.NumLinkDirs]int64, nodes)
}

// AttachTap subscribes t to drained event batches (flight recorder,
// span exporters).  Taps attach after Arm; Arm detaches them.
func (pr *Probe) AttachTap(t Tap) {
	pr.taps = append(pr.taps, t)
}

// inWindow mirrors stats.Collector.InWindow.
func (pr *Probe) inWindow(createdAt int64) bool {
	return createdAt >= pr.cfg.WarmupEnd &&
		(pr.cfg.MeasureEnd == 0 || createdAt < pr.cfg.MeasureEnd)
}

// bucketIdx returns the series index of cycle's bucket, growing the
// flat series as the run advances (amortized; pre-sized by Arm for
// the measured span).
func (pr *Probe) bucketIdx(cycle int64) int {
	idx := int(cycle / pr.cfg.Every)
	for len(pr.net) <= idx {
		pr.net = append(pr.net, 0)
		for d := 0; d < pr.cfg.Domains; d++ {
			pr.dom = append(pr.dom, DomainSlice{})
		}
	}
	return idx
}

// slot returns the series cell for domain d in cycle's bucket.
func (pr *Probe) slot(cycle int64, d int) *DomainSlice {
	return &pr.dom[pr.bucketIdx(cycle)*pr.cfg.Domains+d]
}

// foldRouter drains one router segment's batch.  Router segments are
// homogeneous — every event is a link traversal — so this skips the
// per-event kind dispatch of the driver-stream fold.
func (pr *Probe) foldRouter(b []Event) {
	for i := range b {
		e := &b[i]
		if e.Cycle > pr.last {
			pr.last = e.Cycle
		}
		if !pr.inWindow(e.Created) {
			continue
		}
		f := int64(e.Flits)
		pr.routerFlits[e.Node] += f
		pr.linkFlits[e.Node][e.Dir] += f
		if e.Kind == KindDeflect {
			pr.routerDeflections[e.Node]++
			pr.slot(e.Cycle, int(e.Domain)).Deflections++
		}
	}
}

// fold drains one driver-stream batch into the interval series and
// heatmaps.  This is where all windowing and bucketing happens — once
// per batch, off the router hot path.
func (pr *Probe) fold(b []Event) {
	for i := range b {
		e := &b[i]
		if e.Cycle > pr.last {
			pr.last = e.Cycle
		}
		switch e.Kind {
		case KindCreated:
			pr.occ[e.Domain]++
			if pr.inWindow(e.Created) {
				pr.slot(e.Cycle, int(e.Domain)).Created++
			}
		case KindRefused:
			if pr.inWindow(e.Cycle) {
				pr.slot(e.Cycle, int(e.Domain)).Refused++
			}
		case KindInjected:
			if pr.inWindow(e.Created) {
				pr.slot(e.Cycle, int(e.Domain)).Injected++
			}
		case KindEjected:
			pr.occ[e.Domain]--
			if pr.inWindow(e.Created) {
				s := pr.slot(e.Cycle, int(e.Domain))
				s.Ejected++
				s.LatencySum += e.Cycle - e.Created
				pr.routerEjections[e.Node]++
			}
		case KindDropped:
			pr.occ[e.Domain]--
			if pr.inWindow(e.Created) {
				pr.slot(e.Cycle, int(e.Domain)).Dropped++
			}
		case KindRetransmit:
			if pr.inWindow(e.Cycle) {
				pr.slot(e.Cycle, int(e.Domain)).Retransmits++
			}
		case KindLinkBusy, KindDeflect:
			if !pr.inWindow(e.Created) {
				continue
			}
			pr.routerFlits[e.Node] += int64(e.Flits)
			pr.linkFlits[e.Node][e.Dir] += int64(e.Flits)
			if e.Kind == KindDeflect {
				pr.routerDeflections[e.Node]++
				pr.slot(e.Cycle, int(e.Domain)).Deflections++
			}
		case KindTick:
			idx := pr.bucketIdx(e.Cycle)
			pr.net[idx] = int64(e.Flits)
			row := pr.dom[idx*pr.cfg.Domains : (idx+1)*pr.cfg.Domains]
			for d := range row {
				row[d].InFlight = pr.occ[d]
			}
		}
	}
}

// flush folds one driver segment and fans its batch out to the taps.
func (pr *Probe) flush(s *segment) {
	if s.n == 0 {
		return
	}
	b := s.buf[:s.n]
	pr.fold(b)
	for _, t := range pr.taps {
		t.Consume(b)
	}
	s.n = 0
}

// flushRouter folds one router segment — homogeneous traversal
// events — and fans its batch out to the taps.
func (pr *Probe) flushRouter(s *segment) {
	if s.n == 0 {
		return
	}
	b := s.buf[:s.n]
	pr.foldRouter(b)
	for _, t := range pr.taps {
		t.Consume(b)
	}
	s.n = 0
}

// Flush drains every ring segment — router segments in node order,
// the driver stream last — into the series, heatmaps and taps.  The
// accessors below call it implicitly; sim.Run calls it before taking
// a flight-recorder snapshot so the dump holds the newest events.
func (pr *Probe) Flush() {
	if pr == nil || !pr.armed {
		return
	}
	for i := 0; i < len(pr.segs)-1; i++ {
		pr.flushRouter(&pr.segs[i])
	}
	pr.flush(pr.driver())
}

// driver returns the driver lifecycle segment; callers hold the
// pr==nil/armed guard.
func (pr *Probe) driver() *segment { return &pr.segs[len(pr.segs)-1] }

// lifecycle appends one driver-stream packet event at cycle.
func (pr *Probe) lifecycle(kind Kind, p *packet.Packet, cycle int64, node int32) {
	s := pr.driver()
	if s.n == len(s.buf) {
		pr.flush(s)
	}
	e := &s.buf[s.n]
	s.n++
	e.Cycle = cycle
	e.Created = p.CreatedAt
	e.ID = p.ID
	e.Node = node
	e.Src = int32(pr.cfg.Mesh.ID(p.Src))
	e.Dst = int32(pr.cfg.Mesh.ID(p.Dst))
	e.Flits = int32(p.Size)
	e.Domain = int16(p.Domain)
	e.Kind = kind
	e.Dir = 0
}

// Created records an in-window NI acceptance (and domain occupancy for
// any packet).  Wired from stats.Collector.
func (pr *Probe) Created(p *packet.Packet) {
	if pr == nil || !pr.armed {
		return
	}
	pr.lifecycle(KindCreated, p, p.CreatedAt, -1)
}

// Refused records a rejected offer at cycle now.
func (pr *Probe) Refused(domain int, now int64) {
	if pr == nil || !pr.armed {
		return
	}
	s := pr.driver()
	if s.n == len(s.buf) {
		pr.flush(s)
	}
	e := &s.buf[s.n]
	s.n++
	*e = Event{Cycle: now, Node: -1, Src: -1, Dst: -1, Domain: int16(domain), Kind: KindRefused}
}

// Injected records an in-window packet entering the network.
func (pr *Probe) Injected(p *packet.Packet) {
	if pr == nil || !pr.armed {
		return
	}
	pr.lifecycle(KindInjected, p, p.InjectedAt, -1)
}

// Ejected records a delivery: the time series entry at the ejection
// cycle and the destination router's heatmap cell.
func (pr *Probe) Ejected(p *packet.Packet) {
	if pr == nil || !pr.armed {
		return
	}
	pr.lifecycle(KindEjected, p, p.EjectedAt, int32(pr.cfg.Mesh.ID(p.Dst)))
}

// Dropped records a packet discarded by the fault machinery after its
// retransmission budget ran out; like an ejection it ends the
// packet's occupancy.
func (pr *Probe) Dropped(p *packet.Packet, now int64) {
	if pr == nil || !pr.armed {
		return
	}
	pr.lifecycle(KindDropped, p, now, -1)
}

// Retransmitted records one source retransmission attempt after a
// fault drop.
func (pr *Probe) Retransmitted(p *packet.Packet, now int64) {
	if pr == nil || !pr.armed {
		return
	}
	pr.lifecycle(KindRetransmit, p, now, -1)
}

// Traverse is the router hot-path hook: flits of p left node through
// out-link dir at cycle now; deflected marks an unproductive hop.
// Packet-granular fabrics call it once per forward with flits =
// p.Size; flit-granular (VC) fabrics once per link flit with flits = 1.
// It appends one event to the node's ring segment and nothing more —
// the accounting happens at drain time.
func (pr *Probe) Traverse(node int, dir geom.Dir, p *packet.Packet, flits int, deflected bool, now int64) {
	if pr == nil || !pr.armed {
		return
	}
	s := &pr.segs[node]
	n := s.n
	if n == len(s.buf) {
		pr.flushRouter(s)
		n = 0
	}
	s.n = n + 1
	e := &s.buf[n]
	e.Cycle = now
	e.Created = p.CreatedAt
	e.ID = p.ID
	e.Node = int32(node)
	// Src/Dst stay at the -1 Arm pinned into router segments.
	e.Flits = int32(flits)
	e.Domain = int16(p.Domain)
	k := KindLinkBusy
	if deflected {
		k = KindDeflect
	}
	e.Kind = k
	e.Dir = uint8(dir)
}

// Tick samples occupancy at the end of cycle now; the driver calls it
// once per cycle after Fabric.Step.  inFlight is the fabric's total
// occupancy (network.Fabric.InFlight).  Tick also paces the ring: the
// whole ring drains once per Every cycles.
func (pr *Probe) Tick(now int64, inFlight int) {
	if pr == nil || !pr.armed {
		return
	}
	s := pr.driver()
	if s.n == len(s.buf) {
		pr.flush(s)
	}
	e := &s.buf[s.n]
	s.n++
	*e = Event{Cycle: now, Node: -1, Src: -1, Dst: -1, Flits: int32(inFlight), Kind: KindTick}
	if now >= pr.nextDrain {
		pr.Flush()
		pr.nextDrain = now + pr.stride
	}
}

// Intervals returns the recorded time series.  The trailing bucket of
// a run whose length is not a multiple of Every is truncated to the
// last observed cycle (End = last+1), so interval widths are exact.
func (pr *Probe) Intervals() []Interval {
	if pr == nil || !pr.armed {
		return nil
	}
	pr.Flush()
	nb := len(pr.net)
	if nb == 0 {
		return nil
	}
	D := pr.cfg.Domains
	out := make([]Interval, nb)
	for i := range out {
		start := int64(i) * pr.cfg.Every
		ds := make([]DomainSlice, D)
		copy(ds, pr.dom[i*D:(i+1)*D])
		out[i] = Interval{Start: start, End: start + pr.cfg.Every, NetInFlight: pr.net[i], Domains: ds}
	}
	if end := pr.last + 1; end < out[nb-1].End {
		out[nb-1].End = end
	}
	return out
}

// Heatmap returns the spatial counters accumulated so far.  Cycles is
// the utilization denominator: the measurement-window length, or the
// observed post-warm-up span when the window is unbounded.
func (pr *Probe) Heatmap() Heatmap {
	if pr == nil || !pr.armed {
		return Heatmap{}
	}
	pr.Flush()
	cycles := pr.cfg.MeasureEnd - pr.cfg.WarmupEnd
	if pr.cfg.MeasureEnd == 0 {
		if cycles = pr.last + 1 - pr.cfg.WarmupEnd; cycles < 0 {
			cycles = 0
		}
	}
	return Heatmap{
		Mesh:              pr.cfg.Mesh,
		RouterFlits:       pr.routerFlits,
		RouterDeflections: pr.routerDeflections,
		RouterEjections:   pr.routerEjections,
		LinkFlits:         pr.linkFlits,
		Cycles:            cycles,
	}
}

// Totals sums the time series per domain — the reconciliation point
// against stats.Domain (exact once LeftInFlight is zero).
func (pr *Probe) Totals() []DomainSlice {
	if pr == nil {
		return nil
	}
	pr.Flush()
	tot := make([]DomainSlice, pr.cfg.Domains)
	D := pr.cfg.Domains
	for i := 0; i+D <= len(pr.dom); i += D {
		for d := 0; d < D; d++ {
			s := &pr.dom[i+d]
			tot[d].Created += s.Created
			tot[d].Refused += s.Refused
			tot[d].Injected += s.Injected
			tot[d].Ejected += s.Ejected
			tot[d].Deflections += s.Deflections
			tot[d].Dropped += s.Dropped
			tot[d].Retransmits += s.Retransmits
			tot[d].LatencySum += s.LatencySum
		}
	}
	return tot
}

// Domains returns the number of domains the probe was armed for.
func (pr *Probe) Domains() int {
	if pr == nil {
		return 0
	}
	return pr.cfg.Domains
}

// Every returns the armed bucket width in cycles.
func (pr *Probe) Every() int64 {
	if pr == nil {
		return 0
	}
	return pr.cfg.Every
}
