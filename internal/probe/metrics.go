package probe

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Metrics is a small Prometheus-text metrics registry for the service
// layer: counters and gauges either owned by the registry (Counter /
// Gauge, atomically updated) or computed at scrape time from a
// callback (CounterFunc / GaugeFunc, e.g. the simcache hit/miss
// counters).  It exists so `-http` runs can expose live run state
// without depending on a metrics library; the exposition format is
// the Prometheus text format version 0.0.4, which Prometheus, Grafana
// Agent and `promtool` all scrape natively.
//
// Registration is idempotent: re-registering a name returns the
// existing instrument (Func variants replace the callback), so the
// per-run wiring in cmd/experiments and cmd/sweep can re-register on
// every run without accumulating duplicates.  All methods are safe
// for concurrent use — scrapes race with simulation goroutines.
type Metrics struct {
	mu     sync.Mutex
	order  []string
	metric map[string]*instrument
}

// metric kinds in the exposition's # TYPE line.
const (
	kindCounter = "counter"
	kindGauge   = "gauge"
)

type instrument struct {
	name string
	help string
	kind string
	val  atomic.Int64
	fn   func() int64 // scrape-time source; nil for owned instruments
}

// Counter is a monotonically increasing owned metric.  The zero value
// is a no-op sink, so instrumented code can update counters
// unconditionally whether or not a registry was wired.
type Counter struct{ in *instrument }

// Add increments the counter by n (n must be ≥ 0 to keep the metric
// monotone; negative deltas are ignored).
func (c Counter) Add(n int64) {
	if c.in != nil && n > 0 {
		c.in.val.Add(n)
	}
}

// Inc increments the counter by one.
func (c Counter) Inc() {
	if c.in != nil {
		c.in.val.Add(1)
	}
}

// Value returns the current count (0 for the zero value).
func (c Counter) Value() int64 {
	if c.in == nil {
		return 0
	}
	return c.in.val.Load()
}

// Gauge is an owned metric that can go up and down.  The zero value is
// a no-op sink, like Counter's.
type Gauge struct{ in *instrument }

// Set replaces the gauge's value.
func (g Gauge) Set(v int64) {
	if g.in != nil {
		g.in.val.Store(v)
	}
}

// Add moves the gauge by delta.
func (g Gauge) Add(delta int64) {
	if g.in != nil {
		g.in.val.Add(delta)
	}
}

// Value returns the current value (0 for the zero value).
func (g Gauge) Value() int64 {
	if g.in == nil {
		return 0
	}
	return g.in.val.Load()
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{metric: make(map[string]*instrument)}
}

func (m *Metrics) register(name, help, kind string, fn func() int64) *instrument {
	if err := checkMetricName(name); err != nil {
		panic(err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	in, ok := m.metric[name]
	if !ok {
		in = &instrument{name: name, help: help, kind: kind}
		m.metric[name] = in
		m.order = append(m.order, name)
	}
	if in.kind != kind {
		panic(fmt.Sprintf("metrics: %q re-registered as %s (was %s)", name, kind, in.kind))
	}
	in.fn = fn // Func re-registration rebinds the source; nil for owned
	return in
}

// Counter registers (or returns the existing) owned counter name.
func (m *Metrics) Counter(name, help string) Counter {
	return Counter{m.register(name, help, kindCounter, nil)}
}

// Gauge registers (or returns the existing) owned gauge name.
func (m *Metrics) Gauge(name, help string) Gauge {
	return Gauge{m.register(name, help, kindGauge, nil)}
}

// CounterFunc registers a counter whose value is read from fn at
// scrape time.  fn must be safe to call concurrently.
func (m *Metrics) CounterFunc(name, help string, fn func() int64) {
	m.register(name, help, kindCounter, fn)
}

// GaugeFunc registers a gauge whose value is read from fn at scrape
// time.  fn must be safe to call concurrently.
func (m *Metrics) GaugeFunc(name, help string, fn func() int64) {
	m.register(name, help, kindGauge, fn)
}

// WritePrometheus writes every registered metric in the Prometheus
// text exposition format, in registration order.
func (m *Metrics) WritePrometheus(w *strings.Builder) {
	m.mu.Lock()
	names := append([]string(nil), m.order...)
	ins := make([]*instrument, len(names))
	for i, n := range names {
		ins[i] = m.metric[n]
	}
	m.mu.Unlock()
	for _, in := range ins {
		v := in.val.Load()
		if in.fn != nil {
			v = in.fn()
		}
		if in.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", in.name, escapeHelp(in.help))
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", in.name, in.kind)
		fmt.Fprintf(w, "%s %d\n", in.name, v)
	}
}

// Handler returns the /metrics HTTP handler serving the registry.
func (m *Metrics) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		var b strings.Builder
		m.WritePrometheus(&b)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, b.String())
	})
}

// Names returns the registered metric names in registration order.
func (m *Metrics) Names() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := append([]string(nil), m.order...)
	sort.Strings(out)
	return out
}

// checkMetricName enforces the Prometheus metric-name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func checkMetricName(name string) error {
	if name == "" {
		return fmt.Errorf("metrics: empty name")
	}
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return fmt.Errorf("metrics: invalid metric name %q", name)
		}
	}
	return nil
}

// escapeHelp escapes backslashes and newlines per the exposition spec.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
