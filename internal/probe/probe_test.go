package probe_test

import (
	"strings"
	"testing"

	"surfbless/internal/geom"
	"surfbless/internal/packet"
	"surfbless/internal/probe"
)

// pkt builds a delivered packet with the given lifecycle stamps.
func pkt(id uint64, domain int, created, injected, ejected int64) *packet.Packet {
	p := packet.New(id, geom.Coord{X: 0, Y: 0}, geom.Coord{X: 1, Y: 1}, domain, packet.Ctrl, created)
	p.InjectedAt = injected
	p.EjectedAt = ejected
	return p
}

// TestNilAndDisarmedSafe: every event method must be a no-op on a nil
// receiver and on a zero-value (disarmed) probe — the routers' hot
// paths rely on it.
func TestNilAndDisarmedSafe(t *testing.T) {
	p := pkt(1, 0, 10, 11, 20)
	for name, pr := range map[string]*probe.Probe{"nil": nil, "disarmed": {}} {
		pr.Created(p)
		pr.Refused(0, 5)
		pr.Injected(p)
		pr.Ejected(p)
		pr.Traverse(0, geom.East, p, 1, true, 12)
		pr.Tick(12, 3)
		if pr.Armed() {
			t.Errorf("%s probe reports armed", name)
		}
		if got := pr.Intervals(); got != nil {
			t.Errorf("%s probe returned %d intervals", name, len(got))
		}
	}
}

// TestTrailingIntervalTruncated: a run whose length is not a multiple
// of Every must report a final bucket ending one past the last
// observed cycle, not at the full bucket boundary.
func TestTrailingIntervalTruncated(t *testing.T) {
	pr := &probe.Probe{}
	pr.Arm(probe.Config{Mesh: geom.NewMesh(2, 2), Domains: 1, Every: 100})
	for now := int64(0); now < 250; now++ {
		pr.Tick(now, 0)
	}
	ivs := pr.Intervals()
	if len(ivs) != 3 {
		t.Fatalf("got %d intervals, want 3", len(ivs))
	}
	for i, want := range []struct{ start, end int64 }{{0, 100}, {100, 200}, {200, 250}} {
		if ivs[i].Start != want.start || ivs[i].End != want.end {
			t.Errorf("interval %d = [%d,%d), want [%d,%d)", i, ivs[i].Start, ivs[i].End, want.start, want.end)
		}
	}
	// A run ending exactly on a bucket boundary keeps the full width.
	pr.Arm(probe.Config{Mesh: geom.NewMesh(2, 2), Domains: 1, Every: 100})
	for now := int64(0); now < 200; now++ {
		pr.Tick(now, 0)
	}
	ivs = pr.Intervals()
	if len(ivs) != 2 || ivs[1].End != 200 {
		t.Fatalf("aligned run: got %d intervals, last End %d, want 2 ending at 200", len(ivs), ivs[len(ivs)-1].End)
	}
}

// TestWarmupBoundary: events of packets created one cycle before the
// window or at MeasureEnd are excluded; the boundary cycles WarmupEnd
// and MeasureEnd-1 are included.
func TestWarmupBoundary(t *testing.T) {
	pr := &probe.Probe{}
	pr.Arm(probe.Config{Mesh: geom.NewMesh(2, 2), Domains: 1, Every: 50, WarmupEnd: 100, MeasureEnd: 200})
	for i, c := range []struct {
		created int64
		counted bool
	}{
		{99, false},  // last warm-up cycle
		{100, true},  // first measured cycle
		{199, true},  // last measured cycle
		{200, false}, // first drain-era creation
	} {
		p := pkt(uint64(i), 0, c.created, c.created+1, c.created+10)
		pr.Created(p)
		pr.Injected(p)
		pr.Ejected(p)
	}
	tot := pr.Totals()[0]
	if tot.Created != 2 || tot.Injected != 2 || tot.Ejected != 2 {
		t.Errorf("totals = %+v, want 2 created/injected/ejected", tot)
	}
	// Out-of-window packets still move occupancy: 4 created, 4 ejected.
	pr.Tick(210, 0)
	ivs := pr.Intervals()
	if got := ivs[len(ivs)-1].Domains[0].InFlight; got != 0 {
		t.Errorf("final occupancy = %d, want 0", got)
	}
}

// TestDrainEjectionBucketed: an in-window packet ejecting after
// MeasureEnd still lands in the series, bucketed at its ejection cycle.
func TestDrainEjectionBucketed(t *testing.T) {
	pr := &probe.Probe{}
	pr.Arm(probe.Config{Mesh: geom.NewMesh(2, 2), Domains: 1, Every: 100, WarmupEnd: 0, MeasureEnd: 200})
	p := pkt(1, 0, 150, 151, 260)
	pr.Created(p)
	pr.Injected(p)
	pr.Ejected(p)
	ivs := pr.Intervals()
	if len(ivs) != 3 {
		t.Fatalf("got %d intervals, want 3 (ejection at 260)", len(ivs))
	}
	if got := ivs[2].Domains[0].Ejected; got != 1 {
		t.Errorf("drain bucket ejections = %d, want 1", got)
	}
	if got := ivs[2].Domains[0].LatencySum; got != 110 {
		t.Errorf("drain bucket latency sum = %d, want 110", got)
	}
}

// TestHeatmapAndExports covers the spatial counters and both exporters'
// shapes on a hand-driven run.
func TestHeatmapAndExports(t *testing.T) {
	mesh := geom.NewMesh(2, 2)
	pr := &probe.Probe{}
	pr.Arm(probe.Config{Mesh: mesh, Domains: 2, Every: 100, WarmupEnd: 0, MeasureEnd: 100})
	p := pkt(1, 1, 10, 11, 40)
	pr.Created(p)
	pr.Injected(p)
	pr.Traverse(0, geom.East, p, 1, false, 20)
	pr.Traverse(1, geom.South, p, 1, true, 30)
	pr.Ejected(p)
	pr.Tick(40, 0)

	h := pr.Heatmap()
	if h.Cycles != 100 {
		t.Errorf("heatmap cycles = %d, want 100", h.Cycles)
	}
	if h.RouterFlits[0] != 1 || h.RouterFlits[1] != 1 {
		t.Errorf("router flits = %v", h.RouterFlits)
	}
	if h.RouterDeflections[1] != 1 || h.RouterDeflections[0] != 0 {
		t.Errorf("router deflections = %v", h.RouterDeflections)
	}
	if got := h.RouterEjections[mesh.ID(p.Dst)]; got != 1 {
		t.Errorf("ejection heatmap at destination = %d, want 1", got)
	}
	if got := h.Utilization(0, geom.East); got != 0.01 {
		t.Errorf("utilization = %v, want 0.01", got)
	}

	var ts strings.Builder
	if err := pr.WriteTimeSeriesJSONL(&ts); err != nil {
		t.Fatal(err)
	}
	// One line per (interval, domain): 1 interval × 2 domains.
	if lines := strings.Count(ts.String(), "\n"); lines != 2 {
		t.Errorf("JSONL lines = %d, want 2\n%s", lines, ts.String())
	}
	if !strings.Contains(ts.String(), `"deflections":1`) {
		t.Errorf("JSONL missing deflection count:\n%s", ts.String())
	}

	var hm strings.Builder
	if err := pr.WriteHeatmapCSV(&hm); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(hm.String()), "\n")
	if len(lines) != 1+mesh.Nodes() {
		t.Errorf("heatmap CSV rows = %d, want %d", len(lines), 1+mesh.Nodes())
	}
	if lines[0] != probe.HeatmapHeader {
		t.Errorf("heatmap header = %q", lines[0])
	}

	if s := pr.Summary(); !strings.Contains(s, "domain 1") {
		t.Errorf("summary missing domain block:\n%s", s)
	}
}

// TestExportBeforeArm: the heatmap exporter refuses to write garbage
// from an unarmed probe.
func TestExportBeforeArm(t *testing.T) {
	pr := &probe.Probe{}
	if err := pr.WriteHeatmapCSV(&strings.Builder{}); err == nil {
		t.Fatal("expected error exporting before Arm")
	}
}

// TestRearmResets: Arm must discard all data from a previous run.
func TestRearmResets(t *testing.T) {
	pr := &probe.Probe{}
	pr.Arm(probe.Config{Mesh: geom.NewMesh(2, 2), Domains: 1, Every: 10})
	p := pkt(1, 0, 5, 6, 9)
	pr.Created(p)
	pr.Ejected(p)
	pr.Arm(probe.Config{Mesh: geom.NewMesh(2, 2), Domains: 1, Every: 10})
	if got := pr.Intervals(); got != nil {
		t.Errorf("re-armed probe kept %d intervals", len(got))
	}
	if tot := pr.Totals()[0]; tot.Ejected != 0 {
		t.Errorf("re-armed probe kept totals %+v", tot)
	}
}

// TestDefaultEvery: arming with Every ≤ 0 falls back to DefaultEvery.
func TestDefaultEvery(t *testing.T) {
	pr := &probe.Probe{}
	pr.Arm(probe.Config{Mesh: geom.NewMesh(2, 2), Domains: 1})
	if pr.Every() != probe.DefaultEvery {
		t.Errorf("Every = %d, want %d", pr.Every(), probe.DefaultEvery)
	}
}
