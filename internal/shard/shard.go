// Package shard partitions per-cycle fabric work across a persistent
// worker pool so giant meshes (32×32 and beyond) step in parallel.
//
// The intended shape is a two-phase barrier schedule (DESIGN.md §17):
// a fabric splits its node array into contiguous tiles, runs phase R
// (drain inbound link lines) over every tile, barriers, then runs
// phase F (allocate/arbitrate/forward, sending on outbound lines) over
// every tile.  Each link line has exactly one reader (phase R) and one
// writer (phase F) and a delay of at least one cycle, so the phases
// never observe same-cycle writes and the parallel schedule is
// bit-identical to the serial one.  Cross-cutting effects (meters,
// collector lifecycle events, global counters) are accumulated
// per-tile and replayed in tile order at the barrier by the caller.
//
// Pool workers are persistent goroutines signalled over channels; a
// steady-state Run performs no heap allocation.  A panic inside a tile
// (fabric invariant violations panic by design) is captured and
// re-raised on the calling goroutine — lowest tile first, so the
// surfaced failure is deterministic — which keeps sim.runLoop's
// recover-to-InvariantViolation contract intact under sharding.
package shard

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Range returns the half-open node interval [lo, hi) of tile t when n
// nodes are split into k contiguous tiles.  Tiles differ in size by at
// most one node and cover [0, n) exactly.
func Range(n, k, t int) (lo, hi int) {
	return t * n / k, (t + 1) * n / k
}

// Pool is a fixed-size persistent worker pool.  It is not safe for
// concurrent Run calls; fabrics own one pool and drive it from their
// (single-threaded) Step.
type Pool struct {
	workers int
	wake    []chan struct{}
	wg      sync.WaitGroup
	next    atomic.Int64
	tiles   int
	fn      func(int)
	panics  []any
	closed  bool
}

// NewPool starts workers persistent goroutines.  Close releases them.
func NewPool(workers int) *Pool {
	if workers < 1 {
		panic(fmt.Sprintf("shard: NewPool(%d)", workers))
	}
	p := &Pool{
		workers: workers,
		wake:    make([]chan struct{}, workers),
		panics:  make([]any, workers),
	}
	for i := range p.wake {
		p.wake[i] = make(chan struct{}, 1)
		go p.worker(p.wake[i])
	}
	return p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

func (p *Pool) worker(wake <-chan struct{}) {
	for range wake {
		for {
			t := int(p.next.Add(1)) - 1
			if t >= p.tiles {
				break
			}
			p.call(t)
		}
		p.wg.Done()
	}
}

// call runs one tile, capturing a panic into the tile's slot so Run
// can re-raise it deterministically on the caller.
func (p *Pool) call(t int) {
	defer func() {
		if r := recover(); r != nil {
			p.panics[t] = r
		}
	}()
	p.fn(t)
}

// Run executes fn(0) … fn(tiles-1) across the pool and returns when
// every tile has finished.  tiles must not exceed the worker count —
// the pool's capture buffers are sized at construction so the
// steady-state call stays allocation-free.  If any tile panicked, Run
// re-panics with the lowest-numbered tile's value after all tiles have
// completed.
func (p *Pool) Run(tiles int, fn func(tile int)) {
	if p.closed {
		panic("shard: Run on a closed Pool")
	}
	if tiles < 1 || tiles > p.workers {
		//nocvet:alloc panic-path formatting on caller misuse; runs at most once, while dying
		panic(fmt.Sprintf("shard: Run(%d) on a %d-worker pool", tiles, p.workers))
	}
	p.tiles = tiles
	p.fn = fn
	for t := 0; t < tiles; t++ {
		p.panics[t] = nil
	}
	p.next.Store(0)
	p.wg.Add(p.workers)
	for _, c := range p.wake {
		c <- struct{}{}
	}
	p.wg.Wait()
	p.fn = nil
	for t := 0; t < tiles; t++ {
		if r := p.panics[t]; r != nil {
			panic(r)
		}
	}
}

// Close stops the worker goroutines.  The pool must be idle; Run after
// Close panics.
func (p *Pool) Close() {
	if p.closed {
		return
	}
	p.closed = true
	for _, c := range p.wake {
		close(c)
	}
}
