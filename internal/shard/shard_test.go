package shard

import (
	"sync/atomic"
	"testing"
)

func TestRangeCoversExactly(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{64, 4}, {1024, 16}, {7, 3}, {5, 5}, {1, 1}} {
		prev := 0
		total := 0
		for tile := 0; tile < tc.k; tile++ {
			lo, hi := Range(tc.n, tc.k, tile)
			if lo != prev {
				t.Fatalf("Range(%d,%d,%d): lo %d, want %d (gap or overlap)", tc.n, tc.k, tile, lo, prev)
			}
			if hi < lo {
				t.Fatalf("Range(%d,%d,%d): hi %d < lo %d", tc.n, tc.k, tile, hi, lo)
			}
			total += hi - lo
			prev = hi
		}
		if prev != tc.n || total != tc.n {
			t.Fatalf("Range(%d,%d,·) covers %d nodes ending at %d, want %d", tc.n, tc.k, total, prev, tc.n)
		}
	}
}

func TestPoolRunsEveryTile(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	var hits [4]atomic.Int64
	for round := 0; round < 100; round++ {
		p.Run(4, func(tile int) { hits[tile].Add(1) })
	}
	for i := range hits {
		if got := hits[i].Load(); got != 100 {
			t.Fatalf("tile %d ran %d times, want 100", i, got)
		}
	}
}

func TestPoolFewerTilesThanWorkers(t *testing.T) {
	p := NewPool(8)
	defer p.Close()
	var sum atomic.Int64
	p.Run(3, func(tile int) { sum.Add(int64(tile) + 1) })
	if got := sum.Load(); got != 6 {
		t.Fatalf("sum %d, want 6", got)
	}
}

func TestPoolRepanicsLowestTile(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for round := 0; round < 20; round++ {
		got := func() (r any) {
			defer func() { r = recover() }()
			p.Run(4, func(tile int) {
				if tile == 1 || tile == 3 {
					panic(tile)
				}
			})
			return nil
		}()
		if got != 1 {
			t.Fatalf("round %d: recovered %v, want tile 1's panic", round, got)
		}
		// The pool must stay usable after a captured panic.
		p.Run(4, func(int) {})
	}
}

func TestPoolClosedRunPanics(t *testing.T) {
	p := NewPool(2)
	p.Close()
	p.Close() // idempotent
	defer func() {
		if recover() == nil {
			t.Fatal("Run on a closed pool did not panic")
		}
	}()
	p.Run(2, func(int) {})
}
