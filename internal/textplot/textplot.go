// Package textplot renders experiment results as aligned text tables
// and CSV, the output media of the benchmark harnesses (the paper's
// figures are regenerated as tables of the plotted series).
package textplot

import (
	"fmt"
	"strings"
)

// Table is a titled grid of cells with a header row.
type Table struct {
	Title string
	cols  []string
	rows  [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, cols ...string) *Table {
	if len(cols) == 0 {
		panic("textplot: table without columns")
	}
	return &Table{Title: title, cols: cols}
}

// Row appends a row; it panics on column-count mismatch so malformed
// harness output is caught immediately.
func (t *Table) Row(cells ...string) {
	if len(cells) != len(t.cols) {
		panic(fmt.Sprintf("textplot: row has %d cells, table %q has %d columns",
			len(cells), t.Title, len(t.cols)))
	}
	t.rows = append(t.rows, cells)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Cell returns the cell at (row, col).
func (t *Table) Cell(row, col int) string { return t.rows[row][col] }

// String renders the table as aligned monospace text.
func (t *Table) String() string {
	width := make([]int, len(t.cols))
	for i, c := range t.cols {
		width[i] = len(c)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.cols)
	total := len(width)*2 - 2
	for _, w := range width {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header first).
// Cells containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, `"`, `""`))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.cols)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// sparkLevels are the eight block glyphs Spark maps values onto.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Spark renders values as a unicode sparkline, scaled from the series
// minimum (▁) to its maximum (█).  A flat series renders as all-▁, an
// empty one as "".
func Spark(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := values[0], values[0]
	for _, v := range values[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		i := 0
		if hi > lo {
			i = int((v - lo) / (hi - lo) * float64(len(sparkLevels)-1))
		}
		b.WriteRune(sparkLevels[i])
	}
	return b.String()
}

// F formats a float compactly for table cells.
func F(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000:
		return fmt.Sprintf("%.0f", v)
	case v >= 10:
		return fmt.Sprintf("%.1f", v)
	case v >= 0.01:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// MJ formats an energy in joules as millijoules.
func MJ(joules float64) string { return fmt.Sprintf("%.3f", joules*1e3) }

// Pct formats a ratio as a signed percentage delta (1.05 → "+5.0%").
func Pct(ratio float64) string { return fmt.Sprintf("%+.1f%%", (ratio-1)*100) }
