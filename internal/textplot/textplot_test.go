package textplot

import (
	"strings"
	"testing"
)

func TestNewTablePanicsWithoutColumns(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewTable("t")
}

func TestRowArityChecked(t *testing.T) {
	tab := NewTable("t", "a", "b")
	defer func() {
		if recover() == nil {
			t.Error("short row accepted")
		}
	}()
	tab.Row("only-one")
}

func TestStringAlignment(t *testing.T) {
	tab := NewTable("demo", "name", "value")
	tab.Row("x", "1")
	tab.Row("longer", "22")
	out := tab.String()
	if !strings.Contains(out, "== demo ==") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("%d lines, want 5:\n%s", len(lines), out)
	}
	// Columns align: "value" header starts at the same offset in every row.
	off := strings.Index(lines[1], "value")
	if !strings.HasPrefix(lines[4][off:], "22") {
		t.Errorf("column misaligned:\n%s", out)
	}
}

func TestCellAccess(t *testing.T) {
	tab := NewTable("t", "a", "b")
	tab.Row("1", "2")
	if tab.Rows() != 1 || tab.Cell(0, 1) != "2" {
		t.Error("Rows/Cell broken")
	}
}

func TestCSV(t *testing.T) {
	tab := NewTable("t", "a", "b")
	tab.Row("plain", `has,comma "and quote"`)
	csv := tab.CSV()
	want := "a,b\nplain,\"has,comma \"\"and quote\"\"\"\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

func TestF(t *testing.T) {
	for v, want := range map[float64]string{
		0:      "0",
		1234.5: "1234",
		42.25:  "42.2",
		1.2345: "1.234",
		0.0001: "0.0001",
	} {
		if got := F(v); got != want {
			t.Errorf("F(%g) = %q, want %q", v, got, want)
		}
	}
}

func TestMJAndPct(t *testing.T) {
	if got := MJ(0.00123); got != "1.230" {
		t.Errorf("MJ = %q", got)
	}
	if got := Pct(1.0323); got != "+3.2%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct(0.95); got != "-5.0%" {
		t.Errorf("Pct = %q", got)
	}
}

func TestSpark(t *testing.T) {
	if got := Spark(nil); got != "" {
		t.Errorf("Spark(nil) = %q, want empty", got)
	}
	if got := Spark([]float64{3, 3, 3}); got != "▁▁▁" {
		t.Errorf("flat series = %q, want all-low", got)
	}
	got := []rune(Spark([]float64{0, 1, 2, 3, 4, 5, 6, 7}))
	if len(got) != 8 {
		t.Fatalf("Spark length = %d, want 8", len(got))
	}
	if got[0] != '▁' || got[7] != '█' {
		t.Errorf("ramp = %q: min must map to ▁ and max to █", string(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Errorf("ramp not monotonic: %q", string(got))
		}
	}
}
