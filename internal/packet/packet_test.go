package packet

import (
	"testing"
	"testing/quick"

	"surfbless/internal/geom"
)

func TestClassFlits(t *testing.T) {
	if Ctrl.Flits() != 1 {
		t.Errorf("ctrl packets are 1 flit, got %d", Ctrl.Flits())
	}
	if Data.Flits() != 5 {
		t.Errorf("data packets are 5 flits, got %d", Data.Flits())
	}
}

func TestClassString(t *testing.T) {
	if Ctrl.String() != "ctrl" || Data.String() != "data" {
		t.Error("class names wrong")
	}
	if Class(7).String() != "Class(7)" {
		t.Error("unknown class string wrong")
	}
}

func TestNewDefaults(t *testing.T) {
	p := New(3, geom.Coord{X: 0, Y: 0}, geom.Coord{X: 7, Y: 7}, 2, Data, 100)
	if p.Size != 5 {
		t.Errorf("Size = %d, want 5", p.Size)
	}
	if p.InjectedAt != -1 || p.EjectedAt != -1 {
		t.Error("injection/ejection stamps must start at -1")
	}
	if p.CreatedAt != 100 {
		t.Errorf("CreatedAt = %d", p.CreatedAt)
	}
	if p.VNet != -1 {
		t.Errorf("VNet = %d, want -1 (unused)", p.VNet)
	}
}

func TestLatencies(t *testing.T) {
	p := New(1, geom.Coord{}, geom.Coord{}, 0, Ctrl, 10)
	p.InjectedAt = 15
	p.EjectedAt = 40
	if got := p.QueueLatency(); got != 5 {
		t.Errorf("QueueLatency = %d, want 5", got)
	}
	if got := p.NetworkLatency(); got != 25 {
		t.Errorf("NetworkLatency = %d, want 25", got)
	}
	if got := p.TotalLatency(); got != 30 {
		t.Errorf("TotalLatency = %d, want 30", got)
	}
}

func TestLatencyPanicsBeforeStamps(t *testing.T) {
	p := New(1, geom.Coord{}, geom.Coord{}, 0, Ctrl, 0)
	assertPanics(t, "QueueLatency", func() { p.QueueLatency() })
	assertPanics(t, "NetworkLatency", func() { p.NetworkLatency() })
	assertPanics(t, "TotalLatency", func() { p.TotalLatency() })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s should panic before stamps are set", name)
		}
	}()
	f()
}

// Older must be a strict total order on (InjectedAt, ID).
func TestOlderTotalOrder(t *testing.T) {
	f := func(t1, t2 int32, id1, id2 uint16) bool {
		p := &Packet{ID: uint64(id1), InjectedAt: int64(t1)}
		q := &Packet{ID: uint64(id2), InjectedAt: int64(t2)}
		if p.InjectedAt == q.InjectedAt && p.ID == q.ID {
			return !p.Older(q) && !q.Older(p) // irreflexive on equals
		}
		return p.Older(q) != q.Older(p) // exactly one wins
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOlderPrefersEarlierInjection(t *testing.T) {
	old := &Packet{ID: 9, InjectedAt: 5}
	young := &Packet{ID: 1, InjectedAt: 6}
	if !old.Older(young) {
		t.Error("earlier injection must win regardless of ID")
	}
	tieA := &Packet{ID: 1, InjectedAt: 5}
	tieB := &Packet{ID: 2, InjectedAt: 5}
	if !tieA.Older(tieB) {
		t.Error("ties must break on smaller ID")
	}
}

func TestExplode(t *testing.T) {
	p := New(1, geom.Coord{}, geom.Coord{X: 3, Y: 0}, 0, Data, 0)
	fs := Explode(p)
	if len(fs) != 5 {
		t.Fatalf("Explode gave %d flits, want 5", len(fs))
	}
	if !fs[0].Head() || fs[0].Tail() {
		t.Error("first flit must be head and not tail")
	}
	if fs[2].Head() || fs[2].Tail() {
		t.Error("middle flit must be neither head nor tail")
	}
	if !fs[4].Tail() || fs[4].Head() {
		t.Error("last flit must be tail and not head")
	}
	single := Explode(New(2, geom.Coord{}, geom.Coord{}, 0, Ctrl, 0))
	if !single[0].Head() || !single[0].Tail() {
		t.Error("a 1-flit packet's flit is both head and tail")
	}
}

func TestIDSourceUnique(t *testing.T) {
	var s IDSource
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		id := s.Next()
		if seen[id] {
			t.Fatalf("duplicate ID %d", id)
		}
		seen[id] = true
	}
}

func TestString(t *testing.T) {
	p := New(7, geom.Coord{X: 1, Y: 2}, geom.Coord{X: 3, Y: 4}, 1, Ctrl, 0)
	if got := p.String(); got != "pkt7[(1,2)→(3,4) d1 ctrl/1fl]" {
		t.Errorf("String = %q", got)
	}
}
