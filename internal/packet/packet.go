// Package packet defines the units moved by every network model: packets
// (the routing/arbitration unit) and flits (the link-occupancy unit).
//
// A packet records the timestamps needed for the paper's metrics:
// CreatedAt (enqueued at the network interface), InjectedAt (head flit
// entered the network) and EjectedAt (tail flit left it).  Queue latency
// is InjectedAt−CreatedAt and network latency EjectedAt−InjectedAt,
// the two components broken down in Fig. 9.
package packet

import (
	"fmt"

	"surfbless/internal/geom"
)

// Class distinguishes the cache-protocol message sizes of Table 1:
// 1-flit control packets and 5-flit data packets.
type Class int

// Packet classes.
const (
	Ctrl Class = iota // 1-flit control packet
	Data              // 5-flit data packet
)

// String names the class.
func (c Class) String() string {
	switch c {
	case Ctrl:
		return "ctrl"
	case Data:
		return "data"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Flits returns the default packet length in flits for the class, per
// Table 1 (16-byte blocks on 128-bit links plus header → 5-flit data
// packets, 1-flit control packets).
func (c Class) Flits() int {
	if c == Data {
		return 5
	}
	return 1
}

// Packet is one network packet.  Fields are exported plain data: packets
// cross several packages (traffic → router → stats) and the simulator is
// single-goroutine by design, so no synchronization is embedded.
type Packet struct {
	ID     uint64
	Src    geom.Coord
	Dst    geom.Coord
	Domain int   // interference domain (wave-decoder output)
	VNet   int   // virtual network (coherence message class), -1 if unused
	Class  Class // ctrl or data
	Size   int   // length in flits

	CreatedAt  int64 // cycle the source handed the packet to the NI
	InjectedAt int64 // cycle the head flit entered the network (-1 until then)
	EjectedAt  int64 // cycle the tail flit was ejected (-1 until then)

	Hops        int // router-to-router traversals
	Deflections int // unproductive hops forced by contention
	Retries     int // source retransmissions after a fault drop

	// Msg carries an opaque payload (the coherence engine attaches its
	// protocol message here); nil for synthetic traffic.
	Msg any
}

// New returns a packet of the given class created at cycle now.
// Injection and ejection stamps start unset (-1).
func New(id uint64, src, dst geom.Coord, domain int, class Class, now int64) *Packet {
	return &Packet{
		ID:         id,
		Src:        src,
		Dst:        dst,
		Domain:     domain,
		VNet:       -1,
		Class:      class,
		Size:       class.Flits(),
		CreatedAt:  now,
		InjectedAt: -1,
		EjectedAt:  -1,
	}
}

// QueueLatency returns the cycles spent waiting in the network interface
// before injection.  It panics if the packet was never injected; callers
// must only account ejected packets.
func (p *Packet) QueueLatency() int64 {
	if p.InjectedAt < 0 {
		//nocvet:alloc panic-path formatting on a falsified invariant; runs at most once, while dying
		panic(fmt.Sprintf("packet %d: QueueLatency before injection", p.ID))
	}
	return p.InjectedAt - p.CreatedAt
}

// NetworkLatency returns the cycles between injection and ejection.
func (p *Packet) NetworkLatency() int64 {
	if p.EjectedAt < 0 {
		//nocvet:alloc panic-path formatting on a falsified invariant; runs at most once, while dying
		panic(fmt.Sprintf("packet %d: NetworkLatency before ejection", p.ID))
	}
	return p.EjectedAt - p.InjectedAt
}

// TotalLatency returns creation-to-ejection latency (the "average packet
// latency" of Figs. 5, 7 and 9).
func (p *Packet) TotalLatency() int64 {
	if p.EjectedAt < 0 {
		//nocvet:alloc panic-path formatting on a falsified invariant; runs at most once, while dying
		panic(fmt.Sprintf("packet %d: TotalLatency before ejection", p.ID))
	}
	return p.EjectedAt - p.CreatedAt
}

// Older reports whether p has priority over q under the old-first
// arbitration policy [12]: the packet that has been in the network
// longer wins; ties break on packet ID so the order is total and
// deterministic.
func (p *Packet) Older(q *Packet) bool {
	if p.InjectedAt != q.InjectedAt {
		return p.InjectedAt < q.InjectedAt
	}
	return p.ID < q.ID
}

// String renders a compact description for diagnostics.
func (p *Packet) String() string {
	return fmt.Sprintf("pkt%d[%v→%v d%d %v/%dfl]", p.ID, p.Src, p.Dst, p.Domain, p.Class, p.Size)
}

// Flit is the unit occupying one link or buffer slot for one cycle in
// the flit-level (VC) router models.
type Flit struct {
	Pkt *Packet
	Seq int // 0-based position within the packet
}

// Head reports whether f is the packet's head flit (carries routing info).
func (f Flit) Head() bool { return f.Seq == 0 }

// Tail reports whether f is the packet's tail flit (frees the VC).
func (f Flit) Tail() bool { return f.Seq == f.Pkt.Size-1 }

// Explode returns the packet's flits in order.
func Explode(p *Packet) []Flit {
	fs := make([]Flit, p.Size)
	for i := range fs {
		fs[i] = Flit{Pkt: p, Seq: i}
	}
	return fs
}

// FreeList recycles ejected packets so that steady-state simulation
// needs no heap allocation: the sink returns each delivered packet via
// Put and the traffic generator draws replacements via New.  Recycling
// is observably equivalent to fresh allocation — New resets every
// field — but a recycled pointer MUST NOT be retained past ejection by
// any fabric (the runahead retry timers do exactly that, which is why
// sim.Run never arms a free list for RUNAHEAD).  The zero value is an
// empty list, ready to use.  Not safe for concurrent use.
type FreeList struct {
	free []*Packet
}

// New returns a packet of the given class created at cycle now, reusing
// a recycled one when available.  All fields are reset; the result is
// indistinguishable from packet.New's.
func (fl *FreeList) New(id uint64, src, dst geom.Coord, domain int, class Class, now int64) *Packet {
	n := len(fl.free)
	if n == 0 {
		return New(id, src, dst, domain, class, now)
	}
	p := fl.free[n-1]
	fl.free[n-1] = nil
	fl.free = fl.free[:n-1]
	*p = Packet{
		ID:         id,
		Src:        src,
		Dst:        dst,
		Domain:     domain,
		VNet:       -1,
		Class:      class,
		Size:       class.Flits(),
		CreatedAt:  now,
		InjectedAt: -1,
		EjectedAt:  -1,
	}
	return p
}

// Put recycles p.  The caller must guarantee no live references remain.
func (fl *FreeList) Put(p *Packet) { fl.free = append(fl.free, p) }

// Len returns the number of packets currently available for reuse.
func (fl *FreeList) Len() int { return len(fl.free) }

// IDSource hands out unique packet IDs.  The zero value is ready to use.
// It is not safe for concurrent use; the simulator is single-goroutine.
type IDSource struct{ next uint64 }

// Next returns a fresh packet ID.
func (s *IDSource) Next() uint64 {
	id := s.next
	s.next++
	return id
}
