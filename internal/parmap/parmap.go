// Package parmap provides the ordered parallel map shared by the
// experiment harnesses (internal/experiments) and cmd/sweep.
//
// Every simulation in this repository is an isolated deterministic
// state machine — its own fabric, collector and seeded RNG streams —
// so running points concurrently cannot change any result, only the
// wall-clock time of producing it.  Both entry points preserve input
// order on the output side, which is what lets a parallel sweep emit a
// byte-identical CSV to a serial one.
package parmap

import (
	"errors"
	"runtime"
	"sync"
)

// Map runs f over items on up to workers goroutines (workers ≤ 0 means
// GOMAXPROCS) and returns the results in input order.  Every item is
// processed even when some fail; the returned error is errors.Join of
// every per-item error in input order, so no failure is masked by an
// earlier one.
func Map[T, R any](items []T, workers int, f func(T) (R, error)) ([]R, error) {
	results := make([]R, len(items))
	errs := make([]error, len(items))
	Stream(items, workers,
		func(_ int, item T) (R, error) { return f(item) },
		func(i int, r R, err error) {
			results[i] = r
			errs[i] = err
		})
	return results, errors.Join(errs...)
}

// slot carries one finished item from a worker to the emitter.
type slot[R any] struct {
	i   int
	r   R
	err error
}

// Stream runs f over items on up to workers goroutines and calls emit
// exactly once per item, in input order, on the caller's goroutine.
// An item's result is held back until every earlier item has been
// emitted, so emit may safely print, journal or accumulate without
// synchronization.  f receives the item's index alongside its value.
func Stream[T, R any](items []T, workers int, f func(int, T) (R, error), emit func(int, R, error)) {
	n := len(items)
	if n == 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Serial fast path: same goroutine, same order, no channels —
		// identical to a plain loop by construction.
		for i, item := range items {
			r, err := f(i, item)
			emit(i, r, err)
		}
		return
	}

	idx := make(chan int)
	done := make(chan slot[R], workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				r, err := f(i, items[i])
				done <- slot[R]{i: i, r: r, err: err}
			}
		}()
	}
	go func() {
		for i := range items {
			idx <- i
		}
		close(idx)
		wg.Wait()
		close(done)
	}()

	// Reorder: emit item i only after items 0..i-1, regardless of
	// completion order.
	pending := make(map[int]slot[R], workers)
	next := 0
	for s := range done {
		pending[s.i] = s
		for {
			ps, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			emit(ps.i, ps.r, ps.err)
			next++
		}
	}
}
