package parmap

import (
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

func TestMapOrderedResults(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{0, 1, 3, 128} {
		got, err := Map(items, workers, func(v int) (int, error) { return v * v, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, r := range got {
			if r != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, r, i*i)
			}
		}
	}
}

// Map must complete every item and join every error, not just the
// first: a sweep where points 3 and 7 fail must report both.
func TestMapJoinsAllErrors(t *testing.T) {
	items := []int{0, 1, 2, 3, 4}
	var ran atomic.Int64
	_, err := Map(items, 2, func(v int) (int, error) {
		ran.Add(1)
		if v%2 == 1 {
			return 0, fmt.Errorf("item %d failed", v)
		}
		return v, nil
	})
	if ran.Load() != int64(len(items)) {
		t.Errorf("ran %d of %d items; failures must not cancel the rest", ran.Load(), len(items))
	}
	if err == nil {
		t.Fatal("expected joined error")
	}
	for _, want := range []string{"item 1 failed", "item 3 failed"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error %q lost %q", err, want)
		}
	}
}

// Stream must emit in input order on the caller's goroutine even when
// items complete wildly out of order.
func TestStreamEmitsInOrder(t *testing.T) {
	items := make([]int, 64)
	for i := range items {
		items[i] = i
	}
	gate := make(chan struct{})
	var emitted []int
	go func() { close(gate) }()
	Stream(items, 8,
		func(i int, v int) (int, error) {
			<-gate
			// Later items finish first more often than not; order must
			// still hold on the emit side.
			return v, nil
		},
		func(i int, r int, err error) {
			if err != nil {
				t.Errorf("item %d: %v", i, err)
			}
			emitted = append(emitted, r) // no lock: emit runs on one goroutine
		})
	if len(emitted) != len(items) {
		t.Fatalf("emitted %d of %d items", len(emitted), len(items))
	}
	for i, v := range emitted {
		if v != i {
			t.Fatalf("emit order broken at %d: got %d", i, v)
		}
	}
}

func TestStreamEmptyInput(t *testing.T) {
	Stream(nil, 4,
		func(i int, v int) (int, error) { return v, nil },
		func(i int, r int, err error) { t.Error("emit called on empty input") })
}
