package wcta

import (
	"fmt"
	"math"

	"surfbless/internal/config"
	"surfbless/internal/geom"
	"surfbless/internal/wave"
)

// SB backend: worst-case traversal bounds from wave-schedule
// periodicity (DESIGN.md §14.3).
//
// Every quantity a Surf-Bless router consults — the three sub-wave
// counters, the decoder, window alignment — is a pure function of
// (router, cycle mod Smax), so a packet's worst-case future depends
// only on that finite state.  The engine walks this state graph with
// the router's own policy (eject on the SE wave at the destination;
// otherwise X-Y, then Y-X, then deflection) taking the adversarial
// branch wherever the hardware would draw pseudo-randomly:
//
//   - walk(f):  the longest walk from any legal injection phase at
//     f.Src to ejection at f.Dst — exact for a packet alone in its
//     domain, because the oldest packet wins every arbitration it
//     meets and therefore follows precisely this walk.
//   - epoch(d): P plus the longest walk from ANY legal in-network
//     state to any destination of domain d — within one epoch the
//     domain's oldest in-network packet is always delivered.
//
// Old-first arbitration then gives the contention bound: a packet with
// r older same-domain packets in flight at injection is delivered
// within r·epoch + epoch cycles, and the token-bucket flow contract
// bounds r self-consistently (the fixed point in sbBounds).  Other
// domains never enter any term: waves of different domains are
// disjoint resources, which is the paper's confinement claim restated
// at analysis level.
type sbAnalyzer struct {
	mesh  geom.Mesh
	sched *wave.Schedule
	dec   *wave.Decoder
	slot  []int
	p     int // hop delay P
	smax  int

	epochs map[int]epochResult // per-domain, computed lazily
	ranks  map[int]rankResult  // per-domain rank fixed points
}

type epochResult struct {
	cycles int64
	ok     bool
	reason string
}

// sbBounds derives per-flow bounds for the SB fabric.
func sbBounds(cfg config.Config, slotWidths []int, fs FlowSet) ([]Bound, error) {
	mesh := cfg.Mesh()
	sched := wave.New(mesh, cfg.HopDelay())
	var dec *wave.Decoder
	if cfg.WaveSets != nil {
		var err error
		if dec, err = wave.FromSets(sched.Smax(), cfg.WaveSets); err != nil {
			return nil, err
		}
	} else {
		dec = wave.RoundRobin(sched.Smax(), cfg.Domains)
	}
	if slotWidths == nil {
		slotWidths = make([]int, cfg.Domains)
		for i := range slotWidths {
			slotWidths[i] = 1
		}
	}
	if len(slotWidths) != cfg.Domains {
		return nil, fmt.Errorf("wcta: %d slot widths for %d domains", len(slotWidths), cfg.Domains)
	}
	for i, f := range fs.Flows {
		if f.FlitSize() > slotWidths[f.Domain] {
			return nil, fmt.Errorf("wcta: flow %d: %d flits exceed domain %d slot width %d",
				i, f.FlitSize(), f.Domain, slotWidths[f.Domain])
		}
	}
	a := &sbAnalyzer{
		mesh: mesh, sched: sched, dec: dec, slot: slotWidths,
		p: cfg.HopDelay(), smax: sched.Smax(),
		epochs: make(map[int]epochResult),
		ranks:  make(map[int]rankResult),
	}

	// Group flows by domain: only same-domain flows appear in a bound.
	byDomain := make(map[int][]Flow)
	for _, f := range fs.Flows {
		byDomain[f.Domain] = append(byDomain[f.Domain], f)
	}

	bounds := make([]Bound, len(fs.Flows))
	for i, f := range fs.Flows {
		bounds[i] = a.flowBound(f, byDomain[f.Domain])
	}
	return bounds, nil
}

// flowBound assembles one flow's bound from the domain-level rank
// fixed point and the flow's own walks.
func (a *sbAnalyzer) flowBound(f Flow, domainFlows []Flow) Bound {
	// The epoch is needed even at rank 0: it is the window the rank
	// fixed point measures in-flight populations over, so a bounded
	// result always requires a finite epoch.
	ep := a.epoch(f.Domain, domainFlows)
	if !ep.ok {
		return Bound{Reason: ep.reason}
	}
	w := a.newWalk(f.Dst, f.Domain)
	walk, exact, ok := a.injectWalk(w, f)
	if !ok {
		return Bound{Reason: w.reason}
	}
	rank := a.rank(f.Domain, domainFlows)
	if !rank.ok {
		return Bound{Reason: rank.reason}
	}
	b := Bound{
		Bounded: true,
		Tight:   rank.rank == 0 && exact,
		Terms: []Term{
			{Name: "lone-packet walk", Cycles: walk},
			{Name: "rank at injection", Cycles: rank.rank},
		},
	}
	if rank.rank == 0 {
		b.Cycles = walk
		return b
	}
	// Self epoch: the longest walk to f.Dst from any legal in-network
	// state — where the packet may find itself when it finally becomes
	// the domain's oldest.
	selfEpoch, selfOK := a.worstFrom(w)
	if !selfOK {
		return Bound{Reason: w.reason}
	}
	b.Cycles = rank.rank*ep.cycles + selfEpoch
	b.Terms = append(b.Terms,
		Term{Name: "delivery epoch", Cycles: ep.cycles},
		Term{Name: "self epoch", Cycles: selfEpoch})
	return b
}

type rankResult struct {
	rank   int64
	ok     bool
	reason string
}

// rank runs the domain-level fixed point: with every domain packet
// delivered within L = (r+1)·epoch cycles of injection, the packets
// older than a newly injected one are those the domain's flows
// injected in the preceding L cycles, which the token-bucket contract
// caps at Σ(Burst + ⌊Rate·L⌋) − 1.  The smallest self-consistent r is
// the worst rank any packet can carry; divergence means the offered
// load exceeds what the schedule can clear.
func (a *sbAnalyzer) rank(dom int, domainFlows []Flow) rankResult {
	if r, done := a.ranks[dom]; done {
		return r
	}
	ep := a.epochs[dom] // epoch() has run (flowBound orders the calls)
	res := rankResult{reason: "rank fixed point did not converge within 256 iterations"}
	r := int64(0)
	for iter := 0; iter < 256; iter++ {
		L := (r + 1) * ep.cycles
		if L > boundCap {
			res = rankResult{reason: "offered load exceeds the schedulable region: the rank fixed point diverges"}
			break
		}
		next := int64(-1)
		for _, g := range domainFlows {
			next += int64(g.Burst) + int64(math.Floor(g.Rate*float64(L)))
		}
		if next == r {
			res = rankResult{rank: r, ok: true}
			break
		}
		r = next
	}
	a.ranks[dom] = res
	return res
}

// epoch returns (cached) the domain's delivery-epoch length: within
// this many cycles the oldest in-network packet of the domain is
// delivered, wherever it is and whichever of the domain's
// destinations it has.
func (a *sbAnalyzer) epoch(dom int, domainFlows []Flow) epochResult {
	if ep, done := a.epochs[dom]; done {
		return ep
	}
	worst := int64(0)
	ep := epochResult{ok: true}
	seen := make(map[geom.Coord]bool)
	for _, g := range domainFlows {
		if seen[g.Dst] {
			continue
		}
		seen[g.Dst] = true
		w := a.newWalk(g.Dst, dom)
		c, ok := a.worstFrom(w)
		if !ok {
			ep = epochResult{reason: w.reason}
			break
		}
		if c > worst {
			worst = c
		}
	}
	if ep.ok {
		ep.cycles = worst
	}
	a.epochs[dom] = ep
	return ep
}

// worstFrom returns P plus the longest walk to w.dst over every state
// a domain packet can legally occupy: (node, phase) pairs where some
// input port's wave is a startable window of the domain (an arrival)
// or where the SE wave starts one (a fresh injection).  The +P slack
// covers a packet that is mid-link at the moment it becomes oldest.
func (a *sbAnalyzer) worstFrom(w *sbWalk) (int64, bool) {
	worst := int64(0)
	for id := 0; id < a.mesh.Nodes(); id++ {
		node := a.mesh.CoordOf(id)
		for phase := 0; phase < a.smax; phase++ {
			if !a.legalState(node, phase, w.dom) {
				continue
			}
			c := w.cost(node, phase)
			if w.unbounded {
				return 0, false
			}
			if c > worst {
				worst = c
			}
		}
	}
	return worst + int64(a.p), true
}

// legalState reports whether a packet of dom can be at node during a
// cycle ≡ phase: it just arrived on an input wave owned by the domain
// (the fabric's arrival invariant) or was just injected on the SE
// wave.
func (a *sbAnalyzer) legalState(node geom.Coord, phase int, dom int) bool {
	t := int64(phase)
	for _, d := range geom.LinkDirs {
		if !a.mesh.HasNeighbor(node, d) {
			continue
		}
		w := a.sched.InputWave(node, d, t)
		if a.dec.Domain(w) == dom && a.dec.CanStart(w, a.slot[dom]) {
			return true
		}
	}
	return a.seStart(node, phase, dom)
}

// seStart reports whether the SE scheduler at node opens a startable
// window of dom at the phase — the injection/ejection opportunity.
func (a *sbAnalyzer) seStart(node geom.Coord, phase int, dom int) bool {
	w := a.sched.OutputWave(node, geom.Local, int64(phase))
	return a.dec.Domain(w) == dom && a.dec.CanStart(w, a.slot[dom])
}

// injectWalk returns the worst lone-packet walk over every legal
// injection phase of f, whether that walk is exact (deterministic and
// phase-independent), and whether it is finite.
func (a *sbAnalyzer) injectWalk(w *sbWalk, f Flow) (walk int64, exact bool, ok bool) {
	worst, best := int64(-1), int64(-1)
	for phase := 0; phase < a.smax; phase++ {
		if !a.seStart(f.Src, phase, f.Domain) {
			continue
		}
		// Injection additionally needs a free same-domain output; a
		// phase without one defers the packet in the NI (queue latency,
		// outside the network bound).
		var dirs [geom.NumLinkDirs]geom.Dir
		if w.choices(f.Src, phase, &dirs) == 0 {
			continue
		}
		c := w.cost(f.Src, phase)
		if w.unbounded {
			return 0, false, false
		}
		if c > worst {
			worst = c
		}
		if best < 0 || c < best {
			best = c
		}
	}
	if worst < 0 {
		w.reason = fmt.Sprintf("domain %d has no injection opportunity at %v under the wave schedule", f.Domain, f.Src)
		return 0, false, false
	}
	return worst, !w.branched && worst == best, true
}

// sbWalk memoizes the adversarial walk toward one (dst, domain) pair.
type sbWalk struct {
	a   *sbAnalyzer
	dst geom.Coord
	dom int
	// memo holds the walk cost per (node, phase) state; walkUnknown
	// marks unvisited states and walkOnStack states on the current DFS
	// path (reaching one again means the walk can cycle forever).
	memo      []int64
	branched  bool // some state offered the adversary >1 deflection target
	unbounded bool
	reason    string
}

const (
	walkUnknown = int64(-1)
	walkOnStack = int64(-2)
)

func (a *sbAnalyzer) newWalk(dst geom.Coord, dom int) *sbWalk {
	memo := make([]int64, a.mesh.Nodes()*a.smax)
	for i := range memo {
		memo[i] = walkUnknown
	}
	return &sbWalk{a: a, dst: dst, dom: dom, memo: memo}
}

// cost returns the worst-case number of cycles from "the packet is
// being arbitrated at node during a cycle ≡ phase" to its ejection.
func (w *sbWalk) cost(node geom.Coord, phase int) int64 {
	a := w.a
	idx := a.mesh.ID(node)*a.smax + phase
	switch w.memo[idx] {
	case walkOnStack:
		w.unbounded = true
		w.reason = fmt.Sprintf("adversarial deflection walk toward %v cycles without ejecting (domain %d)", w.dst, w.dom)
		return 0
	case walkUnknown:
	default:
		return w.memo[idx]
	}
	if w.unbounded {
		return 0
	}
	w.memo[idx] = walkOnStack

	var c int64
	if node == w.dst && a.seStart(node, phase, w.dom) {
		// Ejected in the arrival cycle (old-first guarantees the walk's
		// packet wins the single ejection port).
		c = 0
	} else {
		var dirs [geom.NumLinkDirs]geom.Dir
		n := w.choices(node, phase, &dirs)
		if n == 0 {
			// Unreachable while the wave balance invariant holds; treat
			// as unbounded rather than panicking so odd wave sets get a
			// diagnosable refusal.
			w.unbounded = true
			w.reason = fmt.Sprintf("no same-domain output at %v phase %d (domain %d): wave balance violated", node, phase, w.dom)
			w.memo[idx] = walkUnknown
			return 0
		}
		next := (phase + a.p) % a.smax
		for i := 0; i < n; i++ {
			v := int64(a.p) + w.cost(node.Add(dirs[i]), next)
			if v > c {
				c = v
			}
		}
	}
	w.memo[idx] = c
	return c
}

// choices fills dirs with the outputs the router could hand the packet
// at (node, phase) and returns their count, mirroring pickOutput: the
// X-Y output if eligible, else Y-X, else every eligible output (the
// hardware draws pseudo-randomly — the adversary may pick any).
func (w *sbWalk) choices(node geom.Coord, phase int, dirs *[geom.NumLinkDirs]geom.Dir) int {
	if d := geom.XYFirst(node, w.dst); d != geom.Local && w.eligible(node, d, phase) {
		dirs[0] = d
		return 1
	}
	if d := geom.YXFirst(node, w.dst); d != geom.Local && w.eligible(node, d, phase) {
		dirs[0] = d
		return 1
	}
	n := 0
	for _, d := range geom.LinkDirs {
		if w.eligible(node, d, phase) {
			dirs[n] = d
			n++
		}
	}
	if n > 1 {
		w.branched = true
	}
	return n
}

// eligible mirrors the fabric's output-eligibility check: the output
// exists and its current wave is a startable window of the domain.
func (w *sbWalk) eligible(node geom.Coord, d geom.Dir, phase int) bool {
	a := w.a
	if !a.mesh.HasNeighbor(node, d) {
		return false
	}
	wv := a.sched.OutputWave(node, d, int64(phase))
	return a.dec.Domain(wv) == w.dom && a.dec.CanStart(wv, a.slot[w.dom])
}
