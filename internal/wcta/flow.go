// Package wcta is the analytical worst-case traversal-time engine
// (ROADMAP item 3): given a flow set and a configuration it derives,
// per flow, an upper bound on the injection→ejection latency of every
// packet — or an explicit refusal with the reason no finite bound
// exists.  The derivations per fabric are spelled out in DESIGN.md
// §14; internal/wcta/conformance cross-validates every bound against
// the real simulator.
//
// The engine bounds NETWORK latency (InjectedAt→EjectedAt), not total
// latency: source queueing under open-loop injection is a property of
// the offered load, not of the fabric, and is unbounded whenever the
// generator outruns the schedule.
package wcta

import (
	"fmt"

	"surfbless/internal/config"
	"surfbless/internal/geom"
)

// Flow is one (src, dst, domain) packet stream with a token-bucket
// arrival curve: in any window of τ cycles the stream injects at most
// Burst + ⌊Rate·τ⌋ packets (traffic.Source with Burst ≥ 1 satisfies
// exactly this).
type Flow struct {
	Src    geom.Coord
	Dst    geom.Coord
	Domain int
	// Rate is the long-term packet rate in packets/cycle, in (0, 1].
	Rate float64
	// Burst is the token-bucket depth in packets, ≥ 1.
	Burst int
	// Size is the packet length in flits (0 is normalized to 1).
	Size int `json:",omitempty"`
}

// FlitSize returns the flow's packet length with the zero value
// normalized to a single flit.
func (f Flow) FlitSize() int {
	if f.Size <= 0 {
		return 1
	}
	return f.Size
}

// FlowSet is the complete traffic contract an analysis covers.  Bounds
// are valid only if no traffic outside the set enters the network.
type FlowSet struct {
	Flows []Flow
}

// EndpointError reports a flow endpoint outside the configured mesh.
type EndpointError struct {
	Index int        // offending flow index within the set
	End   string     // "src" or "dst"
	Coord geom.Coord // the out-of-mesh coordinate
	Mesh  geom.Mesh
}

func (e *EndpointError) Error() string {
	return fmt.Sprintf("wcta: flow %d: %s %v outside %dx%d mesh",
		e.Index, e.End, e.Coord, e.Mesh.Width, e.Mesh.Height)
}

// DomainError reports a flow domain ID outside [0, Domains).
type DomainError struct {
	Index   int // offending flow index within the set
	Domain  int
	Domains int
}

func (e *DomainError) Error() string {
	return fmt.Sprintf("wcta: flow %d: domain %d outside [0,%d)", e.Index, e.Domain, e.Domains)
}

// Validate reports the first problem with the flow set under cfg, or
// nil.  Out-of-mesh endpoints and out-of-range domains yield the typed
// errors above so config loaders can classify rejections.
func (fs FlowSet) Validate(cfg config.Config) error {
	if len(fs.Flows) == 0 {
		return fmt.Errorf("wcta: empty flow set")
	}
	mesh := cfg.Mesh()
	for i, f := range fs.Flows {
		if !mesh.Contains(f.Src) {
			return &EndpointError{Index: i, End: "src", Coord: f.Src, Mesh: mesh}
		}
		if !mesh.Contains(f.Dst) {
			return &EndpointError{Index: i, End: "dst", Coord: f.Dst, Mesh: mesh}
		}
		if f.Src == f.Dst {
			return fmt.Errorf("wcta: flow %d: src equals dst %v", i, f.Src)
		}
		if f.Domain < 0 || f.Domain >= cfg.Domains {
			return &DomainError{Index: i, Domain: f.Domain, Domains: cfg.Domains}
		}
		if f.Rate <= 0 || f.Rate > 1 {
			return fmt.Errorf("wcta: flow %d: rate %g outside (0,1]", i, f.Rate)
		}
		if f.Burst < 1 {
			return fmt.Errorf("wcta: flow %d: burst %d < 1 (a flow must admit at least one packet)", i, f.Burst)
		}
		if f.Size < 0 {
			return fmt.Errorf("wcta: flow %d: size %d negative", i, f.Size)
		}
	}
	return nil
}
