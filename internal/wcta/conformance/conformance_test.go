package conformance

import (
	"strings"
	"testing"

	"surfbless/internal/config"
	"surfbless/internal/geom"
	"surfbless/internal/packet"
	"surfbless/internal/probe"
	"surfbless/internal/traffic"
)

func ctrlSources(domains int, rate float64, burst int, onoff bool) []traffic.Source {
	ss := make([]traffic.Source, domains)
	for d := range ss {
		ss[d] = traffic.Source{Rate: rate, Class: packet.Ctrl, VNet: -1, Burst: burst, OnOff: onoff}
	}
	return ss
}

// The oracle end to end on a 4×4 mesh: for each bounded fabric and a
// deterministic adversarial pattern, every delivered packet's network
// latency must respect its flow's analytical bound.
func TestConformanceSmoke(t *testing.T) {
	for _, model := range []config.Model{config.WH, config.Surf, config.SB} {
		for _, pattern := range []traffic.Pattern{traffic.Corner, traffic.Transpose, traffic.BitComplement} {
			cfg := config.Default(model)
			cfg.Width, cfg.Height = 4, 4
			cfg.Domains = 2
			rep, err := Run(Check{
				Cfg:     cfg,
				Pattern: pattern,
				Sources: ctrlSources(2, 2e-4, 1, false),
				Measure: 1500,
				Drain:   20000,
				Seed:    1,
			})
			if err != nil {
				t.Fatalf("%v/%v: %v", model, pattern, err)
			}
			if err := rep.Err(); err != nil {
				t.Errorf("%v/%v: %v", model, pattern, err)
			}
			if len(rep.Flows) == 0 {
				t.Errorf("%v/%v: no flows analyzed", model, pattern)
			}
		}
	}
}

// The tightness anchor: a lone corner flow on SB observes exactly its
// bound (P·H with the round-robin domain count dividing 2P), so the
// max ratio is 1.0 — the strongest possible evidence the analysis is
// not just sound but exact.
func TestConformanceTightCorner(t *testing.T) {
	cfg := config.Default(config.SB)
	cfg.Width, cfg.Height = 4, 4
	cfg.Domains = 2
	sources := ctrlSources(2, 5e-3, 1, false)
	sources[1].Rate = 0
	rep, err := Run(Check{
		Cfg:     cfg,
		Pattern: traffic.Corner,
		Sources: sources,
		Measure: 1500,
		Drain:   20000,
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if rep.Ejected == 0 {
		t.Fatal("corner flow delivered nothing; raise the rate or budget")
	}
	if _, ratio := rep.MaxRatio(); ratio != 1.0 {
		t.Errorf("lone SB corner flow observed %.3f of its bound, want exactly 1.0", ratio)
	}
}

// Bursty greedy sources are the adversarial end: every node fires its
// full token bucket back to back at cycle 0.
func TestConformanceOnOffBurst(t *testing.T) {
	cfg := config.Default(config.SB)
	cfg.Width, cfg.Height = 4, 4
	cfg.Domains = 2
	rep, err := Run(Check{
		Cfg:     cfg,
		Pattern: traffic.BitComplement,
		Sources: ctrlSources(2, 1e-4, 3, true),
		Measure: 1500,
		Drain:   30000,
		Seed:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if rep.Ejected < int64(len(rep.Flows)) {
		t.Errorf("only %d packets delivered across %d flows; the burst should fire immediately", rep.Ejected, len(rep.Flows))
	}
}

func TestFlowsRejectsUnregulated(t *testing.T) {
	_, err := Flows(geom.NewMesh(4, 4), traffic.Transpose, []traffic.Source{{Rate: 0.1}})
	if err == nil || !strings.Contains(err.Error(), "unregulated") {
		t.Errorf("Burst 0 source accepted: %v", err)
	}
}

func TestFlowsSkipsSilentDomains(t *testing.T) {
	fs, err := Flows(geom.NewMesh(4, 4), traffic.Corner, []traffic.Source{
		{Rate: 0.1, Burst: 1},
		{Rate: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.Flows) != 1 || fs.Flows[0].Domain != 0 {
		t.Errorf("flows = %+v, want the single domain-0 corner flow", fs.Flows)
	}
}

func TestFlowsMatchesGeneratorPatterns(t *testing.T) {
	mesh := geom.NewMesh(4, 4)
	for pattern, wantFlows := range map[traffic.Pattern]int{
		traffic.Corner:        1,
		traffic.Transpose:     12, // 16 nodes minus the 4 diagonal ones
		traffic.BitComplement: 16,
	} {
		fs, err := Flows(mesh, pattern, []traffic.Source{{Rate: 0.1, Burst: 1, Class: packet.Ctrl}})
		if err != nil {
			t.Fatalf("%v: %v", pattern, err)
		}
		if len(fs.Flows) != wantFlows {
			t.Errorf("%v: %d flows, want %d", pattern, len(fs.Flows), wantFlows)
		}
		for _, f := range fs.Flows {
			if f.Src == f.Dst || !mesh.Contains(f.Dst) {
				t.Errorf("%v: bad flow %+v", pattern, f)
			}
			if f.Size != 1 {
				t.Errorf("%v: flow size %d, want the Ctrl class's 1 flit", pattern, f.Size)
			}
		}
	}
}

func TestDeterministic(t *testing.T) {
	for p, want := range map[traffic.Pattern]bool{
		traffic.Corner: true, traffic.Transpose: true, traffic.BitComplement: true,
		traffic.UniformRandom: false, traffic.Hotspot: false,
	} {
		if Deterministic(p) != want {
			t.Errorf("Deterministic(%v) = %v, want %v", p, !want, want)
		}
	}
}

// TestConformanceRecorderWiring: a recorder rides a clean check
// without producing a dump (Flight is only for failures), but it did
// observe the run — the snapshot is non-empty — proving the forensic
// path is armed when a violation would need it.
func TestConformanceRecorderWiring(t *testing.T) {
	cfg := config.Default(config.SB)
	cfg.Width, cfg.Height = 4, 4
	cfg.Domains = 2
	rec := probe.NewFlightRecorder(0)
	rep, err := Run(Check{
		Cfg:      cfg,
		Pattern:  traffic.Transpose,
		Sources:  ctrlSources(2, 2e-4, 1, false),
		Measure:  1500,
		Drain:    20000,
		Seed:     1,
		Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if rep.Flight != nil {
		t.Error("clean check produced a flight dump")
	}
	if len(rec.Snapshot()) == 0 {
		t.Error("recorder saw no events; a violation would dump nothing")
	}
}

// TestReportFlightOnViolation exercises the dump-on-failure branch
// without needing a real bound violation (the analysis is sound): a
// report whose drain budget left packets stuck has Err() != nil, which
// is the same trigger.
func TestReportFlightOnViolation(t *testing.T) {
	cfg := config.Default(config.SB)
	cfg.Width, cfg.Height = 4, 4
	cfg.Domains = 2
	rec := probe.NewFlightRecorder(0)
	// Greedy on-off sources fire their whole token bucket at cycle 0;
	// with no drain budget the backlog cannot deliver, so the check
	// fails with LeftInFlight > 0 and must attach the dump.
	rep, err := Run(Check{
		Cfg:      cfg,
		Pattern:  traffic.BitComplement,
		Sources:  ctrlSources(2, 1e-4, 3, true),
		Measure:  5,
		Drain:    0,
		Seed:     3,
		Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Err() == nil {
		t.Fatal("backlogged run with zero drain budget reported success")
	}
	if rep.Flight == nil {
		t.Fatal("failed check did not attach a flight dump")
	}
	if len(rep.Flight.Events) == 0 {
		t.Error("flight dump is empty")
	}
	if !strings.Contains(rep.Flight.Reason, "conformance") {
		t.Errorf("dump reason %q does not name the oracle", rep.Flight.Reason)
	}
}
