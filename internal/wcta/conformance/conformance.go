// Package conformance is the oracle that keeps the analytical timing
// engine honest: it derives the exact flow set a deterministic traffic
// pattern offers, computes the per-flow wcta bounds, runs the real
// simulator with a per-flow latency tracker attached, and checks that
// every delivered packet's network latency stayed at or under its
// flow's bound.  A single violation means either the analysis or the
// fabric is wrong — both are bugs worth stopping the build for.
package conformance

import (
	"fmt"

	"surfbless/internal/config"
	"surfbless/internal/geom"
	"surfbless/internal/probe"
	"surfbless/internal/sim"
	"surfbless/internal/simcache"
	"surfbless/internal/stats"
	"surfbless/internal/traffic"
	"surfbless/internal/wcta"
)

// Flows derives the flow set that traffic.New(mesh, pattern, sources)
// offers — the analysis contract the simulated run must then live
// inside.  It refuses patterns with randomized destinations (uniform,
// hotspot): their packet population is not a finite flow set.  It also
// refuses unregulated sources (Burst 0): a plain Bernoulli process has
// no arrival curve, so no finite bound can cover it.
func Flows(mesh geom.Mesh, pattern traffic.Pattern, sources []traffic.Source) (wcta.FlowSet, error) {
	var fs wcta.FlowSet
	for d, s := range sources {
		if s.Rate == 0 {
			continue
		}
		if s.Burst < 1 {
			return fs, fmt.Errorf("conformance: domain %d is unregulated (Burst 0): a Bernoulli stream admits unbounded bursts, no bound can hold", d)
		}
		for n := 0; n < mesh.Nodes(); n++ {
			src := mesh.CoordOf(n)
			dst, ok := destination(mesh, pattern, src)
			if !ok {
				continue
			}
			fs.Flows = append(fs.Flows, wcta.Flow{
				Src: src, Dst: dst, Domain: d,
				Rate:  s.Rate,
				Burst: s.Burst,
				Size:  s.Class.Flits(),
			})
		}
	}
	return fs, nil
}

// destination mirrors traffic.Generator.destination for the
// deterministic patterns; ok is false when the node generates nothing.
func destination(mesh geom.Mesh, pattern traffic.Pattern, src geom.Coord) (geom.Coord, bool) {
	switch pattern {
	case traffic.Transpose:
		dst := geom.Coord{X: src.Y, Y: src.X}
		if dst == src || !mesh.Contains(dst) {
			return geom.Coord{}, false
		}
		return dst, true
	case traffic.BitComplement:
		dst := mesh.CoordOf(mesh.Nodes() - 1 - mesh.ID(src))
		if dst == src {
			return geom.Coord{}, false
		}
		return dst, true
	case traffic.Corner:
		if src != (geom.Coord{}) {
			return geom.Coord{}, false
		}
		return geom.Coord{X: mesh.Width - 1, Y: mesh.Height - 1}, true
	default:
		panic(fmt.Sprintf("conformance: pattern %v has randomized destinations; its packet population is not a flow set", pattern))
	}
}

// Deterministic reports whether the pattern's destinations are a pure
// function of the source node, i.e. whether Flows can describe it.
func Deterministic(p traffic.Pattern) bool {
	switch p {
	case traffic.Transpose, traffic.BitComplement, traffic.Corner:
		return true
	default:
		return false
	}
}

// Check is one conformance experiment: a fabric, a deterministic
// adversarial traffic pattern, and a simulation budget.
type Check struct {
	Cfg        config.Config
	SlotWidths []int // SB wave-window widths (nil = 1), ignored elsewhere

	Pattern traffic.Pattern
	Sources []traffic.Source

	Measure int64 // cycles of generated traffic
	Drain   int64 // cycles to let the adversarial backlog deliver
	Seed    int64

	// Cache is consulted through sim.RunCached; observed runs bypass it
	// by design (the tracker must actually fill), so this only matters
	// if observation is ever made replayable.
	Cache *simcache.Cache

	// Recorder, when non-nil, flight-records the run; if the check then
	// finds a bound violation (or the run degrades), the recorder's
	// snapshot lands in Report.Flight so the offending final cycles can
	// be inspected with `replay -flight`.
	Recorder *probe.FlightRecorder
}

// FlowReport pairs one flow's analytical bound with what the simulator
// actually delivered.
type FlowReport struct {
	Flow     wcta.Flow
	Bound    wcta.Bound
	Ejected  int64 // packets the flow delivered during the run
	Observed int64 // worst network latency among them (p100)
}

// Violated reports whether the observation refutes the bound.
func (f FlowReport) Violated() bool {
	return f.Bound.Bounded && f.Observed > f.Bound.Cycles
}

// Ratio returns Observed/Bound, the empirical tightness of the bound
// (0 when the flow delivered nothing or has no finite bound).
func (f FlowReport) Ratio() float64 {
	if !f.Bound.Bounded || f.Ejected == 0 || f.Bound.Cycles == 0 {
		return 0
	}
	return float64(f.Observed) / float64(f.Bound.Cycles)
}

// Report is the outcome of one Check.
type Report struct {
	Model config.Model
	Flows []FlowReport

	Ejected      int64 // packets delivered across all flows
	LeftInFlight int   // packets the drain budget failed to deliver

	// Flight is the forensic dump of the run's trailing cycles, present
	// only when Check.Recorder was set and the check failed (Err() !=
	// nil at Run time).
	Flight *probe.FlightDump
}

// Violations returns the indices of flows whose observation exceeded
// their bound.
func (r *Report) Violations() []int {
	var v []int
	for i, f := range r.Flows {
		if f.Violated() {
			v = append(v, i)
		}
	}
	return v
}

// MaxRatio returns the largest observed/bound ratio and the flow index
// achieving it (-1 when nothing was observed).
func (r *Report) MaxRatio() (int, float64) {
	idx, best := -1, 0.0
	for i, f := range r.Flows {
		if ratio := f.Ratio(); ratio > best {
			idx, best = i, ratio
		}
	}
	return idx, best
}

// Err folds the report into a single error: nil when every delivered
// packet respected its flow's bound and nothing was left undelivered.
func (r *Report) Err() error {
	if r.LeftInFlight > 0 {
		return fmt.Errorf("conformance: %v: %d packets still in flight after the drain budget — bounds unverifiable (raise Drain)", r.Model, r.LeftInFlight)
	}
	if v := r.Violations(); len(v) > 0 {
		f := r.Flows[v[0]]
		return fmt.Errorf("conformance: %v: %d flow(s) violated their bound; first: flow %v→%v dom %d observed %d > bound %d",
			r.Model, len(v), f.Flow.Src, f.Flow.Dst, f.Flow.Domain, f.Observed, f.Bound.Cycles)
	}
	return nil
}

// Run executes one conformance check: analyze, simulate, compare.
func Run(chk Check) (*Report, error) {
	fs, err := Flows(chk.Cfg.Mesh(), chk.Pattern, chk.Sources)
	if err != nil {
		return nil, err
	}
	an, err := wcta.Analyze(chk.Cfg, chk.SlotWidths, fs)
	if err != nil {
		return nil, err
	}
	for i, b := range an.Bounds {
		if !b.Bounded {
			return nil, fmt.Errorf("conformance: %v: flow %d has no finite bound (%s); pick a lighter scenario", chk.Cfg.Model, i, b.Reason)
		}
	}

	tracker := stats.NewFlowTracker()
	res, err := sim.RunCached(sim.Options{
		Cfg:        chk.Cfg,
		Pattern:    chk.Pattern,
		Sources:    chk.Sources,
		SlotWidths: chk.SlotWidths,
		// No warm-up: a latency bound has no warm-up exemption, and the
		// tracker observes every delivered packet regardless of window.
		Measure:  chk.Measure,
		Drain:    chk.Drain,
		Seed:     chk.Seed,
		Flows:    tracker,
		Recorder: chk.Recorder,
	}, chk.Cache)
	if err != nil {
		return nil, err
	}

	rep := &Report{Model: chk.Cfg.Model, LeftInFlight: res.LeftInFlight}
	known := make(map[stats.FlowKey]bool, len(fs.Flows))
	for i, f := range fs.Flows {
		k := stats.FlowKey{Src: f.Src, Dst: f.Dst, Domain: f.Domain}
		known[k] = true
		obs := tracker.Flow(k)
		rep.Flows = append(rep.Flows, FlowReport{
			Flow:     f,
			Bound:    an.Bounds[i],
			Ejected:  obs.Ejected,
			Observed: obs.MaxNetworkLatency,
		})
		rep.Ejected += obs.Ejected
	}
	// A delivered flow outside the analyzed set means the flow-set
	// derivation disagrees with the generator — the oracle itself is
	// broken, which must fail louder than any bound comparison.
	for _, k := range tracker.Keys() {
		if !known[k] {
			return nil, fmt.Errorf("conformance: simulator delivered unanalyzed flow %v→%v dom %d: flow derivation out of sync with traffic generator",
				k.Src, k.Dst, k.Domain)
		}
	}
	if chk.Recorder != nil {
		if verr := rep.Err(); verr != nil {
			rep.Flight = chk.Recorder.Dump("wcta-conformance: "+verr.Error(),
				res.Cycles, chk.Cfg.Model.String(), chk.Cfg.Mesh(), chk.Cfg.Domains)
		}
	}
	return rep, nil
}
