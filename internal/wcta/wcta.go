package wcta

import (
	"fmt"

	"surfbless/internal/config"
)

// Term is one named component of a bound's cycle budget.
type Term struct {
	Name   string
	Cycles int64
}

// Bound is the analytical worst-case network latency of one flow.
type Bound struct {
	// Bounded is false when no finite bound exists; Reason says why.
	Bounded bool
	// Cycles is the worst-case injection→ejection latency, valid only
	// when Bounded.
	Cycles int64
	Reason string `json:",omitempty"`
	// Tight marks bounds that are exact for a packet that meets zero
	// contention (the conformance tightness scenarios rely on it).
	Tight bool
	// Terms breaks Cycles down by cause, worst first.
	Terms []Term `json:",omitempty"`
}

// String renders the bound for diagnostics.
func (b Bound) String() string {
	if !b.Bounded {
		return "unbounded: " + b.Reason
	}
	s := fmt.Sprintf("%d cycles", b.Cycles)
	if b.Tight {
		s += " (tight)"
	}
	return s
}

// Analysis pairs every flow of a set with its bound, in flow order.
type Analysis struct {
	Model  config.Model
	Flows  []Flow
	Bounds []Bound
}

// Bound returns the bound of flow i.
func (a *Analysis) Bound(i int) Bound { return a.Bounds[i] }

// Analyze derives per-flow worst-case traversal-time bounds for the
// fabric selected by cfg.Model under the traffic contract fs.
// slotWidths is the per-domain SB wave-window width (nil = 1 for every
// domain), mirroring the fabric constructor; it is ignored by the
// other models.
//
// Backends (derivations in DESIGN.md §14):
//
//   - WH:   buffer-aware busy-period iteration over the contention
//     tree of XY routes.
//   - Surf: the same iteration restricted to same-domain flows, plus
//     the wave-gating TDM terms — other domains cannot appear in a
//     bound at all, which is confinement at the analysis level.
//   - SB:   wave-schedule periodicity — an adversarial walk over the
//     (router, cycle mod Smax) state graph bounds the lone-packet
//     traversal, and old-first arbitration turns that into a
//     contention bound via the oldest-packet epoch argument.
//   - BLESS, CHIPPER, RUNAHEAD: explicitly Unbounded with the reason;
//     these fabrics make no per-flow service guarantee.
func Analyze(cfg config.Config, slotWidths []int, fs FlowSet) (*Analysis, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := fs.Validate(cfg); err != nil {
		return nil, err
	}
	a := &Analysis{Model: cfg.Model, Flows: fs.Flows}
	var err error
	switch cfg.Model {
	case config.WH:
		a.Bounds = vcBounds(cfg, fs, false)
	case config.Surf:
		a.Bounds, err = vcBoundsGated(cfg, fs)
	case config.SB:
		a.Bounds, err = sbBounds(cfg, slotWidths, fs)
	case config.BLESS:
		a.Bounds = unboundedAll(fs, "BLESS old-first deflection guarantees global progress, not per-flow service: an adversarial arrival pattern can deflect one packet arbitrarily often")
	case config.CHIPPER:
		a.Bounds = unboundedAll(fs, "CHIPPER's golden-packet arbitration delivers one packet per golden epoch; a flow's wait grows with the unbounded population of older packets")
	case config.RUNAHEAD:
		a.Bounds = unboundedAll(fs, "RUNAHEAD drops on contention and retransmits from the source; adversarial traffic forces unboundedly many retries")
	default:
		return nil, fmt.Errorf("wcta: unknown model %v", cfg.Model)
	}
	if err != nil {
		return nil, err
	}
	return a, nil
}

func unboundedAll(fs FlowSet, reason string) []Bound {
	bs := make([]Bound, len(fs.Flows))
	for i := range bs {
		bs[i] = Bound{Bounded: false, Reason: reason}
	}
	return bs
}

// boundCap is the ceiling above which a fixed-point iteration is
// declared divergent: no real-time argument survives a bound of a
// trillion cycles, and the cap keeps the iterations overflow-free.
const boundCap = int64(1) << 40
