package wcta

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"surfbless/internal/config"
	"surfbless/internal/geom"
)

func at(x, y int) geom.Coord { return geom.Coord{X: x, Y: y} }

// FuzzFlowSetJSON feeds arbitrary bytes through the flow-set decode
// path and asserts three properties: no input may panic the decoder or
// the validator; any flow set Validate accepts must survive a
// marshal/unmarshal round trip unchanged (the conformance reports and
// any future cache fingerprinting depend on lossless serialization);
// and rejections for out-of-mesh endpoints and out-of-range domain IDs
// must surface as the typed errors — checked against an independent
// first-problem scan so the classification cannot silently regress to
// a generic error.
func FuzzFlowSetJSON(f *testing.F) {
	cfg := config.Default(config.SB)
	cfg.Domains = 2

	seed := func(fs FlowSet) {
		raw, err := json.Marshal(fs)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	seed(FlowSet{Flows: []Flow{cornerFlowFixture()}})
	seed(FlowSet{Flows: []Flow{
		{Src: at(1, 0), Dst: at(0, 1), Domain: 1, Rate: 0.5, Burst: 3, Size: 5},
		{Src: at(2, 2), Dst: at(5, 5), Domain: 0, Rate: 1e-4, Burst: 1},
	}})
	f.Add([]byte(`{"Flows":[{"Src":{"X":9,"Y":0},"Dst":{"X":0,"Y":0},"Domain":0,"Rate":0.1,"Burst":1}]}`))
	f.Add([]byte(`{"Flows":[{"Src":{"X":0,"Y":0},"Dst":{"X":1,"Y":1},"Domain":7,"Rate":0.1,"Burst":1}]}`))
	f.Add([]byte(`{"Flows":[{"Src":{"X":0,"Y":0},"Dst":{"X":1,"Y":1},"Domain":-1,"Rate":0.1,"Burst":1}]}`))
	f.Add([]byte(`{"Flows":[{"Rate":2}]}`))
	f.Add([]byte(`{"Flows":[]}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var fs FlowSet
		if json.Unmarshal(data, &fs) != nil {
			return
		}
		err := fs.Validate(cfg)
		if err == nil {
			out, merr := json.Marshal(fs)
			if merr != nil {
				t.Fatalf("valid flow set failed to marshal: %v", merr)
			}
			var back FlowSet
			if uerr := json.Unmarshal(out, &back); uerr != nil {
				t.Fatalf("round trip failed to decode: %v\n%s", uerr, out)
			}
			if !reflect.DeepEqual(fs, back) {
				t.Fatalf("round trip not lossless:\n in: %+v\nout: %+v", fs, back)
			}
			if back.Validate(cfg) != nil {
				t.Fatal("round trip invalidated the flow set")
			}
			return
		}
		// Independent first-problem scan, in Validate's checking order.
		mesh := cfg.Mesh()
		for i, fl := range fs.Flows {
			if !mesh.Contains(fl.Src) || !mesh.Contains(fl.Dst) {
				var ee *EndpointError
				if !errors.As(err, &ee) {
					t.Fatalf("flow %d has an out-of-mesh endpoint but error is %T: %v", i, err, err)
				}
				if ee.Index != i {
					t.Fatalf("EndpointError.Index = %d, want %d", ee.Index, i)
				}
				return
			}
			if fl.Src == fl.Dst {
				return // generic error is fine
			}
			if fl.Domain < 0 || fl.Domain >= cfg.Domains {
				var de *DomainError
				if !errors.As(err, &de) {
					t.Fatalf("flow %d has domain %d of %d but error is %T: %v", i, fl.Domain, cfg.Domains, err, err)
				}
				if de.Index != i || de.Domain != fl.Domain {
					t.Fatalf("DomainError = %+v, want Index %d Domain %d", de, i, fl.Domain)
				}
				return
			}
			if fl.Rate <= 0 || fl.Rate > 1 || fl.Burst < 1 || fl.Size < 0 {
				return // generic error is fine
			}
		}
	})
}

func cornerFlowFixture() Flow {
	return Flow{Src: at(0, 0), Dst: at(7, 7), Domain: 0, Rate: 5e-4, Burst: 1}
}
