package wcta

import (
	"errors"
	"math/rand"
	"testing"

	"surfbless/internal/config"
	"surfbless/internal/geom"
)

func cornerFlow() Flow {
	return Flow{Src: geom.Coord{}, Dst: geom.Coord{X: 7, Y: 7}, Domain: 0, Rate: 5e-4, Burst: 1}
}

func cfgFor(m config.Model, n int) config.Config {
	cfg := config.Default(m)
	cfg.Width, cfg.Height = n, n
	cfg.Domains = 2
	return cfg
}

func analyze(t *testing.T, cfg config.Config, flows ...Flow) *Analysis {
	t.Helper()
	a, err := Analyze(cfg, nil, FlowSet{Flows: flows})
	if err != nil {
		t.Fatalf("Analyze(%v): %v", cfg.Model, err)
	}
	return a
}

func TestValidateTypedErrors(t *testing.T) {
	cfg := cfgFor(config.SB, 4)
	ok := Flow{Src: geom.Coord{}, Dst: geom.Coord{X: 3, Y: 3}, Domain: 0, Rate: 0.1, Burst: 1}

	bad := ok
	bad.Dst = geom.Coord{X: 4, Y: 0}
	err := FlowSet{Flows: []Flow{ok, bad}}.Validate(cfg)
	var ee *EndpointError
	if !errors.As(err, &ee) {
		t.Fatalf("out-of-mesh dst: got %v, want *EndpointError", err)
	}
	if ee.Index != 1 || ee.End != "dst" {
		t.Errorf("EndpointError = %+v, want Index 1 End dst", ee)
	}

	bad = ok
	bad.Src = geom.Coord{X: -1, Y: 0}
	if err := (FlowSet{Flows: []Flow{bad}}).Validate(cfg); !errors.As(err, &ee) || ee.End != "src" {
		t.Errorf("out-of-mesh src: got %v, want *EndpointError for src", err)
	}

	bad = ok
	bad.Domain = 2
	err = FlowSet{Flows: []Flow{bad}}.Validate(cfg)
	var de *DomainError
	if !errors.As(err, &de) {
		t.Fatalf("domain ≥ NumDomains: got %v, want *DomainError", err)
	}
	if de.Index != 0 || de.Domain != 2 || de.Domains != 2 {
		t.Errorf("DomainError = %+v, want Index 0 Domain 2 Domains 2", de)
	}

	for name, mut := range map[string]func(*Flow){
		"self-addressed": func(f *Flow) { f.Dst = f.Src },
		"zero rate":      func(f *Flow) { f.Rate = 0 },
		"rate above 1":   func(f *Flow) { f.Rate = 1.5 },
		"zero burst":     func(f *Flow) { f.Burst = 0 },
		"negative size":  func(f *Flow) { f.Size = -1 },
	} {
		f := ok
		mut(&f)
		if err := (FlowSet{Flows: []Flow{f}}).Validate(cfg); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, f)
		}
	}
	if err := (FlowSet{}).Validate(cfg); err == nil {
		t.Error("empty flow set accepted")
	}
}

// Zero-load bounds for a lone corner-to-corner flow must equal the
// fabric's hand-derived traversal times: P·H for SB (the wave schedule
// gives an uncontended packet a pure XY ride), P·H + (L−1) for WH, and
// the same plus one gating wait per hop for Surf under round-robin
// domains.  The conformance harness confirms the simulator observes
// exactly these on WH and SB.
func TestZeroLoadBounds(t *testing.T) {
	for _, tc := range []struct {
		model config.Model
		n     int
		want  int64
		tight bool
	}{
		{config.WH, 4, 30, true},  // 5·6
		{config.WH, 8, 70, true},  // 5·14
		{config.SB, 4, 18, true},  // 3·6
		{config.SB, 8, 42, true},  // 3·14
		{config.Surf, 4, 36, false}, // 5·6 + 6·1
		{config.Surf, 8, 84, false}, // 5·14 + 14·1
	} {
		f := cornerFlow()
		f.Dst = geom.Coord{X: tc.n - 1, Y: tc.n - 1}
		a := analyze(t, cfgFor(tc.model, tc.n), f)
		b := a.Bound(0)
		if !b.Bounded || b.Cycles != tc.want || b.Tight != tc.tight {
			t.Errorf("%v %dx%d: bound %v, want %d cycles tight=%v", tc.model, tc.n, tc.n, b, tc.want, tc.tight)
		}
	}
}

func TestUnboundedModels(t *testing.T) {
	for _, m := range []config.Model{config.BLESS, config.CHIPPER, config.RUNAHEAD} {
		a := analyze(t, cfgFor(m, 8), cornerFlow())
		b := a.Bound(0)
		if b.Bounded || b.Reason == "" {
			t.Errorf("%v: bound %+v, want Unbounded with a reason", m, b)
		}
	}
}

// Overloading a shared link must yield an explicit refusal, not a
// garbage number: three flows at 0.5 packets/cycle through the same
// column cannot all be served.
func TestDivergenceIsExplicit(t *testing.T) {
	var flows []Flow
	for i := 0; i < 3; i++ {
		flows = append(flows, Flow{
			Src: geom.Coord{X: i, Y: 0}, Dst: geom.Coord{X: 7, Y: 7},
			Domain: 0, Rate: 0.5, Burst: 1,
		})
	}
	a := analyze(t, cfgFor(config.WH, 8), flows...)
	for i := range flows {
		if b := a.Bound(i); b.Bounded || b.Reason == "" {
			t.Errorf("flow %d: bound %+v, want Unbounded with a reason", i, b)
		}
	}
}

// Same-domain contention must grow the SB bound and clear Tight: the
// victim can now rank behind its neighbours' packets.
func TestSBSameDomainContentionGrows(t *testing.T) {
	victim := cornerFlow()
	alone := analyze(t, cfgFor(config.SB, 8), victim).Bound(0)
	rival := Flow{Src: geom.Coord{X: 3, Y: 0}, Dst: geom.Coord{X: 0, Y: 3}, Domain: 0, Rate: 1e-3, Burst: 2}
	crowded := analyze(t, cfgFor(config.SB, 8), victim, rival).Bound(0)
	if !crowded.Bounded || crowded.Cycles <= alone.Cycles {
		t.Fatalf("crowded bound %v not above lone bound %v", crowded, alone)
	}
	if crowded.Tight {
		t.Error("bound with same-domain contention still marked tight")
	}
}

// randomAggressors builds a reproducible flow set in the given domain.
func randomAggressors(rng *rand.Rand, n, domain, count int) []Flow {
	var flows []Flow
	for len(flows) < count {
		src := geom.Coord{X: rng.Intn(n), Y: rng.Intn(n)}
		dst := geom.Coord{X: rng.Intn(n), Y: rng.Intn(n)}
		if src == dst {
			continue
		}
		flows = append(flows, Flow{
			Src: src, Dst: dst, Domain: domain,
			Rate:  1e-4 + rng.Float64()*1e-3,
			Burst: 1 + rng.Intn(3),
		})
	}
	return flows
}

// The confinement property at analysis level: whatever the other
// domains do — different flows, rates, bursts, or a different order of
// the same flows — the victim's SB and Surf bounds are bit-identical,
// because neither backend lets a foreign domain into a bound.  WH, by
// contrast, must react to cross-domain load on shared links.
func TestConfinedBoundsIgnoreOtherDomains(t *testing.T) {
	const n = 8
	victim := cornerFlow()
	for _, model := range []config.Model{config.SB, config.Surf} {
		cfg := cfgFor(model, n)
		base := analyze(t, cfg, victim).Bound(0)
		rng := rand.New(rand.NewSource(42))
		for trial := 0; trial < 25; trial++ {
			flows := append([]Flow{victim}, randomAggressors(rng, n, 1, 1+rng.Intn(8))...)
			// Shuffle so the victim's position in the set varies too.
			idx := rng.Perm(len(flows))
			shuffled := make([]Flow, len(flows))
			pos := 0
			for i, j := range idx {
				shuffled[i] = flows[j]
				if j == 0 {
					pos = i
				}
			}
			got := analyze(t, cfg, shuffled...).Bound(pos)
			if !equalBounds(got, base) {
				t.Fatalf("%v trial %d: victim bound changed under foreign traffic:\n got %+v\nwant %+v", model, trial, got, base)
			}
		}
	}

	// WH contrast: a cross-domain burst crossing the victim's route
	// must show up in the bound.
	cfg := cfgFor(config.WH, n)
	base := analyze(t, cfg, victim).Bound(0)
	rival := Flow{Src: geom.Coord{X: 3, Y: 0}, Dst: geom.Coord{X: 7, Y: 2}, Domain: 1, Rate: 1e-3, Burst: 2}
	loud := analyze(t, cfg, victim, rival).Bound(0)
	if !loud.Bounded || loud.Cycles <= base.Cycles {
		t.Fatalf("WH victim bound %v did not grow above %v under cross-domain load", loud, base)
	}
}

// equalBounds compares bounds ignoring Terms slice identity.
func equalBounds(a, b Bound) bool {
	if a.Bounded != b.Bounded || a.Cycles != b.Cycles || a.Tight != b.Tight || a.Reason != b.Reason {
		return false
	}
	if len(a.Terms) != len(b.Terms) {
		return false
	}
	for i := range a.Terms {
		if a.Terms[i] != b.Terms[i] {
			return false
		}
	}
	return true
}

func TestAnalyzeRejectsInvalidInput(t *testing.T) {
	cfg := cfgFor(config.SB, 8)
	if _, err := Analyze(cfg, nil, FlowSet{}); err == nil {
		t.Error("Analyze accepted an empty flow set")
	}
	bad := cfg
	bad.Domains = 0
	if _, err := Analyze(bad, nil, FlowSet{Flows: []Flow{cornerFlow()}}); err == nil {
		t.Error("Analyze accepted an invalid config")
	}
}

func TestBoundString(t *testing.T) {
	if got := (Bound{Bounded: true, Cycles: 42, Tight: true}).String(); got != "42 cycles (tight)" {
		t.Errorf("String() = %q", got)
	}
	if got := (Bound{Reason: "x"}).String(); got != "unbounded: x" {
		t.Errorf("String() = %q", got)
	}
}

func TestFlitSizeNormalization(t *testing.T) {
	if (Flow{}).FlitSize() != 1 || (Flow{Size: 5}).FlitSize() != 5 {
		t.Error("FlitSize normalization broken")
	}
}
