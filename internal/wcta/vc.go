package wcta

import (
	"fmt"
	"math"

	"surfbless/internal/config"
	"surfbless/internal/geom"
	"surfbless/internal/wave"
)

// WH / Surf backend: buffer-aware busy-period analysis over the
// contention tree of XY routes (DESIGN.md §14.2), in the style of
// Mifdaoui & Ayed's worst-case timing analysis for wormhole networks.
//
// Per flow f the engine derives a zero-load traversal time C_f (hop
// pipeline, flit serialization, and for Surf the wave-gating TDM
// waits), collects the transitive closure S(f) of flows linked to f by
// shared XY route links (wormhole backpressure propagates interference
// across the whole tree, not just directly shared links), and iterates
// the busy period
//
//	R ← C_f + Σ_{g ∈ S(f)} (Burst_g + ⌊Rate_g·R⌋)·C_g − C_f
//
// to its least fixed point: every interfering packet that can be
// admitted inside f's busy window delays f by at most its own
// occupancy C_g.  Divergence (the window admits load faster than the
// links retire it) yields an explicit Unbounded refusal.
//
// For Surf the closure is restricted to same-domain flows: wave-gated
// links are time-divided between domains, so another domain's traffic
// can never extend a busy period — its cost is the static TDM gating
// already charged in C_f.  This is the paper's confinement claim at
// analysis level, and the property the confinement test pins down.

// vcBounds derives bounds for the ungated wormhole baseline.
func vcBounds(cfg config.Config, fs FlowSet, confined bool) []Bound {
	return vcAnalyze(cfg, fs, confined, nil)
}

// vcBoundsGated derives bounds for Surf: confined interference plus
// per-flit wave gating on every non-local output port.
func vcBoundsGated(cfg config.Config, fs FlowSet) ([]Bound, error) {
	var dec *wave.Decoder
	if cfg.WaveSets != nil {
		var err error
		if dec, err = wave.FromSets(cfg.Smax(), cfg.WaveSets); err != nil {
			return nil, err
		}
	} else {
		dec = wave.RoundRobin(cfg.Smax(), cfg.Domains)
	}
	return vcAnalyze(cfg, fs, true, dec), nil
}

func vcAnalyze(cfg config.Config, fs FlowSet, confined bool, dec *wave.Decoder) []Bound {
	mesh := cfg.Mesh()
	p := int64(cfg.HopDelay())

	// Directed links of every flow's XY route, as node-id/direction
	// pairs; Local (the ejection port) is per-node and per-domain, so
	// only mesh links carry contention.
	routes := make([]map[linkID]bool, len(fs.Flows))
	costs := make([]int64, len(fs.Flows))  // zero-load C_g per flow
	gates := make([]int64, len(fs.Flows))  // gating share of C_g
	for i, f := range fs.Flows {
		routes[i] = xyRoute(mesh, f.Src, f.Dst)
		hops := int64(mesh.Hops(f.Src, f.Dst))
		size := int64(f.FlitSize())
		costs[i] = p*hops + (size - 1)
		if dec != nil {
			wait, spacing := gateWaits(dec, f.Domain)
			// Every hop may hold the head for the wait to the next
			// owned wave; each additional flit trails one owned-wave
			// spacing behind its predecessor at the final hop.
			gates[i] = hops*wait + (size-1)*(spacing-1)
			costs[i] += gates[i]
		}
	}

	bounds := make([]Bound, len(fs.Flows))
	for i, f := range fs.Flows {
		members := contentionClosure(fs.Flows, routes, i, confined)
		bounds[i] = busyPeriod(f, fs.Flows, costs, gates, members, i)
	}
	return bounds
}

type linkID struct {
	node int
	dir  geom.Dir
}

// xyRoute returns the directed mesh links of the XY path src→dst.
func xyRoute(mesh geom.Mesh, src, dst geom.Coord) map[linkID]bool {
	links := make(map[linkID]bool)
	for cur := src; cur != dst; {
		d := geom.XYFirst(cur, dst)
		links[linkID{node: mesh.ID(cur), dir: d}] = true
		cur = cur.Add(d)
	}
	return links
}

// gateWaits returns, for a domain under the decoder, the worst wait
// until the next owned wave (0 when every wave is owned) and the worst
// spacing between consecutive owned waves.
func gateWaits(dec *wave.Decoder, dom int) (wait, spacing int64) {
	owned := dec.Owned(dom)
	if len(owned) == 0 {
		return int64(dec.Smax()), int64(dec.Smax())
	}
	smax := dec.Smax()
	for i, w := range owned {
		next := owned[(i+1)%len(owned)]
		gap := next - w
		if gap <= 0 {
			gap += smax
		}
		if int64(gap) > spacing {
			spacing = int64(gap)
		}
	}
	wait = spacing - 1
	return wait, spacing
}

// contentionClosure returns the indices of every flow transitively
// linked to flow i by shared route links (always including i).
func contentionClosure(flows []Flow, routes []map[linkID]bool, i int, confined bool) []int {
	in := make([]bool, len(flows))
	in[i] = true
	shared := make(map[linkID]bool, len(routes[i]))
	for l := range routes[i] {
		shared[l] = true
	}
	for changed := true; changed; {
		changed = false
		for j, g := range flows {
			if in[j] {
				continue
			}
			if confined && g.Domain != flows[i].Domain {
				continue
			}
			if !overlaps(routes[j], shared) {
				continue
			}
			in[j] = true
			for l := range routes[j] {
				shared[l] = true
			}
			changed = true
		}
	}
	var members []int
	for j, ok := range in {
		if ok {
			members = append(members, j)
		}
	}
	return members
}

func overlaps(a, b map[linkID]bool) bool {
	if len(a) > len(b) {
		a, b = b, a
	}
	for l := range a {
		if b[l] {
			return true
		}
	}
	return false
}

// busyPeriod iterates flow i's response time to its least fixed point.
func busyPeriod(f Flow, flows []Flow, costs, gates []int64, members []int, i int) Bound {
	c := costs[i]
	r := c
	converged := false
	for iter := 0; iter < 256; iter++ {
		interference := -c // the packet under analysis occupies its own C once
		for _, j := range members {
			g := flows[j]
			n := int64(g.Burst) + int64(math.Floor(g.Rate*float64(r)))
			interference += n * costs[j]
		}
		next := c + interference
		if next == r {
			converged = true
			break
		}
		r = next
		if r > boundCap {
			return Bound{Reason: fmt.Sprintf("contention tree of %d flows admits load faster than its links retire it: busy-period iteration diverges", len(members))}
		}
	}
	if !converged {
		return Bound{Reason: "busy-period iteration did not converge within 256 iterations"}
	}
	b := Bound{
		Bounded: true,
		Cycles:  r,
		// Exact only for a packet meeting zero contention on an
		// ungated fabric: gating waits are phase-dependent worst cases.
		Tight: r == c && gates[i] == 0,
		Terms: []Term{
			{Name: "zero-load traversal", Cycles: c - gates[i]},
			{Name: "wave-gating", Cycles: gates[i]},
			{Name: "interference", Cycles: r - c},
		},
	}
	return b
}
