// Package network defines the contract every router model's mesh
// ("fabric") implements, so that traffic generators, the synthetic
// simulator and the full-system simulator drive WH, BLESS, Surf and SB
// interchangeably.
package network

import "surfbless/internal/packet"

// Sink receives every packet the moment its tail is ejected at its
// destination node.  The synthetic simulator's sink only feeds
// statistics; the full-system simulator's sink hands the packet to the
// cache-coherence engine.
//
//hook:nil-disabled
type Sink func(node int, p *packet.Packet, now int64)

// Fabric is one mesh network instance.  Implementations are
// single-goroutine state machines: callers must call Step exactly once
// per cycle with a strictly increasing cycle number and perform all
// Inject calls for cycle T before Step(T).
type Fabric interface {
	// Inject offers a packet to node's network interface at cycle now.
	// It returns false when the NI queue for the packet's domain is
	// full; the caller decides whether to retry later (closed-loop
	// sources) or drop the offer (open-loop generators count it as
	// refused).
	Inject(node int, p *packet.Packet, now int64) bool

	// Step advances the whole network by one cycle.
	Step(now int64)

	// InFlight returns the number of accepted-but-not-yet-ejected
	// packets (queued at NIs, buffered in routers, or on links).
	InFlight() int

	// Audit cross-checks internal conservation invariants (queues +
	// links + buffers must account for exactly InFlight packets) and
	// returns the first inconsistency, or nil.  It is cheap enough to
	// call every few thousand cycles in tests.
	Audit() error
}
