// Contract tests: every router model, driven only through the
// network.Fabric interface, must honour the same discipline — Inject
// before Step, exact InFlight bookkeeping, clean conservation audits
// under random traffic, and a full drain back to InFlight()==0 once
// generation stops.  The suite is what makes the models substitutable
// behind sim.BuildFabric (and what makes cached results trustworthy:
// a fabric that leaked or duplicated packets would poison every figure
// derived from it).
package network_test

import (
	"testing"

	"surfbless/internal/config"
	"surfbless/internal/network"
	"surfbless/internal/packet"
	"surfbless/internal/power"
	"surfbless/internal/sim"
	"surfbless/internal/stats"
	"surfbless/internal/traffic"
)

var allModels = []config.Model{
	config.WH, config.BLESS, config.Surf, config.SB,
	config.CHIPPER, config.RUNAHEAD,
}

// harness bundles one fabric with its collector and ejection log.
type harness struct {
	fab network.Fabric
	col *stats.Collector
	cfg config.Config

	ejected map[uint64]int // packet ID → node it was ejected at
}

func newHarness(t *testing.T, model config.Model, domains int, mutate func(*config.Config)) *harness {
	t.Helper()
	cfg := config.Default(model)
	cfg.Width, cfg.Height = 4, 4
	cfg.Domains = domains
	if mutate != nil {
		mutate(&cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	h := &harness{cfg: cfg, ejected: make(map[uint64]int)}
	h.col = stats.NewCollector(domains, 0, 0)
	meter := power.NewMeter(cfg, power.Default45nm())
	sink := func(node int, p *packet.Packet, now int64) {
		if prev, dup := h.ejected[p.ID]; dup {
			t.Errorf("%v: packet %d ejected twice (nodes %d and %d)", model, p.ID, prev, node)
		}
		h.ejected[p.ID] = node
		if got := cfg.Mesh().ID(p.Dst); got != node {
			t.Errorf("%v: packet %d for node %d ejected at node %d", model, got, got, node)
		}
	}
	fab, err := sim.BuildFabric(cfg, nil, sink, h.col, meter)
	if err != nil {
		t.Fatal(err)
	}
	h.fab = fab
	return h
}

// audit checks the fabric's internal invariants and the external
// bookkeeping equation InFlight == created − ejected.
func (h *harness) audit(t *testing.T) {
	t.Helper()
	if err := h.fab.Audit(); err != nil {
		t.Fatalf("audit: %v", err)
	}
	if err := h.col.CheckConservation(h.fab.InFlight()); err != nil {
		t.Fatalf("bookkeeping: %v", err)
	}
}

// drain steps the fabric with no new traffic until it is empty.
func (h *harness) drain(t *testing.T, from int64, budget int64) int64 {
	t.Helper()
	now := from
	for end := from + budget; now < end && h.fab.InFlight() > 0; now++ {
		h.fab.Step(now)
	}
	if left := h.fab.InFlight(); left != 0 {
		t.Fatalf("%d packets still in flight after %d drain cycles", left, budget)
	}
	return now
}

func forEachModel(t *testing.T, f func(t *testing.T, model config.Model)) {
	for _, model := range allModels {
		t.Run(model.String(), func(t *testing.T) { f(t, model) })
	}
}

// TestContractInjectAndDeliver injects a single corner-to-corner packet
// at cycle 0 (before Step(0), as the interface requires) and follows it
// to delivery: exactly one ejection, at the destination, with InFlight
// rising to 1 and falling back to 0.
func TestContractInjectAndDeliver(t *testing.T) {
	forEachModel(t, func(t *testing.T, model config.Model) {
		h := newHarness(t, model, 1, nil)
		mesh := h.cfg.Mesh()
		src, dst := mesh.CoordOf(0), mesh.CoordOf(mesh.Nodes()-1)
		p := packet.New(7, src, dst, 0, packet.Ctrl, 0)
		if !h.fab.Inject(0, p, 0) {
			t.Fatal("empty fabric refused an injection")
		}
		if got := h.fab.InFlight(); got != 1 {
			t.Fatalf("InFlight %d after one accepted injection", got)
		}
		h.audit(t)
		h.drain(t, 0, 5000)
		if node, ok := h.ejected[7]; !ok {
			t.Fatal("packet never delivered")
		} else if node != mesh.Nodes()-1 {
			t.Fatalf("delivered to node %d, want %d", node, mesh.Nodes()-1)
		}
		h.audit(t)
	})
}

// TestContractBackpressure fills one node's domain queue within a
// single cycle: Inject must start returning false at the configured
// bound instead of growing without limit, refused offers must not
// count as in flight, and the backlog must still drain completely.
func TestContractBackpressure(t *testing.T) {
	forEachModel(t, func(t *testing.T, model config.Model) {
		const cap = 3
		h := newHarness(t, model, 1, func(c *config.Config) { c.InjectionQueueCap = cap })
		mesh := h.cfg.Mesh()
		accepted := 0
		for i := 0; i < cap+5; i++ {
			p := packet.New(uint64(i), mesh.CoordOf(0), mesh.CoordOf(5), 0, packet.Ctrl, 0)
			if h.fab.Inject(0, p, 0) {
				accepted++
			}
		}
		if accepted != cap {
			t.Fatalf("accepted %d offers into a %d-deep queue", accepted, cap)
		}
		if got := h.fab.InFlight(); got != accepted {
			t.Fatalf("InFlight %d, accepted %d — refused offers leaked in", got, accepted)
		}
		h.audit(t)
		h.drain(t, 0, 5000)
		if len(h.ejected) != accepted {
			t.Fatalf("delivered %d of %d accepted packets", len(h.ejected), accepted)
		}
		h.audit(t)
	})
}

// TestContractRandomTraffic drives each fabric with two domains of
// uniform-random traffic, auditing invariants and the InFlight equation
// every 50 cycles, then requires a full drain and created == ejected.
func TestContractRandomTraffic(t *testing.T) {
	forEachModel(t, func(t *testing.T, model config.Model) {
		const (
			domains = 2
			cycles  = 600
			rate    = 0.04
		)
		h := newHarness(t, model, domains, nil)
		sources := make([]traffic.Source, domains)
		for i := range sources {
			sources[i] = traffic.Source{Rate: rate, Class: packet.Ctrl, VNet: -1}
		}
		gen := traffic.New(h.cfg.Mesh(), traffic.UniformRandom, sources, 42)
		now := int64(0)
		for ; now < cycles; now++ {
			gen.Tick(h.fab, now)
			h.fab.Step(now)
			if now%50 == 0 {
				h.audit(t)
			}
		}
		if h.col.AllCreated == 0 {
			t.Fatal("generator produced no traffic")
		}
		h.drain(t, now, 30000)
		h.audit(t)
		if h.col.AllEjected != h.col.AllCreated {
			t.Fatalf("created %d, ejected %d after full drain", h.col.AllCreated, h.col.AllEjected)
		}
		if int64(len(h.ejected)) != h.col.AllEjected {
			t.Fatalf("sink saw %d packets, collector %d", len(h.ejected), h.col.AllEjected)
		}
	})
}

// TestContractInFlightMonotonicUnderDrain checks that with no new
// injections InFlight never increases — Step may only move packets out.
func TestContractInFlightMonotonicUnderDrain(t *testing.T) {
	forEachModel(t, func(t *testing.T, model config.Model) {
		h := newHarness(t, model, 2, nil)
		sources := []traffic.Source{
			{Rate: 0.05, Class: packet.Ctrl, VNet: -1},
			{Rate: 0.05, Class: packet.Ctrl, VNet: -1},
		}
		gen := traffic.New(h.cfg.Mesh(), traffic.UniformRandom, sources, 7)
		now := int64(0)
		for ; now < 200; now++ {
			gen.Tick(h.fab, now)
			h.fab.Step(now)
		}
		prev := h.fab.InFlight()
		for end := now + 30000; now < end && h.fab.InFlight() > 0; now++ {
			h.fab.Step(now)
			if cur := h.fab.InFlight(); cur > prev {
				t.Fatalf("InFlight grew %d → %d at cycle %d with no injections", prev, cur, now)
			} else {
				prev = cur
			}
		}
		if h.fab.InFlight() != 0 {
			t.Fatalf("drain stalled with %d in flight", h.fab.InFlight())
		}
	})
}

// TestContractDomainsStayLabelled checks through the interface that a
// packet keeps its domain from injection to ejection on every model
// (WH and BLESS merely label domains, Surf and SB confine them — but
// none may relabel).
func TestContractDomainsStayLabelled(t *testing.T) {
	forEachModel(t, func(t *testing.T, model config.Model) {
		const domains = 2
		cfg := config.Default(model)
		cfg.Width, cfg.Height = 4, 4
		cfg.Domains = domains
		col := stats.NewCollector(domains, 0, 0)
		meter := power.NewMeter(cfg, power.Default45nm())
		domainOf := map[uint64]int{}
		sink := func(node int, p *packet.Packet, now int64) {
			want, ok := domainOf[p.ID]
			if !ok {
				t.Errorf("%v: unknown packet %d ejected", model, p.ID)
				return
			}
			if p.Domain != want {
				t.Errorf("%v: packet %d injected in domain %d, ejected in %d", model, p.ID, want, p.Domain)
			}
		}
		fab, err := sim.BuildFabric(cfg, nil, sink, col, meter)
		if err != nil {
			t.Fatal(err)
		}
		mesh := cfg.Mesh()
		now := int64(0)
		id := uint64(0)
		for ; now < 60; now++ {
			for d := 0; d < domains; d++ {
				src := int(id) % mesh.Nodes()
				dst := (src + 1 + int(id)%(mesh.Nodes()-1)) % mesh.Nodes()
				p := packet.New(traffic.PacketID(src, d, id), mesh.CoordOf(src), mesh.CoordOf(dst), d, packet.Ctrl, now)
				if fab.Inject(src, p, now) {
					domainOf[p.ID] = d
				}
				id++
			}
			fab.Step(now)
		}
		for end := now + 30000; now < end && fab.InFlight() > 0; now++ {
			fab.Step(now)
		}
		if fab.InFlight() != 0 {
			t.Fatalf("drain stalled with %d in flight", fab.InFlight())
		}
		if err := fab.Audit(); err != nil {
			t.Fatal(err)
		}
	})
}
