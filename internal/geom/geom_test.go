package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDirString(t *testing.T) {
	cases := map[Dir]string{North: "N", East: "E", South: "S", West: "W", Local: "L"}
	for d, want := range cases {
		if got := d.String(); got != want {
			t.Errorf("Dir(%d).String() = %q, want %q", d, got, want)
		}
	}
	if got := Dir(42).String(); got != "Dir(42)" {
		t.Errorf("out-of-range Dir string = %q", got)
	}
}

func TestDirValid(t *testing.T) {
	for d := Dir(0); d < NumDirs; d++ {
		if !d.Valid() {
			t.Errorf("Dir %v should be valid", d)
		}
	}
	for _, d := range []Dir{-1, NumDirs, 100} {
		if d.Valid() {
			t.Errorf("Dir %d should be invalid", d)
		}
	}
}

func TestOppositeInvolution(t *testing.T) {
	for d := Dir(0); d < NumDirs; d++ {
		if d.Opposite().Opposite() != d {
			t.Errorf("Opposite is not an involution for %v", d)
		}
	}
	if North.Opposite() != South || East.Opposite() != West {
		t.Error("Opposite pairs wrong")
	}
	if Local.Opposite() != Local {
		t.Error("Opposite(Local) must be Local")
	}
}

func TestCoordAdd(t *testing.T) {
	c := Coord{3, 4}
	if got := c.Add(North); got != (Coord{3, 3}) {
		t.Errorf("Add(North) = %v", got)
	}
	if got := c.Add(South); got != (Coord{3, 5}) {
		t.Errorf("Add(South) = %v", got)
	}
	if got := c.Add(East); got != (Coord{4, 4}) {
		t.Errorf("Add(East) = %v", got)
	}
	if got := c.Add(West); got != (Coord{2, 4}) {
		t.Errorf("Add(West) = %v", got)
	}
	if got := c.Add(Local); got != c {
		t.Errorf("Add(Local) = %v, want identity", got)
	}
}

func TestAddOppositeRoundTrip(t *testing.T) {
	f := func(x, y int8, dRaw uint8) bool {
		c := Coord{int(x), int(y)}
		d := Dir(dRaw % NumLinkDirs)
		return c.Add(d).Add(d.Opposite()) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewMeshPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMesh(0,4) should panic")
		}
	}()
	NewMesh(0, 4)
}

func TestMeshIDRoundTrip(t *testing.T) {
	m := NewMesh(8, 8)
	for id := 0; id < m.Nodes(); id++ {
		if got := m.ID(m.CoordOf(id)); got != id {
			t.Errorf("ID(CoordOf(%d)) = %d", id, got)
		}
	}
	if m.Nodes() != 64 {
		t.Errorf("Nodes() = %d, want 64", m.Nodes())
	}
}

func TestMeshContains(t *testing.T) {
	m := NewMesh(4, 3)
	for _, tc := range []struct {
		c    Coord
		want bool
	}{
		{Coord{0, 0}, true},
		{Coord{3, 2}, true},
		{Coord{4, 2}, false},
		{Coord{3, 3}, false},
		{Coord{-1, 0}, false},
		{Coord{0, -1}, false},
	} {
		if got := m.Contains(tc.c); got != tc.want {
			t.Errorf("Contains(%v) = %v, want %v", tc.c, got, tc.want)
		}
	}
}

func TestHasNeighborBorders(t *testing.T) {
	m := NewMesh(3, 3)
	if m.HasNeighbor(Coord{0, 0}, North) || m.HasNeighbor(Coord{0, 0}, West) {
		t.Error("NW corner must not have N/W neighbours")
	}
	if !m.HasNeighbor(Coord{0, 0}, South) || !m.HasNeighbor(Coord{0, 0}, East) {
		t.Error("NW corner must have S/E neighbours")
	}
	if m.HasNeighbor(Coord{2, 2}, South) || m.HasNeighbor(Coord{2, 2}, East) {
		t.Error("SE corner must not have S/E neighbours")
	}
	if m.HasNeighbor(Coord{1, 1}, Local) {
		t.Error("Local never has a neighbour link")
	}
}

func TestHops(t *testing.T) {
	m := NewMesh(8, 8)
	if got := m.Hops(Coord{0, 0}, Coord{7, 7}); got != 14 {
		t.Errorf("Hops corner-to-corner = %d, want 14", got)
	}
	if got := m.Hops(Coord{3, 3}, Coord{3, 3}); got != 0 {
		t.Errorf("Hops self = %d, want 0", got)
	}
}

// X-Y routing must terminate at the destination in exactly Hops steps.
func TestXYFirstReachesDestination(t *testing.T) {
	m := NewMesh(8, 8)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		src := Coord{rng.Intn(8), rng.Intn(8)}
		dst := Coord{rng.Intn(8), rng.Intn(8)}
		cur := src
		steps := 0
		for cur != dst {
			d := XYFirst(cur, dst)
			if d == Local {
				t.Fatalf("XYFirst returned Local before reaching dst (%v->%v at %v)", src, dst, cur)
			}
			if !m.Contains(cur.Add(d)) {
				t.Fatalf("XYFirst left the mesh at %v going %v", cur, d)
			}
			cur = cur.Add(d)
			steps++
			if steps > 64 {
				t.Fatalf("XYFirst did not converge %v->%v", src, dst)
			}
		}
		if steps != m.Hops(src, dst) {
			t.Errorf("XY path length %d != Hops %d for %v->%v", steps, m.Hops(src, dst), src, dst)
		}
	}
}

func TestYXFirstReachesDestination(t *testing.T) {
	m := NewMesh(8, 8)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		src := Coord{rng.Intn(8), rng.Intn(8)}
		dst := Coord{rng.Intn(8), rng.Intn(8)}
		cur := src
		steps := 0
		for cur != dst {
			cur = cur.Add(YXFirst(cur, dst))
			steps++
			if steps > 64 {
				t.Fatalf("YXFirst did not converge %v->%v", src, dst)
			}
		}
		if steps != m.Hops(src, dst) {
			t.Errorf("YX path length %d != Hops %d for %v->%v", steps, m.Hops(src, dst), src, dst)
		}
	}
}

// XYFirst orders X before Y; YXFirst the reverse.
func TestDimensionOrder(t *testing.T) {
	cur, dst := Coord{0, 0}, Coord{3, 3}
	if XYFirst(cur, dst) != East {
		t.Error("XYFirst must move in X first")
	}
	if YXFirst(cur, dst) != South {
		t.Error("YXFirst must move in Y first")
	}
}

// Every step XYFirst suggests must be productive.
func TestXYFirstProductive(t *testing.T) {
	f := func(sx, sy, dx, dy uint8) bool {
		cur := Coord{int(sx % 8), int(sy % 8)}
		dst := Coord{int(dx % 8), int(dy % 8)}
		d := XYFirst(cur, dst)
		if cur == dst {
			return d == Local
		}
		return Productive(cur, dst, d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProductiveAtDestination(t *testing.T) {
	c := Coord{2, 2}
	if !Productive(c, c, Local) {
		t.Error("Local is productive at destination")
	}
	for _, d := range []Dir{North, East, South, West} {
		if Productive(c, c, d) {
			t.Errorf("%v must be unproductive at destination", d)
		}
	}
}

func TestProductiveDirections(t *testing.T) {
	cur, dst := Coord{4, 4}, Coord{6, 2}
	if !Productive(cur, dst, East) || !Productive(cur, dst, North) {
		t.Error("E and N should be productive toward (6,2) from (4,4)")
	}
	if Productive(cur, dst, West) || Productive(cur, dst, South) {
		t.Error("W and S should be unproductive toward (6,2) from (4,4)")
	}
}
