// Package geom provides mesh-topology geometry: coordinates, port
// directions and routing distance helpers shared by every router model.
//
// Convention (matching DESIGN.md §5): x is the column index growing
// eastwards, y is the row index growing southwards.  The paper's
// south-east sub-wave therefore moves toward larger x and larger y.
package geom

import "fmt"

// Dir identifies one of the four mesh directions or the local port.
type Dir int8

// Mesh directions. Local denotes the injection/ejection port of a router.
const (
	North   Dir = iota // toward smaller y
	East               // toward larger x
	South              // toward larger y
	West               // toward smaller x
	Local              // injection/ejection
	NumDirs = 5
)

// NumLinkDirs is the number of inter-router directions (excludes Local).
const NumLinkDirs = 4

// LinkDirs lists the four inter-router directions in their canonical
// arbitration order.  Ranging over this package-level array keeps the
// per-cycle loops in the routers off the heap, where a `[]Dir{...}`
// literal at the loop head would be re-allocated every call.
var LinkDirs = [NumLinkDirs]Dir{North, East, South, West}

// OutputDirs is LinkDirs plus the Local ejection port, in the order
// output arbitration considers them.
var OutputDirs = [NumDirs]Dir{North, East, South, West, Local}

var dirNames = [NumDirs]string{"N", "E", "S", "W", "L"}

// String returns the compass abbreviation of d.
func (d Dir) String() string {
	if d < 0 || d >= NumDirs {
		return fmt.Sprintf("Dir(%d)", int8(d))
	}
	return dirNames[d]
}

// Valid reports whether d is one of the five defined ports.
func (d Dir) Valid() bool { return d >= 0 && d < NumDirs }

// Opposite returns the direction a flit travelling along d arrives from.
// Opposite(Local) is Local.
func (d Dir) Opposite() Dir {
	switch d {
	case North:
		return South
	case South:
		return North
	case East:
		return West
	case West:
		return East
	default:
		return Local
	}
}

// Coord is a router position on the mesh.
type Coord struct {
	X int // column, 0 = west border
	Y int // row, 0 = north border
}

// String renders the coordinate as "(x,y)".
func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// Add returns the neighbouring coordinate in direction d.  The result may
// lie outside the mesh; use Mesh.Contains to check.
func (c Coord) Add(d Dir) Coord {
	switch d {
	case North:
		return Coord{c.X, c.Y - 1}
	case South:
		return Coord{c.X, c.Y + 1}
	case East:
		return Coord{c.X + 1, c.Y}
	case West:
		return Coord{c.X - 1, c.Y}
	default:
		return c
	}
}

// Mesh describes an N×M grid of routers.
type Mesh struct {
	Width  int // routers per row (x dimension)
	Height int // routers per column (y dimension)
}

// NewMesh returns a mesh of the given dimensions.  It panics if either
// dimension is not positive; mesh sizes are static configuration, so a
// bad value is a programming error, not a runtime condition.
func NewMesh(width, height int) Mesh {
	if width <= 0 || height <= 0 {
		panic(fmt.Sprintf("geom: invalid mesh %dx%d", width, height))
	}
	return Mesh{Width: width, Height: height}
}

// Nodes returns the number of routers in the mesh.
func (m Mesh) Nodes() int { return m.Width * m.Height }

// Contains reports whether c lies inside the mesh.
func (m Mesh) Contains(c Coord) bool {
	return c.X >= 0 && c.X < m.Width && c.Y >= 0 && c.Y < m.Height
}

// ID maps a coordinate to a dense node index in row-major order.
func (m Mesh) ID(c Coord) int { return c.Y*m.Width + c.X }

// CoordOf is the inverse of ID.
func (m Mesh) CoordOf(id int) Coord {
	return Coord{X: id % m.Width, Y: id / m.Width}
}

// HasNeighbor reports whether the router at c has a link in direction d.
func (m Mesh) HasNeighbor(c Coord, d Dir) bool {
	if d == Local {
		return false
	}
	return m.Contains(c.Add(d))
}

// Hops returns the Manhattan distance between two coordinates, which is
// the minimal hop count under dimension-ordered routing.
func (m Mesh) Hops(a, b Coord) int {
	return abs(a.X-b.X) + abs(a.Y-b.Y)
}

// XYFirst returns the next direction under X-Y dimension-ordered routing
// from cur toward dst, or Local when cur == dst.
func XYFirst(cur, dst Coord) Dir {
	switch {
	case dst.X > cur.X:
		return East
	case dst.X < cur.X:
		return West
	case dst.Y > cur.Y:
		return South
	case dst.Y < cur.Y:
		return North
	default:
		return Local
	}
}

// YXFirst returns the next direction under Y-X dimension-ordered routing
// from cur toward dst, or Local when cur == dst.
func YXFirst(cur, dst Coord) Dir {
	switch {
	case dst.Y > cur.Y:
		return South
	case dst.Y < cur.Y:
		return North
	case dst.X > cur.X:
		return East
	case dst.X < cur.X:
		return West
	default:
		return Local
	}
}

// Productive reports whether moving in direction d from cur reduces the
// distance to dst.
func Productive(cur, dst Coord, d Dir) bool {
	switch d {
	case North:
		return dst.Y < cur.Y
	case South:
		return dst.Y > cur.Y
	case East:
		return dst.X > cur.X
	case West:
		return dst.X < cur.X
	default:
		return cur == dst
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
