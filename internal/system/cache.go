package system

import (
	"encoding/json"
	"fmt"

	"surfbless/internal/simcache"
)

// FingerprintVersion tags the canonical Options serialization and the
// full-system simulator's behaviour (cores, MESI hierarchy, NoC).
// Bump on any semantic change so stale cache entries become
// unreachable.  It is distinct from sim.FingerprintVersion: the two
// run kinds can never alias.
const FingerprintVersion = "surfbless-system-v1"

// Fingerprint derives the content-addressed cache key of a full-system
// run from the canonical JSON serialization of its options (model,
// application profile, instruction quota, cycle bound, seed, memory
// latencies, energy coefficients, wave sets).
func Fingerprint(o Options) (simcache.Key, error) {
	payload, err := json.Marshal(o)
	if err != nil {
		return simcache.Key{}, fmt.Errorf("system: fingerprint: %w", err)
	}
	return simcache.Fingerprint(FingerprintVersion, payload), nil
}

// RunCached is Run behind a content-addressed cache, with the same
// degradation contract as sim.RunCached: nil cache, unserializable
// options and undecodable entries all fall back to a plain Run.
func RunCached(o Options, c *simcache.Cache) (Result, error) {
	if c == nil {
		return Run(o)
	}
	key, err := Fingerprint(o)
	if err != nil {
		return Run(o)
	}
	if raw, ok := c.Get(key); ok {
		var res Result
		if err := json.Unmarshal(raw, &res); err == nil {
			return res, nil
		}
		c.NoteCorrupt()
	}
	res, err := Run(o)
	if err != nil {
		return res, err
	}
	if raw, err := json.Marshal(res); err == nil {
		c.Put(key, raw)
	}
	return res, nil
}
