package system

import (
	"testing"

	"surfbless/internal/coherence"
	"surfbless/internal/config"
	"surfbless/internal/cpu"
)

func swaptions(t *testing.T) cpu.Profile {
	t.Helper()
	p, err := cpu.ProfileByName("swaptions")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func shortRun(t *testing.T, model config.Model, app string, instr int64) Result {
	t.Helper()
	prof, err := cpu.ProfileByName(app)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Options{
		Model:        model,
		App:          prof,
		InstrPerCore: instr,
		Seed:         7,
	})
	if err != nil {
		t.Fatalf("%v/%s: %v", model, app, err)
	}
	return res
}

func TestWaveSetsForPaperSmax(t *testing.T) {
	sets := waveSetsFor(42, 3)
	if len(sets) != 3 {
		t.Fatalf("%d sets, want 3", len(sets))
	}
	ctrl, d0, d1 := sets[0], sets[1], sets[2]
	if len(d0) != 15 || len(d1) != 15 {
		t.Errorf("data sets sized %d/%d, want 15 each (three 5-wave windows)", len(d0), len(d1))
	}
	if len(ctrl) != 12 {
		t.Errorf("control set sized %d, want 12", len(ctrl))
	}
	// Disjoint and in range.
	seen := map[int]int{}
	for dom, set := range sets {
		for _, w := range set {
			if w < 0 || w >= 42 {
				t.Fatalf("wave %d out of range", w)
			}
			if prev, dup := seen[w]; dup {
				t.Fatalf("wave %d in both set %d and %d", w, prev, dom)
			}
			seen[w] = dom
		}
	}
	if len(seen) != 42 {
		t.Errorf("%d waves assigned, want all 42", len(seen))
	}
}

func TestWaveSetsForPanicsWhenTooSmall(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("waveSetsFor(24) must panic (windows would overlap)")
		}
	}()
	waveSetsFor(24, 3)
}

func TestCfgFor(t *testing.T) {
	for _, m := range []config.Model{config.WH, config.Surf, config.SB} {
		cfg, err := cfgFor(m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if cfg.Domains != coherence.NumVNets {
			t.Errorf("%v: %d domains, want %d virtual networks", m, cfg.Domains, coherence.NumVNets)
		}
		if err := cfg.Validate(); err != nil {
			t.Errorf("%v: invalid cfg: %v", m, err)
		}
	}
	if _, err := cfgFor(config.BLESS); err == nil {
		t.Error("BLESS accepted — the paper excludes it from §5.2")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Options{Model: config.WH, App: swaptions(t), InstrPerCore: 0}); err == nil {
		t.Error("zero instructions accepted")
	}
	if _, err := Run(Options{Model: config.BLESS, App: swaptions(t), InstrPerCore: 10}); err == nil {
		t.Error("BLESS accepted")
	}
	if _, err := Run(Options{Model: config.WH, App: cpu.Profile{}, InstrPerCore: 10}); err == nil {
		t.Error("invalid profile accepted")
	}
}

// Every §5.2 model must run a small workload to completion with all
// conservation/confinement assertions live.
func TestAllModelsComplete(t *testing.T) {
	for _, m := range []config.Model{config.WH, config.Surf, config.SB} {
		res := shortRun(t, m, "swaptions", 3000)
		if !res.Finished {
			t.Fatalf("%v did not finish", m)
		}
		if res.ExecCycles < 3000 {
			t.Errorf("%v: exec %d cycles for 3000 instructions — impossible", m, res.ExecCycles)
		}
		if res.Total.Ejected == 0 {
			t.Errorf("%v: no NoC traffic generated", m)
		}
		if res.Total.Created != res.Total.Ejected {
			t.Errorf("%v: created %d != ejected %d after quiescence",
				m, res.Total.Created, res.Total.Ejected)
		}
		t.Logf("%v: exec=%d cycles, pkts=%d, L1 miss=%.3f, lat=%.1f (q %.1f + n %.1f), energy=%v",
			m, res.ExecCycles, res.Total.Ejected, res.L1MissRate,
			res.Total.AvgTotalLatency(), res.Total.AvgQueueLatency(),
			res.Total.AvgNetworkLatency(), res.Energy)
	}
}

// The three virtual networks must all carry traffic, with the expected
// classes: vnet0 control (1 flit/packet), vnets 1-2 data (5).
func TestVNetTrafficMix(t *testing.T) {
	res := shortRun(t, config.SB, "dedup", 2000)
	for v, d := range res.VNets {
		if d.Ejected == 0 {
			t.Errorf("vnet %d carried nothing", v)
			continue
		}
		flitsPerPkt := float64(d.FlitsMoved) / float64(d.Ejected)
		want := 5.0
		if v == 0 {
			want = 1.0
		}
		if flitsPerPkt != want {
			t.Errorf("vnet %d: %.2f flits/packet, want %g", v, flitsPerPkt, want)
		}
	}
}

// Determinism: same options, same result.
func TestRunDeterministic(t *testing.T) {
	a := shortRun(t, config.SB, "swaptions", 1500)
	b := shortRun(t, config.SB, "swaptions", 1500)
	if a.ExecCycles != b.ExecCycles || a.Total != b.Total {
		t.Errorf("identical runs diverged: %d vs %d cycles", a.ExecCycles, b.ExecCycles)
	}
}

// Application differentiation: the cache-hostile canneal must produce
// far more NoC traffic per instruction than the compute-bound
// swaptions.
func TestAppProfilesDiffer(t *testing.T) {
	sw := shortRun(t, config.WH, "swaptions", 2000)
	ca := shortRun(t, config.WH, "canneal", 2000)
	if ca.L1MissRate <= sw.L1MissRate {
		t.Errorf("canneal miss rate %.3f not above swaptions %.3f", ca.L1MissRate, sw.L1MissRate)
	}
	if ca.Total.Ejected <= sw.Total.Ejected {
		t.Errorf("canneal packets %d not above swaptions %d", ca.Total.Ejected, sw.Total.Ejected)
	}
	if ca.ExecCycles <= sw.ExecCycles {
		t.Errorf("canneal exec %d not above swaptions %d", ca.ExecCycles, sw.ExecCycles)
	}
}

// The Fig-10 headline: SB consumes much less NoC energy than WH on the
// same workload, and Surf does not beat WH.
func TestEnergyOrdering(t *testing.T) {
	wh := shortRun(t, config.WH, "dedup", 2000)
	sb := shortRun(t, config.SB, "dedup", 2000)
	surf := shortRun(t, config.Surf, "dedup", 2000)
	if sb.Energy.Total() >= 0.8*wh.Energy.Total() {
		t.Errorf("SB energy %v not well below WH %v", sb.Energy, wh.Energy)
	}
	if surf.Energy.Total() <= wh.Energy.Total() {
		t.Errorf("Surf energy %v should exceed WH %v (extra VCs + TDM logic)",
			surf.Energy, wh.Energy)
	}
}
