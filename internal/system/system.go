// Package system is the full-system simulator behind Figs. 8–10: 64
// in-order cores with private L1s, 64 address-interleaved shared L2
// banks with the MESI directory, four corner memory controllers, all
// communicating over one of the WH / Surf / SB networks through three
// virtual networks (one 1-flit control, two 5-flit data; §5.2).
//
// Virtual networks map one-to-one onto interference domains: WH binds
// them to per-VNet VCs, Surf to per-domain VCs plus wave gating, and SB
// to the paper's wave sets — data VNets get three aligned 5-wave
// windows each, control the remaining waves — which is exactly how the
// paper removes the request/reply protocol-deadlock cycle on a
// bufferless NoC.  BLESS cannot carry multi-flit classes and is
// excluded, as in the paper.
package system

import (
	"fmt"

	"surfbless/internal/coherence"
	"surfbless/internal/config"
	"surfbless/internal/cpu"
	"surfbless/internal/geom"
	"surfbless/internal/network"
	"surfbless/internal/packet"
	"surfbless/internal/power"
	"surfbless/internal/router/surf"
	"surfbless/internal/router/surfbless"
	"surfbless/internal/router/wormhole"
	"surfbless/internal/stats"
	"surfbless/internal/traffic"
)

// Options configures one full-system run.
type Options struct {
	Model config.Model
	App   cpu.Profile

	// InstrPerCore is each core's instruction quota.
	InstrPerCore int64
	// MaxCycles bounds the run (0 = a generous default).
	MaxCycles int64

	Seed int64

	// L2Latency and DRAMLatency are the bank and memory service times in
	// cycles (defaults: 6 and 80).
	L2Latency   int64
	DRAMLatency int64

	// Coefficients overrides the energy model (nil = Default45nm).
	Coefficients *power.Coefficients

	// WaveSets overrides the SB wave assignment (nil = the tuned
	// waveSetsFor placement).  The wave-placement ablation passes
	// PaperWaveSets().
	WaveSets [][]int
}

// Result is one full-system run's outcome.
type Result struct {
	App   string
	Model config.Model

	// ExecCycles is the application execution time: the cycle at which
	// the last core retired its final instruction (Fig. 8).
	ExecCycles int64
	Finished   bool

	// Per-virtual-network and total packet statistics (Fig. 9 uses the
	// queue/network latency breakdown of Total).
	VNets []stats.Domain
	Total stats.Domain

	Energy power.Energy // Fig. 10 breakdown

	L1MissRate float64
	MemReads   int64
}

// waveSetsFor builds the §5.2-style wave assignment for Smax waves and
// hop delay P: each data virtual network receives three 5-wave worm
// windows, the control network owns every remaining wave.
//
// The paper hand-picks {0–4},{15–19},{30–34} / {7–11},{22–26},{37–41}.
// This reproduction places the windows at multiples of 2·P instead
// (P = 3 ⇒ data0 {0–4},{12–16},{24–28}, data1 {6–10},{18–22},{30–34}).
// The placement matters enormously: the SE scheduler trails the N
// scheduler by 2·P·y at row y, so a worm travelling north on wave s can
// hop onto the south-east wave — to turn or to eject — only at rows
// where s − 2·P·y is again a window start.  With the paper's stride 15
// (not a multiple of 2·P = 6) that happens only at the mesh border,
// and every north/west-destined worm detours to row/column 0 or 7;
// with stride 2·P, turn rows exist every couple of rows and the
// deflection detour shrinks dramatically.  PaperWaveSets returns the
// literal published assignment so the ablation bench can quantify the
// difference.
func waveSetsFor(smax, hopDelay int) [][]int {
	stride := 2 * hopDelay
	if stride <= coherence.DataFlits {
		panic(fmt.Sprintf("system: stride %d cannot hold a %d-flit worm window plus a gap", stride, coherence.DataFlits))
	}
	if smax < 6*stride {
		panic(fmt.Sprintf("system: Smax %d too small for two data VNets (need ≥ %d)", smax, 6*stride))
	}
	var data0, data1 []int
	for k := 0; k < 3; k++ {
		data0 = append(data0, window(2*k*stride)...)
		data1 = append(data1, window((2*k+1)*stride)...)
	}
	owned := make(map[int]bool)
	for _, w := range append(append([]int{}, data0...), data1...) {
		owned[w] = true
	}
	var ctrl []int
	for w := 0; w < smax; w++ {
		if !owned[w] {
			ctrl = append(ctrl, w)
		}
	}
	// Order: domain index == virtual network (0 ctrl, 1 and 2 data).
	return [][]int{ctrl, data0, data1}
}

// PaperWaveSets returns the paper's literal §5.2 assignment for
// Smax = 42 — data VNets on {0–4},{15–19},{30–34} and {7–11},{22–26},
// {37–41}, control on the rest — used by the wave-placement ablation.
func PaperWaveSets() [][]int {
	var data0, data1 []int
	for _, s := range []int{0, 15, 30} {
		data0 = append(data0, window(s)...)
	}
	for _, s := range []int{7, 22, 37} {
		data1 = append(data1, window(s)...)
	}
	owned := make(map[int]bool)
	for _, w := range append(append([]int{}, data0...), data1...) {
		owned[w] = true
	}
	var ctrl []int
	for w := 0; w < 42; w++ {
		if !owned[w] {
			ctrl = append(ctrl, w)
		}
	}
	return [][]int{ctrl, data0, data1}
}

func window(start int) []int {
	ws := make([]int, coherence.DataFlits)
	for i := range ws {
		ws[i] = start + i
	}
	return ws
}

// cfgFor returns the §5.2 network configuration for the model.
func cfgFor(model config.Model) (config.Config, error) {
	switch model {
	case config.WH, config.Surf, config.SB:
	default:
		return config.Config{}, fmt.Errorf("system: model %v does not support the multi-class cache traffic (§5.2)", model)
	}
	cfg := config.Default(model)
	cfg.Domains = coherence.NumVNets
	cfg.InjectionVCDepth = coherence.DataFlits // injection VCs must hold a worm
	if model == config.SB {
		cfg.WaveSets = waveSetsFor(cfg.Smax(), cfg.HopDelay())
	}
	// Surf keeps the default round-robin wave→domain decoding.  Two
	// alternatives were measured and rejected: SB-style sparse worm
	// windows (halves the data domains' slot share; exec +39%) and
	// block-cyclic 5-wave runs (helps data tails but taxes control
	// packets; exec +2.5% net).  The remaining Surf cost relative to
	// the paper — per-flit TDM limits each domain to 1/D of the NI and
	// link bandwidth, which latency-sensitive blocking cores amplify —
	// is recorded in EXPERIMENTS.md.
	return cfg, nil
}

// buildFabric instantiates the §5.2 network for the configuration.
func buildFabric(cfg config.Config, col *stats.Collector, meter *power.Meter, sink network.Sink) (network.Fabric, error) {
	switch cfg.Model {
	case config.WH:
		return wormhole.New(wormhole.Options{
			Cfg: cfg,
			VCs: wormhole.VNetVCs(cfg),
			Key: wormhole.KeyVNet,
		}, sink, col, meter)
	case config.Surf:
		return surf.New(cfg, sink, col, meter)
	default:
		return surfbless.New(cfg, []int{1, coherence.DataFlits, coherence.DataFlits}, sink, col, meter)
	}
}

// Run executes one full-system simulation.
func Run(o Options) (Result, error) {
	if o.InstrPerCore < 1 {
		return Result{}, fmt.Errorf("system: InstrPerCore = %d", o.InstrPerCore)
	}
	if err := o.App.Validate(); err != nil {
		return Result{}, err
	}
	if o.MaxCycles == 0 {
		o.MaxCycles = 200 * o.InstrPerCore // generous: CPI 200 ceiling
	}
	if o.L2Latency == 0 {
		o.L2Latency = 6
	}
	if o.DRAMLatency == 0 {
		o.DRAMLatency = 80
	}
	co := power.Default45nm()
	if o.Coefficients != nil {
		co = *o.Coefficients
	}

	cfg, err := cfgFor(o.Model)
	if err != nil {
		return Result{}, err
	}
	if o.WaveSets != nil && o.Model == config.SB {
		cfg.WaveSets = o.WaveSets
	}
	s := &sys{opt: o, cfg: cfg}
	s.col = stats.NewCollector(coherence.NumVNets, 0, 0)
	s.meter = power.NewMeter(cfg, co)
	s.fab, err = buildFabric(cfg, s.col, s.meter, s.sink)
	if err != nil {
		return Result{}, err
	}
	s.build()

	return s.run()
}

// sys holds one run's live state.
type sys struct {
	opt   Options
	cfg   config.Config
	fab   network.Fabric
	col   *stats.Collector
	meter *power.Meter

	mesh  geom.Mesh
	cores []*cpu.Core
	l1s   []*coherence.L1
	l2s   []*coherence.L2
	mcs   []*coherence.MC // nil for non-corner nodes
	mcIDs []int

	// outbox[node][vnet] holds protocol messages awaiting injection;
	// per-vnet queues so a full data NI queue cannot block control
	// messages (and vice versa).
	outbox [][][]*coherence.Msg
	// loopback delivers node-local messages (L1→own L2 bank) without
	// touching the network, uniformly across models.
	loopback []loopMsg
	ids      packet.IDSource
	now      int64

	inFlightLocal int
}

type loopMsg struct {
	at  int64
	msg *coherence.Msg
}

func (s *sys) build() {
	s.mesh = s.cfg.Mesh()
	nodes := s.mesh.Nodes()
	homeOf := func(block uint64) int { return int(block % uint64(nodes)) }
	s.mcIDs = coherence.CornerMCs(s.cfg.Width, s.cfg.Height)
	mcSet := make(map[int]int, len(s.mcIDs))
	for i, id := range s.mcIDs {
		mcSet[id] = i
	}
	mcOf := func(block uint64) int { return s.mcIDs[int(block>>4)%len(s.mcIDs)] }

	s.outbox = make([][][]*coherence.Msg, nodes)
	s.l1s = make([]*coherence.L1, nodes)
	s.l2s = make([]*coherence.L2, nodes)
	s.mcs = make([]*coherence.MC, nodes)
	s.cores = make([]*cpu.Core, nodes)
	for n := 0; n < nodes; n++ {
		n := n
		s.outbox[n] = make([][]*coherence.Msg, coherence.NumVNets)
		send := func(m *coherence.Msg, now int64) { s.post(m, now) }
		s.l1s[n] = coherence.NewL1(n, 32*1024, 16, 4, homeOf, send) // Table 1: 32 KB I/D L1
		s.l2s[n] = coherence.NewL2(n, 256*1024, 16, 8, s.opt.L2Latency, mcOf, send)
		if _, ok := mcSet[n]; ok {
			s.mcs[n] = coherence.NewMC(n, s.opt.DRAMLatency, send)
		}
		s.cores[n] = cpu.NewCore(n, s.opt.App, s.opt.InstrPerCore, s.opt.Seed, s.l1s[n])
	}
}

// post queues a protocol message for transmission.
func (s *sys) post(m *coherence.Msg, now int64) {
	if m.From == m.To {
		// Node-local hop: bypass the network with a one-cycle loopback.
		s.loopback = append(s.loopback, loopMsg{at: now + 1, msg: m})
		s.inFlightLocal++
		return
	}
	vn := m.Type.VNet()
	s.outbox[m.From][vn] = append(s.outbox[m.From][vn], m)
}

// drainOutboxes injects as many pending messages as the NIs accept.
func (s *sys) drainOutboxes(now int64) {
	for n := range s.outbox {
		for vn := range s.outbox[n] {
			q := s.outbox[n][vn]
			for len(q) > 0 {
				m := q[0]
				p := packet.New(traffic.PacketID(n, vn, uint64(s.ids.Next())),
					s.mesh.CoordOf(m.From), s.mesh.CoordOf(m.To), vn, classOf(m.Type), now)
				p.VNet = vn
				p.Msg = m
				if !s.fab.Inject(n, p, now) {
					break
				}
				q = q[1:]
			}
			s.outbox[n][vn] = q
		}
	}
}

func classOf(t coherence.MsgType) packet.Class {
	if t.Flits() == 1 {
		return packet.Ctrl
	}
	return packet.Data
}

// sink receives ejected packets and hands them to the local engines.
func (s *sys) sink(node int, p *packet.Packet, now int64) {
	s.deliver(node, p.Msg.(*coherence.Msg), now)
}

func (s *sys) deliver(node int, m *coherence.Msg, now int64) {
	switch m.Type {
	case coherence.Data, coherence.Grant, coherence.Inv, coherence.Recall:
		s.l1s[node].Deliver(m, now)
	case coherence.MemRead, coherence.MemWB:
		if s.mcs[node] == nil {
			panic(fmt.Sprintf("system: %v addressed to non-MC node %d", m, node))
		}
		s.mcs[node].Deliver(m, now)
	default:
		s.l2s[node].Deliver(m, now)
	}
}

func (s *sys) run() (Result, error) {
	var execDone int64 = -1
	for s.now = 0; s.now < s.opt.MaxCycles; s.now++ {
		now := s.now
		// Local loopback deliveries due this cycle.  Delivering can post
		// fresh loopback messages (an L1 fill may evict and write back
		// to its own bank), so swap the queue out before iterating.
		if len(s.loopback) > 0 {
			due := s.loopback
			s.loopback = nil
			for _, lm := range due {
				if lm.at <= now {
					s.inFlightLocal--
					s.deliver(lm.msg.To, lm.msg, now)
				} else {
					s.loopback = append(s.loopback, lm)
				}
			}
		}
		done := true
		for n, core := range s.cores {
			core.Tick(now)
			done = done && core.Done()
			s.l2s[n].Tick(now)
			if s.mcs[n] != nil {
				s.mcs[n].Tick(now)
			}
		}
		if done && execDone < 0 {
			execDone = now
		}
		s.drainOutboxes(now)
		s.fab.Step(now)
		if done && s.quiescent() {
			s.now++
			break
		}
	}

	res := Result{
		App:        s.opt.App.Name,
		Model:      s.opt.Model,
		ExecCycles: execDone,
		Finished:   execDone >= 0,
		VNets:      make([]stats.Domain, coherence.NumVNets),
		Total:      s.col.Total(),
		Energy:     s.meter.Report(max64(execDone, s.now)),
	}
	for v := 0; v < coherence.NumVNets; v++ {
		res.VNets[v] = s.col.Domain(v)
	}
	var hits, misses, reads int64
	for n := range s.l1s {
		hits += s.l1s[n].Hits
		misses += s.l1s[n].Misses
		if s.mcs[n] != nil {
			reads += s.mcs[n].Reads
		}
	}
	if hits+misses > 0 {
		res.L1MissRate = float64(misses) / float64(hits+misses)
	}
	res.MemReads = reads
	if !res.Finished {
		return res, fmt.Errorf("system: %s on %v did not finish within %d cycles",
			s.opt.App.Name, s.opt.Model, s.opt.MaxCycles)
	}
	return res, nil
}

// quiescent reports whether every queue in the system is empty.
func (s *sys) quiescent() bool {
	if s.fab.InFlight() != 0 || s.inFlightLocal != 0 {
		return false
	}
	for n := range s.outbox {
		for vn := range s.outbox[n] {
			if len(s.outbox[n][vn]) != 0 {
				return false
			}
		}
		if s.l2s[n].Pending() != 0 {
			return false
		}
		if s.mcs[n] != nil && s.mcs[n].Pending() != 0 {
			return false
		}
	}
	return true
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
