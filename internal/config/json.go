package config

import (
	"encoding/json"
	"fmt"
	"os"
)

// MarshalJSON encodes the model by its paper abbreviation so config
// files read naturally ("Model": "SB").
func (m Model) MarshalJSON() ([]byte, error) {
	s, ok := modelNames[m]
	if !ok {
		return nil, fmt.Errorf("config: cannot encode unknown model %d", int(m))
	}
	return json.Marshal(s)
}

// UnmarshalJSON accepts the paper abbreviations (case-sensitive).
func (m *Model) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	for model, name := range modelNames {
		if name == s {
			*m = model
			return nil
		}
	}
	return fmt.Errorf("config: unknown model %q (want WH, BLESS, Surf, SB or CHIPPER)", s)
}

// Load reads and validates a configuration from a JSON file.  Fields
// absent from the file keep the Table-1 defaults of the decoded model,
// so a minimal file like {"Model":"SB","Domains":3} works: the file is
// decoded twice — once to learn the model, once over its defaults.
func Load(path string) (Config, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Config{}, fmt.Errorf("config: %w", err)
	}
	var probe struct{ Model Model }
	if err := json.Unmarshal(raw, &probe); err != nil {
		return Config{}, fmt.Errorf("config: %s: %w", path, err)
	}
	cfg := Default(probe.Model)
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return Config{}, fmt.Errorf("config: %s: %w", path, err)
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, fmt.Errorf("config: %s: %w", path, err)
	}
	return cfg, nil
}

// Save writes the configuration as indented JSON.
func (c Config) Save(path string) error {
	if err := c.Validate(); err != nil {
		return err
	}
	raw, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}
