package config

import (
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzConfigJSON feeds arbitrary bytes through the same decode path
// Load uses (probe the model, decode over that model's defaults) and
// asserts two properties: no input may panic the decoder, and any
// input that yields a valid configuration must survive a
// marshal/unmarshal round trip unchanged.  The round trip is what the
// result cache's fingerprinting leans on — a configuration that
// serialized lossily would alias distinct runs onto one cache key.
func FuzzConfigJSON(f *testing.F) {
	for _, m := range []Model{WH, BLESS, Surf, SB, CHIPPER, RUNAHEAD} {
		raw, err := json.Marshal(Default(m))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	f.Add([]byte(`{"Model":"SB","Domains":3}`))
	f.Add([]byte(`{"Model":"Surf","WaveSets":[[0,1],[2]],"Domains":2}`))
	f.Add([]byte(`{"Model":"BLESS","Width":-1}`))
	f.Add([]byte(`{"Model":"SB","Faults":{"Seed":7,"Events":[{"Kind":"link-flap","Node":27,"Dir":1,"At":100,"Repair":50,"Period":200}]}}`))
	f.Add([]byte(`{"Model":"WH","Faults":{"MaxRetries":-1,"Events":[{"Kind":"packet-drop","Node":9,"Dir":2,"Prob":0.25}]}}`))
	f.Add([]byte(`{"Model":"BLESS","Faults":{"Events":[{"Kind":"router-freeze","Node":999}]}}`))
	f.Add([]byte(`{"Model":"SB","Faults":{"Events":[{"Kind":"link-kill","Node":0,"Repair":-5}]}}`))
	f.Add([]byte(`{"Model":42}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var probe struct{ Model Model }
		if json.Unmarshal(data, &probe) != nil {
			return
		}
		cfg := Default(probe.Model)
		if json.Unmarshal(data, &cfg) != nil {
			return
		}
		if cfg.Validate() != nil {
			return
		}
		out, err := json.Marshal(cfg)
		if err != nil {
			t.Fatalf("valid config failed to marshal: %v", err)
		}
		var back Config
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("round trip failed to decode: %v\n%s", err, out)
		}
		if !reflect.DeepEqual(cfg, back) {
			t.Fatalf("round trip not lossless:\n in: %+v\nout: %+v", cfg, back)
		}
		if back.Validate() != nil {
			t.Fatalf("round trip invalidated the config: %+v", back)
		}
	})
}
