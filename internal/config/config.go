// Package config holds every simulation parameter of the reproduction.
// The defaults mirror Table 1 of the paper: an 8×8 mesh, 2-stage
// bufferless / 4-stage virtual-channel router pipelines, one 1-flit
// control VC plus two 5-flit data VCs per port for the wormhole
// baseline, 128-bit links, a two-level MESI hierarchy with four corner
// memory controllers.
package config

import (
	"errors"
	"fmt"

	"surfbless/internal/fault"
	"surfbless/internal/geom"
)

// Model selects which router microarchitecture the network instantiates.
type Model int

// The four networks compared in the paper's evaluation (§5).
const (
	// WH is the baseline wormhole virtual-channel network.  It does not
	// support confined-interference communication.
	WH Model = iota
	// BLESS is the baseline bufferless deflection network [9].  It does
	// not support confined-interference communication.
	BLESS
	// Surf is the SurfNoC-style confined-interference network [2]:
	// per-domain VCs at every input port plus wave-scheduled links.
	Surf
	// SB is Surf-Bless: confined-interference communication on a
	// bufferless network (this paper's contribution).
	SB
	// CHIPPER is the low-complexity bufferless deflection router of
	// Fallin et al. [10] (permutation deflection network, golden-packet
	// livelock freedom).  It is an extension of this reproduction — the
	// paper discusses it as related work but does not evaluate it.
	CHIPPER
	// RUNAHEAD is the dropping single-cycle bufferless network of Li et
	// al. [11], another related-work extension; lost packets are
	// recovered by source retransmission (see package runahead).
	RUNAHEAD
)

var modelNames = map[Model]string{
	WH: "WH", BLESS: "BLESS", Surf: "Surf", SB: "SB",
	CHIPPER: "CHIPPER", RUNAHEAD: "RUNAHEAD",
}

// String returns the paper's abbreviation for the model.
func (m Model) String() string {
	if s, ok := modelNames[m]; ok {
		return s
	}
	return fmt.Sprintf("Model(%d)", int(m))
}

// Bufferless reports whether the model has no in-network VCs (only
// injection-side buffering), i.e. BLESS, SB or CHIPPER.
func (m Model) Bufferless() bool {
	return m == BLESS || m == SB || m == CHIPPER || m == RUNAHEAD
}

// ConfinedInterference reports whether the model isolates domains.
func (m Model) ConfinedInterference() bool { return m == Surf || m == SB }

// Config is the complete parameter set for one simulation.
type Config struct {
	// Topology.
	Width  int // mesh columns (Table 1: 8)
	Height int // mesh rows (Table 1: 8)

	Model Model

	// Domains is the number of interference domains (D_1 … D_9 in §5.1.2).
	// Must be ≥ 1.  Only Surf and SB confine interference between them;
	// WH and BLESS accept Domains > 1 but merely label packets.
	Domains int

	// Router pipelines, in cycles (Table 1: 2-stage and 4-stage).
	BufferlessPipeline int // router delay for BLESS / SB
	VCPipeline         int // router delay for WH / Surf
	LinkDelay          int // cycles to traverse one link

	// Virtual-channel shape for WH/Surf (Table 1: 1 ctrl VC @1 flit,
	// 2 data VCs @5 flits per input port, per domain for Surf).
	CtrlVCsPerPort int
	CtrlVCDepth    int
	DataVCsPerPort int
	DataVCDepth    int

	// InjectionVCDepth is the per-domain injection VC depth for the
	// bufferless models (§5.1.2 uses 4-flit VCs).
	InjectionVCDepth int

	// InjectionQueueCap bounds the per-node network-interface queue that
	// feeds the injection VCs; source queueing beyond it applies
	// back-pressure to the generator (queue latency in Fig. 9).
	InjectionQueueCap int

	// LinkBits is the link width in bits (Table 1: 128).
	LinkBits int

	// ClockHz is the network clock (§5.1.2: 1 GHz).
	ClockHz float64

	// WaveSets optionally assigns explicit wave index sets to domains
	// (§5.2's multi-class configuration).  When nil, waves are assigned
	// round-robin: wave w belongs to domain w mod Domains.
	WaveSets [][]int

	// Faults optionally schedules deterministic fault injection (see
	// package fault).  It lives in the Config — not beside the probe —
	// because an armed plan changes simulation results and must be part
	// of the result-cache fingerprint; nil keeps fault-free
	// serialization (and therefore fingerprints) unchanged.
	Faults *fault.Plan `json:",omitempty"`
}

// Default returns the Table-1 configuration for the given model with a
// single domain.
func Default(m Model) Config {
	return Config{
		Width:  8,
		Height: 8,

		Model:   m,
		Domains: 1,

		BufferlessPipeline: 2,
		VCPipeline:         4,
		LinkDelay:          1,

		CtrlVCsPerPort: 1,
		CtrlVCDepth:    1,
		DataVCsPerPort: 2,
		DataVCDepth:    5,

		InjectionVCDepth:  4,
		InjectionQueueCap: 64,

		LinkBits: 128,
		ClockHz:  1e9,
	}
}

// HopDelay returns P, the hop delay in clock cycles: the delay of a
// packet through one router and one link (Section 4.2).
func (c Config) HopDelay() int {
	if c.Model.Bufferless() {
		return c.BufferlessPipeline + c.LinkDelay
	}
	return c.VCPipeline + c.LinkDelay
}

// Smax returns the maximal number of waves, Smax = 2·P·(N−1), where N is
// the number of routers in one dimension (Section 4.2).  For
// non-square meshes the larger dimension is used so every sub-wave
// closes its reverberation period.
func (c Config) Smax() int {
	n := c.Width
	if c.Height > n {
		n = c.Height
	}
	return 2 * c.HopDelay() * (n - 1)
}

// Mesh returns the topology described by the configuration.
func (c Config) Mesh() geom.Mesh { return geom.NewMesh(c.Width, c.Height) }

// Nodes returns the number of network nodes.
func (c Config) Nodes() int { return c.Width * c.Height }

// FlitBytes returns the payload bytes carried per flit.
func (c Config) FlitBytes() int { return c.LinkBits / 8 }

// BufferFlitsPerRouter returns the total in-router buffer capacity in
// flits, the quantity that drives static buffer power (Fig. 6's
// structural argument).  For VC models every non-local input port holds
// the full VC complement (times Domains for Surf); bufferless models
// buffer only at injection (one VC per domain) plus one pipeline
// register per link input port.
func (c Config) BufferFlitsPerRouter() int {
	perPortVC := c.CtrlVCsPerPort*c.CtrlVCDepth + c.DataVCsPerPort*c.DataVCDepth
	switch c.Model {
	case WH:
		return geom.NumDirs * perPortVC
	case Surf:
		return geom.NumDirs * perPortVC * c.Domains
	case BLESS, CHIPPER, RUNAHEAD:
		return geom.NumLinkDirs + c.InjectionVCDepth
	case SB:
		return geom.NumLinkDirs + c.Domains*c.InjectionVCDepth
	default:
		return 0
	}
}

// Validate reports the first problem with the configuration, or nil.
func (c Config) Validate() error {
	switch {
	case c.Width < 2 || c.Height < 2:
		return fmt.Errorf("config: mesh %dx%d too small (need ≥2 per dimension)", c.Width, c.Height)
	case c.Domains < 1:
		return fmt.Errorf("config: Domains = %d, need ≥1", c.Domains)
	case c.BufferlessPipeline < 1 || c.VCPipeline < 1:
		return errors.New("config: router pipelines must be ≥1 cycle")
	case c.LinkDelay < 1:
		return errors.New("config: LinkDelay must be ≥1 cycle")
	case c.CtrlVCsPerPort < 0 || c.DataVCsPerPort < 0:
		return errors.New("config: VC counts must be non-negative")
	case c.CtrlVCsPerPort+c.DataVCsPerPort == 0 && !c.Model.Bufferless():
		return errors.New("config: VC router needs at least one VC per port")
	case c.CtrlVCsPerPort > 0 && c.CtrlVCDepth < 1,
		c.DataVCsPerPort > 0 && c.DataVCDepth < 1:
		return errors.New("config: VC depths must be ≥1 flit")
	case c.InjectionVCDepth < 1:
		return errors.New("config: InjectionVCDepth must be ≥1 flit")
	case c.InjectionQueueCap < 1:
		return errors.New("config: InjectionQueueCap must be ≥1 packet")
	case c.LinkBits < 8 || c.LinkBits%8 != 0:
		return fmt.Errorf("config: LinkBits = %d, need a positive multiple of 8", c.LinkBits)
	case c.ClockHz <= 0:
		return errors.New("config: ClockHz must be positive")
	}
	if c.Model.ConfinedInterference() {
		if c.Width != c.Height {
			return fmt.Errorf("config: %v requires a square mesh (wave border rules close only on N×N), got %dx%d",
				c.Model, c.Width, c.Height)
		}
		if c.Domains > c.Smax() {
			return fmt.Errorf("config: %d domains exceed Smax = %d waves", c.Domains, c.Smax())
		}
	}
	if err := c.validateWaveSets(); err != nil {
		return err
	}
	if err := c.Faults.Validate(c.Width, c.Height); err != nil {
		return fmt.Errorf("config: %w", err)
	}
	return nil
}

func (c Config) validateWaveSets() error {
	if c.WaveSets == nil {
		return nil
	}
	if len(c.WaveSets) != c.Domains {
		return fmt.Errorf("config: %d wave sets for %d domains", len(c.WaveSets), c.Domains)
	}
	smax := c.Smax()
	seen := make(map[int]int)
	for d, set := range c.WaveSets {
		if len(set) == 0 {
			return fmt.Errorf("config: domain %d has an empty wave set", d)
		}
		for _, w := range set {
			if w < 0 || w >= smax {
				return fmt.Errorf("config: wave %d out of range [0,%d)", w, smax)
			}
			if prev, dup := seen[w]; dup {
				return fmt.Errorf("config: wave %d assigned to both domain %d and %d", w, prev, d)
			}
			seen[w] = d
		}
	}
	// Waves left unassigned are legal: they simply carry no traffic
	// (useful for ablations that waste schedule slots on purpose).
	return nil
}
