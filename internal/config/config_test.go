package config

import (
	"strings"
	"testing"

	"surfbless/internal/fault"
)

// TestTable1Defaults asserts every row of the paper's Table 1 that maps
// to a configuration value.
func TestTable1Defaults(t *testing.T) {
	c := Default(WH)
	if c.Width != 8 || c.Height != 8 {
		t.Errorf("topology = %dx%d, want 8x8 mesh", c.Width, c.Height)
	}
	if c.BufferlessPipeline != 2 {
		t.Errorf("bufferless pipeline = %d, want 2-stage", c.BufferlessPipeline)
	}
	if c.VCPipeline != 4 {
		t.Errorf("VC pipeline = %d, want 4-stage", c.VCPipeline)
	}
	if c.CtrlVCsPerPort != 1 || c.DataVCsPerPort != 2 {
		t.Errorf("VCs = %d ctrl + %d data, want 1 ctrl + 2 data",
			c.CtrlVCsPerPort, c.DataVCsPerPort)
	}
	if c.CtrlVCDepth != 1 || c.DataVCDepth != 5 {
		t.Errorf("buffer sizes = %d-flit ctrl, %d-flit data, want 1 and 5",
			c.CtrlVCDepth, c.DataVCDepth)
	}
	if c.LinkBits != 128 {
		t.Errorf("link bandwidth = %d bits/cycle, want 128", c.LinkBits)
	}
	if c.ClockHz != 1e9 {
		t.Errorf("clock = %g Hz, want 1 GHz", c.ClockHz)
	}
}

// TestSmax checks the Section 4.2 example: Smax = 2×3×(8−1) = 42.
func TestSmax(t *testing.T) {
	c := Default(SB)
	if p := c.HopDelay(); p != 3 {
		t.Fatalf("bufferless hop delay = %d, want 3 (2-stage pipeline + 1 link)", p)
	}
	if got := c.Smax(); got != 42 {
		t.Errorf("Smax = %d, want 42", got)
	}
	c = Default(Surf)
	if p := c.HopDelay(); p != 5 {
		t.Fatalf("VC hop delay = %d, want 5 (4-stage pipeline + 1 link)", p)
	}
	if got := c.Smax(); got != 70 {
		t.Errorf("Surf Smax = %d, want 2*5*7 = 70", got)
	}
}

func TestSmaxNonSquare(t *testing.T) {
	c := Default(SB)
	c.Width, c.Height = 4, 6
	if got := c.Smax(); got != 2*3*5 {
		t.Errorf("non-square Smax = %d, want 30 (larger dimension)", got)
	}
}

func TestModelString(t *testing.T) {
	for m, want := range map[Model]string{WH: "WH", BLESS: "BLESS", Surf: "Surf", SB: "SB"} {
		if got := m.String(); got != want {
			t.Errorf("Model string = %q, want %q", got, want)
		}
	}
	if got := Model(9).String(); got != "Model(9)" {
		t.Errorf("unknown model string = %q", got)
	}
}

func TestModelPredicates(t *testing.T) {
	if !BLESS.Bufferless() || !SB.Bufferless() {
		t.Error("BLESS and SB are bufferless")
	}
	if WH.Bufferless() || Surf.Bufferless() {
		t.Error("WH and Surf are not bufferless")
	}
	if !Surf.ConfinedInterference() || !SB.ConfinedInterference() {
		t.Error("Surf and SB confine interference")
	}
	if WH.ConfinedInterference() || BLESS.ConfinedInterference() {
		t.Error("WH and BLESS do not confine interference")
	}
}

func TestValidateDefaults(t *testing.T) {
	for _, m := range []Model{WH, BLESS, Surf, SB} {
		if err := Default(m).Validate(); err != nil {
			t.Errorf("Default(%v) invalid: %v", m, err)
		}
	}
}

func TestValidateAcceptsFaultPlan(t *testing.T) {
	c := Default(SB)
	c.Faults = &fault.Plan{Seed: 1, Events: []fault.Event{
		{Kind: fault.LinkFlap, Node: 27, Dir: 1, At: 100, Repair: 50, Period: 200},
	}}
	if err := c.Validate(); err != nil {
		t.Errorf("valid fault plan rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"tiny mesh", func(c *Config) { c.Width = 1 }, "too small"},
		{"zero domains", func(c *Config) { c.Domains = 0 }, "Domains"},
		{"zero pipeline", func(c *Config) { c.VCPipeline = 0 }, "pipelines"},
		{"zero link delay", func(c *Config) { c.LinkDelay = 0 }, "LinkDelay"},
		{"negative VCs", func(c *Config) { c.DataVCsPerPort = -1 }, "non-negative"},
		{"zero depth", func(c *Config) { c.DataVCDepth = 0 }, "depths"},
		{"zero inj depth", func(c *Config) { c.InjectionVCDepth = 0 }, "InjectionVCDepth"},
		{"zero queue", func(c *Config) { c.InjectionQueueCap = 0 }, "InjectionQueueCap"},
		{"odd link bits", func(c *Config) { c.LinkBits = 100 }, "LinkBits"},
		{"zero clock", func(c *Config) { c.ClockHz = 0 }, "ClockHz"},
		{"too many domains", func(c *Config) { c.Model = SB; c.Domains = 1000 }, "Smax"},
		// Fault plans must be validated against THIS config's mesh.
		{"fault node out of mesh", func(c *Config) {
			c.Faults = &fault.Plan{Events: []fault.Event{{Kind: fault.RouterFreeze, Node: 64}}}
		}, "outside [0,64)"},
		{"fault border link", func(c *Config) {
			c.Faults = &fault.Plan{Events: []fault.Event{{Kind: fault.LinkKill, Node: 0, Dir: 3}}}
		}, "no W link"},
		{"fault negative repair", func(c *Config) {
			c.Faults = &fault.Plan{Events: []fault.Event{{Kind: fault.RouterFreeze, Node: 0, Repair: -1}}}
		}, "negative repair delay"},
		{"fault bad retries", func(c *Config) {
			c.Faults = &fault.Plan{MaxRetries: -2, Events: []fault.Event{{Kind: fault.RouterFreeze, Node: 0}}}
		}, "MaxRetries"},
	}
	for _, tc := range mutations {
		c := Default(WH)
		tc.mut(&c)
		err := c.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted a bad config", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestValidateNoVCsForVCRouter(t *testing.T) {
	c := Default(WH)
	c.CtrlVCsPerPort, c.DataVCsPerPort = 0, 0
	if c.Validate() == nil {
		t.Error("VC router with zero VCs must be rejected")
	}
	c = Default(BLESS)
	c.CtrlVCsPerPort, c.DataVCsPerPort = 0, 0
	if err := c.Validate(); err != nil {
		t.Errorf("bufferless router with zero VCs should be fine: %v", err)
	}
}

func TestValidateWaveSets(t *testing.T) {
	base := Default(SB)
	base.Domains = 2

	good := base
	good.WaveSets = [][]int{{0, 1, 2}, {3, 4, 5}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid wave sets rejected: %v", err)
	}

	wrongCount := base
	wrongCount.WaveSets = [][]int{{0}}
	if wrongCount.Validate() == nil {
		t.Error("wave-set count mismatch accepted")
	}

	empty := base
	empty.WaveSets = [][]int{{0}, {}}
	if empty.Validate() == nil {
		t.Error("empty wave set accepted")
	}

	outOfRange := base
	outOfRange.WaveSets = [][]int{{0}, {42}}
	if outOfRange.Validate() == nil {
		t.Error("wave index ≥ Smax accepted")
	}

	dup := base
	dup.WaveSets = [][]int{{0, 1}, {1}}
	if dup.Validate() == nil {
		t.Error("duplicated wave accepted")
	}
}

func TestBufferFlitsPerRouter(t *testing.T) {
	// WH: 5 ports × (1×1 + 2×5) = 55 flits.
	if got := Default(WH).BufferFlitsPerRouter(); got != 55 {
		t.Errorf("WH buffer flits = %d, want 55", got)
	}
	// Surf with 3 domains: 3×55 = 165.
	c := Default(Surf)
	c.Domains = 3
	if got := c.BufferFlitsPerRouter(); got != 165 {
		t.Errorf("Surf(3) buffer flits = %d, want 165", got)
	}
	// BLESS: 4 pipeline registers + one 4-flit injection VC = 8.
	if got := Default(BLESS).BufferFlitsPerRouter(); got != 8 {
		t.Errorf("BLESS buffer flits = %d, want 8", got)
	}
	// SB with 3 domains: 4 + 3×4 = 16.
	c = Default(SB)
	c.Domains = 3
	if got := c.BufferFlitsPerRouter(); got != 16 {
		t.Errorf("SB(3) buffer flits = %d, want 16", got)
	}
	// The Fig-6 structural ordering: Surf grows 5× faster than SB.
	surf9, sb9 := Default(Surf), Default(SB)
	surf9.Domains, sb9.Domains = 9, 9
	if surf9.BufferFlitsPerRouter() <= 5*sb9.BufferFlitsPerRouter() {
		t.Error("Surf buffering must dominate SB buffering at 9 domains")
	}
}

func TestFlitBytes(t *testing.T) {
	if got := Default(WH).FlitBytes(); got != 16 {
		t.Errorf("FlitBytes = %d, want 16 (128-bit link)", got)
	}
}
