package config

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestModelJSONRoundTrip(t *testing.T) {
	for _, m := range []Model{WH, BLESS, Surf, SB, CHIPPER} {
		raw, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		var back Model
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if back != m {
			t.Errorf("round trip %v → %s → %v", m, raw, back)
		}
	}
	var m Model
	if err := json.Unmarshal([]byte(`"NOPE"`), &m); err == nil {
		t.Error("unknown model name accepted")
	}
	if _, err := json.Marshal(Model(99)); err == nil {
		t.Error("unknown model value encoded")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cfg.json")
	cfg := Default(SB)
	cfg.Domains = 3
	cfg.WaveSets = [][]int{{0, 1}, {2, 3}, {4, 5}}
	if err := cfg.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Model != SB || got.Domains != 3 || len(got.WaveSets) != 3 {
		t.Errorf("round trip lost fields: %+v", got)
	}
	if got.Width != 8 || got.LinkBits != 128 {
		t.Errorf("defaults lost: %+v", got)
	}
}

// A minimal file keeps the decoded model's Table-1 defaults.
func TestLoadMinimalFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "min.json")
	if err := os.WriteFile(path, []byte(`{"Model":"Surf","Domains":4}`), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Model != Surf || cfg.Domains != 4 {
		t.Errorf("explicit fields wrong: %+v", cfg)
	}
	if cfg.VCPipeline != 4 || cfg.DataVCDepth != 5 || cfg.ClockHz != 1e9 {
		t.Errorf("defaults not applied: %+v", cfg)
	}
}

func TestLoadRejects(t *testing.T) {
	dir := t.TempDir()
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"Model":"SB","Domains":0}`), 0o644)
	if _, err := Load(bad); err == nil {
		t.Error("invalid config accepted")
	}
	garbage := filepath.Join(dir, "garbage.json")
	os.WriteFile(garbage, []byte(`{{{`), 0o644)
	if _, err := Load(garbage); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestSaveRejectsInvalid(t *testing.T) {
	cfg := Default(WH)
	cfg.Domains = 0
	if err := cfg.Save(filepath.Join(t.TempDir(), "x.json")); err == nil {
		t.Error("invalid config saved")
	}
}
