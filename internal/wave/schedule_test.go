package wave

import (
	"testing"
	"testing/quick"

	"surfbless/internal/geom"
)

func mesh8() geom.Mesh { return geom.NewMesh(8, 8) }

func TestNewPanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		f    func()
	}{
		{"non-square", func() { New(geom.NewMesh(4, 8), 3) }},
		{"too small", func() { New(geom.NewMesh(1, 1), 3) }},
		{"zero hop delay", func() { New(mesh8(), 0) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: New should panic", tc.name)
				}
			}()
			tc.f()
		}()
	}
}

// The Section 4.2 example: 8×8 mesh, P = 3 ⇒ Smax = 42.
func TestSmaxPaperExample(t *testing.T) {
	s := New(mesh8(), 3)
	if s.Smax() != 42 {
		t.Errorf("Smax = %d, want 42", s.Smax())
	}
	if s.HopDelay() != 3 {
		t.Errorf("HopDelay = %d, want 3", s.HopDelay())
	}
}

// Initial values must match Eq. (1)–(3) literally.
func TestInitialValueEquations(t *testing.T) {
	const p, n = 3, 8
	s := New(mesh8(), p)
	smax := 2 * p * (n - 1)
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			c := geom.Coord{X: x, Y: y}
			wantSE := ((smax*p-p*(x+y))%smax + smax) % smax
			wantW := ((smax*p+p*(x-y))%smax + smax) % smax
			wantN := ((smax*p-p*(x-y))%smax + smax) % smax
			if got := s.Index(SE, c, 0); got != wantSE {
				t.Errorf("InitialSE(%v) = %d, want %d", c, got, wantSE)
			}
			if got := s.Index(WSub, c, 0); got != wantW {
				t.Errorf("InitialW(%v) = %d, want %d", c, got, wantW)
			}
			if got := s.Index(NSub, c, 0); got != wantN {
				t.Errorf("InitialN(%v) = %d, want %d", c, got, wantN)
			}
		}
	}
}

// Counters count cyclically 0…Smax−1, advancing by one per cycle.
func TestCounterAdvance(t *testing.T) {
	s := New(mesh8(), 3)
	c := geom.Coord{X: 2, Y: 5}
	for _, sub := range []Sub{SE, NSub, WSub} {
		v0 := s.Index(sub, c, 0)
		if got := s.Index(sub, c, 1); got != (v0+1)%42 {
			t.Errorf("%v counter at t=1 = %d, want %d", sub, got, (v0+1)%42)
		}
		if got := s.Index(sub, c, 42); got != v0 {
			t.Errorf("%v counter must repeat after Smax cycles", sub)
		}
		if got := s.Index(sub, c, -1); got != (v0+41)%42 {
			t.Errorf("%v counter at t=-1 = %d, want %d", sub, got, (v0+41)%42)
		}
	}
}

// Property (1): a flit following any sub-wave keeps its wave index.
func TestContinuityAllCycles(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5} {
		for _, n := range []int{2, 4, 8} {
			s := New(geom.NewMesh(n, n), p)
			for tm := int64(0); tm < int64(s.Smax()); tm++ {
				if err := s.CheckContinuity(tm); err != nil {
					t.Fatalf("N=%d P=%d: %v", n, p, err)
				}
			}
		}
	}
}

// Property (2): per-wave input/output port balance at every router and
// cycle — the deflection guarantee of Section 4.1.
func TestBalanceAllRoutersAllCycles(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5} {
		for _, n := range []int{2, 4, 8} {
			s := New(geom.NewMesh(n, n), p)
			m := s.Mesh()
			for tm := int64(0); tm < int64(s.Smax()); tm++ {
				for id := 0; id < m.Nodes(); id++ {
					if err := s.CheckBalance(m.CoordOf(id), tm); err != nil {
						t.Fatalf("N=%d P=%d: %v", n, p, err)
					}
				}
			}
		}
	}
}

// Balance also holds at arbitrary (possibly huge/negative) cycles.
func TestBalanceQuick(t *testing.T) {
	s := New(mesh8(), 3)
	f := func(x, y uint8, tm int64) bool {
		c := geom.Coord{X: int(x % 8), Y: int(y % 8)}
		return s.CheckBalance(c, tm) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Rule-1/Rule-2 border coincidences: the N scheduler equals the SE
// scheduler on the south and north borders, the W scheduler on the east
// and west borders, and all three coincide at the corners.
func TestBorderCoincidence(t *testing.T) {
	s := New(mesh8(), 3)
	for tm := int64(0); tm < 42; tm++ {
		for i := 0; i < 8; i++ {
			south := geom.Coord{X: i, Y: 7}
			if s.Index(NSub, south, tm) != s.Index(SE, south, tm) {
				t.Fatalf("south border %v cycle %d: N %d != SE %d",
					south, tm, s.Index(NSub, south, tm), s.Index(SE, south, tm))
			}
			north := geom.Coord{X: i, Y: 0}
			if s.Index(NSub, north, tm) != s.Index(SE, north, tm) {
				t.Fatalf("north border %v cycle %d: N != SE", north, tm)
			}
			east := geom.Coord{X: 7, Y: i}
			if s.Index(WSub, east, tm) != s.Index(SE, east, tm) {
				t.Fatalf("east border %v cycle %d: W != SE", east, tm)
			}
			west := geom.Coord{X: 0, Y: i}
			if s.Index(WSub, west, tm) != s.Index(SE, west, tm) {
				t.Fatalf("west border %v cycle %d: W != SE", west, tm)
			}
		}
	}
}

// Interior routers must NOT have coincident schedulers in general —
// otherwise the three schedulers would be redundant.
func TestInteriorSchedulersDiffer(t *testing.T) {
	s := New(mesh8(), 3)
	c := geom.Coord{X: 3, Y: 4}
	if s.Index(NSub, c, 0) == s.Index(SE, c, 0) && s.Index(WSub, c, 0) == s.Index(SE, c, 0) {
		t.Error("interior router has all schedulers coincident at t=0; schedule degenerate")
	}
}

// The offsets proved in DESIGN.md: s_N − s_SE = 2·P·y and
// s_W − s_SE = 2·P·x (mod Smax).  These drive the Fig-7 domain
// asymmetry, so pin them down.
func TestSchedulerOffsets(t *testing.T) {
	const p = 3
	s := New(mesh8(), p)
	smax := s.Smax()
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			c := geom.Coord{X: x, Y: y}
			se := s.Index(SE, c, 17)
			if got := s.Index(NSub, c, 17); got != (se+2*p*y)%smax {
				t.Fatalf("s_N offset at %v: got %d, want SE+%d", c, got, 2*p*y)
			}
			if got := s.Index(WSub, c, 17); got != (se+2*p*x)%smax {
				t.Fatalf("s_W offset at %v: got %d, want SE+%d", c, got, 2*p*x)
			}
		}
	}
}

func TestInputOutputSubMapping(t *testing.T) {
	// Fig. 4(b): SE scheduler pairs {N,W,Injection} inputs with
	// {S,E,Ejection} outputs; N scheduler {S}→{N}; W scheduler {E}→{W}.
	for in, want := range map[geom.Dir]Sub{
		geom.North: SE, geom.West: SE, geom.Local: SE,
		geom.South: NSub, geom.East: WSub,
	} {
		if got := InputSub(in); got != want {
			t.Errorf("InputSub(%v) = %v, want %v", in, got, want)
		}
	}
	for out, want := range map[geom.Dir]Sub{
		geom.South: SE, geom.East: SE, geom.Local: SE,
		geom.North: NSub, geom.West: WSub,
	} {
		if got := OutputSub(out); got != want {
			t.Errorf("OutputSub(%v) = %v, want %v", out, got, want)
		}
	}
}

func TestSubString(t *testing.T) {
	if SE.String() != "SE" || NSub.String() != "N" || WSub.String() != "W" {
		t.Error("Sub names wrong")
	}
	if Sub(9).String() != "Sub(9)" {
		t.Error("unknown Sub string wrong")
	}
}

func TestIndexPanicsOnBadSub(t *testing.T) {
	s := New(mesh8(), 3)
	defer func() {
		if recover() == nil {
			t.Error("Index with invalid sub must panic")
		}
	}()
	s.Index(Sub(9), geom.Coord{}, 0)
}

// No two waves overlap: at one router and cycle, distinct port groups
// may map to the same wave only via the border coincidences, and the
// ownership of each port is a single wave — i.e. the schedule is a
// function.  Here we verify the complementary claim from §4.1 ("there
// is no overlapping between any two waves"): summed over the whole
// mesh, each wave owns the same total number of input ports.
func TestWaveFairness(t *testing.T) {
	s := New(mesh8(), 3)
	m := s.Mesh()
	counts := make([]int, s.Smax())
	total := 0
	for tm := int64(0); tm < int64(s.Smax()); tm++ {
		for id := 0; id < m.Nodes(); id++ {
			c := m.CoordOf(id)
			for _, d := range []geom.Dir{geom.North, geom.East, geom.South, geom.West} {
				if m.HasNeighbor(c, d) {
					counts[s.InputWave(c, d, tm)]++
					total++
				}
			}
		}
	}
	want := total / s.Smax()
	for w, n := range counts {
		if n != want {
			t.Fatalf("wave %d owns %d input-port-cycles per period, want %d (unfair schedule)", w, n, want)
		}
	}
}
