package wave

import (
	"fmt"
	"sort"
)

// Decoder is the per-router decoder table of Fig. 4(b): it maps wave
// indices to interference domains.  Every router shares one immutable
// decoder (the hardware replicates the same table in each router).
//
// Besides the plain wave→domain map, the decoder knows the run
// structure needed for multi-flit transfers (§5.2): a packet of L flits
// occupies L consecutive wave slots, so its head may depart only at the
// beginning of an aligned window of L same-domain waves ("packets only
// choose the output port assigned at the begin of the wave sets").
type Decoder struct {
	smax     int
	domains  int
	domainOf []int // wave → domain, -1 when the wave is unowned
	runStart []int // first wave of the maximal same-domain run containing w (no wrap)
	runEnd   []int // one past the last wave of that run (no wrap)
}

// RoundRobin builds the default assignment used in §5.1: domains are
// "equally and evenly assigned" to the waves, wave w belonging to
// domain w mod domains.
func RoundRobin(smax, domains int) *Decoder {
	if smax < 1 || domains < 1 {
		panic(fmt.Sprintf("wave: RoundRobin(%d, %d) invalid", smax, domains))
	}
	d := &Decoder{smax: smax, domains: domains, domainOf: make([]int, smax)}
	for w := 0; w < smax; w++ {
		d.domainOf[w] = w % domains
	}
	d.computeRuns()
	return d
}

// FromSets builds the explicit wave-set assignment of §5.2: sets[i] is
// the list of wave indices owned by domain i.  Waves not mentioned in
// any set are unowned and carry no traffic.  Sets must be disjoint and
// within [0, smax).
func FromSets(smax int, sets [][]int) (*Decoder, error) {
	if smax < 1 {
		return nil, fmt.Errorf("wave: smax %d invalid", smax)
	}
	if len(sets) == 0 {
		return nil, fmt.Errorf("wave: no wave sets given")
	}
	d := &Decoder{smax: smax, domains: len(sets), domainOf: make([]int, smax)}
	for w := range d.domainOf {
		d.domainOf[w] = -1
	}
	for dom, set := range sets {
		if len(set) == 0 {
			return nil, fmt.Errorf("wave: domain %d has an empty wave set", dom)
		}
		for _, w := range set {
			if w < 0 || w >= smax {
				return nil, fmt.Errorf("wave: wave %d out of range [0,%d)", w, smax)
			}
			if d.domainOf[w] != -1 {
				return nil, fmt.Errorf("wave: wave %d assigned to both domain %d and %d", w, d.domainOf[w], dom)
			}
			d.domainOf[w] = dom
		}
	}
	d.computeRuns()
	return d, nil
}

// computeRuns derives, for each wave, the maximal run of consecutive
// same-domain waves containing it.  Runs do not wrap around Smax: a
// window of L slots must fit inside [0, Smax) so that the L flits of a
// worm traverse strictly consecutive cycles of one schedule period.
func (d *Decoder) computeRuns() {
	d.runStart = make([]int, d.smax)
	d.runEnd = make([]int, d.smax)
	w := 0
	for w < d.smax {
		end := w + 1
		for end < d.smax && d.domainOf[end] == d.domainOf[w] {
			end++
		}
		for i := w; i < end; i++ {
			d.runStart[i] = w
			d.runEnd[i] = end
		}
		w = end
	}
}

// Smax returns the schedule length the decoder was built for.
func (d *Decoder) Smax() int { return d.smax }

// Domains returns the number of domains.
func (d *Decoder) Domains() int { return d.domains }

// Domain returns the domain owning wave w, or -1 when w is unowned.
func (d *Decoder) Domain(w int) int {
	if w < 0 || w >= d.smax {
		//nocvet:alloc panic-path formatting on a falsified invariant; runs at most once, while dying
		panic(fmt.Sprintf("wave: Domain(%d) out of range [0,%d)", w, d.smax))
	}
	return d.domainOf[w]
}

// CanStart reports whether the head of a packet of `size` flits may
// depart on wave w: the wave must be owned, and waves w … w+size−1 must
// form an aligned window inside one same-domain run.  Alignment (the
// window offset from the run start is a multiple of size) ensures that
// consecutive worms never overlap and every router sees whole windows.
func (d *Decoder) CanStart(w, size int) bool {
	if w < 0 || w >= d.smax {
		//nocvet:alloc panic-path formatting on a falsified invariant; runs at most once, while dying
		panic(fmt.Sprintf("wave: CanStart(%d) out of range [0,%d)", w, d.smax))
	}
	if size < 1 {
		//nocvet:alloc panic-path formatting on a falsified invariant; runs at most once, while dying
		panic(fmt.Sprintf("wave: CanStart with size %d", size))
	}
	if d.domainOf[w] < 0 {
		return false
	}
	if size == 1 {
		return true
	}
	return (w-d.runStart[w])%size == 0 && w+size <= d.runEnd[w]
}

// Owned returns the waves owned by domain dom, in increasing order.
func (d *Decoder) Owned(dom int) []int {
	var ws []int
	for w, o := range d.domainOf {
		if o == dom {
			ws = append(ws, w)
		}
	}
	sort.Ints(ws)
	return ws
}

// StartableSlots returns how many waves of one period allow a head of
// `size` flits from domain dom to depart.  It quantifies the §5.1.3
// injection-opportunity asymmetry between domains.
func (d *Decoder) StartableSlots(dom, size int) int {
	n := 0
	for w := 0; w < d.smax; w++ {
		if d.domainOf[w] == dom && d.CanStart(w, size) {
			n++
		}
	}
	return n
}
