package wave

import (
	"strings"
	"testing"

	"surfbless/internal/geom"
)

// fig3Schedule is the schedule the paper's Figure 3 depicts: a 4×4
// mesh with hop delay 1, whose pattern repeats after 6 time slots.
func fig3Schedule() *Schedule { return New(geom.NewMesh(4, 4), 1) }

func TestRenderPeriodRepeats(t *testing.T) {
	s := fig3Schedule()
	if s.Smax() != 6 {
		t.Fatalf("Figure-3 schedule has Smax %d, want 6", s.Smax())
	}
	for w := 0; w < s.Smax(); w++ {
		for tm := int64(0); tm < 6; tm++ {
			a := RenderWave(s, w, tm)
			b := RenderWave(s, w, tm+6)
			// Frames carry the cycle number in the header; compare bodies.
			if body(a) != body(b) {
				t.Fatalf("wave %d frame at T=%d differs after one period:\n%s\nvs\n%s", w, tm, a, b)
			}
		}
	}
}

func body(frame string) string {
	i := strings.IndexByte(frame, '\n')
	return frame[i+1:]
}

func TestRenderGridShape(t *testing.T) {
	s := fig3Schedule()
	frame := RenderWave(s, 0, 0)
	lines := strings.Split(strings.TrimRight(frame, "\n"), "\n")
	if len(lines) != 1+7 { // header + (2·4−1) rows
		t.Fatalf("frame has %d lines:\n%s", len(lines), frame)
	}
	for i, l := range lines[1:] {
		if len(l) > 7 {
			t.Errorf("row %d has width %d, want ≤ 7 (trailing spaces trimmed)", i, len(l))
		}
	}
	// 16 routers drawn.
	if got := strings.Count(frame, "o"); got != 16 {
		t.Errorf("%d routers drawn, want 16", got)
	}
}

func TestRenderWavePanicsOutOfRange(t *testing.T) {
	s := fig3Schedule()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	RenderWave(s, 6, 0)
}

// Every directed link is owned by exactly one wave per cycle, so the
// per-wave owned-link lists partition the 2·2·N·(N−1) = 48 links.
func TestOwnedLinksPartition(t *testing.T) {
	s := fig3Schedule()
	for tm := int64(0); tm < 6; tm++ {
		seen := map[string]int{}
		total := 0
		for w := 0; w < s.Smax(); w++ {
			links := s.OwnedLinks(w, tm)
			total += len(links)
			for _, l := range links {
				if prev, dup := seen[l]; dup {
					t.Fatalf("link %s owned by waves %d and %d at T=%d", l, prev, w, tm)
				}
				seen[l] = w
			}
		}
		if total != 48 {
			t.Fatalf("T=%d: %d directed links owned, want 48", tm, total)
		}
	}
}

// The wave moves: consecutive frames differ, and the wave never
// vanishes (it always owns links — the reverberation has no dead slot).
func TestWaveMovesAndPersists(t *testing.T) {
	s := fig3Schedule()
	for tm := int64(0); tm < 6; tm++ {
		links := s.OwnedLinks(0, tm)
		if len(links) == 0 {
			t.Fatalf("wave 0 owns nothing at T=%d", tm)
		}
		if body(RenderWave(s, 0, tm)) == body(RenderWave(s, 0, tm+1)) {
			t.Fatalf("wave 0 frozen between T=%d and T=%d", tm, tm+1)
		}
	}
}

// The rendered glyph census matches the sub-wave structure: the SE
// sub-wave contributes '>' and 'v' marks, the returning WN and WW
// sub-waves '^' and '<'.
func TestRenderGlyphs(t *testing.T) {
	s := fig3Schedule()
	for tm := int64(0); tm < 6; tm++ {
		frame := body(RenderWave(s, 0, tm)) // drop the header ("wave" has a 'v')
		se := strings.Count(frame, ">") + strings.Count(frame, "v")
		back := strings.Count(frame, "<") + strings.Count(frame, "^")
		cross := strings.Count(frame, "x")
		if se == 0 {
			t.Errorf("T=%d: no south-east sub-wave links rendered", tm)
		}
		if back == 0 {
			t.Errorf("T=%d: no returning sub-wave links rendered", tm)
		}
		want := len(s.OwnedLinks(0, tm))
		if got := se + back + 2*cross; got != want {
			t.Errorf("T=%d: %d link glyphs (x counts twice), want %d", tm, got, want)
		}
	}
}
