package wave

import (
	"testing"
	"testing/quick"

	"surfbless/internal/geom"
)

func TestRoundRobinAssignment(t *testing.T) {
	d := RoundRobin(42, 2)
	for w := 0; w < 42; w++ {
		if got := d.Domain(w); got != w%2 {
			t.Fatalf("Domain(%d) = %d, want %d", w, got, w%2)
		}
	}
	if d.Domains() != 2 || d.Smax() != 42 {
		t.Error("Domains/Smax accessors wrong")
	}
}

// §5.1: "the domains are equally and evenly assigned to these waves".
// With round robin, per-domain wave counts differ by at most one.
func TestRoundRobinEven(t *testing.T) {
	for domains := 1; domains <= 9; domains++ {
		d := RoundRobin(42, domains)
		min, max := 42, 0
		for dom := 0; dom < domains; dom++ {
			n := len(d.Owned(dom))
			if n < min {
				min = n
			}
			if n > max {
				max = n
			}
		}
		if max-min > 1 {
			t.Errorf("domains=%d: wave counts range [%d,%d], want spread ≤1", domains, min, max)
		}
	}
}

func TestRoundRobinPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("RoundRobin(0, 1) must panic")
		}
	}()
	RoundRobin(0, 1)
}

// The §5.2 assignment: two data virtual networks on three 5-wave sets
// each, control on the rest of the 42 waves.
func paperSets() [][]int {
	span := func(a, b int) []int {
		var s []int
		for w := a; w <= b; w++ {
			s = append(s, w)
		}
		return s
	}
	concat := func(xs ...[]int) []int {
		var s []int
		for _, x := range xs {
			s = append(s, x...)
		}
		return s
	}
	data0 := concat(span(0, 4), span(15, 19), span(30, 34))
	data1 := concat(span(7, 11), span(22, 26), span(37, 41))
	owned := make(map[int]bool)
	for _, w := range append(append([]int{}, data0...), data1...) {
		owned[w] = true
	}
	var ctrl []int
	for w := 0; w < 42; w++ {
		if !owned[w] {
			ctrl = append(ctrl, w)
		}
	}
	return [][]int{data0, data1, ctrl}
}

func TestFromSetsPaperAssignment(t *testing.T) {
	d, err := FromSets(42, paperSets())
	if err != nil {
		t.Fatalf("paper wave sets rejected: %v", err)
	}
	if d.Domains() != 3 {
		t.Fatalf("Domains = %d, want 3", d.Domains())
	}
	// Spot-check ownership.
	for _, w := range []int{0, 4, 15, 34} {
		if d.Domain(w) != 0 {
			t.Errorf("wave %d should belong to data VN 0", w)
		}
	}
	for _, w := range []int{7, 26, 41} {
		if d.Domain(w) != 1 {
			t.Errorf("wave %d should belong to data VN 1", w)
		}
	}
	for _, w := range []int{5, 6, 12, 20, 35, 36} {
		if d.Domain(w) != 2 {
			t.Errorf("wave %d should belong to the control VN", w)
		}
	}
	// 5-flit heads may start exactly at the set beginnings.
	for _, w := range []int{0, 15, 30, 7, 22, 37} {
		if !d.CanStart(w, 5) {
			t.Errorf("wave %d must admit a 5-flit head (set start)", w)
		}
	}
	// …and nowhere inside the sets.
	for _, w := range []int{1, 4, 16, 33, 8, 26} {
		if d.CanStart(w, 5) {
			t.Errorf("wave %d must not admit a 5-flit head (mid-set)", w)
		}
	}
	// Control packets (1 flit) start on any control wave.
	for _, w := range []int{5, 6, 12, 13, 14, 20, 21} {
		if !d.CanStart(w, 1) {
			t.Errorf("control wave %d must admit a 1-flit head", w)
		}
	}
}

func TestFromSetsErrors(t *testing.T) {
	if _, err := FromSets(0, [][]int{{0}}); err == nil {
		t.Error("smax 0 accepted")
	}
	if _, err := FromSets(10, nil); err == nil {
		t.Error("no sets accepted")
	}
	if _, err := FromSets(10, [][]int{{0}, {}}); err == nil {
		t.Error("empty set accepted")
	}
	if _, err := FromSets(10, [][]int{{0}, {10}}); err == nil {
		t.Error("out-of-range wave accepted")
	}
	if _, err := FromSets(10, [][]int{{0, 1}, {1}}); err == nil {
		t.Error("duplicate wave accepted")
	}
}

func TestUnownedWaves(t *testing.T) {
	d, err := FromSets(10, [][]int{{0, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if d.Domain(5) != -1 {
		t.Error("unowned wave must map to -1")
	}
	if d.CanStart(5, 1) {
		t.Error("no head may start on an unowned wave")
	}
}

func TestCanStartAlignment(t *testing.T) {
	// One run of 10 same-domain waves: 2-flit heads start at even
	// offsets within the run and must leave room for the worm.
	d, err := FromSets(12, [][]int{{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}})
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 10; w++ {
		want := w%2 == 0 && w+2 <= 10
		if got := d.CanStart(w, 2); got != want {
			t.Errorf("CanStart(%d, 2) = %v, want %v", w, got, want)
		}
	}
	// 3-flit heads: starts 0,3,6 fit; 9 does not (run ends at 10).
	for w := 0; w < 10; w++ {
		want := w%3 == 0 && w+3 <= 10
		if got := d.CanStart(w, 3); got != want {
			t.Errorf("CanStart(%d, 3) = %v, want %v", w, got, want)
		}
	}
}

func TestCanStartPanics(t *testing.T) {
	d := RoundRobin(10, 2)
	for _, f := range []func(){
		func() { d.CanStart(-1, 1) },
		func() { d.CanStart(10, 1) },
		func() { d.CanStart(0, 0) },
		func() { d.Domain(10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestStartableSlots(t *testing.T) {
	d, err := FromSets(42, paperSets())
	if err != nil {
		t.Fatal(err)
	}
	if got := d.StartableSlots(0, 5); got != 3 {
		t.Errorf("data VN 0 has %d startable 5-flit slots, want 3", got)
	}
	if got := d.StartableSlots(1, 5); got != 3 {
		t.Errorf("data VN 1 has %d startable 5-flit slots, want 3", got)
	}
	if got := d.StartableSlots(2, 1); got != 12 {
		t.Errorf("control VN has %d startable slots, want 12 (42−30 owned waves)", got)
	}
}

// CanStart(w, 1) ⇔ wave owned, for any decoder (property).
func TestCanStartSizeOneQuick(t *testing.T) {
	d := RoundRobin(42, 5)
	f := func(w uint8) bool {
		wi := int(w) % 42
		return d.CanStart(wi, 1) == (d.Domain(wi) >= 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The §5.1.3 ejection-alignment analysis: with round-robin decoding and
// P = 3, a packet arriving on the N or W sub-wave can eject (same
// domain as the SE scheduler) at every router and cycle iff the domain
// count divides 2·P = 6.  This is exactly why D_2, D_3 and D_6 overlap
// with the best curves in Fig. 7(a) while D_4, D_5, D_7, D_8, D_9 pay a
// deflection penalty.
func TestEjectionAlignmentByDomainCount(t *testing.T) {
	s := New(geom.NewMesh(8, 8), 3)
	for domains := 1; domains <= 9; domains++ {
		dec := RoundRobin(s.Smax(), domains)
		aligned := true
		for y := 0; y < 8 && aligned; y++ {
			for x := 0; x < 8 && aligned; x++ {
				c := geom.Coord{X: x, Y: y}
				for tm := int64(0); tm < int64(s.Smax()); tm++ {
					se := dec.Domain(s.Index(SE, c, tm))
					if dec.Domain(s.Index(NSub, c, tm)) != se ||
						dec.Domain(s.Index(WSub, c, tm)) != se {
						aligned = false
						break
					}
				}
			}
		}
		wantAligned := 6%domains == 0 // D ∈ {1, 2, 3, 6}
		if aligned != wantAligned {
			t.Errorf("domains=%d: ejection-aligned=%v, want %v", domains, aligned, wantAligned)
		}
	}
}
