package wave

import (
	"testing"

	"surfbless/internal/geom"
)

// Eq. (1)–(3) initial counter values as literal numbers, hand-derived
// from the paper's formulas for several mesh sizes and hop delays —
// independent of the modular arithmetic New uses, so a sign or modulus
// slip in the implementation cannot cancel out of the expectation.
// Since Smax·P ≡ 0 (mod Smax) the closed forms reduce to
//
//	InitialSE = (−P·(x+y)) mod Smax
//	InitialW  = (+P·(x−y)) mod Smax
//	InitialN  = (−P·(x−y)) mod Smax
//
// which is what the rows below evaluate.
func TestInitialValuesAcrossSizes(t *testing.T) {
	type row struct {
		n, p       int
		x, y       int
		se, nw, ww int // expected initials: SE, N, W
	}
	rows := []row{
		// 2×2, P=1 ⇒ Smax=2
		{2, 1, 0, 0, 0, 0, 0},
		{2, 1, 1, 0, 1, 1, 1},
		{2, 1, 0, 1, 1, 1, 1},
		{2, 1, 1, 1, 0, 0, 0},
		// 2×2, P=2 ⇒ Smax=4
		{2, 2, 0, 0, 0, 0, 0},
		{2, 2, 1, 0, 2, 2, 2},
		{2, 2, 0, 1, 2, 2, 2},
		{2, 2, 1, 1, 0, 0, 0},
		// 4×4, P=1 ⇒ Smax=6
		{4, 1, 0, 0, 0, 0, 0},
		{4, 1, 3, 0, 3, 3, 3},
		{4, 1, 0, 3, 3, 3, 3},
		{4, 1, 3, 3, 0, 0, 0},
		{4, 1, 1, 2, 3, 1, 5},
		{4, 1, 2, 1, 3, 5, 1},
		// 4×4, P=2 ⇒ Smax=12
		{4, 2, 0, 0, 0, 0, 0},
		{4, 2, 3, 0, 6, 6, 6},
		{4, 2, 1, 2, 6, 2, 10},
		{4, 2, 2, 3, 2, 2, 10},
		{4, 2, 3, 3, 0, 0, 0},
		// 8×8, P=1 ⇒ Smax=14
		{8, 1, 0, 0, 0, 0, 0},
		{8, 1, 7, 0, 7, 7, 7},
		{8, 1, 0, 7, 7, 7, 7},
		{8, 1, 7, 7, 0, 0, 0},
		{8, 1, 3, 5, 6, 2, 12},
		// 8×8, P=2 ⇒ Smax=28
		{8, 2, 0, 0, 0, 0, 0},
		{8, 2, 7, 0, 14, 14, 14},
		{8, 2, 3, 5, 12, 4, 24},
		{8, 2, 7, 7, 0, 0, 0},
		// The paper's 8×8, P=3 example ⇒ Smax=42
		{8, 3, 1, 1, 36, 0, 0},
		{8, 3, 7, 0, 21, 21, 21},
	}
	schedules := map[[2]int]*Schedule{}
	for _, r := range rows {
		key := [2]int{r.n, r.p}
		s, ok := schedules[key]
		if !ok {
			s = New(geom.NewMesh(r.n, r.n), r.p)
			schedules[key] = s
		}
		c := geom.Coord{X: r.x, Y: r.y}
		if got := s.Index(SE, c, 0); got != r.se {
			t.Errorf("N=%d P=%d %v: InitialSE = %d, want %d", r.n, r.p, c, got, r.se)
		}
		if got := s.Index(NSub, c, 0); got != r.nw {
			t.Errorf("N=%d P=%d %v: InitialN = %d, want %d", r.n, r.p, c, got, r.nw)
		}
		if got := s.Index(WSub, c, 0); got != r.ww {
			t.Errorf("N=%d P=%d %v: InitialW = %d, want %d", r.n, r.p, c, got, r.ww)
		}
	}
}

// FuzzWaveBalance throws arbitrary (mesh size, hop delay, router,
// cycle) combinations at the schedule and asserts the two load-bearing
// properties: per-wave input/output port balance at that router and
// cycle (the deflection guarantee), and output→input wave continuity
// across every link at that cycle (the "surfing" guarantee).  The unit
// tests sweep these exhaustively for a fixed size list; the fuzzer
// covers the sizes and the far reaches of the cycle counter.
func FuzzWaveBalance(f *testing.F) {
	f.Add(uint8(8), uint8(3), uint8(2), uint8(5), int64(0))
	f.Add(uint8(2), uint8(1), uint8(0), uint8(0), int64(-1))
	f.Add(uint8(5), uint8(4), uint8(4), uint8(1), int64(1<<40))
	f.Fuzz(func(t *testing.T, n, p, x, y uint8, cycle int64) {
		size := 2 + int(n)%7  // 2..8
		delay := 1 + int(p)%5 // 1..5
		s := New(geom.NewMesh(size, size), delay)
		c := geom.Coord{X: int(x) % size, Y: int(y) % size}
		if err := s.CheckBalance(c, cycle); err != nil {
			t.Fatalf("N=%d P=%d: %v", size, delay, err)
		}
		if err := s.CheckContinuity(cycle); err != nil {
			t.Fatalf("N=%d P=%d: %v", size, delay, err)
		}
	})
}
