package wave

import "fmt"

// Analysis utilities behind the wave-set placement finding (DESIGN.md
// §6): where can a packet travelling on the north (or west) sub-wave
// hop back onto the south-east sub-wave?
//
// At row y the SE scheduler shows s_N − 2·P·y when the N scheduler
// shows s_N (and symmetrically with x for the W scheduler), so a worm
// of `size` flits riding a window starting at wave s can eject or turn
// at row y exactly when (s − 2·P·y) mod Smax is again a startable
// window of its domain.

// TurnRows returns, for a worm of `size` flits of domain dom riding the
// window starting at wave s, the rows y ∈ [0, rows) at which it can
// transfer from the north sub-wave onto the south-east sub-wave (the
// same set applies to columns for the west sub-wave, by symmetry).
func TurnRows(dec *Decoder, hopDelay, rows, dom, s, size int) []int {
	if !dec.CanStart(s, size) || dec.Domain(s) != dom {
		panic(fmt.Sprintf("wave: TurnRows(s=%d) is not a startable window of domain %d", s, dom))
	}
	var ys []int
	for y := 0; y < rows; y++ {
		w := mod(s-2*hopDelay*y, dec.Smax())
		if dec.Domain(w) == dom && dec.CanStart(w, size) {
			ys = append(ys, y)
		}
	}
	return ys
}

// WorstDetour returns, over all startable windows of the domain, the
// maximum number of extra rows a north-bound worm must overshoot past
// its destination before it reaches a turn row (rows beyond the border
// mean "bounce off row 0", counted to the border).  It is the
// analytical form of the deflection detour the placement ablation
// measures.
func WorstDetour(dec *Decoder, hopDelay, rows, dom, size int) int {
	worst := 0
	for s := 0; s < dec.Smax(); s++ {
		if dec.Domain(s) != dom || !dec.CanStart(s, size) {
			continue
		}
		turns := TurnRows(dec, hopDelay, rows, dom, s, size)
		turnSet := make(map[int]bool, len(turns))
		for _, y := range turns {
			turnSet[y] = true
		}
		// A worm destined for row y travelling north keeps moving north
		// (decreasing y) until it hits a turn row; row 0 always turns
		// (the border rule makes all schedulers coincide there).
		for y := rows - 1; y >= 0; y-- {
			detour := 0
			for t := y; t >= 0; t-- {
				if turnSet[t] || t == 0 {
					detour = y - t
					break
				}
			}
			if detour > worst {
				worst = detour
			}
		}
	}
	return worst
}

// DomainShare returns the fraction of waves owned by the domain — the
// domain's share of every link's bandwidth under the schedule.
func DomainShare(dec *Decoder, dom int) float64 {
	return float64(len(dec.Owned(dom))) / float64(dec.Smax())
}
