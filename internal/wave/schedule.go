// Package wave implements the paper's core contribution: the repetitive
// space/time wave schedule of Section 4 that assigns NoC resources
// (ports, crossbar slots, links) to waves, plus the decoder that maps
// waves to interference domains.
//
// Each router holds three conceptual schedulers — south-east, north and
// west — realized here as a counter per sub-wave that cyclically counts
// 0 … Smax−1 with the per-router initial values of Eq. (1)–(3):
//
//	InitialSE = (Smax·P − P·(x+y)) mod Smax
//	InitialW  = (Smax·P + P·(x−y)) mod Smax
//	InitialN  = (Smax·P − P·(x−y)) mod Smax
//
// The counter value at cycle T *is* the index of the wave owning that
// sub-wave's port group at the router during T.  The schedule has two
// load-bearing properties, both enforced by tests and checkable at run
// time through CheckBalance/CheckContinuity:
//
//  1. Continuity: a flit departing on an output port owned by wave w at
//     cycle T arrives, P cycles later, on an input port owned by the
//     same wave w at the downstream router, so packets "surf" without
//     ever waiting for their time slot.
//  2. Balance (the paper's deflection guarantee): at every router and
//     cycle, each wave owns exactly as many non-local input ports as
//     non-local output ports, so a deflection output always exists.
//     The border rules (Rule-1/Rule-2) fall out of the initial values:
//     the N counter coincides with the SE counter on the south and
//     north borders, the W counter on the east and west borders.
package wave

import (
	"fmt"

	"surfbless/internal/geom"
)

// Sub identifies one of the three per-router schedulers.
type Sub int

// The three sub-wave schedulers of Fig. 4(b).
const (
	SE   Sub = iota // inputs {N, W, Injection}; outputs {S, E, Ejection}
	NSub            // input {S}; output {N}
	WSub            // input {E}; output {W}
)

// String names the sub-wave.
func (s Sub) String() string {
	switch s {
	case SE:
		return "SE"
	case NSub:
		return "N"
	case WSub:
		return "W"
	default:
		return fmt.Sprintf("Sub(%d)", int(s))
	}
}

// InputSub returns the scheduler responsible for the given input port:
// the south-east scheduler serves the N, W and injection inputs, the
// north scheduler the S input, the west scheduler the E input.
func InputSub(in geom.Dir) Sub {
	switch in {
	case geom.South:
		return NSub
	case geom.East:
		return WSub
	default: // North, West, Local
		return SE
	}
}

// OutputSub returns the scheduler responsible for the given output port:
// the south-east scheduler serves the S, E and ejection outputs, the
// north scheduler the N output, the west scheduler the W output.
func OutputSub(out geom.Dir) Sub {
	switch out {
	case geom.North:
		return NSub
	case geom.West:
		return WSub
	default: // South, East, Local
		return SE
	}
}

// Schedule is the wave schedule for one square mesh.  It is immutable
// and safe to share between routers; "advancing the counters" is pure
// arithmetic on the cycle number, which keeps the simulated hardware
// (one counter per scheduler) trivially equivalent.
type Schedule struct {
	mesh geom.Mesh
	p    int // hop delay P: router pipeline + link traversal, in cycles
	smax int

	// Initial counter values per node id, precomputed from Eq. (1)-(3).
	initSE []int
	initN  []int
	initW  []int
}

// New builds the wave schedule for an N×N mesh with hop delay P.
// It panics on a non-square mesh or non-positive hop delay: the border
// rules only close the reverberation pattern on square meshes, so this
// is a static configuration error.
func New(mesh geom.Mesh, hopDelay int) *Schedule {
	if mesh.Width != mesh.Height {
		panic(fmt.Sprintf("wave: schedule requires a square mesh, got %dx%d", mesh.Width, mesh.Height))
	}
	if mesh.Width < 2 {
		panic("wave: mesh must be at least 2x2")
	}
	if hopDelay < 1 {
		panic(fmt.Sprintf("wave: hop delay %d must be positive", hopDelay))
	}
	n := mesh.Width
	p := hopDelay
	smax := 2 * p * (n - 1)
	s := &Schedule{
		mesh:   mesh,
		p:      p,
		smax:   smax,
		initSE: make([]int, mesh.Nodes()),
		initN:  make([]int, mesh.Nodes()),
		initW:  make([]int, mesh.Nodes()),
	}
	for id := 0; id < mesh.Nodes(); id++ {
		c := mesh.CoordOf(id)
		s.initSE[id] = mod(smax*p-p*(c.X+c.Y), smax)
		s.initW[id] = mod(smax*p+p*(c.X-c.Y), smax)
		s.initN[id] = mod(smax*p-p*(c.X-c.Y), smax)
	}
	return s
}

// Smax returns the number of waves, 2·P·(N−1).
func (s *Schedule) Smax() int { return s.smax }

// HopDelay returns P.
func (s *Schedule) HopDelay() int { return s.p }

// Mesh returns the topology the schedule was built for.
func (s *Schedule) Mesh() geom.Mesh { return s.mesh }

// Index returns the wave index held by sub-wave scheduler sub at router
// c during cycle t, i.e. the value of that scheduler's counter.
func (s *Schedule) Index(sub Sub, c geom.Coord, t int64) int {
	id := s.mesh.ID(c)
	var init int
	switch sub {
	case SE:
		init = s.initSE[id]
	case NSub:
		init = s.initN[id]
	case WSub:
		init = s.initW[id]
	default:
		//nocvet:alloc panic-path formatting on a falsified invariant; runs at most once, while dying
		panic(fmt.Sprintf("wave: unknown sub-wave %d", sub))
	}
	return int(mod64(int64(init)+t, int64(s.smax)))
}

// InputWave returns the wave owning input port `in` of router c at
// cycle t.
func (s *Schedule) InputWave(c geom.Coord, in geom.Dir, t int64) int {
	return s.Index(InputSub(in), c, t)
}

// OutputWave returns the wave owning output port `out` of router c at
// cycle t.
func (s *Schedule) OutputWave(c geom.Coord, out geom.Dir, t int64) int {
	return s.Index(OutputSub(out), c, t)
}

// CheckContinuity verifies property (1) for every link of the mesh at
// cycle t: the wave owning each output port equals the wave owning the
// downstream input port P cycles later.  It returns the first violation
// found, or nil.
func (s *Schedule) CheckContinuity(t int64) error {
	for id := 0; id < s.mesh.Nodes(); id++ {
		c := s.mesh.CoordOf(id)
		for _, d := range geom.LinkDirs {
			if !s.mesh.HasNeighbor(c, d) {
				continue
			}
			out := s.OutputWave(c, d, t)
			in := s.InputWave(c.Add(d), d.Opposite(), t+int64(s.p))
			if out != in {
				return fmt.Errorf("wave: continuity broken at %v→%v cycle %d: out wave %d, downstream in wave %d",
					c, c.Add(d), t, out, in)
			}
		}
	}
	return nil
}

// CheckBalance verifies property (2) at router c, cycle t: every wave
// owns equally many existing non-local input and output ports.  It
// returns the first imbalance found, or nil.
func (s *Schedule) CheckBalance(c geom.Coord, t int64) error {
	in := make(map[int]int)
	out := make(map[int]int)
	for _, d := range geom.LinkDirs {
		// An input port in direction d exists iff the neighbour in that
		// direction exists (the link is bidirectional), and likewise for
		// the output port.
		if s.mesh.HasNeighbor(c, d) {
			in[s.InputWave(c, d, t)]++
			out[s.OutputWave(c, d, t)]++
		}
	}
	for w, n := range in {
		if out[w] != n {
			return fmt.Errorf("wave: imbalance at %v cycle %d: wave %d owns %d inputs, %d outputs",
				c, t, w, n, out[w])
		}
	}
	for w, n := range out {
		if in[w] != n {
			return fmt.Errorf("wave: imbalance at %v cycle %d: wave %d owns %d outputs, %d inputs",
				c, t, w, n, in[w])
		}
	}
	return nil
}

// mod returns a mod m with a non-negative result.
func mod(a, m int) int {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}

// mod64 returns a mod m with a non-negative result.
func mod64(a, m int64) int64 {
	r := a % m
	if r < 0 {
		r += m
	}
	return r
}
