package wave_test

import (
	"fmt"

	"surfbless/internal/geom"
	"surfbless/internal/wave"
)

// ExampleNew builds the paper's Figure-3 schedule and reads the three
// sub-wave counters of one router.
func ExampleNew() {
	s := wave.New(geom.NewMesh(4, 4), 1)
	c := geom.Coord{X: 1, Y: 2}
	fmt.Println("Smax:", s.Smax())
	fmt.Printf("router %v at T=0: SE=%d N=%d W=%d\n",
		c, s.Index(wave.SE, c, 0), s.Index(wave.NSub, c, 0), s.Index(wave.WSub, c, 0))
	// Output:
	// Smax: 6
	// router (1,2) at T=0: SE=3 N=1 W=5
}

// ExampleRenderWave draws one frame of the Figure-3 wave animation.
func ExampleRenderWave() {
	s := wave.New(geom.NewMesh(4, 4), 1)
	fmt.Print(wave.RenderWave(s, 0, 0))
	// Output:
	// T=0 wave 0
	// o>o o o
	// v ^
	// o<o o o
	//     ^
	// o o<o o
	//       ^
	// o o o<o
}

// ExampleRoundRobin shows the §5.1 decoder: waves assigned to domains
// round-robin.
func ExampleRoundRobin() {
	dec := wave.RoundRobin(42, 3)
	fmt.Println("wave 0 →", dec.Domain(0))
	fmt.Println("wave 7 →", dec.Domain(7))
	fmt.Println("domain 1 owns", len(dec.Owned(1)), "waves")
	// Output:
	// wave 0 → 0
	// wave 7 → 1
	// domain 1 owns 14 waves
}
