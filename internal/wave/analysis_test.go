package wave

import "testing"

// tunedSets mirrors system.waveSetsFor for Smax = 42, P = 3: data
// windows at multiples of 2P.
func tunedSets() [][]int {
	span := func(starts ...int) []int {
		var s []int
		for _, a := range starts {
			for w := a; w < a+5; w++ {
				s = append(s, w)
			}
		}
		return s
	}
	data0 := span(0, 12, 24)
	data1 := span(6, 18, 30)
	owned := map[int]bool{}
	for _, w := range append(append([]int{}, data0...), data1...) {
		owned[w] = true
	}
	var ctrl []int
	for w := 0; w < 42; w++ {
		if !owned[w] {
			ctrl = append(ctrl, w)
		}
	}
	return [][]int{ctrl, data0, data1}
}

// paperLiteralSets is the published §5.2 assignment.
func paperLiteralSets() [][]int {
	span := func(starts ...int) []int {
		var s []int
		for _, a := range starts {
			for w := a; w < a+5; w++ {
				s = append(s, w)
			}
		}
		return s
	}
	data0 := span(0, 15, 30)
	data1 := span(7, 22, 37)
	owned := map[int]bool{}
	for _, w := range append(append([]int{}, data0...), data1...) {
		owned[w] = true
	}
	var ctrl []int
	for w := 0; w < 42; w++ {
		if !owned[w] {
			ctrl = append(ctrl, w)
		}
	}
	return [][]int{ctrl, data0, data1}
}

// The DESIGN.md §6 claim, verified analytically: with the paper's
// stride-15 windows a data worm can only turn at the border (worst
// detour = 7 rows on an 8-row mesh), while the tuned 2P-stride windows
// cut the worst detour to ≤ 2 rows.
func TestWorstDetourPlacement(t *testing.T) {
	const p, rows = 3, 8
	tuned, err := FromSets(42, tunedSets())
	if err != nil {
		t.Fatal(err)
	}
	paper, err := FromSets(42, paperLiteralSets())
	if err != nil {
		t.Fatal(err)
	}
	for dom := 1; dom <= 2; dom++ {
		pd := WorstDetour(paper, p, rows, dom, 5)
		td := WorstDetour(tuned, p, rows, dom, 5)
		// Rows 0 and 7 always turn (2·P·7 = 42 ≡ 0 mod Smax), so the
		// worst victim is a row-6 destination bouncing to row 0.
		if pd != rows-2 {
			t.Errorf("paper sets, domain %d: worst detour %d, want %d (border bounce)", dom, pd, rows-2)
		}
		if td > 2 {
			t.Errorf("tuned sets, domain %d: worst detour %d, want ≤ 2", dom, td)
		}
	}
}

// Turn rows with the tuned sets: window starts at multiples of 2P give
// turn opportunities wherever 2·P·y lands on another start.
func TestTurnRowsTuned(t *testing.T) {
	tuned, err := FromSets(42, tunedSets())
	if err != nil {
		t.Fatal(err)
	}
	// Domain 1 windows start at {0, 12, 24}.  From s = 0: s − 6y ∈
	// {0,12,24} (mod 42) ⇔ 6y ∈ {0,18,30} ⇔ y ∈ {0,3,5,7}.
	got := TurnRows(tuned, 3, 8, 1, 0, 5)
	want := []int{0, 3, 5, 7}
	if len(got) != len(want) {
		t.Fatalf("TurnRows = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TurnRows = %v, want %v", got, want)
		}
	}
}

// Row 0 is always a turn row: the border rules make all three
// schedulers coincide there.
func TestRowZeroAlwaysTurns(t *testing.T) {
	for _, sets := range [][][]int{tunedSets(), paperLiteralSets()} {
		dec, err := FromSets(42, sets)
		if err != nil {
			t.Fatal(err)
		}
		for dom := 1; dom <= 2; dom++ {
			for _, s := range dec.Owned(dom) {
				if !dec.CanStart(s, 5) {
					continue
				}
				rows := TurnRows(dec, 3, 8, dom, s, 5)
				if len(rows) == 0 || rows[0] != 0 {
					t.Fatalf("window %d of domain %d cannot turn at row 0: %v", s, dom, rows)
				}
			}
		}
	}
}

func TestTurnRowsPanicsOnBadWindow(t *testing.T) {
	dec := RoundRobin(42, 2)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for a non-window wave")
		}
	}()
	TurnRows(dec, 3, 8, 0, 1, 5) // wave 1 belongs to domain 1, not 0
}

func TestDomainShare(t *testing.T) {
	dec, err := FromSets(42, tunedSets())
	if err != nil {
		t.Fatal(err)
	}
	if got := DomainShare(dec, 1); got != 15.0/42 {
		t.Errorf("data domain share = %g, want 15/42", got)
	}
	if got := DomainShare(dec, 0); got != 12.0/42 {
		t.Errorf("ctrl domain share = %g, want 12/42", got)
	}
}
