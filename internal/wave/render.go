package wave

import (
	"fmt"
	"strings"

	"surfbless/internal/geom"
)

// RenderWave draws which directed links one wave owns at cycle t — the
// textual reproduction of the paper's Figure 3 (which shows the wave
// pattern on a 4×4 mesh with hop delay 1, where the pattern repeats
// after Smax = 2·1·(4−1) = 6 time slots).
//
// Routers appear as "o" on a (2N−1)×(2N−1) character grid.  A link cell
// between two routers shows the direction of the owned traversal:
// '>' / '<' for the east/west link, 'v' / '^' for south/north, and 'x'
// when the wave owns both directions of the physical channel that
// cycle (which happens where sub-waves cross at borders).
func RenderWave(s *Schedule, w int, t int64) string {
	if w < 0 || w >= s.smax {
		panic(fmt.Sprintf("wave: RenderWave(%d) out of range [0,%d)", w, s.smax))
	}
	n := s.mesh.Width
	grid := make([][]byte, 2*n-1)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", 2*n-1))
	}
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			grid[2*y][2*x] = 'o'
		}
	}
	mark := func(r, c int, ch byte) {
		if grid[r][c] == ' ' {
			grid[r][c] = ch
		} else {
			grid[r][c] = 'x'
		}
	}
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			c := geom.Coord{X: x, Y: y}
			if x+1 < n && s.OutputWave(c, geom.East, t) == w {
				mark(2*y, 2*x+1, '>')
			}
			if x > 0 && s.OutputWave(c, geom.West, t) == w {
				mark(2*y, 2*x-1, '<')
			}
			if y+1 < n && s.OutputWave(c, geom.South, t) == w {
				mark(2*y+1, 2*x, 'v')
			}
			if y > 0 && s.OutputWave(c, geom.North, t) == w {
				mark(2*y-1, 2*x, '^')
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "T=%d wave %d\n", t, w)
	for _, row := range grid {
		b.WriteString(strings.TrimRight(string(row), " "))
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderPeriod renders one full reverberation period of a wave, Figure
// 3 style: Smax frames starting at cycle t0.
func RenderPeriod(s *Schedule, w int, t0 int64) []string {
	frames := make([]string, s.smax)
	for i := range frames {
		frames[i] = RenderWave(s, w, t0+int64(i))
	}
	return frames
}

// OwnedLinks returns the directed links (as "(x,y)→(x,y) SUB" strings,
// deterministic order) that wave w owns at cycle t, for tests and
// diagnostics.
func (s *Schedule) OwnedLinks(w int, t int64) []string {
	var out []string
	n := s.mesh.Width
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			c := geom.Coord{X: x, Y: y}
			for _, d := range geom.LinkDirs {
				if !s.mesh.HasNeighbor(c, d) {
					continue
				}
				if s.OutputWave(c, d, t) == w {
					out = append(out, fmt.Sprintf("%v→%v %v", c, c.Add(d), OutputSub(d)))
				}
			}
		}
	}
	return out
}
