// Package analysis is a self-contained static-analysis framework for
// this module, API-shaped after golang.org/x/tools/go/analysis but
// built entirely on the standard library (go/ast, go/types and the gc
// export-data importer), because the build image is offline and the
// module carries no external dependencies.
//
// The moving parts:
//
//   - Analyzer describes one check.  Per-package analyzers implement
//     Run and see one type-checked package at a time; whole-module
//     analyzers implement RunModule and see every loaded package at
//     once (hotalloc needs the cross-package call graph, which the
//     per-package granularity of x/tools facts would otherwise
//     require).
//   - Unit is one type-checked package: syntax, types and the
//     surrounding module path.
//   - Diagnostic is one finding.  Its Category doubles as the
//     suppression key: a `//nocvet:<category>` comment on the
//     reported line, or on the line directly above it, silences the
//     finding (see directive.go for grammar and policy).
//
// The checker (checker.go) loads packages (load.go), runs analyzers,
// applies suppressions and formats findings; cmd/nocvet is the CLI
// front end and internal/analysis/analysistest the golden-file test
// harness.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check.  Exactly one of Run and
// RunModule must be set.
type Analyzer struct {
	// Name identifies the analyzer in output and must be a valid Go
	// identifier.
	Name string
	// Doc is the one-paragraph description printed by `nocvet -help`.
	Doc string

	// Run analyzes a single package.
	Run func(*Pass) error
	// RunModule analyzes every loaded package at once.  Analyzers that
	// follow calls or types across package boundaries use this form.
	RunModule func(*ModulePass) error
}

func (a *Analyzer) String() string { return a.Name }

// Unit is one type-checked package.
type Unit struct {
	// Path is the package's import path.
	Path string
	// ModulePath is the path of the module the package belongs to
	// ("surfbless" for this repository; the testdata modules of the
	// analyzer golden tests have their own).
	ModulePath string
	// Files holds the parsed syntax trees, comments included.
	Files []*ast.File
	// Pkg is the type-checked package object.
	Pkg *types.Package
	// Info holds the type-checker's facts about every expression.
	Info *types.Info
}

// Pass carries one package to a per-package analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Unit     *Unit
	// Report records one finding.
	Report func(Diagnostic)
}

// Reportf reports a formatted finding at pos under the given
// suppression category.
func (p *Pass) Reportf(pos token.Pos, category, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Category: category, Message: fmt.Sprintf(format, args...)})
}

// ModulePass carries every loaded package to a whole-module analyzer.
type ModulePass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Units    []*Unit
	Report   func(Diagnostic)
}

// Reportf reports a formatted finding at pos under the given
// suppression category.
func (p *ModulePass) Reportf(pos token.Pos, category, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Category: category, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos token.Pos
	// Category is the suppression key a `//nocvet:<category>`
	// directive must name to silence this finding.  It must be one of
	// the registered directive names (see KnownDirectives).
	Category string
	Message  string
}
