// Machine-readable output.  cmd/nocvet emits findings three ways: the
// human one-per-line text (checker.go Print), a JSON report, and SARIF
// 2.1.0 for CI annotation surfaces.  Both machine forms share one
// finding identity:
//
//	ID = first 16 hex digits of
//	     SHA-256(analyzer ␀ category ␀ file ␀ message ␀ occurrence)
//
// Line and column are deliberately excluded: a gofmt pass, an added
// import, or a comment above the site must not churn every ID in the
// committed baseline.  The occurrence index (how many identical
// analyzer/category/file/message tuples precede this one in position
// order) keeps duplicates distinct while staying stable under
// unrelated edits.  Files are stored slash-separated and relative to
// the module root, so reports are byte-identical across checkouts.
//
// The baseline file (nocvet.baseline.json, same schema as the JSON
// report) pins the set of known findings: `nocvet -baseline` fails
// only on findings whose ID is absent from it, so legacy findings are
// tracked without blocking CI while new ones fail it.
package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// ReportVersion is the schema version of the JSON report and baseline.
const ReportVersion = 1

// ReportFinding is one active finding in machine-readable form.
type ReportFinding struct {
	ID       string `json:"id"`
	Analyzer string `json:"analyzer"`
	Category string `json:"category"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

// Report is the machine-readable result of one checker run.
type Report struct {
	Version  int             `json:"version"`
	Findings []ReportFinding `json:"findings"`
}

// NewReport converts the active findings into a report with stable
// IDs, file paths relativized against root (the module directory).
func NewReport(root string, findings []Finding) Report {
	r := Report{Version: ReportVersion, Findings: []ReportFinding{}}
	occurrence := make(map[string]int)
	for _, f := range Active(findings) {
		file := f.Position.Filename
		if rel, err := filepath.Rel(root, file); err == nil {
			file = rel
		}
		file = filepath.ToSlash(file)
		identity := fmt.Sprintf("%s\x00%s\x00%s\x00%s", f.Analyzer, f.Category, file, f.Message)
		n := occurrence[identity]
		occurrence[identity] = n + 1
		sum := sha256.Sum256([]byte(fmt.Sprintf("%s\x00%d", identity, n)))
		r.Findings = append(r.Findings, ReportFinding{
			ID:       hex.EncodeToString(sum[:8]),
			Analyzer: f.Analyzer,
			Category: f.Category,
			File:     file,
			Line:     f.Position.Line,
			Column:   f.Position.Column,
			Message:  f.Message,
		})
	}
	return r
}

// WriteJSON writes the report as indented JSON.  Output depends only
// on the findings, so two runs over the same tree are byte-identical.
func (r Report) WriteJSON(w io.Writer) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", data)
	return err
}

// Minimal SARIF 2.1.0 model — just the slice CI annotation surfaces
// consume.
type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string            `json:"id"`
	ShortDescription map[string]string `json:"shortDescription"`
}

type sarifResult struct {
	RuleID              string            `json:"ruleId"`
	Level               string            `json:"level"`
	Message             map[string]string `json:"message"`
	Locations           []sarifLocation   `json:"locations"`
	PartialFingerprints map[string]string `json:"partialFingerprints"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF writes the report as a SARIF 2.1.0 log.  Rule IDs are
// analyzer names; each result carries the stable finding ID as a
// partial fingerprint so annotation dedup follows the baseline's
// identity, not positions.
func (r Report) WriteSARIF(w io.Writer, analyzers []*Analyzer) error {
	docs := map[string]string{"directive": "malformed, unknown, or stale //nocvet: suppression directives"}
	for _, a := range analyzers {
		docs[a.Name] = a.Doc
	}
	seen := make(map[string]bool)
	var rules []sarifRule
	for _, f := range r.Findings {
		if seen[f.Analyzer] {
			continue
		}
		seen[f.Analyzer] = true
		rules = append(rules, sarifRule{ID: f.Analyzer, ShortDescription: map[string]string{"text": docs[f.Analyzer]}})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })

	results := make([]sarifResult, 0, len(r.Findings))
	for _, f := range r.Findings {
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: map[string]string{"text": f.Message},
			Locations: []sarifLocation{{PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: f.File},
				Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Column},
			}}},
			PartialFingerprints: map[string]string{"nocvetFinding/v1": f.ID},
		})
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{{Tool: sarifTool{Driver: sarifDriver{Name: "nocvet", Rules: rules}}, Results: results}},
	}
	data, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", data)
	return err
}

// LoadBaseline reads a baseline file (a Report, typically written by
// `nocvet -write-baseline`).
func LoadBaseline(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var b Report
	if err := json.Unmarshal(data, &b); err != nil {
		return Report{}, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	if b.Version != ReportVersion {
		return Report{}, fmt.Errorf("baseline %s has version %d, want %d (regenerate with -write-baseline)", path, b.Version, ReportVersion)
	}
	return b, nil
}

// NewAgainstBaseline returns the report findings whose IDs are absent
// from the baseline — the ones that must fail CI.
func NewAgainstBaseline(r Report, baseline Report) []ReportFinding {
	known := make(map[string]bool, len(baseline.Findings))
	for _, f := range baseline.Findings {
		known[f.ID] = true
	}
	var fresh []ReportFinding
	for _, f := range r.Findings {
		if !known[f.ID] {
			fresh = append(fresh, f)
		}
	}
	return fresh
}
