// Phase annotations.  A fabric opts its sharded stepping entry points
// into static phase checking with a directive-style doc comment:
//
//	//shard:phase(receive)
//	func (e *Engine) recvTile(t int) { ... }
//
// The name in parentheses is the phase of DESIGN.md §17's two-phase
// barrier schedule the function implements:
//
//	receive — tile-parallel; drains inbound link lines into tile state
//	resolve — tile-parallel; allocates/arbitrates/forwards, sends on
//	          outbound lines
//	effects — serial, after the barriers; replays deferred per-tile
//	          effects (meters, collector lifecycle, probe flush)
//
// The shardsafe analyzer roots its interprocedural walk at these
// annotations, and hotalloc treats them as hot-path roots (annotated
// functions run every cycle).  The prefix deliberately is not
// "//nocvet:" — annotations declare facts, directives waive findings,
// and mixing the namespaces would make every annotation an unknown
// directive.
package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// phasePrefix introduces a phase annotation.
const phasePrefix = "//shard:phase("

// Phase names of the two-phase barrier schedule.
const (
	PhaseReceive = "receive"
	PhaseResolve = "resolve"
	PhaseEffects = "effects"
)

// ValidPhase reports whether name is a registered phase.
func ValidPhase(name string) bool {
	return name == PhaseReceive || name == PhaseResolve || name == PhaseEffects
}

// TileParallel reports whether the phase runs tiles concurrently (and
// so falls under shardsafe's confinement rules).
func TileParallel(name string) bool {
	return name == PhaseReceive || name == PhaseResolve
}

// ParsePhase scans a declaration's doc comment group for a phase
// annotation.  ok reports whether one was present; name may still be
// invalid (caller flags it — a typo'd phase must fail loudly, exactly
// like an unknown directive).  Only the first annotation counts.
func ParsePhase(doc *ast.CommentGroup) (name string, pos token.Pos, ok bool) {
	if doc == nil {
		return "", token.NoPos, false
	}
	for _, c := range doc.List {
		text, found := strings.CutPrefix(strings.TrimSuffix(c.Text, "\r"), phasePrefix)
		if !found {
			continue
		}
		name, _, closed := strings.Cut(text, ")")
		if !closed {
			return "", c.Pos(), true
		}
		return strings.TrimSpace(name), c.Pos(), true
	}
	return "", token.NoPos, false
}
