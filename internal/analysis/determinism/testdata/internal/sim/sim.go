// Package sim is determinism-analyzer testdata mirroring the path
// shape of the real replay-critical packages.
package sim

import (
	"math/rand"
	"time"
)

// WallClock exercises the forbidden time reads.
func WallClock() int64 {
	t := time.Now() // want `time\.Now reads the wall clock`
	d := time.Since(t) // want `time\.Since reads the wall clock`
	_ = time.Unix(0, 0) // constructors are fine
	return int64(d)
}

// GlobalRand exercises the global math/rand source.
func GlobalRand() int {
	n := rand.Intn(8) // want `rand\.Intn draws from the global math/rand source`
	rand.Shuffle(n, func(i, j int) {}) // want `rand\.Shuffle draws from the global math/rand source`
	return n
}

// SeededRand is the sanctioned pattern: an explicit per-run stream.
func SeededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(8)
}

// MapRanges exercises unordered iteration.
func MapRanges(m map[int]int) int {
	sum := 0
	for _, v := range m { // want `range over map\[int\]int iterates in randomized order`
		sum += v
	}
	//nocvet:ordered summation is commutative
	for _, v := range m {
		sum += v
	}
	for _, v := range m { //nocvet:ordered same-line waiver
		sum += v
	}
	keys := []int{1, 2, 3}
	for _, k := range keys { // slices iterate in order
		sum += m[k]
	}
	return sum
}
