// Package shard is determinism-analyzer testdata mirroring the tile
// worker pool: a wall-clock read or a global-rand draw inside a worker
// body varies with tile scheduling, which would break the sharded ==
// serial fingerprint guarantee.
package shard

import (
	"math/rand"
	"time"
)

// Run mimics the pool's dispatch shape: fn is a per-tile worker body.
func Run(n int, fn func(int)) {
	for t := 0; t < n; t++ {
		fn(t)
	}
}

// WorkerBodies exercises the forbidden constructs inside worker
// closures — exactly where a nondeterministic read would hide from a
// serial-path review.
func WorkerBodies(tiles []int64) {
	Run(len(tiles), func(t int) {
		tiles[t] = time.Now().UnixNano() // want `time\.Now reads the wall clock`
	})
	Run(len(tiles), func(t int) {
		tiles[t] = int64(rand.Intn(8)) // want `rand\.Intn draws from the global math/rand source`
	})
}

// Seeded is the sanctioned pattern: per-tile streams seeded from the
// options, independent of scheduling.
func Seeded(tiles []int64, seed int64) {
	Run(len(tiles), func(t int) {
		rng := rand.New(rand.NewSource(seed + int64(t)))
		tiles[t] = int64(rng.Intn(8))
	})
}
