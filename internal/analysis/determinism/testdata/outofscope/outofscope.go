// Package outofscope proves the analyzer's package scoping: the same
// constructs that are findings under internal/sim are silent here
// (experiment drivers may read the clock for progress lines).
package outofscope

import (
	"math/rand"
	"time"
)

// Allowed uses every forbidden construct outside the scope.
func Allowed(m map[int]int) int64 {
	sum := int64(rand.Intn(8))
	for k := range m {
		sum += int64(k)
	}
	return sum + time.Now().UnixNano()
}
