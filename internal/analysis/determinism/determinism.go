// Package determinism implements the nocvet analyzer that rejects
// nondeterminism in the simulator's replay-critical packages.
//
// Bit-identical replays are a load-bearing property: the simcache
// keys results by a fingerprint of the options alone, the
// confined-interference experiments compare victim traffic across
// runs flit for flit, and checkpoint/resume splices partial sweeps
// together.  All of that is sound only if a run is a pure function of
// its options.  Three constructs break that silently:
//
//   - time.Now (and Since/Until): wall-clock reads leak host timing
//     into results.
//   - the global math/rand source: shared process-wide state seeded
//     outside the options; only explicitly seeded rand.New(...)
//     streams are deterministic per run.
//   - range over a map: Go randomizes iteration order per execution,
//     so any observable effect of the loop's order differs between
//     replays.
//
// Map ranges whose effect is provably order-independent (accumulating
// into a commutative reduction, building a set) are waived with
// `//nocvet:ordered <why>`; wall-clock or RNG uses that cannot affect
// results are waived with `//nocvet:determinism <why>`.
package determinism

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"surfbless/internal/analysis"
)

// Analyzer is the determinism checker.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "forbid time.Now, the global math/rand source, and unordered map ranges in replay-critical packages",
	Run:  run,
}

// Scope limits the analyzer to the packages whose behaviour feeds
// simulation results.  internal/shard is in scope because its worker
// bodies run router pipeline stages: a wall-clock read or global-rand
// draw there would vary with tile scheduling and break the sharded ==
// serial fingerprint guarantee.  Testdata modules mirror these path
// shapes.
var Scope = regexp.MustCompile(`internal/(router(/[^/]+)?|sim|traffic|link|shard)$`)

// wallClock lists the forbidden wall-clock reads.
var wallClock = map[string]bool{"Now": true, "Since": true, "Until": true}

func run(pass *analysis.Pass) error {
	if !Scope.MatchString(pass.Unit.Path) {
		return nil
	}
	for _, file := range pass.Unit.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.RangeStmt:
				checkRange(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkCall flags wall-clock reads and global math/rand draws.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	// Package-level functions only: methods on an explicitly seeded
	// *rand.Rand are the sanctioned source of randomness.
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClock[fn.Name()] {
			pass.Reportf(call.Pos(), "determinism",
				"time.%s reads the wall clock; simulation results must be a pure function of the options (use cycle counts)", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		// Constructors (New, NewSource, NewPCG, ...) build explicitly
		// seeded streams and are fine; everything else draws from the
		// global, process-seeded source.
		if !strings.HasPrefix(fn.Name(), "New") {
			pass.Reportf(call.Pos(), "determinism",
				"%s.%s draws from the global math/rand source; use a rand.New stream seeded from the options", fn.Pkg().Name(), fn.Name())
		}
	}
}

// checkRange flags iteration over map types.
func checkRange(pass *analysis.Pass, rs *ast.RangeStmt) {
	tv, ok := pass.Unit.Info.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	pass.Reportf(rs.Pos(), "ordered",
		"range over %s iterates in randomized order; iterate a sorted key slice, or waive with //nocvet:ordered if the effect is order-independent", tv.Type)
}

// calleeFunc resolves the called function object, if static.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.Unit.Info.Uses[id].(*types.Func)
	return fn
}
