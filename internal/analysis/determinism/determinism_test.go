package determinism_test

import (
	"testing"

	"surfbless/internal/analysis/analysistest"
	"surfbless/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", determinism.Analyzer,
		"./internal/sim", "./internal/shard", "./outofscope")
}
