// Package sim is fingerprintcheck testdata: the payload root and
// every field-shape verdict the analyzer hands down.
package sim

import (
	"encoding/json"

	"nocvet.example/internal/config"
)

// Tracer is a named func type, hook-style.
type Tracer func(ev int)

// Options is the fingerprint payload root.
type Options struct {
	// Serialized fields in every deterministic shape.
	Cfg     config.Config
	Seed    int64
	Weights []float64
	Lookup  map[string]int
	Limits  [4]int
	Coeffs  *config.Coefficients
	Stamp   config.Stamp // MarshalText: opaque, trusted

	// Exempt fields, the Recycle convention.
	Tracer  Tracer `json:"-"`
	Recycle bool   `json:"-"`

	// Violations.
	hidden   int                  // want `field sim\.Options\.hidden is unexported, so encoding/json silently omits it`
	Sink     func(node int)       // want `field sim\.Options\.Sink is func-typed; json\.Marshal fails`
	Anything any                  // want `field sim\.Options\.Anything is interface-typed`
	Notify   chan int             // want `field sim\.Options\.Notify is channel-typed`
	Gain     complex128           // want `field sim\.Options\.Gain has complex type`
	BadMap   map[config.Coord]int // want `field sim\.Options\.BadMap is a map keyed by`
}

// Fingerprint mirrors the real cache-key derivation: json.Marshal of
// the options is the payload the analyzer must audit.
func Fingerprint(o Options) ([]byte, error) {
	return json.Marshal(o)
}

// helper proves only functions named Fingerprint seed the walk: this
// marshal of an un-audited type reports nothing.
func helper() ([]byte, error) {
	return json.Marshal(struct {
		leak func() // never reported: not a fingerprint payload
	}{})
}
