// Package config is fingerprintcheck testdata: a synthetic config
// struct reached from another package's fingerprint payload.
package config

// Config mixes serialized, silently-missing and exempted fields.
type Config struct {
	Width int
	Waves [][]int

	// run influences results but never reaches the payload: the
	// deliberately missing field of the golden test.
	run int // want `field config\.Config\.run is unexported, so encoding/json silently omits it`

	// note carries the explicit exemption tag: the passing case.
	note string `json:"-"`
}

// Coefficients is a plain nested struct, fully serialized.
type Coefficients struct{ Link float64 }

// Coord is used as a map key below; json.Marshal rejects struct keys.
type Coord struct{ X, Y int }

// Stamp controls its own serialization via MarshalText and is trusted
// as opaque.
type Stamp struct{ v int }

// MarshalText serializes the stamp.
func (s Stamp) MarshalText() ([]byte, error) { return []byte{byte(s.v)}, nil }
