package fingerprintcheck_test

import (
	"testing"

	"surfbless/internal/analysis/analysistest"
	"surfbless/internal/analysis/fingerprintcheck"
)

func TestFingerprintCheck(t *testing.T) {
	analysistest.Run(t, "testdata", fingerprintcheck.Analyzer,
		"./internal/sim", "./internal/config")
}
