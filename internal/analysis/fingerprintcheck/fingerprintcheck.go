// Package fingerprintcheck implements the nocvet analyzer that audits
// the simulation-result cache's fingerprint payloads.
//
// The simcache keys results by SHA-256 over the canonical JSON
// serialization of an options struct (sim.Options, system.Options):
// whatever encoding/json emits is what distinguishes cache entries.
// A field that influences simulation results but does not reach that
// payload poisons the cache — two semantically different runs collide
// on one key and the second silently returns the first's results.
// The repository's convention (set by Options.Recycle) is that every
// deliberately unfingerprinted field carries an explicit `json:"-"`
// tag plus a comment arguing why results cannot depend on it.
//
// The analyzer finds every `json.Marshal(x)` inside a function named
// Fingerprint, takes x's struct type as a payload root, and walks all
// struct types reachable through serialized fields within the same
// module.  Each field must be one of:
//
//   - serialized: exported, of a type encoding/json marshals
//     completely and deterministically (basics, structs, slices,
//     arrays, maps — whose keys json sorts — pointers, and types with
//     their own MarshalJSON/MarshalText);
//   - exempt: tagged `json:"-"`.
//
// Violations are fields that leak out of the payload silently:
// unexported fields (encoding/json skips them without a word), and
// exported fields of func, channel, complex, or interface type
// (Marshal either fails at run time or serializes by dynamic type).
package fingerprintcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"strings"

	"surfbless/internal/analysis"
)

// Analyzer is the fingerprint payload auditor.
var Analyzer = &analysis.Analyzer{
	Name: "fingerprintcheck",
	Doc:  "every field reachable from a fingerprint's json.Marshal payload must feed the hash or carry an explicit json:\"-\" exemption",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	w := &walker{pass: pass, seen: make(map[string]bool)}
	for _, file := range pass.Unit.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "Fingerprint" || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) == 0 {
					return true
				}
				if fn := calleeFunc(pass, call); fn == nil || fn.Pkg() == nil ||
					fn.Pkg().Path() != "encoding/json" ||
					(fn.Name() != "Marshal" && fn.Name() != "MarshalIndent") {
					return true
				}
				w.root(call.Args[0], call.Pos())
				return true
			})
		}
	}
	return nil
}

// walker audits every module struct type reachable from one payload
// root.
type walker struct {
	pass *analysis.Pass
	seen map[string]bool
	// fallback anchors findings on fields whose own source position
	// is unknown (types imported purely from export data).
	fallback token.Pos
}

// root seeds the walk with the static type of a json.Marshal argument.
func (w *walker) root(arg ast.Expr, pos token.Pos) {
	tv, ok := w.pass.Unit.Info.Types[arg]
	if !ok {
		return
	}
	w.fallback = pos
	w.checkType(tv.Type, typeName(tv.Type))
}

// checkStruct audits one struct type's fields.
func (w *walker) checkStruct(st *types.Struct, owner string) {
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		tag := reflect.StructTag(st.Tag(i)).Get("json")
		name, _, _ := strings.Cut(tag, ",")
		if name == "-" && tag != "-," {
			continue // explicit exemption, the Recycle convention
		}
		if !f.Exported() {
			if f.Anonymous() {
				// encoding/json promotes the exported fields of an
				// unexported embedded struct: they do feed the hash.
				w.checkType(f.Type(), owner+"."+f.Name())
				continue
			}
			w.report(f, "field %s.%s is unexported, so encoding/json silently omits it from the fingerprint payload; export it or record the exemption with a json:\"-\" tag and a comment arguing results cannot depend on it", owner, f.Name())
			continue
		}
		w.checkFieldType(f, f.Type(), owner)
	}
}

// checkFieldType validates that one serialized field marshals
// completely and deterministically.
func (w *walker) checkFieldType(f *types.Var, t types.Type, owner string) {
	if hasOwnEncoding(t) {
		return // the type controls its own bytes; trust it
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		if u.Info()&types.IsComplex != 0 {
			w.report(f, "field %s.%s has complex type %s; json.Marshal fails on it at run time, so the fingerprint path is broken — change the type or exempt it with json:\"-\"", owner, f.Name(), t)
		}
	case *types.Pointer:
		w.checkFieldType(f, u.Elem(), owner)
	case *types.Slice:
		w.checkFieldType(f, u.Elem(), owner)
	case *types.Array:
		w.checkFieldType(f, u.Elem(), owner)
	case *types.Map:
		if k, ok := u.Key().Underlying().(*types.Basic); !ok ||
			k.Info()&(types.IsString|types.IsInteger) == 0 {
			if !hasTextEncoding(u.Key()) {
				w.report(f, "field %s.%s is a map keyed by %s, which json.Marshal rejects; the fingerprint path is broken — use string or integer keys or exempt the field with json:\"-\"", owner, f.Name(), u.Key())
				return
			}
		}
		w.checkFieldType(f, u.Elem(), owner)
	case *types.Struct:
		w.checkType(t, typeName(t))
	case *types.Interface:
		w.report(f, "field %s.%s is interface-typed (%s), so its serialization depends on the dynamic value; give it a concrete type or exempt it with json:\"-\" and fold the information into the payload another way", owner, f.Name(), t)
	case *types.Signature:
		w.report(f, "field %s.%s is func-typed; json.Marshal fails on it at run time, so the fingerprint path is broken — exempt it with json:\"-\" like Options.Recycle, or change the type", owner, f.Name())
	case *types.Chan:
		w.report(f, "field %s.%s is channel-typed; json.Marshal fails on it at run time, so the fingerprint path is broken — exempt it with json:\"-\" or change the type", owner, f.Name())
	}
}

// checkType recurses into a struct type if it belongs to the analyzed
// module; foreign types (stdlib) are trusted as opaque, stable
// serializations.
func (w *walker) checkType(t types.Type, display string) {
	if n, ok := t.(*types.Named); ok {
		pkg := n.Obj().Pkg()
		if pkg == nil || !inModule(pkg.Path(), w.pass.Unit.ModulePath) {
			return
		}
		key := types.TypeString(t, nil)
		if w.seen[key] {
			return
		}
		w.seen[key] = true
	}
	if st, ok := t.Underlying().(*types.Struct); ok {
		w.checkStruct(st, display)
	}
}

// report anchors the finding on the field's declaration when its
// position is known, else on the json.Marshal call that reaches it.
func (w *walker) report(f *types.Var, format string, args ...any) {
	pos := f.Pos()
	if !pos.IsValid() {
		pos = w.fallback
	}
	w.pass.Reportf(pos, "fingerprint", format, args...)
}

// inModule reports whether pkgPath is modulePath or below it.
func inModule(pkgPath, modulePath string) bool {
	return modulePath != "" &&
		(pkgPath == modulePath || strings.HasPrefix(pkgPath, modulePath+"/"))
}

// typeName renders a type for messages, pointers stripped.
func typeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

// hasOwnEncoding reports whether t (or *t) provides MarshalJSON or
// MarshalText and therefore controls its own serialization.
func hasOwnEncoding(t types.Type) bool {
	return implementsMethod(t, "MarshalJSON") || implementsMethod(t, "MarshalText")
}

func hasTextEncoding(t types.Type) bool {
	return implementsMethod(t, "MarshalText")
}

// implementsMethod reports whether t or *t has a method with the
// ([]byte, error) marshaler shape under the given name.
func implementsMethod(t types.Type, name string) bool {
	for _, recv := range []types.Type{t, types.NewPointer(t)} {
		obj, _, _ := types.LookupFieldOrMethod(recv, true, nil, name)
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Params().Len() != 0 || sig.Results().Len() != 2 {
			continue
		}
		s, ok := sig.Results().At(0).Type().(*types.Slice)
		if !ok {
			continue
		}
		// byte may surface as a materialized alias; compare kinds.
		if b, ok := types.Unalias(s.Elem()).(*types.Basic); !ok || b.Kind() != types.Uint8 {
			continue
		}
		if named, ok := sig.Results().At(1).Type().(*types.Named); !ok ||
			named.Obj().Pkg() != nil || named.Obj().Name() != "error" {
			continue
		}
		return true
	}
	return false
}

// calleeFunc resolves the called function object, if static.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.Unit.Info.Uses[id].(*types.Func)
	return fn
}
