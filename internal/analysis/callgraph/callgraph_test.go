package callgraph_test

import (
	"testing"

	"surfbless/internal/analysis"
	"surfbless/internal/analysis/callgraph"
)

func load(t *testing.T) *callgraph.Graph {
	t.Helper()
	_, units, err := analysis.Load("testdata", "./...")
	if err != nil {
		t.Fatalf("loading testdata: %v", err)
	}
	return callgraph.Build(units)
}

func TestBuildIndexesAllDecls(t *testing.T) {
	g := load(t)
	for _, key := range []string{
		"nocvet.example/fab.Eng.Step",
		"nocvet.example/fab.Eng.tile",
		"nocvet.example/fab.orphan",
		"nocvet.example/lib.Helper",
		"nocvet.example/lib.Deep",
		"nocvet.example/lib.leaf",
	} {
		if g.Node(key) == nil {
			t.Errorf("Node(%q) = nil, want indexed", key)
		}
	}
}

func TestCallAndReferenceEdges(t *testing.T) {
	g := load(t)
	edges := g.Callees("nocvet.example/fab.Eng.Step")
	var call, ref []string
	for _, e := range edges {
		if e.Ref {
			ref = append(ref, e.Callee)
		} else {
			call = append(call, e.Callee)
		}
	}
	if len(call) != 1 || call[0] != "nocvet.example/lib.Helper" {
		t.Errorf("call edges = %v, want [nocvet.example/lib.Helper]", call)
	}
	if len(ref) != 1 || ref[0] != "nocvet.example/fab.Eng.tile" {
		t.Errorf("ref edges = %v, want [nocvet.example/fab.Eng.tile]", ref)
	}
}

func TestReachFollowsReferences(t *testing.T) {
	g := load(t)
	r := g.Reach([]string{"nocvet.example/fab.Eng.Step"})
	for _, key := range []string{
		"nocvet.example/fab.Eng.tile", // via the method-value reference
		"nocvet.example/lib.Helper",
		"nocvet.example/lib.Deep",
		"nocvet.example/lib.leaf",
	} {
		if !r.Visited(key) {
			t.Errorf("Visited(%q) = false, want reached", key)
		}
	}
	if r.Visited("nocvet.example/fab.orphan") {
		t.Error("orphan reached; want unreachable")
	}
}

func TestChainRendersShortestPath(t *testing.T) {
	g := load(t)
	r := g.Reach([]string{"nocvet.example/fab.Eng.Step"})
	got := r.Chain(g, "nocvet.example/lib.leaf")
	want := "fab.(*Eng).Step → fab.(*Eng).tile → lib.Deep → lib.leaf"
	if got != want {
		t.Errorf("Chain(leaf) = %q, want %q", got, want)
	}
}

func TestReachIsDeterministic(t *testing.T) {
	g := load(t)
	first := g.Reach([]string{"nocvet.example/fab.Eng.Step"}).Order()
	for i := 0; i < 5; i++ {
		again := g.Reach([]string{"nocvet.example/fab.Eng.Step"}).Order()
		if len(again) != len(first) {
			t.Fatalf("run %d: order length %d, want %d", i, len(again), len(first))
		}
		for j := range first {
			if again[j] != first[j] {
				t.Fatalf("run %d: order[%d] = %q, want %q", i, j, again[j], first[j])
			}
		}
	}
}
