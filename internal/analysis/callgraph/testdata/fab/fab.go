// Fixture for the callgraph tests: a miniature fabric whose tile
// function is reachable only through a method-value reference, plus a
// cross-package call chain into lib.
package fab

import "nocvet.example/lib"

// Eng mirrors the sharded-fabric shape: the tile closure is assigned
// to a field once and invoked dynamically by a pool.
type Eng struct {
	fn func(int)
	n  int
}

func (e *Eng) Step(now int64) {
	if e.fn == nil {
		e.fn = e.tile
	}
	lib.Helper(e.n)
}

func (e *Eng) tile(t int) {
	lib.Deep(t)
}

// orphan is declared but never called or referenced.
func orphan() {}
