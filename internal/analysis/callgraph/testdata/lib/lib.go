package lib

var sink int

func Helper(n int) { sink += n }

func Deep(t int) { leaf(t) }

func leaf(t int) { sink += t }
