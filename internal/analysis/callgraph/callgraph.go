// Package callgraph is the interprocedural core of the nocvet
// framework: a static call graph over every loaded unit, with
// reachability from annotated roots and shortest call chains for
// diagnostics.
//
// Before PR 10 each whole-module analyzer (hotalloc) grew its own
// ad-hoc walk; the shardsafe family needs the same machinery plus
// reference edges, so the graph lives here and analyzers share it.
//
// Two edge kinds exist:
//
//   - call edges — statically resolvable calls: plain function calls
//     and method calls whose callee the type checker names.  Calls
//     through interfaces and func values stay unresolved (the nilhook
//     analyzer owns exactly those shapes).
//   - reference edges — a function or method *mentioned* without being
//     called: a method value bound to a struct field
//     (`e.recvFn = e.recvTile`) or passed as an argument
//     (`pool.Run(n, e.moveFn)`).  A referenced function is assumed
//     callable wherever the reference escapes, so reachability follows
//     these edges too; without them the sharded stepping path — tile
//     closures invoked by the worker pool — was invisible to hotalloc.
//
// Identity is the cross-package-stable Key (defining package path,
// receiver type, name): objects for the same method differ between a
// package's own type-check and an importer's export data, but their
// printed identity does not.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"surfbless/internal/analysis"
)

// Node is one function declaration with a body.
type Node struct {
	// Decl is the declaration's syntax.
	Decl *ast.FuncDecl
	// Unit owns the declaration.
	Unit *analysis.Unit
	// Obj is the declared function object (from the owning unit's own
	// type-check, not export data).
	Obj *types.Func
	// Key is Key(Obj), cached.
	Key string
}

// Edge is one outgoing call or reference from a node.
type Edge struct {
	// Callee is the target's Key.  The target may have no Node when its
	// syntax is not loaded (stdlib, out-of-pattern packages).
	Callee string
	// Pos is the call or reference site.
	Pos token.Pos
	// Ref marks a reference edge (method/function value mention) rather
	// than a direct call.
	Ref bool
}

// Graph is the module's static call graph.
type Graph struct {
	nodes map[string]*Node
	edges map[string][]Edge
	order []string // node keys, deterministic
}

// Build indexes every function declaration of the units and scans each
// body for call and reference edges.
func Build(units []*analysis.Unit) *Graph {
	g := &Graph{nodes: make(map[string]*Node), edges: make(map[string][]Edge)}
	for _, u := range units {
		for _, file := range u.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := u.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &Node{Decl: fd, Unit: u, Obj: obj, Key: Key(obj)}
				g.nodes[n.Key] = n
				g.order = append(g.order, n.Key)
			}
		}
	}
	sort.Strings(g.order)
	for _, k := range g.order {
		g.edges[k] = scanEdges(g.nodes[k])
	}
	return g
}

// scanEdges collects the outgoing edges of one function body: static
// callees of every call, plus reference edges for functions mentioned
// outside call position.
func scanEdges(n *Node) []Edge {
	info := n.Unit.Info
	// Idents serving as the Fun of a call are not references.
	calleeIdents := make(map[*ast.Ident]bool)
	var edges []Edge
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		id := calleeIdent(call)
		if id == nil {
			return true
		}
		calleeIdents[id] = true
		if fn := StaticCallee(info, call); fn != nil {
			edges = append(edges, Edge{Callee: Key(fn), Pos: call.Pos()})
		}
		return true
	})
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		id, ok := node.(*ast.Ident)
		if !ok || calleeIdents[id] {
			return true
		}
		fn, ok := info.Uses[id].(*types.Func)
		if !ok {
			return true
		}
		edges = append(edges, Edge{Callee: Key(fn), Pos: id.Pos(), Ref: true})
		return true
	})
	return edges
}

// calleeIdent returns the identifier naming a call's callee, nil for
// calls through arbitrary expressions.
func calleeIdent(call *ast.CallExpr) *ast.Ident {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun
	case *ast.SelectorExpr:
		return fun.Sel
	}
	return nil
}

// StaticCallee resolves the function or method a call statically
// invokes, or nil for dynamic calls (func values and interface
// methods) and non-call expressions (type conversions, builtins).
// Interface method calls DO resolve to a *types.Func in info.Uses —
// the abstract method — but dispatch dynamically, so they count as
// unresolved here.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	id := calleeIdent(call)
	if id == nil {
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	if fn == nil || interfaceMethod(fn) {
		return nil
	}
	return fn.Origin()
}

// interfaceMethod reports whether fn is an abstract interface method.
func interfaceMethod(fn *types.Func) bool {
	sig, _ := fn.Type().(*types.Signature)
	return sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type())
}

// Node returns the indexed declaration for key, nil when its syntax is
// not loaded.
func (g *Graph) Node(key string) *Node { return g.nodes[key] }

// Funcs returns every indexed node in deterministic (key) order.
func (g *Graph) Funcs() []*Node {
	out := make([]*Node, len(g.order))
	for i, k := range g.order {
		out[i] = g.nodes[k]
	}
	return out
}

// Callees returns the outgoing edges of key in source order.
func (g *Graph) Callees(key string) []Edge { return g.edges[key] }

// Reach is the result of a reachability walk: which nodes a root set
// reaches, and one shortest call chain per node.
type Reach struct {
	parent  map[string]string
	visited map[string]bool
	order   []string
}

// Reach walks the graph breadth-first from roots (following call and
// reference edges alike) and records one shortest discovery chain per
// reached node.  Roots are visited in the given order; pass them
// sorted for deterministic results.
func (g *Graph) Reach(roots []string) *Reach {
	r := &Reach{parent: make(map[string]string), visited: make(map[string]bool)}
	var queue []string
	for _, k := range roots {
		if g.nodes[k] == nil || r.visited[k] {
			continue
		}
		r.visited[k] = true
		r.order = append(r.order, k)
		queue = append(queue, k)
	}
	for len(queue) > 0 {
		k := queue[0]
		queue = queue[1:]
		for _, e := range g.edges[k] {
			if r.visited[e.Callee] || g.nodes[e.Callee] == nil {
				continue
			}
			r.visited[e.Callee] = true
			r.parent[e.Callee] = k
			r.order = append(r.order, e.Callee)
			queue = append(queue, e.Callee)
		}
	}
	return r
}

// Visited reports whether key was reached.
func (r *Reach) Visited(key string) bool { return r.visited[key] }

// Order returns the reached keys in BFS discovery order.
func (r *Reach) Order() []string { return r.order }

// Chain renders the shortest discovered root→key call path for
// diagnostics, eliding interior hops past maxHops names.
func (r *Reach) Chain(g *Graph, key string) string {
	var names []string
	for k := key; ; {
		if n := g.nodes[k]; n != nil {
			names = append(names, DisplayName(n.Obj))
		} else {
			names = append(names, k)
		}
		p, ok := r.parent[k]
		if !ok {
			break
		}
		k = p
	}
	// names is leaf..root; render root → leaf, capped for sanity.
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	const maxHops = 6
	if len(names) > maxHops {
		names = append([]string{names[0], "…"}, names[len(names)-maxHops+2:]...)
	}
	return strings.Join(names, " → ")
}

// Key is a cross-package-stable identity for a function or method: the
// defining package path, receiver type name if any, and function name.
func Key(fn *types.Func) string {
	fn = fn.Origin()
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := types.Unalias(sig.Recv().Type())
		if p, ok := t.(*types.Pointer); ok {
			t = types.Unalias(p.Elem())
		}
		if n, ok := t.(*types.Named); ok {
			n = n.Origin()
			if pkg := n.Obj().Pkg(); pkg != nil {
				return pkg.Path() + "." + n.Obj().Name() + "." + fn.Name()
			}
		}
		return types.TypeString(t, nil) + "." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	return fn.Name()
}

// DisplayName renders a function for messages: pkg.(*Recv).Name.
func DisplayName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := types.Unalias(sig.Recv().Type())
		star := ""
		if p, ok := t.(*types.Pointer); ok {
			t = types.Unalias(p.Elem())
			star = "*"
		}
		if n, ok := t.(*types.Named); ok {
			pkgName := ""
			if pkg := n.Obj().Pkg(); pkg != nil {
				pkgName = pkg.Name() + "."
			}
			return fmt.Sprintf("%s(%s%s).%s", pkgName, star, n.Obj().Name(), fn.Name())
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
