// Package racy is the deliberately broken fixture: every write or call
// here that escapes the tile must be flagged with the exact function
// chain from the phase root.
package racy

import (
	"nocvet.example/internal/fault"
	"nocvet.example/internal/power"
	"nocvet.example/internal/probe"
	"nocvet.example/internal/shard"
	"nocvet.example/internal/stats"
	"nocvet.example/obs"
)

// order records delivery order across all tiles — package-level, so
// appending from a worker is a data race.
var order []int

// noter is an interface-typed observer: calls through it dispatch
// dynamically even though the type checker names the abstract method.
type noter interface {
	Note(id int)
}

type node struct {
	seen int
	buf  []int
}

type Eng struct {
	nodes  []*node
	tiles  int
	shNow  int64
	total  int
	armed  int
	log    []int
	seenBy map[int]int
	meter  *power.Meter
	col    *stats.Collector
	probe  *probe.Probe
	ctr    *obs.Counter
	inj    *fault.Injector
	sink   func(id int)
	isink  noter
}

//shard:phase(receive)
func (e *Eng) recvTile(t int) {
	lo, hi := shard.Range(len(e.nodes), e.tiles, t)
	for id := lo; id < hi; id++ {
		e.drain(e.nodes[id])
	}
	for _, n := range e.nodes { // every node, not the tile's slice
		n.seen++ // want "unconfined write to n\\.seen in tile-parallel phase receive \\(via racy\\.\\(\\*Eng\\)\\.recvTile\\)"
	}
}

// drain is one call deep: the finding's chain must name it.
func (e *Eng) drain(n *node) {
	n.buf = n.buf[:0]
	e.total++ // want "unconfined write to e\\.total in tile-parallel phase receive \\(via racy\\.\\(\\*Eng\\)\\.recvTile → racy\\.\\(\\*Eng\\)\\.drain\\)"
}

//shard:phase(resolve)
func (e *Eng) resolveTile(t int) {
	lo, hi := shard.Range(len(e.nodes), e.tiles, t)
	for id := lo; id < hi; id++ {
		order = append(order, id) // want "unconfined write to package-level variable order in tile-parallel phase resolve"
		e.col.Injected(e.shNow)   // want "stats\\.\\(\\*Collector\\)\\.Injected folds into shared aggregate state and is effects-phase-only, but is reached in tile-parallel phase resolve"
		e.meter.Allocation(1)     // want "power\\.\\(\\*Meter\\)\\.Allocation folds into shared aggregate state and is effects-phase-only"
		e.sink(id)                // want "dynamic call through shared e\\.sink in tile-parallel phase resolve"
		e.isink.Note(id)          // want "dynamic call through shared e\\.isink\\.Note in tile-parallel phase resolve"
		e.seenBy[t] = id          // want "unconfined write to e\\.seenBy\\[t\\] in tile-parallel phase resolve"
		e.log = append(e.log, id) // want "unconfined write to e\\.log in tile-parallel phase resolve"
	}
	e.probe.Flush() // want "probe\\.\\(\\*Probe\\)\\.Flush folds into shared aggregate state and is effects-phase-only"
	obs.Record(e.ctr)
}

// armTile's fault guard only short-circuits what follows the nil
// check: the leading conjunct runs on every tile and must be walked.
//
//shard:phase(resolve)
func (e *Eng) armTile(t int) {
	if e.bump() && e.inj != nil {
		return
	}
}

func (e *Eng) bump() bool {
	e.armed++ // want "unconfined write to e\\.armed in tile-parallel phase resolve \\(via racy\\.\\(\\*Eng\\)\\.armTile → racy\\.\\(\\*Eng\\)\\.bump\\)"
	return e.armed > 0
}

// budgetTile violates the root contract: with two integer parameters
// the tile index is ambiguous, so the root is reported and skipped —
// the write below must NOT be flagged (budget is not proven
// tile-derived, but nothing here was analyzed).
//
//shard:phase(receive)
func (e *Eng) budgetTile(t, budget int) { // want "tile-parallel phase root racy\\.\\(\\*Eng\\)\\.budgetTile has 2 integer parameters; the //shard:phase contract allows exactly one \\(the tile index\\)"
	e.nodes[budget].seen++
}

//shard:phase(flush) // want "unknown phase \"flush\" in //shard:phase annotation"
func (e *Eng) flushTile(t int) {}
