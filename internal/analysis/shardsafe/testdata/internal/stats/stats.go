// Package stats is the testdata stand-in for the collector lifecycle
// aggregates (policy: effects-only).
package stats

type Collector struct {
	inj, eject int
}

func (c *Collector) Injected(now int64) { c.inj++ }

func (c *Collector) Ejected(now int64) { c.eject++ }
