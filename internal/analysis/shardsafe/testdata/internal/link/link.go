// Package link is the testdata stand-in for the repository's delay≥1
// link lines: the sanctioned cross-tile channel (policy: safe).
package link

type Line struct {
	buf []int
}

func (l *Line) Send(v int, now int64) { l.buf = append(l.buf, v) }

func (l *Line) RecvInto(dst []int, now int64) []int {
	dst = append(dst, l.buf...)
	l.buf = l.buf[:0]
	return dst
}

func (l *Line) Idle() bool { return len(l.buf) == 0 }
