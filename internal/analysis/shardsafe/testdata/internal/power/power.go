// Package power is the testdata stand-in for the energy meter
// (policy: effects-only).
package power

type Meter struct {
	e float64
}

func (m *Meter) BufferWrite(n int) { m.e += float64(n) }

func (m *Meter) Allocation(n int) { m.e += float64(n) }
