// Package shard is the testdata stand-in for the tile partitioner;
// Range results are tile-derived indexes.
package shard

func Range(n, k, t int) (lo, hi int) { return t * n / k, (t + 1) * n / k }
