// Package packet is the testdata stand-in for packets and the
// free-list (FreeList methods: effects-only).
package packet

type Packet struct {
	Hops int
}

type FreeList struct {
	free []*Packet
}

func (f *FreeList) Put(p *Packet) { f.free = append(f.free, p) }

func (f *FreeList) Get() *Packet {
	if n := len(f.free); n > 0 {
		p := f.free[n-1]
		f.free = f.free[:n-1]
		return p
	}
	return &Packet{}
}
