// Package probe is the testdata stand-in for the event probe: Traverse
// appends to per-tile ring segments (safe), Flush folds them into the
// shared aggregate (effects-only).
package probe

type Probe struct {
	n     int
	total int
}

func (p *Probe) Traverse(a, b int) { p.n++ }

func (p *Probe) Flush() { p.total += p.n; p.n = 0 }
