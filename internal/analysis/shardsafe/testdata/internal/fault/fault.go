// Package fault is the testdata stand-in for the fault injector; a
// non-nil injector forces the serial walk, so `X != nil` guards mark
// serial-only code.
package fault

type Injector struct {
	down map[int]bool
}

func (i *Injector) LinkDown(a, b int) bool { return i.down[a*64+b] }

func (i *Injector) Frozen(id int, now int64) bool { return i.down[id] }
