// Package fab is the clean fixture: a miniature two-phase fabric that
// uses every sanctioned confinement idiom and must produce zero
// findings.
package fab

import (
	"nocvet.example/internal/fault"
	"nocvet.example/internal/link"
	"nocvet.example/internal/packet"
	"nocvet.example/internal/power"
	"nocvet.example/internal/probe"
	"nocvet.example/internal/shard"
	"nocvet.example/internal/stats"
	"nocvet.example/obs"
)

type lifeEvt struct {
	eject bool
	node  int
}

type tileFX struct {
	direct bool
	bufW   int64
	evts   []lifeEvt
	rbuf   []int
}

type node struct {
	id      int
	fifo    []int
	credits int
	in, out *link.Line
	ctr     obs.Counter
}

type Eng struct {
	nodes  []*node
	fxs    []tileFX
	tiles  int
	shNow  int64
	epoch  int64
	meter  *power.Meter
	col    *stats.Collector
	probe  *probe.Probe
	free   *packet.FreeList
	faults *fault.Injector
	sink   func(id int, now int64)
}

// recvTile drains one tile's inbound lines.
//
//shard:phase(receive)
func (e *Eng) recvTile(t int) {
	lo, hi := shard.Range(len(e.nodes), e.tiles, t)
	fx := &e.fxs[t]
	for _, n := range e.nodes[lo:hi] {
		e.receive(n, e.shNow, fx)
	}
	if t == 0 {
		e.epoch = e.shNow //nocvet:shard tile 0 is the sole writer; readers wait for the barrier
	}
}

func (e *Eng) receive(n *node, now int64, fx *tileFX) {
	fx.rbuf = n.in.RecvInto(fx.rbuf[:0], now)
	for _, v := range fx.rbuf {
		n.fifo = append(n.fifo, v)
	}
	if fx.direct {
		e.meter.BufferWrite(1)
	} else {
		fx.bufW++
	}
}

// moveTile forwards one tile's head-of-line values.
//
//shard:phase(resolve)
func (e *Eng) moveTile(t int) {
	lo, hi := shard.Range(len(e.nodes), e.tiles, t)
	for id := lo; id < hi; id++ {
		e.move(e.nodes[id], e.shNow, &e.fxs[t])
	}
}

func (e *Eng) move(n *node, now int64, fx *tileFX) {
	if e.faults != nil && e.faults.Frozen(n.id, now) {
		// Serial-only: an armed injector forces the serial walk, so
		// touching the aggregates inline here is legal.
		e.col.Ejected(now)
		e.free.Put(&packet.Packet{})
		return
	}
	if len(n.fifo) == 0 {
		return
	}
	v := n.fifo[0]
	n.fifo = n.fifo[:copy(n.fifo, n.fifo[1:])]
	n.credits--
	n.out.Send(v, now)
	if e.probe != nil {
		e.probe.Traverse(n.id, v)
	}
	if fx.direct {
		e.col.Injected(now)
		if e.sink != nil {
			e.sink(n.id, now)
		}
	} else {
		fx.evts = append(fx.evts, lifeEvt{eject: false, node: n.id})
	}
	obs.Reset(&n.ctr)
}

// applyFX replays one tile's deferred effects at the barrier.
//
//shard:phase(effects)
func (e *Eng) applyFX(fx *tileFX, now int64) {
	e.meter.BufferWrite(int(fx.bufW))
	fx.bufW = 0
	for _, ev := range fx.evts {
		if ev.eject {
			e.col.Ejected(now)
		} else {
			e.col.Injected(now)
		}
		if e.sink != nil {
			e.sink(ev.node, now)
		}
	}
	fx.evts = fx.evts[:0]
	e.free.Put(&packet.Packet{})
	if e.probe != nil {
		e.probe.Flush()
	}
}
