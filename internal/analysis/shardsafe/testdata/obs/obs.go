// Package obs exists to prove findings cross package boundaries: the
// racy fabric hands it a pointer into shared state one call deep.
package obs

type Counter struct {
	n int
}

func Record(c *Counter) {
	c.n++ // want "unconfined write to c\\.n in tile-parallel phase resolve \\(via racy\\.\\(\\*Eng\\)\\.resolveTile → obs\\.Record\\)"
}

// Reset is identical in shape but only ever called with tile-local
// state, so it must stay silent.
func Reset(c *Counter) {
	c.n = 0
}
