// Package shardsafe statically proves the sharded two-phase stepping
// invariant of DESIGN.md §17: during the tile-parallel phases of a
// fabric's step (receive, resolve) no worker may touch state outside
// its own tile except through the two sanctioned channels — the tile's
// deferred-effect accumulator (replayed serially in the effects phase)
// and a delay≥1 link.Line (whose single-reader/single-writer schedule
// the phases enforce by construction).
//
// Fabrics opt in by annotating their phase entry points (see
// analysis.ParsePhase):
//
//	//shard:phase(receive)
//	func (e *Engine) recvTile(t int) { ... }
//
// From each annotated tile-parallel root the analyzer walks the static
// call graph (internal/analysis/callgraph) context-sensitively,
// classifying every reachable value by the root of its reference
// chain:
//
//	shared — fabric-global: the root's receiver, package-level
//	         variables, and anything reached from them
//	tile   — an integer derived from the root's tile index parameter —
//	         its sole integer parameter — directly, through
//	         shard.Range, or by arithmetic on such values
//	safe   — tile-local: locals, fresh allocations, parameters bound
//	         to safe arguments, and — the crux — elements of shared
//	         slices or arrays subscripted or sliced by tile-derived
//	         indexes (maps never: distinct keys do not confine
//	         concurrent map writes)
//
// A write whose destination classifies as shared is a finding, with
// the call chain from the phase root to the write site.  So is a call
// that cannot run tile-parallel: the effects-only surfaces of the
// policy table below, and any dynamic call through shared state
// (observer hooks like a fabric's sink field).
//
// Two guard idioms mark code that never runs tile-parallel, and their
// guarded blocks are skipped:
//
//   - `if fx.direct { ... }` — a bool field named direct on a safe
//     (tile-local) value selects the serial fast path that applies
//     effects inline instead of deferring them;
//   - any condition with a conjunct `X != nil` where X is a
//     *fault.Injector — the fabrics force the serial walk whenever an
//     injector is armed, and && short-circuits the remaining conjuncts
//     behind the nil check.  Conjuncts BEFORE the nil check evaluate
//     unconditionally, so those are still walked.
//
// Calls into sibling instrumentation packages resolve against a policy
// table before any descent, so analyzing a package subset reports
// exactly what analyzing ./... reports:
//
//	internal/link    Line methods        safe (delay≥1 lines are the
//	                                     sanctioned cross-tile channel)
//	internal/probe   Flush               effects-only
//	                 everything else     safe (per-tile ring segments)
//	internal/stats   everything          effects-only (collector and
//	                                     tracer lifecycle aggregates)
//	internal/power   everything          effects-only (meter counters)
//	internal/packet  FreeList methods    effects-only (free-list reuse)
//	internal/shard   Range               safe (pure index arithmetic)
//
// Functions with loaded syntax and no policy are descended into with
// the caller's argument classes; functions without syntax (stdlib,
// unloaded dependencies) are assumed not to reach fabric state.
//
// Findings report under the category "shard"; a `//nocvet:shard
// <reason>` directive on the offending line waives one after human
// proof of confinement.
package shardsafe

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"surfbless/internal/analysis"
	"surfbless/internal/analysis/callgraph"
)

// Analyzer flags tile-parallel phase code that can reach non-tile-local
// state.
var Analyzer = &analysis.Analyzer{
	Name:      "shardsafe",
	Doc:       "writes and effects-only calls in tile-parallel phases must stay tile-confined (deferred effects or delay≥1 links)",
	RunModule: run,
}

// class is the confinement lattice.
type class int

const (
	// classSafe marks tile-local values: writes allowed.
	classSafe class = iota
	// classTile marks integers derived from the tile index: subscripting
	// a shared slice with one yields a tile-local element.
	classTile
	// classShared marks fabric-global values: writes and dynamic calls
	// through them are findings.
	classShared
)

func run(pass *analysis.ModulePass) error {
	g := callgraph.Build(pass.Units)
	c := &checker{pass: pass, graph: g, memo: make(map[string]bool)}
	// Funcs is key-sorted, so root order — and with it chain choice and
	// memoization — is deterministic.
	for _, n := range g.Funcs() {
		name, pos, ok := analysis.ParsePhase(n.Decl.Doc)
		if !ok {
			continue
		}
		if name == "" {
			pass.Reportf(pos, "shard", "malformed //shard:phase annotation (missing closing parenthesis)")
			continue
		}
		if !analysis.ValidPhase(name) {
			pass.Reportf(pos, "shard", "unknown phase %q in //shard:phase annotation (valid: receive, resolve, effects)", name)
			continue
		}
		if !analysis.TileParallel(name) {
			// effects runs serially at the barrier; nothing to confine.
			continue
		}
		c.walkRoot(n, name)
	}
	return nil
}

type checker struct {
	pass  *analysis.ModulePass
	graph *callgraph.Graph
	// memo records (function, phase, context classes) tuples already
	// walked, bounding the context-sensitive exploration and making
	// recursion terminate.
	memo map[string]bool
}

// walkRoot analyzes one tile-parallel entry point: the receiver is the
// shared fabric, and the sole integer parameter is the tile index.  A
// root with several integer parameters is reported and skipped —
// treating every one as tile-derived would let a non-index integer
// (a budget, a count) launder shared subscripts to safe.
func (c *checker) walkRoot(n *callgraph.Node, phase string) {
	env := make(map[*types.Var]class)
	sig, _ := n.Obj.Type().(*types.Signature)
	if sig == nil {
		return
	}
	if r := sig.Recv(); r != nil {
		env[r] = classShared
	}
	var tileIdx []*types.Var
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if b, ok := p.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
			tileIdx = append(tileIdx, p)
		}
	}
	if len(tileIdx) > 1 {
		c.pass.Reportf(n.Decl.Name.Pos(), "shard",
			"tile-parallel phase root %s has %d integer parameters; the //shard:phase contract allows exactly one (the tile index)",
			callgraph.DisplayName(n.Obj), len(tileIdx))
		return
	}
	if len(tileIdx) == 1 {
		env[tileIdx[0]] = classTile
	}
	w := &walker{c: c, node: n, phase: phase, env: env,
		stack: []string{callgraph.DisplayName(n.Obj)}}
	w.block(n.Decl.Body)
}

// walker analyzes one function body under one calling context.
type walker struct {
	c     *checker
	node  *callgraph.Node
	phase string
	env   map[*types.Var]class
	// stack is the call chain from the phase root, for diagnostics.
	stack []string
}

func (w *walker) info() *types.Info { return w.node.Unit.Info }

func (w *walker) path() string { return strings.Join(w.stack, " → ") }

func (w *walker) report(pos token.Pos, format string, args ...any) {
	w.c.pass.Reportf(pos, "shard", format, args...)
}

// ---- statements ----

func (w *walker) block(b *ast.BlockStmt) {
	if b == nil {
		return
	}
	for _, s := range b.List {
		w.stmt(s)
	}
}

func (w *walker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.BlockStmt:
		w.block(s)
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.AssignStmt:
		w.assign(s)
	case *ast.IncDecStmt:
		w.expr(s.X)
		w.write(s.X, s.X.Pos())
	case *ast.IfStmt:
		w.ifStmt(s)
	case *ast.ForStmt:
		w.stmt(s.Init)
		if s.Cond != nil {
			w.expr(s.Cond)
		}
		w.stmt(s.Post)
		w.block(s.Body)
	case *ast.RangeStmt:
		w.rangeStmt(s)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e)
		}
	case *ast.DeclStmt:
		w.declStmt(s)
	case *ast.SwitchStmt:
		w.stmt(s.Init)
		if s.Tag != nil {
			w.expr(s.Tag)
		}
		for _, cc := range s.Body.List {
			cl := cc.(*ast.CaseClause)
			for _, e := range cl.List {
				w.expr(e)
			}
			for _, st := range cl.Body {
				w.stmt(st)
			}
		}
	case *ast.TypeSwitchStmt:
		w.typeSwitch(s)
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			comm := cc.(*ast.CommClause)
			w.stmt(comm.Comm)
			for _, st := range comm.Body {
				w.stmt(st)
			}
		}
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
		if w.classOf(s.Chan) == classShared {
			w.report(s.Arrow, "send on shared channel %s in tile-parallel phase %s (via %s)",
				types.ExprString(s.Chan), w.phase, w.path())
		}
	case *ast.DeferStmt:
		w.call(s.Call)
	case *ast.GoStmt:
		w.call(s.Call)
	case *ast.LabeledStmt:
		w.stmt(s.Stmt)
	case *ast.BranchStmt, *ast.EmptyStmt:
	}
}

func (w *walker) declStmt(s *ast.DeclStmt) {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for _, v := range vs.Values {
			w.expr(v)
		}
		for i, name := range vs.Names {
			obj, _ := w.info().Defs[name].(*types.Var)
			if obj == nil {
				continue
			}
			cl := classSafe
			if len(vs.Values) == len(vs.Names) {
				cl = w.classOf(vs.Values[i])
			}
			w.env[obj] = cl
		}
	}
}

func (w *walker) typeSwitch(s *ast.TypeSwitchStmt) {
	w.stmt(s.Init)
	xc := classSafe
	switch a := s.Assign.(type) {
	case *ast.AssignStmt:
		if len(a.Rhs) == 1 {
			if ta, ok := ast.Unparen(a.Rhs[0]).(*ast.TypeAssertExpr); ok {
				w.expr(ta.X)
				xc = w.classOf(ta.X)
			}
		}
	case *ast.ExprStmt:
		if ta, ok := ast.Unparen(a.X).(*ast.TypeAssertExpr); ok {
			w.expr(ta.X)
			xc = w.classOf(ta.X)
		}
	}
	for _, cc := range s.Body.List {
		cl := cc.(*ast.CaseClause)
		if v, ok := w.info().Implicits[cl].(*types.Var); ok {
			w.env[v] = xc
		}
		for _, st := range cl.Body {
			w.stmt(st)
		}
	}
}

// ifStmt applies the two serial-context guard idioms: bodies behind a
// fault-injector nil check or behind fx.direct never run tile-parallel
// and are skipped (their else branches are the parallel path and are
// checked).
func (w *walker) ifStmt(s *ast.IfStmt) {
	w.stmt(s.Init)
	if leading, ok := w.faultGuard(s.Cond); ok {
		// && short-circuits only what FOLLOWS the nil check: trailing
		// conjuncts and the body evaluate with the injector armed
		// (serial) and are skipped, but conjuncts before the check run
		// tile-parallel unconditionally and must still be walked.
		for _, e := range leading {
			w.expr(e)
		}
	} else if !w.isDirectGuard(s.Cond) {
		w.expr(s.Cond)
		w.block(s.Body)
	}
	w.stmt(s.Else)
}

// faultGuard reports whether cond has a conjunct `X != nil` with X a
// pointer to a type of an internal/fault package, and returns the
// conjuncts evaluated before the first such check — the ones not
// protected by its short-circuit.
func (w *walker) faultGuard(e ast.Expr) (leading []ast.Expr, ok bool) {
	b, isBin := ast.Unparen(e).(*ast.BinaryExpr)
	if !isBin {
		return nil, false
	}
	switch b.Op {
	case token.LAND:
		if l, ok := w.faultGuard(b.X); ok {
			return l, true
		}
		if l, ok := w.faultGuard(b.Y); ok {
			return append([]ast.Expr{b.X}, l...), true
		}
		return nil, false
	case token.NEQ:
		if (w.isFaultPtr(b.X) && w.isNil(b.Y)) || (w.isFaultPtr(b.Y) && w.isNil(b.X)) {
			return nil, true
		}
	}
	return nil, false
}

func (w *walker) isFaultPtr(e ast.Expr) bool {
	ptr, ok := types.Unalias(w.info().TypeOf(e)).(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := types.Unalias(ptr.Elem()).(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pathIs(pkg.Path(), "internal/fault")
}

func (w *walker) isNil(e ast.Expr) bool {
	return w.info().Types[ast.Unparen(e)].IsNil()
}

// isDirectGuard matches `X.direct` — the serial-context flag: a bool
// field named direct on a tile-local value (the fx accumulator).
func (w *walker) isDirectGuard(e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "direct" {
		return false
	}
	b, ok := types.Unalias(w.info().TypeOf(sel)).(*types.Basic)
	if !ok || b.Kind() != types.Bool {
		return false
	}
	return w.classOf(sel.X) == classSafe
}

func (w *walker) rangeStmt(s *ast.RangeStmt) {
	w.expr(s.X)
	xc := w.classOf(s.X)
	// The key ranges over the whole container, so it is NOT
	// tile-derived even when the container is; the element shares the
	// container's class.
	w.bindRangeVar(s.Key, classSafe, s.Tok)
	w.bindRangeVar(s.Value, xc, s.Tok)
	w.block(s.Body)
}

func (w *walker) bindRangeVar(e ast.Expr, cl class, tok token.Token) {
	if e == nil {
		return
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		if obj := w.objOf(id); obj != nil {
			if w.isPackageLevel(obj) {
				w.report(id.Pos(), "unconfined write to package-level variable %s in tile-parallel phase %s (via %s)",
					id.Name, w.phase, w.path())
				return
			}
			w.env[obj] = cl
		}
		return
	}
	// `for _, x.f = range ...`: a plain write.
	w.write(e, e.Pos())
}

func (w *walker) assign(s *ast.AssignStmt) {
	// `X = append(X, ...)` writes only into X's own backing array; walk
	// the appended values and let the LHS check below judge X once.
	selfAppend := false
	if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
		if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok && w.isBuiltin(call, "append") &&
			len(call.Args) > 0 && types.ExprString(call.Args[0]) == types.ExprString(s.Lhs[0]) {
			selfAppend = true
			w.expr(call.Args[0])
			for _, a := range call.Args[1:] {
				w.expr(a)
			}
		}
	}
	if !selfAppend {
		for _, r := range s.Rhs {
			w.expr(r)
		}
	}

	classes := make([]class, len(s.Lhs))
	switch {
	case selfAppend:
		call := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
		// The slice keeps its class; downgrading to "fresh call result"
		// would launder a shared slice into a safe one.
		classes[0] = w.classOf(call.Args[0])
	case len(s.Rhs) == 1 && len(s.Lhs) > 1:
		cl := classSafe
		if call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr); ok && isShardRange(callgraph.StaticCallee(w.info(), call)) {
			cl = classTile
		}
		for i := range classes {
			classes[i] = cl
		}
	default:
		for i := range s.Lhs {
			if i < len(s.Rhs) {
				classes[i] = w.classOf(s.Rhs[i])
			} else {
				classes[i] = classSafe
			}
		}
	}

	for i, l := range s.Lhs {
		if id, ok := ast.Unparen(l).(*ast.Ident); ok {
			if id.Name == "_" {
				continue
			}
			obj := w.objOf(id)
			if obj == nil {
				continue
			}
			if w.isPackageLevel(obj) {
				w.report(l.Pos(), "unconfined write to package-level variable %s in tile-parallel phase %s (via %s)",
					id.Name, w.phase, w.path())
				continue
			}
			if s.Tok == token.DEFINE || s.Tok == token.ASSIGN {
				w.env[obj] = classes[i]
			}
			continue
		}
		w.expr(l)
		w.write(l, l.Pos())
	}
}

// write reports lhs when its reference chain roots in shared state and
// is not re-confined by a tile-derived subscript along the way.
func (w *walker) write(lhs ast.Expr, pos token.Pos) {
	if w.classOf(lhs) != classShared {
		return
	}
	w.report(pos, "unconfined write to %s in tile-parallel phase %s (via %s); defer it into the tile's fx or route it through a delay≥1 link",
		types.ExprString(ast.Unparen(lhs)), w.phase, w.path())
}

// ---- expressions and calls ----

func (w *walker) expr(e ast.Expr) {
	switch e := e.(type) {
	case nil:
	case *ast.CallExpr:
		w.call(e)
	case *ast.FuncLit:
		// A closure runs, at most, wherever it appears; its captures
		// keep their classes.
		w.block(e.Body)
	case *ast.ParenExpr:
		w.expr(e.X)
	case *ast.SelectorExpr:
		w.expr(e.X)
	case *ast.IndexExpr:
		w.expr(e.X)
		w.expr(e.Index)
	case *ast.IndexListExpr:
		w.expr(e.X)
		for _, i := range e.Indices {
			w.expr(i)
		}
	case *ast.SliceExpr:
		w.expr(e.X)
		w.expr(e.Low)
		w.expr(e.High)
		w.expr(e.Max)
	case *ast.StarExpr:
		w.expr(e.X)
	case *ast.UnaryExpr:
		w.expr(e.X)
	case *ast.BinaryExpr:
		w.expr(e.X)
		w.expr(e.Y)
	case *ast.KeyValueExpr:
		w.expr(e.Key)
		w.expr(e.Value)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			w.expr(el)
		}
	case *ast.TypeAssertExpr:
		w.expr(e.X)
	}
}

func (w *walker) isBuiltin(call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := w.info().Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

func (w *walker) call(call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := w.info().Uses[id].(*types.Builtin); ok {
			w.builtin(b.Name(), call)
			return
		}
	}
	if tv, ok := w.info().Types[call.Fun]; ok && tv.IsType() {
		// Conversion, not a call.
		for _, a := range call.Args {
			w.expr(a)
		}
		return
	}
	w.expr(call.Fun)
	fn := callgraph.StaticCallee(w.info(), call)
	if fn == nil {
		// Dynamic call.  Through shared state (a fabric's sink or hook
		// field) it hands control to an observer that may fold into
		// shared aggregates — effects-only.
		if fun := ast.Unparen(call.Fun); w.classOf(fun) == classShared {
			w.report(call.Pos(), "dynamic call through shared %s in tile-parallel phase %s (via %s): observer hand-offs are effects-phase-only",
				types.ExprString(fun), w.phase, w.path())
		}
		for _, a := range call.Args {
			w.expr(a)
		}
		return
	}
	for _, a := range call.Args {
		w.expr(a)
	}
	// Policy before descent: subset runs must match ./... runs.
	switch callPolicy(fn) {
	case policySafe:
		return
	case policyEffects:
		w.report(call.Pos(), "%s folds into shared aggregate state and is effects-phase-only, but is reached in tile-parallel phase %s (via %s); defer it into the tile's fx",
			callgraph.DisplayName(fn), w.phase, w.path())
		return
	}
	node := w.c.graph.Node(callgraph.Key(fn))
	if node == nil {
		// No syntax loaded (stdlib or out-of-pattern dependency):
		// assumed not to reach fabric state.
		return
	}
	w.descend(node, call)
}

func (w *walker) builtin(name string, call *ast.CallExpr) {
	for _, a := range call.Args {
		w.expr(a)
	}
	switch name {
	case "append", "copy", "delete":
		if len(call.Args) > 0 && w.classOf(call.Args[0]) == classShared {
			w.report(call.Pos(), "unconfined write through %s to shared %s in tile-parallel phase %s (via %s)",
				name, types.ExprString(ast.Unparen(call.Args[0])), w.phase, w.path())
		}
	}
}

// descend re-walks the callee's body with the caller's argument
// classes bound to its parameters (its own unit's objects — a
// cross-package callee resolves idents against its defining package's
// type-check, not the caller's import snapshot).
func (w *walker) descend(node *callgraph.Node, call *ast.CallExpr) {
	sig, _ := node.Obj.Type().(*types.Signature)
	if sig == nil || node.Decl.Body == nil {
		return
	}
	env := make(map[*types.Var]class)
	ctx := make([]class, 0, sig.Params().Len()+1)
	if r := sig.Recv(); r != nil {
		rc := classSafe
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			rc = w.classOf(sel.X)
		}
		env[r] = rc
		ctx = append(ctx, rc)
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		cl := classSafe
		if sig.Variadic() && i == params.Len()-1 {
			for j := i; j < len(call.Args); j++ {
				if w.classOf(call.Args[j]) == classShared {
					cl = classShared
				}
			}
		} else if i < len(call.Args) {
			cl = w.classOf(call.Args[i])
		}
		env[params.At(i)] = cl
		ctx = append(ctx, cl)
	}

	key := fmt.Sprintf("%s|%s|%v", node.Key, w.phase, ctx)
	if w.c.memo[key] {
		return
	}
	if len(w.stack)+1 > 40 {
		// Depth cap: bail WITHOUT memoizing, or a chain that first
		// reaches this context too deep would poison the memo and a
		// later shallower path would be skipped unwalked.
		return
	}
	w.c.memo[key] = true

	child := &walker{c: w.c, node: node, phase: w.phase, env: env,
		stack: append(append([]string{}, w.stack...), callgraph.DisplayName(node.Obj))}
	child.block(node.Decl.Body)
}

// ---- classification ----

func (w *walker) classOf(e ast.Expr) class {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := w.objOf(e)
		if obj == nil {
			return classSafe
		}
		if cl, ok := w.env[obj]; ok {
			return cl
		}
		if w.isPackageLevel(obj) {
			return classShared
		}
		return classSafe
	case *ast.SelectorExpr:
		// Package-qualified selectors root at the named object itself.
		if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			if _, ok := w.info().Uses[id].(*types.PkgName); ok {
				if v, ok := w.info().Uses[e.Sel].(*types.Var); ok && w.isPackageLevel(v) {
					return classShared
				}
				return classSafe
			}
		}
		return w.classOf(e.X)
	case *ast.IndexExpr:
		base := w.classOf(e.X)
		if base == classShared && w.classOf(e.Index) == classTile && w.isSliceOrArray(e.X) {
			// The tile-confinement rule: a shared slice subscripted by a
			// tile-derived index is this tile's own element.  Slices and
			// arrays only — distinct map keys do not confine (concurrent
			// map writes race regardless of key).
			return classSafe
		}
		return base
	case *ast.SliceExpr:
		base := w.classOf(e.X)
		if base == classShared && e.Low != nil && e.High != nil &&
			w.classOf(e.Low) == classTile && w.classOf(e.High) == classTile {
			return classSafe
		}
		return base
	case *ast.StarExpr:
		return w.classOf(e.X)
	case *ast.UnaryExpr:
		return w.classOf(e.X)
	case *ast.BinaryExpr:
		// Arithmetic on tile-derived integers stays tile-derived (loop
		// bounds like lo+1, hi-1).
		if w.classOf(e.X) == classTile || w.classOf(e.Y) == classTile {
			return classTile
		}
		return classSafe
	case *ast.TypeAssertExpr:
		return w.classOf(e.X)
	}
	// Calls, literals, closures: fresh values.
	return classSafe
}

func (w *walker) objOf(id *ast.Ident) *types.Var {
	if v, ok := w.info().Defs[id].(*types.Var); ok {
		return v
	}
	if v, ok := w.info().Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

func (w *walker) isPackageLevel(v *types.Var) bool {
	if v.IsField() || v.Pkg() == nil {
		return false
	}
	return v.Parent() == v.Pkg().Scope()
}

// isSliceOrArray reports whether e's underlying type is a slice,
// array, or pointer-to-array — the only index bases where distinct
// indexes name distinct memory.
func (w *walker) isSliceOrArray(e ast.Expr) bool {
	t := w.info().TypeOf(e)
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Array:
		return true
	case *types.Pointer:
		_, ok := u.Elem().Underlying().(*types.Array)
		return ok
	}
	return false
}

// ---- call policy ----

type policy int

const (
	policyNone policy = iota
	// policySafe calls are sanctioned in any phase and not descended
	// into.
	policySafe
	// policyEffects calls fold into shared aggregates and may only run
	// in the serial effects phase.
	policyEffects
)

// callPolicy classifies calls into the instrumentation packages by
// import-path suffix, so the analyzer applies identically to this
// module and to testdata modules mirroring its layout.
func callPolicy(fn *types.Func) policy {
	pkg := fn.Pkg()
	if pkg == nil {
		return policyNone
	}
	path := pkg.Path()
	switch {
	case pathIs(path, "internal/link"):
		if recvTypeName(fn) == "Line" {
			return policySafe
		}
	case pathIs(path, "internal/probe"):
		if fn.Name() == "Flush" {
			return policyEffects
		}
		return policySafe
	case pathIs(path, "internal/stats"):
		return policyEffects
	case pathIs(path, "internal/power"):
		return policyEffects
	case pathIs(path, "internal/packet"):
		if recvTypeName(fn) == "FreeList" {
			return policyEffects
		}
	case pathIs(path, "internal/shard"):
		if fn.Name() == "Range" {
			return policySafe
		}
	}
	return policyNone
}

func isShardRange(fn *types.Func) bool {
	return fn != nil && fn.Pkg() != nil && pathIs(fn.Pkg().Path(), "internal/shard") && fn.Name() == "Range"
}

func recvTypeName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return ""
	}
	t := types.Unalias(sig.Recv().Type())
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	if n, ok := t.(*types.Named); ok {
		return n.Origin().Obj().Name()
	}
	return ""
}

func pathIs(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}
