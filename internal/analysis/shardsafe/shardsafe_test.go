package shardsafe_test

import (
	"testing"

	"surfbless/internal/analysis/analysistest"
	"surfbless/internal/analysis/shardsafe"
)

// TestGolden runs the analyzer over the whole multi-package testdata
// module at once: the mini instrumentation packages, the clean fabric
// (zero findings), the racy fabric, and the aux package a racy chain
// crosses into.
func TestGolden(t *testing.T) {
	analysistest.Run(t, "testdata", shardsafe.Analyzer, "./...")
}
