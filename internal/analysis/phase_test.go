package analysis

import (
	"go/ast"
	"go/token"
	"testing"
)

func docGroup(lines ...string) *ast.CommentGroup {
	cg := &ast.CommentGroup{}
	for i, l := range lines {
		cg.List = append(cg.List, &ast.Comment{Slash: token.Pos(1 + i*200), Text: l})
	}
	return cg
}

func TestParsePhase(t *testing.T) {
	cases := []struct {
		doc  *ast.CommentGroup
		ok   bool
		name string
	}{
		{nil, false, ""},
		{docGroup("// ordinary doc comment"), false, ""},
		{docGroup("//shard:phase(receive)"), true, "receive"},
		{docGroup("//shard:phase(resolve)"), true, "resolve"},
		{docGroup("//shard:phase(effects)"), true, "effects"},
		// Doc prose around the annotation is fine.
		{docGroup("// recvTile drains one tile.", "//shard:phase(receive)"), true, "receive"},
		// Trailing commentary after the closing paren is ignored.
		{docGroup("//shard:phase(resolve) allocate/arbitrate/forward"), true, "resolve"},
		// CRLF survives.
		{docGroup("//shard:phase(receive)\r"), true, "receive"},
		// Present but malformed or unknown: ok=true so callers flag it.
		{docGroup("//shard:phase(bogus)"), true, "bogus"},
		{docGroup("//shard:phase(receive"), true, ""},
	}
	for _, c := range cases {
		name, pos, ok := ParsePhase(c.doc)
		if ok != c.ok || name != c.name {
			t.Errorf("ParsePhase(%v) = (%q, %v), want (%q, %v)", c.doc, name, ok, c.name, c.ok)
		}
		if ok && !pos.IsValid() {
			t.Errorf("ParsePhase(%v): annotation present but position invalid", c.doc)
		}
	}
}

func TestPhasePredicates(t *testing.T) {
	for _, p := range []string{PhaseReceive, PhaseResolve, PhaseEffects} {
		if !ValidPhase(p) {
			t.Errorf("ValidPhase(%q) = false", p)
		}
	}
	if ValidPhase("bogus") || ValidPhase("") {
		t.Error("ValidPhase accepts unknown names")
	}
	if !TileParallel(PhaseReceive) || !TileParallel(PhaseResolve) {
		t.Error("receive/resolve must be tile-parallel")
	}
	if TileParallel(PhaseEffects) {
		t.Error("effects is serial, not tile-parallel")
	}
}
