package hotalloc_test

import (
	"testing"

	"surfbless/internal/analysis/analysistest"
	"surfbless/internal/analysis/hotalloc"
)

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", hotalloc.Analyzer,
		"./internal/router/fab", "./internal/link")
}
