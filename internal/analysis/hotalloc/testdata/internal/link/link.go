// Package link is hotalloc testdata for the cross-package walk: its
// methods are only hot because a fabric's Step reaches them.
package link

// Line mirrors the real link package's receive buffer.
type Line struct{ buf []int }

// Recv reuses its own backing array: the append stays silent.
func (l *Line) Recv(in []int) {
	l.buf = append(l.buf[:0], in...)
	l.grow()
}

// grow allocates two packages away from the Step root; the finding
// must carry the full call chain.
func (l *Line) grow() {
	l.buf = make([]int, 8) // want `make allocates on the Step hot path \(reachable via fab\.\(\*Fabric\)\.Step → link\.\(\*Line\)\.Recv → link\.\(\*Line\)\.grow\)`
}
