// Package fab is hotalloc-analyzer testdata: a fabric whose Step
// reaches every flagged construct, plus the idioms that must stay
// silent.
package fab

import (
	"fmt"
	"sort"

	"nocvet.example/internal/link"
)

// Fabric is the root type: Step(now int64) matches the fabric
// contract's hot entry point.
type Fabric struct {
	scratch []int
	line    link.Line
}

// Step is the hot-path root.
func (f *Fabric) Step(now int64) {
	f.scratch = f.scratch[:0]
	for i := 0; i < 4; i++ {
		f.scratch = append(f.scratch, i) // self-append: amortized, allowed
	}
	f.route(now)
	f.misc("x", f.scratch)
	f.line.Recv(f.scratch)
	if bad(now) {
		panic(f.describe(now))
	}
}

// route holds the composite-construct findings.
func (f *Fabric) route(now int64) {
	tmp := make([]int, 4) // want `make allocates on the Step hot path`
	m := map[int]int{1: 2} // want `map literal allocates`
	s := []int{1, 2}       // want `slice literal allocates`
	p := &Fabric{}         // want `&composite literal escapes to the heap`
	fresh := append(s, 3)  // want `append into a fresh destination allocates`
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] }) // want `sort\.Slice allocates` `closure literal allocates`
	_, _, _, _ = m, p, fresh, now
}

// misc holds the call/statement findings.
func (f *Fabric) misc(name string, b []int) {
	n := new(Fabric)  // want `new allocates`
	raw := []byte(name) // want `string conversion allocates a copy`
	back := string(raw) // want `string conversion allocates a copy`
	msg := name + "!"   // want `string concatenation allocates`
	const folded = "a" + "b" // constant-folded: silent
	go f.route(0)    // want `go statement allocates a goroutine`
	defer f.route(0) // want `defer allocates its frame record`
	_, _, _, _, _ = n, back, msg, folded, b
}

func bad(now int64) bool { return now < 0 }

// describe is the waived cold path: it only runs while panicking.
func (f *Fabric) describe(now int64) string {
	//nocvet:alloc panic-only formatting, executed at most once per run
	return fmt.Sprintf("fabric wedged at cycle %d", now)
}

// Cold is never reachable from Step: its allocations are silent.
func Cold() []int { return make([]int, 128) }

// Reset is setup-path code, also unreachable from Step.
func (f *Fabric) Reset() { f.scratch = make([]int, 0, 16) }
