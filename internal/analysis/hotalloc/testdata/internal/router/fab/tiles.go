// Sharded exercises the interprocedural roots the call-only walk used
// to miss: tile functions reached through a reference edge (a method
// value handed to a dispatcher) and functions rooted purely by their
// //shard:phase annotation.
package fab

// Sharded is a second fabric whose Step dispatches tiles dynamically.
type Sharded struct {
	scratch []int
	evts    []int
	tiles   int
}

// runEach mimics the worker pool: it sees only a func value, so no
// static call edge reaches the tile body — the reference at the call
// site below is what keeps it hot.
func runEach(k int, fn func(int)) {
	for t := 0; t < k; t++ {
		fn(t)
	}
}

// Step hands drainTile to the dispatcher by method value.
func (s *Sharded) Step(now int64) {
	runEach(s.tiles, s.drainTile)
}

// drainTile is never called by name anywhere in the module.
func (s *Sharded) drainTile(t int) {
	s.scratch = append(s.scratch, t) // self-append: amortized, allowed
	s.fill(t)
}

// fill is one call deeper; the chain must thread the reference edge.
func (s *Sharded) fill(t int) {
	s.scratch = make([]int, t) // want `make allocates on the Step hot path \(reachable via fab\.\(\*Sharded\)\.Step → fab\.\(\*Sharded\)\.drainTile → fab\.\(\*Sharded\)\.fill\)`
}

// applyFX is rooted by its phase annotation alone: nothing in this
// module calls or references it.
//
//shard:phase(effects)
func (s *Sharded) applyFX(now int64) {
	s.evts = append(s.evts, int(now)) // self-append: amortized, allowed
	s.flush()
}

func (s *Sharded) flush() {
	_ = new(Sharded) // want `new allocates on the Step hot path \(reachable via fab\.\(\*Sharded\)\.applyFX → fab\.\(\*Sharded\)\.flush\)`
}
