// Package hotalloc implements the nocvet analyzer that keeps the
// fabric stepping hot path allocation-free at the source level.
//
// The simulator's steady-state stepping is exactly zero-alloc (the
// TestStepNoAlloc guard and the BenchmarkStep* suite prove it at run
// time), but those checks fire per-benchmark and only on exercised
// paths.  This analyzer enforces the property per-commit: it roots at
// every fabric's `Step(now int64)` method, walks the static call
// graph across all analyzed packages, and flags source constructs
// that heap-allocate:
//
//   - make, new, and &T{...} / slice / map composite literals
//   - append whose result is not reassigned to its own first operand
//     (the warm-up growth idiom `buf = append(buf, x)` amortizes to
//     zero and is allowed)
//   - closures (func literals capture by reference and escape)
//   - fmt.* calls, sort.Slice/SliceStable/Sort and friends
//   - string<->[]byte/[]rune conversions and non-constant string
//     concatenation
//   - go and defer statements
//
// The walk is intentionally static and conservative: calls through
// interfaces, func values and method values are not followed (the
// hook calls the nilhook analyzer covers are exactly of that shape,
// and their implementations live behind nil guards off the steady
// path).  Run it over the whole module (`nocvet ./...`) so
// cross-package callees — link receive, NI scheduling, stats
// recording — are in the graph.
//
// Allocations on provably cold paths (panic formatting on invariant
// violations, one-time lazy setup) carry `//nocvet:alloc <why>`.
package hotalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"surfbless/internal/analysis"
)

// Analyzer is the hot-path allocation checker.
var Analyzer = &analysis.Analyzer{
	Name:      "hotalloc",
	Doc:       "forbid heap-allocating constructs in code reachable from any fabric's Step method",
	RunModule: run,
}

// flaggedCalls maps stdlib package paths to the functions (or "*" for
// all) that allocate by design.
var flaggedCalls = map[string]map[string]bool{
	"fmt":  {"*": true},
	"sort": {"Slice": true, "SliceStable": true, "SliceIsSorted": true, "Sort": true, "Stable": true, "Strings": true, "Ints": true, "Float64s": true},
}

// funcInfo ties one function declaration to the unit owning it.
type funcInfo struct {
	decl *ast.FuncDecl
	unit *analysis.Unit
	obj  *types.Func
}

func run(pass *analysis.ModulePass) error {
	// Index every function declaration by a cross-package-stable key:
	// objects for the same method differ between a package's own
	// type-check and an importer's export data, but their printed
	// identity does not.
	index := make(map[string]*funcInfo)
	var roots []*funcInfo
	for _, u := range pass.Units {
		for _, file := range u.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := u.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &funcInfo{decl: fd, unit: u, obj: obj}
				index[funcKey(obj)] = fi
				if isStepRoot(fd, obj) {
					roots = append(roots, fi)
				}
			}
		}
	}
	sort.Slice(roots, func(i, j int) bool { return funcKey(roots[i].obj) < funcKey(roots[j].obj) })

	// Breadth-first reachability, remembering one shortest call chain
	// per function for the finding messages.
	parent := make(map[string]string)
	visited := make(map[string]bool)
	var queue []*funcInfo
	for _, r := range roots {
		k := funcKey(r.obj)
		if !visited[k] {
			visited[k] = true
			queue = append(queue, r)
		}
	}
	reported := make(map[token.Pos]bool)
	for len(queue) > 0 {
		fi := queue[0]
		queue = queue[1:]
		callees := scanFunc(pass, fi, chain(parent, funcKey(fi.obj), index), reported)
		for _, calleeKey := range callees {
			if visited[calleeKey] {
				continue
			}
			callee, ok := index[calleeKey]
			if !ok {
				continue // no syntax loaded for it (out of the analyzed set)
			}
			visited[calleeKey] = true
			parent[calleeKey] = funcKey(fi.obj)
			queue = append(queue, callee)
		}
	}
	return nil
}

// isStepRoot recognizes the fabric contract's hot entry point: a
// method named Step taking a single int64 cycle number.
func isStepRoot(fd *ast.FuncDecl, obj *types.Func) bool {
	if fd.Recv == nil || fd.Name.Name != "Step" {
		return false
	}
	sig := obj.Type().(*types.Signature)
	if sig.Params().Len() != 1 {
		return false
	}
	b, ok := types.Unalias(sig.Params().At(0).Type()).(*types.Basic)
	return ok && b.Kind() == types.Int64
}

// scanFunc reports allocating constructs in one reachable function and
// returns the keys of its statically resolvable callees.
func scanFunc(pass *analysis.ModulePass, fi *funcInfo, via string, reported map[token.Pos]bool) []string {
	var callees []string
	report := func(pos token.Pos, what string) {
		if reported[pos] {
			return
		}
		reported[pos] = true
		pass.Reportf(pos, "alloc", "%s on the Step hot path (%s); hoist it onto the router struct, reuse a scratch buffer, or waive a proven-cold site with //nocvet:alloc", what, via)
	}
	info := fi.unit.Info
	appendTargets := collectAppendTargets(fi.decl.Body)

	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			report(n.Pos(), "closure literal allocates")
			return false // the closure body is not on the steady path until called
		case *ast.GoStmt:
			report(n.Pos(), "go statement allocates a goroutine")
		case *ast.DeferStmt:
			report(n.Pos(), "defer allocates its frame record")
		case *ast.CompositeLit:
			switch types.Unalias(info.Types[n].Type).Underlying().(type) {
			case *types.Slice:
				report(n.Pos(), "slice literal allocates")
			case *types.Map:
				report(n.Pos(), "map literal allocates")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					report(n.Pos(), "&composite literal escapes to the heap")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && info.Types[n].Value == nil {
				if b, ok := types.Unalias(info.Types[n].Type).Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					report(n.Pos(), "string concatenation allocates")
				}
			}
		case *ast.CallExpr:
			callees = append(callees, scanCall(info, n, appendTargets, report)...)
		}
		return true
	})
	return callees
}

// scanCall classifies one call: a flagged construct, a flagged stdlib
// allocator, a conversion, or a statically resolvable callee to walk.
func scanCall(info *types.Info, call *ast.CallExpr, appendTargets map[*ast.CallExpr]string, report func(token.Pos, string)) []string {
	// Type conversions: string<->[]byte/[]rune copy their operand.
	if tv, ok := info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() {
		if len(call.Args) == 1 && conversionAllocates(tv.Type, info.Types[ast.Unparen(call.Args[0])].Type) {
			report(call.Pos(), "string conversion allocates a copy")
		}
		return nil
	}

	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}

	switch obj := info.Uses[id].(type) {
	case *types.Builtin:
		switch obj.Name() {
		case "make":
			report(call.Pos(), "make allocates")
		case "new":
			report(call.Pos(), "new allocates")
		case "append":
			if !selfAppend(call, appendTargets) {
				report(call.Pos(), "append into a fresh destination allocates")
			}
		}
	case *types.Func:
		obj = obj.Origin()
		if obj.Pkg() == nil {
			return nil
		}
		if names, ok := flaggedCalls[obj.Pkg().Path()]; ok {
			if names["*"] || names[obj.Name()] {
				report(call.Pos(), fmt.Sprintf("%s.%s allocates", obj.Pkg().Name(), obj.Name()))
			}
			return nil
		}
		return []string{funcKey(obj)}
	}
	return nil
}

// selfAppend recognizes the amortized-growth idioms whose steady
// state is allocation-free: the append result assigned back onto its
// own first operand, `buf = append(buf, ...)`, or onto the reslice of
// it, `buf = append(buf[:0], ...)`.
func selfAppend(call *ast.CallExpr, appendTargets map[*ast.CallExpr]string) bool {
	if len(call.Args) == 0 {
		return false
	}
	target, ok := appendTargets[call]
	if !ok {
		return false
	}
	arg := ast.Unparen(call.Args[0])
	if target == types.ExprString(arg) {
		return true
	}
	if se, ok := arg.(*ast.SliceExpr); ok && target == types.ExprString(ast.Unparen(se.X)) {
		return true
	}
	return false
}

// collectAppendTargets maps every call appearing as the i-th RHS of an
// assignment in body to the printed form of its i-th LHS.
func collectAppendTargets(body *ast.BlockStmt) map[*ast.CallExpr]string {
	targets := make(map[*ast.CallExpr]string)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
				targets[call] = types.ExprString(ast.Unparen(as.Lhs[i]))
			}
		}
		return true
	})
	return targets
}

// conversionAllocates reports whether converting from -> to copies
// backing storage (string <-> []byte / []rune).
func conversionAllocates(to, from types.Type) bool {
	if to == nil || from == nil {
		return false
	}
	toS := isString(to)
	fromS := isString(from)
	return (toS && isByteOrRuneSlice(from)) || (fromS && isByteOrRuneSlice(to))
}

func isString(t types.Type) bool {
	b, ok := types.Unalias(t).Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := types.Unalias(t).Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := types.Unalias(s.Elem()).Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// funcKey is a cross-package-stable identity for a function or
// method: the defining package path, receiver type name if any, and
// function name.
func funcKey(fn *types.Func) string {
	fn = fn.Origin()
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := types.Unalias(sig.Recv().Type())
		if p, ok := t.(*types.Pointer); ok {
			t = types.Unalias(p.Elem())
		}
		if n, ok := t.(*types.Named); ok {
			n = n.Origin()
			if pkg := n.Obj().Pkg(); pkg != nil {
				return pkg.Path() + "." + n.Obj().Name() + "." + fn.Name()
			}
		}
		return types.TypeString(t, nil) + "." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Path() + "." + fn.Name()
	}
	return fn.Name()
}

// displayName renders a function for messages: pkg.(*Recv).Name.
func displayName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := types.Unalias(sig.Recv().Type())
		star := ""
		if p, ok := t.(*types.Pointer); ok {
			t = types.Unalias(p.Elem())
			star = "*"
		}
		if n, ok := t.(*types.Named); ok {
			pkgName := ""
			if pkg := n.Obj().Pkg(); pkg != nil {
				pkgName = pkg.Name() + "."
			}
			return fmt.Sprintf("%s(%s%s).%s", pkgName, star, n.Obj().Name(), fn.Name())
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// chain renders the shortest discovered call path from a Step root to
// key, for finding messages.
func chain(parent map[string]string, key string, index map[string]*funcInfo) string {
	var names []string
	for k := key; ; {
		if fi, ok := index[k]; ok {
			names = append(names, displayName(fi.obj))
		} else {
			names = append(names, k)
		}
		p, ok := parent[k]
		if !ok {
			break
		}
		k = p
	}
	// names is leaf..root; render root → leaf, capped for sanity.
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	const maxHops = 6
	if len(names) > maxHops {
		names = append([]string{names[0], "…"}, names[len(names)-maxHops+2:]...)
	}
	return "reachable via " + strings.Join(names, " → ")
}
