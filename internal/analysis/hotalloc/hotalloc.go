// Package hotalloc implements the nocvet analyzer that keeps the
// fabric stepping hot path allocation-free at the source level.
//
// The simulator's steady-state stepping is exactly zero-alloc (the
// TestStepNoAlloc guard and the BenchmarkStep* suite prove it at run
// time), but those checks fire per-benchmark and only on exercised
// paths.  This analyzer enforces the property per-commit.  It roots at
//
//   - every fabric's `Step(now int64)` method, and
//   - every function carrying a //shard:phase annotation — the sharded
//     stepping tile bodies run every cycle but are invoked through
//     method values handed to the worker pool, so no static call
//     reaches them from Step;
//
// then walks the interprocedural call graph
// (internal/analysis/callgraph) across all analyzed packages —
// following both static calls and references (method values bound to
// fields or passed as arguments), so a tile function handed to a
// dispatcher stays hot one call deep and beyond — and flags source
// constructs that heap-allocate:
//
//   - make, new, and &T{...} / slice / map composite literals
//   - append whose result is not reassigned to its own first operand
//     (the warm-up growth idiom `buf = append(buf, x)` amortizes to
//     zero and is allowed)
//   - closures (func literals capture by reference and escape)
//   - fmt.* calls, sort.Slice/SliceStable/Sort and friends
//   - string<->[]byte/[]rune conversions and non-constant string
//     concatenation
//   - go and defer statements
//
// Calls through interfaces and func values remain unresolved (the hook
// calls the nilhook analyzer covers are exactly of that shape, and
// their implementations live behind nil guards off the steady path) —
// but the functions such values name are reachable via their reference
// edges.  Run it over the whole module (`nocvet ./...`) so
// cross-package callees — link receive, NI scheduling, stats
// recording — are in the graph.
//
// Allocations on provably cold paths (panic formatting on invariant
// violations, one-time lazy setup) carry `//nocvet:alloc <why>`.
package hotalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"surfbless/internal/analysis"
	"surfbless/internal/analysis/callgraph"
)

// Analyzer is the hot-path allocation checker.
var Analyzer = &analysis.Analyzer{
	Name:      "hotalloc",
	Doc:       "forbid heap-allocating constructs in code reachable from any fabric's Step method or //shard:phase function",
	RunModule: run,
}

// flaggedCalls maps stdlib package paths to the functions (or "*" for
// all) that allocate by design.
var flaggedCalls = map[string]map[string]bool{
	"fmt":  {"*": true},
	"sort": {"Slice": true, "SliceStable": true, "SliceIsSorted": true, "Sort": true, "Stable": true, "Strings": true, "Ints": true, "Float64s": true},
}

func run(pass *analysis.ModulePass) error {
	g := callgraph.Build(pass.Units)
	// Funcs is key-sorted, so the root order — and with it BFS layering
	// and chain choice — is deterministic.
	var roots []string
	for _, n := range g.Funcs() {
		if isStepRoot(n.Decl, n.Obj) {
			roots = append(roots, n.Key)
		} else if _, _, ok := analysis.ParsePhase(n.Decl.Doc); ok {
			roots = append(roots, n.Key)
		}
	}
	r := g.Reach(roots)
	for _, key := range r.Order() {
		scanFunc(pass, g.Node(key), "reachable via "+r.Chain(g, key))
	}
	return nil
}

// isStepRoot recognizes the fabric contract's hot entry point: a
// method named Step taking a single int64 cycle number.
func isStepRoot(fd *ast.FuncDecl, obj *types.Func) bool {
	if fd.Recv == nil || fd.Name.Name != "Step" {
		return false
	}
	sig := obj.Type().(*types.Signature)
	if sig.Params().Len() != 1 {
		return false
	}
	b, ok := types.Unalias(sig.Params().At(0).Type()).(*types.Basic)
	return ok && b.Kind() == types.Int64
}

// scanFunc reports allocating constructs in one reachable function.
func scanFunc(pass *analysis.ModulePass, n *callgraph.Node, via string) {
	report := func(pos token.Pos, what string) {
		pass.Reportf(pos, "alloc", "%s on the Step hot path (%s); hoist it onto the router struct, reuse a scratch buffer, or waive a proven-cold site with //nocvet:alloc", what, via)
	}
	info := n.Unit.Info
	appendTargets := collectAppendTargets(n.Decl.Body)

	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.FuncLit:
			report(node.Pos(), "closure literal allocates")
			return false // the closure body is not on the steady path until called
		case *ast.GoStmt:
			report(node.Pos(), "go statement allocates a goroutine")
		case *ast.DeferStmt:
			report(node.Pos(), "defer allocates its frame record")
		case *ast.CompositeLit:
			switch types.Unalias(info.Types[node].Type).Underlying().(type) {
			case *types.Slice:
				report(node.Pos(), "slice literal allocates")
			case *types.Map:
				report(node.Pos(), "map literal allocates")
			}
		case *ast.UnaryExpr:
			if node.Op == token.AND {
				if _, ok := ast.Unparen(node.X).(*ast.CompositeLit); ok {
					report(node.Pos(), "&composite literal escapes to the heap")
				}
			}
		case *ast.BinaryExpr:
			if node.Op == token.ADD && info.Types[node].Value == nil {
				if b, ok := types.Unalias(info.Types[node].Type).Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					report(node.Pos(), "string concatenation allocates")
				}
			}
		case *ast.CallExpr:
			scanCall(info, node, appendTargets, report)
		}
		return true
	})
}

// scanCall classifies one call: a flagged builtin, a flagged stdlib
// allocator, or an allocating conversion.  Traversal into callees is
// the call graph's job, not this function's.
func scanCall(info *types.Info, call *ast.CallExpr, appendTargets map[*ast.CallExpr]string, report func(token.Pos, string)) {
	// Type conversions: string<->[]byte/[]rune copy their operand.
	if tv, ok := info.Types[ast.Unparen(call.Fun)]; ok && tv.IsType() {
		if len(call.Args) == 1 && conversionAllocates(tv.Type, info.Types[ast.Unparen(call.Args[0])].Type) {
			report(call.Pos(), "string conversion allocates a copy")
		}
		return
	}

	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return
	}

	switch obj := info.Uses[id].(type) {
	case *types.Builtin:
		switch obj.Name() {
		case "make":
			report(call.Pos(), "make allocates")
		case "new":
			report(call.Pos(), "new allocates")
		case "append":
			if !selfAppend(call, appendTargets) {
				report(call.Pos(), "append into a fresh destination allocates")
			}
		}
	case *types.Func:
		obj = obj.Origin()
		if obj.Pkg() == nil {
			return
		}
		if names, ok := flaggedCalls[obj.Pkg().Path()]; ok {
			if names["*"] || names[obj.Name()] {
				report(call.Pos(), fmt.Sprintf("%s.%s allocates", obj.Pkg().Name(), obj.Name()))
			}
		}
	}
}

// selfAppend recognizes the amortized-growth idioms whose steady
// state is allocation-free: the append result assigned back onto its
// own first operand, `buf = append(buf, ...)`, or onto the reslice of
// it, `buf = append(buf[:0], ...)`.
func selfAppend(call *ast.CallExpr, appendTargets map[*ast.CallExpr]string) bool {
	if len(call.Args) == 0 {
		return false
	}
	target, ok := appendTargets[call]
	if !ok {
		return false
	}
	arg := ast.Unparen(call.Args[0])
	if target == types.ExprString(arg) {
		return true
	}
	if se, ok := arg.(*ast.SliceExpr); ok && target == types.ExprString(ast.Unparen(se.X)) {
		return true
	}
	return false
}

// collectAppendTargets maps every call appearing as the i-th RHS of an
// assignment in body to the printed form of its i-th LHS.
func collectAppendTargets(body *ast.BlockStmt) map[*ast.CallExpr]string {
	targets := make(map[*ast.CallExpr]string)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
				targets[call] = types.ExprString(ast.Unparen(as.Lhs[i]))
			}
		}
		return true
	})
	return targets
}

// conversionAllocates reports whether converting from -> to copies
// backing storage (string <-> []byte / []rune).
func conversionAllocates(to, from types.Type) bool {
	if to == nil || from == nil {
		return false
	}
	toS := isString(to)
	fromS := isString(from)
	return (toS && isByteOrRuneSlice(from)) || (fromS && isByteOrRuneSlice(to))
}

func isString(t types.Type) bool {
	b, ok := types.Unalias(t).Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := types.Unalias(t).Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := types.Unalias(s.Elem()).Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
