package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func comment(text string) *ast.Comment { return &ast.Comment{Text: text} }

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text   string
		ok     bool
		name   string
		reason string
	}{
		{"// ordinary comment", false, "", ""},
		{"//go:noinline", false, "", ""},
		{"//nocvet:ordered", true, "ordered", ""},
		{"//nocvet:ordered keys sorted before use", true, "ordered", "keys sorted before use"},
		{"//nocvet:alloc panic-only cold path", true, "alloc", "panic-only cold path"},
		{"//nocvet:fingerprint audited 2026-08", true, "fingerprint", "audited 2026-08"},
		// Malformed or unknown names parse as directives with an empty
		// or unknown Name so the checker can flag them.
		{"//nocvet:", true, "", ""},
		{"//nocvet: ordered", true, "", "ordered"}, // space before name: malformed
		{"//nocvet:Ordered", true, "", ""},
		{"//nocvet:-bad-", true, "", ""},
		{"//nocvet:bogus reason", true, "bogus", "reason"},
	}
	for _, c := range cases {
		d, ok := ParseDirective(comment(c.text))
		if ok != c.ok {
			t.Errorf("ParseDirective(%q) ok = %v, want %v", c.text, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if d.Name != c.name || d.Reason != c.reason {
			t.Errorf("ParseDirective(%q) = {Name:%q Reason:%q}, want {Name:%q Reason:%q}",
				c.text, d.Name, d.Reason, c.name, c.reason)
		}
	}
}

const directiveSrc = `package p

//nocvet:ordered reason on the line above the loop
var a = 1

var b = 2 //nocvet:alloc same-line waiver

//nocvet:bogus unknown category must be collected as Bad
var c = 3

//nocvet:hook
//nocvet:ordered stacked directives both apply to the next line
var d = 4
`

func parseFile(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

// posAtLine fabricates a Pos on the given 1-based line of the file.
func posAtLine(fset *token.FileSet, f *ast.File, line int) token.Pos {
	tf := fset.File(f.Pos())
	return tf.LineStart(line)
}

func TestDirectiveIndexSuppression(t *testing.T) {
	fset, f := parseFile(t, directiveSrc)
	idx := NewDirectiveIndex(fset, []*ast.File{f})

	if len(idx.Bad) != 1 || idx.Bad[0].Name != "bogus" {
		t.Fatalf("Bad = %+v, want exactly the bogus directive", idx.Bad)
	}

	check := func(line int, category string, want bool) {
		t.Helper()
		_, got := idx.Suppressed(posAtLine(fset, f, line), category)
		if got != want {
			t.Errorf("Suppressed(line %d, %q) = %v, want %v", line, category, got, want)
		}
	}
	check(4, "ordered", true)  // directive on line 3 covers line 4
	check(3, "ordered", true)  // ...and its own line
	check(5, "ordered", false) // ...but not two lines down
	check(4, "alloc", false)   // category must match
	check(6, "alloc", true)    // same-line waiver
	check(9, "determinism", false)
	check(13, "hook", true)    // stacked directives: the first one reaches
	check(13, "ordered", true) // past the second to the statement line
	check(12, "hook", false)   // interior group lines get only their own directive
}

// TestKnownDirectivesCoverReportedCategories pins the registry: every
// category the analyzers report must be waivable, and the registry
// must not accumulate dead entries without a description.
func TestKnownDirectivesCoverReportedCategories(t *testing.T) {
	for name, doc := range KnownDirectives {
		if !validDirectiveName(name) {
			t.Errorf("registered directive %q is not a valid name", name)
		}
		if doc == "" {
			t.Errorf("registered directive %q has no description", name)
		}
	}
	for _, want := range []string{"ordered", "determinism", "alloc", "hook", "fingerprint"} {
		if _, ok := KnownDirectives[want]; !ok {
			t.Errorf("directive %q missing from registry", want)
		}
	}
}
