package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func comment(text string) *ast.Comment { return &ast.Comment{Text: text} }

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text   string
		ok     bool
		name   string
		reason string
	}{
		{"// ordinary comment", false, "", ""},
		{"//go:noinline", false, "", ""},
		{"//nocvet:ordered", true, "ordered", ""},
		{"//nocvet:ordered keys sorted before use", true, "ordered", "keys sorted before use"},
		{"//nocvet:alloc panic-only cold path", true, "alloc", "panic-only cold path"},
		{"//nocvet:fingerprint audited 2026-08", true, "fingerprint", "audited 2026-08"},
		// Malformed or unknown names parse as directives with an empty
		// or unknown Name so the checker can flag them.
		{"//nocvet:", true, "", ""},
		{"//nocvet: ordered", true, "", "ordered"}, // space before name: malformed
		{"//nocvet:Ordered", true, "", ""},
		{"//nocvet:-bad-", true, "", ""},
		{"//nocvet:bogus reason", true, "bogus", "reason"},
		// CRLF files keep the \r in the comment text; it must not
		// corrupt the category or the reason.
		{"//nocvet:alloc\r", true, "alloc", ""},
		{"//nocvet:alloc cold path\r", true, "alloc", "cold path"},
		// A tab may separate category and reason (editors do this).
		{"//nocvet:alloc\tpanic-only", true, "alloc", "panic-only"},
		// Trailing prose after the reason is just more reason.
		{"//nocvet:ordered sorted below -- see DESIGN.md §13", true, "ordered", "sorted below -- see DESIGN.md §13"},
	}
	for _, c := range cases {
		d, ok := ParseDirective(comment(c.text))
		if ok != c.ok {
			t.Errorf("ParseDirective(%q) ok = %v, want %v", c.text, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if d.Name != c.name || d.Reason != c.reason {
			t.Errorf("ParseDirective(%q) = {Name:%q Reason:%q}, want {Name:%q Reason:%q}",
				c.text, d.Name, d.Reason, c.name, c.reason)
		}
	}
}

const directiveSrc = `package p

//nocvet:ordered reason on the line above the loop
var a = 1

var b = 2 //nocvet:alloc same-line waiver

//nocvet:bogus unknown category must be collected as Bad
var c = 3

//nocvet:hook
//nocvet:ordered stacked directives both apply to the next line
var d = 4
`

func parseFile(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

// posAtLine fabricates a Pos on the given 1-based line of the file.
func posAtLine(fset *token.FileSet, f *ast.File, line int) token.Pos {
	tf := fset.File(f.Pos())
	return tf.LineStart(line)
}

func TestDirectiveIndexSuppression(t *testing.T) {
	fset, f := parseFile(t, directiveSrc)
	idx := NewDirectiveIndex(fset, []*ast.File{f})

	if len(idx.Bad) != 1 || idx.Bad[0].Name != "bogus" {
		t.Fatalf("Bad = %+v, want exactly the bogus directive", idx.Bad)
	}

	check := func(line int, category string, want bool) {
		t.Helper()
		_, got := idx.Suppressed(posAtLine(fset, f, line), category)
		if got != want {
			t.Errorf("Suppressed(line %d, %q) = %v, want %v", line, category, got, want)
		}
	}
	check(4, "ordered", true)  // directive on line 3 covers line 4
	check(3, "ordered", true)  // ...and its own line
	check(5, "ordered", false) // ...but not two lines down
	check(4, "alloc", false)   // category must match
	check(6, "alloc", true)    // same-line waiver
	check(9, "determinism", false)
	check(13, "hook", true)    // stacked directives: the first one reaches
	check(13, "ordered", true) // past the second to the statement line
	check(12, "hook", false)   // interior group lines get only their own directive
}

// A build-tag file: the constraint comments are not directives, and a
// directive below them indexes against the correct (unshifted) lines.
const buildTagSrc = "//go:build linux || darwin\n// +build linux darwin\n\npackage p\n\n//nocvet:alloc under a build tag\nvar a = 1\n"

func TestDirectiveIndexBuildTagFile(t *testing.T) {
	fset, f := parseFile(t, buildTagSrc)
	idx := NewDirectiveIndex(fset, []*ast.File{f})
	if len(idx.Bad) != 0 {
		t.Fatalf("Bad = %+v, want none (build constraints are not directives)", idx.Bad)
	}
	if _, ok := idx.Suppressed(posAtLine(fset, f, 7), "alloc"); !ok {
		t.Error("directive under build tags does not cover the next line")
	}
}

// A CRLF file end to end: the parser keeps \r in comment text, and the
// directive must still suppress.
func TestDirectiveIndexCRLFFile(t *testing.T) {
	src := strings.ReplaceAll(directiveSrc, "\n", "\r\n")
	fset, f := parseFile(t, src)
	idx := NewDirectiveIndex(fset, []*ast.File{f})
	if len(idx.Bad) != 1 || idx.Bad[0].Name != "bogus" {
		t.Fatalf("Bad = %+v, want exactly the bogus directive", idx.Bad)
	}
	if _, ok := idx.Suppressed(posAtLine(fset, f, 4), "ordered"); !ok {
		t.Error("CRLF directive does not cover the next line")
	}
	if _, ok := idx.Suppressed(posAtLine(fset, f, 6), "alloc"); !ok {
		t.Error("CRLF same-line directive does not suppress")
	}
}

// Suppression is line-based, so leading tabs and multi-byte runes
// before the comment must not matter (the "column drift" hazard:
// gofmt re-indents, golden positions move, waivers must not).
const columnSrc = "package p\n\nfunc f() {\n\tπ := \"π≈3\" //nocvet:alloc after tab and multi-byte runes\n\t_ = π\n}\n"

func TestDirectiveIndexIgnoresColumns(t *testing.T) {
	fset, f := parseFile(t, columnSrc)
	idx := NewDirectiveIndex(fset, []*ast.File{f})
	if len(idx.Bad) != 0 {
		t.Fatalf("Bad = %+v, want none", idx.Bad)
	}
	// Any position on line 4 is covered, regardless of column.
	tf := fset.File(f.Pos())
	for _, off := range []int{0, 1, 2} {
		pos := tf.LineStart(4) + token.Pos(off)
		if _, ok := idx.Suppressed(pos, "alloc"); !ok {
			t.Errorf("Suppressed(line 4 + %d cols) = false, want true", off)
		}
	}
}

func TestDirectiveIndexStale(t *testing.T) {
	fset, f := parseFile(t, directiveSrc)
	idx := NewDirectiveIndex(fset, []*ast.File{f})
	// Nothing consulted yet: every well-formed directive is stale.
	if got := len(idx.Stale()); got != 4 {
		t.Fatalf("Stale() before any run = %d directives, want 4", got)
	}
	// Consult two; they drop out, in position order.
	idx.Suppressed(posAtLine(fset, f, 4), "ordered")
	idx.Suppressed(posAtLine(fset, f, 13), "hook")
	stale := idx.Stale()
	if len(stale) != 2 {
		t.Fatalf("Stale() = %d directives, want 2", len(stale))
	}
	if stale[0].Name != "alloc" || stale[1].Name != "ordered" {
		t.Errorf("Stale() = [%s %s], want [alloc ordered]", stale[0].Name, stale[1].Name)
	}
}

// TestKnownDirectivesCoverReportedCategories pins the registry: every
// category the analyzers report must be waivable, and the registry
// must not accumulate dead entries without a description.
func TestKnownDirectivesCoverReportedCategories(t *testing.T) {
	for name, doc := range KnownDirectives {
		if !validDirectiveName(name) {
			t.Errorf("registered directive %q is not a valid name", name)
		}
		if doc == "" {
			t.Errorf("registered directive %q has no description", name)
		}
	}
	for _, want := range []string{"ordered", "determinism", "alloc", "hook", "fingerprint", "shard"} {
		if _, ok := KnownDirectives[want]; !ok {
			t.Errorf("directive %q missing from registry", want)
		}
	}
}
