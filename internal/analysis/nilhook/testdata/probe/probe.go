// Package probe mirrors the real probe package's hook type.
package probe

// Probe is a hot-path observer; nil means disabled.
//
//hook:nil-disabled
type Probe struct{ n int }

// Traverse records one router traversal.
func (p *Probe) Traverse(id int) { p.n++ }
