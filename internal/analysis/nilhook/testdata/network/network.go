// Package network mirrors the real network package's sink hook.
package network

// Sink receives ejected packets; nil means discard-and-count.
type Sink func(node int)
