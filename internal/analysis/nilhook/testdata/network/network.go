// Package network mirrors the real network package's sink hook.
package network

// Sink receives ejected packets; nil means discard-and-count.
//
//hook:nil-disabled
type Sink func(node int)
