// Hook types are discovered from their //hook:nil-disabled markers,
// not a registry: trace.Emitter is marked (and was never listed
// anywhere), trace.Logger is not.
package router

import "nocvet.example/trace"

// Traced carries a marked hook and an unmarked lookalike.
type Traced struct {
	emit *trace.Emitter
	log  *trace.Logger
}

// UnguardedEmit must be flagged purely off the marker.
func (t *Traced) UnguardedEmit(id int) {
	t.emit.Emit(id) // want `call through hook field t\.emit is not nil-guarded`
}

// GuardedEmit is accepted.
func (t *Traced) GuardedEmit(id int) {
	if t.emit != nil {
		t.emit.Emit(id)
	}
}

// UnmarkedLogger stays silent: Logger carries no marker, so the
// analyzer makes no claim about its nil contract.
func (t *Traced) UnmarkedLogger(id int) {
	t.log.Log(id)
}
