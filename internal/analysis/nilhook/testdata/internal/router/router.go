// Package router is nilhook-analyzer testdata: every guard idiom the
// analyzer must accept, and the unguarded calls it must reject.
package router

import (
	"nocvet.example/fault"
	"nocvet.example/network"
	"nocvet.example/probe"
	"nocvet.example/stats"
)

// Fabric carries one of each hook kind.
type Fabric struct {
	probe  *probe.Probe
	faults *fault.Injector
	tracer stats.Tracer
	sink   network.Sink
}

// Unguarded calls must be flagged for every hook kind.
func (f *Fabric) Unguarded(id int) bool {
	f.probe.Traverse(id) // want `call through hook field f\.probe is not nil-guarded`
	f.tracer(id)         // want `call through hook field f\.tracer is not nil-guarded`
	f.sink(id)           // want `call through hook field f\.sink is not nil-guarded`
	return f.faults.Frozen(id) // want `call through hook field f\.faults is not nil-guarded`
}

// GuardedBody is the canonical guard.
func (f *Fabric) GuardedBody(id int) {
	if f.probe != nil {
		f.probe.Traverse(id)
	}
}

// GuardedShortCircuit relies on && evaluation order.
func (f *Fabric) GuardedShortCircuit(id int) bool {
	return f.faults != nil && f.faults.Frozen(id)
}

// GuardedOr relies on || evaluation order.
func (f *Fabric) GuardedOr(id int) bool {
	return f.faults == nil || f.faults.Frozen(id)
}

// GuardedEarlyReturn establishes the guard for the rest of the block.
func (f *Fabric) GuardedEarlyReturn(id int) {
	if f.tracer == nil {
		return
	}
	f.tracer(id)
}

// GuardedElse uses the negative branch.
func (f *Fabric) GuardedElse(id int) {
	if f.probe == nil {
		_ = id
	} else {
		f.probe.Traverse(id)
	}
}

// GuardedConjunction buries the nil check in a wider condition.
func (f *Fabric) GuardedConjunction(on bool, id int) {
	if on && f.sink != nil {
		f.sink(id)
	}
}

// GuardedSwitch uses an expression-less switch.
func (f *Fabric) GuardedSwitch(id int) {
	switch {
	case f.probe != nil:
		f.probe.Traverse(id)
	}
}

// GuardedPanic treats a nil hook as a programming error.
func (f *Fabric) GuardedPanic(id int) {
	if f.sink == nil {
		panic("sink required")
	}
	f.sink(id)
}

// WrongReceiver guards a different fabric's hook: still a finding.
func (f *Fabric) WrongReceiver(g *Fabric, id int) {
	if g.probe != nil {
		f.probe.Traverse(id) // want `call through hook field f\.probe is not nil-guarded`
	}
}

// StaleGuard checks the wrong field: still a finding.
func (f *Fabric) StaleGuard(id int) {
	if f.probe != nil {
		f.tracer(id) // want `call through hook field f\.tracer is not nil-guarded`
	}
}

// Waived documents a guard the analyzer cannot see.
func (f *Fabric) Waived(id int) {
	//nocvet:hook only dispatched from GuardedBody
	f.probe.Traverse(id)
}

// engine nests a hook one level down.
type engine struct{ probe *probe.Probe }

// Mesh exercises multi-level field chains.
type Mesh struct{ eng engine }

// Nested guards and uses a nested hook field.
func (m *Mesh) Nested(id int) {
	if m.eng.probe != nil {
		m.eng.probe.Traverse(id)
	}
	m.eng.probe.Traverse(id) // want `call through hook field m\.eng\.probe is not nil-guarded`
}

// Locals through plain variables are out of the analyzer's contract:
// a hook copied into a local was usually just guarded.
func (f *Fabric) LocalAlias(id int) {
	if p := f.probe; p != nil {
		p.Traverse(id)
	}
}
