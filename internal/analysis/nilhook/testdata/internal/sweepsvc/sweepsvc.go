// Package sweepsvc is nilhook-analyzer testdata for the sweep
// service's hook kinds: the coordinator's *Hooks and the worker's
// *WorkerHooks structs (func fields behind a nilable pointer) and the
// RetryHook func field.
package sweepsvc

// Hooks mirrors the coordinator's observation points.
//
//hook:nil-disabled
type Hooks struct {
	LeaseGranted   func(job string, point int, worker string)
	PointCompleted func(job string, point int, dup bool)
}

// WorkerHooks mirrors the worker's observation points.
//
//hook:nil-disabled
type WorkerHooks struct {
	Drained func(released int)
}

// RetryHook mirrors the runner's per-attempt observer.
//
//hook:nil-disabled — nil means retries go unobserved.
type RetryHook func(rate float64, attempt int, err error)

// Coordinator carries hook fields the way the real service does.
type Coordinator struct {
	hooks   *Hooks
	onRetry RetryHook
}

// Worker nests its hooks behind an options struct, like the real one.
type Worker struct {
	o struct{ Hooks *WorkerHooks }
}

// Unguarded calls must be flagged for every service hook kind.
func (c *Coordinator) Unguarded() {
	c.hooks.LeaseGranted("j1", 0, "w1") // want `call through hook field c\.hooks is not nil-guarded`
	c.onRetry(0.1, 1, nil)              // want `call through hook field c\.onRetry is not nil-guarded`
}

// UnguardedNested: the guard must cover the full selection chain.
func (w *Worker) UnguardedNested() {
	w.o.Hooks.Drained(0) // want `call through hook field w\.o\.Hooks is not nil-guarded`
}

// Guarded is the idiom the real service uses: pointer-to-struct guard
// plus the func-field guard in one &&.
func (c *Coordinator) Guarded() {
	if c.hooks != nil && c.hooks.PointCompleted != nil {
		c.hooks.PointCompleted("j1", 0, false)
	}
	if c.onRetry != nil {
		c.onRetry(0.1, 1, nil)
	}
}

// GuardedNested guards the nested options chain.
func (w *Worker) GuardedNested(released int) {
	if w.o.Hooks != nil && w.o.Hooks.Drained != nil {
		w.o.Hooks.Drained(released)
	}
}
