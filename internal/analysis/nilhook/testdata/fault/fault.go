// Package fault mirrors the real fault package's hook type.
package fault

// Injector schedules faults; nil means fault-free.
//
//hook:nil-disabled
type Injector struct{}

// Frozen reports whether router id is frozen.
func (i *Injector) Frozen(id int) bool { return false }
