// Package stats mirrors the real stats package's tracer hook.
package stats

// Tracer observes packet lifecycle events; nil means untraced.
//
//hook:nil-disabled
type Tracer func(ev int)
