// Package trace proves the marker discovery: Emitter was never in any
// hand-maintained registry — the //hook:nil-disabled marker alone
// makes it a hook type — and Logger, nilable the same way but
// unmarked, is not one.
package trace

// Emitter streams span events; nil means tracing is off.
//
//hook:nil-disabled
type Emitter struct{ n int }

// Emit records one span.
func (e *Emitter) Emit(id int) { e.n++ }

// Logger is deliberately unmarked: calls through Logger fields are
// outside the analyzer's contract even when unguarded.
type Logger struct{ n int }

// Log records one line.
func (l *Logger) Log(id int) { l.n++ }
