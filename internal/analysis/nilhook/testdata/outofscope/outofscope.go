// Package outofscope proves the analyzer's package scoping: hook
// calls outside the hot-path packages are not checked.
package outofscope

import "nocvet.example/probe"

// Holder is not a hot-path type.
type Holder struct{ probe *probe.Probe }

// Use is unguarded but out of scope.
func (h *Holder) Use(id int) { h.probe.Traverse(id) }
