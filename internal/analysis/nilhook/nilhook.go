// Package nilhook implements the nocvet analyzer that verifies every
// probe / fault / tracer / sink hook invocation on the simulator's
// hot paths is nil-guarded.
//
// The observability and fault layers are wired as optional hook
// fields (`probe *probe.Probe`, `faults *fault.Injector`,
// `tracer stats.Tracer`, `sink network.Sink`) with the contract
// "nil = disabled, hot path untouched".  Every fabric touches these
// fields millions of times per run, and an unguarded call on a
// disabled hook is a nil-pointer panic that only fires in the exact
// configuration that leaves the hook unarmed — the configuration the
// benchmarks and most tests run.  This analyzer makes the guard a
// compile-time obligation.
//
// Hook types are not listed here: a type declares itself a hook by
// carrying the `//hook:nil-disabled` marker in its doc comment:
//
//	// Probe is a hot-path observer.
//	//hook:nil-disabled — nil means tracing is off.
//	type Probe struct{ ... }
//
// The analyzer discovers every marked type across the loaded module
// in a first pass, then checks calls through fields of those types in
// a second.  New hook kinds therefore need no analyzer change — mark
// the type where it is declared and every hot-path call site is
// checked from then on.  The caveat is the flip side: discovery only
// sees packages loaded with syntax, so run nocvet over the whole
// module (`nocvet ./...`); a subset run that omits a hook's defining
// package silently skips that hook's call sites.
//
// A call through a hook-typed struct field is accepted when the
// analyzer can see the guard in the enclosing function:
//
//	if f.probe != nil { f.probe.Traverse(...) }     // guarded body
//	if f.faults != nil && f.faults.Frozen(...)      // && short-circuit
//	if c.tracer == nil { return }; c.tracer(...)    // early return
//	if f.probe == nil || f.probe.Enabled(...)       // || short-circuit
//
// Guards established in a caller are invisible here; helpers that are
// only invoked with an armed hook carry a `//nocvet:hook <why>`
// waiver naming the caller holding the guard.
package nilhook

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"surfbless/internal/analysis"
)

// Analyzer is the nil-guard checker.
var Analyzer = &analysis.Analyzer{
	Name:      "nilhook",
	Doc:       "require nil guards on calls through //hook:nil-disabled typed fields in hot-path packages",
	RunModule: run,
}

// Scope limits the analyzer to the packages holding router hot paths
// and their stat/observability plumbing, plus the sweep service —
// whose coordinator/worker hooks follow the same "nil = disabled"
// contract and fire on every lease transition.
var Scope = regexp.MustCompile(`internal/(router(/[^/]+)?|sim|link|stats|network|traffic|system|sweepsvc)$`)

// nilDisabledMarker is the doc-comment marker declaring "a nil value
// of this type means the hook is disabled".  Prose may follow after a
// space; it is an annotation stating a fact about the type, not a
// //nocvet: directive (those waive findings at call sites).
const nilDisabledMarker = "//hook:nil-disabled"

func run(pass *analysis.ModulePass) error {
	hooks := discoverHookTypes(pass.Units)
	for _, unit := range pass.Units {
		if !Scope.MatchString(unit.Path) {
			continue
		}
		c := &checker{pass: pass, unit: unit, hooks: hooks}
		for _, file := range unit.Files {
			var stack []ast.Node
			ast.Inspect(file, func(n ast.Node) bool {
				if n == nil {
					stack = stack[:len(stack)-1]
					return true
				}
				if call, ok := n.(*ast.CallExpr); ok {
					c.checkCall(call, stack)
				}
				stack = append(stack, n)
				return true
			})
		}
	}
	return nil
}

// discoverHookTypes collects every type declaration carrying the
// //hook:nil-disabled marker, keyed "pkgpath.Name".  The marker may
// sit in the TypeSpec's own doc or, for the common single-spec
// `type X ...` form, in the GenDecl's.
func discoverHookTypes(units []*analysis.Unit) map[string]bool {
	hooks := make(map[string]bool)
	for _, unit := range units {
		for _, file := range unit.Files {
			for _, decl := range file.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts := spec.(*ast.TypeSpec)
					doc := ts.Doc
					if doc == nil && len(gd.Specs) == 1 {
						doc = gd.Doc
					}
					if markedNilDisabled(doc) {
						hooks[unit.Pkg.Path()+"."+ts.Name.Name] = true
					}
				}
			}
		}
	}
	return hooks
}

// markedNilDisabled reports whether any line of doc is the
// //hook:nil-disabled marker, bare or followed by prose.
func markedNilDisabled(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimRight(c.Text, "\r")
		rest, ok := strings.CutPrefix(text, nilDisabledMarker)
		if ok && (rest == "" || rest[0] == ' ' || rest[0] == '\t') {
			return true
		}
	}
	return false
}

// checker holds the per-unit state for the guard pass.
type checker struct {
	pass  *analysis.ModulePass
	unit  *analysis.Unit
	hooks map[string]bool
}

// checkCall flags an unguarded invocation through a hook field: either
// a method call whose receiver is a hook-typed field selection, or a
// direct call of a func-typed hook field.
func (c *checker) checkCall(call *ast.CallExpr, stack []ast.Node) {
	fun, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	var hook ast.Expr // the expression that must be nil-checked
	if sel := c.unit.Info.Selections[fun]; sel != nil && sel.Kind() == types.FieldVal && c.hookType(sel.Obj().Type()) {
		// c.tracer(...): the callee itself is a hook-typed func field.
		hook = fun
	} else if recv, ok := ast.Unparen(fun.X).(*ast.SelectorExpr); ok {
		// f.probe.Traverse(...) or h.hooks.Fired(...): a method — or an
		// anonymous func field — reached through a hook-typed field.
		rsel := c.unit.Info.Selections[recv]
		if rsel == nil || rsel.Kind() != types.FieldVal || !c.hookType(rsel.Obj().Type()) {
			return
		}
		hook = recv
	} else {
		return
	}
	target := types.ExprString(hook)
	if guarded(call, stack, target) {
		return
	}
	c.pass.Reportf(call.Pos(), "hook",
		"call through hook field %s is not nil-guarded; nil means the hook is disabled — guard with `if %s != nil`, or waive with //nocvet:hook naming the caller that holds the guard", target, target)
}

// hookType reports whether t (pointers and aliases stripped) names a
// type discovered to carry the //hook:nil-disabled marker.
func (c *checker) hookType(t types.Type) bool {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Origin().Obj()
	if obj.Pkg() == nil {
		return false
	}
	return c.hooks[obj.Pkg().Path()+"."+obj.Name()]
}

// guarded walks the ancestor chain of call looking for a dominating
// nil check of target.
func guarded(call ast.Node, stack []ast.Node, target string) bool {
	node := ast.Node(call)
	for i := len(stack) - 1; i >= 0; i-- {
		switch p := stack[i].(type) {
		case *ast.BinaryExpr:
			// In `X && Y`, Y runs only when X is true; in `X || Y`,
			// only when X is false.
			if p.Op == token.LAND && p.Y == node && impliesNonNilWhenTrue(p.X, target) {
				return true
			}
			if p.Op == token.LOR && p.Y == node && impliesNonNilWhenFalse(p.X, target) {
				return true
			}
		case *ast.IfStmt:
			if p.Body == node && impliesNonNilWhenTrue(p.Cond, target) {
				return true
			}
			if p.Else == node && impliesNonNilWhenFalse(p.Cond, target) {
				return true
			}
		case *ast.CaseClause:
			// Expression-less switch: `switch { case x != nil: ... }`.
			// The clause's grandparent is the SwitchStmt (its Body
			// block sits between).
			if i > 1 {
				if sw, ok := stack[i-2].(*ast.SwitchStmt); ok && sw.Tag == nil {
					for _, cond := range p.List {
						if impliesNonNilWhenTrue(cond, target) {
							return true
						}
					}
				}
			}
			if blockGuards(p.Body, node, target) {
				return true
			}
		case *ast.BlockStmt:
			if blockGuards(p.List, node, target) {
				return true
			}
		}
		node = stack[i]
	}
	return false
}

// blockGuards reports whether a statement preceding the one holding
// the call establishes the guard by terminating when the hook is nil:
//
//	if x == nil { return }
func blockGuards(list []ast.Stmt, node ast.Node, target string) bool {
	for _, s := range list {
		if s == node {
			return false
		}
		ifs, ok := s.(*ast.IfStmt)
		if !ok || !impliesNonNilWhenFalse(ifs.Cond, target) || !terminates(ifs.Body) {
			continue
		}
		return true
	}
	return false
}

// terminates conservatively reports whether the block always leaves
// the enclosing scope: its last statement is a return, a branch, or a
// panic call.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "panic"
	default:
		return false
	}
}

// impliesNonNilWhenTrue reports whether cond being true guarantees
// target != nil: some && conjunct is the literal comparison.
func impliesNonNilWhenTrue(cond ast.Expr, target string) bool {
	switch c := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND:
			return impliesNonNilWhenTrue(c.X, target) || impliesNonNilWhenTrue(c.Y, target)
		case token.NEQ:
			return nilCompare(c, target)
		}
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			return impliesNonNilWhenFalse(c.X, target)
		}
	}
	return false
}

// impliesNonNilWhenFalse reports whether cond being false guarantees
// target != nil: some || disjunct is `target == nil`, so cond false
// forces it false too.
func impliesNonNilWhenFalse(cond ast.Expr, target string) bool {
	switch c := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LOR:
			return impliesNonNilWhenFalse(c.X, target) || impliesNonNilWhenFalse(c.Y, target)
		case token.EQL:
			return nilCompare(c, target)
		}
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			return impliesNonNilWhenTrue(c.X, target)
		}
	}
	return false
}

// nilCompare reports whether cmp compares target against the
// predeclared nil, in either orientation.
func nilCompare(cmp *ast.BinaryExpr, target string) bool {
	x, y := ast.Unparen(cmp.X), ast.Unparen(cmp.Y)
	if isNil(y) {
		return types.ExprString(x) == target
	}
	if isNil(x) {
		return types.ExprString(y) == target
	}
	return false
}

func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}
