package nilhook_test

import (
	"testing"

	"surfbless/internal/analysis/analysistest"
	"surfbless/internal/analysis/nilhook"
)

func TestNilHook(t *testing.T) {
	analysistest.Run(t, "testdata", nilhook.Analyzer,
		"./internal/router", "./internal/sweepsvc", "./outofscope")
}
