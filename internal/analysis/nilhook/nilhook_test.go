package nilhook_test

import (
	"testing"

	"surfbless/internal/analysis/analysistest"
	"surfbless/internal/analysis/nilhook"
)

func TestNilHook(t *testing.T) {
	// The whole testdata module: hook types are discovered from their
	// //hook:nil-disabled markers, so the defining packages (probe,
	// fault, stats, network, trace) must be loaded with syntax — the
	// analyzer's "run nocvet over the whole module" caveat, exercised.
	analysistest.Run(t, "testdata", nilhook.Analyzer, "./...")
}
