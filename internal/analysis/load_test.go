package analysis

import (
	"go/types"
	"testing"
)

// TestLoadTypeChecksModulePackages proves the offline loading pipeline
// end to end: go list -export supplies export data, the gc importer
// consumes it, and the target package type-checks from source with
// full cross-package type information.
func TestLoadTypeChecksModulePackages(t *testing.T) {
	fset, units, err := Load("../..", "surfbless/internal/config")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(units) != 1 {
		t.Fatalf("got %d units, want 1", len(units))
	}
	u := units[0]
	if u.Path != "surfbless/internal/config" {
		t.Fatalf("unit path = %q", u.Path)
	}
	if u.ModulePath != "surfbless" {
		t.Fatalf("module path = %q", u.ModulePath)
	}
	if len(u.Files) == 0 || fset.Position(u.Files[0].Pos()).Filename == "" {
		t.Fatal("no parsed files with positions")
	}

	// Cross-package types must be resolvable: Config.Faults comes from
	// the imported fault package via export data, and its struct
	// fields (needed by fingerprintcheck) must be visible.
	obj := u.Pkg.Scope().Lookup("Config")
	if obj == nil {
		t.Fatal("config.Config not found")
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		t.Fatalf("Config underlying is %T, want struct", obj.Type().Underlying())
	}
	var faults *types.Var
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == "Faults" {
			faults = st.Field(i)
		}
	}
	if faults == nil {
		t.Fatal("Config.Faults not found")
	}
	ptr, ok := faults.Type().(*types.Pointer)
	if !ok {
		t.Fatalf("Faults type = %v, want pointer", faults.Type())
	}
	plan, ok := ptr.Elem().(*types.Named)
	if !ok || plan.Obj().Name() != "Plan" {
		t.Fatalf("Faults elem = %v, want fault.Plan", ptr.Elem())
	}
	if _, ok := plan.Underlying().(*types.Struct); !ok {
		t.Fatalf("fault.Plan underlying = %T, want struct (export data incomplete?)", plan.Underlying())
	}
}

// TestLoadRejectsBrokenPatterns ensures load failures surface as
// errors instead of half-built units.
func TestLoadRejectsBrokenPatterns(t *testing.T) {
	if _, _, err := Load("../..", "surfbless/internal/does-not-exist"); err == nil {
		t.Fatal("Load of a nonexistent package succeeded")
	}
}
