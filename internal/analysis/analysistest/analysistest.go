// Package analysistest is the golden-file harness for the nocvet
// analyzers, mirroring golang.org/x/tools/go/analysis/analysistest on
// the in-module framework: testdata packages carry `// want "regexp"`
// comments naming the findings an analyzer must report there, and the
// harness fails on any mismatch in either direction.
//
// Each analyzer's testdata directory is its own Go module (it has a
// go.mod), so the loader's `go list -export` pipeline treats it
// exactly like the real module; package paths inside it mirror the
// repository layout (e.g. nocvet.example/internal/sim) so the
// analyzers' path-based scoping applies unchanged.
//
// Suppression is part of the contract under test: a construct with a
// //nocvet: directive and no want comment asserts the directive
// silences the finding.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"surfbless/internal/analysis"
)

// wantMarker introduces an expectation comment.
const wantMarker = "// want "

// expectation is one parsed want clause.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	met  bool
}

// Run loads the testdata module rooted at dir, analyzes the packages
// matched by patterns (explicit paths like "./internal/sim" — testdata
// directories are invisible to ./... wildcards by design), runs the
// analyzer through the real checker, and diffs active findings against
// the want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	fset, units, err := analysis.Load(dir, patterns...)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	findings, err := analysis.RunAnalyzers(fset, units, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	var wants []*expectation
	for _, u := range units {
		for _, f := range u.Files {
			ws, err := parseWants(fset, f)
			if err != nil {
				t.Fatalf("parsing want comments: %v", err)
			}
			wants = append(wants, ws...)
		}
	}

	for _, f := range analysis.Active(findings) {
		if !matchWant(wants, f) {
			t.Errorf("unexpected finding at %s:%d: [%s] %s",
				f.Position.Filename, f.Position.Line, f.Analyzer, f.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("missing finding at %s:%d: want match for %s", w.file, w.line, w.raw)
		}
	}
}

// matchWant consumes the first unmet expectation on the finding's line
// whose regexp matches its message.
func matchWant(wants []*expectation, f analysis.Finding) bool {
	for _, w := range wants {
		if w.met || w.file != f.Position.Filename || w.line != f.Position.Line {
			continue
		}
		if w.re.MatchString(f.Message) {
			w.met = true
			return true
		}
	}
	return false
}

// parseWants extracts every `// want "re" ["re" ...]` clause of one
// file.  An expectation anchors to the line its comment starts on.
func parseWants(fset *token.FileSet, f *ast.File) ([]*expectation, error) {
	var wants []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			i := strings.Index(c.Text, wantMarker)
			if i < 0 {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimSpace(c.Text[i+len(wantMarker):])
			for rest != "" {
				quoted, err := strconv.QuotedPrefix(rest)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: malformed want clause %q", pos.Filename, pos.Line, rest)
				}
				pattern, err := strconv.Unquote(quoted)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: unquoting %s: %w", pos.Filename, pos.Line, quoted, err)
				}
				re, err := regexp.Compile(pattern)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: compiling want %q: %w", pos.Filename, pos.Line, pattern, err)
				}
				wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: quoted})
				rest = strings.TrimSpace(rest[len(quoted):])
			}
		}
	}
	return wants, nil
}
