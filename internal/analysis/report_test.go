package analysis

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fabricate findings at synthetic positions under root.
func testFindings(root string) []Finding {
	pos := func(file string, line, col int) token.Position {
		return token.Position{Filename: filepath.Join(root, file), Line: line, Column: col}
	}
	return []Finding{
		{Analyzer: "hotalloc", Position: pos("internal/a/a.go", 10, 2), Category: "alloc", Message: "make allocates"},
		{Analyzer: "hotalloc", Position: pos("internal/a/a.go", 20, 6), Category: "alloc", Message: "make allocates"},
		{Analyzer: "shardsafe", Position: pos("internal/b/b.go", 5, 1), Category: "shard", Message: "shared write"},
		{Analyzer: "nilhook", Position: pos("internal/b/b.go", 7, 1), Category: "hook", Message: "unguarded", Suppressed: true},
	}
}

func TestReportIDsStableUnderLineShifts(t *testing.T) {
	root := "/tmp/mod"
	a := NewReport(root, testFindings(root))
	// The same findings, shifted down 100 lines and re-indented: IDs
	// must not move (they exclude line and column by design).
	shifted := testFindings(root)
	for i := range shifted {
		shifted[i].Position.Line += 100
		shifted[i].Position.Column += 3
	}
	b := NewReport(root, shifted)
	if len(a.Findings) != len(b.Findings) {
		t.Fatalf("finding counts differ: %d vs %d", len(a.Findings), len(b.Findings))
	}
	for i := range a.Findings {
		if a.Findings[i].ID != b.Findings[i].ID {
			t.Errorf("finding %d: ID changed across line shift: %s vs %s", i, a.Findings[i].ID, b.Findings[i].ID)
		}
	}
}

func TestReportDisambiguatesDuplicates(t *testing.T) {
	root := "/tmp/mod"
	r := NewReport(root, testFindings(root))
	// Two identical hotalloc messages in the same file must get
	// distinct IDs via the occurrence index.
	if r.Findings[0].ID == r.Findings[1].ID {
		t.Errorf("duplicate findings share ID %s", r.Findings[0].ID)
	}
}

func TestReportExcludesSuppressedAndRelativizes(t *testing.T) {
	root := "/tmp/mod"
	r := NewReport(root, testFindings(root))
	if len(r.Findings) != 3 {
		t.Fatalf("got %d findings, want 3 (suppressed excluded)", len(r.Findings))
	}
	for _, f := range r.Findings {
		if filepath.IsAbs(f.File) || strings.Contains(f.File, "\\") {
			t.Errorf("file %q not a slash-relative path", f.File)
		}
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	root := "/tmp/mod"
	r := NewReport(root, testFindings(root))
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("unmarshalling report: %v", err)
	}
	if back.Version != ReportVersion || len(back.Findings) != len(r.Findings) {
		t.Fatalf("round trip lost data: %+v", back)
	}
	for i := range r.Findings {
		if back.Findings[i] != r.Findings[i] {
			t.Errorf("finding %d changed in round trip:\n  out: %+v\n  in:  %+v", i, r.Findings[i], back.Findings[i])
		}
	}
	// Byte-identical across runs.
	var again bytes.Buffer
	if err := NewReport(root, testFindings(root)).WriteJSON(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("two JSON renderings of the same findings differ")
	}
}

func TestSARIFStableAndWellFormed(t *testing.T) {
	root := "/tmp/mod"
	r := NewReport(root, testFindings(root))
	var buf, again bytes.Buffer
	if err := r.WriteSARIF(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteSARIF(&again, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("two SARIF renderings of the same findings differ")
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID              string            `json:"ruleId"`
				PartialFingerprints map[string]string `json:"partialFingerprints"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("SARIF is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 || log.Runs[0].Tool.Driver.Name != "nocvet" {
		t.Fatalf("SARIF shape wrong: %+v", log)
	}
	if got := len(log.Runs[0].Results); got != 3 {
		t.Fatalf("SARIF has %d results, want 3", got)
	}
	if got := len(log.Runs[0].Tool.Driver.Rules); got != 2 {
		t.Fatalf("SARIF has %d rules, want 2 (hotalloc, shardsafe; the nilhook finding is suppressed)", got)
	}
	for _, res := range log.Runs[0].Results {
		if res.PartialFingerprints["nocvetFinding/v1"] == "" {
			t.Errorf("result %s missing stable fingerprint", res.RuleID)
		}
	}
}

func TestBaselineDiff(t *testing.T) {
	root := "/tmp/mod"
	r := NewReport(root, testFindings(root))

	// Baseline covering everything: nothing new.
	if fresh := NewAgainstBaseline(r, r); len(fresh) != 0 {
		t.Errorf("full baseline still reports %d new findings", len(fresh))
	}

	// Baseline missing the shardsafe finding: exactly it is new.
	var partial Report
	partial.Version = ReportVersion
	for _, f := range r.Findings {
		if f.Analyzer != "shardsafe" {
			partial.Findings = append(partial.Findings, f)
		}
	}
	fresh := NewAgainstBaseline(r, partial)
	if len(fresh) != 1 || fresh[0].Analyzer != "shardsafe" {
		t.Fatalf("NewAgainstBaseline = %+v, want exactly the shardsafe finding", fresh)
	}

	// Round trip through disk.
	path := filepath.Join(t.TempDir(), "nocvet.baseline.json")
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if fresh := NewAgainstBaseline(r, back); len(fresh) != 0 {
		t.Errorf("reloaded baseline reports %d new findings", len(fresh))
	}
}

func TestLoadBaselineRejectsWrongVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"version": 99, "findings": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(path); err == nil {
		t.Error("LoadBaseline accepted a future schema version")
	}
}
