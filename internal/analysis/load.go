// Package loading.  The x/tools drivers shell out to `go list` for
// package metadata and read gc export data for dependency types; this
// loader does the same with nothing but the standard library:
//
//  1. `go list -export -deps -json <patterns>` enumerates the target
//     packages and every dependency (standard library included) and, by
//     virtue of -export, compiles each dependency's export data into
//     the build cache, reporting the file path in .Export.  This works
//     fully offline: the module has no external requirements.
//  2. Each target package is parsed from source (comments kept — the
//     suppression directives live there) and type-checked with
//     go/importer's gc importer in lookup mode, which resolves every
//     import — stdlib or intra-module — from those export files.
//
// Analyzers therefore see complete types for all packages while only
// the packages under analysis pay for syntax.
package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Export     string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Load type-checks the packages matched by patterns, resolved relative
// to dir (a directory inside the module to analyze).  It returns one
// Unit per matched package, sorted by import path, all sharing the
// returned FileSet.
func Load(dir string, patterns ...string) (*token.FileSet, []*Unit, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, nil, err
	}

	exports := make(map[string]string, len(listed))
	var targets []*listedPackage
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data listed for %q", path)
		}
		return os.Open(file)
	})

	units := make([]*Unit, 0, len(targets))
	for _, p := range targets {
		u, err := typeCheck(fset, imp, p)
		if err != nil {
			return nil, nil, err
		}
		units = append(units, u)
	}
	return fset, units, nil
}

// goList runs `go list -export -deps -json` and decodes its output
// stream.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Standard,DepOnly,Export,Module,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %w\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var listed []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		listed = append(listed, p)
	}
	return listed, nil
}

// typeCheck parses and type-checks one listed package from source.
func typeCheck(fset *token.FileSet, imp types.Importer, p *listedPackage) (*Unit, error) {
	files := make([]*ast.File, 0, len(p.GoFiles))
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", p.ImportPath, err)
	}
	modPath := ""
	if p.Module != nil {
		modPath = p.Module.Path
	}
	return &Unit{Path: p.ImportPath, ModulePath: modPath, Files: files, Pkg: pkg, Info: info}, nil
}
