// The checker: runs a set of analyzers over loaded units, applies the
// suppression directives, and renders findings.  Shared by cmd/nocvet
// and the analysistest golden harness so both see the exact semantics
// CI enforces.
package analysis

import (
	"fmt"
	"go/token"
	"io"
	"sort"
)

// Finding is one diagnostic after suppression processing.
type Finding struct {
	Analyzer string
	Position token.Position
	Category string
	Message  string
	// Suppressed marks findings waived by a //nocvet: directive; they
	// are kept (tests assert on them) but not printed and not counted
	// against the exit status.
	Suppressed bool
}

// Options tunes one checker run.
type Options struct {
	// ReportStale reports well-formed //nocvet: directives that waived
	// no finding as findings themselves, so waivers die with the code
	// they excused.  Staleness is relative to the analyzer set that
	// ran: only the full-suite run (cmd/nocvet) may enable this —
	// under a single analyzer (analysistest) every other analyzer's
	// waivers would look stale.
	ReportStale bool
}

// RunAnalyzers executes every analyzer over the units and returns all
// findings sorted by position.  Malformed or unknown //nocvet:
// directives are reported as findings of the pseudo-analyzer
// "directive" — a typo must fail loudly rather than silently
// suppressing nothing.
func RunAnalyzers(fset *token.FileSet, units []*Unit, analyzers []*Analyzer) ([]Finding, error) {
	return RunAnalyzersWith(fset, units, analyzers, Options{})
}

// RunAnalyzersWith is RunAnalyzers with explicit Options.
func RunAnalyzersWith(fset *token.FileSet, units []*Unit, analyzers []*Analyzer, opts Options) ([]Finding, error) {
	var findings []Finding
	indexes := make(map[*Unit]*DirectiveIndex, len(units))
	for _, u := range units {
		idx := NewDirectiveIndex(fset, u.Files)
		indexes[u] = idx
		for _, bad := range idx.Bad {
			findings = append(findings, Finding{
				Analyzer: "directive",
				Position: fset.Position(bad.Pos),
				Category: "directive",
				Message:  fmt.Sprintf("unknown nocvet directive (known: %s)", knownDirectiveNames()),
			})
		}
	}

	record := func(a *Analyzer, u *Unit) func(Diagnostic) {
		return func(d Diagnostic) {
			f := Finding{
				Analyzer: a.Name,
				Position: fset.Position(d.Pos),
				Category: d.Category,
				Message:  d.Message,
			}
			// A module analyzer may report into any unit; find the one
			// owning the position so its directives apply.
			idx := indexes[u]
			if idx == nil {
				idx = indexForPos(fset, indexes, d.Pos)
			}
			if idx != nil {
				if _, ok := idx.Suppressed(d.Pos, d.Category); ok {
					f.Suppressed = true
				}
			}
			findings = append(findings, f)
		}
	}

	for _, a := range analyzers {
		switch {
		case a.Run != nil:
			for _, u := range units {
				pass := &Pass{Analyzer: a, Fset: fset, Unit: u, Report: record(a, u)}
				if err := a.Run(pass); err != nil {
					return nil, fmt.Errorf("%s: %s: %w", a.Name, u.Path, err)
				}
			}
		case a.RunModule != nil:
			pass := &ModulePass{Analyzer: a, Fset: fset, Units: units, Report: record(a, nil)}
			if err := a.RunModule(pass); err != nil {
				return nil, fmt.Errorf("%s: %w", a.Name, err)
			}
		default:
			return nil, fmt.Errorf("analyzer %s has neither Run nor RunModule", a.Name)
		}
	}

	if opts.ReportStale {
		for _, u := range units {
			for _, d := range indexes[u].Stale() {
				msg := fmt.Sprintf("stale //nocvet:%s directive waives nothing; delete it", d.Name)
				if d.Reason != "" {
					msg += fmt.Sprintf(" (reason was: %s)", d.Reason)
				}
				findings = append(findings, Finding{
					Analyzer: "directive",
					Position: fset.Position(d.Pos),
					Category: "directive",
					Message:  msg,
				})
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		pi, pj := findings[i].Position, findings[j].Position
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return findings[i].Message < findings[j].Message
	})
	return findings, nil
}

// indexForPos locates the directive index of the unit whose file
// contains pos.
func indexForPos(fset *token.FileSet, indexes map[*Unit]*DirectiveIndex, pos token.Pos) *DirectiveIndex {
	filename := fset.Position(pos).Filename
	for u, idx := range indexes {
		for _, f := range u.Files {
			if fset.Position(f.Pos()).Filename == filename {
				return idx
			}
		}
	}
	return nil
}

// Active filters out suppressed findings.
func Active(findings []Finding) []Finding {
	var out []Finding
	for _, f := range findings {
		if !f.Suppressed {
			out = append(out, f)
		}
	}
	return out
}

// Print writes the active findings one per line in the canonical
// file:line:col: [analyzer] message format and returns how many it
// wrote.
func Print(w io.Writer, findings []Finding) int {
	n := 0
	for _, f := range findings {
		if f.Suppressed {
			continue
		}
		fmt.Fprintf(w, "%s: [%s] %s\n", f.Position, f.Analyzer, f.Message)
		n++
	}
	return n
}

func knownDirectiveNames() string {
	names := make([]string, 0, len(KnownDirectives))
	for n := range KnownDirectives {
		names = append(names, n)
	}
	sort.Strings(names)
	s := ""
	for i, n := range names {
		if i > 0 {
			s += ", "
		}
		s += n
	}
	return s
}
