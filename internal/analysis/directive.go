// Suppression directives.  A finding is intentional sometimes — a map
// range whose results are sorted before use, an allocation on a
// panic-only cold path — and the policy for blessing one is a source
// comment the reviewer can see and grep for:
//
//	//nocvet:<category> <reason>
//
// The comment must start exactly with "//nocvet:" (no space before the
// colon, mirroring //go: directive convention so gofmt leaves it
// alone).  <category> names the finding category being waived;
// <reason> is free text and strongly encouraged.  The directive
// silences matching findings reported on its own line or on the line
// immediately following its comment group, so both styles work, and a
// stack of directives above one statement all apply to it:
//
//	//nocvet:ordered keys are sorted two lines down
//	for k := range m { ... }
//
//	for k := range m { //nocvet:ordered keys are sorted below
//
// Coverage is strictly line-based — the directive's column never
// matters — so waivers survive gofmt re-indentation, leading tabs and
// multi-byte runes earlier on the line.  Stable finding identities
// (report.go) are column-free for the same reason.
//
// Unknown categories are themselves findings (category "directive"):
// a typo must fail the build, not silently suppress nothing.  A
// well-formed directive that waives nothing is stale; the checker can
// report those too (Options.ReportStale) so waivers die with the code
// they excused.
package analysis

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// directivePrefix introduces a suppression comment.
const directivePrefix = "//nocvet:"

// KnownDirectives is the registry of suppression categories.  Every
// Diagnostic.Category an analyzer reports must be listed here, or no
// directive could ever waive it.
var KnownDirectives = map[string]string{
	"ordered":     "map iteration whose observable effect is order-independent (determinism)",
	"determinism": "wall-clock or global-RNG use proven not to affect results (determinism)",
	"alloc":       "allocation on a proven cold path reachable from Step (hotalloc)",
	"hook":        "hook invocation whose guard the analyzer cannot see (nilhook)",
	"fingerprint": "fingerprint payload field audited by hand (fingerprintcheck)",
	"shard":       "write in a tile-parallel phase proven tile-confined by hand (shardsafe)",
}

// Directive is one parsed //nocvet: comment.
type Directive struct {
	// Name is the waived category, e.g. "ordered".
	Name string
	// Reason is the free text after the category, possibly empty.
	Reason string
	// Pos is the comment's position.
	Pos token.Pos
	// Used records whether the directive waived at least one finding
	// during a checker run; an unused directive is stale.
	Used bool
}

// ParseDirective parses a single comment.  ok reports whether the
// comment is a nocvet directive at all; a directive with an empty or
// malformed category still returns ok=true with Name=="" so the
// checker can flag it.
func ParseDirective(c *ast.Comment) (d Directive, ok bool) {
	// Line comments in CRLF files keep their trailing \r; strip it so
	// `//nocvet:alloc\r` parses as "alloc", not an invalid "alloc\r".
	text, found := strings.CutPrefix(strings.TrimSuffix(c.Text, "\r"), directivePrefix)
	if !found {
		return Directive{}, false
	}
	name, reason := text, ""
	// The category ends at the first space or tab.
	if i := strings.IndexAny(text, " \t"); i >= 0 {
		name, reason = text[:i], text[i+1:]
	}
	if !validDirectiveName(name) {
		name = ""
	}
	return Directive{Name: name, Reason: strings.TrimSpace(reason), Pos: c.Pos()}, true
}

// validDirectiveName reports whether s is a well-formed category name:
// nonempty lowercase letters with optional interior dashes.
func validDirectiveName(s string) bool {
	if s == "" || strings.HasPrefix(s, "-") || strings.HasSuffix(s, "-") {
		return false
	}
	for _, r := range s {
		if (r < 'a' || r > 'z') && r != '-' {
			return false
		}
	}
	return true
}

// DirectiveIndex maps file → line → the directives written there, and
// answers the only question the checker asks: is the finding at this
// position waived?
type DirectiveIndex struct {
	fset  *token.FileSet
	lines map[string]map[int][]*Directive
	// all holds every well-formed directive once, in scan order, for
	// the stale-waiver sweep (a directive covers two lines but must be
	// reported stale at most once).
	all []*Directive
	// Bad collects malformed or unknown-category directives, in file
	// order; the checker reports each as a finding.
	Bad []*Directive
}

// NewDirectiveIndex scans every comment of every file and builds the
// suppression index for one package.
func NewDirectiveIndex(fset *token.FileSet, files []*ast.File) *DirectiveIndex {
	idx := &DirectiveIndex{fset: fset, lines: make(map[string]map[int][]*Directive)}
	for _, f := range files {
		for _, cg := range f.Comments {
			groupEnd := fset.Position(cg.End()).Line
			for _, c := range cg.List {
				parsed, ok := ParseDirective(c)
				if !ok {
					continue
				}
				d := &parsed
				if _, known := KnownDirectives[d.Name]; !known {
					idx.Bad = append(idx.Bad, d)
					continue
				}
				idx.all = append(idx.all, d)
				pos := fset.Position(c.Pos())
				byLine := idx.lines[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]*Directive)
					idx.lines[pos.Filename] = byLine
				}
				// A directive covers its own line and the line right
				// after its comment group, so a stack of directives
				// above one statement all reach it.
				byLine[pos.Line] = append(byLine[pos.Line], d)
				if next := groupEnd + 1; next != pos.Line {
					byLine[next] = append(byLine[next], d)
				}
			}
		}
	}
	return idx
}

// Suppressed reports whether a finding of the given category at pos is
// waived by a directive covering that line, returning the waiving
// directive when so and marking it used.
func (idx *DirectiveIndex) Suppressed(pos token.Pos, category string) (*Directive, bool) {
	p := idx.fset.Position(pos)
	for _, d := range idx.lines[p.Filename][p.Line] {
		if d.Name == category {
			d.Used = true
			return d, true
		}
	}
	return nil, false
}

// Stale returns the well-formed directives that waived nothing, in
// position order.  Meaningful only after a full checker run: a
// directive is stale relative to the analyzer set that executed, so
// single-analyzer runs (analysistest) must not consult it.
func (idx *DirectiveIndex) Stale() []*Directive {
	var stale []*Directive
	for _, d := range idx.all {
		if !d.Used {
			stale = append(stale, d)
		}
	}
	sort.SliceStable(stale, func(i, j int) bool {
		pi, pj := idx.fset.Position(stale[i].Pos), idx.fset.Position(stale[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Line < pj.Line
	})
	return stale
}
