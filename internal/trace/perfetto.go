// Chrome-trace (Perfetto) export: renders the probe's event stream as
// a Trace Event Format JSON file loadable in https://ui.perfetto.dev
// or chrome://tracing.  Two views are emitted:
//
//   - Per-hop slices: every link traversal becomes a 1-cycle complete
//     event on the packet's own track (pid "domain D" / tid "packet N"),
//     named for the router and out-link it crossed — deflections are
//     flagged in the slice name, so a packet's zig-zag through the mesh
//     reads directly off the timeline.
//   - Per-packet life spans: one slice from creation to ejection (or
//     drop) per delivered packet on the same track, underneath its hops.
//
// One simulated cycle maps to one microsecond of trace time (ts/dur
// are µs in the format), so cycle numbers read directly as µs in the
// UI.
package trace

import (
	"bufio"
	"fmt"
	"io"

	"surfbless/internal/geom"
	"surfbless/internal/probe"
)

// Perfetto streams probe events into Chrome trace JSON.  Attach it to
// an armed probe with AttachTap, then Close it after the run to emit
// the closing bracket.  Like the probe it is single-goroutine.
type Perfetto struct {
	bw     *bufio.Writer
	out    io.Writer
	mesh   geom.Mesh
	n      int64
	closed bool
	cerr   error
}

// NewPerfetto returns an exporter writing Chrome trace JSON to w for a
// run on mesh.
func NewPerfetto(w io.Writer, mesh geom.Mesh) *Perfetto {
	p := &Perfetto{bw: bufio.NewWriter(w), out: w, mesh: mesh}
	fmt.Fprint(p.bw, `{"displayTimeUnit":"ms","traceEvents":[`)
	return p
}

// Events returns the number of trace events emitted so far.
func (p *Perfetto) Events() int64 { return p.n }

func (p *Perfetto) sep() {
	if p.n > 0 {
		p.bw.WriteByte(',')
	}
	p.n++
}

// dirName names an out-link direction for slice labels.
func dirName(d geom.Dir) string {
	switch d {
	case geom.North:
		return "N"
	case geom.East:
		return "E"
	case geom.South:
		return "S"
	case geom.West:
		return "W"
	default:
		return "L"
	}
}

// Consume implements probe.Tap: each batch becomes hop slices and
// packet life spans.  Ticks and NI-side bookkeeping events carry no
// timeline geometry and are skipped.
func (p *Perfetto) Consume(batch []probe.Event) {
	if p.closed {
		return
	}
	for i := range batch {
		e := &batch[i]
		switch e.Kind {
		case probe.KindLinkBusy, probe.KindDeflect:
			c := p.mesh.CoordOf(int(e.Node))
			label := ""
			if e.Kind == probe.KindDeflect {
				label = " deflect"
			}
			p.sep()
			fmt.Fprintf(p.bw,
				`{"name":"hop %d,%d→%s%s","cat":"hop","ph":"X","ts":%d,"dur":1,"pid":%d,"tid":%d,"args":{"flits":%d}}`,
				c.X, c.Y, dirName(geom.Dir(e.Dir)), label, e.Cycle, e.Domain, e.ID, e.Flits)
		case probe.KindEjected, probe.KindDropped:
			src, dst := p.mesh.CoordOf(int(e.Src)), p.mesh.CoordOf(int(e.Dst))
			name, cat := "packet", "packet"
			if e.Kind == probe.KindDropped {
				name, cat = "packet (dropped)", "drop"
			}
			dur := e.Cycle - e.Created
			if dur < 1 {
				dur = 1
			}
			p.sep()
			fmt.Fprintf(p.bw,
				`{"name":"%s %d,%d→%d,%d","cat":"%s","ph":"X","ts":%d,"dur":%d,"pid":%d,"tid":%d,"args":{"id":%d}}`,
				name, src.X, src.Y, dst.X, dst.Y, cat, e.Created, dur, e.Domain, e.ID, e.ID)
		}
	}
}

// Close emits the closing bracket, flushes, and closes the underlying
// writer when it is an io.Closer.  Idempotent like trace.Writer.Close.
func (p *Perfetto) Close() error {
	if p.closed {
		return p.cerr
	}
	p.closed = true
	fmt.Fprint(p.bw, "]}\n")
	err := p.bw.Flush()
	if c, ok := p.out.(io.Closer); ok {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	p.cerr = err
	return err
}
