package trace

import (
	"encoding/json"
	"strings"
	"testing"

	"surfbless/internal/config"
	"surfbless/internal/packet"
	"surfbless/internal/probe"
	"surfbless/internal/sim"
	"surfbless/internal/traffic"
)

// chromeTrace mirrors the Trace Event Format fields Perfetto needs to
// load a file; parsing into it proves the JSON is well formed.
type chromeTrace struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string `json:"name"`
		Cat  string `json:"cat"`
		Ph   string `json:"ph"`
		Ts   int64  `json:"ts"`
		Dur  int64  `json:"dur"`
		Pid  int64  `json:"pid"`
		Tid  uint64 `json:"tid"`
	} `json:"traceEvents"`
}

// TestPerfettoRealRun attaches the exporter to a real SB run (via
// sim.Options.Taps) and checks the output is loadable Chrome trace
// JSON containing both hop slices and packet life spans with sane
// geometry.
func TestPerfettoRealRun(t *testing.T) {
	cfg := config.Default(config.SB)
	cfg.Width, cfg.Height, cfg.Domains = 4, 4, 2
	sources := make([]traffic.Source, cfg.Domains)
	for i := range sources {
		sources[i] = traffic.Source{Rate: 0.02, Class: packet.Ctrl, VNet: -1}
	}
	var sb strings.Builder
	pf := NewPerfetto(&sb, cfg.Mesh())
	res, err := sim.Run(sim.Options{
		Cfg: cfg, Pattern: traffic.Transpose, Sources: sources,
		Warmup: 0, Measure: 400, Drain: 2000, Seed: 1,
		Taps: []probe.Tap{pf},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := pf.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pf.Close(); err != nil {
		t.Fatal("second Close errored:", err)
	}

	var ct chromeTrace
	if err := json.Unmarshal([]byte(sb.String()), &ct); err != nil {
		t.Fatalf("output is not valid Chrome trace JSON: %v", err)
	}
	if int64(len(ct.TraceEvents)) != pf.Events() {
		t.Errorf("parsed %d events, exporter reports %d", len(ct.TraceEvents), pf.Events())
	}
	hops, pkts := 0, 0
	for _, e := range ct.TraceEvents {
		if e.Ph != "X" {
			t.Fatalf("event phase %q, want complete events (X)", e.Ph)
		}
		switch e.Cat {
		case "hop":
			hops++
			if e.Dur != 1 {
				t.Fatalf("hop slice dur %d, want 1", e.Dur)
			}
		case "packet":
			pkts++
			if e.Dur < 1 {
				t.Fatalf("packet span dur %d, want ≥ 1", e.Dur)
			}
		}
		if e.Pid < 0 || e.Pid >= int64(cfg.Domains) {
			t.Fatalf("pid %d outside domain range", e.Pid)
		}
	}
	if hops == 0 || pkts == 0 {
		t.Fatalf("trace holds %d hop and %d packet events; want both", hops, pkts)
	}
	if int64(pkts) != res.Total.Ejected {
		t.Errorf("%d packet spans for %d ejections", pkts, res.Total.Ejected)
	}
}

// TestPerfettoEmpty: an exporter that saw no events still closes into
// a loadable (empty) trace.
func TestPerfettoEmpty(t *testing.T) {
	var sb strings.Builder
	pf := NewPerfetto(&sb, config.Default(config.SB).Mesh())
	if err := pf.Close(); err != nil {
		t.Fatal(err)
	}
	var ct chromeTrace
	if err := json.Unmarshal([]byte(sb.String()), &ct); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v", err)
	}
	if len(ct.TraceEvents) != 0 {
		t.Fatalf("empty trace holds %d events", len(ct.TraceEvents))
	}
}
