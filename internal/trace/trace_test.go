package trace

import (
	"errors"
	"strings"
	"testing"

	"surfbless/internal/config"
	"surfbless/internal/geom"
	"surfbless/internal/packet"
	"surfbless/internal/power"
	"surfbless/internal/router/bless"
	"surfbless/internal/stats"
)

func TestLineFormat(t *testing.T) {
	var sb strings.Builder
	w := New(&sb)
	tr := w.Tracer()
	p := packet.New(7, geom.Coord{X: 1, Y: 2}, geom.Coord{X: 3, Y: 4}, 1, packet.Ctrl, 10)
	p.Hops = 5
	p.Deflections = 2
	tr(stats.EvEjected, p, 1, 42)
	tr(stats.EvRefused, nil, 0, 43)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines, want 2", len(lines))
	}
	if lines[0] != "42,ejected,7,1,1:2,3:4,5,2" {
		t.Errorf("ejection line = %q", lines[0])
	}
	if lines[1] != "43,refused,,0,,,," {
		t.Errorf("refusal line = %q", lines[1])
	}
	if w.Events() != 2 {
		t.Errorf("Events = %d", w.Events())
	}
	// Field count matches the header.
	if got, want := strings.Count(lines[0], ","), strings.Count(Header(), ","); got != want {
		t.Errorf("line has %d commas, header %d", got, want)
	}
}

func TestFiltered(t *testing.T) {
	var sb strings.Builder
	w := NewFiltered(&sb, stats.EvEjected)
	tr := w.Tracer()
	p := packet.New(1, geom.Coord{}, geom.Coord{X: 1, Y: 0}, 0, packet.Ctrl, 0)
	tr(stats.EvCreated, p, 0, 1)
	tr(stats.EvInjected, p, 0, 2)
	tr(stats.EvEjected, p, 0, 3)
	w.Flush()
	if w.Events() != 1 {
		t.Errorf("filtered writer saw %d events, want 1", w.Events())
	}
	if !strings.HasPrefix(sb.String(), "3,ejected") {
		t.Errorf("output = %q", sb.String())
	}
}

// End to end: trace a real BLESS run and check event accounting matches
// the collector's conservation counters.
func TestTraceRealRun(t *testing.T) {
	var sb strings.Builder
	w := New(&sb)
	cfg := config.Default(config.BLESS)
	col := stats.NewCollector(1, 0, 0)
	col.SetTracer(w.Tracer())
	meter := power.NewMeter(cfg, power.Default45nm())
	fab, err := bless.New(cfg, nil, col, meter)
	if err != nil {
		t.Fatal(err)
	}
	var ids packet.IDSource
	mesh := cfg.Mesh()
	now := int64(0)
	for cyc := 0; cyc < 50; cyc++ {
		for node := 0; node < mesh.Nodes(); node += 7 {
			src := mesh.CoordOf(node)
			dst := mesh.CoordOf((node + 13) % mesh.Nodes())
			if src == dst {
				continue
			}
			fab.Inject(node, packet.New(ids.Next(), src, dst, 0, packet.Ctrl, now), now)
		}
		fab.Step(now)
		now++
	}
	for i := 0; i < 500 && fab.InFlight() > 0; i++ {
		fab.Step(now)
		now++
	}
	w.Flush()
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	want := col.AllCreated + col.AllInjected + col.AllEjected
	if int64(len(lines)) != want {
		t.Errorf("%d trace lines, want %d (created+injected+ejected)", len(lines), want)
	}
	if int64(strings.Count(sb.String(), ",ejected,")) != col.AllEjected {
		t.Error("ejection count mismatch")
	}
}

// closeRecorder counts Close calls and can inject a close error.
type closeRecorder struct {
	strings.Builder
	closed int
	err    error
}

func (c *closeRecorder) Close() error {
	c.closed++
	return c.err
}

var errClose = errors.New("disk full")

func TestCloseFlushesAndClosesUnderlying(t *testing.T) {
	var rec closeRecorder
	w := New(&rec)
	p := packet.New(1, geom.Coord{}, geom.Coord{X: 1}, 0, packet.Ctrl, 5)
	p.EjectedAt = 9
	w.Tracer()(stats.EvEjected, p, 0, 9)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if rec.closed != 1 {
		t.Errorf("underlying Close called %d times, want 1", rec.closed)
	}
	if !strings.Contains(rec.String(), "ejected") {
		t.Errorf("Close did not flush the buffered event: %q", rec.String())
	}
}

func TestClosePropagatesError(t *testing.T) {
	rec := closeRecorder{err: errClose}
	w := New(&rec)
	if err := w.Close(); err != errClose {
		t.Errorf("Close error = %v, want %v", err, errClose)
	}
	// A plain non-Closer writer: Close degrades to Flush.
	var sb strings.Builder
	if err := New(&sb).Close(); err != nil {
		t.Errorf("Close on non-Closer = %v", err)
	}
}

// TestCloseIdempotent is the regression test for the double-Close
// hazard: a second Close must not flush again, must not close the
// underlying file a second time, and must return the first call's
// error unchanged.
func TestCloseIdempotent(t *testing.T) {
	var rec closeRecorder
	w := New(&rec)
	for i := 0; i < 3; i++ {
		if err := w.Close(); err != nil {
			t.Fatalf("Close #%d: %v", i+1, err)
		}
	}
	if rec.closed != 1 {
		t.Errorf("underlying Close called %d times, want 1", rec.closed)
	}

	// The sticky error path: every Close reports the same failure.
	rec2 := closeRecorder{err: errClose}
	w2 := New(&rec2)
	if err := w2.Close(); err != errClose {
		t.Fatalf("first Close = %v, want %v", err, errClose)
	}
	if err := w2.Close(); err != errClose {
		t.Errorf("second Close = %v, want the sticky %v", err, errClose)
	}
	if rec2.closed != 1 {
		t.Errorf("underlying Close retried %d times after an error, want 1", rec2.closed)
	}
}
