// Package trace turns the collector's lifecycle callbacks into a
// line-oriented packet trace, for debugging schedules and for offline
// analysis (each line is also valid CSV).
//
// Format, one event per line:
//
//	cycle,kind,packet_id,domain,srcX:srcY,dstX:dstY,hops,deflections
//
// Refusals have no packet; they log the domain with empty packet
// fields.  Writing is buffered; call Flush (or Close) when done.
package trace

import (
	"bufio"
	"fmt"
	"io"

	"surfbless/internal/packet"
	"surfbless/internal/stats"
)

// Writer streams packet lifecycle events.
type Writer struct {
	bw     *bufio.Writer
	out    io.Writer
	events int64
	filter stats.EventKind
	all    bool
	closed bool
	cerr   error
}

// New returns a Writer emitting every event kind to w.
func New(w io.Writer) *Writer {
	return &Writer{bw: bufio.NewWriter(w), out: w, all: true}
}

// NewFiltered returns a Writer emitting only the given kind.
func NewFiltered(w io.Writer, kind stats.EventKind) *Writer {
	return &Writer{bw: bufio.NewWriter(w), out: w, filter: kind}
}

// Tracer returns the callback to install with Collector.SetTracer.
func (t *Writer) Tracer() stats.Tracer {
	return func(kind stats.EventKind, p *packet.Packet, domain int, now int64) {
		if !t.all && kind != t.filter {
			return
		}
		t.events++
		if p == nil {
			fmt.Fprintf(t.bw, "%d,%s,,%d,,,,\n", now, kind, domain)
			return
		}
		fmt.Fprintf(t.bw, "%d,%s,%d,%d,%d:%d,%d:%d,%d,%d\n",
			now, kind, p.ID, domain, p.Src.X, p.Src.Y, p.Dst.X, p.Dst.Y, p.Hops, p.Deflections)
	}
}

// Events returns the number of events written so far.
func (t *Writer) Events() int64 { return t.events }

// Flush drains the buffer to the underlying writer.
func (t *Writer) Flush() error { return t.bw.Flush() }

// Close flushes the buffer and, when the underlying writer is an
// io.Closer (a file), closes it too; the first error wins.  Close is
// idempotent: a second call is a no-op returning the first call's
// error, never a second flush or double-close of the file (both
// cleanup paths of a driver may reach the same Writer).  After Close
// the Writer must not be used for new events.
func (t *Writer) Close() error {
	if t.closed {
		return t.cerr
	}
	t.closed = true
	err := t.bw.Flush()
	if c, ok := t.out.(io.Closer); ok {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	t.cerr = err
	return err
}

// Header returns the CSV header matching the line format.
func Header() string {
	return "cycle,kind,packet_id,domain,src,dst,hops,deflections"
}
