package simcache

import (
	"bufio"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// Checkpoint is an append-only journal of completed sweep points,
// keyed by the same content-addressed fingerprints the result cache
// uses.  A sweep records each finished point's output row as it goes;
// after a crash or an interrupt, reopening the same file tells the
// sweep which points are already done so `-resume` re-simulates only
// the incomplete ones.
//
// The format is JSON Lines — one {"key": "<hex>", "row": "..."} object
// per line — chosen so a process killed mid-write damages at most the
// final line.  OpenCheckpoint therefore tolerates (and counts) a
// corrupt trailing line instead of refusing the whole journal; the
// damaged point is simply re-simulated and re-recorded.
//
// A Checkpoint is safe for concurrent use by parallel sweep workers.
type Checkpoint struct {
	mu      sync.Mutex
	f       *os.File
	done    map[Key]string // key → recorded output row
	skipped int            // undecodable journal lines
}

// checkpointLine is the JSON shape of one journal entry.
type checkpointLine struct {
	Key string `json:"key"`
	Row string `json:"row"`
}

// OpenCheckpoint opens (creating if absent) the journal at path and
// loads every decodable entry.  Undecodable lines — a torn final write,
// an editing accident — are skipped and counted, never fatal.
func OpenCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("simcache: checkpoint: %w", err)
	}
	c := &Checkpoint{f: f, done: make(map[Key]string)}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e checkpointLine
		if json.Unmarshal(line, &e) != nil {
			c.skipped++
			continue
		}
		raw, err := hex.DecodeString(e.Key)
		if err != nil || len(raw) != len(Key{}) {
			c.skipped++
			continue
		}
		var k Key
		copy(k[:], raw)
		c.done[k] = e.Row
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, fmt.Errorf("simcache: checkpoint %s: %w", path, err)
	}
	// Future appends go to the end; if the file ends in a torn line
	// (no trailing newline), terminate it first so the next Record
	// starts a fresh line instead of extending the corrupt one.
	end, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("simcache: checkpoint %s: %w", path, err)
	}
	if end > 0 {
		var last [1]byte
		if _, err := f.ReadAt(last[:], end-1); err != nil {
			f.Close()
			return nil, fmt.Errorf("simcache: checkpoint %s: %w", path, err)
		}
		if last[0] != '\n' {
			if _, err := f.Write([]byte{'\n'}); err != nil {
				f.Close()
				return nil, fmt.Errorf("simcache: checkpoint %s: %w", path, err)
			}
		}
	}
	return c, nil
}

// Lookup returns the recorded output row for key and whether the point
// is already done.
func (c *Checkpoint) Lookup(key Key) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	row, ok := c.done[key]
	return row, ok
}

// Record journals one completed point.  The row is the caller's output
// line for the point (e.g. a CSV record) so resuming can replay it
// verbatim.  The write is flushed before Record returns: once a sweep
// prints a point, a crash must not lose it.
func (c *Checkpoint) Record(key Key, row string) error {
	line, err := json.Marshal(checkpointLine{Key: key.String(), Row: row})
	if err != nil {
		return fmt.Errorf("simcache: checkpoint: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, err := c.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("simcache: checkpoint: %w", err)
	}
	if err := c.f.Sync(); err != nil {
		return fmt.Errorf("simcache: checkpoint: %w", err)
	}
	c.done[key] = row
	return nil
}

// Len returns the number of completed points loaded or recorded.
func (c *Checkpoint) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.done)
}

// Skipped returns the number of journal lines that failed to decode at
// open time (normally 0, or 1 after a torn final write).
func (c *Checkpoint) Skipped() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.skipped
}

// Close releases the journal file.
func (c *Checkpoint) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.f.Close()
}
