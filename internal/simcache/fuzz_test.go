package simcache

import (
	"bytes"
	"testing"
)

// FuzzFingerprint checks the keying contract the cache's soundness
// rests on: equal (version, payload) pairs always map to equal keys,
// and distinct pairs — including pairs whose concatenations coincide —
// map to distinct keys.
func FuzzFingerprint(f *testing.F) {
	f.Add("sim-v1", []byte(`{"Seed":1}`), []byte(`{"Seed":2}`))
	f.Add("", []byte{}, []byte{0})
	f.Add("a", []byte("bc"), []byte("b"))
	f.Fuzz(func(t *testing.T, version string, a, b []byte) {
		ka := Fingerprint(version, a)
		if ka != Fingerprint(version, a) {
			t.Fatal("fingerprint is not deterministic")
		}
		kb := Fingerprint(version, b)
		if bytes.Equal(a, b) != (ka == kb) {
			t.Fatalf("payload equality %v but key equality %v", bytes.Equal(a, b), ka == kb)
		}
		// A version bump must invalidate: same payload, different token.
		if ka == Fingerprint(version+"+1", a) {
			t.Fatal("version bump did not change the key")
		}
		// Moving bytes across the version/payload boundary must not
		// collide (the token is length-prefixed).
		if len(a) > 0 {
			shifted := Fingerprint(version+string(a[:1]), a[1:])
			if ka == shifted {
				t.Fatal("boundary-shifted inputs collide")
			}
		}
	})
}
