// Package simcache is a content-addressed result cache for
// deterministic simulation runs.  A run is a pure function of its
// options, so its result can be keyed by a fingerprint of a canonical
// serialization of those options plus a schema/code version token.
// Entries live in a bounded in-memory LRU and, optionally, as JSON
// envelopes on disk (results/.simcache/ by convention) so repeated
// figure regeneration and sweeps become near-instant on unchanged
// inputs.
//
// The cache is safe for concurrent use: parallel sweeps (the
// experiments package's parmap) share one instance.  It is strictly
// best-effort — a missing, unreadable or mismatched disk entry is a
// miss (counted in Stats.Corrupt when the file exists but fails
// verification), never an error, and a failed disk write leaves the
// memory tier intact.
package simcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Key is a content-addressed cache key: a SHA-256 digest of a version
// token and a canonical payload.
type Key [sha256.Size]byte

// String returns the key in lowercase hex, the on-disk file stem.
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// Fingerprint derives the key for a canonical payload.  The version
// token is length-prefixed before hashing so that (version, payload)
// pairs map injectively onto the hashed byte stream: bumping the token
// invalidates every existing entry without touching the payload
// encoding.
func Fingerprint(version string, payload []byte) Key {
	h := sha256.New()
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(len(version)))
	h.Write(n[:])
	h.Write([]byte(version))
	h.Write(payload)
	var k Key
	h.Sum(k[:0])
	return k
}

// DefaultMaxEntries bounds the in-memory LRU when Options.MaxEntries
// is not positive.  Entries are whole simulation results (a few KB
// each), so the default keeps the footprint in the tens of MB.
const DefaultMaxEntries = 4096

// Options configures a cache.
type Options struct {
	// Dir is the persistence directory ("" = memory-only).  It is
	// created if absent.
	Dir string
	// MaxEntries bounds the in-memory LRU (≤0 = DefaultMaxEntries).
	// Disk entries are never evicted; they are the persistent tier.
	MaxEntries int
}

// Stats are the cache's event counters.
type Stats struct {
	Hits      int64 // Get found a valid entry (memory or disk)
	Misses    int64 // Get found nothing usable
	Evictions int64 // memory entries displaced by the LRU bound
	Corrupt   int64 // disk entries that existed but failed verification
}

// String renders the counters the way the binaries report them.
func (s Stats) String() string {
	return fmt.Sprintf("%d hits, %d misses, %d evictions, %d corrupt entries",
		s.Hits, s.Misses, s.Evictions, s.Corrupt)
}

// Cache is a two-tier (memory LRU + optional disk) content-addressed
// store.  The zero value is not usable; construct with New.
type Cache struct {
	mu    sync.Mutex
	dir   string
	max   int
	ll    *list.List // front = most recently used
	items map[Key]*list.Element
	stats Stats
}

type entry struct {
	key   Key
	value []byte
}

// New returns a cache, creating the persistence directory when one is
// configured.
func New(o Options) (*Cache, error) {
	if o.MaxEntries <= 0 {
		o.MaxEntries = DefaultMaxEntries
	}
	if o.Dir != "" {
		if err := os.MkdirAll(o.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("simcache: %w", err)
		}
	}
	return &Cache{
		dir:   o.Dir,
		max:   o.MaxEntries,
		ll:    list.New(),
		items: make(map[Key]*list.Element),
	}, nil
}

// envelope is the on-disk JSON format.  Key and Sum make corruption
// detectable: a renamed, truncated or bit-flipped file fails
// verification and is treated as a miss.
type envelope struct {
	Key   string          `json:"key"`
	Sum   string          `json:"sum"` // SHA-256 of Value
	Value json.RawMessage `json:"value"`
}

// Get returns the cached value for key, consulting memory first and
// then the disk tier.  A disk hit is promoted into memory.
func (c *Cache) Get(key Key) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.stats.Hits++
		return el.Value.(*entry).value, true
	}
	if v, ok := c.load(key); ok {
		c.insert(key, v)
		c.stats.Hits++
		return v, true
	}
	c.stats.Misses++
	return nil, false
}

// Put stores value under key in memory and, when a directory is
// configured, on disk.  The disk write is atomic (temp file + rename)
// and best-effort: its failure does not invalidate the memory entry.
func (c *Cache) Put(key Key, value []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.insert(key, value)
	c.store(key, value)
}

// NoteCorrupt records an entry that passed Get but failed the caller's
// decoding — the caller treats it as a miss and overwrites it.
func (c *Cache) NoteCorrupt() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Corrupt++
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// MetricsRegistry is the slice of probe.Metrics the cache needs to
// publish itself — an interface here so simcache does not depend on
// the observability layer.
type MetricsRegistry interface {
	CounterFunc(name, help string, fn func() int64)
	GaugeFunc(name, help string, fn func() int64)
}

// ExposeMetrics registers the cache's live counters on reg, so `-http`
// runs can scrape cache effectiveness from /metrics instead of waiting
// for the end-of-run stderr summary.  The callbacks snapshot under the
// cache mutex and are safe to scrape concurrently with lookups.
func (c *Cache) ExposeMetrics(reg MetricsRegistry) {
	reg.CounterFunc("surfbless_simcache_hits_total", "result-cache lookups served from memory or disk", func() int64 { return c.Stats().Hits })
	reg.CounterFunc("surfbless_simcache_misses_total", "result-cache lookups that found nothing usable", func() int64 { return c.Stats().Misses })
	reg.CounterFunc("surfbless_simcache_evictions_total", "memory entries displaced by the LRU bound", func() int64 { return c.Stats().Evictions })
	reg.CounterFunc("surfbless_simcache_corrupt_total", "cache entries that failed verification", func() int64 { return c.Stats().Corrupt })
	reg.GaugeFunc("surfbless_simcache_entries", "in-memory cache entries", func() int64 { return int64(c.Len()) })
}

// Len returns the number of in-memory entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// insert adds or refreshes a memory entry and enforces the LRU bound.
// Callers hold c.mu.
func (c *Cache) insert(key Key, value []byte) {
	if el, ok := c.items[key]; ok {
		el.Value.(*entry).value = value
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&entry{key: key, value: value})
	for c.ll.Len() > c.max {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*entry).key)
		c.stats.Evictions++
	}
}

func (c *Cache) path(key Key) string {
	return filepath.Join(c.dir, key.String()+".json")
}

// load reads and verifies a disk entry.  A file that exists but fails
// verification is quarantined — renamed to <name>.corrupt — so the
// evidence survives for forensics, repeated lookups of the same key
// become plain misses instead of re-counting the same corruption, and
// the next Put can lay down a clean entry under the original name.
// Callers hold c.mu.
func (c *Cache) load(key Key) ([]byte, bool) {
	if c.dir == "" {
		return nil, false
	}
	path := c.path(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, false // absent (or unreadable): a plain miss
	}
	var env envelope
	if err := json.Unmarshal(raw, &env); err != nil {
		c.quarantine(path)
		return nil, false
	}
	sum := sha256.Sum256(env.Value)
	if env.Key != key.String() || env.Sum != hex.EncodeToString(sum[:]) {
		c.quarantine(path)
		return nil, false
	}
	return []byte(env.Value), true
}

// quarantine counts and sidelines a corrupt disk entry.  The rename is
// best-effort (a read-only cache directory still yields a functioning
// miss); an earlier quarantined file under the same name is
// overwritten — the newest corruption is the interesting one.
func (c *Cache) quarantine(path string) {
	c.stats.Corrupt++
	os.Rename(path, path+".corrupt") //nolint:errcheck // best-effort evidence preservation
}

// store writes a disk entry atomically and durably: the temp file is
// fsynced before the rename, so a machine crash right after the rename
// cannot leave a visible entry with unflushed (empty or partial)
// contents — the entry either exists whole or not at all.  Callers
// hold c.mu.
func (c *Cache) store(key Key, value []byte) {
	if c.dir == "" {
		return
	}
	sum := sha256.Sum256(value)
	raw, err := json.Marshal(envelope{
		Key:   key.String(),
		Sum:   hex.EncodeToString(sum[:]),
		Value: json.RawMessage(value),
	})
	if err != nil {
		return // value was not valid JSON; keep the memory entry only
	}
	tmp, err := os.CreateTemp(c.dir, "put-*.tmp")
	if err != nil {
		return
	}
	_, werr := tmp.Write(raw)
	serr := tmp.Sync()
	cerr := tmp.Close()
	if werr != nil || serr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
	}
}
