package simcache

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func ckKey(b byte) Key {
	var k Key
	k[0] = b
	return k
}

func TestCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	c, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 0 {
		t.Fatalf("fresh checkpoint has %d entries", c.Len())
	}
	if err := c.Record(ckKey(1), "row one"); err != nil {
		t.Fatal(err)
	}
	if err := c.Record(ckKey(2), "row two"); err != nil {
		t.Fatal(err)
	}
	if row, ok := c.Lookup(ckKey(1)); !ok || row != "row one" {
		t.Errorf("Lookup(1) = %q, %v", row, ok)
	}
	if _, ok := c.Lookup(ckKey(3)); ok {
		t.Error("Lookup invented a point")
	}
	c.Close()

	// Reopen: both points survive the restart.
	c2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Len() != 2 || c2.Skipped() != 0 {
		t.Fatalf("reopened: %d entries, %d skipped", c2.Len(), c2.Skipped())
	}
	if row, ok := c2.Lookup(ckKey(2)); !ok || row != "row two" {
		t.Errorf("Lookup(2) after reopen = %q, %v", row, ok)
	}
}

// A process killed mid-write tears the final line; the journal must
// still open, losing only that point.
func TestCheckpointToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	c, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	c.Record(ckKey(1), "kept")
	c.Close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"key":"00ab","row":"torn`)
	f.Close()

	c2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatalf("torn tail made the journal unopenable: %v", err)
	}
	defer c2.Close()
	if c2.Len() != 1 || c2.Skipped() != 1 {
		t.Errorf("torn journal: %d entries, %d skipped; want 1, 1", c2.Len(), c2.Skipped())
	}
	// A short-but-valid JSON line whose key is not a digest is skipped too.
	if _, ok := c2.Lookup(ckKey(1)); !ok {
		t.Error("intact entry lost")
	}
	// Recording after a torn tail appends a fresh valid line.
	if err := c2.Record(ckKey(2), "after"); err != nil {
		t.Fatal(err)
	}
	c3, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if c3.Len() != 2 {
		t.Errorf("recovery append lost: %d entries", c3.Len())
	}
}

// Sustained concurrent appenders — the sweep service's workers all
// journaling through one coordinator checkpoint — must interleave at
// line granularity: every recorded point survives a reopen intact and
// no write tears another's line.
func TestCheckpointConcurrentAppenders(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	c, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	const appenders, each = 8, 25
	var wg sync.WaitGroup
	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				var k Key
				k[0], k[1] = byte(a), byte(i)
				row := fmt.Sprintf("row a%d i%d", a, i)
				if err := c.Record(k, row); err != nil {
					t.Error(err)
					return
				}
				// Readers race the appenders in service mode: a worker
				// completion looks up dedup state while others journal.
				if got, ok := c.Lookup(k); !ok || got != row {
					t.Errorf("Lookup(%d,%d) = %q, %v mid-append", a, i, got, ok)
					return
				}
			}
		}(a)
	}
	wg.Wait()
	c.Close()
	c2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Len() != appenders*each || c2.Skipped() != 0 {
		t.Fatalf("concurrent journal: %d entries, %d skipped; want %d, 0",
			c2.Len(), c2.Skipped(), appenders*each)
	}
	for a := 0; a < appenders; a++ {
		for i := 0; i < each; i++ {
			var k Key
			k[0], k[1] = byte(a), byte(i)
			if row, ok := c2.Lookup(k); !ok || row != fmt.Sprintf("row a%d i%d", a, i) {
				t.Fatalf("entry (%d,%d) lost or mangled: %q %v", a, i, row, ok)
			}
		}
	}
}

// Resuming over a torn tail while a service run is already appending:
// the reopened journal must terminate the torn line before the
// concurrent appenders reach the file, so none of their lines are
// glued onto the damage.  This is the coordinator-bounce path — the
// WAL reopens mid-sweep with workers still completing points.
func TestCheckpointTornTailResumeWhileInFlight(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	c, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	c.Record(ckKey(200), "survivor")
	c.Close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"key":"00ab","row":"torn mid-crash`)
	f.Close()

	c2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatalf("torn tail made the journal unopenable: %v", err)
	}
	if c2.Skipped() != 1 {
		t.Fatalf("Skipped = %d, want 1 torn line", c2.Skipped())
	}
	const appenders, each = 6, 20
	var wg sync.WaitGroup
	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				var k Key
				k[0], k[1], k[2] = 1, byte(a), byte(i)
				if err := c2.Record(k, "resumed"); err != nil {
					t.Error(err)
					return
				}
			}
		}(a)
	}
	wg.Wait()
	c2.Close()

	c3, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	// survivor + all in-flight appends; exactly the original torn line
	// is skipped — no resumed line was corrupted by the damage.
	if c3.Len() != 1+appenders*each || c3.Skipped() != 1 {
		t.Fatalf("after in-flight resume: %d entries, %d skipped; want %d, 1",
			c3.Len(), c3.Skipped(), 1+appenders*each)
	}
	if row, ok := c3.Lookup(ckKey(200)); !ok || row != "survivor" {
		t.Errorf("pre-crash entry lost: %q %v", row, ok)
	}
}

func TestCheckpointConcurrentRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt")
	c, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i byte) {
			defer wg.Done()
			if err := c.Record(ckKey(i), "r"); err != nil {
				t.Error(err)
			}
		}(byte(i))
	}
	wg.Wait()
	c.Close()
	c2, err := OpenCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Len() != 32 || c2.Skipped() != 0 {
		t.Errorf("concurrent journal: %d entries, %d skipped; want 32, 0", c2.Len(), c2.Skipped())
	}
}
