package simcache

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func key(s string) Key { return Fingerprint("test-v1", []byte(s)) }

func TestFingerprintStability(t *testing.T) {
	a := Fingerprint("v1", []byte(`{"x":1}`))
	if a != Fingerprint("v1", []byte(`{"x":1}`)) {
		t.Error("equal inputs produced different keys")
	}
	if a == Fingerprint("v1", []byte(`{"x":2}`)) {
		t.Error("distinct payloads produced the same key")
	}
	if a == Fingerprint("v2", []byte(`{"x":1}`)) {
		t.Error("version bump did not change the key")
	}
	// The length prefix keeps (version, payload) injective even when a
	// version/payload boundary shifts.
	if Fingerprint("ab", []byte("c")) == Fingerprint("a", []byte("bc")) {
		t.Error("boundary-shifted inputs collide")
	}
}

func TestMemoryHitMiss(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key("a")); ok {
		t.Fatal("hit on an empty cache")
	}
	c.Put(key("a"), []byte(`"va"`))
	v, ok := c.Get(key("a"))
	if !ok || !bytes.Equal(v, []byte(`"va"`)) {
		t.Fatalf("got %q %v, want va", v, ok)
	}
	if s := c.Stats(); s.Hits != 1 || s.Misses != 1 || s.Evictions != 0 || s.Corrupt != 0 {
		t.Errorf("stats %+v, want 1 hit / 1 miss", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c, err := New(Options{MaxEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	c.Put(key("a"), []byte(`1`))
	c.Put(key("b"), []byte(`2`))
	c.Get(key("a")) // refresh a: b becomes the LRU victim
	c.Put(key("c"), []byte(`3`))
	if _, ok := c.Get(key("b")); ok {
		t.Error("LRU victim b survived")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.Get(key(k)); !ok {
			t.Errorf("recently used %q evicted", k)
		}
	}
	if s := c.Stats(); s.Evictions != 1 {
		t.Errorf("%d evictions, want 1", s.Evictions)
	}
	if c.Len() != 2 {
		t.Errorf("len %d, want 2", c.Len())
	}
}

func TestDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	c1, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	c1.Put(key("a"), []byte(`{"r":42}`))

	// A fresh cache over the same directory sees the entry.
	c2, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	v, ok := c2.Get(key("a"))
	if !ok || !bytes.Equal(v, []byte(`{"r":42}`)) {
		t.Fatalf("disk entry not recovered: %q %v", v, ok)
	}
	if s := c2.Stats(); s.Hits != 1 {
		t.Errorf("stats %+v, want a disk hit", s)
	}
	// And a memory eviction does not lose it.
	c3, err := New(Options{Dir: dir, MaxEntries: 1})
	if err != nil {
		t.Fatal(err)
	}
	c3.Put(key("b"), []byte(`1`))
	c3.Put(key("c"), []byte(`2`)) // evicts b from memory
	if _, ok := c3.Get(key("b")); !ok {
		t.Error("evicted entry not recovered from disk")
	}
}

func TestCorruptEntriesAreMisses(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	k := key("a")
	c.Put(k, []byte(`{"r":1}`))
	path := filepath.Join(dir, k.String()+".json")

	corrupt := func(name string, content []byte) {
		t.Helper()
		if err := os.WriteFile(path, content, 0o644); err != nil {
			t.Fatal(err)
		}
		fresh, err := New(Options{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := fresh.Get(k); ok {
			t.Errorf("%s: corrupt entry served", name)
		}
		if s := fresh.Stats(); s.Corrupt != 1 || s.Misses != 1 {
			t.Errorf("%s: stats %+v, want 1 corrupt + 1 miss", name, s)
		}
	}
	corrupt("truncated", []byte(`{"key":"`))
	corrupt("wrong key", mustEnvelope(t, key("other"), []byte(`{"r":1}`)))
	bad := mustEnvelope(t, k, []byte(`{"r":1}`))
	bad = bytes.Replace(bad, []byte(`"r":1`), []byte(`"r":2`), 1) // sum mismatch
	corrupt("flipped value", bad)

	// A Put over the corrupt file repairs it.
	c.Put(k, []byte(`{"r":3}`))
	fresh, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := fresh.Get(k); !ok || !bytes.Equal(v, []byte(`{"r":3}`)) {
		t.Errorf("repair failed: %q %v", v, ok)
	}
}

// A corrupt disk entry must be quarantined, not silently consumed: the
// damaged file moves aside to <name>.corrupt (preserving the evidence),
// the corrupt counter ticks exactly once, and subsequent lookups of the
// same key are plain misses until a Put lays down a clean entry.
func TestCorruptEntriesAreQuarantined(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	k := key("q")
	c.Put(k, []byte(`{"r":1}`))
	path := filepath.Join(dir, k.String()+".json")
	if err := os.WriteFile(path, []byte(`{"key":"torn`), 0o644); err != nil {
		t.Fatal(err)
	}

	fresh, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fresh.Get(k); ok {
		t.Fatal("corrupt entry served")
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Errorf("corrupt entry not quarantined: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("corrupt entry still at its original path (err %v)", err)
	}
	// The second miss is plain: the quarantined file no longer shadows
	// the key, so the counter must not tick again.
	if _, ok := fresh.Get(k); ok {
		t.Fatal("quarantined entry served")
	}
	if s := fresh.Stats(); s.Corrupt != 1 || s.Misses != 2 {
		t.Errorf("stats %+v, want exactly 1 corrupt + 2 misses", s)
	}

	// A Put after quarantine restores a clean, loadable entry.
	fresh.Put(k, []byte(`{"r":2}`))
	again, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := again.Get(k); !ok || !bytes.Equal(v, []byte(`{"r":2}`)) {
		t.Errorf("post-quarantine repair failed: %q %v", v, ok)
	}
}

func mustEnvelope(t *testing.T, k Key, value []byte) []byte {
	t.Helper()
	c, err := New(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	c.Put(k, value)
	raw, err := os.ReadFile(c.path(k))
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestMissingDirEntriesArePlainMisses(t *testing.T) {
	c, err := New(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key("absent")); ok {
		t.Fatal("hit for an absent key")
	}
	if s := c.Stats(); s.Corrupt != 0 || s.Misses != 1 {
		t.Errorf("stats %+v, want a plain miss", s)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c, err := New(Options{Dir: t.TempDir(), MaxEntries: 32})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := key(fmt.Sprint(i % 50))
				if v, ok := c.Get(k); ok {
					var got int
					if err := json.Unmarshal(v, &got); err != nil || got != i%50 {
						t.Errorf("worker %d: bad value %q for %d", w, v, i%50)
						return
					}
				} else {
					c.Put(k, []byte(fmt.Sprint(i%50)))
				}
			}
		}(w)
	}
	wg.Wait()
	s := c.Stats()
	if s.Hits == 0 || s.Corrupt != 0 {
		t.Errorf("stats %+v, want hits and no corruption", s)
	}
}
