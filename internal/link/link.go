// Package link models pipelined point-to-point channels as delay lines:
// an item sent at cycle T is delivered exactly T+delay cycles later, in
// FIFO order.  The same primitive carries flits, whole worms (for the
// bufferless models, whose router pipeline is folded into the hop
// delay) and returning credits.
package link

import "fmt"

// Line is a fixed-delay FIFO channel of items of type T.  The zero
// value is unusable; construct with New.  Line is not safe for
// concurrent use: the simulator is single-goroutine by design.
type Line[T any] struct {
	delay int64
	queue []entry[T] // in send order; arrival times are non-decreasing
}

type entry[T any] struct {
	at   int64
	item T
}

// New returns a line with the given propagation delay in cycles.
// It panics if delay < 1: zero-delay channels would break the
// two-phase network cycle (a same-cycle delivery could be consumed
// before it was sent, depending on router iteration order).
func New[T any](delay int) *Line[T] {
	if delay < 1 {
		panic(fmt.Sprintf("link: delay %d must be ≥ 1", delay))
	}
	return &Line[T]{delay: int64(delay)}
}

// Delay returns the line's propagation delay in cycles.
func (l *Line[T]) Delay() int { return int(l.delay) }

// Send schedules item for delivery at now+delay.  Sends must be issued
// with non-decreasing now; the line panics otherwise, because such a
// send would reorder deliveries and indicates a broken cycle loop.
func (l *Line[T]) Send(item T, now int64) {
	at := now + l.delay
	if n := len(l.queue); n > 0 && l.queue[n-1].at > at {
		//nocvet:alloc panic-path formatting on a falsified invariant; runs at most once, while dying
		panic(fmt.Sprintf("link: send at cycle %d after send arriving %d", now, l.queue[n-1].at))
	}
	l.queue = append(l.queue, entry[T]{at: at, item: item})
}

// Recv removes and returns all items due at exactly cycle now.  It
// panics if an item's delivery time has already passed undelivered,
// which means the network skipped a cycle.
//
// Recv allocates a fresh slice per call; hot paths should use RecvInto
// with a reused scratch buffer instead.
func (l *Line[T]) Recv(now int64) []T {
	return l.RecvInto(now, nil)
}

// RecvInto is Recv with caller-owned memory: items due at exactly
// cycle now are appended to buf and the extended slice is returned.
// Passing the previous cycle's buffer re-sliced to [:0] makes the
// steady-state receive path allocation-free.  The returned memory
// belongs to the caller; the line keeps no reference to it.
func (l *Line[T]) RecvInto(now int64, buf []T) []T {
	i := 0
	for ; i < len(l.queue) && l.queue[i].at <= now; i++ {
		if l.queue[i].at < now {
			//nocvet:alloc panic-path formatting on a falsified invariant; runs at most once, while dying
			panic(fmt.Sprintf("link: item due at %d not collected until %d", l.queue[i].at, now))
		}
		buf = append(buf, l.queue[i].item)
	}
	if i > 0 {
		// Shift remaining entries down, keeping the backing array, and
		// zero the vacated tail: the stale copies beyond the new length
		// would otherwise pin delivered items (packet pointers) in the
		// backing array, invisible to the GC until overwritten.
		n := copy(l.queue, l.queue[i:])
		var zero entry[T]
		for j := n; j < len(l.queue); j++ {
			l.queue[j] = zero
		}
		l.queue = l.queue[:n]
	}
	return buf
}

// InFlight returns the number of items currently traversing the line.
func (l *Line[T]) InFlight() int { return len(l.queue) }

// Idle reports whether nothing is traversing the line.  It is a cheap
// inlinable guard: receive paths test it before RecvInto to skip the
// call overhead on the common empty line.
func (l *Line[T]) Idle() bool { return len(l.queue) == 0 }
