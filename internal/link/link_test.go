package link

import (
	"testing"
	"testing/quick"
)

func TestNewPanicsOnZeroDelay(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) must panic")
		}
	}()
	New[int](0)
}

func TestDelay(t *testing.T) {
	l := New[int](3)
	if l.Delay() != 3 {
		t.Errorf("Delay = %d, want 3", l.Delay())
	}
}

func TestDelivery(t *testing.T) {
	l := New[string](3)
	l.Send("a", 10)
	for now := int64(11); now < 13; now++ {
		if got := l.Recv(now); got != nil {
			t.Fatalf("early delivery at %d: %v", now, got)
		}
	}
	got := l.Recv(13)
	if len(got) != 1 || got[0] != "a" {
		t.Fatalf("Recv(13) = %v, want [a]", got)
	}
	if got := l.Recv(14); got != nil {
		t.Errorf("item delivered twice: %v", got)
	}
}

func TestFIFOSameCycle(t *testing.T) {
	l := New[int](2)
	l.Send(1, 5)
	l.Send(2, 5)
	got := l.Recv(7)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Recv = %v, want [1 2]", got)
	}
}

func TestInFlight(t *testing.T) {
	l := New[int](4)
	if l.InFlight() != 0 {
		t.Error("new line should be empty")
	}
	l.Send(1, 0)
	l.Send(2, 1)
	if l.InFlight() != 2 {
		t.Errorf("InFlight = %d, want 2", l.InFlight())
	}
	l.Recv(4)
	if l.InFlight() != 1 {
		t.Errorf("InFlight after first delivery = %d, want 1", l.InFlight())
	}
}

func TestSendOutOfOrderPanics(t *testing.T) {
	l := New[int](2)
	l.Send(1, 10)
	defer func() {
		if recover() == nil {
			t.Error("out-of-order send must panic")
		}
	}()
	l.Send(2, 5)
}

func TestMissedCyclePanics(t *testing.T) {
	l := New[int](1)
	l.Send(1, 0)
	defer func() {
		if recover() == nil {
			t.Error("skipping a delivery cycle must panic")
		}
	}()
	l.Recv(2) // item was due at 1
}

// RecvInto must append to the caller's buffer and reuse its capacity:
// the steady-state receive path may not allocate.
func TestRecvIntoReusesBuffer(t *testing.T) {
	l := New[int](1)
	buf := make([]int, 0, 4)
	for now := int64(0); now < 100; now++ {
		l.Send(int(now), now)
		buf = l.RecvInto(now+1, buf[:0])
		// Drain the previous send before the next; steady state is one
		// item per cycle.
		if len(buf) != 1 || buf[0] != int(now) {
			t.Fatalf("cycle %d: RecvInto = %v, want [%d]", now, buf, now)
		}
		if cap(buf) != 4 {
			t.Fatalf("cycle %d: buffer reallocated (cap %d)", now, cap(buf))
		}
	}
	if avg := testing.AllocsPerRun(100, func() {
		l.Send(1, 1<<20)
		buf = l.RecvInto(1<<20+1, buf[:0])
	}); avg != 0 {
		t.Errorf("RecvInto allocates %.2f times per steady-state cycle, want 0", avg)
	}
}

// After a partial delivery the vacated tail of the internal queue must
// be zeroed: stale entries would pin delivered items (in real use,
// *packet.Packet) in the backing array beyond the slice length,
// hiding them from the GC.
func TestRecvZeroesVacatedTail(t *testing.T) {
	l := New[*int](1)
	a, b := new(int), new(int)
	l.Send(a, 0) // due at 1
	l.Send(b, 1) // due at 2
	got := l.Recv(1)
	if len(got) != 1 || got[0] != a {
		t.Fatalf("Recv(1) = %v, want [a]", got)
	}
	// One entry remains live; the vacated second slot must hold no
	// stale pointer.
	q := l.queue[:cap(l.queue)]
	for i := l.InFlight(); i < len(q); i++ {
		if q[i].item != nil {
			t.Errorf("queue slot %d retains %p after delivery", i, q[i].item)
		}
	}
}

// Property: with per-cycle Recv, every item arrives exactly delay
// cycles after it was sent, in send order.
func TestDelayProperty(t *testing.T) {
	f := func(delayRaw uint8, gaps []uint8) bool {
		delay := int(delayRaw%5) + 1
		l := New[int](delay)
		type sent struct {
			seq int
			at  int64
		}
		var sends []sent
		now := int64(0)
		for i, g := range gaps {
			now += int64(g % 4)
			l.Send(i, now)
			sends = append(sends, sent{seq: i, at: now})
		}
		var got []sent
		for t := int64(0); t <= now+int64(delay); t++ {
			for _, item := range l.Recv(t) {
				got = append(got, sent{seq: item, at: t})
			}
		}
		if len(got) != len(sends) {
			return false
		}
		for i := range got {
			if got[i].seq != sends[i].seq || got[i].at != sends[i].at+int64(delay) {
				return false
			}
		}
		return l.InFlight() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
