package link

import (
	"testing"
	"testing/quick"
)

func TestNewPanicsOnZeroDelay(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) must panic")
		}
	}()
	New[int](0)
}

func TestDelay(t *testing.T) {
	l := New[int](3)
	if l.Delay() != 3 {
		t.Errorf("Delay = %d, want 3", l.Delay())
	}
}

func TestDelivery(t *testing.T) {
	l := New[string](3)
	l.Send("a", 10)
	for now := int64(11); now < 13; now++ {
		if got := l.Recv(now); got != nil {
			t.Fatalf("early delivery at %d: %v", now, got)
		}
	}
	got := l.Recv(13)
	if len(got) != 1 || got[0] != "a" {
		t.Fatalf("Recv(13) = %v, want [a]", got)
	}
	if got := l.Recv(14); got != nil {
		t.Errorf("item delivered twice: %v", got)
	}
}

func TestFIFOSameCycle(t *testing.T) {
	l := New[int](2)
	l.Send(1, 5)
	l.Send(2, 5)
	got := l.Recv(7)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("Recv = %v, want [1 2]", got)
	}
}

func TestInFlight(t *testing.T) {
	l := New[int](4)
	if l.InFlight() != 0 {
		t.Error("new line should be empty")
	}
	l.Send(1, 0)
	l.Send(2, 1)
	if l.InFlight() != 2 {
		t.Errorf("InFlight = %d, want 2", l.InFlight())
	}
	l.Recv(4)
	if l.InFlight() != 1 {
		t.Errorf("InFlight after first delivery = %d, want 1", l.InFlight())
	}
}

func TestSendOutOfOrderPanics(t *testing.T) {
	l := New[int](2)
	l.Send(1, 10)
	defer func() {
		if recover() == nil {
			t.Error("out-of-order send must panic")
		}
	}()
	l.Send(2, 5)
}

func TestMissedCyclePanics(t *testing.T) {
	l := New[int](1)
	l.Send(1, 0)
	defer func() {
		if recover() == nil {
			t.Error("skipping a delivery cycle must panic")
		}
	}()
	l.Recv(2) // item was due at 1
}

// Property: with per-cycle Recv, every item arrives exactly delay
// cycles after it was sent, in send order.
func TestDelayProperty(t *testing.T) {
	f := func(delayRaw uint8, gaps []uint8) bool {
		delay := int(delayRaw%5) + 1
		l := New[int](delay)
		type sent struct {
			seq int
			at  int64
		}
		var sends []sent
		now := int64(0)
		for i, g := range gaps {
			now += int64(g % 4)
			l.Send(i, now)
			sends = append(sends, sent{seq: i, at: now})
		}
		var got []sent
		for t := int64(0); t <= now+int64(delay); t++ {
			for _, item := range l.Recv(t) {
				got = append(got, sent{seq: item, at: t})
			}
		}
		if len(got) != len(sends) {
			return false
		}
		for i := range got {
			if got[i].seq != sends[i].seq || got[i].at != sends[i].at+int64(delay) {
				return false
			}
		}
		return l.InFlight() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
