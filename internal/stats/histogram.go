package stats

import (
	"fmt"
	"math/bits"
	"strings"
)

// Histogram accumulates latency samples into power-of-two buckets, so
// percentiles are available without storing samples (tail latency is a
// first-class quantity for confined-interference networks: the wave
// schedule bounds it, deflection storms blow it up).
type Histogram struct {
	buckets [64]int64 // bucket i counts samples with bit length i
	count   int64
	sum     int64
	max     int64
	invalid int64 // negative samples seen and excluded
}

// Add records one sample.  Latencies are non-negative by construction
// on healthy runs, but a degraded fabric (fault injection, recovered
// invariant violation) can surface a packet with inconsistent stamps;
// such samples are counted in Invalid() and excluded from the
// distribution instead of crashing mid-sweep.
func (h *Histogram) Add(v int64) {
	if v < 0 {
		h.invalid++
		return
	}
	h.buckets[bits.Len64(uint64(v))]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Invalid returns the number of negative samples rejected by Add.
func (h *Histogram) Invalid() int64 { return h.invalid }

// Count returns the number of samples.
func (h *Histogram) Count() int64 { return h.count }

// Mean returns the sample mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Max returns the largest sample.
func (h *Histogram) Max() int64 { return h.max }

// Percentile returns an upper bound for the p-quantile (0 < p ≤ 1):
// the top of the bucket where the cumulative count crosses p·count.
// The bound is within 2× of the true quantile by construction.
func (h *Histogram) Percentile(p float64) int64 {
	if p <= 0 || p > 1 {
		panic(fmt.Sprintf("stats: percentile %g outside (0,1]", p))
	}
	if h.count == 0 {
		return 0
	}
	threshold := int64(p * float64(h.count))
	if threshold < 1 {
		threshold = 1
	}
	var cum int64
	for i, n := range h.buckets {
		cum += n
		if cum >= threshold {
			if i == 0 {
				return 0
			}
			upper := int64(1)<<i - 1
			if upper > h.max {
				upper = h.max
			}
			return upper
		}
	}
	return h.max
}

// String renders a compact sparkline-ish summary.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.1f p50≤%d p95≤%d p99≤%d max=%d",
		h.count, h.Mean(), h.Percentile(0.5), h.Percentile(0.95), h.Percentile(0.99), h.max)
	return b.String()
}
