package stats

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"surfbless/internal/geom"
	"surfbless/internal/packet"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(0.5) != 0 {
		t.Error("empty histogram must read zero")
	}
	for _, v := range []int64{1, 2, 3, 4, 100} {
		h.Add(v)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Mean() != 22 {
		t.Errorf("Mean = %g, want 22", h.Mean())
	}
	if h.Max() != 100 {
		t.Errorf("Max = %d", h.Max())
	}
}

func TestHistogramInvalidSamples(t *testing.T) {
	var h Histogram
	h.Add(5)
	h.Add(-1) // a degraded run may surface inconsistent stamps
	h.Add(-7)
	if h.Invalid() != 2 {
		t.Errorf("Invalid = %d, want 2", h.Invalid())
	}
	if h.Count() != 1 || h.Max() != 5 {
		t.Errorf("negative samples leaked into the distribution: n=%d max=%d", h.Count(), h.Max())
	}
}

func TestHistogramPanics(t *testing.T) {
	var h Histogram
	for name, f := range map[string]func(){
		"bad percentile": func() { h.Percentile(0) },
		"p>1":            func() { h.Percentile(1.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// The percentile bound must bracket the true quantile: true ≤ bound ≤
// max, and bound < 2·true + 1 (power-of-two buckets).
func TestHistogramPercentileBound(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var h Histogram
	var samples []int64
	for i := 0; i < 5000; i++ {
		v := int64(rng.ExpFloat64() * 40)
		samples = append(samples, v)
		h.Add(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, p := range []float64{0.5, 0.9, 0.95, 0.99, 1.0} {
		truth := samples[int(p*float64(len(samples)))-1]
		bound := h.Percentile(p)
		if bound < truth {
			t.Errorf("p%.0f: bound %d below true quantile %d", p*100, bound, truth)
		}
		if bound > 2*truth+1 {
			t.Errorf("p%.0f: bound %d looser than 2× true %d", p*100, bound, truth)
		}
	}
}

// Percentile is monotone in p (property).
func TestHistogramMonotoneQuick(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 1000; i++ {
		h.Add(int64(rng.Intn(1000)))
	}
	f := func(a, b uint8) bool {
		pa := float64(a%100+1) / 100
		pb := float64(b%100+1) / 100
		if pa > pb {
			pa, pb = pb, pa
		}
		return h.Percentile(pa) <= h.Percentile(pb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramString(t *testing.T) {
	var h Histogram
	h.Add(10)
	if s := h.String(); !strings.Contains(s, "n=1") || !strings.Contains(s, "max=10") {
		t.Errorf("String = %q", s)
	}
}

func TestCollectorHistogramAndTracer(t *testing.T) {
	c := NewCollector(2, 0, 0)
	var events []string
	c.SetTracer(func(kind EventKind, p *packet.Packet, domain int, now int64) {
		events = append(events, kind.String())
	})
	p := packet.New(1, geom.Coord{}, geom.Coord{X: 1, Y: 0}, 1, packet.Ctrl, 0)
	p.InjectedAt = 2
	p.EjectedAt = 12
	c.Created(p)
	c.Injected(p)
	c.Ejected(p)
	c.Refused(0, 5)
	if got := strings.Join(events, ","); got != "created,injected,ejected,refused" {
		t.Errorf("tracer events = %q", got)
	}
	if c.Latency(1).Count() != 1 || c.Latency(1).Max() != 12 {
		t.Errorf("histogram not fed: %v", c.Latency(1))
	}
	if c.Latency(0).Count() != 0 {
		t.Error("wrong domain's histogram fed")
	}
	// Tracer removal.
	c.SetTracer(nil)
	c.Refused(0, 6) // must not panic
}

func TestEventKindString(t *testing.T) {
	if EvCreated.String() != "created" || EvEjected.String() != "ejected" {
		t.Error("event names wrong")
	}
	if EventKind(9).String() != "EventKind(9)" {
		t.Error("unknown event name wrong")
	}
}
