package stats

import (
	"sort"

	"surfbless/internal/geom"
	"surfbless/internal/packet"
)

// FlowKey identifies one flow: every packet travelling src→dst inside
// one interference domain belongs to the same flow, matching the flow
// model of the analytical timing engine (internal/wcta).
type FlowKey struct {
	Src    geom.Coord
	Dst    geom.Coord
	Domain int
}

// FlowStats accumulates the per-flow worst-case observations the
// conformance oracle compares against analytical bounds.  Maxima are
// true p100 values over every delivered packet of the flow — windowing
// does not apply, because a latency bound must hold for warm-up and
// drain traffic too.
type FlowStats struct {
	Ejected           int64 // packets delivered on this flow
	MaxNetworkLatency int64 // worst injection→ejection latency seen
	MaxTotalLatency   int64 // worst creation→ejection latency seen
}

// FlowTracker records per-flow maxima behind the Collector's nil-safe
// hook contract (nil = disabled, hot path untouched).  The flow map
// holds values, not pointers, so steady-state observation allocates
// only on map growth — one rehash per flow-count doubling, amortized
// zero for the bounded flow populations the conformance harness drives.
//
//hook:nil-disabled
type FlowTracker struct {
	flows map[FlowKey]FlowStats
}

// NewFlowTracker returns an empty tracker.
func NewFlowTracker() *FlowTracker {
	return &FlowTracker{flows: make(map[FlowKey]FlowStats)}
}

// Observe folds one delivered packet into its flow's maxima.  The
// packet must be ejected (both stamps set); the Collector guarantees
// this by calling Observe only from Ejected.
func (t *FlowTracker) Observe(p *packet.Packet) {
	k := FlowKey{Src: p.Src, Dst: p.Dst, Domain: p.Domain}
	fs := t.flows[k]
	fs.Ejected++
	if nl := p.NetworkLatency(); nl > fs.MaxNetworkLatency {
		fs.MaxNetworkLatency = nl
	}
	if tl := p.TotalLatency(); tl > fs.MaxTotalLatency {
		fs.MaxTotalLatency = tl
	}
	t.flows[k] = fs
}

// Flow returns the accumulated stats for k (zero value when the flow
// delivered nothing).
func (t *FlowTracker) Flow(k FlowKey) FlowStats { return t.flows[k] }

// Len returns the number of flows that delivered at least one packet.
func (t *FlowTracker) Len() int { return len(t.flows) }

// Keys returns every observed flow in a deterministic order (domain,
// then src id-like, then dst), so reports and tests iterate stably.
func (t *FlowTracker) Keys() []FlowKey {
	ks := make([]FlowKey, 0, len(t.flows))
	for k := range t.flows {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool {
		a, b := ks[i], ks[j]
		if a.Domain != b.Domain {
			return a.Domain < b.Domain
		}
		if a.Src != b.Src {
			if a.Src.Y != b.Src.Y {
				return a.Src.Y < b.Src.Y
			}
			return a.Src.X < b.Src.X
		}
		if a.Dst.Y != b.Dst.Y {
			return a.Dst.Y < b.Dst.Y
		}
		return a.Dst.X < b.Dst.X
	})
	return ks
}
