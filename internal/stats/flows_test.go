package stats

import (
	"testing"

	"surfbless/internal/geom"
	"surfbless/internal/packet"
)

func delivered(id uint64, src, dst geom.Coord, domain int, created, injected, ejected int64) *packet.Packet {
	p := packet.New(id, src, dst, domain, packet.Ctrl, created)
	p.InjectedAt = injected
	p.EjectedAt = ejected
	return p
}

func TestFlowTrackerFoldsMaxima(t *testing.T) {
	tr := NewFlowTracker()
	src, dst := geom.Coord{X: 0, Y: 0}, geom.Coord{X: 3, Y: 3}
	tr.Observe(delivered(1, src, dst, 0, 0, 5, 35))  // net 30, total 35
	tr.Observe(delivered(2, src, dst, 0, 10, 12, 70)) // net 58, total 60
	tr.Observe(delivered(3, src, dst, 0, 50, 51, 91)) // net 40, total 41

	fs := tr.Flow(FlowKey{Src: src, Dst: dst, Domain: 0})
	if fs.Ejected != 3 {
		t.Errorf("Ejected = %d, want 3", fs.Ejected)
	}
	if fs.MaxNetworkLatency != 58 {
		t.Errorf("MaxNetworkLatency = %d, want 58", fs.MaxNetworkLatency)
	}
	if fs.MaxTotalLatency != 60 {
		t.Errorf("MaxTotalLatency = %d, want 60", fs.MaxTotalLatency)
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d, want 1", tr.Len())
	}
}

// Same endpoints in different domains are different flows — the
// analytical bounds are per-domain.
func TestFlowTrackerSeparatesDomains(t *testing.T) {
	tr := NewFlowTracker()
	src, dst := geom.Coord{X: 1, Y: 0}, geom.Coord{X: 0, Y: 1}
	tr.Observe(delivered(1, src, dst, 0, 0, 0, 10))
	tr.Observe(delivered(2, src, dst, 1, 0, 0, 99))
	if tr.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tr.Len())
	}
	if got := tr.Flow(FlowKey{Src: src, Dst: dst, Domain: 0}).MaxNetworkLatency; got != 10 {
		t.Errorf("domain 0 max = %d, want 10", got)
	}
	if got := tr.Flow(FlowKey{Src: src, Dst: dst, Domain: 1}).MaxNetworkLatency; got != 99 {
		t.Errorf("domain 1 max = %d, want 99", got)
	}
}

func TestFlowTrackerUnknownFlowIsZero(t *testing.T) {
	tr := NewFlowTracker()
	if fs := tr.Flow(FlowKey{Domain: 3}); fs != (FlowStats{}) {
		t.Errorf("unknown flow = %+v, want zero value", fs)
	}
}

func TestFlowTrackerKeysOrdered(t *testing.T) {
	tr := NewFlowTracker()
	mk := func(sx, sy, dx, dy, dom int) *packet.Packet {
		return delivered(0, geom.Coord{X: sx, Y: sy}, geom.Coord{X: dx, Y: dy}, dom, 0, 0, 1)
	}
	tr.Observe(mk(2, 2, 0, 0, 1))
	tr.Observe(mk(0, 1, 1, 0, 0))
	tr.Observe(mk(1, 0, 0, 1, 0))
	tr.Observe(mk(1, 0, 2, 0, 0))
	ks := tr.Keys()
	want := []FlowKey{
		{Src: geom.Coord{X: 1, Y: 0}, Dst: geom.Coord{X: 2, Y: 0}, Domain: 0},
		{Src: geom.Coord{X: 1, Y: 0}, Dst: geom.Coord{X: 0, Y: 1}, Domain: 0},
		{Src: geom.Coord{X: 0, Y: 1}, Dst: geom.Coord{X: 1, Y: 0}, Domain: 0},
		{Src: geom.Coord{X: 2, Y: 2}, Dst: geom.Coord{X: 0, Y: 0}, Domain: 1},
	}
	if len(ks) != len(want) {
		t.Fatalf("Keys() returned %d keys, want %d", len(ks), len(want))
	}
	for i := range want {
		if ks[i] != want[i] {
			t.Errorf("Keys()[%d] = %+v, want %+v", i, ks[i], want[i])
		}
	}
}

// The collector hook: a tracker installed on a collector sees every
// ejected packet, including ones outside the measurement window — a
// latency bound has no warm-up exemption.
func TestCollectorFlowHookIgnoresWindow(t *testing.T) {
	col := NewCollector(1, 100, 200)
	tr := NewFlowTracker()
	col.SetFlowTracker(tr)
	src, dst := geom.Coord{X: 0, Y: 0}, geom.Coord{X: 1, Y: 1}

	col.Ejected(delivered(1, src, dst, 0, 0, 1, 50))     // before the window
	col.Ejected(delivered(2, src, dst, 0, 120, 121, 150)) // inside
	col.Ejected(delivered(3, src, dst, 0, 500, 501, 600)) // after

	fs := tr.Flow(FlowKey{Src: src, Dst: dst, Domain: 0})
	if fs.Ejected != 3 {
		t.Errorf("tracker saw %d packets, want all 3 regardless of window", fs.Ejected)
	}
	if col.Domain(0).Ejected != 1 {
		t.Errorf("collector window stats counted %d, want 1", col.Domain(0).Ejected)
	}
}
