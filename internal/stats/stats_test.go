package stats

import (
	"testing"

	"surfbless/internal/geom"
	"surfbless/internal/packet"
)

func mkPkt(id uint64, domain int, created, injected, ejected int64) *packet.Packet {
	p := packet.New(id, geom.Coord{}, geom.Coord{X: 1, Y: 1}, domain, packet.Ctrl, created)
	p.InjectedAt = injected
	p.EjectedAt = ejected
	p.Hops = 3
	p.Deflections = 1
	return p
}

func TestWindowing(t *testing.T) {
	c := NewCollector(1, 100, 200)
	if c.InWindow(99) || !c.InWindow(100) || !c.InWindow(199) || c.InWindow(200) {
		t.Error("window boundaries wrong")
	}
	// Unbounded window.
	u := NewCollector(1, 100, 0)
	if !u.InWindow(1 << 40) {
		t.Error("measureEnd=0 must mean unbounded")
	}
}

func TestNewCollectorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero domains":    func() { NewCollector(0, 0, 0) },
		"inverted window": func() { NewCollector(1, 10, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestEjectedAccumulates(t *testing.T) {
	c := NewCollector(2, 0, 0)
	p := mkPkt(1, 1, 10, 15, 40)
	c.Created(p)
	c.Injected(p)
	c.Ejected(p)
	d := c.Domain(1)
	if d.Ejected != 1 || d.Created != 1 || d.Injected != 1 {
		t.Fatalf("counts = %+v", d)
	}
	if d.TotalLatencySum != 30 || d.NetworkLatencySum != 25 || d.QueueLatencySum != 5 {
		t.Errorf("latency sums = %d/%d/%d", d.TotalLatencySum, d.NetworkLatencySum, d.QueueLatencySum)
	}
	if d.MaxTotalLatency != 30 {
		t.Errorf("MaxTotalLatency = %d", d.MaxTotalLatency)
	}
	if d.Hops != 3 || d.Deflections != 1 || d.FlitsMoved != 1 {
		t.Errorf("hops/deflections/flits = %d/%d/%d", d.Hops, d.Deflections, d.FlitsMoved)
	}
	// Domain 0 untouched.
	if z := c.Domain(0); z.Ejected != 0 {
		t.Error("wrong domain accumulated")
	}
}

func TestAverages(t *testing.T) {
	c := NewCollector(1, 0, 0)
	for i, lat := range []int64{10, 20, 30} {
		p := mkPkt(uint64(i), 0, 0, 0, lat)
		c.Created(p)
		c.Injected(p)
		c.Ejected(p)
	}
	d := c.Domain(0)
	if got := d.AvgTotalLatency(); got != 20 {
		t.Errorf("AvgTotalLatency = %g, want 20", got)
	}
	if got := d.AvgHops(); got != 3 {
		t.Errorf("AvgHops = %g, want 3", got)
	}
	if got := d.AvgDeflections(); got != 1 {
		t.Errorf("AvgDeflections = %g, want 1", got)
	}
	var empty Domain
	if empty.AvgTotalLatency() != 0 || empty.AvgNetworkLatency() != 0 || empty.AvgQueueLatency() != 0 {
		t.Error("empty domain averages must be 0, not NaN")
	}
}

func TestOutOfWindowIgnoredButConserved(t *testing.T) {
	c := NewCollector(1, 100, 200)
	warm := mkPkt(1, 0, 50, 55, 80) // created before window
	c.Created(warm)
	c.Injected(warm)
	c.Ejected(warm)
	if d := c.Domain(0); d.Ejected != 0 || d.Created != 0 {
		t.Error("out-of-window packet leaked into domain metrics")
	}
	if c.AllCreated != 1 || c.AllEjected != 1 {
		t.Error("conservation counters must see every packet")
	}
}

func TestRefused(t *testing.T) {
	c := NewCollector(2, 10, 0)
	c.Refused(1, 5) // before window: ignored
	c.Refused(1, 15)
	if got := c.Domain(1).Refused; got != 1 {
		t.Errorf("Refused = %d, want 1", got)
	}
}

func TestTotal(t *testing.T) {
	c := NewCollector(3, 0, 0)
	for dom := 0; dom < 3; dom++ {
		p := mkPkt(uint64(dom), dom, 0, 1, int64(10*(dom+1)))
		c.Created(p)
		c.Injected(p)
		c.Ejected(p)
	}
	tot := c.Total()
	if tot.Ejected != 3 {
		t.Errorf("Total.Ejected = %d", tot.Ejected)
	}
	if tot.TotalLatencySum != 10+20+30 {
		t.Errorf("Total latency sum = %d", tot.TotalLatencySum)
	}
	if tot.MaxTotalLatency != 30 {
		t.Errorf("Total.MaxTotalLatency = %d", tot.MaxTotalLatency)
	}
}

func TestThroughput(t *testing.T) {
	c := NewCollector(1, 0, 0)
	for i := 0; i < 640; i++ {
		p := mkPkt(uint64(i), 0, 0, 0, 5)
		c.Created(p)
		c.Injected(p)
		c.Ejected(p)
	}
	if got := c.Throughput(0, 64, 100); got != 0.1 {
		t.Errorf("Throughput = %g, want 0.1", got)
	}
	if c.Throughput(0, 0, 100) != 0 || c.Throughput(0, 64, 0) != 0 {
		t.Error("degenerate throughput must be 0")
	}
}

func TestCheckConservation(t *testing.T) {
	c := NewCollector(1, 0, 0)
	p := mkPkt(1, 0, 0, 1, 2)
	c.Created(p)
	if err := c.CheckConservation(1); err != nil {
		t.Errorf("1 created, 1 in flight: %v", err)
	}
	if err := c.CheckConservation(0); err == nil {
		t.Error("missing packet not detected")
	}
	c.Injected(p)
	c.Ejected(p)
	if err := c.CheckConservation(0); err != nil {
		t.Errorf("balanced run flagged: %v", err)
	}
	c.AllEjected++ // corrupt: ejected more than injected
	if err := c.CheckConservation(0); err == nil {
		t.Error("duplicate ejection not detected")
	}
}

func TestDroppedAndRetransmitAccounting(t *testing.T) {
	c := NewCollector(2, 0, 0)
	p := mkPkt(1, 1, 10, 15, -1)
	c.Created(p)
	c.Injected(p)
	c.Retransmitted(p, 20)
	c.Retransmitted(p, 90)
	c.Dropped(p, 120)
	d := c.Domain(1)
	if d.Retransmits != 2 || d.Dropped != 1 {
		t.Fatalf("retransmits/dropped = %d/%d, want 2/1", d.Retransmits, d.Dropped)
	}
	if tot := c.Total(); tot.Retransmits != 2 || tot.Dropped != 1 {
		t.Errorf("Total retransmits/dropped = %d/%d", tot.Retransmits, tot.Dropped)
	}
	// A dropped packet leaves the network: conservation balances at 0.
	if err := c.CheckConservation(0); err != nil {
		t.Errorf("drop not conserved: %v", err)
	}
	if err := c.CheckConservation(1); err == nil {
		t.Error("phantom in-flight packet not detected")
	}
}

// A run ending with packets still in flight must reconcile
// created = ejected + dropped + in-flight in every domain separately.
func TestPerDomainConservationWithDrops(t *testing.T) {
	c := NewCollector(3, 0, 0)
	// Domain 0: delivered.  Domain 1: dropped.  Domain 2: in flight.
	p0 := mkPkt(1, 0, 0, 2, 9)
	c.Created(p0)
	c.Injected(p0)
	c.Ejected(p0)
	p1 := mkPkt(2, 1, 0, 3, -1)
	c.Created(p1)
	c.Injected(p1)
	c.Dropped(p1, 50)
	p2 := mkPkt(3, 2, 0, 4, -1)
	c.Created(p2)
	c.Injected(p2)
	if err := c.CheckConservation(1); err != nil {
		t.Fatalf("LeftInFlight=1 run must reconcile: %v", err)
	}
	// Forge a cross-domain leak: domain 1 ejects a packet it never
	// injected (per-domain audit must catch what the aggregate misses).
	c.allByDomain[1].ejected++
	c.allByDomain[2].ejected--
	if err := c.CheckConservation(1); err == nil {
		t.Error("cross-domain packet leak not detected")
	}
}

// Out-of-range domains come from user config; they must degrade into a
// recorded error, not an index panic mid-sweep.
func TestDomainBoundRecordsError(t *testing.T) {
	c := NewCollector(2, 0, 0)
	bad := mkPkt(7, 5, 0, 1, 2)
	c.Created(bad)   // must not panic
	c.Refused(-1, 3) // must not panic
	if c.Err() == nil {
		t.Fatal("out-of-range domain not recorded")
	}
	if c.AllCreated != 0 {
		t.Errorf("bad-domain packet counted: AllCreated = %d", c.AllCreated)
	}
	// The collector keeps working for valid domains afterwards.
	ok := mkPkt(8, 1, 0, 1, 2)
	c.Created(ok)
	c.Injected(ok)
	c.Ejected(ok)
	if c.Domain(1).Ejected != 1 {
		t.Error("collector wedged after bad domain")
	}
}
