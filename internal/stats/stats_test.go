package stats

import (
	"testing"

	"surfbless/internal/geom"
	"surfbless/internal/packet"
)

func mkPkt(id uint64, domain int, created, injected, ejected int64) *packet.Packet {
	p := packet.New(id, geom.Coord{}, geom.Coord{X: 1, Y: 1}, domain, packet.Ctrl, created)
	p.InjectedAt = injected
	p.EjectedAt = ejected
	p.Hops = 3
	p.Deflections = 1
	return p
}

func TestWindowing(t *testing.T) {
	c := NewCollector(1, 100, 200)
	if c.InWindow(99) || !c.InWindow(100) || !c.InWindow(199) || c.InWindow(200) {
		t.Error("window boundaries wrong")
	}
	// Unbounded window.
	u := NewCollector(1, 100, 0)
	if !u.InWindow(1 << 40) {
		t.Error("measureEnd=0 must mean unbounded")
	}
}

func TestNewCollectorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero domains":    func() { NewCollector(0, 0, 0) },
		"inverted window": func() { NewCollector(1, 10, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestEjectedAccumulates(t *testing.T) {
	c := NewCollector(2, 0, 0)
	p := mkPkt(1, 1, 10, 15, 40)
	c.Created(p)
	c.Injected(p)
	c.Ejected(p)
	d := c.Domain(1)
	if d.Ejected != 1 || d.Created != 1 || d.Injected != 1 {
		t.Fatalf("counts = %+v", d)
	}
	if d.TotalLatencySum != 30 || d.NetworkLatencySum != 25 || d.QueueLatencySum != 5 {
		t.Errorf("latency sums = %d/%d/%d", d.TotalLatencySum, d.NetworkLatencySum, d.QueueLatencySum)
	}
	if d.MaxTotalLatency != 30 {
		t.Errorf("MaxTotalLatency = %d", d.MaxTotalLatency)
	}
	if d.Hops != 3 || d.Deflections != 1 || d.FlitsMoved != 1 {
		t.Errorf("hops/deflections/flits = %d/%d/%d", d.Hops, d.Deflections, d.FlitsMoved)
	}
	// Domain 0 untouched.
	if z := c.Domain(0); z.Ejected != 0 {
		t.Error("wrong domain accumulated")
	}
}

func TestAverages(t *testing.T) {
	c := NewCollector(1, 0, 0)
	for i, lat := range []int64{10, 20, 30} {
		p := mkPkt(uint64(i), 0, 0, 0, lat)
		c.Created(p)
		c.Injected(p)
		c.Ejected(p)
	}
	d := c.Domain(0)
	if got := d.AvgTotalLatency(); got != 20 {
		t.Errorf("AvgTotalLatency = %g, want 20", got)
	}
	if got := d.AvgHops(); got != 3 {
		t.Errorf("AvgHops = %g, want 3", got)
	}
	if got := d.AvgDeflections(); got != 1 {
		t.Errorf("AvgDeflections = %g, want 1", got)
	}
	var empty Domain
	if empty.AvgTotalLatency() != 0 || empty.AvgNetworkLatency() != 0 || empty.AvgQueueLatency() != 0 {
		t.Error("empty domain averages must be 0, not NaN")
	}
}

func TestOutOfWindowIgnoredButConserved(t *testing.T) {
	c := NewCollector(1, 100, 200)
	warm := mkPkt(1, 0, 50, 55, 80) // created before window
	c.Created(warm)
	c.Injected(warm)
	c.Ejected(warm)
	if d := c.Domain(0); d.Ejected != 0 || d.Created != 0 {
		t.Error("out-of-window packet leaked into domain metrics")
	}
	if c.AllCreated != 1 || c.AllEjected != 1 {
		t.Error("conservation counters must see every packet")
	}
}

func TestRefused(t *testing.T) {
	c := NewCollector(2, 10, 0)
	c.Refused(1, 5) // before window: ignored
	c.Refused(1, 15)
	if got := c.Domain(1).Refused; got != 1 {
		t.Errorf("Refused = %d, want 1", got)
	}
}

func TestTotal(t *testing.T) {
	c := NewCollector(3, 0, 0)
	for dom := 0; dom < 3; dom++ {
		p := mkPkt(uint64(dom), dom, 0, 1, int64(10*(dom+1)))
		c.Created(p)
		c.Injected(p)
		c.Ejected(p)
	}
	tot := c.Total()
	if tot.Ejected != 3 {
		t.Errorf("Total.Ejected = %d", tot.Ejected)
	}
	if tot.TotalLatencySum != 10+20+30 {
		t.Errorf("Total latency sum = %d", tot.TotalLatencySum)
	}
	if tot.MaxTotalLatency != 30 {
		t.Errorf("Total.MaxTotalLatency = %d", tot.MaxTotalLatency)
	}
}

func TestThroughput(t *testing.T) {
	c := NewCollector(1, 0, 0)
	for i := 0; i < 640; i++ {
		p := mkPkt(uint64(i), 0, 0, 0, 5)
		c.Created(p)
		c.Injected(p)
		c.Ejected(p)
	}
	if got := c.Throughput(0, 64, 100); got != 0.1 {
		t.Errorf("Throughput = %g, want 0.1", got)
	}
	if c.Throughput(0, 0, 100) != 0 || c.Throughput(0, 64, 0) != 0 {
		t.Error("degenerate throughput must be 0")
	}
}

func TestCheckConservation(t *testing.T) {
	c := NewCollector(1, 0, 0)
	p := mkPkt(1, 0, 0, 1, 2)
	c.Created(p)
	if err := c.CheckConservation(1); err != nil {
		t.Errorf("1 created, 1 in flight: %v", err)
	}
	if err := c.CheckConservation(0); err == nil {
		t.Error("missing packet not detected")
	}
	c.Injected(p)
	c.Ejected(p)
	if err := c.CheckConservation(0); err != nil {
		t.Errorf("balanced run flagged: %v", err)
	}
	c.AllEjected++ // corrupt: ejected more than injected
	if err := c.CheckConservation(0); err == nil {
		t.Error("duplicate ejection not detected")
	}
}
