// Package stats accumulates the metrics the paper reports: average
// packet latency (with its queue/network breakdown from Fig. 9),
// accepted throughput, hop and deflection counts — globally and per
// interference domain (Figs. 5 and 7 plot per-domain series).
//
// Measurement discipline: packets created inside the measurement window
// [WarmupEnd, MeasureEnd) are counted; everything else (warm-up and
// drain traffic) still flows through the network but leaves no trace in
// the averages.  MeasureEnd == 0 means "no upper bound".
package stats

import (
	"fmt"

	"surfbless/internal/packet"
	"surfbless/internal/probe"
)

// Domain accumulates metrics for one interference domain.
type Domain struct {
	Created  int64 // packets offered by the generator in-window
	Refused  int64 // offers rejected by a full NI queue (backpressure)
	Injected int64 // in-window packets that entered the network
	Ejected  int64 // in-window packets delivered

	TotalLatencySum   int64 // creation → ejection
	NetworkLatencySum int64 // injection → ejection
	QueueLatencySum   int64 // creation → injection
	MaxTotalLatency   int64

	Hops        int64
	Deflections int64
	FlitsMoved  int64 // ejected packets × size, for throughput in flits

	// Fault accounting (zero on fault-free runs).  Dropped counts
	// in-window packets discarded after exhausting their retransmission
	// budget; Retransmits counts every source retransmission attempt.
	Dropped     int64
	Retransmits int64
}

// AvgTotalLatency returns the mean creation-to-ejection latency in
// cycles, or 0 when nothing was delivered.
func (d Domain) AvgTotalLatency() float64 { return ratio(d.TotalLatencySum, d.Ejected) }

// AvgNetworkLatency returns the mean in-network latency in cycles.
func (d Domain) AvgNetworkLatency() float64 { return ratio(d.NetworkLatencySum, d.Ejected) }

// AvgQueueLatency returns the mean NI queueing latency in cycles.
func (d Domain) AvgQueueLatency() float64 { return ratio(d.QueueLatencySum, d.Ejected) }

// AvgHops returns the mean hop count of delivered packets.
func (d Domain) AvgHops() float64 { return ratio(d.Hops, d.Ejected) }

// AvgDeflections returns the mean deflections per delivered packet.
func (d Domain) AvgDeflections() float64 { return ratio(d.Deflections, d.Ejected) }

func ratio(sum, n int64) float64 {
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

// EventKind classifies tracer callbacks.
type EventKind int

// Tracer event kinds.
const (
	EvCreated EventKind = iota
	EvRefused
	EvInjected
	EvEjected
	EvDropped    // packet discarded after exhausting its retry budget
	EvRetransmit // packet re-queued at its source after a fault drop
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EvCreated:
		return "created"
	case EvRefused:
		return "refused"
	case EvInjected:
		return "injected"
	case EvEjected:
		return "ejected"
	case EvDropped:
		return "dropped"
	case EvRetransmit:
		return "retransmit"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Tracer observes every packet lifecycle event the collector sees
// (windowed or not).  p is nil for EvRefused.
//
//hook:nil-disabled
type Tracer func(kind EventKind, p *packet.Packet, domain int, now int64)

// Collector gathers per-domain and aggregate statistics for one run.
type Collector struct {
	warmupEnd  int64
	measureEnd int64 // 0 = unbounded
	domains    []Domain
	histos     []Histogram // per-domain total-latency histograms (in-window)
	tracer     Tracer
	probe      *probe.Probe // nil = no time-series observation
	flows      *FlowTracker // nil = no per-flow p100 tracking

	// Conservation accounting over the WHOLE run (not windowed), used
	// by tests to prove no packet is ever lost or duplicated.
	AllCreated  int64
	AllInjected int64
	AllEjected  int64
	AllDropped  int64

	// Per-domain whole-run totals backing the per-domain conservation
	// audit (created = ejected + dropped + in-flight must hold for each
	// domain separately, or a fault leaked packets across domains).
	allByDomain []domainTotals

	err error // first out-of-range domain seen (degraded, not fatal)
}

type domainTotals struct {
	created, injected, ejected, dropped int64
}

// NewCollector returns a collector for the given number of domains and
// measurement window.  measureEnd == 0 disables the upper bound.
func NewCollector(domains int, warmupEnd, measureEnd int64) *Collector {
	if domains < 1 {
		panic(fmt.Sprintf("stats: %d domains", domains))
	}
	if measureEnd != 0 && measureEnd < warmupEnd {
		panic(fmt.Sprintf("stats: window [%d,%d) inverted", warmupEnd, measureEnd))
	}
	return &Collector{
		warmupEnd:   warmupEnd,
		measureEnd:  measureEnd,
		domains:     make([]Domain, domains),
		histos:      make([]Histogram, domains),
		allByDomain: make([]domainTotals, domains),
	}
}

// SetTracer installs a lifecycle observer (nil to remove).
func (c *Collector) SetTracer(t Tracer) { c.tracer = t }

// SetProbe attaches a time-series probe that receives every lifecycle
// event the collector sees (nil to remove).  The probe applies the
// same measurement window as the collector, so its totals reconcile
// with the Domain aggregates.
func (c *Collector) SetProbe(p *probe.Probe) { c.probe = p }

// SetFlowTracker attaches a per-flow (src,dst,domain) max-latency
// tracker (nil to remove).  Unlike the windowed Domain aggregates it
// sees every delivered packet, warm-up and drain included: the
// worst-case bounds it is checked against must hold unconditionally.
func (c *Collector) SetFlowTracker(t *FlowTracker) { c.flows = t }

// InWindow reports whether a packet created at cycle t is measured.
func (c *Collector) InWindow(t int64) bool {
	return t >= c.warmupEnd && (c.measureEnd == 0 || t < c.measureEnd)
}

func (c *Collector) domain(i int) *Domain {
	return &c.domains[i]
}

// domainOK guards the domain index.  A bad domain used to crash the
// whole run with an index panic; a domain number ultimately comes from
// user-supplied config (traffic matrices, fault plans), so the first
// violation is recorded as an error — visible via Err() — and the
// sample is attributed to nothing rather than killing the sweep.
func (c *Collector) domainOK(i int) bool {
	if i >= 0 && i < len(c.domains) {
		return true
	}
	if c.err == nil {
		//nocvet:alloc first accounting violation is recorded at most once per run
		c.err = fmt.Errorf("stats: domain %d outside [0,%d)", i, len(c.domains))
	}
	return false
}

// Err returns the first accounting violation seen (nil when clean).
func (c *Collector) Err() error { return c.err }

// Created records a generator offer that was accepted by the NI.
func (c *Collector) Created(p *packet.Packet) {
	if !c.domainOK(p.Domain) {
		return
	}
	c.AllCreated++
	c.allByDomain[p.Domain].created++
	if c.tracer != nil {
		c.tracer(EvCreated, p, p.Domain, p.CreatedAt)
	}
	if c.probe != nil {
		c.probe.Created(p)
	}
	if c.InWindow(p.CreatedAt) {
		c.domain(p.Domain).Created++
	}
}

// Refused records a generator offer rejected by a full NI queue.
func (c *Collector) Refused(domain int, now int64) {
	if !c.domainOK(domain) {
		return
	}
	if c.tracer != nil {
		c.tracer(EvRefused, nil, domain, now)
	}
	if c.probe != nil {
		c.probe.Refused(domain, now)
	}
	if c.InWindow(now) {
		c.domain(domain).Refused++
	}
}

// Injected records a packet entering the network.
func (c *Collector) Injected(p *packet.Packet) {
	if !c.domainOK(p.Domain) {
		return
	}
	c.AllInjected++
	c.allByDomain[p.Domain].injected++
	if c.tracer != nil {
		c.tracer(EvInjected, p, p.Domain, p.InjectedAt)
	}
	if c.probe != nil {
		c.probe.Injected(p)
	}
	if c.InWindow(p.CreatedAt) {
		c.domain(p.Domain).Injected++
	}
}

// Ejected records a delivered packet and accumulates its latencies.
func (c *Collector) Ejected(p *packet.Packet) {
	if !c.domainOK(p.Domain) {
		return
	}
	c.AllEjected++
	c.allByDomain[p.Domain].ejected++
	if c.tracer != nil {
		c.tracer(EvEjected, p, p.Domain, p.EjectedAt)
	}
	if c.probe != nil {
		c.probe.Ejected(p)
	}
	if c.flows != nil {
		c.flows.Observe(p)
	}
	if !c.InWindow(p.CreatedAt) {
		return
	}
	c.histos[p.Domain].Add(p.TotalLatency())
	d := c.domain(p.Domain)
	d.Ejected++
	tl := p.TotalLatency()
	d.TotalLatencySum += tl
	d.NetworkLatencySum += p.NetworkLatency()
	d.QueueLatencySum += p.QueueLatency()
	if tl > d.MaxTotalLatency {
		d.MaxTotalLatency = tl
	}
	d.Hops += int64(p.Hops)
	d.Deflections += int64(p.Deflections)
	d.FlitsMoved += int64(p.Size)
}

// Dropped records a packet discarded by the fault machinery after
// exhausting its retransmission budget.  A dropped packet leaves the
// network for good, so it participates in conservation like an
// ejection.
func (c *Collector) Dropped(p *packet.Packet, now int64) {
	if !c.domainOK(p.Domain) {
		return
	}
	c.AllDropped++
	c.allByDomain[p.Domain].dropped++
	if c.tracer != nil {
		c.tracer(EvDropped, p, p.Domain, now)
	}
	if c.probe != nil {
		c.probe.Dropped(p, now)
	}
	if c.InWindow(p.CreatedAt) {
		c.domain(p.Domain).Dropped++
	}
}

// Retransmitted records one source retransmission attempt after a
// fault drop.  The packet stays in flight (it is queued for
// re-injection), so conservation totals are untouched.
func (c *Collector) Retransmitted(p *packet.Packet, now int64) {
	if !c.domainOK(p.Domain) {
		return
	}
	if c.tracer != nil {
		c.tracer(EvRetransmit, p, p.Domain, now)
	}
	if c.probe != nil {
		c.probe.Retransmitted(p, now)
	}
	if c.InWindow(now) {
		c.domain(p.Domain).Retransmits++
	}
}

// Latency returns the in-window total-latency histogram of domain i.
func (c *Collector) Latency(i int) *Histogram { return &c.histos[i] }

// Domains returns the number of domains tracked.
func (c *Collector) Domains() int { return len(c.domains) }

// Domain returns a copy of the accumulated metrics for domain i.
func (c *Collector) Domain(i int) Domain { return c.domains[i] }

// Total returns the metrics summed over all domains.
func (c *Collector) Total() Domain {
	var t Domain
	for i := range c.domains {
		d := &c.domains[i]
		t.Created += d.Created
		t.Refused += d.Refused
		t.Injected += d.Injected
		t.Ejected += d.Ejected
		t.TotalLatencySum += d.TotalLatencySum
		t.NetworkLatencySum += d.NetworkLatencySum
		t.QueueLatencySum += d.QueueLatencySum
		if d.MaxTotalLatency > t.MaxTotalLatency {
			t.MaxTotalLatency = d.MaxTotalLatency
		}
		t.Hops += d.Hops
		t.Deflections += d.Deflections
		t.FlitsMoved += d.FlitsMoved
		t.Dropped += d.Dropped
		t.Retransmits += d.Retransmits
	}
	return t
}

// Throughput returns the accepted packet rate of domain i in
// packets/node/cycle over a measurement span of the given cycles.
func (c *Collector) Throughput(i, nodes int, cycles int64) float64 {
	if nodes <= 0 || cycles <= 0 {
		return 0
	}
	return float64(c.domain(i).Ejected) / float64(nodes) / float64(cycles)
}

// CheckConservation verifies created ≥ injected ≥ ejected + dropped
// and that exactly inFlight packets remain unaccounted (buffered, on
// links, or awaiting retransmission) — in aggregate AND per domain, so
// a fault can never silently move a packet across an interference
// boundary.
func (c *Collector) CheckConservation(inFlight int) error {
	if c.AllInjected > c.AllCreated {
		return fmt.Errorf("stats: injected %d > created %d", c.AllInjected, c.AllCreated)
	}
	if c.AllEjected+c.AllDropped > c.AllInjected {
		return fmt.Errorf("stats: ejected %d + dropped %d > injected %d", c.AllEjected, c.AllDropped, c.AllInjected)
	}
	if got := c.AllCreated - c.AllEjected - c.AllDropped; got != int64(inFlight) {
		return fmt.Errorf("stats: %d packets unaccounted, fabric reports %d in flight", got, inFlight)
	}
	var sumLeft int64
	for i, d := range c.allByDomain {
		if d.injected > d.created {
			return fmt.Errorf("stats: domain %d: injected %d > created %d", i, d.injected, d.created)
		}
		if d.ejected+d.dropped > d.injected {
			return fmt.Errorf("stats: domain %d: ejected %d + dropped %d > injected %d", i, d.ejected, d.dropped, d.injected)
		}
		sumLeft += d.created - d.ejected - d.dropped
	}
	if sumLeft != int64(inFlight) {
		return fmt.Errorf("stats: per-domain residue %d ≠ %d in flight", sumLeft, inFlight)
	}
	return nil
}
