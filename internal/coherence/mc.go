package coherence

import "fmt"

// MC is one memory controller (Table 1: four, one at each mesh corner).
// It serves MemRead with a fixed DRAM latency and absorbs MemWB; queuing
// beyond the service bandwidth (one new request per cycle) accumulates
// naturally in the event queue.
type MC struct {
	node    int
	send    SendFunc
	latency int64

	inq eventQueue

	Reads, Writebacks int64
}

// NewMC builds a memory controller with the given DRAM latency.
func NewMC(node int, latency int64, send SendFunc) *MC {
	if latency < 1 {
		panic(fmt.Sprintf("coherence: MC latency %d", latency))
	}
	return &MC{node: node, send: send, latency: latency}
}

// Deliver accepts a message addressed to this controller.
func (mc *MC) Deliver(m *Msg, now int64) {
	switch m.Type {
	case MemRead:
		mc.Reads++
		mc.inq.schedule(m, now+mc.latency)
	case MemWB:
		mc.Writebacks++ // absorbed; data values are not modelled
	default:
		panic(fmt.Sprintf("coherence: MC %d cannot handle %v", mc.node, m))
	}
}

// Tick sends the fills whose DRAM latency has elapsed.
func (mc *MC) Tick(now int64) {
	for _, m := range mc.inq.due(now) {
		mc.send(&Msg{Type: MemData, Addr: m.Addr, From: mc.node, To: m.From}, now)
	}
}

// Pending returns in-service read requests (for quiescence detection).
func (mc *MC) Pending() int { return mc.inq.pending() }

// CornerMCs returns the node ids of the four mesh corners for an N×N
// mesh of the given width — the Table-1 memory-controller placement.
func CornerMCs(width, height int) []int {
	return []int{
		0,
		width - 1,
		(height - 1) * width,
		height*width - 1,
	}
}
