package coherence

import "fmt"

// LineState is the MESI state of an L1 line, or the directory-visible
// state of an L2 line.
type LineState int8

// L1 MESI states.  The L2 directory reuses Invalid/Shared/Modified
// (an L1 holding E or M is "Modified" from the directory's viewpoint:
// it is the owner and must be recalled).
const (
	Invalid LineState = iota
	Shared
	Exclusive
	Modified
)

// String names the state.
func (s LineState) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("LineState(%d)", int8(s))
	}
}

// Line is one cache line's bookkeeping (tags only; data values are not
// modelled — coherence is checked on states, not contents).
type Line struct {
	Tag   uint64
	State LineState
	Dirty bool
	lru   int64

	// Directory fields (used by L2 lines only).
	Sharers map[int]bool
	Owner   int // owning L1 node when the directory state is Modified
}

// Cache is a set-associative tag store with LRU replacement, shared by
// the L1s (32 KB) and L2 banks (256 KB) of Table 1.
type Cache struct {
	sets      int
	ways      int
	blockBits uint
	lines     [][]Line // [set][way]
	tick      int64
}

// NewCache builds a cache of the given total capacity.  capacityBytes
// must be a multiple of blockBytes×ways and the set count must be a
// power of two.
func NewCache(capacityBytes, blockBytes, ways int) *Cache {
	if capacityBytes <= 0 || blockBytes <= 0 || ways <= 0 {
		panic(fmt.Sprintf("coherence: NewCache(%d, %d, %d)", capacityBytes, blockBytes, ways))
	}
	blocks := capacityBytes / blockBytes
	if blocks%ways != 0 {
		panic(fmt.Sprintf("coherence: %d blocks not divisible by %d ways", blocks, ways))
	}
	sets := blocks / ways
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("coherence: set count %d not a power of two", sets))
	}
	bits := uint(0)
	for 1<<bits < blockBytes {
		bits++
	}
	if 1<<bits != blockBytes {
		panic(fmt.Sprintf("coherence: block size %d not a power of two", blockBytes))
	}
	c := &Cache{sets: sets, ways: ways, blockBits: bits, lines: make([][]Line, sets)}
	for s := range c.lines {
		c.lines[s] = make([]Line, ways)
	}
	return c
}

// BlockAddr converts a byte address to a block address.
func (c *Cache) BlockAddr(byteAddr uint64) uint64 { return byteAddr >> c.blockBits }

func (c *Cache) set(block uint64) int { return int(block % uint64(c.sets)) }

// Lookup returns the line holding the block, or nil.  A hit refreshes
// the line's LRU stamp.
func (c *Cache) Lookup(block uint64) *Line {
	c.tick++
	for w := range c.lines[c.set(block)] {
		l := &c.lines[c.set(block)][w]
		if l.State != Invalid && l.Tag == block {
			l.lru = c.tick
			return l
		}
	}
	return nil
}

// Peek is Lookup without the LRU refresh (for introspection/tests).
func (c *Cache) Peek(block uint64) *Line {
	for w := range c.lines[c.set(block)] {
		l := &c.lines[c.set(block)][w]
		if l.State != Invalid && l.Tag == block {
			return l
		}
	}
	return nil
}

// VictimFor returns the line to install the block into: an invalid way
// if one exists, else the least-recently-used way whose badness is
// lowest according to prefer (lower is better; used by the L2 to avoid
// evicting owned lines).  The returned line still holds the victim's
// previous contents; the caller handles eviction and then Install.
func (c *Cache) VictimFor(block uint64, prefer func(*Line) int) *Line {
	set := c.lines[c.set(block)]
	var victim *Line
	for w := range set {
		l := &set[w]
		if l.State == Invalid {
			return l
		}
		if victim == nil {
			victim = l
			continue
		}
		if prefer != nil {
			if pb, pv := prefer(l), prefer(victim); pb != pv {
				if pb < pv {
					victim = l
				}
				continue
			}
		}
		if l.lru < victim.lru {
			victim = l
		}
	}
	return victim
}

// Install resets the line to hold the block in the given state.
func (c *Cache) Install(l *Line, block uint64, state LineState) {
	c.tick++
	*l = Line{Tag: block, State: state, lru: c.tick}
}

// Stats walks every valid line (for invariant checks and occupancy
// accounting).
func (c *Cache) Walk(fn func(*Line)) {
	for s := range c.lines {
		for w := range c.lines[s] {
			if c.lines[s][w].State != Invalid {
				fn(&c.lines[s][w])
			}
		}
	}
}
