package coherence

import "fmt"

// CheckSWMR verifies the single-writer / multiple-reader invariant
// across a set of L1 caches at the current instant: for every block,
// at most one L1 holds it Exclusive or Modified, and when one does, no
// other L1 holds it Shared.  The protocol maintains this at every
// cycle (ownership is only granted after the previous copies are
// provably gone), so tests call this continuously during random runs.
func CheckSWMR(l1s []*L1) error {
	type holders struct {
		owners  int
		sharers int
		owner   int
	}
	blocks := make(map[uint64]*holders)
	for node, l1 := range l1s {
		node := node
		l1.Walk(func(ln *Line) {
			h := blocks[ln.Tag]
			if h == nil {
				h = &holders{owner: -1}
				blocks[ln.Tag] = h
			}
			switch ln.State {
			case Exclusive, Modified:
				h.owners++
				h.owner = node
			case Shared:
				h.sharers++
			}
		})
	}
	for block, h := range blocks {
		if h.owners > 1 {
			return fmt.Errorf("coherence: block %x has %d owners", block, h.owners)
		}
		if h.owners == 1 && h.sharers > 0 {
			return fmt.Errorf("coherence: block %x owned by L1 %d with %d sharers alive",
				block, h.owner, h.sharers)
		}
	}
	return nil
}

// CheckDirectory verifies that every sharer recorded by the L2 banks
// holds the block in at most Shared state (never E/M), and that a
// recorded owner never appears as a sharer elsewhere.  Directory
// entries may overcount (silent S evictions), never undercount.
func CheckDirectory(l1s []*L1, l2s []*L2) error {
	var err error
	for _, l2 := range l2s {
		l2.Walk(func(ln *Line) {
			if err != nil {
				return
			}
			switch ln.State {
			case Shared:
				for s := range ln.Sharers {
					if st := l1s[s].StateOf(ln.Tag); st == Exclusive || st == Modified {
						err = fmt.Errorf("coherence: directory says L1 %d shares %x but it holds %v",
							s, ln.Tag, st)
					}
				}
			case Modified:
				for n, l1 := range l1s {
					if n == ln.Owner {
						continue
					}
					if st := l1.StateOf(ln.Tag); st != Invalid {
						err = fmt.Errorf("coherence: block %x owned by L1 %d but L1 %d holds %v",
							ln.Tag, ln.Owner, n, st)
					}
				}
			}
		})
	}
	return err
}
