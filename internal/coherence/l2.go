package coherence

import (
	"fmt"
	"sort"
)

// txnKind classifies the L2's per-line transient states.
type txnKind int

const (
	txnFetch    txnKind = iota // awaiting MemData from a memory controller
	txnRecall                  // awaiting PutM/PutE from the recalled owner
	txnAwaitPut                // requester re-requested its own evicted line; its Put is in flight
	txnInvs                    // awaiting InvAcks from invalidated sharers
)

// l2Txn is one in-progress transaction; the line is "busy" and later
// requests queue behind it.
type l2Txn struct {
	kind         txnKind
	req          *Msg         // the GetS/GetM being served
	owner        int          // recalled owner (txnRecall/txnAwaitPut)
	ackers       map[int]bool // outstanding InvAck senders (txnInvs)
	reqWasSharer bool         // GetM upgrade: grant without data
}

// evictTxn tracks a directory line evicted while owned: the line is
// already gone from the tag store, the owner's data is still inbound.
type evictTxn struct {
	owner int
	dirty bool
}

// L2 is one bank of the shared second-level cache plus its slice of the
// directory.  Banks are address-interleaved across all nodes.
type L2 struct {
	node    int
	cache   *Cache
	send    SendFunc
	mcOf    func(block uint64) int
	latency int64

	inq      eventQueue
	busy     map[uint64]*l2Txn
	waiting  map[uint64][]*Msg
	evicting map[uint64]*evictTxn

	// Statistics.
	Hits, MemFetches, Recalls, InvsSent, StaleDrops int64
}

// NewL2 builds a bank with the given capacity and access latency.
func NewL2(node, capacityBytes, blockBytes, ways int, latency int64, mcOf func(uint64) int, send SendFunc) *L2 {
	if latency < 1 {
		panic(fmt.Sprintf("coherence: L2 latency %d", latency))
	}
	return &L2{
		node:     node,
		cache:    NewCache(capacityBytes, blockBytes, ways),
		send:     send,
		mcOf:     mcOf,
		latency:  latency,
		busy:     make(map[uint64]*l2Txn),
		waiting:  make(map[uint64][]*Msg),
		evicting: make(map[uint64]*evictTxn),
	}
}

// Deliver feeds a message into the bank pipeline; it is processed after
// the bank access latency.
func (b *L2) Deliver(m *Msg, now int64) {
	b.inq.schedule(m, now+b.latency)
}

// Tick processes every message whose bank latency has elapsed.
func (b *L2) Tick(now int64) {
	for _, m := range b.inq.due(now) {
		b.handle(m, now)
	}
}

// Pending returns messages still inside the bank pipeline or parked
// behind busy lines (for quiescence detection).
func (b *L2) Pending() int {
	n := b.inq.pending() + len(b.busy) + len(b.evicting)
	for _, q := range b.waiting {
		n += len(q)
	}
	return n
}

func (b *L2) handle(m *Msg, now int64) {
	switch m.Type {
	case GetS, GetM:
		if b.busy[m.Addr] != nil {
			b.waiting[m.Addr] = append(b.waiting[m.Addr], m)
			return
		}
		b.startRequest(m, now)
	case PutM, PutE:
		b.handlePut(m, now)
	case InvAck:
		b.handleInvAck(m, now)
	case MemData:
		b.handleMemData(m, now)
	default:
		panic(fmt.Sprintf("coherence: L2 %d cannot handle %v", b.node, m))
	}
}

func (b *L2) startRequest(m *Msg, now int64) {
	ln := b.cache.Lookup(m.Addr)
	if ln == nil {
		if b.evicting[m.Addr] != nil {
			// The line is mid-eviction (owner data inbound).  Park the
			// request; it restarts when the eviction resolves.
			b.waiting[m.Addr] = append(b.waiting[m.Addr], m)
			b.busy[m.Addr] = &l2Txn{kind: txnFetch, req: nil} // placeholder: drained by eviction completion
			return
		}
		b.MemFetches++
		b.busy[m.Addr] = &l2Txn{kind: txnFetch, req: m}
		b.send(&Msg{Type: MemRead, Addr: m.Addr, From: b.node, To: b.mcOf(m.Addr)}, now)
		return
	}

	switch ln.State {
	case Shared:
		b.Hits++
		if m.Type == GetS {
			if len(ln.Sharers) == 0 {
				// MESI exclusive grant: sole reader gets E.
				ln.State = Modified
				ln.Owner = m.From
				ln.Sharers = nil
				b.send(&Msg{Type: Data, Addr: m.Addr, From: b.node, To: m.From, Excl: true}, now)
			} else {
				ln.Sharers[m.From] = true
				b.send(&Msg{Type: Data, Addr: m.Addr, From: b.node, To: m.From}, now)
			}
			return
		}
		// GetM over a shared line: invalidate the other sharers.
		wasSharer := ln.Sharers[m.From]
		others := make(map[int]bool)
		for s := range ln.Sharers {
			if s != m.From {
				others[s] = true
			}
		}
		if len(others) == 0 {
			b.grantM(ln, m, wasSharer, now)
			return
		}
		b.busy[m.Addr] = &l2Txn{kind: txnInvs, req: m, ackers: others, reqWasSharer: wasSharer}
		for _, s := range sortedKeys(others) {
			b.InvsSent++
			b.send(&Msg{Type: Inv, Addr: m.Addr, From: b.node, To: s}, now)
		}

	case Modified:
		if ln.Owner == m.From {
			// The requester evicted its copy and re-requested before its
			// Put reached us; wait for the inbound Put.
			b.busy[m.Addr] = &l2Txn{kind: txnAwaitPut, req: m, owner: ln.Owner}
			return
		}
		b.Recalls++
		b.busy[m.Addr] = &l2Txn{kind: txnRecall, req: m, owner: ln.Owner}
		b.send(&Msg{Type: Recall, Addr: m.Addr, From: b.node, To: ln.Owner}, now)

	default:
		panic(fmt.Sprintf("coherence: L2 %d line a%x in L1 state %v", b.node, m.Addr, ln.State))
	}
}

// grantM hands exclusive ownership to the requester.
func (b *L2) grantM(ln *Line, req *Msg, wasSharer bool, now int64) {
	ln.State = Modified
	ln.Owner = req.From
	ln.Sharers = nil
	if wasSharer {
		// Upgrade: the requester already has the data (1-flit grant).
		b.send(&Msg{Type: Grant, Addr: req.Addr, From: b.node, To: req.From}, now)
	} else {
		b.send(&Msg{Type: Data, Addr: req.Addr, From: b.node, To: req.From, Excl: true}, now)
	}
}

func (b *L2) handlePut(m *Msg, now int64) {
	// A dying owned line: the Put is the recall response; write back and
	// finish the eviction.
	if ev := b.evicting[m.Addr]; ev != nil {
		if ev.owner != m.From {
			b.StaleDrops++
			return
		}
		if ev.dirty || m.Type == PutM {
			b.send(&Msg{Type: MemWB, Addr: m.Addr, From: b.node, To: b.mcOf(m.Addr)}, now)
		}
		delete(b.evicting, m.Addr)
		b.drain(m.Addr, now)
		return
	}
	if t := b.busy[m.Addr]; t != nil && (t.kind == txnRecall || t.kind == txnAwaitPut) && t.owner == m.From {
		ln := b.cache.Peek(m.Addr)
		if ln == nil || ln.State != Modified {
			panic(fmt.Sprintf("coherence: L2 %d recall completion without owned line a%x", b.node, m.Addr))
		}
		ln.State = Shared
		ln.Sharers = make(map[int]bool)
		if m.Type == PutM {
			ln.Dirty = true
		}
		b.complete(t, now)
		return
	}
	// Plain eviction from the owner.
	if ln := b.cache.Peek(m.Addr); ln != nil && ln.State == Modified && ln.Owner == m.From {
		ln.State = Shared
		ln.Sharers = make(map[int]bool)
		if m.Type == PutM {
			ln.Dirty = true
		}
		return
	}
	b.StaleDrops++
}

func (b *L2) handleInvAck(m *Msg, now int64) {
	t := b.busy[m.Addr]
	if t == nil || t.kind != txnInvs || !t.ackers[m.From] {
		// Straggler ack from a fire-and-forget eviction invalidation.
		b.StaleDrops++
		return
	}
	delete(t.ackers, m.From)
	if len(t.ackers) > 0 {
		return
	}
	ln := b.cache.Peek(m.Addr)
	if ln == nil || ln.State != Shared {
		panic(fmt.Sprintf("coherence: L2 %d invs completion without shared line a%x", b.node, m.Addr))
	}
	b.grantM(ln, t.req, t.reqWasSharer, now)
	delete(b.busy, m.Addr)
	b.drain(m.Addr, now)
}

func (b *L2) handleMemData(m *Msg, now int64) {
	t := b.busy[m.Addr]
	if t == nil || t.kind != txnFetch || t.req == nil {
		panic(fmt.Sprintf("coherence: L2 %d unexpected %v", b.node, m))
	}
	victim := b.cache.VictimFor(m.Addr, func(l *Line) int {
		switch {
		case b.busy[l.Tag] != nil:
			return 3 // never touch a line mid-transaction
		case l.State == Modified:
			return 2 // needs a recall round-trip
		case len(l.Sharers) > 0:
			return 1 // needs invalidations
		default:
			return 0
		}
	})
	if victim.State != Invalid && b.busy[victim.Tag] != nil {
		// Every way of the set is mid-transaction; retry next cycle.
		b.inq.schedule(m, now+1)
		return
	}
	b.evictVictim(victim, now)
	b.cache.Install(victim, m.Addr, Shared)
	victim.Sharers = make(map[int]bool)
	b.complete(t, now)
}

// evictVictim removes a directory line, invalidating or recalling the
// L1 copies it tracks.
func (b *L2) evictVictim(victim *Line, now int64) {
	if victim.State == Invalid {
		return
	}
	block := victim.Tag
	switch victim.State {
	case Modified:
		b.Recalls++
		b.evicting[block] = &evictTxn{owner: victim.Owner, dirty: victim.Dirty}
		b.send(&Msg{Type: Recall, Addr: block, From: b.node, To: victim.Owner}, now)
	case Shared:
		for _, s := range sortedKeys(victim.Sharers) {
			b.InvsSent++
			b.send(&Msg{Type: Inv, Addr: block, From: b.node, To: s}, now)
		}
		if victim.Dirty {
			b.send(&Msg{Type: MemWB, Addr: block, From: b.node, To: b.mcOf(block)}, now)
		}
	}
	victim.State = Invalid
}

// complete finishes the busy transaction's request and drains waiters.
func (b *L2) complete(t *l2Txn, now int64) {
	ln := b.cache.Peek(t.req.Addr)
	if ln == nil || ln.State != Shared {
		panic(fmt.Sprintf("coherence: L2 %d complete without shared line a%x", b.node, t.req.Addr))
	}
	if t.req.Type == GetS {
		// The sole requester after a fetch/recall: exclusive handoff.
		ln.State = Modified
		ln.Owner = t.req.From
		ln.Sharers = nil
		b.send(&Msg{Type: Data, Addr: t.req.Addr, From: b.node, To: t.req.From, Excl: true}, now)
	} else {
		b.grantM(ln, t.req, false, now)
	}
	delete(b.busy, t.req.Addr)
	b.drain(t.req.Addr, now)
}

// drain restarts the oldest queued request for the line, if any.
func (b *L2) drain(addr uint64, now int64) {
	delete(b.busy, addr) // clear any placeholder
	q := b.waiting[addr]
	if len(q) == 0 {
		delete(b.waiting, addr)
		return
	}
	next := q[0]
	if len(q) == 1 {
		delete(b.waiting, addr)
	} else {
		b.waiting[addr] = q[1:]
	}
	b.startRequest(next, now)
}

// Walk exposes the directory tag store for invariant checks.
func (b *L2) Walk(fn func(*Line)) { b.cache.Walk(fn) }

// DirectoryState returns the directory's view of a block (for tests):
// the line state and, when owned, the owner.
func (b *L2) DirectoryState(block uint64) (LineState, int) {
	ln := b.cache.Peek(block)
	if ln == nil {
		return Invalid, -1
	}
	if ln.State == Modified {
		return Modified, ln.Owner
	}
	return ln.State, -1
}

func sortedKeys(m map[int]bool) []int {
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}
