package coherence

import "testing"

// Directed tests for the message races the controllers must survive.
// The fuzz test hits these probabilistically; here each race is
// constructed exactly, with hand-delivered messages.

// script drives one L1 with hand-written messages and records its sends.
type script struct {
	l1   *L1
	sent []*Msg
}

func newScript(node int) *script {
	s := &script{}
	s.l1 = NewL1(node, 16*16, 16, 4, func(uint64) int { return 0 },
		func(m *Msg, now int64) { s.sent = append(s.sent, m) })
	return s
}

func (s *script) lastSent(t *testing.T) *Msg {
	t.Helper()
	if len(s.sent) == 0 {
		t.Fatal("no message sent")
	}
	return s.sent[len(s.sent)-1]
}

// IS_I: an Inv overtakes the non-exclusive Data fill.  The load's value
// is consumed once but the line is not retained.
func TestRaceInvBeforeSharedFill(t *testing.T) {
	s := newScript(1)
	if s.l1.Access(7, false, 0) {
		t.Fatal("cold access hit")
	}
	// The home serialized another core's GetM after adding us as a
	// sharer; its Inv (vnet ctrl) arrives before our Data (vnet data).
	s.l1.Deliver(&Msg{Type: Inv, Addr: 7, From: 0, To: 1}, 1)
	if got := s.lastSent(t); got.Type != InvAck {
		t.Fatalf("Inv answered with %v, want InvAck", got.Type)
	}
	s.l1.Deliver(&Msg{Type: Data, Addr: 7, From: 0, To: 1}, 2)
	if s.l1.Busy() {
		t.Fatal("fill did not complete the access")
	}
	if st := s.l1.StateOf(7); st != Invalid {
		t.Errorf("invalidated fill retained as %v", st)
	}
}

// An Inv that precedes an EXCLUSIVE fill belongs to an older epoch (a
// later transaction would Recall, not Inv): the fill is retained.
func TestRaceStaleInvBeforeExclusiveFill(t *testing.T) {
	s := newScript(1)
	s.l1.Access(7, false, 0)
	s.l1.Deliver(&Msg{Type: Inv, Addr: 7, From: 0, To: 1}, 1) // stale-sharer Inv
	s.l1.Deliver(&Msg{Type: Data, Addr: 7, From: 0, To: 1, Excl: true}, 2)
	if st := s.l1.StateOf(7); st != Exclusive {
		t.Errorf("exclusive fill dropped (state %v); only non-exclusive fills may drop", st)
	}
}

// Recall overtakes the exclusive Data fill: the value is consumed, the
// line surrendered immediately with PutE (clean) or PutM (written).
func TestRaceRecallBeforeExclusiveFill(t *testing.T) {
	for _, write := range []bool{false, true} {
		s := newScript(1)
		s.l1.Access(7, write, 0)
		s.l1.Deliver(&Msg{Type: Recall, Addr: 7, From: 0, To: 1}, 1)
		s.l1.Deliver(&Msg{Type: Data, Addr: 7, From: 0, To: 1, Excl: true}, 2)
		if s.l1.Busy() {
			t.Fatal("fill did not complete the access")
		}
		if st := s.l1.StateOf(7); st != Invalid {
			t.Fatalf("write=%v: recalled fill retained as %v", write, st)
		}
		want := PutE
		if write {
			want = PutM
		}
		if got := s.lastSent(t); got.Type != want {
			t.Errorf("write=%v: surrendered with %v, want %v", write, got.Type, want)
		}
	}
}

// Recall overtakes the Grant of a pending S→M upgrade: the store
// completes on the Grant, then the dirty line is surrendered.
func TestRaceRecallBeforeGrant(t *testing.T) {
	s := newScript(1)
	// Install a Shared copy first.
	s.l1.Access(7, false, 0)
	s.l1.Deliver(&Msg{Type: Data, Addr: 7, From: 0, To: 1}, 1) // S fill
	if st := s.l1.StateOf(7); st != Shared {
		t.Fatalf("setup: state %v, want S", st)
	}
	// Upgrade; the directory grants ownership but a later transaction's
	// Recall overtakes the 1-flit Grant.
	if s.l1.Access(7, true, 2) {
		t.Fatal("upgrade should miss")
	}
	s.l1.Deliver(&Msg{Type: Recall, Addr: 7, From: 0, To: 1}, 3)
	s.l1.Deliver(&Msg{Type: Grant, Addr: 7, From: 0, To: 1}, 4)
	if s.l1.Busy() {
		t.Fatal("Grant did not complete the store")
	}
	if st := s.l1.StateOf(7); st != Invalid {
		t.Errorf("recalled upgrade retained as %v", st)
	}
	if got := s.lastSent(t); got.Type != PutM {
		t.Errorf("surrendered with %v, want PutM (the store dirtied the line)", got.Type)
	}
}

// A Recall for a line already evicted does nothing at the L1 — the
// in-flight PutM/PutE serves as the response.
func TestRaceRecallAfterEviction(t *testing.T) {
	s := newScript(1)
	s.l1.Access(7, true, 0)
	s.l1.Deliver(&Msg{Type: Data, Addr: 7, From: 0, To: 1, Excl: true}, 1) // M fill
	// Evict by filling the set (16-block cache, 4 sets × 4 ways; blocks
	// ≡ 7 mod 4 share the set).
	for i := 1; i <= 4; i++ {
		blk := uint64(7 + 4*i)
		s.l1.Access(blk, false, int64(i*2))
		s.l1.Deliver(&Msg{Type: Data, Addr: blk, From: 0, To: 1, Excl: true}, int64(i*2+1))
	}
	if st := s.l1.StateOf(7); st != Invalid {
		t.Fatalf("setup: block 7 still %v after set pressure", st)
	}
	var putM int
	for _, m := range s.sent {
		if m.Type == PutM && m.Addr == 7 {
			putM++
		}
	}
	if putM != 1 {
		t.Fatalf("eviction sent %d PutM for block 7, want 1", putM)
	}
	before := len(s.sent)
	s.l1.Deliver(&Msg{Type: Recall, Addr: 7, From: 0, To: 1}, 20)
	if len(s.sent) != before {
		t.Errorf("Recall for an evicted line produced %v; the in-flight PutM is the response",
			s.lastSent(t).Type)
	}
}

// L2 directed: GetM arriving before the owner's own eviction PutM
// (txnAwaitPut) — the bank must wait for the Put, then grant.
func TestRaceL2AwaitsOwnersPut(t *testing.T) {
	var sent []*Msg
	l2 := NewL2(0, 64*16, 16, 4, 1, func(uint64) int { return 9 },
		func(m *Msg, now int64) { sent = append(sent, m) })
	step := func(now int64) { l2.Tick(now) }

	// Node 1 fetches block 5 → memory fetch → grant E.
	l2.Deliver(&Msg{Type: GetS, Addr: 5, From: 1, To: 0}, 0)
	step(1)
	if len(sent) != 1 || sent[0].Type != MemRead {
		t.Fatalf("expected MemRead, got %v", sent)
	}
	l2.Deliver(&Msg{Type: MemData, Addr: 5, From: 9, To: 0}, 2)
	step(3)
	if got := sent[len(sent)-1]; got.Type != Data || !got.Excl || got.To != 1 {
		t.Fatalf("expected exclusive Data to 1, got %v", got)
	}

	// Node 1 evicts (PutM in flight) and immediately re-requests; the
	// GetM overtakes the PutM.
	l2.Deliver(&Msg{Type: GetM, Addr: 5, From: 1, To: 0}, 4)
	step(5)
	n := len(sent)
	step(6) // nothing should happen: the bank awaits the Put
	if len(sent) != n {
		t.Fatalf("bank acted before the owner's Put arrived: %v", sent[n:])
	}
	l2.Deliver(&Msg{Type: PutM, Addr: 5, From: 1, To: 0}, 7)
	step(8)
	if got := sent[len(sent)-1]; got.Type != Data || !got.Excl || got.To != 1 {
		t.Fatalf("expected exclusive re-grant to 1 after Put, got %v", got)
	}
	if st, owner := l2.DirectoryState(5); st != Modified || owner != 1 {
		t.Errorf("directory %v/%d, want M/1", st, owner)
	}
}

// L2 directed: a straggler InvAck (from a fire-and-forget eviction
// invalidation) must be dropped, not miscounted into a later
// transaction.
func TestRaceStragglerInvAckDropped(t *testing.T) {
	var sent []*Msg
	l2 := NewL2(0, 64*16, 16, 4, 1, func(uint64) int { return 9 },
		func(m *Msg, now int64) { sent = append(sent, m) })
	drops := l2.StaleDrops
	l2.Deliver(&Msg{Type: InvAck, Addr: 5, From: 3, To: 0}, 0)
	l2.Tick(1)
	if l2.StaleDrops != drops+1 {
		t.Errorf("straggler InvAck not counted as a stale drop")
	}
	if len(sent) != 0 {
		t.Errorf("straggler InvAck caused sends: %v", sent)
	}
}
