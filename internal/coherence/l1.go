package coherence

import "fmt"

// L1 is one node's private first-level cache controller.  It is
// blocking: the in-order core has at most one outstanding demand miss,
// which keeps the controller's transient state to a single transaction
// (plus fire-and-forget eviction messages).
type L1 struct {
	node   int
	cache  *Cache
	send   SendFunc
	homeOf func(block uint64) int

	pending *l1Txn

	// Statistics.
	Hits, Misses, Upgrades, Writebacks int64
}

// l1Txn is the single outstanding demand miss.
type l1Txn struct {
	block uint64
	write bool
	// invalidated records an Inv that raced ahead of our Data response
	// (the IS_I case): the value is still delivered once, but the line
	// must not be retained.  It only forces a drop for non-exclusive
	// fills: an Inv can precede an exclusive grant only when it belongs
	// to a transaction serialized before ours (a later transaction
	// would Recall an owner, not Inv it), so keeping an exclusive fill
	// is always coherent.
	invalidated bool
	// recalled records a Recall that raced ahead of our exclusive grant
	// (possible because control and data travel on different virtual
	// networks, and deflection routing preserves no ordering): the fill
	// is installed, immediately surrendered with PutM/PutE, and dropped.
	recalled bool
}

// NewL1 builds an L1 controller.
func NewL1(node, capacityBytes, blockBytes, ways int, homeOf func(uint64) int, send SendFunc) *L1 {
	return &L1{
		node:   node,
		cache:  NewCache(capacityBytes, blockBytes, ways),
		send:   send,
		homeOf: homeOf,
	}
}

// Busy reports whether a demand miss is outstanding (the core stalls).
func (l *L1) Busy() bool { return l.pending != nil }

// StateOf returns the MESI state of a block (for invariant checks).
func (l *L1) StateOf(block uint64) LineState {
	if ln := l.cache.Peek(block); ln != nil {
		return ln.State
	}
	return Invalid
}

// Access performs a load (write=false) or store (write=true) to the
// block.  It returns true on a hit — the access completes this cycle —
// or false on a miss, in which case the request is issued and the core
// must stall until Busy() turns false.  Calling Access while Busy
// panics: the core contract forbids it.
func (l *L1) Access(block uint64, write bool, now int64) bool {
	if l.pending != nil {
		panic(fmt.Sprintf("coherence: L1 %d Access while busy", l.node))
	}
	ln := l.cache.Lookup(block)
	if ln != nil {
		switch {
		case !write: // load hit in S/E/M
			l.Hits++
			return true
		case ln.State == Modified:
			l.Hits++
			return true
		case ln.State == Exclusive:
			// MESI's silent E→M upgrade: no traffic.
			ln.State = Modified
			ln.Dirty = true
			l.Hits++
			return true
		default: // store to Shared: upgrade miss
			l.Upgrades++
			l.Misses++
			l.pending = &l1Txn{block: block, write: true}
			l.send(&Msg{Type: GetM, Addr: block, From: l.node, To: l.homeOf(block)}, now)
			return false
		}
	}
	// Demand miss from Invalid.
	l.Misses++
	t := GetS
	if write {
		t = GetM
	}
	l.pending = &l1Txn{block: block, write: write}
	l.send(&Msg{Type: t, Addr: block, From: l.node, To: l.homeOf(block)}, now)
	return false
}

// Deliver processes a message addressed to this L1.
func (l *L1) Deliver(m *Msg, now int64) {
	switch m.Type {
	case Data:
		l.completeFill(m, now)
	case Grant:
		l.completeUpgrade(m, now)
	case Inv:
		l.invalidate(m, now)
	case Recall:
		l.recall(m, now)
	default:
		panic(fmt.Sprintf("coherence: L1 %d cannot handle %v", l.node, m))
	}
}

func (l *L1) completeFill(m *Msg, now int64) {
	txn := l.pending
	if txn == nil || txn.block != m.Addr {
		panic(fmt.Sprintf("coherence: L1 %d unexpected %v (pending %+v)", l.node, m, txn))
	}
	l.pending = nil
	if txn.invalidated && !m.Excl {
		// IS_I: the load's value is consumed, the line is not retained.
		// (Exclusive fills keep the line: see the l1Txn field comment.)
		return
	}
	if txn.recalled {
		// The home recalled our ownership before the grant reached us:
		// consume the value and surrender the line immediately.
		if !m.Excl {
			panic(fmt.Sprintf("coherence: L1 %d recalled during a non-exclusive fill: %v", l.node, m))
		}
		t := PutE
		if txn.write {
			l.Writebacks++
			t = PutM
		}
		l.send(&Msg{Type: t, Addr: m.Addr, From: l.node, To: l.homeOf(m.Addr)}, now)
		return
	}
	// Make room, then install.
	victim := l.cache.VictimFor(m.Addr, nil)
	l.evict(victim, now)
	state := Shared
	switch {
	case txn.write:
		if !m.Excl {
			panic(fmt.Sprintf("coherence: L1 %d write fill without exclusivity: %v", l.node, m))
		}
		state = Modified
	case m.Excl:
		state = Exclusive
	}
	l.cache.Install(victim, m.Addr, state)
	if state == Modified {
		l.cache.Peek(m.Addr).Dirty = true
	}
}

func (l *L1) completeUpgrade(m *Msg, now int64) {
	txn := l.pending
	if txn == nil || txn.block != m.Addr || !txn.write {
		panic(fmt.Sprintf("coherence: L1 %d unexpected %v (pending %+v)", l.node, m, txn))
	}
	if txn.invalidated {
		// The L2 serialized an Inv before our GetM, so it must have sent
		// full Data, not a bare Grant.
		panic(fmt.Sprintf("coherence: L1 %d got Grant for an invalidated upgrade (a%x)", l.node, m.Addr))
	}
	ln := l.cache.Peek(m.Addr)
	if ln == nil || ln.State != Shared {
		panic(fmt.Sprintf("coherence: L1 %d Grant without a Shared copy (a%x, %v)", l.node, m.Addr, ln))
	}
	recalled := txn.recalled
	l.pending = nil
	ln.State = Modified
	ln.Dirty = true
	if recalled {
		// A Recall overtook this grant: the store completes, then the
		// line is surrendered at once.
		l.Writebacks++
		l.send(&Msg{Type: PutM, Addr: m.Addr, From: l.node, To: l.homeOf(m.Addr)}, now)
		ln.State = Invalid
	}
}

func (l *L1) invalidate(m *Msg, now int64) {
	if ln := l.cache.Peek(m.Addr); ln != nil {
		if ln.State != Shared {
			// Invs target sharers only; an owner is recalled instead.
			panic(fmt.Sprintf("coherence: L1 %d Inv for %v line a%x", l.node, ln.State, m.Addr))
		}
		ln.State = Invalid
	} else if l.pending != nil && l.pending.block == m.Addr {
		// The Inv overtook our pending response on another vnet.
		l.pending.invalidated = true
	}
	// A stale Inv for a silently evicted copy is acked all the same —
	// the directory counts acks, not copies.
	l.send(&Msg{Type: InvAck, Addr: m.Addr, From: l.node, To: m.From}, now)
}

func (l *L1) recall(m *Msg, now int64) {
	ln := l.cache.Peek(m.Addr)
	if ln == nil {
		if l.pending != nil && l.pending.block == m.Addr {
			// The Recall overtook our exclusive grant (different virtual
			// networks preserve no ordering): surrender on arrival.
			l.pending.recalled = true
			return
		}
		// Already evicted: the PutM/PutE racing ahead of this Recall
		// serves as the recall response at the L2.
		return
	}
	switch ln.State {
	case Modified:
		l.Writebacks++
		l.send(&Msg{Type: PutM, Addr: m.Addr, From: l.node, To: m.From}, now)
	case Exclusive:
		l.send(&Msg{Type: PutE, Addr: m.Addr, From: l.node, To: m.From}, now)
	case Shared:
		if l.pending != nil && l.pending.block == m.Addr && l.pending.write {
			// Recall overtook the Grant of our pending upgrade: finish
			// the store when the Grant lands, then surrender.
			l.pending.recalled = true
			return
		}
		panic(fmt.Sprintf("coherence: L1 %d recalled for plain Shared line a%x", l.node, m.Addr))
	default:
		panic(fmt.Sprintf("coherence: L1 %d recalled for %v line a%x", l.node, ln.State, m.Addr))
	}
	ln.State = Invalid
}

// evict writes back or announces the victim line as the protocol
// requires: M → PutM (data), E → PutE (notice), S → silent.
func (l *L1) evict(victim *Line, now int64) {
	if victim.State == Invalid {
		return
	}
	switch victim.State {
	case Modified:
		l.Writebacks++
		l.send(&Msg{Type: PutM, Addr: victim.Tag, From: l.node, To: l.homeOf(victim.Tag)}, now)
	case Exclusive:
		l.send(&Msg{Type: PutE, Addr: victim.Tag, From: l.node, To: l.homeOf(victim.Tag)}, now)
	}
	victim.State = Invalid
}

// Walk exposes the underlying tag store for invariant checking.
func (l *L1) Walk(fn func(*Line)) { l.cache.Walk(fn) }

// MissRate returns the demand miss ratio.
func (l *L1) MissRate() float64 {
	if l.Hits+l.Misses == 0 {
		return 0
	}
	return float64(l.Misses) / float64(l.Hits+l.Misses)
}
