package coherence

import "container/heap"

// eventQueue delivers messages after a fixed processing delay, in
// (time, arrival-order) order — the L2 bank pipeline and the memory
// controller both use it.
type eventQueue struct {
	h   eventHeap
	seq int64
}

type event struct {
	at  int64
	seq int64
	msg *Msg
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any     { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }

// schedule enqueues m for processing at cycle at.
func (q *eventQueue) schedule(m *Msg, at int64) {
	heap.Push(&q.h, event{at: at, seq: q.seq, msg: m})
	q.seq++
}

// due pops every message scheduled at or before now.
func (q *eventQueue) due(now int64) []*Msg {
	var out []*Msg
	for len(q.h) > 0 && q.h[0].at <= now {
		out = append(out, heap.Pop(&q.h).(event).msg)
	}
	return out
}

// pending returns the number of queued messages.
func (q *eventQueue) pending() int { return len(q.h) }
