package coherence

import (
	"math/rand"
	"testing"
)

// ---------------------------------------------------------------------
// Cache unit tests
// ---------------------------------------------------------------------

func TestNewCachePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero capacity": func() { NewCache(0, 16, 4) },
		"odd block":     func() { NewCache(1024, 24, 4) },
		"non-pow2 sets": func() { NewCache(16*12, 16, 4) },
		"ways>blocks":   func() { NewCache(16, 16, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestCacheLookupInstall(t *testing.T) {
	c := NewCache(1024, 16, 4) // 64 blocks, 16 sets
	if c.Lookup(5) != nil {
		t.Error("empty cache hit")
	}
	v := c.VictimFor(5, nil)
	c.Install(v, 5, Shared)
	ln := c.Lookup(5)
	if ln == nil || ln.State != Shared || ln.Tag != 5 {
		t.Fatalf("install/lookup broken: %+v", ln)
	}
	if c.BlockAddr(0x123) != 0x12 {
		t.Errorf("BlockAddr(0x123) = %x, want 0x12 (16-byte blocks)", c.BlockAddr(0x123))
	}
}

func TestCacheLRUVictim(t *testing.T) {
	c := NewCache(4*16, 16, 4) // one set, 4 ways
	for b := uint64(0); b < 4; b++ {
		c.Install(c.VictimFor(b, nil), b, Shared)
	}
	// Touch 0, 2, 3 → LRU is 1.
	c.Lookup(0)
	c.Lookup(2)
	c.Lookup(3)
	v := c.VictimFor(9, nil)
	if v.Tag != 1 {
		t.Errorf("victim tag %d, want 1 (LRU)", v.Tag)
	}
}

func TestCacheVictimPrefersInvalid(t *testing.T) {
	c := NewCache(4*16, 16, 4)
	c.Install(c.VictimFor(0, nil), 0, Shared)
	v := c.VictimFor(1, nil)
	if v.State != Invalid {
		t.Error("victim should be an invalid way when one exists")
	}
}

func TestCacheVictimPreference(t *testing.T) {
	c := NewCache(4*16, 16, 4)
	for b := uint64(0); b < 4; b++ {
		c.Install(c.VictimFor(b, nil), b, Shared)
	}
	c.Peek(2).State = Modified
	// Preference: avoid Modified lines.
	v := c.VictimFor(9, func(l *Line) int {
		if l.State == Modified {
			return 1
		}
		return 0
	})
	if v.Tag == 2 {
		t.Error("preference ignored: picked the Modified line")
	}
}

func TestLineStateString(t *testing.T) {
	for s, want := range map[LineState]string{Invalid: "I", Shared: "S", Exclusive: "E", Modified: "M"} {
		if s.String() != want {
			t.Errorf("state %d = %q", s, s.String())
		}
	}
}

// ---------------------------------------------------------------------
// Message taxonomy
// ---------------------------------------------------------------------

func TestMsgVNets(t *testing.T) {
	// §5.2: one control VN (1 flit), two data VNs (5 flits).
	ctrl := []MsgType{GetS, GetM, PutE, Inv, Recall, Grant, InvAck, MemRead}
	for _, m := range ctrl {
		if m.VNet() != VNetCtrl || m.Flits() != 1 {
			t.Errorf("%v: vnet %d flits %d, want ctrl/1", m, m.VNet(), m.Flits())
		}
	}
	for _, m := range []MsgType{Data, MemData} {
		if m.VNet() != VNetData || m.Flits() != 5 {
			t.Errorf("%v: vnet %d flits %d, want data/5", m, m.VNet(), m.Flits())
		}
	}
	for _, m := range []MsgType{PutM, MemWB} {
		if m.VNet() != VNetWB || m.Flits() != 5 {
			t.Errorf("%v: vnet %d flits %d, want wb/5", m, m.VNet(), m.Flits())
		}
	}
}

func TestCornerMCs(t *testing.T) {
	mcs := CornerMCs(8, 8)
	want := []int{0, 7, 56, 63}
	for i := range want {
		if mcs[i] != want[i] {
			t.Fatalf("CornerMCs = %v, want %v", mcs, want)
		}
	}
}

// ---------------------------------------------------------------------
// Protocol harness: a randomized-delay transport.  Per-message random
// latencies reorder deliveries across virtual networks — exactly the
// races (Inv before Data, Recall before Grant) the controllers must
// survive.
// ---------------------------------------------------------------------

type cluster struct {
	l1s  []*L1
	l2s  []*L2
	mcs  map[int]*MC
	wire eventQueue
	rng  *rand.Rand
	jit  int
	now  int64
}

// newCluster builds n nodes with tiny caches (to force evictions), an
// L2 bank per node and one MC at node 0.
func newCluster(n int, jitter int, seed int64) *cluster {
	c := &cluster{rng: rand.New(rand.NewSource(seed)), jit: jitter, mcs: map[int]*MC{}}
	send := func(m *Msg, now int64) {
		d := int64(1)
		if c.jit > 1 {
			d += int64(c.rng.Intn(c.jit))
		}
		c.wire.schedule(m, now+d)
	}
	homeOf := func(block uint64) int { return int(block % uint64(n)) }
	mcOf := func(block uint64) int { return 0 }
	for i := 0; i < n; i++ {
		c.l1s = append(c.l1s, NewL1(i, 16*16, 16, 4, homeOf, send))  // 16 blocks
		c.l2s = append(c.l2s, NewL2(i, 64*16, 16, 4, 2, mcOf, send)) // 64 blocks
	}
	c.mcs[0] = NewMC(0, 20, send)
	return c
}

func (c *cluster) step() {
	for _, m := range c.wire.due(c.now) {
		c.route(m)
	}
	for _, l2 := range c.l2s {
		l2.Tick(c.now)
	}
	for _, mc := range c.mcs {
		mc.Tick(c.now)
	}
	c.now++
}

func (c *cluster) route(m *Msg) {
	switch m.Type {
	case Data, Grant, Inv, Recall:
		c.l1s[m.To].Deliver(m, c.now)
	case GetS, GetM, PutM, PutE, InvAck, MemData:
		c.l2s[m.To].Deliver(m, c.now)
	case MemRead, MemWB:
		c.mcs[m.To].Deliver(m, c.now)
	default:
		panic("unroutable " + m.String())
	}
}

// settle steps until every L1 is idle and all queues drain.
func (c *cluster) settle(t *testing.T, max int) {
	t.Helper()
	for i := 0; i < max; i++ {
		busy := c.wire.pending() > 0
		for _, l1 := range c.l1s {
			busy = busy || l1.Busy()
		}
		for _, l2 := range c.l2s {
			busy = busy || l2.Pending() > 0
		}
		for _, mc := range c.mcs {
			busy = busy || mc.Pending() > 0
		}
		if !busy {
			return
		}
		c.step()
	}
	t.Fatalf("cluster did not settle within %d cycles", max)
}

func (c *cluster) access(t *testing.T, node int, block uint64, write bool) {
	t.Helper()
	if c.l1s[node].Access(block, write, c.now) {
		return
	}
	for i := 0; i < 5000 && c.l1s[node].Busy(); i++ {
		c.step()
	}
	if c.l1s[node].Busy() {
		t.Fatalf("node %d access to %x never completed", node, block)
	}
}

// ---------------------------------------------------------------------
// Directed protocol tests
// ---------------------------------------------------------------------

func TestReadMissGrantsExclusive(t *testing.T) {
	c := newCluster(4, 1, 1)
	c.access(t, 1, 100, false)
	if st := c.l1s[1].StateOf(100); st != Exclusive {
		t.Errorf("sole reader state %v, want E (MESI exclusive grant)", st)
	}
	ds, owner := c.l2s[int(100%4)].DirectoryState(100)
	if ds != Modified || owner != 1 {
		t.Errorf("directory %v/%d, want M/1", ds, owner)
	}
}

func TestSilentEToMUpgrade(t *testing.T) {
	c := newCluster(4, 1, 2)
	c.access(t, 1, 100, false)
	before := c.l2s[int(100%4)].Hits + c.l2s[int(100%4)].MemFetches
	c.access(t, 1, 100, true) // silent E→M: no protocol traffic
	after := c.l2s[int(100%4)].Hits + c.l2s[int(100%4)].MemFetches
	if st := c.l1s[1].StateOf(100); st != Modified {
		t.Errorf("state %v, want M", st)
	}
	if after != before {
		t.Error("silent upgrade generated L2 traffic")
	}
}

func TestTwoReadersShare(t *testing.T) {
	c := newCluster(4, 1, 3)
	c.access(t, 1, 100, false)
	c.access(t, 2, 100, false) // recalls E from node 1, then shares
	c.settle(t, 10000)
	s1, s2 := c.l1s[1].StateOf(100), c.l1s[2].StateOf(100)
	if s2 == Invalid {
		t.Fatalf("second reader got nothing")
	}
	if err := CheckSWMR(c.l1s); err != nil {
		t.Fatal(err)
	}
	// With recall-invalidate semantics node 1 lost its copy and node 2
	// became the exclusive owner.
	if s1 != Invalid || s2 != Exclusive {
		t.Errorf("states after second read: %v/%v", s1, s2)
	}
}

func TestWriteInvalidatesSharers(t *testing.T) {
	c := newCluster(4, 1, 4)
	// Build up two sharers: 1 reads (E), 2 reads (recall → E at 2),
	// 1 reads again (recall → E at 1)… to get true S+S use three reads.
	c.access(t, 1, 100, false)
	c.access(t, 2, 100, false)
	c.access(t, 3, 100, false) // 2 recalled; L2 now has data; 3 gets E
	c.access(t, 1, 100, false) // recall 3 → 1 gets E… single-owner chain
	// A write from 2 must leave 2 as the only valid copy.
	c.access(t, 2, 100, true)
	c.settle(t, 10000)
	if st := c.l1s[2].StateOf(100); st != Modified {
		t.Errorf("writer state %v, want M", st)
	}
	for _, n := range []int{0, 1, 3} {
		if st := c.l1s[n].StateOf(100); st != Invalid {
			t.Errorf("node %d still holds %v after foreign write", n, st)
		}
	}
	if err := CheckSWMR(c.l1s); err != nil {
		t.Fatal(err)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	c := newCluster(2, 1, 5)
	// Dirty a block, then stream the same L1 set until it is evicted.
	c.access(t, 1, 100, true)
	// L1 has 4 sets × 4 ways; blocks ≡ 100 (mod 4) land in one set.
	for i := 1; i <= 4; i++ {
		c.access(t, 1, uint64(100+4*i), false)
	}
	c.settle(t, 20000)
	if st := c.l1s[1].StateOf(100); st != Invalid {
		t.Fatalf("block 100 still cached (%v); eviction did not happen", st)
	}
	if c.l1s[1].Writebacks == 0 {
		t.Error("dirty eviction produced no PutM")
	}
	// L2 must have absorbed the data (directory Shared, dirty).
	ds, _ := c.l2s[0].DirectoryState(100)
	if ds != Shared {
		t.Errorf("directory state %v after PutM, want Shared", ds)
	}
}

func TestUpgradeFromShared(t *testing.T) {
	c := newCluster(4, 1, 6)
	// Create genuine S+S: 1 and 2 both read; with the recall chain,
	// use a third reader to force L2-resident data, then two reads.
	c.access(t, 1, 100, false) // E at 1
	c.access(t, 2, 100, false) // recall 1; E at 2
	c.access(t, 1, 100, false) // recall 2; E at 1
	c.access(t, 3, 100, false) // recall 1; E at 3
	c.access(t, 2, 100, false) // recall 3; E at 2 … exclusive handoff
	// The handoff chain never creates S+S because a lone reader always
	// gets E.  Force sharing: two reads while the line is L2-resident
	// *and* already shared.  After a recall the L2 grants E to the sole
	// requester, so S appears only when a second GetS hits a line whose
	// sharer list is non-empty — i.e. after an owner was recalled by a
	// GetS *and* another GetS arrives while the first holder still
	// shares… which this protocol's exclusive-handoff policy prevents.
	// So upgrades happen from S produced by concurrent misses:
	c.l1s[1].Access(100, false, c.now) // may hit (E/S) or miss
	c.settle(t, 20000)
	if err := CheckSWMR(c.l1s); err != nil {
		t.Fatal(err)
	}
}

// ---------------------------------------------------------------------
// Randomized protocol fuzzing under message reordering
// ---------------------------------------------------------------------

func TestFuzzSWMRUnderReordering(t *testing.T) {
	for _, jitter := range []int{1, 8, 40} {
		c := newCluster(8, jitter, 7_000+int64(jitter))
		rng := rand.New(rand.NewSource(99))
		const blocks = 48 // small pool → heavy conflicts and evictions
		for step := 0; step < 30000; step++ {
			node := rng.Intn(8)
			if !c.l1s[node].Busy() && rng.Float64() < 0.6 {
				block := uint64(rng.Intn(blocks))
				write := rng.Float64() < 0.4
				c.l1s[node].Access(block, write, c.now)
			}
			c.step()
			if step%500 == 0 {
				if err := CheckSWMR(c.l1s); err != nil {
					t.Fatalf("jitter %d step %d: %v", jitter, step, err)
				}
				if err := CheckDirectory(c.l1s, c.l2s); err != nil {
					t.Fatalf("jitter %d step %d: %v", jitter, step, err)
				}
			}
		}
		c.settle(t, 100000)
		if err := CheckSWMR(c.l1s); err != nil {
			t.Fatalf("jitter %d final: %v", jitter, err)
		}
		if err := CheckDirectory(c.l1s, c.l2s); err != nil {
			t.Fatalf("jitter %d final: %v", jitter, err)
		}
		// Stale drops are legal (fire-and-forget eviction acks) but
		// should stay a small fraction of traffic.
		var drops, fetches int64
		for _, l2 := range c.l2s {
			drops += l2.StaleDrops
			fetches += l2.MemFetches + l2.Hits
		}
		if fetches == 0 {
			t.Fatal("fuzz generated no L2 traffic")
		}
		t.Logf("jitter %d: l2 ops %d, stale drops %d", jitter, fetches, drops)
	}
}

// Hit/miss accounting sanity.
func TestL1MissRate(t *testing.T) {
	c := newCluster(2, 1, 8)
	c.access(t, 0, 7, false)
	c.access(t, 0, 7, false)
	c.access(t, 0, 7, false)
	l1 := c.l1s[0]
	if l1.Misses != 1 || l1.Hits != 2 {
		t.Errorf("hits/misses = %d/%d, want 2/1", l1.Hits, l1.Misses)
	}
	if mr := l1.MissRate(); mr < 0.3 || mr > 0.34 {
		t.Errorf("MissRate = %g, want 1/3", mr)
	}
	fresh := NewL1(0, 256, 16, 4, func(uint64) int { return 0 }, func(*Msg, int64) {})
	if fresh.MissRate() != 0 {
		t.Error("empty L1 miss rate must be 0")
	}
}

func TestAccessWhileBusyPanics(t *testing.T) {
	c := newCluster(2, 1, 9)
	c.l1s[0].Access(3, false, 0) // miss, now busy
	defer func() {
		if recover() == nil {
			t.Error("Access while busy must panic")
		}
	}()
	c.l1s[0].Access(4, false, 0)
}

func TestMCLatency(t *testing.T) {
	var got []*Msg
	mc := NewMC(0, 20, func(m *Msg, now int64) { got = append(got, m) })
	mc.Deliver(&Msg{Type: MemRead, Addr: 5, From: 3, To: 0}, 10)
	for now := int64(10); now < 29; now++ {
		mc.Tick(now)
		if len(got) != 0 {
			t.Fatalf("MemData sent at %d, before the DRAM latency elapsed", now)
		}
	}
	mc.Tick(30)
	if len(got) != 1 || got[0].Type != MemData || got[0].To != 3 {
		t.Fatalf("MemData wrong: %v", got)
	}
	if mc.Reads != 1 {
		t.Error("read not counted")
	}
	mc.Deliver(&Msg{Type: MemWB, Addr: 5, From: 3, To: 0}, 31)
	if mc.Writebacks != 1 {
		t.Error("writeback not counted")
	}
}
