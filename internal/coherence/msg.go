// Package coherence implements the two-level MESI protocol of Table 1:
// private L1 caches, address-interleaved shared L2 banks holding the
// directory, and corner memory controllers.  It is the substrate behind
// the §5.2 experiments (Figs. 8–10), replacing GEM5's Ruby protocol
// with a deterministic engine that produces the same packet population:
// 1-flit control messages on a control virtual network and 5-flit data
// messages on two data virtual networks.
//
// Protocol structure (DESIGN.md §2 records the simplifications):
//
//   - L1s are blocking — the in-order cores have at most one outstanding
//     demand miss — with fire-and-forget writebacks (PutM) and eviction
//     notices (PutE; E lines are not silently dropped so the directory
//     can always await an owner's data).
//   - The L2 banks are the serialization points: one transaction per
//     line at a time, later requests queue behind it.  Ownership
//     transfers always go through the L2 (recall, no direct forwarding),
//     which keeps every race resolvable locally.
//   - Endpoint queues are unbounded (GEM5's protocol buffers are finite
//     but large); protocol deadlock-freedom in the NoC comes from the
//     virtual-network / domain separation exactly as in the paper.
package coherence

import "fmt"

// Virtual networks, matching §5.2: one control network for 1-flit
// messages and two data networks for 5-flit messages.
const (
	VNetCtrl  = 0 // requests, invalidations, acks, grants (1 flit)
	VNetData  = 1 // data responses toward requesters (5 flits)
	VNetWB    = 2 // writebacks and recall data toward L2/memory (5 flits)
	NumVNets  = 3
	DataFlits = 5
	CtrlFlits = 1
)

// MsgType enumerates the protocol messages.
type MsgType int

// Protocol message types.
const (
	// L1 → L2 requests (ctrl).
	GetS MsgType = iota // read miss: request shared copy
	GetM                // write miss/upgrade: request exclusive copy
	PutE                // eviction notice for a clean-exclusive line (ctrl)

	// L1 → L2 data (writeback network).
	PutM // dirty writeback / recall data

	// L2 → L1 (ctrl).
	Inv    // invalidate a shared copy
	Recall // recall the owned copy (data or notice must follow)
	Grant  // ownership grant without data (upgrade hit)

	// L2 → L1 (data network).
	Data // data response; Excl says whether it grants E/M

	// L1 → L2 (ctrl).
	InvAck // invalidation acknowledged

	// L2 ↔ memory controller.
	MemRead // L2 → MC fetch request (ctrl)
	MemData // MC → L2 fill (data network)
	MemWB   // L2 → MC dirty eviction (writeback network)
)

var msgNames = map[MsgType]string{
	GetS: "GetS", GetM: "GetM", PutE: "PutE", PutM: "PutM",
	Inv: "Inv", Recall: "Recall", Grant: "Grant", Data: "Data",
	InvAck: "InvAck", MemRead: "MemRead", MemData: "MemData", MemWB: "MemWB",
}

// String names the message type.
func (t MsgType) String() string {
	if s, ok := msgNames[t]; ok {
		return s
	}
	return fmt.Sprintf("MsgType(%d)", int(t))
}

// VNet returns the virtual network the message travels on.
func (t MsgType) VNet() int {
	switch t {
	case Data, MemData:
		return VNetData
	case PutM, MemWB:
		return VNetWB
	default:
		return VNetCtrl
	}
}

// Flits returns the message size in flits (Table 1: 16-byte blocks on
// 128-bit links → 5-flit data packets, 1-flit control packets).
func (t MsgType) Flits() int {
	if t.VNet() == VNetCtrl {
		return CtrlFlits
	}
	return DataFlits
}

// Msg is one protocol message.
type Msg struct {
	Type MsgType
	Addr uint64 // block address (block-aligned >> blockBits)
	From int    // sender node id
	To   int    // destination node id

	// Excl marks a Data message granting exclusivity (E on a clean
	// fill with no sharers, M on a GetM response).
	Excl bool
	// Acks tells a GetM requester nothing in this protocol (collection
	// happens at the L2); retained on Data for diagnostics.
	Acks int
}

// String renders the message for diagnostics.
func (m *Msg) String() string {
	return fmt.Sprintf("%v[a%x %d→%d excl=%v]", m.Type, m.Addr, m.From, m.To, m.Excl)
}

// SendFunc transmits a message; the system layer wraps messages into
// packets and injects them into the fabric.  Send never fails: each
// node keeps an unbounded outbound queue drained under fabric
// backpressure.
type SendFunc func(m *Msg, now int64)
