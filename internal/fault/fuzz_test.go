package fault

import (
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzPlanJSON feeds arbitrary bytes through the plan decode path and
// asserts three properties: no input may panic decoding, validation or
// injector compilation; any input that validates must survive a
// marshal/unmarshal round trip unchanged (plans live inside the cached
// config fingerprint, so lossy serialization would alias distinct
// fault runs onto one cache key); and every valid plan must compile.
func FuzzPlanJSON(f *testing.F) {
	seedPlans := []Plan{
		{Seed: 1, Events: []Event{{Kind: LinkKill, Node: 5, Dir: 1, At: 100}}},
		{MaxRetries: -1, Backoff: 8, Events: []Event{
			{Kind: LinkFlap, Node: 9, Dir: 0, At: 10, Repair: 3, Period: 8},
			{Kind: RouterFreeze, Node: 0, At: 50, Repair: 50},
			{Kind: PacketDrop, Node: 6, Dir: 2, Prob: 0.25},
		}},
	}
	for _, p := range seedPlans {
		raw, err := json.Marshal(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	f.Add([]byte(`{"Events":[{"Kind":"meteor-strike"}]}`))
	f.Add([]byte(`{"Events":[{"Kind":"link-flap","Node":5,"Repair":-1}]}`))
	f.Add([]byte(`{"MaxRetries":-2}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var p Plan
		if json.Unmarshal(data, &p) != nil {
			return
		}
		if p.Validate(4, 4) != nil {
			return
		}
		// A validated plan must compile; the injector must answer
		// arbitrary in-range queries without panicking.
		inj := NewInjector(&p, 4, 4)
		if inj == nil != p.Empty() {
			t.Fatalf("compiled = %v but Empty = %v", inj != nil, p.Empty())
		}
		out, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("valid plan failed to marshal: %v", err)
		}
		var back Plan
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("round trip failed to decode: %v\n%s", err, out)
		}
		if !reflect.DeepEqual(p, back) {
			t.Fatalf("round trip not lossless:\n in: %+v\nout: %+v", p, back)
		}
	})
}
