// Package fault defines deterministic, seeded fault plans for the
// network fabrics and the injector that evaluates them on the routers'
// hot paths.
//
// Surf-Bless's no-buffer guarantee rests on exact wave/port balance
// (paper §3): a broken link or a stuck router destroys deflectability,
// so the seed reproduction simply panicked when the balance broke.
// This package turns such failures into a first-class workload: a Plan
// is a list of timed fault events — permanent link kills, transient
// link flaps with a repair delay, router freezes and probabilistic
// single-flit corruption — that every fabric consults through a shared
// *Injector in its Step path, mirroring how internal/probe is wired
// (one nil check on the hot path when faults are off).
//
// Unlike a probe, an armed fault plan DOES change simulation results,
// so Plan travels inside config.Config and is therefore covered by the
// result-cache fingerprint; a nil plan serializes to nothing and keeps
// fault-free fingerprints unchanged.
//
// All fault decisions are pure functions of (plan, seed, packet,
// cycle): two runs with the same options produce bit-identical
// results, faulty or not.
package fault

import (
	"encoding/json"
	"fmt"
	"os"

	"surfbless/internal/geom"
)

// Kind classifies one fault event.
type Kind int

// Fault kinds.
const (
	// LinkKill removes one unidirectional link permanently from cycle
	// At on: the owning router can no longer send on it.
	LinkKill Kind = iota
	// LinkFlap takes the link down for Repair cycles starting at At;
	// with a Period it repeats every Period cycles.
	LinkFlap
	// RouterFreeze stops a router from cycle At on (forever when
	// Repair is 0, else for Repair cycles, repeating with Period):
	// a frozen bufferless router drops every arriving packet into the
	// retransmit path; a frozen VC router buffers arrivals but grants
	// nothing.
	RouterFreeze
	// PacketDrop corrupts packets crossing one link with probability
	// Prob per traversal from cycle At on; a corrupted packet is
	// discarded at the link entry (the CRC failed) and handed to the
	// drop-with-retransmit path.
	PacketDrop
)

var kindNames = map[Kind]string{
	LinkKill:     "link-kill",
	LinkFlap:     "link-flap",
	RouterFreeze: "router-freeze",
	PacketDrop:   "packet-drop",
}

// String returns the JSON name of the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// MarshalJSON encodes the kind by name so plan files read naturally.
func (k Kind) MarshalJSON() ([]byte, error) {
	s, ok := kindNames[k]
	if !ok {
		return nil, fmt.Errorf("fault: cannot encode unknown kind %d", int(k))
	}
	return json.Marshal(s)
}

// UnmarshalJSON accepts the kind names (case-sensitive).
func (k *Kind) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	for kind, name := range kindNames {
		if name == s {
			*k = kind
			return nil
		}
	}
	return fmt.Errorf("fault: unknown kind %q (want link-kill, link-flap, router-freeze or packet-drop)", s)
}

// Event is one timed fault.  Node is the router id; for link faults Dir
// is the router's OUTPUT direction (0 N, 1 E, 2 S, 3 W), so the event
// names one unidirectional link.
type Event struct {
	Kind Kind
	Node int
	Dir  int   `json:",omitempty"` // link faults only
	At   int64 // first cycle the fault is active

	// Repair is the down/frozen duration in cycles (0 = permanent).
	// Required ≥ 1 for LinkFlap, which models a transient fault.
	Repair int64 `json:",omitempty"`
	// Period repeats the fault every Period cycles (0 = once).
	Period int64 `json:",omitempty"`
	// Prob is the per-traversal corruption probability for PacketDrop.
	Prob float64 `json:",omitempty"`
}

// Plan is a complete, deterministic fault schedule for one run.
type Plan struct {
	// Seed feeds the per-(packet, cycle) hash behind PacketDrop draws;
	// it is independent of the traffic seed so the same fault plan can
	// be replayed over different workloads.
	Seed int64

	// MaxRetries bounds source retransmissions per packet after a
	// fault drop (0 = DefaultMaxRetries, -1 = drop immediately with no
	// retry).  Exhausted packets count as Dropped in stats.
	MaxRetries int `json:",omitempty"`
	// Backoff is the base retransmission delay in cycles; attempt k
	// waits Backoff·2^(k−1) (0 = DefaultBackoff).
	Backoff int64 `json:",omitempty"`

	Events []Event
}

// Retransmission policy defaults (see Plan.MaxRetries / Plan.Backoff).
const (
	DefaultMaxRetries = 3
	DefaultBackoff    = 64
)

// Empty reports whether the plan injects no faults at all.
func (p *Plan) Empty() bool { return p == nil || len(p.Events) == 0 }

// Validate reports the first problem with the plan on a width×height
// mesh, or nil.  Every error is wrapped with enough context to locate
// the offending event.
func (p *Plan) Validate(width, height int) error {
	if p == nil {
		return nil
	}
	if p.MaxRetries < -1 {
		return fmt.Errorf("fault: MaxRetries = %d, need ≥ -1", p.MaxRetries)
	}
	if p.Backoff < 0 {
		return fmt.Errorf("fault: Backoff = %d, need ≥ 0", p.Backoff)
	}
	mesh := geom.NewMesh(width, height)
	for i, e := range p.Events {
		if err := e.validate(mesh); err != nil {
			return fmt.Errorf("fault: event %d (%v): %w", i, e.Kind, err)
		}
	}
	return nil
}

func (e Event) validate(mesh geom.Mesh) error {
	if _, ok := kindNames[e.Kind]; !ok {
		return fmt.Errorf("unknown kind %d", int(e.Kind))
	}
	if e.Node < 0 || e.Node >= mesh.Nodes() {
		return fmt.Errorf("node %d outside [0,%d)", e.Node, mesh.Nodes())
	}
	if e.At < 0 {
		return fmt.Errorf("activation cycle %d is negative", e.At)
	}
	if e.Repair < 0 {
		return fmt.Errorf("negative repair delay %d", e.Repair)
	}
	if e.Period < 0 {
		return fmt.Errorf("negative period %d", e.Period)
	}
	if e.Period > 0 && e.Period < e.Repair {
		return fmt.Errorf("period %d shorter than repair delay %d (link would never heal)", e.Period, e.Repair)
	}
	switch e.Kind {
	case LinkKill, LinkFlap, PacketDrop:
		if e.Dir < 0 || e.Dir >= geom.NumLinkDirs {
			return fmt.Errorf("direction %d outside [0,%d)", e.Dir, geom.NumLinkDirs)
		}
		if !mesh.HasNeighbor(mesh.CoordOf(e.Node), geom.Dir(e.Dir)) {
			return fmt.Errorf("node %d has no %v link (mesh border)", e.Node, geom.Dir(e.Dir))
		}
	}
	switch e.Kind {
	case LinkFlap:
		if e.Repair == 0 {
			return fmt.Errorf("flap needs a repair delay ≥ 1 (use link-kill for a permanent fault)")
		}
	case PacketDrop:
		if e.Prob <= 0 || e.Prob > 1 {
			return fmt.Errorf("drop probability %g outside (0,1]", e.Prob)
		}
	default:
		if e.Prob != 0 {
			return fmt.Errorf("probability is only meaningful for packet-drop events")
		}
	}
	return nil
}

// LoadPlan reads and validates a fault plan from a JSON file for a
// width×height mesh.
func LoadPlan(path string, width, height int) (*Plan, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fault: %w", err)
	}
	var p Plan
	if err := json.Unmarshal(raw, &p); err != nil {
		return nil, fmt.Errorf("fault: %s: %w", path, err)
	}
	if err := p.Validate(width, height); err != nil {
		return nil, fmt.Errorf("fault: %s: %w", path, err)
	}
	return &p, nil
}
