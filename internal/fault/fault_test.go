package fault

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"surfbless/internal/geom"
	"surfbless/internal/packet"
)

func TestPlanValidate(t *testing.T) {
	ok := func(e Event) *Plan { return &Plan{Events: []Event{e}} }
	cases := []struct {
		name string
		plan *Plan
		want string // substring of the error, "" = valid
	}{
		{"nil plan", nil, ""},
		{"empty plan", &Plan{}, ""},
		{"link kill", ok(Event{Kind: LinkKill, Node: 0, Dir: int(geom.East)}), ""},
		{"periodic flap", ok(Event{Kind: LinkFlap, Node: 5, Dir: int(geom.North), At: 10, Repair: 3, Period: 8}), ""},
		{"freeze forever", ok(Event{Kind: RouterFreeze, Node: 15, At: 100}), ""},
		{"drop", ok(Event{Kind: PacketDrop, Node: 1, Dir: int(geom.West), Prob: 0.5}), ""},

		{"unknown kind", ok(Event{Kind: Kind(99), Node: 0}), "unknown kind"},
		{"node too big", ok(Event{Kind: RouterFreeze, Node: 16}), "outside [0,16)"},
		{"node negative", ok(Event{Kind: RouterFreeze, Node: -1}), "outside [0,16)"},
		{"negative at", ok(Event{Kind: RouterFreeze, Node: 0, At: -1}), "negative"},
		{"negative repair", ok(Event{Kind: RouterFreeze, Node: 0, Repair: -5}), "negative repair delay"},
		{"negative period", ok(Event{Kind: RouterFreeze, Node: 0, Period: -5}), "negative period"},
		{"period < repair", ok(Event{Kind: LinkFlap, Node: 5, Dir: int(geom.North), Repair: 10, Period: 5}), "never heal"},
		{"bad dir", ok(Event{Kind: LinkKill, Node: 0, Dir: 4}), "direction 4"},
		{"border link", ok(Event{Kind: LinkKill, Node: 0, Dir: int(geom.North)}), "no N link"},
		{"flap without repair", ok(Event{Kind: LinkFlap, Node: 5, Dir: int(geom.North)}), "repair delay"},
		{"drop without prob", ok(Event{Kind: PacketDrop, Node: 1, Dir: int(geom.West)}), "outside (0,1]"},
		{"drop prob > 1", ok(Event{Kind: PacketDrop, Node: 1, Dir: int(geom.West), Prob: 1.5}), "outside (0,1]"},
		{"prob on kill", ok(Event{Kind: LinkKill, Node: 1, Dir: int(geom.West), Prob: 0.5}), "only meaningful"},
		{"bad retries", &Plan{MaxRetries: -2, Events: []Event{{Kind: RouterFreeze, Node: 0}}}, "MaxRetries"},
		{"bad backoff", &Plan{Backoff: -1, Events: []Event{{Kind: RouterFreeze, Node: 0}}}, "Backoff"},
	}
	for _, tc := range cases {
		err := tc.plan.Validate(4, 4)
		switch {
		case tc.want == "" && err != nil:
			t.Errorf("%s: unexpected error %v", tc.name, err)
		case tc.want != "" && err == nil:
			t.Errorf("%s: validation passed, want error containing %q", tc.name, tc.want)
		case tc.want != "" && !strings.Contains(err.Error(), tc.want):
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.want)
		}
	}
}

func TestWindowSemantics(t *testing.T) {
	cases := []struct {
		name   string
		w      window
		active []int64
		idle   []int64
	}{
		{"permanent", window{at: 10}, []int64{10, 11, 1 << 40}, []int64{0, 9}},
		{"one-shot", window{at: 10, repair: 5}, []int64{10, 14}, []int64{9, 15, 100}},
		{"periodic", window{at: 10, repair: 3, period: 8},
			[]int64{10, 12, 18, 20, 26}, []int64{9, 13, 17, 21, 25}},
		{"duty-cycle-1", window{at: 0, repair: 1, period: 2}, []int64{0, 2, 4}, []int64{1, 3, 5}},
	}
	for _, tc := range cases {
		for _, now := range tc.active {
			if !tc.w.active(now) {
				t.Errorf("%s: inactive at %d, want active", tc.name, now)
			}
		}
		for _, now := range tc.idle {
			if tc.w.active(now) {
				t.Errorf("%s: active at %d, want inactive", tc.name, now)
			}
		}
	}
}

func TestInjectorQueries(t *testing.T) {
	plan := &Plan{Seed: 1, Events: []Event{
		{Kind: RouterFreeze, Node: 5, At: 100, Repair: 50},
		{Kind: LinkKill, Node: 5, Dir: int(geom.East), At: 10},
		{Kind: PacketDrop, Node: 6, Dir: int(geom.South), At: 0, Prob: 0.5},
	}}
	inj := NewInjector(plan, 4, 4)
	if inj == nil {
		t.Fatal("non-empty plan compiled to nil")
	}
	if NewInjector(&Plan{}, 4, 4) != nil || NewInjector(nil, 4, 4) != nil {
		t.Error("empty plan must compile to nil")
	}
	if inj.Frozen(5, 99) || !inj.Frozen(5, 100) || !inj.Frozen(5, 149) || inj.Frozen(5, 150) {
		t.Error("freeze window mismatch")
	}
	if inj.Frozen(4, 120) {
		t.Error("freeze leaked to another node")
	}
	if inj.LinkDown(5, geom.East, 9) || !inj.LinkDown(5, geom.East, 10) || !inj.LinkDown(5, geom.East, 1<<40) {
		t.Error("link-kill window mismatch")
	}
	if inj.LinkDown(5, geom.West, 50) || inj.LinkDown(6, geom.East, 50) {
		t.Error("link-kill leaked to another link")
	}
	if inj.LinkDown(5, geom.Local, 50) || inj.LinkDown(5, geom.Dir(-1), 50) {
		t.Error("out-of-range directions must read as healthy")
	}
	// Defaults resolve when the plan leaves the policy zeroed.
	if inj.MaxRetries() != DefaultMaxRetries || inj.Backoff() != DefaultBackoff {
		t.Errorf("defaults not applied: retries %d backoff %d", inj.MaxRetries(), inj.Backoff())
	}
	if n := NewInjector(&Plan{MaxRetries: -1, Backoff: 8, Events: plan.Events}, 4, 4); n.MaxRetries() != 0 || n.Backoff() != 8 {
		t.Errorf("explicit policy not honored: retries %d backoff %d", n.MaxRetries(), n.Backoff())
	}
}

func TestCorruptDeterministicAndCalibrated(t *testing.T) {
	plan := &Plan{Seed: 99, Events: []Event{
		{Kind: PacketDrop, Node: 6, Dir: int(geom.South), At: 0, Prob: 0.25},
	}}
	a := NewInjector(plan, 4, 4)
	b := NewInjector(plan, 4, 4)
	hits := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		p := &packet.Packet{ID: uint64(i)}
		ca := a.Corrupt(p, 6, geom.South, int64(i%997))
		if cb := b.Corrupt(p, 6, geom.South, int64(i%997)); ca != cb {
			t.Fatalf("draw %d not deterministic", i)
		}
		if a.Corrupt(p, 6, geom.North, int64(i)) {
			t.Fatal("corruption leaked to a healthy link")
		}
		if ca {
			hits++
		}
	}
	got := float64(hits) / draws
	if got < 0.23 || got > 0.27 {
		t.Errorf("empirical corruption rate %.4f, want ≈0.25", got)
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	plan := &Plan{Seed: 3, MaxRetries: 2, Backoff: 16, Events: []Event{
		{Kind: LinkFlap, Node: 5, Dir: int(geom.North), At: 10, Repair: 3, Period: 8},
		{Kind: PacketDrop, Node: 6, Dir: int(geom.South), Prob: 0.125},
	}}
	raw, err := json.Marshal(plan)
	if err != nil {
		t.Fatal(err)
	}
	// Kinds serialize by name so plan files read naturally.
	if s := string(raw); !strings.Contains(s, `"link-flap"`) || !strings.Contains(s, `"packet-drop"`) {
		t.Errorf("kinds not encoded by name: %s", s)
	}
	var back Plan
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*plan, back) {
		t.Errorf("round trip mismatch:\nin:  %+v\nout: %+v", *plan, back)
	}
	if err := json.Unmarshal([]byte(`{"Events":[{"Kind":"meteor-strike"}]}`), &back); err == nil {
		t.Error("unknown kind name decoded without error")
	}
}

func TestLoadPlan(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	os.WriteFile(good, []byte(`{"Seed":4,"Events":[{"Kind":"link-kill","Node":1,"Dir":1}]}`), 0o644)
	p, err := LoadPlan(good, 4, 4)
	if err != nil {
		t.Fatalf("good plan: %v", err)
	}
	if len(p.Events) != 1 || p.Events[0].Kind != LinkKill || p.Seed != 4 {
		t.Errorf("plan decoded wrong: %+v", p)
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"Events":[{"Kind":"link-kill","Node":99,"Dir":1}]}`), 0o644)
	if _, err := LoadPlan(bad, 4, 4); err == nil {
		t.Error("out-of-mesh plan loaded without error")
	}
	if _, err := LoadPlan(filepath.Join(dir, "missing.json"), 4, 4); err == nil {
		t.Error("missing file loaded without error")
	}
}
