package fault

import (
	"surfbless/internal/geom"
	"surfbless/internal/packet"
)

// window is one activation interval of a fault: active from at, for
// repair cycles (0 = forever), repeating every period cycles (0 = once).
type window struct {
	at     int64
	repair int64
	period int64
}

func (w window) active(now int64) bool {
	if now < w.at {
		return false
	}
	if w.repair == 0 {
		return true
	}
	if w.period == 0 {
		return now < w.at+w.repair
	}
	return (now-w.at)%w.period < w.repair
}

// dropRule is one PacketDrop event compiled onto a link.
type dropRule struct {
	window
	prob float64
	salt uint64 // mixes plan seed, event index and link id
}

// Injector is the compiled, query-optimized form of a Plan for one
// mesh.  Fabrics hold a possibly-nil *Injector and consult it on their
// Step path; a nil injector means fault-free and costs one pointer
// comparison per query site.
//
// All methods are read-only after NewInjector and therefore safe for
// the concurrent sweep workers, each of which runs its own fabric.
//
//hook:nil-disabled
type Injector struct {
	frozen     [][]window   // per node
	down       [][]window   // per node*NumLinkDirs+dir
	drops      [][]dropRule // per node*NumLinkDirs+dir
	maxRetries int
	backoff    int64
}

// NewInjector compiles a validated plan for a width×height mesh.  It
// returns nil for an empty plan, so callers can store the result
// directly and keep the fault-free hot path untouched.
func NewInjector(p *Plan, width, height int) *Injector {
	if p.Empty() {
		return nil
	}
	mesh := geom.NewMesh(width, height)
	inj := &Injector{
		frozen:     make([][]window, mesh.Nodes()),
		down:       make([][]window, mesh.Nodes()*geom.NumLinkDirs),
		drops:      make([][]dropRule, mesh.Nodes()*geom.NumLinkDirs),
		maxRetries: p.MaxRetries,
		backoff:    p.Backoff,
	}
	if inj.maxRetries == 0 {
		inj.maxRetries = DefaultMaxRetries
	}
	if inj.backoff == 0 {
		inj.backoff = DefaultBackoff
	}
	for i, e := range p.Events {
		w := window{at: e.At, repair: e.Repair, period: e.Period}
		link := e.Node*geom.NumLinkDirs + e.Dir
		switch e.Kind {
		case RouterFreeze:
			inj.frozen[e.Node] = append(inj.frozen[e.Node], w)
		case LinkKill, LinkFlap:
			inj.down[link] = append(inj.down[link], w)
		case PacketDrop:
			salt := Hash64(uint64(p.Seed), uint64(i)<<32|uint64(link))
			inj.drops[link] = append(inj.drops[link], dropRule{window: w, prob: e.Prob, salt: salt})
		}
	}
	return inj
}

// Frozen reports whether the router at node is frozen at cycle now.
func (inj *Injector) Frozen(node int, now int64) bool {
	for _, w := range inj.frozen[node] {
		if w.active(now) {
			return true
		}
	}
	return false
}

// LinkDown reports whether the output link of node in direction dir is
// unusable at cycle now.
func (inj *Injector) LinkDown(node int, dir geom.Dir, now int64) bool {
	if dir < 0 || dir >= geom.NumLinkDirs {
		return false
	}
	for _, w := range inj.down[node*geom.NumLinkDirs+int(dir)] {
		if w.active(now) {
			return true
		}
	}
	return false
}

// Corrupt reports whether packet p is corrupted while entering node's
// output link in direction dir at cycle now.  The draw is a pure hash
// of (plan seed, event, link, packet id, cycle), so a run is
// bit-reproducible and one packet's draw never perturbs another's.
func (inj *Injector) Corrupt(p *packet.Packet, node int, dir geom.Dir, now int64) bool {
	if dir < 0 || dir >= geom.NumLinkDirs {
		return false
	}
	rules := inj.drops[node*geom.NumLinkDirs+int(dir)]
	if len(rules) == 0 {
		return false
	}
	for _, r := range rules {
		if !r.active(now) {
			continue
		}
		h := Hash64(r.salt^uint64(p.ID), uint64(now))
		if float64(h>>11)/(1<<53) < r.prob {
			return true
		}
	}
	return false
}

// MaxRetries returns the resolved retransmission bound (≥ 0; -1 in the
// plan maps to 0 retries here).
func (inj *Injector) MaxRetries() int {
	if inj.maxRetries < 0 {
		return 0
	}
	return inj.maxRetries
}

// Backoff returns the resolved base retransmission delay in cycles.
func (inj *Injector) Backoff() int64 { return inj.backoff }

// Hash64 is the splitmix64 finalizer, duplicated from internal/router
// to keep this package's dependencies to geom and packet only (config
// imports fault; router imports config-adjacent packages).
func Hash64(a, b uint64) uint64 {
	z := a*0x9E3779B97F4A7C15 + b + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
