// Package power is the DSENT-like energy model of the reproduction.
//
// Energy is split exactly as the paper's Figs. 6 and 10 report it:
// router static energy (leakage+clock of buffers, pipeline registers,
// crossbar, allocator and — for wave-scheduled routers — the three
// sub-wave schedulers), router dynamic energy (per-event buffer
// writes/reads, crossbar traversals, allocation operations) and link
// energy (static plus per-flit traversal).
//
// The coefficients are 45 nm-flavoured calibration constants.  They are
// not DSENT outputs; what the reproduction preserves is the structural
// scaling — static buffer power proportional to buffered flit slots,
// which is what separates WH, BLESS, Surf(D) and SB(D) in Fig. 6 — not
// absolute joules.  See DESIGN.md §2.
package power

import (
	"fmt"

	"surfbless/internal/config"
	"surfbless/internal/geom"
)

// Coefficients parameterizes the energy model.
type Coefficients struct {
	// Dynamic energy per event, joules.
	BufferWrite   float64 // one flit written into a buffer/VC slot
	BufferRead    float64 // one flit read out of a buffer/VC slot
	Crossbar      float64 // one flit through the crossbar
	Allocation    float64 // one allocator decision (route/VC/switch)
	LinkTraversal float64 // one flit over one link

	// Static power per unit, watts.
	BufferSlot     float64 // per buffered flit slot
	PipelineReg    float64 // per link-input pipeline register (bufferless routers)
	CrossbarVC     float64 // crossbar of a VC router (5×5, higher radix pressure)
	CrossbarBless  float64 // crossbar of a bufferless router (simpler datapath)
	AllocatorVC    float64 // VC/switch allocator of a VC router
	AllocatorBless float64 // permutation/deflection logic of a bufferless router
	TDMControl     float64 // Surf's TDM gating logic per router
	WaveScheduler  float64 // one sub-wave scheduler (counter+decoder); SB has three
	Link           float64 // per unidirectional link
}

// Default45nm returns the calibration used throughout the reproduction.
func Default45nm() Coefficients {
	return Coefficients{
		BufferWrite:   2.5e-12,
		BufferRead:    1.8e-12,
		Crossbar:      3.5e-12,
		Allocation:    0.6e-12,
		LinkTraversal: 5.0e-12,

		BufferSlot:     0.35e-3,
		PipelineReg:    0.10e-3,
		CrossbarVC:     8.0e-3,
		CrossbarBless:  4.0e-3,
		AllocatorVC:    2.5e-3,
		AllocatorBless: 0.8e-3,
		TDMControl:     12.0e-3,
		WaveScheduler:  0.30e-3,
		Link:           0.05e-3,
	}
}

// Energy is one run's energy report in joules, in the breakdown used by
// Figs. 6 and 10.
type Energy struct {
	RouterStatic  float64
	RouterDynamic float64
	Link          float64 // static + dynamic link energy
}

// Total returns the summed NoC energy.
func (e Energy) Total() float64 { return e.RouterStatic + e.RouterDynamic + e.Link }

// String renders the breakdown in millijoules.
func (e Energy) String() string {
	return fmt.Sprintf("total %.3f mJ (router static %.3f, router dynamic %.3f, link %.3f)",
		e.Total()*1e3, e.RouterStatic*1e3, e.RouterDynamic*1e3, e.Link*1e3)
}

// Meter counts dynamic events during a run and converts them, together
// with the configuration-derived static power, into an Energy report.
// The zero value is not usable; construct with NewMeter.
type Meter struct {
	co  Coefficients
	cfg config.Config

	bufWrites int64
	bufReads  int64
	xbarFlits int64
	allocOps  int64
	linkFlits int64
}

// NewMeter returns a meter for the given configuration.
func NewMeter(cfg config.Config, co Coefficients) *Meter {
	return &Meter{co: co, cfg: cfg}
}

// BufferWrite records n flits written into buffers.
func (m *Meter) BufferWrite(n int) { m.bufWrites += int64(n) }

// BufferRead records n flits read from buffers.
func (m *Meter) BufferRead(n int) { m.bufReads += int64(n) }

// CrossbarTraversal records n flits crossing a crossbar.
func (m *Meter) CrossbarTraversal(n int) { m.xbarFlits += int64(n) }

// Allocation records n allocator decisions.
func (m *Meter) Allocation(n int) { m.allocOps += int64(n) }

// LinkTraversal records n flit-hops over links.
func (m *Meter) LinkTraversal(n int) { m.linkFlits += int64(n) }

// Links returns the number of unidirectional inter-router links in the
// configured mesh: 2·(W·(H−1) + H·(W−1)).
func Links(cfg config.Config) int {
	return 2 * (cfg.Width*(cfg.Height-1) + cfg.Height*(cfg.Width-1))
}

// RouterStaticPower returns one router's static power in watts for the
// configured model, the quantity behind the Fig. 6 bars.
func RouterStaticPower(cfg config.Config, co Coefficients) float64 {
	w := co.BufferSlot * float64(cfg.BufferFlitsPerRouter())
	switch cfg.Model {
	case config.WH:
		w += co.CrossbarVC + co.AllocatorVC
	case config.Surf:
		w += co.CrossbarVC + co.AllocatorVC + co.TDMControl
	case config.BLESS:
		w += co.CrossbarBless + co.AllocatorBless + float64(geom.NumLinkDirs)*co.PipelineReg
	case config.CHIPPER:
		// The permutation deflection network replaces both the full
		// crossbar and the sequential allocator with four 2×2 blocks.
		w += 0.6*co.CrossbarBless + 0.4*co.AllocatorBless + float64(geom.NumLinkDirs)*co.PipelineReg
	case config.RUNAHEAD:
		// Single-cycle dropping router: no pipeline registers, trivial
		// arbitration, plain crossbar.
		w += 0.8*co.CrossbarBless + 0.2*co.AllocatorBless
	case config.SB:
		w += co.CrossbarBless + co.AllocatorBless + float64(geom.NumLinkDirs)*co.PipelineReg +
			3*co.WaveScheduler
	}
	return w
}

// Report converts the accumulated events plus static power over the
// given number of cycles into an Energy breakdown.
func (m *Meter) Report(cycles int64) Energy {
	seconds := float64(cycles) / m.cfg.ClockHz
	routers := float64(m.cfg.Nodes())
	var e Energy
	e.RouterStatic = RouterStaticPower(m.cfg, m.co) * routers * seconds
	e.RouterDynamic = float64(m.bufWrites)*m.co.BufferWrite +
		float64(m.bufReads)*m.co.BufferRead +
		float64(m.xbarFlits)*m.co.Crossbar +
		float64(m.allocOps)*m.co.Allocation
	e.Link = float64(Links(m.cfg))*m.co.Link*seconds +
		float64(m.linkFlits)*m.co.LinkTraversal
	return e
}

// Counts returns the raw dynamic event counters (writes, reads,
// crossbar flits, allocations, link flits) for tests and diagnostics.
func (m *Meter) Counts() (bufWrites, bufReads, xbarFlits, allocOps, linkFlits int64) {
	return m.bufWrites, m.bufReads, m.xbarFlits, m.allocOps, m.linkFlits
}
