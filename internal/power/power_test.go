package power

import (
	"testing"

	"surfbless/internal/config"
)

func meter(m config.Model, domains int) (*Meter, config.Config) {
	cfg := config.Default(m)
	cfg.Domains = domains
	if m == config.Surf || m == config.SB {
		// The Fig-6 experiment gives each domain one 4-flit VC.
		cfg.CtrlVCsPerPort, cfg.CtrlVCDepth = 0, 0
		cfg.DataVCsPerPort, cfg.DataVCDepth = 1, 4
	}
	return NewMeter(cfg, Default45nm()), cfg
}

func TestLinks(t *testing.T) {
	if got := Links(config.Default(config.WH)); got != 224 {
		t.Errorf("8x8 mesh has %d unidirectional links, want 224", got)
	}
	c := config.Default(config.WH)
	c.Width, c.Height = 2, 2
	if got := Links(c); got != 8 {
		t.Errorf("2x2 mesh has %d links, want 8", got)
	}
}

func TestStaticEnergyScalesWithCycles(t *testing.T) {
	m, _ := meter(config.WH, 1)
	e1 := m.Report(1_000_000)
	e2 := m.Report(2_000_000)
	if e2.RouterStatic <= e1.RouterStatic {
		t.Error("static energy must grow with time")
	}
	ratio := e2.RouterStatic / e1.RouterStatic
	if ratio < 1.999 || ratio > 2.001 {
		t.Errorf("static energy ratio = %g, want 2", ratio)
	}
}

func TestDynamicEventsAccumulate(t *testing.T) {
	m, _ := meter(config.BLESS, 1)
	m.BufferWrite(10)
	m.BufferRead(5)
	m.CrossbarTraversal(7)
	m.Allocation(3)
	m.LinkTraversal(20)
	w, r, x, a, l := m.Counts()
	if w != 10 || r != 5 || x != 7 || a != 3 || l != 20 {
		t.Fatalf("Counts = %d/%d/%d/%d/%d", w, r, x, a, l)
	}
	co := Default45nm()
	e := m.Report(0)
	wantDyn := 10*co.BufferWrite + 5*co.BufferRead + 7*co.Crossbar + 3*co.Allocation
	if diff := e.RouterDynamic - wantDyn; diff > 1e-18 || diff < -1e-18 {
		t.Errorf("RouterDynamic = %g, want %g", e.RouterDynamic, wantDyn)
	}
	if e.Link != 20*co.LinkTraversal { // zero cycles → no static link energy
		t.Errorf("Link = %g, want %g", e.Link, 20*co.LinkTraversal)
	}
}

// The structural claims behind Fig. 6, at the level of static power.
func TestFig6StaticPowerOrdering(t *testing.T) {
	co := Default45nm()
	p := func(m config.Model, domains int) float64 {
		_, cfg := meter(m, domains)
		return RouterStaticPower(cfg, co)
	}

	bless := p(config.BLESS, 1)
	wh := p(config.WH, 1)

	// BLESS is the cheapest router.
	if bless >= wh || bless >= p(config.SB, 1) {
		t.Error("BLESS must have the lowest static power")
	}
	// SB is slightly above BLESS (injection VCs + schedulers)…
	if sb1 := p(config.SB, 1); sb1 >= 0.5*wh {
		t.Errorf("SB(1) static %g should be well below WH %g", sb1, wh)
	}
	// …and grows mildly with domains, staying far below Surf.
	for d := 1; d <= 9; d++ {
		sb, surf := p(config.SB, d), p(config.Surf, d)
		if sb >= surf/2 {
			t.Errorf("D=%d: SB static %g not ≪ Surf static %g", d, sb, surf)
		}
	}
	// Surf grows much faster with D than SB: compare the D=1→9 deltas.
	surfGrowth := p(config.Surf, 9) - p(config.Surf, 1)
	sbGrowth := p(config.SB, 9) - p(config.SB, 1)
	if surfGrowth <= 4*sbGrowth {
		t.Errorf("Surf growth %g must exceed 4× SB growth %g (5 buffered ports vs 1)",
			surfGrowth, sbGrowth)
	}
	// Surf(9) clearly exceeds WH; Surf(1) is in WH's neighbourhood.
	if p(config.Surf, 9) <= 1.5*wh {
		t.Error("Surf(9) static power must clearly exceed WH")
	}
	s1 := p(config.Surf, 1)
	if s1 < 0.7*wh || s1 > 1.6*wh {
		t.Errorf("Surf(1) static %g should be comparable to WH %g", s1, wh)
	}
}

// Absolute scale sanity: a WH 8×8 NoC at 1 GHz for 1 M cycles should
// land in the paper's Fig.-6 order of magnitude (milli-joules).
func TestFig6Magnitude(t *testing.T) {
	m, _ := meter(config.WH, 1)
	e := m.Report(1_000_000)
	if e.RouterStatic < 0.3e-3 || e.RouterStatic > 5e-3 {
		t.Errorf("WH static energy %g J out of the paper's 10^-3 J band", e.RouterStatic)
	}
	if e.Link > e.RouterStatic {
		t.Error("link energy should be small next to router static energy (§5.2.3)")
	}
}

func TestEnergyTotalAndString(t *testing.T) {
	e := Energy{RouterStatic: 1e-3, RouterDynamic: 2e-3, Link: 3e-3}
	if e.Total() != 6e-3 {
		t.Errorf("Total = %g", e.Total())
	}
	if s := e.String(); s == "" {
		t.Error("String must render")
	}
}
