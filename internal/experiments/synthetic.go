package experiments

import (
	"fmt"

	"surfbless/internal/config"
	"surfbless/internal/packet"
	"surfbless/internal/parmap"
	"surfbless/internal/power"
	"surfbless/internal/sim"
	"surfbless/internal/stats"
	"surfbless/internal/textplot"
	"surfbless/internal/traffic"
)

// victimRate is the observed domain's load for the latency series of
// Fig. 5(a); saturationProbe over-offers the victim domain so that
// Fig. 5(b) measures the MAXIMAL throughput the network still provides
// to it (the paper's y-axis, which collapses for BLESS as interference
// steals capacity).
const (
	victimRate      = 0.05
	saturationProbe = 0.30
)

// Fig5Rates is the interference-load sweep of Fig. 5 (packets/node/
// cycle injected by the interfering domain).
var Fig5Rates = []float64{0, 0.04, 0.08, 0.12, 0.16, 0.2, 0.24}

// Fig5Result holds the non-interference experiment's series: the victim
// domain's average packet latency and accepted throughput under rising
// interference, on BLESS and on SB.
type Fig5Result struct {
	Rates           []float64
	BLESSLatency    []float64
	SBLatency       []float64
	BLESSThroughput []float64
	SBThroughput    []float64
}

// Fig5 runs the §5.1.1 confined-interference experiment: two domains,
// the victim at 0.05 packets/node/cycle, interference swept over
// Fig5Rates; the victim's latency and throughput are recorded.
func Fig5(sc Scale) (Fig5Result, error) {
	if err := sc.Validate(); err != nil {
		return Fig5Result{}, err
	}
	addTotal(2 * len(Fig5Rates) * 2) // 2 models × rates × {latency, saturation} runs
	res := Fig5Result{Rates: Fig5Rates}
	run := func(model config.Model, victim, interference float64) (stats.Domain, float64, error) {
		cfg := config.Default(model)
		cfg.Domains = 2
		out, err := runSim(sim.Options{
			Cfg:     cfg,
			Pattern: traffic.UniformRandom,
			Sources: []traffic.Source{
				{Rate: victim, Class: packet.Ctrl, VNet: -1},
				{Rate: interference, Class: packet.Ctrl, VNet: -1},
			},
			Warmup: sc.Warmup, Measure: sc.Measure, Drain: sc.Drain,
			Seed: sc.Seed,
		})
		if err != nil {
			return stats.Domain{}, 0, fmt.Errorf("fig5 %v interference %.2f: %w", model, interference, err)
		}
		return out.Domains[0], out.Throughput(0), nil
	}
	for _, model := range []config.Model{config.BLESS, config.SB} {
		for _, rate := range Fig5Rates {
			// Fig 5(a): victim at a light fixed load, latency observed.
			dom, _, err := run(model, victimRate, rate)
			if err != nil {
				return Fig5Result{}, err
			}
			// Fig 5(b): victim over-offered, accepted rate observed.
			_, maxThr, err := run(model, saturationProbe, rate)
			if err != nil {
				return Fig5Result{}, err
			}
			if model == config.BLESS {
				res.BLESSLatency = append(res.BLESSLatency, dom.AvgTotalLatency())
				res.BLESSThroughput = append(res.BLESSThroughput, maxThr)
			} else {
				res.SBLatency = append(res.SBLatency, dom.AvgTotalLatency())
				res.SBThroughput = append(res.SBThroughput, maxThr)
			}
		}
	}
	return res, nil
}

// Tables renders Fig. 5(a) and 5(b).
func (r Fig5Result) Tables() []*textplot.Table {
	a := textplot.NewTable("Fig 5(a): victim avg packet latency (cycles) vs interference rate",
		"interference_rate", "BLESS", "SB")
	b := textplot.NewTable("Fig 5(b): victim accepted throughput (pkts/node/cycle) vs interference rate",
		"interference_rate", "BLESS", "SB")
	for i, rate := range r.Rates {
		a.Row(textplot.F(rate), textplot.F(r.BLESSLatency[i]), textplot.F(r.SBLatency[i]))
		b.Row(textplot.F(rate), textplot.F(r.BLESSThroughput[i]), textplot.F(r.SBThroughput[i]))
	}
	return []*textplot.Table{a, b}
}

// fig6Rate is the total injection rate of the §5.1.2 energy experiment.
const fig6Rate = 0.05

// Fig6Row is one bar group of Fig. 6.
type Fig6Row struct {
	Label   string // "WH", "BLESS", "Surf 3_D", "SB 3_D", …
	Domains int
	Energy  power.Energy
}

// Fig6Result holds the energy-vs-domain-count experiment.
type Fig6Result struct {
	Cycles int64
	Rows   []Fig6Row
}

// fig6Config builds the §5.1.2 configuration: every domain owns one
// 4-flit VC (Surf: per port; SB: at injection only).
func fig6Config(model config.Model, domains int) config.Config {
	cfg := config.Default(model)
	cfg.Domains = domains
	if model == config.Surf || model == config.SB {
		cfg.CtrlVCsPerPort, cfg.CtrlVCDepth = 0, 0
		cfg.DataVCsPerPort, cfg.DataVCDepth = 1, 4
		cfg.InjectionVCDepth = 4
	}
	return cfg
}

// Fig6 runs the §5.1.2 experiment: NoC energy over a fixed period at
// 0.05 packets/node/cycle, for WH and BLESS (one domain) and Surf/SB
// with 1…9 domains, split into link, router-dynamic and router-static
// energy.
func Fig6(sc Scale) (Fig6Result, error) {
	if err := sc.Validate(); err != nil {
		return Fig6Result{}, err
	}
	addTotal(2 + 2*9) // WH, BLESS, then Surf and SB at D=1…9
	res := Fig6Result{Cycles: sc.EnergyCycles}
	run := func(label string, model config.Model, domains int) error {
		cfg := fig6Config(model, domains)
		sources := make([]traffic.Source, domains)
		for i := range sources {
			sources[i] = traffic.Source{Rate: fig6Rate / float64(domains), Class: packet.Ctrl, VNet: -1}
		}
		out, err := runSim(sim.Options{
			Cfg:     cfg,
			Pattern: traffic.UniformRandom,
			Sources: sources,
			Warmup:  0, Measure: sc.EnergyCycles, Drain: 0,
			Seed: sc.Seed,
		})
		if err != nil {
			return fmt.Errorf("fig6 %s: %w", label, err)
		}
		// Energy is accounted over exactly the measurement period (the
		// paper's 1 M cycles): no warmup, no drain.
		res.Rows = append(res.Rows, Fig6Row{Label: label, Domains: domains, Energy: out.Energy})
		return nil
	}
	if err := run("WH", config.WH, 1); err != nil {
		return res, err
	}
	if err := run("BLESS", config.BLESS, 1); err != nil {
		return res, err
	}
	for d := 1; d <= 9; d++ {
		if err := run(fmt.Sprintf("Surf %d_D", d), config.Surf, d); err != nil {
			return res, err
		}
		if err := run(fmt.Sprintf("SB %d_D", d), config.SB, d); err != nil {
			return res, err
		}
	}
	return res, nil
}

// Tables renders Fig. 6.
func (r Fig6Result) Tables() []*textplot.Table {
	t := textplot.NewTable(
		fmt.Sprintf("Fig 6: NoC energy (mJ) over %d cycles at 0.05 pkts/node/cycle", r.Cycles),
		"config", "link", "router_dynamic", "router_static", "total")
	for _, row := range r.Rows {
		t.Row(row.Label,
			textplot.MJ(row.Energy.Link),
			textplot.MJ(row.Energy.RouterDynamic),
			textplot.MJ(row.Energy.RouterStatic),
			textplot.MJ(row.Energy.Total()))
	}
	return []*textplot.Table{t}
}

// Fig7Rates is the offered-load sweep of Fig. 7.
var Fig7Rates = []float64{0.01, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3}

// Fig7Series is one D_k latency curve.
type Fig7Series struct {
	Label      string
	Domains    int
	Latency    []float64 // avg packet latency per rate (delivered packets)
	Throughput []float64 // accepted packets/node/cycle per rate
}

// Fig7Result holds both subfigures: (a) BLESS (D_1) and Surf-Bless,
// (b) WH (D_1) and Surf, each across 1…9 domains and the rate sweep.
type Fig7Result struct {
	Rates []float64
	A     []Fig7Series // bufferless family
	B     []Fig7Series // VC family
}

// Fig7 runs the §5.1.3 experiment.  D_1 degenerates to the plain
// baseline of each family, as in the paper ("BLESS (D_1)", "WH (D_1)").
func Fig7(sc Scale) (Fig7Result, error) {
	return Fig7Domains(sc, []int{1, 2, 3, 4, 5, 6, 7, 8, 9})
}

// Fig7Domains runs the Fig-7 sweep for a chosen subset of domain
// counts (tests use a subset; the full harness uses 1…9).  The
// (model, domains, rate) points are independent simulations and run in
// parallel.
func Fig7Domains(sc Scale, domainCounts []int) (Fig7Result, error) {
	if err := sc.Validate(); err != nil {
		return Fig7Result{}, err
	}
	type job struct {
		model   config.Model
		domains int
		rate    float64
	}
	var jobs []job
	for _, domains := range domainCounts {
		for _, rate := range Fig7Rates {
			jobs = append(jobs, job{bufferlessModel(domains), domains, rate})
			jobs = append(jobs, job{vcModel(domains), domains, rate})
		}
	}
	type point struct {
		latency, throughput float64
	}
	addTotal(len(jobs))
	points, err := parmap.Map(jobs, 0, func(j job) (point, error) {
		lat, thr, err := fig7Point(sc, j.model, j.domains, j.rate)
		return point{lat, thr}, err
	})
	if err != nil {
		return Fig7Result{}, err
	}
	res := Fig7Result{Rates: Fig7Rates}
	idx := 0
	for _, domains := range domainCounts {
		a := Fig7Series{Label: fmt.Sprintf("%v D_%d", bufferlessModel(domains), domains), Domains: domains}
		b := Fig7Series{Label: fmt.Sprintf("%v D_%d", vcModel(domains), domains), Domains: domains}
		for range Fig7Rates {
			a.Latency = append(a.Latency, points[idx].latency)
			a.Throughput = append(a.Throughput, points[idx].throughput)
			idx++
			b.Latency = append(b.Latency, points[idx].latency)
			b.Throughput = append(b.Throughput, points[idx].throughput)
			idx++
		}
		res.A = append(res.A, a)
		res.B = append(res.B, b)
	}
	return res, nil
}

func bufferlessModel(domains int) config.Model {
	if domains == 1 {
		return config.BLESS
	}
	return config.SB
}

func vcModel(domains int) config.Model {
	if domains == 1 {
		return config.WH
	}
	return config.Surf
}

func fig7Point(sc Scale, model config.Model, domains int, rate float64) (latency, throughput float64, err error) {
	cfg := fig6Config(model, domains)
	sources := make([]traffic.Source, domains)
	for i := range sources {
		sources[i] = traffic.Source{Rate: rate / float64(domains), Class: packet.Ctrl, VNet: -1}
	}
	out, err := runSim(sim.Options{
		Cfg:     cfg,
		Pattern: traffic.UniformRandom,
		Sources: sources,
		Warmup:  sc.Warmup, Measure: sc.Measure, Drain: sc.Drain,
		Seed: sc.Seed,
	})
	if err != nil {
		return 0, 0, fmt.Errorf("fig7 %v D_%d rate %.2f: %w", model, domains, rate, err)
	}
	for d := 0; d < domains; d++ {
		throughput += out.Throughput(d)
	}
	return out.Total.AvgTotalLatency(), throughput, nil
}

// Tables renders Fig. 7(a) and 7(b) as rate × D_k latency grids, plus
// accepted-throughput grids (the paper reads saturation off the same
// curves).
func (r Fig7Result) Tables() []*textplot.Table {
	mk := func(title string, series []Fig7Series, value func(Fig7Series, int) float64) *textplot.Table {
		cols := []string{"rate"}
		for _, s := range series {
			cols = append(cols, fmt.Sprintf("D_%d", s.Domains))
		}
		t := textplot.NewTable(title, cols...)
		for i, rate := range r.Rates {
			cells := []string{textplot.F(rate)}
			for _, s := range series {
				cells = append(cells, textplot.F(value(s, i)))
			}
			t.Row(cells...)
		}
		return t
	}
	lat := func(s Fig7Series, i int) float64 { return s.Latency[i] }
	thr := func(s Fig7Series, i int) float64 { return s.Throughput[i] }
	return []*textplot.Table{
		mk("Fig 7(a): avg packet latency (cycles), BLESS (D_1) and Surf-Bless", r.A, lat),
		mk("Fig 7(a) aux: accepted throughput (pkts/node/cycle)", r.A, thr),
		mk("Fig 7(b): avg packet latency (cycles), WH (D_1) and Surf", r.B, lat),
		mk("Fig 7(b) aux: accepted throughput (pkts/node/cycle)", r.B, thr),
	}
}
