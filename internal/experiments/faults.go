package experiments

import (
	"errors"
	"fmt"

	"surfbless/internal/config"
	"surfbless/internal/fault"
	"surfbless/internal/packet"
	"surfbless/internal/parmap"
	"surfbless/internal/sim"
	"surfbless/internal/textplot"
	"surfbless/internal/traffic"
)

// faultVictimRate / faultAggressorRate mirror the Fig. 5 setup: a
// lightly loaded victim domain observed while a second domain floods
// the mesh — here with a fault scenario layered on top, to ask whether
// confinement survives hardware failures.
const (
	faultVictimRate    = 0.05
	faultAggressorRate = 0.20
)

// faultEpicenter is the router the scenarios damage: a central node of
// the 8×8 mesh ((3,3) = 27), so every model routes traffic through it.
const faultEpicenter = 27

// FaultScenario is one named fault plan applied to every model.
type FaultScenario struct {
	Name string
	Plan *fault.Plan
}

// FaultScenarios returns the sweep of ISSUE scenarios: the fault-free
// baseline, a permanent link kill, a flapping link, a transient router
// freeze and a lossy link.  All target the same central epicenter so
// the rows are comparable.
func FaultScenarios() []FaultScenario {
	east := int(1) // geom.East
	return []FaultScenario{
		{Name: "none", Plan: nil},
		{Name: "link-kill", Plan: &fault.Plan{Seed: 11, Events: []fault.Event{
			{Kind: fault.LinkKill, Node: faultEpicenter, Dir: east, At: 0},
		}}},
		{Name: "link-flap", Plan: &fault.Plan{Seed: 11, Events: []fault.Event{
			{Kind: fault.LinkFlap, Node: faultEpicenter, Dir: east, At: 0, Repair: 200, Period: 1000},
		}}},
		{Name: "router-freeze", Plan: &fault.Plan{Seed: 11, Events: []fault.Event{
			{Kind: fault.RouterFreeze, Node: faultEpicenter, At: 0, Repair: 300, Period: 1000},
		}}},
		{Name: "packet-drop", Plan: &fault.Plan{Seed: 11, Events: []fault.Event{
			{Kind: fault.PacketDrop, Node: faultEpicenter, Dir: east, At: 0, Prob: 0.05},
		}}},
	}
}

// FaultsRow is one (model, scenario) cell of the experiment.
type FaultsRow struct {
	Model    string
	Scenario string

	VictimLatency    float64 // victim domain avg total latency, cycles
	VictimThroughput float64 // victim accepted pkts/node/cycle

	Dropped      int64 // packets lost after exhausting retries (all domains)
	Retransmits  int64 // source retransmissions (all domains)
	LeftInFlight int   // packets stranded when the run ended

	// Status is "ok" for a healthy run or "degraded: <reason>" when
	// the watchdog cut the run short / a fabric invariant was
	// recovered; degraded rows still carry the partial statistics.
	Status string
}

// FaultsResult holds the confinement-under-faults experiment.
type FaultsResult struct {
	Rows []FaultsRow
}

// ConfinementUnderFaults runs the robustness experiment: the Fig. 5
// victim/aggressor setup on WH, BLESS and SB, crossed with
// FaultScenarios.  Degraded points (a wormhole mesh wedged by a
// permanent link kill, say) become rows labelled degraded instead of
// failing the whole experiment — that is the subsystem's point.
func ConfinementUnderFaults(sc Scale) (FaultsResult, error) {
	if err := sc.Validate(); err != nil {
		return FaultsResult{}, err
	}
	models := []config.Model{config.WH, config.BLESS, config.SB}
	scenarios := FaultScenarios()
	type job struct {
		model    config.Model
		scenario FaultScenario
	}
	var jobs []job
	for _, m := range models {
		for _, s := range scenarios {
			jobs = append(jobs, job{m, s})
		}
	}
	addTotal(len(jobs))
	rows, err := parmap.Map(jobs, 0, func(j job) (FaultsRow, error) {
		cfg := config.Default(j.model)
		cfg.Domains = 2
		cfg.Faults = j.scenario.Plan
		out, err := runSim(sim.Options{
			Cfg:     cfg,
			Pattern: traffic.UniformRandom,
			Sources: []traffic.Source{
				{Rate: faultVictimRate, Class: packet.Ctrl, VNet: -1},
				{Rate: faultAggressorRate, Class: packet.Ctrl, VNet: -1},
			},
			Warmup: sc.Warmup, Measure: sc.Measure, Drain: sc.Drain,
			Seed: sc.Seed,
			// Scale the no-progress ceiling to the drain budget so a
			// wedged mesh degrades within this run's own time frame
			// (the auto default is tuned for full-length runs).
			WatchdogNoProgress: sc.Drain / 4,
		})
		row := FaultsRow{Model: j.model.String(), Scenario: j.scenario.Name, Status: "ok"}
		if err != nil {
			var de *sim.DegradedError
			if !errors.As(err, &de) {
				return row, fmt.Errorf("faults %v/%s: %w", j.model, j.scenario.Name, err)
			}
			out = de.Partial
			row.Status = "degraded: " + de.Reason
		}
		row.VictimLatency = out.Domains[0].AvgTotalLatency()
		row.VictimThroughput = out.Throughput(0)
		row.Dropped = out.Total.Dropped
		row.Retransmits = out.Total.Retransmits
		row.LeftInFlight = out.LeftInFlight
		return row, nil
	})
	if err != nil {
		return FaultsResult{}, err
	}
	return FaultsResult{Rows: rows}, nil
}

// Tables renders the experiment as one table per metric pair.
func (r FaultsResult) Tables() []*textplot.Table {
	t := textplot.NewTable("Confinement under faults: victim D0 at 0.05, aggressor D1 at 0.20, faults at node 27",
		"model", "scenario", "victim_lat", "victim_thr", "dropped", "retransmits", "stuck", "status")
	for _, row := range r.Rows {
		t.Row(row.Model, row.Scenario,
			textplot.F(row.VictimLatency), textplot.F(row.VictimThroughput),
			fmt.Sprint(row.Dropped), fmt.Sprint(row.Retransmits),
			fmt.Sprint(row.LeftInFlight), row.Status)
	}
	return []*textplot.Table{t}
}
