package experiments

import (
	"strings"
	"testing"

	"surfbless/internal/config"
)

// The experiment tests run at the Tiny scale and assert the SHAPES the
// paper reports — who wins, what is flat, what grows — not absolute
// numbers.

func TestScaleValidate(t *testing.T) {
	for _, sc := range []Scale{Tiny(), Quick(), Full()} {
		if err := sc.Validate(); err != nil {
			t.Errorf("built-in scale invalid: %v", err)
		}
	}
	if (Scale{}).Validate() == nil {
		t.Error("zero scale accepted")
	}
}

func TestTable1(t *testing.T) {
	tab := Table1()
	out := tab.String()
	for _, want := range []string{"8 x 8 mesh", "2-stage and 4-stage", "1 ctrl VC and 2 data VCs",
		"128 bits/cycle", "Two-level MESI", "42 waves"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

// Fig 5: SB's victim series must be perfectly flat (bit-identical runs)
// while BLESS degrades with interference.
func TestFig5Shape(t *testing.T) {
	r, err := Fig5(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(r.Rates); i++ {
		if r.SBLatency[i] != r.SBLatency[0] {
			t.Errorf("SB victim latency moved: %.3f @%.2f vs %.3f @0",
				r.SBLatency[i], r.Rates[i], r.SBLatency[0])
		}
		if r.SBThroughput[i] != r.SBThroughput[0] {
			t.Errorf("SB victim throughput moved at rate %.2f", r.Rates[i])
		}
	}
	last := len(r.Rates) - 1
	if r.BLESSLatency[last] <= r.BLESSLatency[0]*1.05 {
		t.Errorf("BLESS victim latency did not degrade: %.2f → %.2f",
			r.BLESSLatency[0], r.BLESSLatency[last])
	}
	if tabs := r.Tables(); len(tabs) != 2 || tabs[0].Rows() != len(r.Rates) {
		t.Error("Fig5 tables malformed")
	}
}

// Fig 6: the energy ordering and scaling claims of §5.1.2.
func TestFig6Shape(t *testing.T) {
	r, err := Fig6(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]Fig6Row{}
	for _, row := range r.Rows {
		byLabel[row.Label] = row
	}
	wh := byLabel["WH"].Energy.Total()
	bless := byLabel["BLESS"].Energy.Total()
	if bless >= wh {
		t.Error("BLESS must consume less than WH")
	}
	// SB ≪ Surf at every domain count; both grow with D, Surf faster.
	for d := 1; d <= 9; d++ {
		surf := byLabel[label("Surf", d)].Energy.Total()
		sb := byLabel[label("SB", d)].Energy.Total()
		if sb >= surf {
			t.Errorf("D=%d: SB energy %.3g not below Surf %.3g", d, sb, surf)
		}
	}
	surfGrowth := byLabel[label("Surf", 9)].Energy.Total() - byLabel[label("Surf", 1)].Energy.Total()
	sbGrowth := byLabel[label("SB", 9)].Energy.Total() - byLabel[label("SB", 1)].Energy.Total()
	if surfGrowth <= 2*sbGrowth {
		t.Errorf("Surf energy growth %.3g not ≫ SB growth %.3g", surfGrowth, sbGrowth)
	}
	// SB stays a bit above BLESS (injection VCs + schedulers).
	if byLabel[label("SB", 1)].Energy.Total() <= bless {
		t.Error("SB(1) should cost slightly more than BLESS")
	}
	if len(r.Tables()) != 1 {
		t.Error("Fig6 tables malformed")
	}
}

func label(model string, d int) string {
	return model + " " + string(rune('0'+d)) + "_D"
}

// Fig 7(a): aligned domain counts (2 divides 2P) track the BLESS
// baseline; misaligned ones (4) pay latency at low load.
func TestFig7Shape(t *testing.T) {
	r, err := Fig7Domains(Tiny(), []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.A) != 3 || len(r.B) != 3 {
		t.Fatalf("series missing: %d/%d", len(r.A), len(r.B))
	}
	lowRateIdx := 1 // 0.05
	d1, d2, d4 := r.A[0].Latency[lowRateIdx], r.A[1].Latency[lowRateIdx], r.A[2].Latency[lowRateIdx]
	if d2 > 1.35*d1 {
		t.Errorf("aligned D=2 latency %.1f strays from BLESS %.1f", d2, d1)
	}
	if d4 <= 1.2*d2 {
		t.Errorf("misaligned D=4 latency %.1f not clearly above aligned D=2 %.1f", d4, d2)
	}
	// The VC family degrades more gracefully: Surf D=4 stays closer to
	// WH than SB D=4 does to BLESS.
	sbPenalty := r.A[2].Latency[lowRateIdx] / r.A[0].Latency[lowRateIdx]
	surfPenalty := r.B[2].Latency[lowRateIdx] / r.B[0].Latency[lowRateIdx]
	if surfPenalty >= sbPenalty {
		t.Errorf("Surf D=4 penalty %.2f should be milder than SB's %.2f", surfPenalty, sbPenalty)
	}
	if len(r.Tables()) != 4 {
		t.Error("Fig7 tables malformed")
	}
}

// Figs 8–10 shapes: small SB execution penalty, mixed latency effects,
// large SB energy saving, Surf energy above WH.
func TestAppsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("27 full-system runs")
	}
	r, err := Apps(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Apps) != 9 {
		t.Fatalf("%d apps, want 9", len(r.Apps))
	}
	pen := r.SBExecPenalty()
	if pen < -0.05 || pen > 0.25 {
		t.Errorf("SB exec penalty %.1f%% outside the plausible band (paper: 3.23%%)", pen*100)
	}
	saving := r.SBEnergySaving()
	if saving < 0.3 {
		t.Errorf("SB energy saving %.1f%% too small (paper: 53.6%%)", saving*100)
	}
	for _, app := range r.Apps {
		wh := r.Runs[app][config.WH].Energy.Total()
		surf := r.Runs[app][config.Surf].Energy.Total()
		sb := r.Runs[app][config.SB].Energy.Total()
		if sb >= wh {
			t.Errorf("%s: SB energy %.3g not below WH %.3g", app, sb, wh)
		}
		if surf <= wh {
			t.Errorf("%s: Surf energy %.3g should exceed WH %.3g", app, surf, wh)
		}
	}
	if len(r.Tables()) != 3 {
		t.Error("Apps tables malformed")
	}
}

func TestAblationWaveSets(t *testing.T) {
	if testing.Short() {
		t.Skip("6 full-system runs")
	}
	rows, err := AblationWaveSets(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if row.PaperExec <= row.TunedExec {
			t.Errorf("%s: paper's wave sets (%d) should run longer than the tuned ones (%d)",
				row.App, row.PaperExec, row.TunedExec)
		}
	}
	if WaveSetTable(rows).Rows() != len(rows) {
		t.Error("wave-set table malformed")
	}
}

func TestAblationRouting(t *testing.T) {
	rows, err := AblationRouting(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d variants, want 3", len(rows))
	}
	base := rows[0]
	if base.Latency <= 0 || base.Throughput <= 0 {
		t.Error("baseline routing produced no traffic")
	}
	if RoutingTable(rows).Rows() != 3 {
		t.Error("routing table malformed")
	}
}

func TestAblationMeshSweep(t *testing.T) {
	rows, err := AblationMeshSweep(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d mesh points, want 4", len(rows))
	}
	for i, row := range rows {
		wantSmax := 2 * 3 * (row.N - 1)
		if row.Smax != wantSmax {
			t.Errorf("N=%d: Smax %d, want %d", row.N, row.Smax, wantSmax)
		}
		if i > 0 && row.Latency <= rows[i-1].Latency {
			t.Errorf("latency should grow with mesh size: N=%d %.1f vs N=%d %.1f",
				row.N, row.Latency, rows[i-1].N, rows[i-1].Latency)
		}
	}
	if MeshTable(rows).Rows() != 4 {
		t.Error("mesh table malformed")
	}
}

func TestFig3(t *testing.T) {
	frames := Fig3()
	if len(frames) != 6 {
		t.Fatalf("%d frames, want 6 (the pattern repeats after 6 slots)", len(frames))
	}
	text := Fig3Text()
	if !strings.Contains(text, "T=0 wave 0") || !strings.Contains(text, "T=5 wave 0") {
		t.Error("Fig3Text missing frames")
	}
	for i, f := range frames {
		if !strings.Contains(f, "o") {
			t.Errorf("frame %d has no routers", i)
		}
	}
}

func TestExtensionBufferless(t *testing.T) {
	rows, err := ExtensionBufferless(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("%d rows, want 12 (4 models × 3 rates)", len(rows))
	}
	byModel := map[config.Model][]BufferlessRow{}
	for _, r := range rows {
		byModel[r.Model] = append(byModel[r.Model], r)
		if r.MeanLatency <= 0 || r.P99Latency <= 0 {
			t.Errorf("%v@%.2f: empty stats", r.Model, r.Rate)
		}
	}
	// CHIPPER is the cheapest router; its p99 at high load is at least
	// BLESS's (no age-based priority).
	if byModel[config.CHIPPER][0].StaticW >= byModel[config.BLESS][0].StaticW {
		t.Error("CHIPPER must have the cheapest router")
	}
	if byModel[config.CHIPPER][2].P99Latency < byModel[config.BLESS][2].P99Latency {
		t.Errorf("CHIPPER p99 %d below BLESS p99 %d at high load — golden class beats oldest-first?",
			byModel[config.CHIPPER][2].P99Latency, byModel[config.BLESS][2].P99Latency)
	}
	if BufferlessTable(rows).Rows() != 12 {
		t.Error("bufferless table malformed")
	}
}

func TestExtensionPatterns(t *testing.T) {
	rows, err := ExtensionPatterns(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows, want 4 patterns", len(rows))
	}
	for _, r := range rows {
		if r.VictimDrift != 0 {
			t.Errorf("%v: SB victim latency drifted by %g cycles", r.Pattern, r.VictimDrift)
		}
	}
	// Under at least the uniform pattern BLESS must visibly drift.
	if rows[0].BLESSDriftPc < 3 {
		t.Errorf("uniform: BLESS drift %.1f%% suspiciously small", rows[0].BLESSDriftPc)
	}
	if PatternTable(rows).Rows() != 4 {
		t.Error("pattern table malformed")
	}
}
