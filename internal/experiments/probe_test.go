package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"surfbless/internal/probe"
)

// flightScale is small enough that Fig5Probe's 14 runs finish in well
// under a second while still ejecting packets at every rate.
func probeScale() Scale {
	return Scale{Warmup: 50, Measure: 300, Drain: 3000, EnergyCycles: 1, Instr: 1, Seed: 1}
}

// TestFig5ProbeWritesSpans: the probed Fig. 5 sweep leaves time series,
// heatmaps and — at the top interference rate — a loadable Chrome
// trace for both models.
func TestFig5ProbeWritesSpans(t *testing.T) {
	dir := t.TempDir()
	if err := Fig5Probe(probeScale(), 100, dir); err != nil {
		t.Fatal(err)
	}
	for _, model := range []string{"BLESS", "SB"} {
		for _, want := range []string{"fig5_ts_", "fig5_heat_"} {
			matches, err := filepath.Glob(filepath.Join(dir, want+model+"_r*"))
			if err != nil || len(matches) == 0 {
				t.Errorf("%s%s*: no output files (%v)", want, model, err)
			}
		}
		spans, err := filepath.Glob(filepath.Join(dir, "fig5_spans_"+model+"_r*.json"))
		if err != nil || len(spans) != 1 {
			t.Fatalf("fig5_spans_%s: got %v (%v), want exactly one", model, spans, err)
		}
		raw, err := os.ReadFile(spans[0])
		if err != nil {
			t.Fatal(err)
		}
		var ct struct {
			TraceEvents []struct {
				Ph  string `json:"ph"`
				Cat string `json:"cat"`
			} `json:"traceEvents"`
		}
		if err := json.Unmarshal(raw, &ct); err != nil {
			t.Fatalf("%s is not valid Chrome trace JSON: %v", spans[0], err)
		}
		if len(ct.TraceEvents) == 0 {
			t.Errorf("%s holds no trace events", spans[0])
		}
	}
}

// TestWriteFlightDump covers the forensic-dump helper end to end:
// disabled without a directory, round-trips a dump when one is set.
func TestWriteFlightDump(t *testing.T) {
	d := &probe.FlightDump{
		Version: probe.FlightDumpVersion, Reason: "test", Cycle: 42,
		Window: 8, Model: "SB", Width: 4, Height: 4, Domains: 2,
		Events: []probe.Event{{Cycle: 41, Kind: probe.KindTick, Node: -1, Src: -1, Dst: -1, Flits: -1}},
	}

	SetFlightDir("")
	if path, err := writeFlightDump(d, "unset"); err != nil || path != "" {
		t.Fatalf("disabled dump wrote %q (%v)", path, err)
	}

	dir := t.TempDir()
	SetFlightDir(dir)
	defer SetFlightDir("")
	if path, err := writeFlightDump(nil, "nildump"); err != nil || path != "" {
		t.Fatalf("nil dump wrote %q (%v)", path, err)
	}
	path, err := writeFlightDump(d, "wcta_SB_4x4_corner-quiet_s1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(path, "wcta_SB_4x4_corner-quiet_s1.flight.json") {
		t.Fatalf("dump path %q", path)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := probe.ReadFlightDump(f)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, d) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, d)
	}
}
