package experiments

import (
	"strings"
	"testing"
)

// Confinement under faults: every (model, scenario) cell must produce
// a row — healthy or degraded — and the fault scenarios must actually
// exercise the loss machinery somewhere.
func TestConfinementUnderFaultsShape(t *testing.T) {
	r, err := ConfinementUnderFaults(Tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3*len(FaultScenarios()) {
		t.Fatalf("%d rows, want %d", len(r.Rows), 3*len(FaultScenarios()))
	}
	losses := int64(0)
	degraded := 0
	for _, row := range r.Rows {
		if row.Scenario == "none" {
			if row.Status != "ok" {
				t.Errorf("%s/none: fault-free run degraded: %s", row.Model, row.Status)
			}
			if row.Dropped != 0 || row.Retransmits != 0 {
				t.Errorf("%s/none: loss counters nonzero: %+v", row.Model, row)
			}
		}
		if row.VictimLatency <= 0 && row.Status == "ok" {
			t.Errorf("%s/%s: empty victim stats on a healthy run", row.Model, row.Scenario)
		}
		losses += row.Dropped + row.Retransmits
		if strings.HasPrefix(row.Status, "degraded") {
			degraded++
		}
	}
	if losses == 0 {
		t.Error("no scenario produced a drop or retransmission")
	}
	// The permanent link kill must wedge the wormhole baseline (XY
	// routing cannot avoid it) and surface as a degraded row rather
	// than an error — the point of the subsystem.
	for _, row := range r.Rows {
		if row.Model == "WH" && row.Scenario == "link-kill" {
			if !strings.HasPrefix(row.Status, "degraded") && row.LeftInFlight == 0 {
				t.Errorf("WH/link-kill neither degraded nor stuck: %+v", row)
			}
		}
	}
	t.Logf("%d/%d rows degraded, %d total losses", degraded, len(r.Rows), losses)
	for _, tab := range r.Tables() {
		if tab.Rows() != len(r.Rows) {
			t.Errorf("table rows %d != result rows %d", tab.Rows(), len(r.Rows))
		}
	}
}
