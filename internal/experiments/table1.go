package experiments

import (
	"fmt"

	"surfbless/internal/config"
	"surfbless/internal/textplot"
)

// Table1 renders the experimental parameters exactly as the paper's
// Table 1 lists them, from the live configuration (so the table can
// never drift from what the simulators actually use).
func Table1() *textplot.Table {
	wh := config.Default(config.WH)
	sb := config.Default(config.SB)
	t := textplot.NewTable("Table 1: parameters", "parameter", "value")
	t.Row("Network topology", fmt.Sprintf("%d x %d mesh", wh.Width, wh.Height))
	t.Row("Router", fmt.Sprintf("%d-stage and %d-stage pipelines",
		sb.BufferlessPipeline, wh.VCPipeline))
	t.Row("Virtual channel", fmt.Sprintf("%d ctrl VC and %d data VCs",
		wh.CtrlVCsPerPort, wh.DataVCsPerPort))
	t.Row("Input buffer size", fmt.Sprintf("%d-flit/ctrl VC, %d-flit/data VC",
		wh.CtrlVCDepth, wh.DataVCDepth))
	t.Row("Routing algorithm", "X-Y DOR, Surf and Surf-Bless")
	t.Row("Link bandwidth", fmt.Sprintf("%d bits/cycle", wh.LinkBits))
	t.Row("Private I/D L1$", "32 KB")
	t.Row("Shared L2 per bank", "256 KB")
	t.Row("Cache block size", "16 Bytes")
	t.Row("Coherence protocol", "Two-level MESI")
	t.Row("Memory controllers", "4, located one at each corner")
	t.Row("Smax (bufferless, derived)", fmt.Sprintf("%d waves", sb.Smax()))
	return t
}
