package experiments

import (
	"fmt"

	"surfbless/internal/config"
	"surfbless/internal/packet"
	"surfbless/internal/power"
	"surfbless/internal/sim"
	"surfbless/internal/textplot"
	"surfbless/internal/traffic"
)

// BufferlessRow is one point of the bufferless-baseline comparison.
type BufferlessRow struct {
	Model       config.Model
	Rate        float64
	MeanLatency float64
	P99Latency  int64 // power-of-two percentile bound
	Deflections float64
	StaticW     float64 // per-router static power, watts
}

// ExtensionBufferless compares the four bufferless routers — BLESS
// (oldest-first, full crossbar), CHIPPER (golden packets, permutation
// network), RUNAHEAD (single-cycle, drop + source retransmission) and
// SB with one domain (wave-constrained deflection) — across offered
// loads.  This extends the paper's related-work discussion with
// measurements: CHIPPER trades tail latency for the cheapest deflecting
// router, RUNAHEAD wins uncontended latency but collapses under load,
// SB pays the wave constraint.
func ExtensionBufferless(sc Scale) ([]BufferlessRow, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	co := power.Default45nm()
	addTotal(4 * 3) // 4 models × 3 rates
	var rows []BufferlessRow
	for _, model := range []config.Model{config.BLESS, config.CHIPPER, config.RUNAHEAD, config.SB} {
		for _, rate := range []float64{0.05, 0.15, 0.25} {
			cfg := config.Default(model)
			out, err := runSim(sim.Options{
				Cfg:     cfg,
				Pattern: traffic.UniformRandom,
				Sources: []traffic.Source{{Rate: rate, Class: packet.Ctrl, VNet: -1}},
				Warmup:  sc.Warmup, Measure: sc.Measure, Drain: sc.Drain,
				Seed: sc.Seed,
			})
			if err != nil {
				return nil, fmt.Errorf("bufferless %v rate %.2f: %w", model, rate, err)
			}
			rows = append(rows, BufferlessRow{
				Model:       model,
				Rate:        rate,
				MeanLatency: out.Total.AvgTotalLatency(),
				P99Latency:  out.LatencyP99[0],
				Deflections: out.Total.AvgDeflections(),
				StaticW:     power.RouterStaticPower(cfg, co),
			})
		}
	}
	return rows, nil
}

// BufferlessTable renders the bufferless comparison.
func BufferlessTable(rows []BufferlessRow) *textplot.Table {
	t := textplot.NewTable("Extension: bufferless routers compared (BLESS / CHIPPER / RUNAHEAD / SB, 1 domain)",
		"model", "rate", "mean_latency", "p99_latency≤", "deflections/pkt", "router_static_mW")
	for _, r := range rows {
		t.Row(r.Model.String(), textplot.F(r.Rate), textplot.F(r.MeanLatency),
			fmt.Sprintf("%d", r.P99Latency), textplot.F(r.Deflections),
			textplot.F(r.StaticW*1e3))
	}
	return t
}

// PatternRow is one traffic-pattern confinement check.
type PatternRow struct {
	Pattern      traffic.Pattern
	VictimDrift  float64 // |victim latency with - without interference|
	BLESSDriftPc float64 // BLESS victim latency increase, percent
}

// ExtensionPatterns verifies SB's confinement beyond uniform-random
// traffic: for every synthetic pattern, the victim domain's latency is
// bit-identical with and without interference, while BLESS drifts.
func ExtensionPatterns(sc Scale) ([]PatternRow, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	run := func(model config.Model, pattern traffic.Pattern, interference float64) (float64, error) {
		cfg := config.Default(model)
		cfg.Domains = 2
		out, err := runSim(sim.Options{
			Cfg:     cfg,
			Pattern: pattern,
			Sources: []traffic.Source{
				{Rate: 0.04, Class: packet.Ctrl, VNet: -1},
				{Rate: interference, Class: packet.Ctrl, VNet: -1},
			},
			Warmup: sc.Warmup, Measure: sc.Measure, Drain: sc.Drain,
			Seed: sc.Seed,
		})
		if err != nil {
			return 0, err
		}
		return out.Domains[0].AvgTotalLatency(), nil
	}
	addTotal(4 * 4) // 4 patterns × {SB, BLESS} × {quiet, loud}
	var rows []PatternRow
	for _, p := range []traffic.Pattern{traffic.UniformRandom, traffic.Transpose, traffic.BitComplement, traffic.Hotspot} {
		sbQuiet, err := run(config.SB, p, 0)
		if err != nil {
			return nil, fmt.Errorf("patterns %v: %w", p, err)
		}
		sbLoud, err := run(config.SB, p, 0.2)
		if err != nil {
			return nil, fmt.Errorf("patterns %v: %w", p, err)
		}
		blQuiet, err := run(config.BLESS, p, 0)
		if err != nil {
			return nil, fmt.Errorf("patterns %v: %w", p, err)
		}
		blLoud, err := run(config.BLESS, p, 0.2)
		if err != nil {
			return nil, fmt.Errorf("patterns %v: %w", p, err)
		}
		drift := sbLoud - sbQuiet
		if drift < 0 {
			drift = -drift
		}
		rows = append(rows, PatternRow{
			Pattern:      p,
			VictimDrift:  drift,
			BLESSDriftPc: (blLoud/blQuiet - 1) * 100,
		})
	}
	return rows, nil
}

// PatternTable renders the pattern confinement check.
func PatternTable(rows []PatternRow) *textplot.Table {
	t := textplot.NewTable("Extension: SB confinement across traffic patterns (victim 0.04, interference 0.2)",
		"pattern", "SB_victim_latency_drift", "BLESS_victim_latency_drift_%")
	for _, r := range rows {
		t.Row(r.Pattern.String(), textplot.F(r.VictimDrift), textplot.F(r.BLESSDriftPc))
	}
	return t
}
