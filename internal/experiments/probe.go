package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"surfbless/internal/config"
	"surfbless/internal/packet"
	"surfbless/internal/probe"
	"surfbless/internal/sim"
	"surfbless/internal/trace"
	"surfbless/internal/traffic"
)

// Fig5Probe re-runs the §5.1.1 confined-interference experiment with a
// probe attached, producing the time-resolved view behind Fig. 5: for
// BLESS and SB at every interference rate it writes
//
//	fig5_ts_<model>_r<rate>.jsonl    per-interval, per-domain time series
//	fig5_heat_<model>_r<rate>.csv    per-router / per-link heatmap
//	fig5_spans_<model>_r<rate>.json  Chrome-trace hop/packet spans
//
// into dir (created if missing).  Domain 0 is the victim at the fixed
// light load; domain 1 is the interfering domain.  On SB the victim's
// series should stay flat as the interference rate rises; on BLESS it
// degrades — the per-interval data makes that visible cycle-window by
// cycle-window rather than only in the end-of-run average.
//
// The spans file is written only at the highest interference rate —
// the run where deflections and detours are densest — and loads
// directly in https://ui.perfetto.dev; per-packet tracks show every
// hop, with deflections flagged in the slice names.
//
// Probed runs are never served from the result cache (the probe needs
// the real simulation), so expect this to cost two full sweeps.
func Fig5Probe(sc Scale, every int64, dir string) error {
	if err := sc.Validate(); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	addTotal(2 * len(Fig5Rates))
	spanRate := Fig5Rates[len(Fig5Rates)-1]
	for _, model := range []config.Model{config.BLESS, config.SB} {
		for _, rate := range Fig5Rates {
			cfg := config.Default(model)
			cfg.Domains = 2
			p := &probe.Probe{}
			opts := sim.Options{
				Cfg:     cfg,
				Pattern: traffic.UniformRandom,
				Sources: []traffic.Source{
					{Rate: victimRate, Class: packet.Ctrl, VNet: -1},
					{Rate: rate, Class: packet.Ctrl, VNet: -1},
				},
				Warmup: sc.Warmup, Measure: sc.Measure, Drain: sc.Drain,
				Seed:       sc.Seed,
				Probe:      p,
				ProbeEvery: every,
			}
			base := fmt.Sprintf("%v_r%.2f", model, rate)
			var pf *trace.Perfetto
			if rate == spanRate {
				f, err := os.Create(filepath.Join(dir, "fig5_spans_"+base+".json"))
				if err != nil {
					return err
				}
				pf = trace.NewPerfetto(f, cfg.Mesh())
				opts.Taps = []probe.Tap{pf}
			}
			_, err := runSim(opts)
			if pf != nil {
				if cerr := pf.Close(); cerr != nil && err == nil {
					err = cerr
				}
			}
			if err != nil {
				return fmt.Errorf("fig5 probe %v interference %.2f: %w", model, rate, err)
			}
			if err := writeFile(filepath.Join(dir, "fig5_ts_"+base+".jsonl"), p.WriteTimeSeriesJSONL); err != nil {
				return err
			}
			if err := writeFile(filepath.Join(dir, "fig5_heat_"+base+".csv"), p.WriteHeatmapCSV); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeFile streams one exporter into path, propagating the first
// error from either the exporter or the file.
func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := write(f)
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("%s: %w", path, werr)
	}
	if cerr != nil {
		return fmt.Errorf("%s: %w", path, cerr)
	}
	return nil
}
