package experiments

import (
	"strings"

	"surfbless/internal/geom"
	"surfbless/internal/wave"
)

// Fig3 reproduces the paper's Figure 3 textually: the reverberating
// wave pattern on the 4×4 mesh with hop delay 1 that the paper uses to
// illustrate the schedule (Smax = 2·1·3 = 6, so the pattern repeats
// after six time slots T = 0 … 5).  It returns one ASCII frame per
// time slot for the tracked wave.
func Fig3() []string {
	s := wave.New(geom.NewMesh(4, 4), 1)
	return wave.RenderPeriod(s, 0, 0)
}

// Fig3Text joins the frames side by side header (one frame per block).
func Fig3Text() string {
	var b strings.Builder
	b.WriteString("== Fig 3: wave pattern in Surf-Bless routing (4x4 mesh, P=1, one wave tracked) ==\n")
	b.WriteString("legend: o router, > < v ^ owned link (direction), x both directions owned\n\n")
	for _, f := range Fig3() {
		b.WriteString(f)
		b.WriteByte('\n')
	}
	return b.String()
}
