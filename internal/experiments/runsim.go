package experiments

import (
	"sync/atomic"

	"surfbless/internal/sim"
	"surfbless/internal/simcache"
	"surfbless/internal/system"
)

// cachePtr holds the simulation-result cache every driver consults.
// It is an atomic pointer because drivers fan simulations out through
// parmap: workers read it concurrently, and one simcache.Cache is safe
// to share between them.
var cachePtr atomic.Pointer[simcache.Cache]

// SetCache installs the result cache used by all figure, ablation and
// extension drivers (nil disables caching).  The default is nil so
// that tests and the bench_test.go benchmarks measure real
// simulations; cmd/experiments installs a cache according to its
// flags.
func SetCache(c *simcache.Cache) {
	cachePtr.Store(c)
}

// Cache returns the installed cache, or nil when caching is disabled.
func Cache() *simcache.Cache { return cachePtr.Load() }

// runSim is the cached sim.Run every synthetic driver goes through.
func runSim(o sim.Options) (sim.Result, error) {
	return sim.RunCached(o, cachePtr.Load())
}

// runSystem is the cached system.Run every full-system driver goes
// through.
func runSystem(o system.Options) (system.Result, error) {
	return system.RunCached(o, cachePtr.Load())
}
