package experiments

import (
	"os"
	"path/filepath"
	"sync/atomic"

	"surfbless/internal/probe"
	"surfbless/internal/sim"
	"surfbless/internal/simcache"
	"surfbless/internal/system"
)

// cachePtr holds the simulation-result cache every driver consults.
// It is an atomic pointer because drivers fan simulations out through
// parmap: workers read it concurrently, and one simcache.Cache is safe
// to share between them.
var cachePtr atomic.Pointer[simcache.Cache]

// SetCache installs the result cache used by all figure, ablation and
// extension drivers (nil disables caching).  The default is nil so
// that tests and the bench_test.go benchmarks measure real
// simulations; cmd/experiments installs a cache according to its
// flags.
func SetCache(c *simcache.Cache) {
	cachePtr.Store(c)
}

// Cache returns the installed cache, or nil when caching is disabled.
func Cache() *simcache.Cache { return cachePtr.Load() }

// shardsVal holds the per-point mesh tile count every synthetic driver
// passes to the simulator (≤1 = serial stepping).  Atomic for the same
// reason as cachePtr: parmap workers read it concurrently.
var shardsVal atomic.Int64

// SetShards installs the sharded-stepping tile count applied to every
// synthetic simulation point (see DESIGN.md §17).  Sharded stepping is
// bit-identical to serial and sim.Options.Shards is fingerprint-exempt,
// so results, cache keys and golden tables are unchanged; the knob only
// trades cores for wall-clock on big meshes.  cmd/experiments sets it
// from its -shards flag.
func SetShards(n int) {
	shardsVal.Store(int64(n))
}

// progressPtr holds the live-introspection point counter, shared the
// same way as the cache: parmap workers bump it concurrently.
var progressPtr atomic.Pointer[probe.Progress]

// SetProgress installs a progress tracker that every figure, ablation
// and extension driver bumps once per simulation point (nil disables).
func SetProgress(g *probe.Progress) { progressPtr.Store(g) }

// flightDirPtr holds the directory failed runs dump their flight
// recordings into ("" disables forensic dumps).
var flightDirPtr atomic.Pointer[string]

// SetFlightDir installs the directory where drivers write flight
// recorder dumps when a run fails (WCTA conformance violations,
// degraded runs).  Empty disables dumping; cmd/experiments points it
// at its -out directory.
func SetFlightDir(dir string) { flightDirPtr.Store(&dir) }

// flightDir returns the installed dump directory, or "".
func flightDir() string {
	if p := flightDirPtr.Load(); p != nil {
		return *p
	}
	return ""
}

// writeFlightDump persists a failed run's flight recording as
// <flightDir>/<base>.flight.json and returns the path.  A nil dump or
// an unset flight directory writes nothing and returns "".
func writeFlightDump(d *probe.FlightDump, base string) (string, error) {
	dir := flightDir()
	if d == nil || dir == "" {
		return "", nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, base+".flight.json")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := d.WriteJSON(f); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	return path, nil
}

// pointDone records one completed simulation point.
func pointDone() {
	if g := progressPtr.Load(); g != nil {
		g.Add(1)
	}
}

// addTotal declares n upcoming simulation points; every driver calls
// it at entry so /progress ETAs stay meaningful mid-run.
func addTotal(n int) {
	if g := progressPtr.Load(); g != nil {
		g.AddTotal(int64(n))
	}
}

// runSim is the cached sim.Run every synthetic driver goes through.
func runSim(o sim.Options) (sim.Result, error) {
	if n := shardsVal.Load(); n > 1 && o.Shards == 0 {
		o.Shards = int(n)
	}
	res, err := sim.RunCached(o, cachePtr.Load())
	pointDone()
	return res, err
}

// runSystem is the cached system.Run every full-system driver goes
// through.
func runSystem(o system.Options) (system.Result, error) {
	res, err := system.RunCached(o, cachePtr.Load())
	pointDone()
	return res, err
}
