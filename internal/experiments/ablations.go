package experiments

import (
	"fmt"

	"surfbless/internal/config"
	"surfbless/internal/cpu"
	"surfbless/internal/packet"
	"surfbless/internal/power"
	"surfbless/internal/router/surfbless"
	"surfbless/internal/sim"
	"surfbless/internal/stats"
	"surfbless/internal/system"
	"surfbless/internal/textplot"
	"surfbless/internal/traffic"
)

// Ablations beyond the paper's evaluation, quantifying design choices
// DESIGN.md calls out.

// WaveSetRow compares a wave-set placement on one application.
type WaveSetRow struct {
	App          string
	TunedExec    int64
	PaperExec    int64
	TunedLatency float64
	PaperLatency float64
}

// AblationWaveSets compares the tuned multiple-of-2P worm-window
// placement against the paper's literal {0,15,30}/{7,22,37} sets on a
// subset of applications.  The tuned placement creates wave turn rows
// every couple of hops (see system.waveSetsFor) and should win clearly.
func AblationWaveSets(sc Scale) ([]WaveSetRow, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	apps := []string{"swaptions", "dedup", "canneal"}
	addTotal(2 * len(apps))
	var rows []WaveSetRow
	for _, app := range apps {
		prof, err := cpu.ProfileByName(app)
		if err != nil {
			return nil, err
		}
		tuned, err := runSystem(system.Options{
			Model: config.SB, App: prof, InstrPerCore: sc.Instr, Seed: sc.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("ablation wavesets %s tuned: %w", app, err)
		}
		paper, err := runSystem(system.Options{
			Model: config.SB, App: prof, InstrPerCore: sc.Instr, Seed: sc.Seed,
			WaveSets: system.PaperWaveSets(),
		})
		if err != nil {
			return nil, fmt.Errorf("ablation wavesets %s paper: %w", app, err)
		}
		rows = append(rows, WaveSetRow{
			App:          app,
			TunedExec:    tuned.ExecCycles,
			PaperExec:    paper.ExecCycles,
			TunedLatency: tuned.Total.AvgTotalLatency(),
			PaperLatency: paper.Total.AvgTotalLatency(),
		})
	}
	return rows, nil
}

// WaveSetTable renders the wave-placement ablation.
func WaveSetTable(rows []WaveSetRow) *textplot.Table {
	t := textplot.NewTable("Ablation: SB worm-window placement (tuned 2P-stride vs paper's literal sets)",
		"app", "exec_tuned", "exec_paper_sets", "exec_ratio", "lat_tuned", "lat_paper_sets")
	for _, r := range rows {
		t.Row(r.App,
			fmt.Sprintf("%d", r.TunedExec), fmt.Sprintf("%d", r.PaperExec),
			textplot.F(float64(r.PaperExec)/float64(r.TunedExec)),
			textplot.F(r.TunedLatency), textplot.F(r.PaperLatency))
	}
	return t
}

// RoutingRow compares §4.3 Step-2 variants at one offered load.
type RoutingRow struct {
	Variant     string
	Latency     float64
	Deflections float64
	Throughput  float64
}

// AblationRouting measures the contribution of the Y-X fallback and the
// random deflection choice to SB's routing (D = 4 — a misaligned
// domain count where deflection policy matters — at a moderate load).
func AblationRouting(sc Scale) ([]RoutingRow, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	const domains, rate = 4, 0.15
	variants := []struct {
		name string
		pol  surfbless.Policy
	}{
		{"paper (XY, YX, random)", surfbless.Policy{}},
		{"no YX fallback", surfbless.Policy{DisableYX: true}},
		{"fixed-order deflection", surfbless.Policy{DisableRandom: true}},
	}
	var rows []RoutingRow
	for _, v := range variants {
		cfg := fig6Config(config.SB, domains)
		col := stats.NewCollector(domains, sc.Warmup, sc.Warmup+sc.Measure)
		meter := power.NewMeter(cfg, power.Default45nm())
		fab, err := surfbless.NewWithPolicy(cfg, nil, v.pol, nil, col, meter)
		if err != nil {
			return nil, fmt.Errorf("ablation routing %s: %w", v.name, err)
		}
		sources := make([]traffic.Source, domains)
		for i := range sources {
			sources[i] = traffic.Source{Rate: rate / float64(domains), Class: packet.Ctrl, VNet: -1}
		}
		gen := traffic.New(cfg.Mesh(), traffic.UniformRandom, sources, sc.Seed)
		now := int64(0)
		for ; now < sc.Warmup+sc.Measure; now++ {
			gen.Tick(fab, now)
			fab.Step(now)
		}
		for end := now + sc.Drain; now < end && fab.InFlight() > 0; now++ {
			fab.Step(now)
		}
		tot := col.Total()
		rows = append(rows, RoutingRow{
			Variant:     v.name,
			Latency:     tot.AvgTotalLatency(),
			Deflections: tot.AvgDeflections(),
			Throughput:  float64(tot.Ejected) / float64(cfg.Nodes()) / float64(sc.Measure),
		})
	}
	return rows, nil
}

// RoutingTable renders the routing ablation.
func RoutingTable(rows []RoutingRow) *textplot.Table {
	t := textplot.NewTable("Ablation: SB §4.3 Step-2 variants (D=4, 0.15 pkts/node/cycle)",
		"variant", "avg_latency", "deflections/pkt", "throughput")
	for _, r := range rows {
		t.Row(r.Variant, textplot.F(r.Latency), textplot.F(r.Deflections), textplot.F(r.Throughput))
	}
	return t
}

// MeshRow is one mesh-size point of the scaling sweep.
type MeshRow struct {
	N       int
	Smax    int
	Latency float64
	Energy  power.Energy
}

// AblationMeshSweep scales the mesh (the Smax = 2·P·(N−1) law) at a
// fixed per-node load and two domains, showing that the distributed
// schedulers need no global coordination to keep working as N grows.
func AblationMeshSweep(sc Scale) ([]MeshRow, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	sizes := []int{4, 6, 8, 10}
	addTotal(len(sizes))
	var rows []MeshRow
	for _, n := range sizes {
		cfg := fig6Config(config.SB, 2)
		cfg.Width, cfg.Height = n, n
		out, err := runSim(sim.Options{
			Cfg:     cfg,
			Pattern: traffic.UniformRandom,
			Sources: []traffic.Source{
				{Rate: 0.025, Class: packet.Ctrl, VNet: -1},
				{Rate: 0.025, Class: packet.Ctrl, VNet: -1},
			},
			Warmup: sc.Warmup, Measure: sc.Measure, Drain: sc.Drain,
			Seed: sc.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("mesh sweep N=%d: %w", n, err)
		}
		rows = append(rows, MeshRow{
			N:       n,
			Smax:    cfg.Smax(),
			Latency: out.Total.AvgTotalLatency(),
			Energy:  out.Energy,
		})
	}
	return rows, nil
}

// MeshTable renders the mesh-size sweep.
func MeshTable(rows []MeshRow) *textplot.Table {
	t := textplot.NewTable("Ablation: mesh-size scaling of SB (2 domains, 0.05 total load)",
		"N", "Smax", "avg_latency", "energy_total_mJ")
	for _, r := range rows {
		t.Row(fmt.Sprintf("%d", r.N), fmt.Sprintf("%d", r.Smax),
			textplot.F(r.Latency), textplot.MJ(r.Energy.Total()))
	}
	return t
}
