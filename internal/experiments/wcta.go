package experiments

import (
	"fmt"

	"surfbless/internal/config"
	"surfbless/internal/packet"
	"surfbless/internal/probe"
	"surfbless/internal/textplot"
	"surfbless/internal/traffic"
	"surfbless/internal/wcta/conformance"
)

// WCTARow aggregates one (model, mesh, scenario) conformance cell over
// its seeds.
type WCTARow struct {
	Model    config.Model
	Mesh     int // square mesh edge
	Scenario string
	Seeds    int
	Flows    int   // analyzed flows per run
	Ejected  int64 // packets delivered across all seeds
	// WorstBound and WorstObserved are the largest analytical bound and
	// the largest observed p100 network latency across all flows/seeds.
	WorstBound    int64
	WorstObserved int64
	// MaxRatio is the empirical tightness: the largest observed/bound
	// ratio any single flow achieved (1.0 = a packet hit its bound).
	MaxRatio   float64
	Violations int
}

// wctaScenario is one adversarial traffic shape.  Only deterministic
// patterns qualify — the oracle must enumerate the exact flow set.
type wctaScenario struct {
	name    string
	pattern traffic.Pattern
	sources func(domains int) []traffic.Source
	// tight marks the zero-contention scenarios whose observation must
	// come within wctaTightness of the bound on fabrics with exact
	// zero-load analysis (WH, SB): they certify the bound is not just
	// sound but usefully close.
	tight bool
}

// wctaTightness is the observed/bound floor the tightness scenarios
// must reach — a bound more than 25% above anything observable would
// pass soundness while being analytically sloppy.
const wctaTightness = 0.8

func wctaScenarios() []wctaScenario {
	ctrl := func(rate float64, burst int, onoff bool) traffic.Source {
		return traffic.Source{Rate: rate, Class: packet.Ctrl, VNet: -1, Burst: burst, OnOff: onoff}
	}
	return []wctaScenario{
		{
			// Lone corner-to-corner flow, everything else silent: the
			// longest uncontended path, so observed latency must equal
			// the zero-load bound exactly on WH and SB.
			name: "corner-quiet", pattern: traffic.Corner, tight: true,
			sources: func(domains int) []traffic.Source {
				ss := make([]traffic.Source, domains)
				ss[0] = ctrl(5e-4, 1, false)
				return ss
			},
		},
		{
			// Every domain injects the corner flow: the victim's full
			// path is crossed by foreign-domain traffic on the same
			// links.
			name: "corner-duel", pattern: traffic.Corner,
			sources: func(domains int) []traffic.Source {
				ss := make([]traffic.Source, domains)
				for d := range ss {
					ss[d] = ctrl(5e-4, 1, false)
				}
				return ss
			},
		},
		{
			// All aggressors on: every off-diagonal node streams
			// steadily in both domains.
			name: "transpose-steady", pattern: traffic.Transpose,
			sources: func(domains int) []traffic.Source {
				ss := make([]traffic.Source, domains)
				for d := range ss {
					ss[d] = ctrl(2e-4, 1, false)
				}
				return ss
			},
		},
		{
			// Bursty on/off sources: greedy token buckets fire 3
			// back-to-back packets from every node at once, all routes
			// crossing the mesh centre.
			name: "bitcomp-onoff", pattern: traffic.BitComplement,
			sources: func(domains int) []traffic.Source {
				ss := make([]traffic.Source, domains)
				for d := range ss {
					ss[d] = ctrl(1e-4, 3, true)
				}
				return ss
			},
		},
	}
}

// WCTAConformance cross-validates the analytical worst-case bounds
// (internal/wcta) against the simulator: for the three bounded fabrics
// × three mesh sizes × four adversarial scenarios × five seeds it
// asserts that no delivered packet exceeded its flow's bound, and that
// the tightness scenarios observe at least wctaTightness of it.
func WCTAConformance(sc Scale) ([]WCTARow, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	models := []config.Model{config.WH, config.Surf, config.SB}
	meshes := []int{4, 6, 8}
	scenarios := wctaScenarios()
	const seeds = 5
	addTotal(len(models) * len(meshes) * len(scenarios) * seeds)

	var rows []WCTARow
	for _, model := range models {
		for _, mesh := range meshes {
			for _, scn := range scenarios {
				row := WCTARow{Model: model, Mesh: mesh, Scenario: scn.name, Seeds: seeds}
				for seed := int64(1); seed <= seeds; seed++ {
					cfg := config.Default(model)
					cfg.Width, cfg.Height = mesh, mesh
					cfg.Domains = 2
					// With a flight directory configured, every check runs
					// with a recorder so a violation leaves a forensic dump
					// instead of just a one-line error.
					var rec *probe.FlightRecorder
					if flightDir() != "" {
						rec = probe.NewFlightRecorder(0)
					}
					rep, err := conformance.Run(conformance.Check{
						Cfg:      cfg,
						Pattern:  scn.pattern,
						Sources:  scn.sources(cfg.Domains),
						Measure:  sc.Measure,
						Drain:    sc.Drain,
						Seed:     seed,
						Cache:    Cache(),
						Recorder: rec,
					})
					pointDone()
					if err != nil {
						return nil, fmt.Errorf("wcta %v %dx%d %s seed %d: %w", model, mesh, mesh, scn.name, seed, err)
					}
					row.Flows = len(rep.Flows)
					row.Ejected += rep.Ejected
					row.Violations += len(rep.Violations())
					for _, f := range rep.Flows {
						if f.Bound.Cycles > row.WorstBound {
							row.WorstBound = f.Bound.Cycles
						}
						if f.Observed > row.WorstObserved {
							row.WorstObserved = f.Observed
						}
					}
					if _, ratio := rep.MaxRatio(); ratio > row.MaxRatio {
						row.MaxRatio = ratio
					}
					if verr := rep.Err(); verr != nil {
						wrapped := fmt.Errorf("wcta %v %dx%d %s seed %d: %w", model, mesh, mesh, scn.name, seed, verr)
						base := fmt.Sprintf("wcta_%v_%dx%d_%s_s%d", model, mesh, mesh, scn.name, seed)
						if path, werr := writeFlightDump(rep.Flight, base); werr == nil && path != "" {
							return nil, fmt.Errorf("%w (flight dump: %s)", wrapped, path)
						}
						return nil, wrapped
					}
				}
				// Surf's gating term is a worst-phase bound the injection
				// process rarely hits on every hop, so only the exact
				// zero-load analyses owe tightness.
				if scn.tight && model != config.Surf && row.MaxRatio < wctaTightness {
					return nil, fmt.Errorf("wcta %v %dx%d %s: bound is slack — best observation reached only %.0f%% of it (want ≥ %.0f%%)",
						model, mesh, mesh, scn.name, row.MaxRatio*100, wctaTightness*100)
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// WCTATable renders the conformance matrix.
func WCTATable(rows []WCTARow) *textplot.Table {
	t := textplot.NewTable("WCTA conformance: observed p100 network latency vs analytical bound",
		"model", "mesh", "scenario", "flows", "ejected", "worst_bound", "worst_p100", "max_ratio", "violations")
	for _, r := range rows {
		t.Row(r.Model.String(), fmt.Sprintf("%dx%d", r.Mesh, r.Mesh), r.Scenario,
			fmt.Sprintf("%d", r.Flows), fmt.Sprintf("%d", r.Ejected),
			fmt.Sprintf("%d", r.WorstBound), fmt.Sprintf("%d", r.WorstObserved),
			textplot.F(r.MaxRatio), fmt.Sprintf("%d", r.Violations))
	}
	return t
}
