package experiments

import (
	"os"
	"path/filepath"
	"testing"

	"surfbless/internal/simcache"
)

// TestFig5GoldenCSVCached regenerates the committed Fig. 5(a) CSV
// through the cached path and proves three things at once: the quick
// scale still reproduces the committed bytes, the cache-populating
// first pass (all misses — i.e. the uncached computation) and the
// all-hit second pass emit identical output, and the second pass runs
// zero new simulations.
func TestFig5GoldenCSVCached(t *testing.T) {
	if testing.Short() {
		t.Skip("quick-scale Fig 5 (≈15 s)")
	}
	golden, err := os.ReadFile(filepath.Join("..", "..", "results",
		"fig5_fig_5_a_victim_avg_packet_latency_cycles_vs_inte.csv"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := simcache.New(simcache.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	SetCache(c)
	defer SetCache(nil)

	// EXPERIMENTS.md: the committed results were produced at -scale quick.
	r1, err := Fig5(Quick())
	if err != nil {
		t.Fatal(err)
	}
	first := r1.Tables()[0].CSV()
	if first != string(golden) {
		t.Errorf("regenerated Fig 5(a) CSV diverges from results/:\n got: %q\nwant: %q", first, golden)
	}
	cold := c.Stats()
	if cold.Hits != 0 || cold.Misses == 0 {
		t.Fatalf("first pass should be all misses, got %+v", cold)
	}

	r2, err := Fig5(Quick())
	if err != nil {
		t.Fatal(err)
	}
	warm := c.Stats()
	if warm.Misses != cold.Misses {
		t.Errorf("second pass ran %d new simulations", warm.Misses-cold.Misses)
	}
	if warm.Hits != cold.Misses {
		t.Errorf("second pass had %d hits, want %d (one per simulation)", warm.Hits, cold.Misses)
	}
	if warm.Corrupt != 0 {
		t.Errorf("%d corrupt entries on a fresh cache", warm.Corrupt)
	}
	if second := r2.Tables()[0].CSV(); second != first {
		t.Errorf("cache-on output diverges from cache-off output:\n hit: %q\nmiss: %q", second, first)
	}
}
