package experiments

import (
	"runtime"
	"sync"
)

// parmap runs f over items on up to GOMAXPROCS workers and returns the
// results in input order.  Every simulation in this package is an
// isolated deterministic state machine (its own fabric, collector and
// seeded RNG streams), so parallel execution cannot change any result —
// only the wall-clock time of regenerating a figure.  The first error
// wins; remaining work still completes (simulations cannot be
// cancelled mid-cycle anyway at this granularity).
func parmap[T, R any](items []T, f func(T) (R, error)) ([]R, error) {
	results := make([]R, len(items))
	errs := make([]error, len(items))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(items) {
		workers = len(items)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i], errs[i] = f(items[i])
			}
		}()
	}
	for i := range items {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}
