package experiments

import (
	"fmt"

	"surfbless/internal/config"
	"surfbless/internal/cpu"
	"surfbless/internal/parmap"
	"surfbless/internal/system"
	"surfbless/internal/textplot"
)

// AppRun is one (application, network) full-system result.
type AppRun struct {
	App    string
	Model  config.Model
	Result system.Result
}

// AppsResult holds the §5.2 runs, which feed Figs. 8, 9 and 10.
type AppsResult struct {
	Apps   []string
	Models []config.Model
	Runs   map[string]map[config.Model]system.Result
}

// Apps runs the nine PARSEC-like applications on WH, Surf and SB (the
// paper's §5.2 matrix; BLESS cannot carry the multi-class traffic).
func Apps(sc Scale) (AppsResult, error) {
	if err := sc.Validate(); err != nil {
		return AppsResult{}, err
	}
	res := AppsResult{
		Models: []config.Model{config.WH, config.Surf, config.SB},
		Runs:   map[string]map[config.Model]system.Result{},
	}
	type job struct {
		prof  cpu.Profile
		model config.Model
	}
	var jobs []job
	for _, prof := range cpu.Profiles() {
		res.Apps = append(res.Apps, prof.Name)
		res.Runs[prof.Name] = map[config.Model]system.Result{}
		for _, model := range res.Models {
			jobs = append(jobs, job{prof, model})
		}
	}
	addTotal(len(jobs))
	outs, err := parmap.Map(jobs, 0, func(j job) (system.Result, error) {
		out, err := runSystem(system.Options{
			Model:        j.model,
			App:          j.prof,
			InstrPerCore: sc.Instr,
			Seed:         sc.Seed,
		})
		if err != nil {
			return out, fmt.Errorf("apps %s/%v: %w", j.prof.Name, j.model, err)
		}
		return out, nil
	})
	if err != nil {
		return res, err
	}
	for i, j := range jobs {
		res.Runs[j.prof.Name][j.model] = outs[i]
	}
	return res, nil
}

// Fig8Table renders application execution time normalized to WH.
func (r AppsResult) Fig8Table() *textplot.Table {
	t := textplot.NewTable("Fig 8: application execution time (normalized to WH)",
		"app", "WH", "Surf", "SB", "Surf_penalty", "SB_penalty")
	var surfSum, sbSum float64
	for _, app := range r.Apps {
		wh := float64(r.Runs[app][config.WH].ExecCycles)
		surf := float64(r.Runs[app][config.Surf].ExecCycles) / wh
		sb := float64(r.Runs[app][config.SB].ExecCycles) / wh
		surfSum += surf
		sbSum += sb
		t.Row(app, "1.000", textplot.F(surf), textplot.F(sb),
			textplot.Pct(surf), textplot.Pct(sb))
	}
	n := float64(len(r.Apps))
	t.Row("geomean-ish avg", "1.000", textplot.F(surfSum/n), textplot.F(sbSum/n),
		textplot.Pct(surfSum/n), textplot.Pct(sbSum/n))
	return t
}

// Fig9Table renders the average packet latency breakdown (queue +
// network), normalized to WH's total latency per application.
func (r AppsResult) Fig9Table() *textplot.Table {
	t := textplot.NewTable("Fig 9: avg packet latency breakdown (normalized to WH total)",
		"app", "WH_queue", "WH_net", "Surf_queue", "Surf_net", "SB_queue", "SB_net")
	for _, app := range r.Apps {
		whTot := r.Runs[app][config.WH].Total.AvgTotalLatency()
		cell := func(m config.Model, queue bool) string {
			tot := r.Runs[app][m].Total
			v := tot.AvgNetworkLatency()
			if queue {
				v = tot.AvgQueueLatency()
			}
			return textplot.F(v / whTot)
		}
		t.Row(app,
			cell(config.WH, true), cell(config.WH, false),
			cell(config.Surf, true), cell(config.Surf, false),
			cell(config.SB, true), cell(config.SB, false))
	}
	return t
}

// Fig10Table renders per-application NoC energy with the link /
// router-dynamic / router-static breakdown.
func (r AppsResult) Fig10Table() *textplot.Table {
	t := textplot.NewTable("Fig 10: NoC energy (mJ): link / router_dynamic / router_static / total",
		"app", "model", "link", "router_dynamic", "router_static", "total", "vs_WH")
	var ratioSum float64
	for _, app := range r.Apps {
		whTot := r.Runs[app][config.WH].Energy.Total()
		for _, m := range r.Models {
			e := r.Runs[app][m].Energy
			t.Row(app, m.String(),
				textplot.MJ(e.Link), textplot.MJ(e.RouterDynamic),
				textplot.MJ(e.RouterStatic), textplot.MJ(e.Total()),
				textplot.F(e.Total()/whTot))
			if m == config.SB {
				ratioSum += e.Total() / whTot
			}
		}
	}
	t.Row("average", "SB", "-", "-", "-", "-",
		textplot.F(ratioSum/float64(len(r.Apps))))
	return t
}

// Tables renders Figs. 8–10.
func (r AppsResult) Tables() []*textplot.Table {
	return []*textplot.Table{r.Fig8Table(), r.Fig9Table(), r.Fig10Table()}
}

// SBEnergySaving returns SB's mean energy reduction vs WH across apps
// (the paper reports 53.6%).
func (r AppsResult) SBEnergySaving() float64 {
	var sum float64
	for _, app := range r.Apps {
		sum += 1 - r.Runs[app][config.SB].Energy.Total()/r.Runs[app][config.WH].Energy.Total()
	}
	return sum / float64(len(r.Apps))
}

// SBExecPenalty returns SB's mean execution-time penalty vs WH (the
// paper reports 3.23%).
func (r AppsResult) SBExecPenalty() float64 {
	var sum float64
	for _, app := range r.Apps {
		sum += float64(r.Runs[app][config.SB].ExecCycles)/float64(r.Runs[app][config.WH].ExecCycles) - 1
	}
	return sum / float64(len(r.Apps))
}
