// Package experiments contains one harness per table/figure of the
// paper's evaluation (§5).  Each harness runs the corresponding
// simulations and returns both the raw series and rendered tables whose
// rows mirror what the paper plots.  cmd/experiments regenerates the
// whole evaluation; bench_test.go exposes each harness as a benchmark.
package experiments

import "fmt"

// Scale sizes the simulations.  The paper measures 1 M cycles at 1 GHz
// on gem5; these harnesses default to shorter windows because every
// reported quantity is either a steady-state average (latency,
// throughput) or scales linearly with time (energy, which is dominated
// by static power), so the shapes are unchanged.  EXPERIMENTS.md
// records which scale produced the committed numbers.
type Scale struct {
	Warmup  int64 // synthetic: unmeasured lead-in cycles
	Measure int64 // synthetic: measured cycles
	Drain   int64 // synthetic: drain budget after generation stops

	EnergyCycles int64 // Fig 6: energy measurement period

	Instr int64 // Figs 8-10: instructions per core

	Seed int64
}

// Validate reports the first problem with the scale.
func (s Scale) Validate() error {
	if s.Warmup < 0 || s.Measure < 1 || s.Drain < 0 || s.EnergyCycles < 1 || s.Instr < 1 {
		return fmt.Errorf("experiments: invalid scale %+v", s)
	}
	return nil
}

// Tiny is the test scale: seconds per figure.
func Tiny() Scale {
	return Scale{Warmup: 300, Measure: 1500, Drain: 20000, EnergyCycles: 5000, Instr: 800, Seed: 1}
}

// Quick is the benchmark scale: a few tens of seconds per figure.
func Quick() Scale {
	return Scale{Warmup: 1000, Measure: 10000, Drain: 60000, EnergyCycles: 50000, Instr: 3000, Seed: 1}
}

// Full approaches the paper's operating points (minutes per figure).
func Full() Scale {
	return Scale{Warmup: 5000, Measure: 50000, Drain: 200000, EnergyCycles: 200000, Instr: 10000, Seed: 1}
}
