package bless

import (
	"testing"

	"surfbless/internal/config"
	"surfbless/internal/geom"
	"surfbless/internal/packet"
	"surfbless/internal/power"
	"surfbless/internal/stats"
)

type harness struct {
	f   *Fabric
	col *stats.Collector
	cfg config.Config
	ids packet.IDSource
	got []*packet.Packet
	now int64
}

func newHarness(t *testing.T, width int) *harness {
	t.Helper()
	cfg := config.Default(config.BLESS)
	cfg.Width, cfg.Height = width, width
	h := &harness{cfg: cfg}
	h.col = stats.NewCollector(cfg.Domains, 0, 0)
	meter := power.NewMeter(cfg, power.Default45nm())
	var err error
	h.f, err = New(cfg, func(node int, p *packet.Packet, now int64) {
		h.got = append(h.got, p)
	}, h.col, meter)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func (h *harness) pkt(src, dst geom.Coord) *packet.Packet {
	return packet.New(h.ids.Next(), src, dst, 0, packet.Ctrl, h.now)
}

func (h *harness) steps(n int) {
	for i := 0; i < n; i++ {
		h.f.Step(h.now)
		h.now++
	}
}

func TestNewRejectsWrongModel(t *testing.T) {
	cfg := config.Default(config.WH)
	col := stats.NewCollector(1, 0, 0)
	meter := power.NewMeter(cfg, power.Default45nm())
	if _, err := New(cfg, nil, col, meter); err == nil {
		t.Error("WH config accepted by BLESS constructor")
	}
	cfg = config.Default(config.BLESS)
	if _, err := New(cfg, nil, nil, meter); err == nil {
		t.Error("nil collector accepted")
	}
	bad := cfg
	bad.Domains = 0
	if _, err := New(bad, nil, col, meter); err == nil {
		t.Error("invalid config accepted")
	}
}

// A single packet travels hops×P cycles with no contention: offered at
// cycle 0 it is injected at 0 and ejected at Hops(src,dst)×3.
func TestSinglePacketTiming(t *testing.T) {
	h := newHarness(t, 8)
	src, dst := geom.Coord{X: 0, Y: 0}, geom.Coord{X: 3, Y: 2}
	p := h.pkt(src, dst)
	if !h.f.Inject(h.cfg.Mesh().ID(src), p, 0) {
		t.Fatal("injection refused")
	}
	h.steps(40)
	if len(h.got) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(h.got))
	}
	if p.InjectedAt != 0 {
		t.Errorf("InjectedAt = %d, want 0", p.InjectedAt)
	}
	wantEject := int64(h.cfg.Mesh().Hops(src, dst) * h.cfg.HopDelay())
	if p.EjectedAt != wantEject {
		t.Errorf("EjectedAt = %d, want %d (5 hops × P=3)", p.EjectedAt, wantEject)
	}
	if p.Hops != 5 || p.Deflections != 0 {
		t.Errorf("Hops=%d Deflections=%d, want 5/0", p.Hops, p.Deflections)
	}
}

// Two packets contending for the same output: the older proceeds, the
// younger is deflected and still arrives.
func TestContentionDeflectsYounger(t *testing.T) {
	h := newHarness(t, 4)
	mesh := h.cfg.Mesh()
	// Both packets meet at (1,1) wanting East: one from (0,1) going east,
	// one injected at (1,1) is not enough (injection yields); use two
	// in-flight packets meeting: (0,1)→(3,1) and (1,0)→(1,3) do not
	// conflict under X-Y.  Use (0,1)→(3,1) and (1,0)→(3,0)… also no.
	// Simplest deterministic clash: inject two packets at the same node
	// one cycle apart so they collide downstream is racy; instead rely
	// on aggregate behaviour: saturate one column.
	old := h.pkt(geom.Coord{X: 0, Y: 1}, geom.Coord{X: 3, Y: 1})
	yng := h.pkt(geom.Coord{X: 1, Y: 0}, geom.Coord{X: 1, Y: 2})
	h.f.Inject(mesh.ID(old.Src), old, 0)
	h.f.Inject(mesh.ID(yng.Src), yng, 0)
	h.steps(60)
	if len(h.got) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(h.got))
	}
}

// Ejection bandwidth is one packet per cycle: two packets reaching the
// same destination simultaneously eject on consecutive cycles.
func TestEjectionSerialized(t *testing.T) {
	h := newHarness(t, 4)
	mesh := h.cfg.Mesh()
	dst := geom.Coord{X: 1, Y: 1}
	// Equal path lengths from both sides, same injection cycle.
	a := h.pkt(geom.Coord{X: 0, Y: 1}, dst) // 1 hop from west
	b := h.pkt(geom.Coord{X: 1, Y: 0}, dst) // 1 hop from north... X-Y sends it S
	h.f.Inject(mesh.ID(a.Src), a, 0)
	h.f.Inject(mesh.ID(b.Src), b, 0)
	h.steps(30)
	if len(h.got) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(h.got))
	}
	e0, e1 := h.got[0].EjectedAt, h.got[1].EjectedAt
	if e0 == e1 {
		t.Errorf("both packets ejected at cycle %d; ejection port is 1/cycle", e0)
	}
	// The loser is deflected, so it pays more than one extra cycle of
	// revisit; just check both made it and the older went first.
	if !h.got[0].Older(h.got[1]) && e0 > e1 {
		t.Error("younger packet ejected before older one")
	}
}

func TestMultiFlitPanics(t *testing.T) {
	h := newHarness(t, 4)
	defer func() {
		if recover() == nil {
			t.Error("BLESS must reject multi-flit packets (§5.2)")
		}
	}()
	p := packet.New(1, geom.Coord{}, geom.Coord{X: 1, Y: 0}, 0, packet.Data, 0)
	h.f.Inject(0, p, 0)
}

func TestBackpressure(t *testing.T) {
	h := newHarness(t, 4)
	n := 0
	for ; n < h.cfg.InjectionQueueCap+5; n++ {
		if !h.f.Inject(0, h.pkt(geom.Coord{X: 0, Y: 0}, geom.Coord{X: 3, Y: 3}), 0) {
			break
		}
	}
	if n != h.cfg.InjectionQueueCap {
		t.Errorf("accepted %d offers, want queue cap %d", n, h.cfg.InjectionQueueCap)
	}
	if h.col.Domain(0).Refused != 1 {
		t.Errorf("Refused = %d, want 1", h.col.Domain(0).Refused)
	}
}

// Saturation stress: the old-first policy guarantees delivery (no
// livelock) — everything offered must eventually arrive once sources
// stop.
func TestNoLivelockUnderStress(t *testing.T) {
	h := newHarness(t, 4)
	mesh := h.cfg.Mesh()
	injected := 0
	for cyc := 0; cyc < 200; cyc++ {
		for node := 0; node < mesh.Nodes(); node++ {
			src := mesh.CoordOf(node)
			dst := mesh.CoordOf((node*7 + cyc) % mesh.Nodes())
			if dst == src {
				continue
			}
			if h.f.Inject(node, h.pkt(src, dst), h.now) {
				injected++
			}
		}
		h.f.Step(h.now)
		h.now++
	}
	for i := 0; i < 3000 && h.f.InFlight() > 0; i++ {
		h.f.Step(h.now)
		h.now++
	}
	if h.f.InFlight() != 0 {
		t.Fatalf("%d packets never delivered (livelock?)", h.f.InFlight())
	}
	if len(h.got) != injected {
		t.Errorf("delivered %d of %d", len(h.got), injected)
	}
	if err := h.f.Audit(); err != nil {
		t.Error(err)
	}
	if err := h.col.CheckConservation(0); err != nil {
		t.Error(err)
	}
}

func TestStepMonotonic(t *testing.T) {
	h := newHarness(t, 4)
	h.f.Step(0)
	defer func() {
		if recover() == nil {
			t.Error("repeated Step(0) must panic")
		}
	}()
	h.f.Step(0)
}

func TestAuditDetectsDrift(t *testing.T) {
	h := newHarness(t, 4)
	h.f.Inject(0, h.pkt(geom.Coord{X: 0, Y: 0}, geom.Coord{X: 1, Y: 1}), 0)
	if err := h.f.Audit(); err != nil {
		t.Errorf("clean state flagged: %v", err)
	}
	h.f.inFlight++ // corrupt
	if err := h.f.Audit(); err == nil {
		t.Error("corrupted in-flight count not detected")
	}
}
