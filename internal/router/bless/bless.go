// Package bless implements the baseline bufferless deflection network
// of Moscibroda & Mutlu [9] used as the BLESS comparator in §5.
//
// Routers have no in-network VCs: every packet arriving at a router is
// forwarded in the same cycle.  Output contention is resolved by the
// old-first arbitration policy [12] — the oldest packet picks first —
// and losers are deflected to any free output, which is always possible
// because routers have as many output as input ports.  Injection has
// the lowest priority and needs a free output port.
//
// The 2-stage router pipeline plus one link-traversal cycle are folded
// into the hop delay of the inter-router delay lines (Table 1 / §5:
// P = 3 for the bufferless networks).
//
// BLESS carries single-flit packets only: without VCs it cannot
// interleave or isolate multi-flit worms of different message classes,
// which is exactly the drawback §5.2 cites for excluding it from the
// cache-coherence experiment.  Inject panics on a multi-flit packet.
package bless

import (
	"fmt"

	"surfbless/internal/config"
	"surfbless/internal/fault"
	"surfbless/internal/geom"
	"surfbless/internal/link"
	"surfbless/internal/network"
	"surfbless/internal/packet"
	"surfbless/internal/power"
	"surfbless/internal/probe"
	"surfbless/internal/router"
	"surfbless/internal/stats"
)

// Fabric is a BLESS mesh.  It implements network.Fabric.
type Fabric struct {
	cfg   config.Config
	mesh  geom.Mesh
	nodes []*node
	sink  network.Sink
	col   *stats.Collector
	meter *power.Meter
	probe *probe.Probe // nil = no spatial observation

	faults *fault.Injector  // nil = fault-free (hot path untouched)
	recov  *router.Recovery // non-nil iff faults is

	inFlight int
	lastStep int64
}

type node struct {
	c   geom.Coord
	ni  *router.NI
	in  [geom.NumLinkDirs]*link.Line[*packet.Packet] // nil on borders
	out [geom.NumLinkDirs]*link.Line[*packet.Packet]

	// arrivals is per-cycle scratch owned by this node and reused
	// across cycles (see DESIGN.md §12): at most one packet per input
	// port, so it stops growing after the first busy cycle.
	arrivals []*packet.Packet
}

// New builds a BLESS mesh for cfg.  The collector and meter must be
// non-nil; sink may be nil when ejected packets need no consumer.
func New(cfg config.Config, sink network.Sink, col *stats.Collector, meter *power.Meter) (*Fabric, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Model != config.BLESS {
		return nil, fmt.Errorf("bless: config model is %v", cfg.Model)
	}
	if col == nil || meter == nil {
		return nil, fmt.Errorf("bless: collector and meter are required")
	}
	f := &Fabric{cfg: cfg, mesh: cfg.Mesh(), sink: sink, col: col, meter: meter, lastStep: -1}
	f.nodes = make([]*node, f.mesh.Nodes())
	for id := range f.nodes {
		f.nodes[id] = &node{
			c:  f.mesh.CoordOf(id),
			ni: router.NewNI(cfg.Domains, cfg.InjectionQueueCap),
		}
	}
	// Wire one delay line per unidirectional link; the line delay is the
	// hop delay P (router pipeline + link traversal).
	p := cfg.HopDelay()
	for id, n := range f.nodes {
		for _, d := range geom.LinkDirs {
			if !f.mesh.HasNeighbor(n.c, d) {
				continue
			}
			l := link.New[*packet.Packet](p)
			n.out[d] = l
			f.nodes[f.mesh.ID(n.c.Add(d))].in[d.Opposite()] = l
		}
		_ = id
	}
	return f, nil
}

// SetProbe attaches a hot-path observer recording per-router
// traversals, deflections and link flits (nil to remove).
func (f *Fabric) SetProbe(p *probe.Probe) { f.probe = p }

// SetFaults arms a fault injector (nil to disarm).  Faults break the
// port-count invariant on purpose, so while armed the fabric routes
// stricken packets through drop-with-retransmit recovery instead of
// panicking.
func (f *Fabric) SetFaults(inj *fault.Injector) {
	f.faults = inj
	if inj == nil {
		f.recov = nil
		return
	}
	f.recov = &router.Recovery{MaxRetries: inj.MaxRetries(), Backoff: inj.Backoff()}
}

// Inject offers p to node's NI.  It panics on multi-flit packets (see
// the package comment) and returns false under backpressure.
func (f *Fabric) Inject(nodeID int, p *packet.Packet, now int64) bool {
	if p.Size != 1 {
		panic(fmt.Sprintf("bless: cannot transfer multi-flit packet %v (no VCs to interleave worms)", p))
	}
	n := f.nodes[nodeID]
	if !n.ni.Offer(p) {
		f.col.Refused(p.Domain, now)
		return false
	}
	f.col.Created(p)
	f.meter.BufferWrite(p.Size)
	f.inFlight++
	return true
}

// Step advances the network by one cycle.
func (f *Fabric) Step(now int64) {
	if now <= f.lastStep {
		//nocvet:alloc panic-path formatting on a falsified invariant; runs at most once, while dying
		panic(fmt.Sprintf("bless: Step(%d) after Step(%d)", now, f.lastStep))
	}
	f.lastStep = now
	if f.recov != nil {
		f.relaunchRetries(now)
	}
	for id, n := range f.nodes {
		f.stepNode(id, n, now)
	}
}

// relaunchRetries re-offers packets whose retransmission backoff
// expired to their source NI; a full NI costs another backoff round
// without consuming a retry attempt.
func (f *Fabric) relaunchRetries(now int64) {
	for p := f.recov.Queue.PopDue(now); p != nil; p = f.recov.Queue.PopDue(now) {
		if f.nodes[f.mesh.ID(p.Src)].ni.Offer(p) {
			f.meter.BufferWrite(p.Size)
		} else {
			f.recov.Queue.Push(p, now+f.recov.Backoff)
		}
	}
}

func (f *Fabric) stepNode(id int, n *node, now int64) {
	// Phase 1: collect this cycle's arrivals (at most one per in-link)
	// into the node's reused scratch buffer.
	arrivals := n.arrivals[:0]
	for _, d := range geom.LinkDirs {
		if n.in[d] == nil {
			continue
		}
		arrivals = n.in[d].RecvInto(now, arrivals)
	}
	n.arrivals = arrivals

	// A frozen router's pipeline is dead: the links above were still
	// drained (they demand collection), but every arrival is lost at the
	// input and recovered via source retransmission.
	if f.faults != nil && f.faults.Frozen(id, now) {
		for _, p := range arrivals {
			f.dropOrRetry(p, now)
		}
		return
	}

	// Phase 2: eject the oldest packet that has reached its destination
	// (ejection bandwidth is one packet per cycle).
	ejected := -1
	for i, p := range arrivals {
		if p.Dst == n.c && (ejected < 0 || p.Older(arrivals[ejected])) {
			ejected = i
		}
	}
	if ejected >= 0 {
		f.eject(n, arrivals[ejected], now)
		arrivals = append(arrivals[:ejected], arrivals[ejected+1:]...)
	}

	// Phase 3: old-first output allocation with deflection.
	router.SortOldestFirst(arrivals)
	var taken [geom.NumLinkDirs]bool
	for _, p := range arrivals {
		d := f.pickOutput(id, n, p, now, &taken)
		if d < 0 { // only possible with faults armed: a link is down
			f.dropOrRetry(p, now)
			continue
		}
		f.forward(n, p, d, now, &taken)
	}

	// Phase 4: injection, at the lowest priority, needs a free output.
	// Domains take turns so one domain's backlog cannot starve another's
	// (BLESS itself still provides no isolation once packets are in the
	// network).
	for off := 0; off < n.ni.Domains(); off++ {
		dom := int((now + int64(off)) % int64(n.ni.Domains()))
		p := n.ni.Head(dom)
		if p == nil {
			continue
		}
		d := f.freeOutput(id, n, p, now, &taken)
		if d < 0 {
			break // no output left this cycle
		}
		n.ni.Pop(dom)
		if p.InjectedAt < 0 { // a retransmission keeps its first stamp
			p.InjectedAt = now
			f.col.Injected(p)
		}
		f.meter.BufferRead(p.Size)
		f.forward(n, p, d, now, &taken)
		break // one injection port
	}
}

// pickOutput returns the output direction for p: the X-Y route if free,
// otherwise another productive direction, otherwise the first free
// output in fixed port order (a deflection).  The port-count invariant
// guarantees one exists fault-free, so running out indicates a
// simulator bug and panics; with faults armed a down link can
// legitimately leave no output, reported as -1.
func (f *Fabric) pickOutput(id int, n *node, p *packet.Packet, now int64, taken *[geom.NumLinkDirs]bool) geom.Dir {
	if d := f.freeOutput(id, n, p, now, taken); d >= 0 {
		return d
	}
	if f.faults != nil {
		return -1
	}
	//nocvet:alloc panic-path formatting on a falsified invariant; runs at most once, while dying
	panic(fmt.Sprintf("bless: no free output at %v cycle %d for %v (port balance violated)", n.c, f.lastStep, p))
}

// freeOutput returns the preferred usable output for p, or -1 when
// every port is busy (legitimate for injection) or down.
func (f *Fabric) freeOutput(id int, n *node, p *packet.Packet, now int64, taken *[geom.NumLinkDirs]bool) geom.Dir {
	if d := geom.XYFirst(n.c, p.Dst); f.usable(id, n, d, now, taken) {
		return d
	}
	if d := geom.YXFirst(n.c, p.Dst); f.usable(id, n, d, now, taken) {
		return d
	}
	for _, d := range geom.LinkDirs {
		if f.usable(id, n, d, now, taken) {
			return d
		}
	}
	return -1
}

// usable reports whether output d of node id exists, is unclaimed this
// cycle, and is not killed by a fault.
func (f *Fabric) usable(id int, n *node, d geom.Dir, now int64, taken *[geom.NumLinkDirs]bool) bool {
	if d == geom.Local || n.out[d] == nil || taken[d] {
		return false
	}
	return f.faults == nil || !f.faults.LinkDown(id, d, now)
}

func (f *Fabric) forward(n *node, p *packet.Packet, d geom.Dir, now int64, taken *[geom.NumLinkDirs]bool) {
	taken[d] = true
	// Corruption is modeled at link entry: the flit burned the wire but
	// fails its CRC and never reaches the neighbor.
	if f.faults != nil && f.faults.Corrupt(p, f.mesh.ID(n.c), d, now) {
		f.meter.LinkTraversal(p.Size)
		f.dropOrRetry(p, now)
		return
	}
	p.Hops++
	deflected := !geom.Productive(n.c, p.Dst, d)
	if deflected {
		p.Deflections++
	}
	f.meter.Allocation(1)
	f.meter.CrossbarTraversal(p.Size)
	f.meter.LinkTraversal(p.Size)
	if f.probe != nil {
		f.probe.Traverse(f.mesh.ID(n.c), d, p, p.Size, deflected, now)
	}
	n.out[d].Send(p, now)
}

func (f *Fabric) eject(n *node, p *packet.Packet, now int64) {
	p.EjectedAt = now
	f.meter.CrossbarTraversal(p.Size)
	f.col.Ejected(p)
	f.inFlight--
	if f.sink != nil {
		f.sink(f.mesh.ID(n.c), p, now)
	}
}

// dropOrRetry hands a fault-stricken packet to NI-level recovery:
// bounded source retransmission with backoff, then a counted drop.
func (f *Fabric) dropOrRetry(p *packet.Packet, now int64) {
	if f.recov.TryRetry(p, now) {
		f.col.Retransmitted(p, now)
		return
	}
	f.col.Dropped(p, now)
	f.inFlight--
}

// InFlight returns accepted-but-undelivered packets.
func (f *Fabric) InFlight() int { return f.inFlight }

// Audit verifies that NI queues plus link occupancy account for every
// in-flight packet (bufferless routers hold no state between cycles).
func (f *Fabric) Audit() error {
	n := 0
	for _, nd := range f.nodes {
		n += nd.ni.Backlog()
		for _, l := range nd.out {
			if l != nil {
				n += l.InFlight()
			}
		}
	}
	if f.recov != nil {
		n += f.recov.Queue.Len()
	}
	if n != f.inFlight {
		return fmt.Errorf("bless: %d packets in queues+links, %d in flight", n, f.inFlight)
	}
	return nil
}

var _ network.Fabric = (*Fabric)(nil)
