// Package surf implements the Surf comparator of §5: a SurfNoC-style
// [2] confined-interference network built on buffered VC routers.
//
// Isolation in space comes from dedicating one full VC complement per
// domain at every input port (the 5-ports-×-D-domains buffer growth of
// Fig. 6); isolation in time from wave-gating every output port with
// the same three-scheduler wave schedule Surf-Bless uses, at the VC
// routers' hop delay (Table 1: 4-stage pipeline + link ⇒ P = 5,
// Smax = 2·5·7 = 70 on the 8×8 mesh).  A packet that keeps moving with
// its wave experiences no slot wait; a packet that turns against the
// wave or waits for ejection is buffered in its domain's VC until the
// next slot of its domain — buffered, not deflected, which is why Surf
// degrades more gracefully than Surf-Bless at awkward domain counts
// (Fig. 7(b) vs 7(a)).
//
// Modelling choice (documented in DESIGN.md): input ports and the
// injection port have one bandwidth lane per domain, so cross-domain
// contention cannot arise on the port that feeds the crossbar.  Output
// links, the crossbar columns and ejection remain strictly
// time-multiplexed by the wave schedule.
//
// Observability: the returned engine is the shared wormhole.Engine, so
// SetProbe (per-router/per-link flit heatmaps; see internal/probe)
// works on Surf exactly as on WH.
//
// Fault injection: likewise inherited from wormhole.Engine via
// SetFaults — router freezes and link kills manifest as credit-flow
// blocking (no flit is ever lost), so a permanent fault on a used
// route wedges the network and surfaces as a sim.DegradedError through
// the livelock watchdog; packet-drop events are not modeled for the
// buffered comparators (see wormhole.Engine.SetFaults).
package surf

import (
	"fmt"

	"surfbless/internal/config"
	"surfbless/internal/network"
	"surfbless/internal/power"
	"surfbless/internal/router/wormhole"
	"surfbless/internal/stats"
	"surfbless/internal/wave"
)

// New builds a Surf mesh for cfg.  The VC complement configured in cfg
// (CtrlVCsPerPort/DataVCsPerPort and depths) is replicated per domain;
// wave→domain decoding follows cfg.WaveSets when set, else round-robin.
func New(cfg config.Config, sink network.Sink, col *stats.Collector, meter *power.Meter) (*wormhole.Engine, error) {
	if cfg.Model != config.Surf {
		return nil, fmt.Errorf("surf: config model is %v", cfg.Model)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sched := wave.New(cfg.Mesh(), cfg.HopDelay())
	var dec *wave.Decoder
	if cfg.WaveSets != nil {
		var err error
		if dec, err = wave.FromSets(sched.Smax(), cfg.WaveSets); err != nil {
			return nil, err
		}
	} else {
		dec = wave.RoundRobin(sched.Smax(), cfg.Domains)
	}
	// Every domain must own at least one wave or its traffic never moves.
	for d := 0; d < cfg.Domains; d++ {
		if len(dec.Owned(d)) == 0 {
			return nil, fmt.Errorf("surf: domain %d owns no waves", d)
		}
	}
	return wormhole.New(wormhole.Options{
		Cfg:       cfg,
		VCs:       wormhole.DomainVCs(cfg),
		Key:       wormhole.KeyDomain,
		WaveGated: true,
		Sched:     sched,
		Dec:       dec,
	}, sink, col, meter)
}
