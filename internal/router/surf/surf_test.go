package surf

import (
	"testing"

	"surfbless/internal/config"
	"surfbless/internal/geom"
	"surfbless/internal/packet"
	"surfbless/internal/power"
	"surfbless/internal/stats"
)

func cfg4flit(domains int) config.Config {
	c := config.Default(config.Surf)
	c.Domains = domains
	// The §5.1.2 buffer shape: one 4-flit VC per domain per port.
	c.CtrlVCsPerPort, c.CtrlVCDepth = 0, 0
	c.DataVCsPerPort, c.DataVCDepth = 1, 4
	return c
}

func build(t *testing.T, c config.Config) (*statsAndFab, error) {
	t.Helper()
	col := stats.NewCollector(c.Domains, 0, 0)
	meter := power.NewMeter(c, power.Default45nm())
	s := &statsAndFab{col: col}
	f, err := New(c, func(node int, p *packet.Packet, now int64) {
		s.delivered = append(s.delivered, p)
	}, col, meter)
	s.fab = f
	return s, err
}

type statsAndFab struct {
	fab interface {
		Inject(int, *packet.Packet, int64) bool
		Step(int64)
		InFlight() int
		Audit() error
	}
	col       *stats.Collector
	delivered []*packet.Packet
}

func TestNewValidation(t *testing.T) {
	if _, err := build(t, config.Default(config.WH)); err == nil {
		t.Error("WH config accepted by Surf constructor")
	}
	bad := cfg4flit(2)
	bad.Width = 7 // non-square
	if _, err := build(t, bad); err == nil {
		t.Error("non-square mesh accepted")
	}
	// A domain owning no waves must be rejected.
	sets := cfg4flit(3)
	sets.WaveSets = [][]int{{0, 1}, {2}, nil}
	if _, err := build(t, sets); err == nil {
		t.Error("domain with empty wave set accepted")
	}
}

// Surf's Smax on the default config: 2·5·7 = 70 waves.
func TestSurfHopDelayAndSmax(t *testing.T) {
	c := cfg4flit(2)
	if c.HopDelay() != 5 {
		t.Fatalf("hop delay %d, want 5", c.HopDelay())
	}
	if c.Smax() != 70 {
		t.Fatalf("Smax %d, want 70", c.Smax())
	}
}

// A packet moving steadily south-east surfs: its per-hop latency is
// exactly P with no slot waiting once injected.
func TestSurfingNoSlotWait(t *testing.T) {
	s, err := build(t, cfg4flit(2))
	if err != nil {
		t.Fatal(err)
	}
	mesh := geom.NewMesh(8, 8)
	src, dst := geom.Coord{X: 1, Y: 1}, geom.Coord{X: 6, Y: 1}
	p := packet.New(1, src, dst, 0, packet.Ctrl, 0)
	s.fab.Inject(mesh.ID(src), p, 0)
	now := int64(0)
	for ; now < 300 && p.EjectedAt < 0; now++ {
		s.fab.Step(now)
	}
	if p.EjectedAt < 0 {
		t.Fatal("packet not delivered")
	}
	if got := p.NetworkLatency(); got != int64(5*5) {
		t.Errorf("network latency %d, want 25 (5 hops × P, zero slot wait)", got)
	}
}

// Turning against the wave costs bounded buffering, never deflection:
// hops stay minimal whatever the domain count.
func TestTurningBuffersButNeverDeflects(t *testing.T) {
	for _, domains := range []int{2, 5, 9} {
		s, err := build(t, cfg4flit(domains))
		if err != nil {
			t.Fatal(err)
		}
		mesh := geom.NewMesh(8, 8)
		src, dst := geom.Coord{X: 1, Y: 6}, geom.Coord{X: 6, Y: 1} // east then north
		p := packet.New(1, src, dst, domains-1, packet.Ctrl, 0)
		s.fab.Inject(mesh.ID(src), p, 0)
		for now := int64(0); now < 2000 && p.EjectedAt < 0; now++ {
			s.fab.Step(now)
		}
		if p.EjectedAt < 0 {
			t.Fatalf("D=%d: packet not delivered", domains)
		}
		if p.Deflections != 0 {
			t.Errorf("D=%d: Surf deflected a packet %d times", domains, p.Deflections)
		}
		minLat := int64(mesh.Hops(src, dst) * 5)
		if p.NetworkLatency() < minLat {
			t.Errorf("D=%d: latency %d below physical minimum %d", domains, p.NetworkLatency(), minLat)
		}
		// Slot waits are bounded by ~D per turn/ejection, not unbounded.
		if p.NetworkLatency() > minLat+int64(8*domains)+70 {
			t.Errorf("D=%d: latency %d way above minimum %d — slot waits unbounded?",
				domains, p.NetworkLatency(), minLat)
		}
	}
}

// Stress: all domains, full conservation.
func TestSurfStress(t *testing.T) {
	for _, domains := range []int{2, 4, 6} {
		s, err := build(t, cfg4flit(domains))
		if err != nil {
			t.Fatal(err)
		}
		mesh := geom.NewMesh(8, 8)
		var ids packet.IDSource
		now := int64(0)
		injected := 0
		for cyc := 0; cyc < 300; cyc++ {
			for node := 0; node < mesh.Nodes(); node += 4 {
				src := mesh.CoordOf(node)
				dst := mesh.CoordOf((node*29 + cyc*11 + 3) % mesh.Nodes())
				if dst == src {
					continue
				}
				p := packet.New(ids.Next(), src, dst, (node+cyc)%domains, packet.Ctrl, now)
				if s.fab.Inject(node, p, now) {
					injected++
				}
			}
			s.fab.Step(now)
			now++
		}
		for i := 0; i < 30000 && s.fab.InFlight() > 0; i++ {
			s.fab.Step(now)
			now++
		}
		if s.fab.InFlight() != 0 {
			t.Fatalf("D=%d: %d packets stuck", domains, s.fab.InFlight())
		}
		if len(s.delivered) != injected {
			t.Errorf("D=%d: delivered %d of %d", domains, len(s.delivered), injected)
		}
		if err := s.fab.Audit(); err != nil {
			t.Error(err)
		}
	}
}
