package wormhole

import (
	"testing"

	"surfbless/internal/config"
	"surfbless/internal/geom"
	"surfbless/internal/packet"
	"surfbless/internal/power"
	"surfbless/internal/stats"
)

type harness struct {
	e   *Engine
	col *stats.Collector
	cfg config.Config
	ids packet.IDSource
	got []*packet.Packet
	now int64
}

func newHarness(t *testing.T, cfg config.Config, opt Options) *harness {
	t.Helper()
	h := &harness{cfg: cfg}
	h.col = stats.NewCollector(cfg.Domains, 0, 0)
	meter := power.NewMeter(cfg, power.Default45nm())
	opt.Cfg = cfg
	var err error
	h.e, err = New(opt, func(node int, p *packet.Packet, now int64) {
		h.got = append(h.got, p)
	}, h.col, meter)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func whHarness(t *testing.T) *harness {
	cfg := config.Default(config.WH)
	return newHarness(t, cfg, Options{VCs: SharedVCs(cfg), Key: KeyNone})
}

func (h *harness) pkt(src, dst geom.Coord, class packet.Class) *packet.Packet {
	p := packet.New(h.ids.Next(), src, dst, 0, class, h.now)
	return p
}

func (h *harness) steps(n int) {
	for i := 0; i < n; i++ {
		h.e.Step(h.now)
		h.now++
	}
}

func TestNewValidation(t *testing.T) {
	cfg := config.Default(config.WH)
	col := stats.NewCollector(1, 0, 0)
	meter := power.NewMeter(cfg, power.Default45nm())
	if _, err := New(Options{Cfg: config.Default(config.BLESS), VCs: SharedVCs(cfg)}, nil, col, meter); err == nil {
		t.Error("BLESS config accepted")
	}
	if _, err := New(Options{Cfg: cfg}, nil, col, meter); err == nil {
		t.Error("empty VC list accepted")
	}
	if _, err := New(Options{Cfg: cfg, VCs: []VCSpec{{Depth: 0}}}, nil, col, meter); err == nil {
		t.Error("zero-depth VC accepted")
	}
	if _, err := New(Options{Cfg: cfg, VCs: SharedVCs(cfg), WaveGated: true}, nil, col, meter); err == nil {
		t.Error("wave gating without schedule accepted")
	}
	if _, err := New(Options{Cfg: cfg, VCs: SharedVCs(cfg)}, nil, nil, meter); err == nil {
		t.Error("nil collector accepted")
	}
}

func TestVCLayouts(t *testing.T) {
	cfg := config.Default(config.WH)
	shared := SharedVCs(cfg)
	if len(shared) != 3 {
		t.Fatalf("SharedVCs: %d VCs, want 3 (1 ctrl + 2 data)", len(shared))
	}
	for _, s := range shared {
		if s.Group != -1 {
			t.Error("SharedVCs must be open to any packet")
		}
	}
	if shared[0].Depth != 1 || shared[1].Depth != 5 || shared[2].Depth != 5 {
		t.Errorf("SharedVCs depths = %v", shared)
	}

	vnet := VNetVCs(cfg)
	if vnet[0].Group != 0 || vnet[1].Group != 1 || vnet[2].Group != 2 {
		t.Errorf("VNetVCs groups = %v", vnet)
	}

	sc := config.Default(config.Surf)
	sc.Domains = 4
	dom := DomainVCs(sc)
	if len(dom) != 4*3 {
		t.Fatalf("DomainVCs: %d VCs, want 12", len(dom))
	}
	if dom[0].Group != 0 || dom[3].Group != 1 || dom[11].Group != 3 {
		t.Errorf("DomainVCs groups = %v", dom)
	}
}

// A lone 1-flit packet traverses hops×P cycles (P = 5 for VC routers).
func TestSinglePacketTiming(t *testing.T) {
	h := whHarness(t)
	mesh := h.cfg.Mesh()
	src, dst := geom.Coord{X: 1, Y: 1}, geom.Coord{X: 4, Y: 3}
	p := h.pkt(src, dst, packet.Ctrl)
	h.e.Inject(mesh.ID(src), p, 0)
	h.steps(60)
	if p.EjectedAt < 0 {
		t.Fatal("packet not delivered")
	}
	if p.InjectedAt != 0 {
		t.Errorf("InjectedAt = %d, want 0", p.InjectedAt)
	}
	want := int64(mesh.Hops(src, dst) * h.cfg.HopDelay())
	if p.EjectedAt != want {
		t.Errorf("EjectedAt = %d, want %d (5 hops × P=5)", p.EjectedAt, want)
	}
}

// A 5-flit worm's tail trails its head by 4 cycles: ejection happens at
// hops×P + (size−1).
func TestWormSerialization(t *testing.T) {
	h := whHarness(t)
	mesh := h.cfg.Mesh()
	src, dst := geom.Coord{X: 0, Y: 0}, geom.Coord{X: 2, Y: 0}
	p := h.pkt(src, dst, packet.Data)
	h.e.Inject(mesh.ID(src), p, 0)
	h.steps(60)
	if p.EjectedAt < 0 {
		t.Fatal("worm not delivered")
	}
	want := int64(2*h.cfg.HopDelay() + p.Size - 1)
	if p.EjectedAt != want {
		t.Errorf("EjectedAt = %d, want %d", p.EjectedAt, want)
	}
}

// Self-addressed packets (src == dst) are delivered through the local
// port without entering the mesh.
func TestSelfDelivery(t *testing.T) {
	h := whHarness(t)
	p := h.pkt(geom.Coord{X: 2, Y: 2}, geom.Coord{X: 2, Y: 2}, packet.Data)
	h.e.Inject(h.cfg.Mesh().ID(p.Src), p, 0)
	h.steps(20)
	if p.EjectedAt < 0 {
		t.Fatal("self-addressed packet not delivered")
	}
	if err := h.e.Audit(); err != nil {
		t.Error(err)
	}
}

// KeyVNet mode separates virtual networks: packets must carry a vnet.
func TestVNetModeRequiresVNet(t *testing.T) {
	cfg := config.Default(config.WH)
	h := newHarness(t, cfg, Options{VCs: VNetVCs(cfg), Key: KeyVNet})
	defer func() {
		if recover() == nil {
			t.Error("packet without vnet accepted in KeyVNet mode")
		}
	}()
	h.e.Inject(0, h.pkt(geom.Coord{}, geom.Coord{X: 1, Y: 0}, packet.Ctrl), 0)
}

func TestVNetSeparationDelivers(t *testing.T) {
	cfg := config.Default(config.WH)
	h := newHarness(t, cfg, Options{VCs: VNetVCs(cfg), Key: KeyVNet})
	mesh := cfg.Mesh()
	var ps []*packet.Packet
	for vn := 0; vn < 3; vn++ {
		class := packet.Data
		if vn == 0 {
			class = packet.Ctrl
		}
		p := h.pkt(geom.Coord{X: 0, Y: vn}, geom.Coord{X: 5, Y: vn}, class)
		p.VNet = vn
		ps = append(ps, p)
		h.e.Inject(mesh.ID(p.Src), p, 0)
	}
	h.steps(100)
	for _, p := range ps {
		if p.EjectedAt < 0 {
			t.Errorf("vnet %d packet not delivered", p.VNet)
		}
	}
}

// Head-of-line: a full VC stalls followers, credits meter the flow, and
// everything still drains — the flow-control correctness test.
func TestCreditFlowUnderBurst(t *testing.T) {
	h := whHarness(t)
	mesh := h.cfg.Mesh()
	// 20 data worms from one source through one column.
	var ps []*packet.Packet
	for i := 0; i < 20; i++ {
		p := h.pkt(geom.Coord{X: 0, Y: 3}, geom.Coord{X: 7, Y: 3}, packet.Data)
		ps = append(ps, p)
		h.e.Inject(mesh.ID(p.Src), p, 0)
	}
	h.steps(1200)
	for i, p := range ps {
		if p.EjectedAt < 0 {
			t.Fatalf("worm %d never delivered", i)
		}
	}
	// Worms share one path: ejections are strictly ordered.
	for i := 1; i < len(ps); i++ {
		if ps[i].EjectedAt <= ps[i-1].EjectedAt {
			t.Errorf("worm %d ejected at %d, not after worm %d (%d)",
				i, ps[i].EjectedAt, i-1, ps[i-1].EjectedAt)
		}
	}
	if err := h.e.Audit(); err != nil {
		t.Error(err)
	}
}

// Saturation stress: everything offered is eventually delivered, flit
// conservation holds throughout.
func TestStressConservation(t *testing.T) {
	h := whHarness(t)
	mesh := h.cfg.Mesh()
	injected := 0
	for cyc := 0; cyc < 300; cyc++ {
		for node := 0; node < mesh.Nodes(); node += 2 {
			src := mesh.CoordOf(node)
			dst := mesh.CoordOf((node*13 + cyc*7 + 5) % mesh.Nodes())
			class := packet.Ctrl
			if (node+cyc)%3 == 0 {
				class = packet.Data
			}
			if h.e.Inject(node, h.pkt(src, dst, class), h.now) {
				injected++
			}
		}
		h.e.Step(h.now)
		h.now++
		if cyc%50 == 0 {
			if err := h.e.Audit(); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 30000 && h.e.InFlight() > 0; i++ {
		h.e.Step(h.now)
		h.now++
	}
	if h.e.InFlight() != 0 {
		t.Fatalf("%d packets never delivered", h.e.InFlight())
	}
	if len(h.got) != injected {
		t.Errorf("delivered %d of %d", len(h.got), injected)
	}
	if err := h.e.Audit(); err != nil {
		t.Error(err)
	}
	if err := h.col.CheckConservation(0); err != nil {
		t.Error(err)
	}
}

func TestBackpressure(t *testing.T) {
	h := whHarness(t)
	accepted := 0
	for i := 0; i < h.cfg.InjectionQueueCap+4; i++ {
		if h.e.Inject(0, h.pkt(geom.Coord{X: 0, Y: 0}, geom.Coord{X: 7, Y: 7}, packet.Ctrl), 0) {
			accepted++
		}
	}
	if accepted != h.cfg.InjectionQueueCap {
		t.Errorf("accepted %d, want %d", accepted, h.cfg.InjectionQueueCap)
	}
}

func TestStepMonotonic(t *testing.T) {
	h := whHarness(t)
	h.e.Step(0)
	defer func() {
		if recover() == nil {
			t.Error("repeated Step must panic")
		}
	}()
	h.e.Step(0)
}
