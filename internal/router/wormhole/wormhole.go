// Package wormhole implements the flit-level virtual-channel router
// engine used by both VC-based comparators of §5:
//
//   - WH — the baseline wormhole network (4-stage pipeline, X-Y DOR,
//     credit-based flow control, Table-1 VC complement), and
//   - Surf — the SurfNoC-style confined-interference network [2],
//     realized by package surf as this engine with per-domain VCs and
//     wave-gated output ports (see Options.WaveGated).
//
// Modelling granularity matches Garnet: packets move flit by flit;
// a head flit performs route computation and VC allocation, every flit
// competes in switch allocation and consumes a credit, and the tail
// flit releases the VC.  The 4-stage router pipeline plus link
// traversal are folded into the hop delay of the flit delay lines
// (Table 1: P = 5 for the VC networks), so a flit that never waits in a
// VC experiences exactly P cycles per hop — which is what lets Surf
// packets "surf" their waves with zero slot-waiting in the steady
// direction.
//
// State layout is structure-of-arrays (DESIGN.md §17): each router
// keeps its VC FIFOs in one flat ring-buffer backing, credits and VC
// ownership in dense arrays indexed by (link dir, VC), and the
// per-cycle scan sets — which VCs hold a routable head, which VCs want
// each output — as bitmasks.  Allocation and switch arbitration then
// walk a handful of mask words per router instead of every VC struct,
// while visiting candidates in exactly the (dir, VC) order of the
// reference implementation, so arbitration outcomes are bit-identical.
//
// Stepping optionally shards across an internal/shard worker pool
// (SetShards): receive and allocate/traverse become two barrier-
// separated phases over contiguous node tiles, with meters, lifecycle
// events and global counters accumulated per tile and replayed in tile
// order — results stay bit-identical to serial stepping.
package wormhole

import (
	"fmt"
	"math/bits"

	"surfbless/internal/config"
	"surfbless/internal/fault"
	"surfbless/internal/geom"
	"surfbless/internal/link"
	"surfbless/internal/network"
	"surfbless/internal/packet"
	"surfbless/internal/power"
	"surfbless/internal/probe"
	"surfbless/internal/router"
	"surfbless/internal/shard"
	"surfbless/internal/stats"
	"surfbless/internal/wave"
)

// VCSpec describes one virtual channel of every input port.
type VCSpec struct {
	Depth int // buffer depth in flits
	Group int // match key (VNet or domain); -1 admits any packet
}

// Key selects what packet field VC groups and NI queues match against.
type Key int

// Matching policies.
const (
	KeyNone   Key = iota // any packet may use any VC (synthetic WH)
	KeyVNet              // VC group must equal the packet's virtual network (protocol WH)
	KeyDomain            // VC group must equal the packet's domain (Surf)
)

// Options configures one engine instance.
type Options struct {
	Cfg config.Config
	VCs []VCSpec // the VC complement of every non-local input port
	Key Key

	// WaveGated enables Surf's TDM: a flit may cross output port o at
	// cycle T only when the wave owning o at T decodes to the flit's
	// domain.  Requires Sched and Dec.
	WaveGated bool
	Sched     *wave.Schedule
	Dec       *wave.Decoder
}

// SharedVCs returns the Table-1 VC complement with every VC open to
// every packet (the synthetic-traffic WH configuration).
func SharedVCs(cfg config.Config) []VCSpec {
	return vcComplement(cfg, -1, -1)
}

// VNetVCs returns the Table-1 complement with control VCs bound to the
// control virtual networks and data VCs to the data virtual networks
// (vnet 0 … ctrl first, then data), the protocol WH configuration.
func VNetVCs(cfg config.Config) []VCSpec {
	var specs []VCSpec
	g := 0
	for i := 0; i < cfg.CtrlVCsPerPort; i++ {
		specs = append(specs, VCSpec{Depth: cfg.CtrlVCDepth, Group: g})
		g++
	}
	for i := 0; i < cfg.DataVCsPerPort; i++ {
		specs = append(specs, VCSpec{Depth: cfg.DataVCDepth, Group: g})
		g++
	}
	return specs
}

// DomainVCs replicates the configured VC complement once per domain,
// binding each copy to its domain — Surf's buffer organization, whose
// 5-ports-×-D-domains growth is the static-energy story of Fig. 6.
func DomainVCs(cfg config.Config) []VCSpec {
	var specs []VCSpec
	for d := 0; d < cfg.Domains; d++ {
		specs = append(specs, vcComplement(cfg, d, d)...)
	}
	return specs
}

func vcComplement(cfg config.Config, ctrlGroup, dataGroup int) []VCSpec {
	var specs []VCSpec
	for i := 0; i < cfg.CtrlVCsPerPort; i++ {
		specs = append(specs, VCSpec{Depth: cfg.CtrlVCDepth, Group: ctrlGroup})
	}
	for i := 0; i < cfg.DataVCsPerPort; i++ {
		specs = append(specs, VCSpec{Depth: cfg.DataVCDepth, Group: dataGroup})
	}
	return specs
}

type flitMsg struct {
	f  packet.Flit
	vc int
}

type creditMsg struct {
	vc int
}

type inPort struct {
	flitsIn   *link.Line[flitMsg]   // nil for absent ports
	creditOut *link.Line[creditMsg] // credits back upstream
}

type outPort struct {
	flitsOut *link.Line[flitMsg]   // nil for Local and absent ports
	creditIn *link.Line[creditMsg] // credits from downstream
}

type injState struct {
	active bool
	outDir geom.Dir
	outVC  int
	sent   int
}

// node is one router.  All per-VC state lives in flat arrays indexed
// pv = dir·V + vc over the four link dirs (Local has no input VCs):
//
//	fifo     one ring-buffer backing for all input VC FIFOs; the FIFO
//	         of (d, v) occupies fifo[d·sumDepth+off[v] : … + depth[v]]
//	         with head/cnt cursors in head[pv]/cnt[pv]
//	outVC    downstream VC granted to the worm holding input VC pv
//	credits  free downstream buffer slots, indexed outDir·V + vc
//	owner    downstream VC holder (nil = allocatable), same index
//
// The scan sets are bitmasks with one bit per input VC, laid out
// dir-major ((V+63)/64 words per dir, ascending word order = ascending
// (dir, VC) order): act marks VCs held by a routed worm, occ marks
// non-empty FIFOs, and want has one block per output dir marking the
// active VCs routed to it.  occ &^ act is exactly the allocation scan;
// want[o] & occ is exactly output o's switch-allocation candidates.
type node struct {
	c  geom.Coord
	id int
	ni *router.NI

	inj       []injState
	injActive int // live injState count; skips the arbitration fallback scan

	in  [geom.NumDirs]inPort // Local unused (injection is the NI)
	out [geom.NumDirs]outPort

	fifo    []packet.Flit
	head    []int32
	cnt     []int32
	outVC   []int32
	credits []int32
	owner   []*packet.Packet

	act  []uint64
	occ  []uint64
	want []uint64 // geom.NumDirs blocks of wper words

	// Bandwidth-lane consumption, stamped with the cycle instead of
	// cleared: lane l of port d is used this cycle iff
	// inUsed[d·lanes+l] == now, so no per-cycle reset loop runs.
	inUsed  []int64 // [port·lanes+lane]: input bandwidth consumed
	injUsed []int64 // [lane]: injection bandwidth consumed
}

// lifeEvt is one deferred packet lifecycle event (sharded stepping):
// the collector call and sink hand-off a worker recorded for replay at
// the cycle barrier, in tile order — the serial call order.
type lifeEvt struct {
	node  int32
	eject bool
	p     *packet.Packet
}

// tileFX is one stepping context: per-cycle scratch plus the effect
// channel.  Serial stepping uses the engine's single direct context,
// which applies meter/collector/counter effects inline; each shard
// tile owns a deferred context that accumulates them for replay at the
// barrier.  Deferral is exact: the meter is five linear counters, the
// collector consumes packet stamps set before the event is recorded,
// and replay preserves the serial (node-ascending) call order.
type tileFX struct {
	direct bool

	// deferred effect accumulators (unused when direct)
	bufW, bufR, xbar, alloc, lnk int64
	flitsIn, flitsOut            int64
	inFlight                     int
	evts                         []lifeEvt

	// per-cycle scratch, engine/tile-owned and reused across cycles
	// (DESIGN.md §12)
	credBuf []creditMsg
	flitBuf []flitMsg
	reqs    []request
	domReqs [][]request // per-domain ejection candidates (lanes > 1 only)
	domList []int       // domains present this arbitration, in arrival order
}

// Engine is a mesh of VC routers.  It implements network.Fabric.
type Engine struct {
	opt   Options
	mesh  geom.Mesh
	nodes []*node
	sink  network.Sink
	col   *stats.Collector
	meter *power.Meter
	probe *probe.Probe // nil = no spatial observation

	faults *fault.Injector // nil = fault-free (hot path untouched)

	lanes    int // input-port bandwidth lanes (1, or #domains when wave-gated)
	inFlight int
	flitsIn  int64 // flits injected into the network
	flitsOut int64 // flits ejected
	lastStep int64

	// SoA geometry shared by every node.
	nvc      int     // V: VCs per input port
	words    int     // mask words per dir, (V+63)/64
	wper     int     // mask words per scan set, NumLinkDirs·words
	sumDepth int     // flit slots per input port
	depth    []int32 // per-VC ring capacity
	vcOff    []int   // per-VC slot offset within a port's backing

	fx0 tileFX // serial stepping context (direct effects)

	// Sharded stepping (nil pool = serial).
	pool   *shard.Pool
	tiles  int
	fxs    []tileFX
	shNow  int64
	recvFn func(int)
	moveFn func(int)
}

// New builds the engine.  The caller provides the VC layout and gating;
// use package surf for the Surf configuration or SharedVCs/VNetVCs here
// for WH.
func New(opt Options, sink network.Sink, col *stats.Collector, meter *power.Meter) (*Engine, error) {
	cfg := opt.Cfg
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Model != config.WH && cfg.Model != config.Surf {
		return nil, fmt.Errorf("wormhole: config model is %v", cfg.Model)
	}
	if col == nil || meter == nil {
		return nil, fmt.Errorf("wormhole: collector and meter are required")
	}
	if len(opt.VCs) == 0 {
		return nil, fmt.Errorf("wormhole: no VCs specified")
	}
	for i, s := range opt.VCs {
		if s.Depth < 1 {
			return nil, fmt.Errorf("wormhole: VC %d depth %d", i, s.Depth)
		}
	}
	if opt.WaveGated && (opt.Sched == nil || opt.Dec == nil) {
		return nil, fmt.Errorf("wormhole: wave gating requires a schedule and decoder")
	}

	e := &Engine{opt: opt, mesh: cfg.Mesh(), sink: sink, col: col, meter: meter, lanes: 1, lastStep: -1}
	e.fx0.direct = true
	if opt.WaveGated {
		// Per-domain input bandwidth removes cross-domain contention at
		// input ports; output TDM already bounds aggregate switch use.
		// See DESIGN.md §2 (modelling conventions for Surf).
		e.lanes = cfg.Domains
	}
	if e.lanes > 1 {
		e.fx0.domReqs = make([][]request, cfg.Domains)
	}
	e.nvc = len(opt.VCs)
	e.words = (e.nvc + 63) / 64
	e.wper = geom.NumLinkDirs * e.words
	e.depth = make([]int32, e.nvc)
	e.vcOff = make([]int, e.nvc)
	for v, s := range opt.VCs {
		e.depth[v] = int32(s.Depth)
		e.vcOff[v] = e.sumDepth
		e.sumDepth += s.Depth
	}
	e.nodes = make([]*node, e.mesh.Nodes())
	for id := range e.nodes {
		n := &node{
			c:       e.mesh.CoordOf(id),
			id:      id,
			ni:      router.NewNI(cfg.Domains, cfg.InjectionQueueCap),
			inj:     make([]injState, cfg.Domains),
			fifo:    make([]packet.Flit, geom.NumLinkDirs*e.sumDepth),
			head:    make([]int32, geom.NumLinkDirs*e.nvc),
			cnt:     make([]int32, geom.NumLinkDirs*e.nvc),
			outVC:   make([]int32, geom.NumLinkDirs*e.nvc),
			credits: make([]int32, geom.NumLinkDirs*e.nvc),
			owner:   make([]*packet.Packet, geom.NumLinkDirs*e.nvc),
			act:     make([]uint64, e.wper),
			occ:     make([]uint64, e.wper),
			want:    make([]uint64, geom.NumDirs*e.wper),
		}
		n.inUsed = make([]int64, geom.NumDirs*e.lanes)
		n.injUsed = make([]int64, e.lanes)
		for i := range n.inUsed {
			n.inUsed[i] = -1 // cycle 0 must not read as "used"
		}
		for i := range n.injUsed {
			n.injUsed[i] = -1
		}
		e.nodes[id] = n
	}
	// Wire flit and credit lines, and initialize per-output credit state
	// mirroring the downstream VC layout.
	hop := cfg.HopDelay()
	for _, n := range e.nodes {
		for _, d := range geom.LinkDirs {
			if !e.mesh.HasNeighbor(n.c, d) {
				continue
			}
			peer := e.nodes[e.mesh.ID(n.c.Add(d))]
			fl := link.New[flitMsg](hop)
			cl := link.New[creditMsg](1)
			n.out[d].flitsOut = fl
			n.out[d].creditIn = cl
			for v, s := range opt.VCs {
				n.credits[int(d)*e.nvc+v] = int32(s.Depth)
			}
			peer.in[d.Opposite()].flitsIn = fl
			peer.in[d.Opposite()].creditOut = cl
		}
	}
	return e, nil
}

// SetProbe attaches a hot-path observer recording per-router and
// per-link flit traversals (nil to remove).  VC routers never deflect,
// so the probe's deflection heatmap stays zero for WH and Surf.
func (e *Engine) SetProbe(p *probe.Probe) { e.probe = p }

// SetFaults arms a fault injector (nil to disarm).  A buffered
// credit-flow network cannot lose flits, so faults manifest as
// blocking, not drops: a frozen router holds its buffers and grants
// nothing (credit starvation then stalls its neighbors), and a down
// link simply wins no switch allocation.  Packet-drop (corruption)
// events are not modeled for WH/Surf — retransmitting part of a worm
// would need an end-to-end protocol the paper's comparators don't
// have; a permanent fault on a used route therefore wedges the network
// by design, which the sim-level watchdog converts into a
// DegradedError.  While an injector is armed, stepping stays serial
// even if shards are configured (freeze/link-down checks are ordered
// against the serial node walk).
func (e *Engine) SetFaults(inj *fault.Injector) { e.faults = inj }

// SetShards partitions stepping across n contiguous node tiles driven
// by a persistent worker pool (n ≤ 1 restores serial stepping).
// Results are bit-identical to serial stepping — see DESIGN.md §17 for
// the two-phase boundary-exchange argument.  Call StopShards (sim.Run
// does) to release the pool's goroutines.
func (e *Engine) SetShards(n int) error {
	if n > len(e.nodes) {
		n = len(e.nodes)
	}
	e.StopShards()
	if n <= 1 {
		return nil
	}
	e.tiles = n
	e.fxs = make([]tileFX, n)
	if e.lanes > 1 {
		for i := range e.fxs {
			e.fxs[i].domReqs = make([][]request, e.opt.Cfg.Domains)
		}
	}
	e.pool = shard.NewPool(n)
	e.recvFn = e.recvTile
	e.moveFn = e.moveTile
	return nil
}

// StopShards releases the sharding worker pool and returns the engine
// to serial stepping.
func (e *Engine) StopShards() {
	if e.pool != nil {
		e.pool.Close()
		e.pool = nil
	}
	e.tiles = 0
	e.fxs = nil
	e.recvFn, e.moveFn = nil, nil
}

// key returns the packet field VC groups match against.
func (e *Engine) key(p *packet.Packet) int {
	switch e.opt.Key {
	case KeyVNet:
		return p.VNet
	case KeyDomain:
		return p.Domain
	default:
		return -1
	}
}

func (e *Engine) vcAdmits(spec VCSpec, p *packet.Packet) bool {
	return spec.Group < 0 || e.opt.Key == KeyNone || spec.Group == e.key(p)
}

// gate reports whether a flit of p may cross output o of router c at
// cycle now (always true unless wave-gated).  The Local (ejection)
// port is never gated: the NI's per-domain sinks are not a shared mesh
// resource, and arbitrateOutput gives Local one grant lane per domain,
// so ungated ejection cannot couple domains.
func (e *Engine) gate(c geom.Coord, o geom.Dir, p *packet.Packet, now int64) bool {
	if !e.opt.WaveGated || o == geom.Local {
		return true
	}
	w := e.opt.Sched.OutputWave(c, o, now)
	return e.opt.Dec.Domain(w) == p.Domain
}

// lane returns the input-bandwidth lane a packet uses at an input port.
func (e *Engine) lane(p *packet.Packet) int {
	if e.lanes == 1 {
		return 0
	}
	return p.Domain
}

// Inject offers p to the node's NI.
func (e *Engine) Inject(nodeID int, p *packet.Packet, now int64) bool {
	if p.Domain < 0 || p.Domain >= e.opt.Cfg.Domains {
		panic(fmt.Sprintf("wormhole: %v has domain outside [0,%d)", p, e.opt.Cfg.Domains))
	}
	if e.opt.Key == KeyVNet && p.VNet < 0 {
		panic(fmt.Sprintf("wormhole: %v has no virtual network in KeyVNet mode", p))
	}
	n := e.nodes[nodeID]
	if !n.ni.Offer(p) {
		e.col.Refused(p.Domain, now)
		return false
	}
	e.col.Created(p)
	e.meter.BufferWrite(p.Size)
	e.inFlight++
	return true
}

// Step advances the network by one cycle.
func (e *Engine) Step(now int64) {
	if now <= e.lastStep {
		//nocvet:alloc panic-path formatting on a falsified invariant; runs at most once, while dying
		panic(fmt.Sprintf("wormhole: Step(%d) after Step(%d)", now, e.lastStep))
	}
	e.lastStep = now
	if e.pool != nil && e.faults == nil {
		e.stepSharded(now)
		return
	}
	fx := &e.fx0
	for _, n := range e.nodes {
		e.receive(n, now, fx)
	}
	for id, n := range e.nodes {
		// A frozen router still receives (upstream credits bound what can
		// arrive) but allocates and grants nothing until it thaws.
		if e.faults != nil && e.faults.Frozen(id, now) {
			continue
		}
		e.allocate(n, now, fx)
		e.switchTraversal(n, now, fx)
	}
}

// stepSharded is Step's two-phase tiled schedule: every tile drains
// its inbound lines (phase R), barrier, every tile allocates and
// traverses (phase F, sending on outbound lines), barrier, then the
// tiles' deferred effects replay in tile order.  Each link line has
// one reader (phase R) and one writer (phase F) and ≥1 cycle of delay,
// so no phase observes a same-cycle write and the result is
// bit-identical to the serial walk.
func (e *Engine) stepSharded(now int64) {
	e.shNow = now
	e.pool.Run(e.tiles, e.recvFn)
	e.pool.Run(e.tiles, e.moveFn)
	for t := range e.fxs {
		e.applyFX(&e.fxs[t], now)
	}
	// Drain the probe's per-router ring segments at the barrier, every
	// cycle: workers only ever append to their own tiles' segments, and
	// a cycle adds at most one event per output port — far below the
	// minimum segment capacity — so the flush-on-full path (which folds
	// into shared state) can never run inside a worker.
	if e.probe != nil {
		e.probe.Flush()
	}
}

// recvTile drains one tile's inbound link lines into router FIFOs.
//
//shard:phase(receive)
func (e *Engine) recvTile(t int) {
	lo, hi := shard.Range(len(e.nodes), e.tiles, t)
	fx := &e.fxs[t]
	for _, n := range e.nodes[lo:hi] {
		e.receive(n, e.shNow, fx)
	}
}

// moveTile allocates, switches, and forwards one tile's routers.
//
//shard:phase(resolve)
func (e *Engine) moveTile(t int) {
	lo, hi := shard.Range(len(e.nodes), e.tiles, t)
	fx := &e.fxs[t]
	for _, n := range e.nodes[lo:hi] {
		e.allocate(n, e.shNow, fx)
		e.switchTraversal(n, e.shNow, fx)
	}
}

// applyFX merges one tile's deferred effects: meter counters, global
// flit/packet accounting, then the lifecycle replay (collector calls
// and sink hand-offs in recorded order — tile order equals the serial
// node order, so observers see the exact serial event sequence).
//
//shard:phase(effects)
func (e *Engine) applyFX(fx *tileFX, now int64) {
	e.meter.BufferWrite(int(fx.bufW))
	e.meter.BufferRead(int(fx.bufR))
	e.meter.CrossbarTraversal(int(fx.xbar))
	e.meter.Allocation(int(fx.alloc))
	e.meter.LinkTraversal(int(fx.lnk))
	fx.bufW, fx.bufR, fx.xbar, fx.alloc, fx.lnk = 0, 0, 0, 0, 0
	e.flitsIn += fx.flitsIn
	e.flitsOut += fx.flitsOut
	e.inFlight += fx.inFlight
	fx.flitsIn, fx.flitsOut, fx.inFlight = 0, 0, 0
	for i := range fx.evts {
		ev := &fx.evts[i]
		if ev.eject {
			e.col.Ejected(ev.p)
			if e.sink != nil {
				e.sink(int(ev.node), ev.p, now)
			}
		} else {
			e.col.Injected(ev.p)
		}
	}
	fx.evts = fx.evts[:0]
}

// receive drains credit and flit lines into router state.
func (e *Engine) receive(n *node, now int64, fx *tileFX) {
	for _, d := range geom.LinkDirs {
		if cl := n.out[d].creditIn; cl != nil && !cl.Idle() {
			fx.credBuf = cl.RecvInto(now, fx.credBuf[:0])
			for _, m := range fx.credBuf {
				cr := &n.credits[int(d)*e.nvc+m.vc]
				*cr++
				if *cr > e.depth[m.vc] {
					//nocvet:alloc panic-path formatting on a falsified invariant; runs at most once, while dying
					panic(fmt.Sprintf("wormhole: credit overflow at %v/%v vc %d", n.c, d, m.vc))
				}
			}
		}
		if fl := n.in[d].flitsIn; fl != nil && !fl.Idle() {
			fx.flitBuf = fl.RecvInto(now, fx.flitBuf[:0])
			for _, m := range fx.flitBuf {
				pv := int(d)*e.nvc + m.vc
				dep := e.depth[m.vc]
				if n.cnt[pv] >= dep {
					//nocvet:alloc panic-path formatting on a falsified invariant; runs at most once, while dying
					panic(fmt.Sprintf("wormhole: buffer overflow at %v/%v vc %d", n.c, d, m.vc))
				}
				slot := int(n.head[pv]) + int(n.cnt[pv])
				if slot >= int(dep) {
					slot -= int(dep)
				}
				n.fifo[int(d)*e.sumDepth+e.vcOff[m.vc]+slot] = m.f
				n.cnt[pv]++
				n.occ[int(d)*e.words+m.vc>>6] |= 1 << uint(m.vc&63)
				if fx.direct {
					e.meter.BufferWrite(1)
				} else {
					fx.bufW++
				}
			}
		}
	}
}

// vcHead returns the flit at the front of input VC pv.
func (e *Engine) vcHead(n *node, d geom.Dir, v int) packet.Flit {
	pv := int(d)*e.nvc + v
	return n.fifo[int(d)*e.sumDepth+e.vcOff[v]+int(n.head[pv])]
}

// allocate performs route computation and downstream-VC allocation for
// every head flit at the front of an idle VC, and for NI head packets.
// The scan walks occ &^ act — exactly the idle non-empty VCs — in
// ascending (dir, VC) order, matching the reference nested loop.
func (e *Engine) allocate(n *node, now int64, fx *tileFX) {
	for wi := 0; wi < e.wper; wi++ {
		m := n.occ[wi] &^ n.act[wi]
		for m != 0 {
			b := bits.TrailingZeros64(m)
			m &= m - 1
			d := geom.Dir(wi / e.words)
			v := (wi%e.words)*64 + b
			head := e.vcHead(n, d, v)
			if !head.Head() {
				//nocvet:alloc panic-path formatting on a falsified invariant; runs at most once, while dying
				panic(fmt.Sprintf("wormhole: body flit of %v at idle VC head (%v/%v vc %d)", head.Pkt, n.c, d, v))
			}
			if o, ovc, ok := e.routeClaim(n, head.Pkt, fx); ok {
				pv := int(d)*e.nvc + v
				bit := uint64(1) << uint(v&63)
				n.act[wi] |= bit
				n.want[int(o)*e.wper+wi] |= bit
				n.outVC[pv] = int32(ovc)
			}
		}
	}
	for dom := range n.inj {
		st := &n.inj[dom]
		if st.active {
			continue
		}
		p := n.ni.Head(dom)
		if p == nil {
			continue
		}
		st.sent = 0
		if o, ovc, ok := e.routeClaim(n, p, fx); ok {
			st.active, st.outDir, st.outVC = true, o, ovc
			n.injActive++
		}
	}
}

// routeClaim routes p and claims a downstream VC; on success it
// returns the output dir and downstream VC (-1 for Local).
func (e *Engine) routeClaim(n *node, p *packet.Packet, fx *tileFX) (geom.Dir, int, bool) {
	d := geom.XYFirst(n.c, p.Dst)
	if d == geom.Local {
		if fx.direct {
			e.meter.Allocation(1)
		} else {
			fx.alloc++
		}
		return geom.Local, -1, true
	}
	if n.out[d].flitsOut == nil {
		//nocvet:alloc panic-path formatting on a falsified invariant; runs at most once, while dying
		panic(fmt.Sprintf("wormhole: X-Y route of %v leaves the mesh at %v", p, n.c))
	}
	// Prefer a VC deep enough to hold the whole packet — parking a
	// 5-flit worm in a 1-flit control VC would throttle it to one flit
	// per credit round-trip.  Fall back to any admitting VC.
	base := int(d) * e.nvc
	pick := -1
	for v, s := range e.opt.VCs {
		if n.owner[base+v] != nil || !e.vcAdmits(s, p) {
			continue
		}
		if s.Depth >= p.Size {
			pick = v
			break
		}
		if pick < 0 {
			pick = v
		}
	}
	if pick < 0 {
		return 0, 0, false
	}
	n.owner[base+pick] = p
	if fx.direct {
		e.meter.Allocation(1)
	} else {
		fx.alloc++
	}
	return d, pick, true
}

// switchTraversal arbitrates each output port and moves winning flits.
func (e *Engine) switchTraversal(n *node, now int64, fx *tileFX) {
	// Idle fast path: with every input FIFO empty there are no VC
	// candidates (arbitration needs want ∧ occ), and with no active
	// injection worm there are no NI candidates either — nothing can be
	// granted, so skip the per-output scans entirely.
	occAny := uint64(0)
	for _, w := range n.occ {
		occAny |= w
	}
	if occAny == 0 && n.injActive == 0 {
		return
	}

	for _, o := range geom.OutputDirs {
		if o != geom.Local && n.out[o].flitsOut == nil {
			continue
		}
		// A killed output link wins no allocation: flits wait in their
		// VCs and credit backpressure spreads the stall upstream.
		if o != geom.Local && e.faults != nil && e.faults.LinkDown(n.id, o, now) {
			continue
		}
		e.arbitrateOutput(n, o, now, fx)
	}
}

// request is one switch-allocation candidate.
type request struct {
	fromInj bool
	port    geom.Dir // input port (ignored for injection)
	vc      int      // input VC index (or NI domain for injection)
}

func (e *Engine) arbitrateOutput(n *node, o geom.Dir, now int64, fx *tileFX) {
	reqs := fx.reqs[:0]
	base := int(o) * e.wper
	for wi := 0; wi < e.wper; wi++ {
		m := n.want[base+wi] & n.occ[wi]
		for m != 0 {
			b := bits.TrailingZeros64(m)
			m &= m - 1
			d := geom.Dir(wi / e.words)
			v := (wi%e.words)*64 + b
			p := e.vcHead(n, d, v).Pkt
			if n.inUsed[int(d)*e.lanes+e.lane(p)] == now || !e.gate(n.c, o, p, now) {
				continue
			}
			if o != geom.Local && n.credits[int(o)*e.nvc+int(n.outVC[int(d)*e.nvc+v])] == 0 {
				continue
			}
			reqs = append(reqs, request{port: d, vc: v})
		}
	}
	// In-network flits outrank injection (injection has the lowest
	// priority); consider NI candidates only when no VC wants o.
	if len(reqs) == 0 && n.injActive > 0 {
		for dom := range n.inj {
			st := &n.inj[dom]
			if !st.active || st.outDir != o {
				continue
			}
			p := n.ni.Head(dom)
			if p == nil {
				//nocvet:alloc panic-path formatting on a falsified invariant; runs at most once, while dying
				panic(fmt.Sprintf("wormhole: injection state active with empty queue (%v dom %d)", n.c, dom))
			}
			if n.injUsed[e.lane(p)] == now || !e.gate(n.c, o, p, now) {
				continue
			}
			if o != geom.Local && n.credits[int(o)*e.nvc+st.outVC] == 0 {
				continue
			}
			reqs = append(reqs, request{fromInj: true, vc: dom})
		}
	}
	fx.reqs = reqs // hand the (possibly grown) scratch back to the context
	if len(reqs) == 0 {
		return
	}
	if o == geom.Local && e.lanes > 1 {
		// Ungated ejection with one grant lane per domain: pick at most
		// one flit per domain, rotating within each domain's candidates
		// so the choice never depends on other domains' presence.  The
		// per-domain buckets are pre-sized scratch (a map here would
		// allocate on every ejection-contended cycle).
		doms := fx.domList[:0]
		for _, r := range reqs {
			d := e.reqPacket(n, r).Domain
			if len(fx.domReqs[d]) == 0 {
				doms = append(doms, d)
			}
			fx.domReqs[d] = append(fx.domReqs[d], r)
		}
		fx.domList = doms
		for _, d := range doms {
			cand := fx.domReqs[d]
			e.grant(n, o, cand[int(now%int64(len(cand)))], now, fx)
			fx.domReqs[d] = cand[:0]
		}
		return
	}
	// One grant per output per cycle, rotating priority for fairness.
	// Under wave gating all candidates belong to the wave's one domain,
	// so the shared rotation cannot couple domains.
	e.grant(n, o, reqs[int(now%int64(len(reqs)))], now, fx)
}

// reqPacket returns the packet a request would move.
func (e *Engine) reqPacket(n *node, r request) *packet.Packet {
	if r.fromInj {
		return n.ni.Head(r.vc)
	}
	return e.vcHead(n, r.port, r.vc).Pkt
}

// grant moves one flit of request r through output o.
func (e *Engine) grant(n *node, o geom.Dir, r request, now int64, fx *tileFX) {
	var f packet.Flit
	var outVC int
	if r.fromInj {
		st := &n.inj[r.vc]
		p := n.ni.Head(r.vc)
		f = packet.Flit{Pkt: p, Seq: st.sent}
		outVC = st.outVC
		if f.Head() {
			p.InjectedAt = now
			if fx.direct {
				e.col.Injected(p)
			} else {
				fx.evts = append(fx.evts, lifeEvt{node: int32(n.id), p: p})
			}
		}
		st.sent++
		if fx.direct {
			e.meter.BufferRead(1)
			e.flitsIn++
		} else {
			fx.bufR++
			fx.flitsIn++
		}
		n.injUsed[e.lane(p)] = now
		if f.Tail() {
			n.ni.Pop(r.vc)
			st.active = false
			n.injActive--
		}
	} else {
		pv := int(r.port)*e.nvc + r.vc
		dep := e.depth[r.vc]
		slot := int(r.port)*e.sumDepth + e.vcOff[r.vc] + int(n.head[pv])
		f = n.fifo[slot]
		outVC = int(n.outVC[pv])
		n.fifo[slot] = packet.Flit{} // unpin the forwarded flit's packet
		h := n.head[pv] + 1
		if h == dep {
			h = 0
		}
		n.head[pv] = h
		n.cnt[pv]--
		wi := int(r.port)*e.words + r.vc>>6
		bit := uint64(1) << uint(r.vc&63)
		if n.cnt[pv] == 0 {
			n.occ[wi] &^= bit
		}
		if fx.direct {
			e.meter.BufferRead(1)
		} else {
			fx.bufR++
		}
		n.in[r.port].creditOut.Send(creditMsg{vc: r.vc}, now)
		n.inUsed[int(r.port)*e.lanes+e.lane(f.Pkt)] = now
		if f.Tail() {
			n.act[wi] &^= bit
			n.want[int(o)*e.wper+wi] &^= bit
		}
	}
	if fx.direct {
		e.meter.CrossbarTraversal(1)
	} else {
		fx.xbar++
	}

	if o == geom.Local {
		if fx.direct {
			e.flitsOut++
		} else {
			fx.flitsOut++
		}
		if f.Tail() {
			p := f.Pkt
			p.EjectedAt = now
			p.Hops = e.mesh.Hops(p.Src, p.Dst)
			if fx.direct {
				e.col.Ejected(p)
				e.inFlight--
				if e.sink != nil {
					e.sink(n.id, p, now)
				}
			} else {
				fx.inFlight--
				fx.evts = append(fx.evts, lifeEvt{node: int32(n.id), eject: true, p: p})
			}
		}
		return
	}

	n.credits[int(o)*e.nvc+outVC]--
	if fx.direct {
		e.meter.LinkTraversal(1)
	} else {
		fx.lnk++
	}
	if e.probe != nil {
		e.probe.Traverse(n.id, o, f.Pkt, 1, false, now)
	}
	n.out[o].flitsOut.Send(flitMsg{f: f, vc: outVC}, now)
	if f.Tail() {
		n.owner[int(o)*e.nvc+outVC] = nil
	}
}

// InFlight returns accepted-but-undelivered packets.
func (e *Engine) InFlight() int { return e.inFlight }

// Audit verifies flit conservation: flits buffered in VCs plus flits on
// links must equal flits injected minus flits ejected, and NI queues
// plus partially/fully buffered packets must equal InFlight.
func (e *Engine) Audit() error {
	buffered := int64(0)
	for _, n := range e.nodes {
		for _, c := range n.cnt {
			buffered += int64(c)
		}
		for d := geom.Dir(0); d < geom.NumDirs; d++ {
			if fl := n.in[d].flitsIn; fl != nil {
				buffered += int64(fl.InFlight())
			}
		}
	}
	if got := e.flitsIn - e.flitsOut; got != buffered {
		return fmt.Errorf("wormhole: %d flits in network, %d buffered+in-flight", got, buffered)
	}
	// Packet-level: every in-flight packet is either still (partially)
	// in an NI queue or fully inside the network awaiting ejection.
	queued := 0
	for _, n := range e.nodes {
		queued += n.ni.Backlog()
	}
	if queued > e.inFlight {
		return fmt.Errorf("wormhole: %d packets queued exceeds %d in flight", queued, e.inFlight)
	}
	return nil
}

var _ network.Fabric = (*Engine)(nil)
