// Package wormhole implements the flit-level virtual-channel router
// engine used by both VC-based comparators of §5:
//
//   - WH — the baseline wormhole network (4-stage pipeline, X-Y DOR,
//     credit-based flow control, Table-1 VC complement), and
//   - Surf — the SurfNoC-style confined-interference network [2],
//     realized by package surf as this engine with per-domain VCs and
//     wave-gated output ports (see Options.WaveGated).
//
// Modelling granularity matches Garnet: packets move flit by flit;
// a head flit performs route computation and VC allocation, every flit
// competes in switch allocation and consumes a credit, and the tail
// flit releases the VC.  The 4-stage router pipeline plus link
// traversal are folded into the hop delay of the flit delay lines
// (Table 1: P = 5 for the VC networks), so a flit that never waits in a
// VC experiences exactly P cycles per hop — which is what lets Surf
// packets "surf" their waves with zero slot-waiting in the steady
// direction.
package wormhole

import (
	"fmt"

	"surfbless/internal/config"
	"surfbless/internal/fault"
	"surfbless/internal/geom"
	"surfbless/internal/link"
	"surfbless/internal/network"
	"surfbless/internal/packet"
	"surfbless/internal/power"
	"surfbless/internal/probe"
	"surfbless/internal/router"
	"surfbless/internal/stats"
	"surfbless/internal/wave"
)

// VCSpec describes one virtual channel of every input port.
type VCSpec struct {
	Depth int // buffer depth in flits
	Group int // match key (VNet or domain); -1 admits any packet
}

// Key selects what packet field VC groups and NI queues match against.
type Key int

// Matching policies.
const (
	KeyNone   Key = iota // any packet may use any VC (synthetic WH)
	KeyVNet              // VC group must equal the packet's virtual network (protocol WH)
	KeyDomain            // VC group must equal the packet's domain (Surf)
)

// Options configures one engine instance.
type Options struct {
	Cfg config.Config
	VCs []VCSpec // the VC complement of every non-local input port
	Key Key

	// WaveGated enables Surf's TDM: a flit may cross output port o at
	// cycle T only when the wave owning o at T decodes to the flit's
	// domain.  Requires Sched and Dec.
	WaveGated bool
	Sched     *wave.Schedule
	Dec       *wave.Decoder
}

// SharedVCs returns the Table-1 VC complement with every VC open to
// every packet (the synthetic-traffic WH configuration).
func SharedVCs(cfg config.Config) []VCSpec {
	return vcComplement(cfg, -1, -1)
}

// VNetVCs returns the Table-1 complement with control VCs bound to the
// control virtual networks and data VCs to the data virtual networks
// (vnet 0 … ctrl first, then data), the protocol WH configuration.
func VNetVCs(cfg config.Config) []VCSpec {
	var specs []VCSpec
	g := 0
	for i := 0; i < cfg.CtrlVCsPerPort; i++ {
		specs = append(specs, VCSpec{Depth: cfg.CtrlVCDepth, Group: g})
		g++
	}
	for i := 0; i < cfg.DataVCsPerPort; i++ {
		specs = append(specs, VCSpec{Depth: cfg.DataVCDepth, Group: g})
		g++
	}
	return specs
}

// DomainVCs replicates the configured VC complement once per domain,
// binding each copy to its domain — Surf's buffer organization, whose
// 5-ports-×-D-domains growth is the static-energy story of Fig. 6.
func DomainVCs(cfg config.Config) []VCSpec {
	var specs []VCSpec
	for d := 0; d < cfg.Domains; d++ {
		specs = append(specs, vcComplement(cfg, d, d)...)
	}
	return specs
}

func vcComplement(cfg config.Config, ctrlGroup, dataGroup int) []VCSpec {
	var specs []VCSpec
	for i := 0; i < cfg.CtrlVCsPerPort; i++ {
		specs = append(specs, VCSpec{Depth: cfg.CtrlVCDepth, Group: ctrlGroup})
	}
	for i := 0; i < cfg.DataVCsPerPort; i++ {
		specs = append(specs, VCSpec{Depth: cfg.DataVCDepth, Group: dataGroup})
	}
	return specs
}

type flitMsg struct {
	f  packet.Flit
	vc int
}

type creditMsg struct {
	vc int
}

type inVC struct {
	spec   VCSpec
	fifo   []packet.Flit
	active bool // a packet holds this VC (head routed, tail not yet forwarded)
	outDir geom.Dir
	outVC  int
}

type inPort struct {
	vcs       []inVC
	flitsIn   *link.Line[flitMsg]   // nil for absent ports
	creditOut *link.Line[creditMsg] // credits back upstream
}

type outPort struct {
	flitsOut *link.Line[flitMsg]   // nil for Local and absent ports
	creditIn *link.Line[creditMsg] // credits from downstream
	credits  []int                 // free downstream buffer slots per VC
	owner    []*packet.Packet      // downstream VC holder, nil = allocatable
}

type injState struct {
	active bool
	outDir geom.Dir
	outVC  int
	sent   int
}

type node struct {
	c   geom.Coord
	ni  *router.NI
	inj []injState
	in  [geom.NumDirs]inPort // Local unused (injection is the NI)
	out [geom.NumDirs]outPort

	// per-cycle scratch, reset in step
	inUsed  [geom.NumDirs][]bool // [port][lane]: input bandwidth consumed
	injUsed []bool               // [lane]: injection bandwidth consumed
}

// Engine is a mesh of VC routers.  It implements network.Fabric.
type Engine struct {
	opt   Options
	mesh  geom.Mesh
	nodes []*node
	sink  network.Sink
	col   *stats.Collector
	meter *power.Meter
	probe *probe.Probe // nil = no spatial observation

	faults *fault.Injector // nil = fault-free (hot path untouched)

	lanes    int // input-port bandwidth lanes (1, or #domains when wave-gated)
	inFlight int
	flitsIn  int64 // flits injected into the network
	flitsOut int64 // flits ejected
	lastStep int64

	// Per-cycle scratch buffers, engine-owned and reused across cycles
	// (DESIGN.md §12).  Nodes step sequentially, so one set suffices.
	credBuf []creditMsg
	flitBuf []flitMsg
	reqs    []request
	domReqs [][]request // per-domain ejection candidates (lanes > 1 only)
	domList []int       // domains present this arbitration, in arrival order
}

// New builds the engine.  The caller provides the VC layout and gating;
// use package surf for the Surf configuration or SharedVCs/VNetVCs here
// for WH.
func New(opt Options, sink network.Sink, col *stats.Collector, meter *power.Meter) (*Engine, error) {
	cfg := opt.Cfg
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Model != config.WH && cfg.Model != config.Surf {
		return nil, fmt.Errorf("wormhole: config model is %v", cfg.Model)
	}
	if col == nil || meter == nil {
		return nil, fmt.Errorf("wormhole: collector and meter are required")
	}
	if len(opt.VCs) == 0 {
		return nil, fmt.Errorf("wormhole: no VCs specified")
	}
	for i, s := range opt.VCs {
		if s.Depth < 1 {
			return nil, fmt.Errorf("wormhole: VC %d depth %d", i, s.Depth)
		}
	}
	if opt.WaveGated && (opt.Sched == nil || opt.Dec == nil) {
		return nil, fmt.Errorf("wormhole: wave gating requires a schedule and decoder")
	}

	e := &Engine{opt: opt, mesh: cfg.Mesh(), sink: sink, col: col, meter: meter, lanes: 1, lastStep: -1}
	if opt.WaveGated {
		// Per-domain input bandwidth removes cross-domain contention at
		// input ports; output TDM already bounds aggregate switch use.
		// See DESIGN.md §2 (modelling conventions for Surf).
		e.lanes = cfg.Domains
	}
	if e.lanes > 1 {
		e.domReqs = make([][]request, cfg.Domains)
	}
	e.nodes = make([]*node, e.mesh.Nodes())
	for id := range e.nodes {
		n := &node{
			c:   e.mesh.CoordOf(id),
			ni:  router.NewNI(cfg.Domains, cfg.InjectionQueueCap),
			inj: make([]injState, cfg.Domains),
		}
		for d := geom.Dir(0); d < geom.NumDirs; d++ {
			n.inUsed[d] = make([]bool, e.lanes)
		}
		n.injUsed = make([]bool, e.lanes)
		e.nodes[id] = n
	}
	// Wire flit and credit lines, and initialize per-output credit and
	// ownership state mirroring the downstream VC layout.
	hop := cfg.HopDelay()
	for _, n := range e.nodes {
		for _, d := range geom.LinkDirs {
			if !e.mesh.HasNeighbor(n.c, d) {
				continue
			}
			peer := e.nodes[e.mesh.ID(n.c.Add(d))]
			fl := link.New[flitMsg](hop)
			cl := link.New[creditMsg](1)
			n.out[d].flitsOut = fl
			n.out[d].creditIn = cl
			n.out[d].credits = make([]int, len(opt.VCs))
			n.out[d].owner = make([]*packet.Packet, len(opt.VCs))
			for v, s := range opt.VCs {
				n.out[d].credits[v] = s.Depth
			}
			peer.in[d.Opposite()].flitsIn = fl
			peer.in[d.Opposite()].creditOut = cl
			peer.in[d.Opposite()].vcs = make([]inVC, len(opt.VCs))
			for v, s := range opt.VCs {
				peer.in[d.Opposite()].vcs[v] = inVC{spec: s, fifo: make([]packet.Flit, 0, s.Depth)}
			}
		}
	}
	return e, nil
}

// SetProbe attaches a hot-path observer recording per-router and
// per-link flit traversals (nil to remove).  VC routers never deflect,
// so the probe's deflection heatmap stays zero for WH and Surf.
func (e *Engine) SetProbe(p *probe.Probe) { e.probe = p }

// SetFaults arms a fault injector (nil to disarm).  A buffered
// credit-flow network cannot lose flits, so faults manifest as
// blocking, not drops: a frozen router holds its buffers and grants
// nothing (credit starvation then stalls its neighbors), and a down
// link simply wins no switch allocation.  Packet-drop (corruption)
// events are not modeled for WH/Surf — retransmitting part of a worm
// would need an end-to-end protocol the paper's comparators don't
// have; a permanent fault on a used route therefore wedges the network
// by design, which the sim-level watchdog converts into a
// DegradedError.
func (e *Engine) SetFaults(inj *fault.Injector) { e.faults = inj }

// key returns the packet field VC groups match against.
func (e *Engine) key(p *packet.Packet) int {
	switch e.opt.Key {
	case KeyVNet:
		return p.VNet
	case KeyDomain:
		return p.Domain
	default:
		return -1
	}
}

func (e *Engine) vcAdmits(spec VCSpec, p *packet.Packet) bool {
	return spec.Group < 0 || e.opt.Key == KeyNone || spec.Group == e.key(p)
}

// gate reports whether a flit of p may cross output o of router c at
// cycle now (always true unless wave-gated).  The Local (ejection)
// port is never gated: the NI's per-domain sinks are not a shared mesh
// resource, and arbitrateOutput gives Local one grant lane per domain,
// so ungated ejection cannot couple domains.
func (e *Engine) gate(c geom.Coord, o geom.Dir, p *packet.Packet, now int64) bool {
	if !e.opt.WaveGated || o == geom.Local {
		return true
	}
	w := e.opt.Sched.OutputWave(c, o, now)
	return e.opt.Dec.Domain(w) == p.Domain
}

// lane returns the input-bandwidth lane a packet uses at an input port.
func (e *Engine) lane(p *packet.Packet) int {
	if e.lanes == 1 {
		return 0
	}
	return p.Domain
}

// Inject offers p to the node's NI.
func (e *Engine) Inject(nodeID int, p *packet.Packet, now int64) bool {
	if p.Domain < 0 || p.Domain >= e.opt.Cfg.Domains {
		panic(fmt.Sprintf("wormhole: %v has domain outside [0,%d)", p, e.opt.Cfg.Domains))
	}
	if e.opt.Key == KeyVNet && p.VNet < 0 {
		panic(fmt.Sprintf("wormhole: %v has no virtual network in KeyVNet mode", p))
	}
	n := e.nodes[nodeID]
	if !n.ni.Offer(p) {
		e.col.Refused(p.Domain, now)
		return false
	}
	e.col.Created(p)
	e.meter.BufferWrite(p.Size)
	e.inFlight++
	return true
}

// Step advances the network by one cycle.
func (e *Engine) Step(now int64) {
	if now <= e.lastStep {
		//nocvet:alloc panic-path formatting on a falsified invariant; runs at most once, while dying
		panic(fmt.Sprintf("wormhole: Step(%d) after Step(%d)", now, e.lastStep))
	}
	e.lastStep = now
	for _, n := range e.nodes {
		e.receive(n, now)
	}
	for id, n := range e.nodes {
		// A frozen router still receives (upstream credits bound what can
		// arrive) but allocates and grants nothing until it thaws.
		if e.faults != nil && e.faults.Frozen(id, now) {
			continue
		}
		e.allocate(n, now)
		e.switchTraversal(id, n, now)
	}
}

// receive drains credit and flit lines into router state.
func (e *Engine) receive(n *node, now int64) {
	for d := geom.Dir(0); d < geom.NumDirs; d++ {
		if cl := n.out[d].creditIn; cl != nil {
			e.credBuf = cl.RecvInto(now, e.credBuf[:0])
			for _, m := range e.credBuf {
				n.out[d].credits[m.vc]++
				if n.out[d].credits[m.vc] > e.opt.VCs[m.vc].Depth {
					//nocvet:alloc panic-path formatting on a falsified invariant; runs at most once, while dying
					panic(fmt.Sprintf("wormhole: credit overflow at %v/%v vc %d", n.c, d, m.vc))
				}
			}
		}
		if fl := n.in[d].flitsIn; fl != nil {
			e.flitBuf = fl.RecvInto(now, e.flitBuf[:0])
			for _, m := range e.flitBuf {
				vc := &n.in[d].vcs[m.vc]
				if len(vc.fifo) >= vc.spec.Depth {
					//nocvet:alloc panic-path formatting on a falsified invariant; runs at most once, while dying
					panic(fmt.Sprintf("wormhole: buffer overflow at %v/%v vc %d", n.c, d, m.vc))
				}
				vc.fifo = append(vc.fifo, m.f)
				e.meter.BufferWrite(1)
			}
		}
	}
}

// allocate performs route computation and downstream-VC allocation for
// every head flit at the front of an idle VC, and for NI head packets.
func (e *Engine) allocate(n *node, now int64) {
	for d := geom.Dir(0); d < geom.NumDirs; d++ {
		for v := range n.in[d].vcs {
			vc := &n.in[d].vcs[v]
			if vc.active || len(vc.fifo) == 0 {
				continue
			}
			head := vc.fifo[0]
			if !head.Head() {
				//nocvet:alloc panic-path formatting on a falsified invariant; runs at most once, while dying
				panic(fmt.Sprintf("wormhole: body flit of %v at idle VC head (%v/%v vc %d)", head.Pkt, n.c, d, v))
			}
			e.tryAllocate(n, head.Pkt, &vc.active, &vc.outDir, &vc.outVC, now)
		}
	}
	for dom := range n.inj {
		st := &n.inj[dom]
		if st.active {
			continue
		}
		p := n.ni.Head(dom)
		if p == nil {
			continue
		}
		st.sent = 0
		e.tryAllocate(n, p, &st.active, &st.outDir, &st.outVC, now)
	}
}

// tryAllocate routes p and claims a downstream VC; on success it sets
// the provided allocation fields.
func (e *Engine) tryAllocate(n *node, p *packet.Packet, active *bool, outDir *geom.Dir, outVC *int, now int64) {
	d := geom.XYFirst(n.c, p.Dst)
	if d == geom.Local {
		*active, *outDir, *outVC = true, geom.Local, -1
		e.meter.Allocation(1)
		return
	}
	out := &n.out[d]
	if out.flitsOut == nil {
		//nocvet:alloc panic-path formatting on a falsified invariant; runs at most once, while dying
		panic(fmt.Sprintf("wormhole: X-Y route of %v leaves the mesh at %v", p, n.c))
	}
	// Prefer a VC deep enough to hold the whole packet — parking a
	// 5-flit worm in a 1-flit control VC would throttle it to one flit
	// per credit round-trip.  Fall back to any admitting VC.
	pick := -1
	for v, s := range e.opt.VCs {
		if out.owner[v] != nil || !e.vcAdmits(s, p) {
			continue
		}
		if s.Depth >= p.Size {
			pick = v
			break
		}
		if pick < 0 {
			pick = v
		}
	}
	if pick >= 0 {
		out.owner[pick] = p
		*active, *outDir, *outVC = true, d, pick
		e.meter.Allocation(1)
	}
}

// switchTraversal arbitrates each output port and moves winning flits.
func (e *Engine) switchTraversal(id int, n *node, now int64) {
	for d := geom.Dir(0); d < geom.NumDirs; d++ {
		for l := range n.inUsed[d] {
			n.inUsed[d][l] = false
		}
	}
	for l := range n.injUsed {
		n.injUsed[l] = false
	}

	for _, o := range geom.OutputDirs {
		if o != geom.Local && n.out[o].flitsOut == nil {
			continue
		}
		// A killed output link wins no allocation: flits wait in their
		// VCs and credit backpressure spreads the stall upstream.
		if o != geom.Local && e.faults != nil && e.faults.LinkDown(id, o, now) {
			continue
		}
		e.arbitrateOutput(n, o, now)
	}
}

// request is one switch-allocation candidate.
type request struct {
	fromInj bool
	port    geom.Dir // input port (ignored for injection)
	vc      int      // input VC index (or NI domain for injection)
}

func (e *Engine) arbitrateOutput(n *node, o geom.Dir, now int64) {
	reqs := e.reqs[:0]
	for _, d := range geom.LinkDirs {
		for v := range n.in[d].vcs {
			vc := &n.in[d].vcs[v]
			if !vc.active || vc.outDir != o || len(vc.fifo) == 0 {
				continue
			}
			p := vc.fifo[0].Pkt
			if n.inUsed[d][e.lane(p)] || !e.gate(n.c, o, p, now) {
				continue
			}
			if o != geom.Local && n.out[o].credits[vc.outVC] == 0 {
				continue
			}
			reqs = append(reqs, request{port: d, vc: v})
		}
	}
	// In-network flits outrank injection (injection has the lowest
	// priority); consider NI candidates only when no VC wants o.
	if len(reqs) == 0 {
		for dom := range n.inj {
			st := &n.inj[dom]
			if !st.active || st.outDir != o {
				continue
			}
			p := n.ni.Head(dom)
			if p == nil {
				//nocvet:alloc panic-path formatting on a falsified invariant; runs at most once, while dying
				panic(fmt.Sprintf("wormhole: injection state active with empty queue (%v dom %d)", n.c, dom))
			}
			if n.injUsed[e.lane(p)] || !e.gate(n.c, o, p, now) {
				continue
			}
			if o != geom.Local && n.out[o].credits[st.outVC] == 0 {
				continue
			}
			reqs = append(reqs, request{fromInj: true, vc: dom})
		}
	}
	e.reqs = reqs // hand the (possibly grown) scratch back to the engine
	if len(reqs) == 0 {
		return
	}
	if o == geom.Local && e.lanes > 1 {
		// Ungated ejection with one grant lane per domain: pick at most
		// one flit per domain, rotating within each domain's candidates
		// so the choice never depends on other domains' presence.  The
		// per-domain buckets are pre-sized engine scratch (a map here
		// would allocate on every ejection-contended cycle).
		doms := e.domList[:0]
		for _, r := range reqs {
			d := e.reqPacket(n, r).Domain
			if len(e.domReqs[d]) == 0 {
				doms = append(doms, d)
			}
			e.domReqs[d] = append(e.domReqs[d], r)
		}
		e.domList = doms
		for _, d := range doms {
			cand := e.domReqs[d]
			e.grant(n, o, cand[int(now%int64(len(cand)))], now)
			e.domReqs[d] = cand[:0]
		}
		return
	}
	// One grant per output per cycle, rotating priority for fairness.
	// Under wave gating all candidates belong to the wave's one domain,
	// so the shared rotation cannot couple domains.
	e.grant(n, o, reqs[int(now%int64(len(reqs)))], now)
}

// reqPacket returns the packet a request would move.
func (e *Engine) reqPacket(n *node, r request) *packet.Packet {
	if r.fromInj {
		return n.ni.Head(r.vc)
	}
	return n.in[r.port].vcs[r.vc].fifo[0].Pkt
}

// grant moves one flit of request r through output o.
func (e *Engine) grant(n *node, o geom.Dir, r request, now int64) {
	var f packet.Flit
	var outVC int
	if r.fromInj {
		st := &n.inj[r.vc]
		p := n.ni.Head(r.vc)
		f = packet.Flit{Pkt: p, Seq: st.sent}
		outVC = st.outVC
		if f.Head() {
			p.InjectedAt = now
			e.col.Injected(p)
		}
		st.sent++
		e.meter.BufferRead(1)
		e.flitsIn++
		n.injUsed[e.lane(p)] = true
		if f.Tail() {
			n.ni.Pop(r.vc)
			st.active = false
		}
	} else {
		in := &n.in[r.port]
		vc := &in.vcs[r.vc]
		f = vc.fifo[0]
		outVC = vc.outVC
		nf := copy(vc.fifo, vc.fifo[1:])
		vc.fifo[nf] = packet.Flit{} // unpin the forwarded flit's packet
		vc.fifo = vc.fifo[:nf]
		e.meter.BufferRead(1)
		in.creditOut.Send(creditMsg{vc: r.vc}, now)
		n.inUsed[r.port][e.lane(f.Pkt)] = true
		if f.Tail() {
			vc.active = false
		}
	}
	e.meter.CrossbarTraversal(1)

	if o == geom.Local {
		e.flitsOut++
		if f.Tail() {
			p := f.Pkt
			p.EjectedAt = now
			p.Hops = e.mesh.Hops(p.Src, p.Dst)
			e.col.Ejected(p)
			e.inFlight--
			if e.sink != nil {
				e.sink(e.mesh.ID(n.c), p, now)
			}
		}
		return
	}

	out := &n.out[o]
	out.credits[outVC]--
	e.meter.LinkTraversal(1)
	if e.probe != nil {
		e.probe.Traverse(e.mesh.ID(n.c), o, f.Pkt, 1, false, now)
	}
	out.flitsOut.Send(flitMsg{f: f, vc: outVC}, now)
	if f.Tail() {
		out.owner[outVC] = nil
	}
}

// InFlight returns accepted-but-undelivered packets.
func (e *Engine) InFlight() int { return e.inFlight }

// Audit verifies flit conservation: flits buffered in VCs plus flits on
// links must equal flits injected minus flits ejected, and NI queues
// plus partially/fully buffered packets must equal InFlight.
func (e *Engine) Audit() error {
	buffered := int64(0)
	for _, n := range e.nodes {
		for d := geom.Dir(0); d < geom.NumDirs; d++ {
			for v := range n.in[d].vcs {
				buffered += int64(len(n.in[d].vcs[v].fifo))
			}
			if fl := n.in[d].flitsIn; fl != nil {
				buffered += int64(fl.InFlight())
			}
		}
	}
	if got := e.flitsIn - e.flitsOut; got != buffered {
		return fmt.Errorf("wormhole: %d flits in network, %d buffered+in-flight", got, buffered)
	}
	// Packet-level: every in-flight packet is either still (partially)
	// in an NI queue or fully inside the network awaiting ejection.
	queued := 0
	for _, n := range e.nodes {
		queued += n.ni.Backlog()
	}
	if queued > e.inFlight {
		return fmt.Errorf("wormhole: %d packets queued exceeds %d in flight", queued, e.inFlight)
	}
	return nil
}

var _ network.Fabric = (*Engine)(nil)
