package router

import (
	"testing"
	"testing/quick"

	"surfbless/internal/geom"
	"surfbless/internal/packet"
)

func pkt(id uint64, domain int) *packet.Packet {
	p := packet.New(id, geom.Coord{}, geom.Coord{X: 1, Y: 0}, domain, packet.Ctrl, 0)
	return p
}

func TestNewNIPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"zero domains": func() { NewNI(0, 4) },
		"zero cap":     func() { NewNI(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestNIFIFOPerDomain(t *testing.T) {
	ni := NewNI(2, 4)
	ni.Offer(pkt(1, 0))
	ni.Offer(pkt(2, 1))
	ni.Offer(pkt(3, 0))
	if got := ni.Head(0); got.ID != 1 {
		t.Errorf("Head(0) = %d, want 1", got.ID)
	}
	if got := ni.Head(1); got.ID != 2 {
		t.Errorf("Head(1) = %d, want 2", got.ID)
	}
	if got := ni.Pop(0); got.ID != 1 {
		t.Errorf("Pop(0) = %d, want 1", got.ID)
	}
	if got := ni.Head(0); got.ID != 3 {
		t.Errorf("Head(0) after pop = %d, want 3", got.ID)
	}
}

func TestNIBackpressure(t *testing.T) {
	ni := NewNI(2, 2)
	if !ni.Offer(pkt(1, 0)) || !ni.Offer(pkt(2, 0)) {
		t.Fatal("offers under capacity refused")
	}
	if ni.Offer(pkt(3, 0)) {
		t.Error("offer beyond capacity accepted")
	}
	// The other domain's queue is independent — per-domain injection VCs
	// avoid head-of-line blocking between domains (§4.2).
	if !ni.Offer(pkt(4, 1)) {
		t.Error("full domain 0 blocked domain 1")
	}
}

func TestNIBacklog(t *testing.T) {
	ni := NewNI(3, 4)
	ni.Offer(pkt(1, 0))
	ni.Offer(pkt(2, 2))
	ni.Offer(pkt(3, 2))
	if got := ni.Backlog(); got != 3 {
		t.Errorf("Backlog = %d, want 3", got)
	}
	if got := ni.DomainBacklog(2); got != 2 {
		t.Errorf("DomainBacklog(2) = %d, want 2", got)
	}
	if ni.Domains() != 3 {
		t.Errorf("Domains = %d", ni.Domains())
	}
}

func TestNIHeadEmpty(t *testing.T) {
	ni := NewNI(1, 4)
	if ni.Head(0) != nil {
		t.Error("Head of empty queue must be nil")
	}
	defer func() {
		if recover() == nil {
			t.Error("Pop on empty queue must panic")
		}
	}()
	ni.Pop(0)
}

func TestNIOfferBadDomainPanics(t *testing.T) {
	ni := NewNI(2, 4)
	defer func() {
		if recover() == nil {
			t.Error("Offer with out-of-range domain must panic")
		}
	}()
	ni.Offer(pkt(1, 5))
}

func TestSortOldestFirst(t *testing.T) {
	a := pkt(3, 0)
	a.InjectedAt = 10
	b := pkt(1, 0)
	b.InjectedAt = 5
	c := pkt(2, 0)
	c.InjectedAt = 10
	ps := []*packet.Packet{a, b, c}
	SortOldestFirst(ps)
	if ps[0] != b || ps[1] != c || ps[2] != a {
		t.Errorf("order = %d,%d,%d, want 1,2,3", ps[0].ID, ps[1].ID, ps[2].ID)
	}
}

// Hash64 must be deterministic and well-spread over small moduli (it
// picks among ≤4 deflection candidates).
func TestHash64(t *testing.T) {
	if Hash64(1, 2) != Hash64(1, 2) {
		t.Error("Hash64 not deterministic")
	}
	counts := make([]int, 4)
	for i := uint64(0); i < 4000; i++ {
		counts[Hash64(i, i*31)%4]++
	}
	for b, n := range counts {
		if n < 800 || n > 1200 {
			t.Errorf("bucket %d has %d of 4000 draws; distribution skewed", b, n)
		}
	}
}

func TestHash64AvalancheQuick(t *testing.T) {
	f := func(a, b uint64) bool {
		// Flipping one input bit must change the output.
		return Hash64(a, b) != Hash64(a^1, b) && Hash64(a, b) != Hash64(a, b^1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRetryQueueOrdering(t *testing.T) {
	var q RetryQueue
	mk := func(id uint64) *packet.Packet {
		return packet.New(id, geom.Coord{}, geom.Coord{X: 1}, 0, packet.Ctrl, 0)
	}
	q.Push(mk(1), 30)
	q.Push(mk(2), 10)
	q.Push(mk(3), 10) // same due cycle: insertion order wins
	q.Push(mk(4), 20)
	if q.Len() != 4 {
		t.Fatalf("Len = %d", q.Len())
	}
	if p := q.PopDue(5); p != nil {
		t.Fatalf("nothing due at 5, got %v", p)
	}
	var order []uint64
	for now := int64(10); now <= 30; now += 10 {
		for p := q.PopDue(now); p != nil; p = q.PopDue(now) {
			order = append(order, p.ID)
		}
	}
	want := []uint64{2, 3, 4, 1}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("drain order = %v, want %v", order, want)
		}
	}
	if q.Len() != 0 {
		t.Errorf("queue not drained: %d left", q.Len())
	}
}

func TestRecoveryBudgetAndBackoff(t *testing.T) {
	r := &Recovery{MaxRetries: 2, Backoff: 8}
	p := packet.New(9, geom.Coord{}, geom.Coord{X: 1}, 0, packet.Ctrl, 0)
	if !r.TryRetry(p, 100) {
		t.Fatal("first retry refused")
	}
	if got := r.Queue.PopDue(107); got != nil {
		t.Error("retry released before backoff expired")
	}
	if got := r.Queue.PopDue(108); got != p {
		t.Fatalf("retry 1 due at 108 (100+8), got %v", got)
	}
	if !r.TryRetry(p, 200) {
		t.Fatal("second retry refused")
	}
	if got := r.Queue.PopDue(215); got != nil {
		t.Error("second backoff must double to 16")
	}
	if got := r.Queue.PopDue(216); got != p {
		t.Fatalf("retry 2 due at 216, got %v", got)
	}
	if r.TryRetry(p, 300) {
		t.Error("budget of 2 exceeded")
	}
	if p.Retries != 2 {
		t.Errorf("Retries = %d, want 2", p.Retries)
	}
	// nil Recovery (faults off) always refuses.
	var nilr *Recovery
	if nilr.TryRetry(p, 0) {
		t.Error("nil recovery must refuse")
	}
}
