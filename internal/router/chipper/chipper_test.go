package chipper

import (
	"testing"

	"surfbless/internal/config"
	"surfbless/internal/geom"
	"surfbless/internal/packet"
	"surfbless/internal/power"
	"surfbless/internal/stats"
)

type harness struct {
	f   *Fabric
	col *stats.Collector
	cfg config.Config
	ids packet.IDSource
	got []*packet.Packet
	now int64
}

func newHarness(t *testing.T, width int) *harness {
	t.Helper()
	cfg := config.Default(config.CHIPPER)
	cfg.Width, cfg.Height = width, width
	h := &harness{cfg: cfg}
	h.col = stats.NewCollector(cfg.Domains, 0, 0)
	meter := power.NewMeter(cfg, power.Default45nm())
	var err error
	h.f, err = New(cfg, func(node int, p *packet.Packet, now int64) {
		h.got = append(h.got, p)
	}, h.col, meter)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func (h *harness) pkt(src, dst geom.Coord) *packet.Packet {
	return packet.New(h.ids.Next(), src, dst, 0, packet.Ctrl, h.now)
}

func (h *harness) steps(n int) {
	for i := 0; i < n; i++ {
		h.f.Step(h.now)
		h.now++
	}
}

func TestNewValidation(t *testing.T) {
	cfg := config.Default(config.BLESS)
	col := stats.NewCollector(1, 0, 0)
	meter := power.NewMeter(cfg, power.Default45nm())
	if _, err := New(cfg, nil, col, meter); err == nil {
		t.Error("BLESS config accepted")
	}
	if _, err := New(config.Default(config.CHIPPER), nil, nil, meter); err == nil {
		t.Error("nil collector accepted")
	}
}

func TestSinglePacketTiming(t *testing.T) {
	h := newHarness(t, 8)
	src, dst := geom.Coord{X: 1, Y: 1}, geom.Coord{X: 5, Y: 4}
	p := h.pkt(src, dst)
	h.f.Inject(h.cfg.Mesh().ID(src), p, 0)
	h.steps(60)
	if p.EjectedAt < 0 {
		t.Fatal("packet not delivered")
	}
	want := int64(h.cfg.Mesh().Hops(src, dst) * h.cfg.HopDelay())
	if p.EjectedAt != want {
		t.Errorf("EjectedAt = %d, want %d (uncontended shortest path)", p.EjectedAt, want)
	}
	if p.Deflections != 0 {
		t.Errorf("lone packet deflected %d times", p.Deflections)
	}
}

func TestMultiFlitPanics(t *testing.T) {
	h := newHarness(t, 4)
	defer func() {
		if recover() == nil {
			t.Error("CHIPPER must reject multi-flit packets")
		}
	}()
	h.f.Inject(0, packet.New(1, geom.Coord{}, geom.Coord{X: 1, Y: 0}, 0, packet.Data, 0), 0)
}

func TestGoldenClassRotates(t *testing.T) {
	p := &packet.Packet{ID: 5}
	q := &packet.Packet{ID: 6}
	// At epoch 5 (cycles 5·64…), packet 5's class is golden; q's is not.
	now := int64(5 * goldenEpoch)
	if !golden(p, now) || golden(q, now) {
		t.Error("golden class selection wrong")
	}
	// One epoch later the torch passes on.
	now += goldenEpoch
	if golden(p, now) || !golden(q, now) {
		t.Error("golden class must rotate with the epoch")
	}
}

// Saturation stress on a full mesh with border fix-ups: everything is
// eventually delivered and conserved.
func TestStressDelivery(t *testing.T) {
	h := newHarness(t, 8)
	mesh := h.cfg.Mesh()
	injected := 0
	for cyc := 0; cyc < 400; cyc++ {
		for node := 0; node < mesh.Nodes(); node += 2 {
			src := mesh.CoordOf(node)
			dst := mesh.CoordOf((node*19 + cyc*7 + 3) % mesh.Nodes())
			if dst == src {
				continue
			}
			if h.f.Inject(node, h.pkt(src, dst), h.now) {
				injected++
			}
		}
		h.f.Step(h.now)
		h.now++
		if cyc%100 == 0 {
			if err := h.f.Audit(); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < 60000 && h.f.InFlight() > 0; i++ {
		h.f.Step(h.now)
		h.now++
	}
	if h.f.InFlight() != 0 {
		t.Fatalf("%d packets never delivered (golden rotation failed?)", h.f.InFlight())
	}
	if len(h.got) != injected {
		t.Errorf("delivered %d of %d", len(h.got), injected)
	}
	if err := h.col.CheckConservation(0); err != nil {
		t.Error(err)
	}
}

// CHIPPER's cheap arbitration deflects more than BLESS's oldest-first
// under identical contention (the price of the permutation network).
func TestDeflectsMoreThanBLESSWouldAtLowCost(t *testing.T) {
	h := newHarness(t, 8)
	mesh := h.cfg.Mesh()
	for cyc := 0; cyc < 300; cyc++ {
		for node := 0; node < mesh.Nodes(); node += 3 {
			src := mesh.CoordOf(node)
			dst := mesh.CoordOf((node*11 + cyc*5 + 1) % mesh.Nodes())
			if dst != src {
				h.f.Inject(node, h.pkt(src, dst), h.now)
			}
		}
		h.f.Step(h.now)
		h.now++
	}
	for i := 0; i < 60000 && h.f.InFlight() > 0; i++ {
		h.f.Step(h.now)
		h.now++
	}
	tot := h.col.Total()
	if tot.Ejected == 0 {
		t.Fatal("nothing delivered")
	}
	if tot.AvgDeflections() == 0 {
		t.Error("contended CHIPPER run with zero deflections is implausible")
	}
	// Static power: the CHIPPER router must be the cheapest of all.
	co := power.Default45nm()
	chipper := power.RouterStaticPower(h.cfg, co)
	bless := power.RouterStaticPower(config.Default(config.BLESS), co)
	if chipper >= bless {
		t.Errorf("CHIPPER static %g not below BLESS %g", chipper, bless)
	}
}

// The permutation network is a real (partial) permutation: no packet is
// ever duplicated or dropped inside a router.
func TestPermutationConserves(t *testing.T) {
	c := geom.Coord{X: 3, Y: 3}
	mk := func(id uint64, dst geom.Coord) *packet.Packet {
		p := packet.New(id, geom.Coord{}, dst, 0, packet.Ctrl, 0)
		return p
	}
	for trial := int64(0); trial < 200; trial++ {
		var slots [geom.NumLinkDirs]*packet.Packet
		n := 0
		for d := 0; d < geom.NumLinkDirs; d++ {
			if (trial>>uint(d))&1 == 1 {
				slots[d] = mk(uint64(trial*4+int64(d)), geom.Coord{
					X: int(trial*7+int64(d)*3) % 8,
					Y: int(trial*5+int64(d)) % 8,
				})
				n++
			}
		}
		in := map[*packet.Packet]bool{}
		for _, p := range slots {
			if p != nil {
				in[p] = true
			}
		}
		outs := permute(c, &slots, trial)
		outCount := 0
		for _, p := range outs {
			if p != nil {
				if !in[p] {
					t.Fatal("permutation invented a packet")
				}
				delete(in, p)
				outCount++
			}
		}
		if outCount != n || len(in) != 0 {
			t.Fatalf("trial %d: %d in, %d out", trial, n, outCount)
		}
	}
}
