// Package chipper implements CHIPPER [10], the low-complexity
// bufferless deflection router the paper cites as related work — built
// here as an extension so the reproduction can compare Surf-Bless
// against both bufferless baselines.
//
// CHIPPER replaces BLESS's full crossbar and sequential oldest-first
// port allocation with two hardware tricks:
//
//   - a permutation deflection network: two stages of 2×2 arbiter
//     blocks steer the four in-flight packets toward their preferred
//     quadrant; a packet that loses an arbitration is misrouted by
//     construction (that IS the deflection), so no allocator runs
//     sequentially over ports; and
//   - golden packets for livelock freedom: instead of carrying and
//     comparing ages, one packet class (rotating with a global epoch)
//     has absolute priority and is never deflected, so every packet
//     eventually gets a clear run to its destination.
//
// Mesh borders need a fix-up pass (the original design targets routers
// with all four ports): packets steered at a missing port are
// reassigned to free existing outputs, golden class first.  Packet IDs
// here are dense per source, so the golden class is a residue class of
// the ID space rather than a single transaction id; the livelock
// argument weakens from a guarantee to "with probability 1", which the
// stress tests exercise.
package chipper

import (
	"fmt"

	"surfbless/internal/config"
	"surfbless/internal/fault"
	"surfbless/internal/geom"
	"surfbless/internal/link"
	"surfbless/internal/network"
	"surfbless/internal/packet"
	"surfbless/internal/power"
	"surfbless/internal/probe"
	"surfbless/internal/router"
	"surfbless/internal/stats"
)

// goldenEpoch is the length in cycles of one golden epoch; goldenMod is
// the number of ID residue classes the epoch rotates through.
const (
	goldenEpoch = 64
	goldenMod   = 64
)

// Fabric is a CHIPPER mesh.  It implements network.Fabric.
type Fabric struct {
	cfg   config.Config
	mesh  geom.Mesh
	nodes []*node
	sink  network.Sink
	col   *stats.Collector
	meter *power.Meter
	probe *probe.Probe // nil = no spatial observation

	faults *fault.Injector  // nil = fault-free (hot path untouched)
	recov  *router.Recovery // non-nil iff faults is

	rbuf []*packet.Packet // per-link receive scratch, reused every cycle

	inFlight int
	lastStep int64
}

type node struct {
	c   geom.Coord
	ni  *router.NI
	in  [geom.NumLinkDirs]*link.Line[*packet.Packet]
	out [geom.NumLinkDirs]*link.Line[*packet.Packet]
}

// SetProbe attaches a hot-path observer recording per-router
// traversals, deflections and link flits (nil to remove).
func (f *Fabric) SetProbe(p *probe.Probe) { f.probe = p }

// SetFaults arms a fault injector (nil to disarm).  A down link is
// treated exactly like a missing border port — the fix-up pass
// reassigns its packets — and packets that still find no output enter
// drop-with-retransmit recovery instead of panicking.
func (f *Fabric) SetFaults(inj *fault.Injector) {
	f.faults = inj
	if inj == nil {
		f.recov = nil
		return
	}
	f.recov = &router.Recovery{MaxRetries: inj.MaxRetries(), Backoff: inj.Backoff()}
}

// New builds a CHIPPER mesh for cfg.
func New(cfg config.Config, sink network.Sink, col *stats.Collector, meter *power.Meter) (*Fabric, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Model != config.CHIPPER {
		return nil, fmt.Errorf("chipper: config model is %v", cfg.Model)
	}
	if col == nil || meter == nil {
		return nil, fmt.Errorf("chipper: collector and meter are required")
	}
	f := &Fabric{cfg: cfg, mesh: cfg.Mesh(), sink: sink, col: col, meter: meter, lastStep: -1}
	f.nodes = make([]*node, f.mesh.Nodes())
	for id := range f.nodes {
		f.nodes[id] = &node{
			c:  f.mesh.CoordOf(id),
			ni: router.NewNI(cfg.Domains, cfg.InjectionQueueCap),
		}
	}
	p := cfg.HopDelay()
	for _, n := range f.nodes {
		for _, d := range geom.LinkDirs {
			if !f.mesh.HasNeighbor(n.c, d) {
				continue
			}
			l := link.New[*packet.Packet](p)
			n.out[d] = l
			f.nodes[f.mesh.ID(n.c.Add(d))].in[d.Opposite()] = l
		}
	}
	return f, nil
}

// golden reports whether p belongs to the current golden class.
func golden(p *packet.Packet, now int64) bool {
	return p.ID%goldenMod == uint64((now/goldenEpoch)%goldenMod)
}

// Inject offers p to node's NI (single-flit packets only, like BLESS).
func (f *Fabric) Inject(nodeID int, p *packet.Packet, now int64) bool {
	if p.Size != 1 {
		panic(fmt.Sprintf("chipper: cannot transfer multi-flit packet %v", p))
	}
	n := f.nodes[nodeID]
	if !n.ni.Offer(p) {
		f.col.Refused(p.Domain, now)
		return false
	}
	f.col.Created(p)
	f.meter.BufferWrite(p.Size)
	f.inFlight++
	return true
}

// Step advances the network by one cycle.
func (f *Fabric) Step(now int64) {
	if now <= f.lastStep {
		//nocvet:alloc panic-path formatting on a falsified invariant; runs at most once, while dying
		panic(fmt.Sprintf("chipper: Step(%d) after Step(%d)", now, f.lastStep))
	}
	f.lastStep = now
	if f.recov != nil {
		f.relaunchRetries(now)
	}
	for id, n := range f.nodes {
		f.stepNode(id, n, now)
	}
}

// relaunchRetries re-offers packets whose retransmission backoff
// expired to their source NI; a full NI costs another backoff round
// without consuming a retry attempt.
func (f *Fabric) relaunchRetries(now int64) {
	for p := f.recov.Queue.PopDue(now); p != nil; p = f.recov.Queue.PopDue(now) {
		if f.nodes[f.mesh.ID(p.Src)].ni.Offer(p) {
			f.meter.BufferWrite(p.Size)
		} else {
			f.recov.Queue.Push(p, now+f.recov.Backoff)
		}
	}
}

// outUsable reports whether node id's output d exists and is not
// currently killed by a fault.
func (f *Fabric) outUsable(id int, n *node, d geom.Dir, now int64) bool {
	if n.out[d] == nil {
		return false
	}
	return f.faults == nil || !f.faults.LinkDown(id, d, now)
}

// prio orders two packets inside an arbiter block: golden class first,
// then a deterministic hash (CHIPPER carries no ages).
func prio(a, b *packet.Packet, now int64) bool {
	ga, gb := golden(a, now), golden(b, now)
	if ga != gb {
		return ga
	}
	return router.Hash64(a.ID, uint64(now)) >= router.Hash64(b.ID, uint64(now))
}

func (f *Fabric) stepNode(id int, n *node, now int64) {
	// Receive into the four input slots (at most one packet per link
	// per cycle; the scratch buffer is fabric-owned and reused).
	var slots [geom.NumLinkDirs]*packet.Packet
	for _, d := range geom.LinkDirs {
		if n.in[d] == nil {
			continue
		}
		f.rbuf = n.in[d].RecvInto(now, f.rbuf[:0])
		for _, p := range f.rbuf {
			slots[d] = p
		}
	}

	// A frozen router's pipeline is dead: the links above were still
	// drained (they demand collection), but every arrival is lost at
	// the input and recovered via source retransmission.
	if f.faults != nil && f.faults.Frozen(id, now) {
		for _, p := range slots {
			if p != nil {
				f.dropOrRetry(p, now)
			}
		}
		return
	}

	// Eject one packet per cycle, golden class first.
	ej := -1
	for d, p := range slots {
		if p == nil || p.Dst != n.c {
			continue
		}
		if ej < 0 || prio(p, slots[ej], now) {
			ej = d
		}
	}
	if ej >= 0 {
		f.eject(n, slots[ej], now)
		slots[ej] = nil
	}

	// Inject into one empty slot (injection is lowest priority by
	// construction: it only uses a slot no in-flight packet holds).
	f.tryInject(id, n, &slots, now)

	// Two-stage permutation deflection network.
	outs := permute(n.c, &slots, now)

	// Border fix-up: reassign packets steered at missing ports, golden
	// class first so its delivery guarantee survives the mesh edge.
	f.fixup(id, n, &outs, now)

	for d, p := range outs {
		if p == nil {
			continue
		}
		f.forward(n, p, geom.Dir(d), now)
	}
}

// permute runs the 4×4 partial permutation: stage 1 pairs (N,E) and
// (S,W) and steers toward the {N,E} or {S,W} half; stage 2 picks the
// concrete port.  Losing an arbitration misroutes the loser — that is
// the deflection.
func permute(c geom.Coord, slots *[geom.NumLinkDirs]*packet.Packet, now int64) [geom.NumLinkDirs]*packet.Packet {
	// Stage 1: toward the {N,E} half ("up") or the {S,W} half.
	aUp, aDown := arb(slots[geom.North], slots[geom.East],
		up(c, slots[geom.North], now), up(c, slots[geom.East], now), now)
	bUp, bDown := arb(slots[geom.South], slots[geom.West],
		up(c, slots[geom.South], now), up(c, slots[geom.West], now), now)
	// Stage 2: concrete ports.  In the upper block "first" is N; in the
	// lower block "first" is S.
	var outs [geom.NumLinkDirs]*packet.Packet
	outs[geom.North], outs[geom.East] = arb(aUp, bUp, wants(c, aUp, geom.North), wants(c, bUp, geom.North), now)
	outs[geom.South], outs[geom.West] = arb(aDown, bDown, wants(c, aDown, geom.South), wants(c, bDown, geom.South), now)
	return outs
}

// wantsUp reports whether p steers toward the {N,E} half of the
// permutation network at router c.
func wantsUp(c geom.Coord, p *packet.Packet, now int64) bool {
	d := geom.XYFirst(c, p.Dst)
	if d == geom.Local {
		// At its destination but not ejected this cycle: steer by
		// hash; it will loop back.
		return router.Hash64(p.ID, uint64(now))&1 == 0
	}
	return d == geom.North || d == geom.East
}

// arb is one 2×2 arbiter block: the packet that wants the "first"
// output and wins priority gets it; the other takes "second".
func arb(a, b *packet.Packet, aWants, bWants bool, now int64) (first, second *packet.Packet) {
	switch {
	case a == nil && b == nil:
		return nil, nil
	case b == nil:
		if aWants {
			return a, nil
		}
		return nil, a
	case a == nil:
		if bWants {
			return b, nil
		}
		return nil, b
	case aWants == bWants:
		winner, loser := a, b
		if !prio(a, b, now) {
			winner, loser = b, a
		}
		if aWants {
			return winner, loser
		}
		return loser, winner
	case aWants:
		return a, b
	default:
		return b, a
	}
}

func up(c geom.Coord, p *packet.Packet, now int64) bool {
	return p != nil && wantsUp(c, p, now)
}

func wants(c geom.Coord, p *packet.Packet, d geom.Dir) bool {
	return p != nil && geom.XYFirst(c, p.Dst) == d
}

// fixup moves packets off missing border ports — and, with faults
// armed, off killed links — onto free usable ones.
func (f *Fabric) fixup(id int, n *node, outs *[geom.NumLinkDirs]*packet.Packet, now int64) {
	// Fixed-size candidate array: at most one packet per port needs
	// re-homing, and a heap slice here would allocate every border
	// cycle.
	var homeless [geom.NumLinkDirs]*packet.Packet
	nh := 0
	for d := range outs {
		if outs[d] != nil && !f.outUsable(id, n, geom.Dir(d), now) {
			homeless[nh] = outs[d]
			nh++
			outs[d] = nil
		}
	}
	if nh == 0 {
		return
	}
	// Golden class first, then hash order, deterministically.
	for i := 0; i < nh; i++ {
		for j := i + 1; j < nh; j++ {
			if prio(homeless[j], homeless[i], now) {
				homeless[i], homeless[j] = homeless[j], homeless[i]
			}
		}
	}
	for _, p := range homeless[:nh] {
		placed := false
		// Preferred productive port first.
		if d := geom.XYFirst(n.c, p.Dst); d != geom.Local && f.outUsable(id, n, d, now) && outs[d] == nil {
			outs[d] = p
			placed = true
		}
		if !placed {
			for _, d := range geom.LinkDirs {
				if f.outUsable(id, n, d, now) && outs[d] == nil {
					outs[d] = p
					placed = true
					break
				}
			}
		}
		if !placed {
			// Fault-free this is unreachable (injection leaves room for
			// every existing port); with links down it is the expected
			// degradation path.
			if f.faults != nil {
				f.dropOrRetry(p, now)
				continue
			}
			//nocvet:alloc panic-path formatting on a falsified invariant; runs at most once, while dying
			panic(fmt.Sprintf("chipper: no output left at %v cycle %d for %v", n.c, now, p))
		}
	}
}

func (f *Fabric) tryInject(id int, n *node, slots *[geom.NumLinkDirs]*packet.Packet, now int64) {
	// The router can emit at most one packet per usable output port;
	// borders have fewer than four (and faults may kill more), so
	// injection must leave room or the fix-up pass would strand a
	// packet.
	usableOut, occupied := 0, 0
	free := -1
	for d := range slots {
		if f.outUsable(id, n, geom.Dir(d), now) {
			usableOut++
		}
		if slots[d] != nil {
			occupied++
		} else if free < 0 {
			free = d
		}
	}
	if free < 0 || occupied >= usableOut {
		return
	}
	for off := 0; off < n.ni.Domains(); off++ {
		dom := int((now + int64(off)) % int64(n.ni.Domains()))
		p := n.ni.Head(dom)
		if p == nil {
			continue
		}
		n.ni.Pop(dom)
		if p.InjectedAt < 0 { // a retransmission keeps its first stamp
			p.InjectedAt = now
			f.col.Injected(p)
		}
		f.meter.BufferRead(p.Size)
		slots[free] = p
		return
	}
}

func (f *Fabric) forward(n *node, p *packet.Packet, d geom.Dir, now int64) {
	// Corruption is modeled at link entry: the flit burned the wire but
	// fails its CRC and never reaches the neighbor.
	if f.faults != nil && f.faults.Corrupt(p, f.mesh.ID(n.c), d, now) {
		f.meter.LinkTraversal(p.Size)
		f.dropOrRetry(p, now)
		return
	}
	p.Hops++
	deflected := !geom.Productive(n.c, p.Dst, d)
	if deflected {
		p.Deflections++
	}
	f.meter.Allocation(1)
	f.meter.CrossbarTraversal(p.Size)
	f.meter.LinkTraversal(p.Size)
	if f.probe != nil {
		f.probe.Traverse(f.mesh.ID(n.c), d, p, p.Size, deflected, now)
	}
	n.out[d].Send(p, now)
}

func (f *Fabric) eject(n *node, p *packet.Packet, now int64) {
	p.EjectedAt = now
	f.meter.CrossbarTraversal(p.Size)
	f.col.Ejected(p)
	f.inFlight--
	if f.sink != nil {
		f.sink(f.mesh.ID(n.c), p, now)
	}
}

// dropOrRetry hands a fault-stricken packet to NI-level recovery:
// bounded source retransmission with backoff, then a counted drop.
func (f *Fabric) dropOrRetry(p *packet.Packet, now int64) {
	if f.recov.TryRetry(p, now) {
		f.col.Retransmitted(p, now)
		return
	}
	f.col.Dropped(p, now)
	f.inFlight--
}

// InFlight returns accepted-but-undelivered packets.
func (f *Fabric) InFlight() int { return f.inFlight }

// Audit verifies that NI queues plus link occupancy account for every
// in-flight packet.
func (f *Fabric) Audit() error {
	n := 0
	for _, nd := range f.nodes {
		n += nd.ni.Backlog()
		for _, l := range nd.out {
			if l != nil {
				n += l.InFlight()
			}
		}
	}
	if f.recov != nil {
		n += f.recov.Queue.Len()
	}
	if n != f.inFlight {
		return fmt.Errorf("chipper: %d packets in queues+links, %d in flight", n, f.inFlight)
	}
	return nil
}

var _ network.Fabric = (*Fabric)(nil)
