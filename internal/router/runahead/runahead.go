// Package runahead implements a Runahead-style network, the third
// bufferless design the paper cites ([11], Li et al., HPCA 2016) —
// built as an extension alongside BLESS and CHIPPER.
//
// Runahead simplifies the router below even CHIPPER by *dropping*
// packets instead of deflecting them: each output port goes to the
// closest-to-destination requester, everyone else is discarded, and the
// router needs neither deflection logic nor port-balance guarantees.
// The original system pairs this lossy single-cycle network with a
// conventional guaranteed NoC and treats runahead delivery as a pure
// latency optimization.  This standalone reproduction supplies the
// missing guarantee with source retransmission: the network interface
// keeps a copy of every in-flight packet and re-sends it when no
// delivery acknowledgement arrives within a timeout (acknowledgements
// travel out of band — the paper's companion NoC would carry them; see
// DESIGN.md §2 for the substitution).
//
// Packets are single-flit and the hop delay is 1 cycle (the design's
// point is a single-cycle router), so uncontended latency is far below
// BLESS — and drop rate, not deflection, grows with load.
package runahead

import (
	"fmt"

	"surfbless/internal/config"
	"surfbless/internal/fault"
	"surfbless/internal/geom"
	"surfbless/internal/link"
	"surfbless/internal/network"
	"surfbless/internal/packet"
	"surfbless/internal/power"
	"surfbless/internal/probe"
	"surfbless/internal/router"
	"surfbless/internal/stats"
)

// retryTimeout is the cycles a source waits for the (out-of-band)
// delivery acknowledgement before retransmitting.  It exceeds the
// worst uncontended flight time on an 8×8 mesh (14 hops × 1 cycle)
// with margin for ejection serialization.
const retryTimeout = 32

// Fabric is a Runahead mesh.  It implements network.Fabric.
type Fabric struct {
	cfg   config.Config
	mesh  geom.Mesh
	nodes []*node
	sink  network.Sink
	col   *stats.Collector
	meter *power.Meter
	probe *probe.Probe // nil = no spatial observation

	// faults plugs the shared injector into runahead's native recovery:
	// fault-stricken copies go through the same drop-and-retransmit
	// machinery as congestion losses (source timers are unbounded, so a
	// permanent fault on a packet's only route shows up as livelock for
	// the watchdog, not as a silent loss).
	faults *fault.Injector

	retries  retryHeap
	retrySeq int64

	inFlight        int
	traveling       int // copies currently inside the mesh
	Drops           int64
	Retransmissions int64
	lastStep        int64
}

type node struct {
	c   geom.Coord
	ni  *router.NI
	in  [geom.NumLinkDirs]*link.Line[*packet.Packet]
	out [geom.NumLinkDirs]*link.Line[*packet.Packet]

	// arrivals is per-cycle scratch owned by this node and reused
	// across cycles (DESIGN.md §12): at most one packet per input port.
	arrivals []*packet.Packet
}

// retryEntry tracks one undelivered packet awaiting its timeout.
type retryEntry struct {
	at  int64
	seq int64
	p   *packet.Packet
}

// retryHeap is a binary min-heap on (at, seq), maintained by the
// pushRetry/popRetry sift functions below rather than container/heap:
// heap.Push/Pop box every retryEntry into an interface value, which
// would heap-allocate on every single injection (timers are armed on
// the hot path).
type retryHeap []retryEntry

func (h retryHeap) less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

// pushRetry arms a retransmission timer, sifting it into heap position.
// The self-append reuses the heap's backing array at steady state; it
// only grows during warm-up.
func (f *Fabric) pushRetry(e retryEntry) {
	f.retries = append(f.retries, e)
	h := f.retries
	for i := len(h) - 1; i > 0; {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// popRetry removes and returns the earliest-due timer.
func (f *Fabric) popRetry() retryEntry {
	h := f.retries
	n := len(h) - 1
	e := h[0]
	h[0] = h[n]
	h[n] = retryEntry{} // unpin the packet from the vacated slot
	h = h[:n]
	for i := 0; ; {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && h.less(r, c) {
			c = r
		}
		if !h.less(c, i) {
			break
		}
		h[i], h[c] = h[c], h[i]
		i = c
	}
	f.retries = h
	return e
}

// New builds a Runahead mesh.  The hop delay is forced to 1 cycle (the
// single-cycle router) regardless of cfg.BufferlessPipeline.
func New(cfg config.Config, sink network.Sink, col *stats.Collector, meter *power.Meter) (*Fabric, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Model != config.RUNAHEAD {
		return nil, fmt.Errorf("runahead: config model is %v", cfg.Model)
	}
	if col == nil || meter == nil {
		return nil, fmt.Errorf("runahead: collector and meter are required")
	}
	f := &Fabric{cfg: cfg, mesh: cfg.Mesh(), sink: sink, col: col, meter: meter, lastStep: -1}
	f.nodes = make([]*node, f.mesh.Nodes())
	for id := range f.nodes {
		f.nodes[id] = &node{
			c:  f.mesh.CoordOf(id),
			ni: router.NewNI(cfg.Domains, cfg.InjectionQueueCap),
		}
	}
	for _, n := range f.nodes {
		for _, d := range geom.LinkDirs {
			if !f.mesh.HasNeighbor(n.c, d) {
				continue
			}
			l := link.New[*packet.Packet](1) // single-cycle hop
			n.out[d] = l
			f.nodes[f.mesh.ID(n.c.Add(d))].in[d.Opposite()] = l
		}
	}
	return f, nil
}

// SetProbe attaches a hot-path observer recording per-router
// traversals and link flits (Runahead drops rather than deflects, so
// its deflection heatmap stays zero; nil to remove).
func (f *Fabric) SetProbe(p *probe.Probe) { f.probe = p }

// SetFaults arms a fault injector (nil to disarm).
func (f *Fabric) SetFaults(inj *fault.Injector) { f.faults = inj }

// Inject offers p (single-flit) to node's NI.
func (f *Fabric) Inject(nodeID int, p *packet.Packet, now int64) bool {
	if p.Size != 1 {
		panic(fmt.Sprintf("runahead: cannot transfer multi-flit packet %v", p))
	}
	if p.Src == p.Dst {
		panic(fmt.Sprintf("runahead: self-addressed packet %v (deliver locally instead)", p))
	}
	n := f.nodes[nodeID]
	if !n.ni.Offer(p) {
		f.col.Refused(p.Domain, now)
		return false
	}
	f.col.Created(p)
	f.meter.BufferWrite(p.Size)
	f.inFlight++
	return true
}

// Step advances the network by one cycle.
func (f *Fabric) Step(now int64) {
	if now <= f.lastStep {
		//nocvet:alloc panic-path formatting on a falsified invariant; runs at most once, while dying
		panic(fmt.Sprintf("runahead: Step(%d) after Step(%d)", now, f.lastStep))
	}
	f.lastStep = now

	// Retransmit timed-out packets by re-queueing them at their source
	// NI ahead of fresh traffic (a retried packet is older).
	for len(f.retries) > 0 && f.retries[0].at <= now {
		e := f.popRetry()
		if e.p.EjectedAt >= 0 {
			continue // delivered in the meantime
		}
		f.Retransmissions++
		f.col.Retransmitted(e.p, now)
		f.meter.BufferRead(1)
		f.launch(f.nodes[f.mesh.ID(e.p.Src)], e.p, now)
	}

	for id, n := range f.nodes {
		f.stepNode(id, n, now)
	}
}

func (f *Fabric) stepNode(id int, n *node, now int64) {
	arrivals := n.arrivals[:0]
	for _, d := range geom.LinkDirs {
		if n.in[d] == nil {
			continue
		}
		arrivals = n.in[d].RecvInto(now, arrivals)
	}
	n.arrivals = arrivals
	f.traveling -= len(arrivals)

	// A frozen router loses every arriving copy; the source timers
	// retransmit them like any congestion drop.
	if f.faults != nil && f.faults.Frozen(id, now) {
		for _, p := range arrivals {
			f.drop(p)
		}
		return
	}

	// Eject one arrival per cycle; extra local arrivals are dropped (the
	// source will retransmit if this was the only copy in flight).
	ejected := false
	var taken [geom.NumLinkDirs]bool
	for _, p := range arrivals {
		if p.Dst == n.c {
			if !ejected && p.EjectedAt < 0 {
				f.eject(n, p, now)
				ejected = true
			} else {
				f.drop(p)
			}
			continue
		}
		// Forward on the X-Y output or drop: closest-to-destination wins
		// the port (deterministic tie-break on ID); a killed link drops
		// the copy like contention would.
		d := geom.XYFirst(n.c, p.Dst)
		if taken[d] || (f.faults != nil && f.faults.LinkDown(id, d, now)) {
			f.drop(p)
			continue
		}
		taken[d] = true
		f.forward(n, p, d, now)
	}

	// Injection: one fresh packet if its X-Y port is still free.
	for off := 0; off < n.ni.Domains(); off++ {
		dom := int((now + int64(off)) % int64(n.ni.Domains()))
		p := n.ni.Head(dom)
		if p == nil {
			continue
		}
		d := geom.XYFirst(n.c, p.Dst)
		if d == geom.Local || taken[d] || n.out[d] == nil {
			continue
		}
		if f.faults != nil && f.faults.LinkDown(id, d, now) {
			continue // wait in the NI until the link heals
		}
		n.ni.Pop(dom)
		if p.InjectedAt < 0 {
			p.InjectedAt = now
			f.col.Injected(p)
		}
		f.meter.BufferRead(1)
		f.forward(n, p, d, now)
		// One retransmission timer per launch: if no delivery happens
		// within the timeout, the source sends a fresh copy.  A copy
		// lives at most 2(N−1) < retryTimeout cycles (X-Y only, single
		// cycle hops), so two copies never coexist in the mesh.
		f.pushRetry(retryEntry{at: now + retryTimeout, seq: f.retrySeq, p: p})
		f.retrySeq++
		break
	}
}

// launch (re)sends a packet from its source: straight onto the mesh
// next cycle via the NI queue head position.
func (f *Fabric) launch(n *node, p *packet.Packet, now int64) {
	// Re-offer at the front is approximated by a plain offer; a full NI
	// queue forces another timeout round instead of losing the packet.
	if !n.ni.Offer(p) {
		f.pushRetry(retryEntry{at: now + retryTimeout, seq: f.retrySeq, p: p})
		f.retrySeq++
	}
}

func (f *Fabric) forward(n *node, p *packet.Packet, d geom.Dir, now int64) {
	// Corruption at link entry: the copy is lost, the timer recovers it.
	if f.faults != nil && f.faults.Corrupt(p, f.mesh.ID(n.c), d, now) {
		f.meter.LinkTraversal(1)
		f.drop(p)
		return
	}
	p.Hops++
	f.traveling++
	f.meter.Allocation(1)
	f.meter.CrossbarTraversal(1)
	f.meter.LinkTraversal(1)
	if f.probe != nil {
		f.probe.Traverse(f.mesh.ID(n.c), d, p, 1, false, now)
	}
	n.out[d].Send(p, now)
}

func (f *Fabric) drop(p *packet.Packet) {
	f.Drops++
	// The copy vanishes; the retry heap still holds the packet and the
	// timeout will relaunch it from the source.
}

func (f *Fabric) eject(n *node, p *packet.Packet, now int64) {
	p.EjectedAt = now
	f.meter.CrossbarTraversal(1)
	f.col.Ejected(p)
	f.inFlight--
	if f.sink != nil {
		f.sink(f.mesh.ID(n.c), p, now)
	}
}

// InFlight returns accepted-but-undelivered packets.
func (f *Fabric) InFlight() int { return f.inFlight }

// Audit verifies that every undelivered packet is queued, traveling or
// awaiting a retransmission timeout.
func (f *Fabric) Audit() error {
	queued := 0
	for _, nd := range f.nodes {
		queued += nd.ni.Backlog()
	}
	pendingRetries := 0
	seen := map[uint64]bool{}
	for _, e := range f.retries {
		if e.p.EjectedAt < 0 && !seen[e.p.ID] {
			pendingRetries++
			seen[e.p.ID] = true
		}
	}
	// Every in-flight packet must be accounted at least once; copies may
	// be double-counted (queued + timer armed), so the check is a lower
	// bound plus a sanity ceiling.
	accounted := queued + f.traveling + pendingRetries
	if accounted < f.inFlight {
		return fmt.Errorf("runahead: %d packets in flight but only %d accounted (queued %d, traveling %d, timers %d)",
			f.inFlight, accounted, queued, f.traveling, pendingRetries)
	}
	return nil
}

var _ network.Fabric = (*Fabric)(nil)
