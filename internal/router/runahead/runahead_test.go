package runahead

import (
	"testing"

	"surfbless/internal/config"
	"surfbless/internal/geom"
	"surfbless/internal/packet"
	"surfbless/internal/power"
	"surfbless/internal/stats"
)

type harness struct {
	f   *Fabric
	col *stats.Collector
	cfg config.Config
	ids packet.IDSource
	got []*packet.Packet
	now int64
}

func newHarness(t *testing.T, width int) *harness {
	t.Helper()
	cfg := config.Default(config.RUNAHEAD)
	cfg.Width, cfg.Height = width, width
	h := &harness{cfg: cfg}
	h.col = stats.NewCollector(cfg.Domains, 0, 0)
	meter := power.NewMeter(cfg, power.Default45nm())
	var err error
	h.f, err = New(cfg, func(node int, p *packet.Packet, now int64) {
		h.got = append(h.got, p)
	}, h.col, meter)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func (h *harness) pkt(src, dst geom.Coord) *packet.Packet {
	return packet.New(h.ids.Next(), src, dst, 0, packet.Ctrl, h.now)
}

func (h *harness) steps(n int) {
	for i := 0; i < n; i++ {
		h.f.Step(h.now)
		h.now++
	}
}

func TestNewValidation(t *testing.T) {
	cfg := config.Default(config.WH)
	col := stats.NewCollector(1, 0, 0)
	meter := power.NewMeter(cfg, power.Default45nm())
	if _, err := New(cfg, nil, col, meter); err == nil {
		t.Error("buffered config accepted")
	}
	if _, err := New(config.Default(config.RUNAHEAD), nil, nil, meter); err == nil {
		t.Error("nil collector accepted")
	}
}

// The whole point: single-cycle hops.  A lone packet arrives in exactly
// Hops cycles — 3× faster than BLESS.
func TestSingleCycleHops(t *testing.T) {
	h := newHarness(t, 8)
	src, dst := geom.Coord{X: 0, Y: 0}, geom.Coord{X: 5, Y: 3}
	p := h.pkt(src, dst)
	h.f.Inject(h.cfg.Mesh().ID(src), p, 0)
	h.steps(20)
	if p.EjectedAt != int64(h.cfg.Mesh().Hops(src, dst)) {
		t.Errorf("EjectedAt = %d, want %d (1 cycle per hop)",
			p.EjectedAt, h.cfg.Mesh().Hops(src, dst))
	}
	if h.f.Drops != 0 || h.f.Retransmissions != 0 {
		t.Errorf("lone packet dropped/retransmitted (%d/%d)", h.f.Drops, h.f.Retransmissions)
	}
}

func TestInjectContracts(t *testing.T) {
	h := newHarness(t, 4)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("multi-flit accepted")
			}
		}()
		h.f.Inject(0, packet.New(1, geom.Coord{}, geom.Coord{X: 1, Y: 0}, 0, packet.Data, 0), 0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("self-addressed accepted")
			}
		}()
		h.f.Inject(0, packet.New(2, geom.Coord{}, geom.Coord{}, 0, packet.Ctrl, 0), 0)
	}()
}

// Contention drops and retransmission recovers: two packets crossing
// the same output in the same cycle lose one copy, yet both arrive.
func TestDropAndRetransmit(t *testing.T) {
	h := newHarness(t, 4)
	mesh := h.cfg.Mesh()
	// Both want the East port of (1,1) at the same cycle: (0,1)→(3,1)
	// arrives from West as (1,0)→? no — construct: a from (0,1) east,
	// b injected at (1,1) is lower priority; instead two through-flows:
	// a: (0,1)→(3,1) eastbound; b: (1,0)→(1,3)… crosses at (1,1) but
	// wants South — no clash.  Use b: (1,0)→(3,2): X-Y goes east at
	// (1,1)? No: X-first from (1,0) goes east immediately.  Take
	// b: (1,0)→(1,1)… that ejects.  Simplest: rely on load.
	injected := 0
	for cyc := 0; cyc < 120; cyc++ {
		for node := 0; node < mesh.Nodes(); node++ {
			src := mesh.CoordOf(node)
			dst := mesh.CoordOf((node*5 + cyc*3 + 1) % mesh.Nodes())
			if dst == src {
				continue
			}
			if h.f.Inject(node, h.pkt(src, dst), h.now) {
				injected++
			}
		}
		h.f.Step(h.now)
		h.now++
	}
	for i := 0; i < 30000 && h.f.InFlight() > 0; i++ {
		h.f.Step(h.now)
		h.now++
	}
	if h.f.InFlight() != 0 {
		t.Fatalf("%d packets never delivered", h.f.InFlight())
	}
	if len(h.got) != injected {
		t.Errorf("delivered %d of %d", len(h.got), injected)
	}
	if h.f.Drops == 0 || h.f.Retransmissions == 0 {
		t.Errorf("full-mesh load with no drops (%d) or retransmissions (%d) is implausible",
			h.f.Drops, h.f.Retransmissions)
	}
	if err := h.col.CheckConservation(0); err != nil {
		t.Error(err)
	}
	if err := h.f.Audit(); err != nil {
		t.Error(err)
	}
}

// A retransmitted packet's latency includes the timeout: under a load
// that provably retransmits, the maximum delivered latency must be at
// least retryTimeout.
func TestRetransmitLatencyAccounting(t *testing.T) {
	h := newHarness(t, 4)
	mesh := h.cfg.Mesh()
	for cyc := 0; cyc < 120; cyc++ {
		for node := 0; node < mesh.Nodes(); node++ {
			src := mesh.CoordOf(node)
			dst := mesh.CoordOf((node*5 + cyc*3 + 1) % mesh.Nodes())
			if dst != src {
				h.f.Inject(node, h.pkt(src, dst), h.now)
			}
		}
		h.f.Step(h.now)
		h.now++
	}
	for i := 0; i < 30000 && h.f.InFlight() > 0; i++ {
		h.f.Step(h.now)
		h.now++
	}
	if h.f.Retransmissions == 0 {
		t.Fatal("full-mesh load produced no retransmissions")
	}
	maxLat := int64(0)
	for _, p := range h.got {
		if l := p.TotalLatency(); l > maxLat {
			maxLat = l
		}
	}
	if maxLat < retryTimeout {
		t.Errorf("max latency %d below the retry timeout %d despite %d retransmissions",
			maxLat, retryTimeout, h.f.Retransmissions)
	}
}

func TestStepMonotonic(t *testing.T) {
	h := newHarness(t, 4)
	h.f.Step(0)
	defer func() {
		if recover() == nil {
			t.Error("repeated Step must panic")
		}
	}()
	h.f.Step(0)
}
