package surfbless

import (
	"strings"
	"testing"

	"surfbless/internal/geom"
	"surfbless/internal/packet"
	"surfbless/internal/wave"
)

// Failure injection: the always-on wave assertions are the confinement
// proof, so they must actually fire when the schedule is corrupted —
// a silent checker would be worse than none.

// runUntilPanic drives the fabric and returns the recovered panic
// message, or "" if nothing fired.
func runUntilPanic(h *harness, cycles int) (msg string) {
	defer func() {
		if r := recover(); r != nil {
			msg, _ = r.(string)
			if msg == "" {
				msg = "non-string panic"
			}
		}
	}()
	mesh := h.cfg.Mesh()
	for cyc := 0; cyc < cycles; cyc++ {
		for node := 0; node < mesh.Nodes(); node += 5 {
			src := mesh.CoordOf(node)
			dst := mesh.CoordOf((node*7 + cyc + 3) % mesh.Nodes())
			if src == dst {
				continue
			}
			h.f.Inject(node, h.pkt(src, dst, (node+cyc)%h.cfg.Domains, packet.Ctrl), h.now)
		}
		h.f.Step(h.now)
		h.now++
	}
	return ""
}

// A decoder swapped mid-flight (routers disagreeing about wave→domain
// ownership) must be caught by the arrival-domain assertion.
func TestInjectedDecoderCorruptionCaught(t *testing.T) {
	h := newHarness(t, defCfg(3), nil)
	// Warm the network up with real traffic…
	if msg := runUntilPanic(h, 30); msg != "" {
		t.Fatalf("healthy fabric panicked: %s", msg)
	}
	// …then corrupt the decoder: domains rotate by one, so every packet
	// already in flight is now on a "foreign" wave.
	h.f.dec = wave.RoundRobin(h.f.sched.Smax(), 3)
	rotated, err := wave.FromSets(h.f.sched.Smax(), [][]int{
		h.f.dec.Owned(1), h.f.dec.Owned(2), h.f.dec.Owned(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	h.f.dec = rotated
	msg := runUntilPanic(h, 50)
	if msg == "" {
		t.Fatal("decoder corruption went undetected")
	}
	if !strings.Contains(msg, "domain") && !strings.Contains(msg, "wave") {
		t.Errorf("panic message does not identify the violation: %s", msg)
	}
}

// A schedule with the wrong hop delay (counters advancing at the right
// rate but with initial offsets computed for a different P) breaks
// continuity; packets arrive on waves of other domains and the
// assertion fires.
func TestInjectedScheduleMismatchCaught(t *testing.T) {
	h := newHarness(t, defCfg(2), nil)
	if msg := runUntilPanic(h, 30); msg != "" {
		t.Fatalf("healthy fabric panicked: %s", msg)
	}
	// A schedule built for P=2 on a fabric whose links take P=3: same
	// Smax parity games don't save it — offsets diverge per hop.
	h.f.sched = wave.New(h.cfg.Mesh(), 2)
	h.f.dec = wave.RoundRobin(h.f.sched.Smax(), 2)
	if msg := runUntilPanic(h, 80); msg == "" {
		t.Fatal("hop-delay mismatch went undetected")
	}
}

// Conservation corruption must be caught by Audit.
func TestInjectedConservationDriftCaught(t *testing.T) {
	h := newHarness(t, defCfg(1), nil)
	h.f.Inject(0, h.pkt(geom.Coord{X: 0, Y: 0}, geom.Coord{X: 3, Y: 3}, 0, packet.Ctrl), 0)
	if err := h.f.Audit(); err != nil {
		t.Fatalf("healthy fabric failed audit: %v", err)
	}
	h.f.inFlight += 2 // simulate an accounting bug
	if err := h.f.Audit(); err == nil {
		t.Error("conservation drift went undetected")
	}
}
