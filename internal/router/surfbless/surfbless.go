// Package surfbless implements the paper's contribution: Surf-Bless
// routing — confined-interference communication on a bufferless NoC
// (Section 4).
//
// Every router consults three wave schedulers (south-east, north, west;
// package wave) that own its port groups cycle by cycle.  A packet may
// use only ports whose current wave belongs to the packet's domain, and
// injection/ejection happen exclusively on the south-east sub-wave.
// The routing algorithm is the paper's two-step procedure (§4.3):
//
//	Step 1 — old-first arbitration [12] picks the packet order;
//	         injection has the lowest priority.
//	Step 2 — try the X-Y output; if it is not in the packet's domain or
//	         already granted, try Y-X; otherwise deflect to a free
//	         output of the same domain chosen pseudo-randomly.
//
// The wave schedule's port-balance invariant guarantees the deflection
// target exists, so packets never wait inside the network and no
// in-network VCs are needed.  The fabric enforces that invariant with
// always-on assertions: a missing output or a packet arriving on a
// foreign domain's wave panics, because it would falsify the paper's
// central claim.
//
// Multi-flit packets (§5.2) travel as worms pinned to aligned windows
// of consecutive same-domain waves: a worm of L flits may start only
// where the decoder reports CanStart(w, L) (the "begin of the wave
// sets"), which makes window occupancy self-synchronizing — no
// explicit output reservation is needed because mid-window waves never
// satisfy CanStart for a new head.
//
// Stepping optionally shards across an internal/shard worker pool
// (SetShards): collecting arrivals and resolving routes become two
// barrier-separated phases over contiguous node tiles, with meters,
// lifecycle events and the in-flight counter accumulated per tile and
// replayed in tile order — results stay bit-identical to serial
// stepping (DESIGN.md §17).
package surfbless

import (
	"fmt"

	"surfbless/internal/config"
	"surfbless/internal/fault"
	"surfbless/internal/geom"
	"surfbless/internal/link"
	"surfbless/internal/network"
	"surfbless/internal/packet"
	"surfbless/internal/power"
	"surfbless/internal/probe"
	"surfbless/internal/router"
	"surfbless/internal/shard"
	"surfbless/internal/stats"
	"surfbless/internal/wave"
)

// Policy tunes the §4.3 output-selection procedure for ablation
// studies.  The zero value is the paper's algorithm.
type Policy struct {
	// DisableYX skips Step 2's Y-X fallback, deflecting straight after
	// a failed X-Y try.
	DisableYX bool
	// DisableRandom replaces the pseudo-random deflection choice with
	// the first eligible port in fixed N,E,S,W order.
	DisableRandom bool
}

// Fabric is a Surf-Bless mesh.  It implements network.Fabric.
type Fabric struct {
	cfg   config.Config
	mesh  geom.Mesh
	sched *wave.Schedule
	dec   *wave.Decoder
	slot  []int // per-domain slot width (window length in waves)
	pol   Policy

	nodes []*node
	sink  network.Sink
	col   *stats.Collector
	meter *power.Meter
	probe *probe.Probe // nil = no spatial observation

	faults *fault.Injector  // nil = fault-free (hot path untouched)
	recov  *router.Recovery // non-nil iff faults is

	fx0 tileFX // serial stepping context (direct effects)

	pool      *shard.Pool // nil = serial stepping
	tiles     int
	fxs       []tileFX // one deferred context per tile
	shNow     int64    // cycle being stepped, read by workers
	collectFn func(int)
	resolveFn func(int)

	inFlight int
	lastStep int64
}

// lifeEvt is one deferred packet lifecycle event (sharded stepping):
// the collector call and sink hand-off a worker recorded for replay at
// the cycle barrier, in tile order — the serial call order.
type lifeEvt struct {
	node  int32
	eject bool
	p     *packet.Packet
}

// tileFX is one stepping context: per-tile scratch plus the effect
// channel.  Serial stepping uses the fabric's single direct context,
// which applies meter/collector/counter effects inline; each shard
// tile owns a deferred context that accumulates them for replay at the
// cycle barrier.  Meter counters are linear, so deferral is exact; the
// collector and sink see the same per-cycle call sequence because
// tiles replay in node order.
type tileFX struct {
	direct bool

	bufR, xbar, alloc, lnk int64
	inFlight               int
	evts                   []lifeEvt

	rbuf []*packet.Packet // per-link receive scratch, reused every cycle
}

type node struct {
	c   geom.Coord
	ni  *router.NI
	in  [geom.NumLinkDirs]*link.Line[*packet.Packet]
	out [geom.NumLinkDirs]*link.Line[*packet.Packet]

	// Per-cycle scratch reused across cycles (DESIGN.md §12).  A dense
	// array of (packet, arrival direction) pairs replaces the former
	// per-cycle map[*packet.Packet]geom.Dir — at most one arrival per
	// input port, so four slots cover every cycle with zero heap work.
	arrivals [geom.NumLinkDirs]arrival
	nArr     int
}

// arrival is one packet collected from an input link this cycle,
// remembering the port it came in on (used in invariant diagnostics).
type arrival struct {
	p    *packet.Packet
	from geom.Dir
}

// New builds a Surf-Bless mesh for cfg with the paper's routing
// algorithm.  slotWidths gives the window length per domain (nil means
// 1 for every domain); packets of a domain must not exceed its slot
// width.  Wave→domain decoding follows cfg.WaveSets when set, else
// round-robin.
func New(cfg config.Config, slotWidths []int, sink network.Sink, col *stats.Collector, meter *power.Meter) (*Fabric, error) {
	return NewWithPolicy(cfg, slotWidths, Policy{}, sink, col, meter)
}

// NewWithPolicy is New with an ablation policy applied.
func NewWithPolicy(cfg config.Config, slotWidths []int, pol Policy, sink network.Sink, col *stats.Collector, meter *power.Meter) (*Fabric, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Model != config.SB {
		return nil, fmt.Errorf("surfbless: config model is %v", cfg.Model)
	}
	if col == nil || meter == nil {
		return nil, fmt.Errorf("surfbless: collector and meter are required")
	}
	mesh := cfg.Mesh()
	sched := wave.New(mesh, cfg.HopDelay())

	var dec *wave.Decoder
	if cfg.WaveSets != nil {
		var err error
		if dec, err = wave.FromSets(sched.Smax(), cfg.WaveSets); err != nil {
			return nil, err
		}
	} else {
		dec = wave.RoundRobin(sched.Smax(), cfg.Domains)
	}

	if slotWidths == nil {
		slotWidths = make([]int, cfg.Domains)
		for i := range slotWidths {
			slotWidths[i] = 1
		}
	}
	if len(slotWidths) != cfg.Domains {
		return nil, fmt.Errorf("surfbless: %d slot widths for %d domains", len(slotWidths), cfg.Domains)
	}
	for dom, w := range slotWidths {
		if w < 1 {
			return nil, fmt.Errorf("surfbless: domain %d slot width %d", dom, w)
		}
		if dec.StartableSlots(dom, w) == 0 {
			return nil, fmt.Errorf("surfbless: domain %d has no startable window of %d waves", dom, w)
		}
	}

	f := &Fabric{
		cfg: cfg, mesh: mesh, sched: sched, dec: dec, slot: slotWidths, pol: pol,
		sink: sink, col: col, meter: meter, lastStep: -1,
	}
	f.fx0.direct = true
	f.nodes = make([]*node, mesh.Nodes())
	for id := range f.nodes {
		f.nodes[id] = &node{
			c:  mesh.CoordOf(id),
			ni: router.NewNI(cfg.Domains, cfg.InjectionQueueCap),
		}
	}
	p := cfg.HopDelay()
	for _, n := range f.nodes {
		for _, d := range geom.LinkDirs {
			if !mesh.HasNeighbor(n.c, d) {
				continue
			}
			l := link.New[*packet.Packet](p)
			n.out[d] = l
			f.nodes[mesh.ID(n.c.Add(d))].in[d.Opposite()] = l
		}
	}
	return f, nil
}

// SetProbe attaches a hot-path observer recording per-router
// traversals, deflections and link flits (nil to remove).
func (f *Fabric) SetProbe(p *probe.Probe) { f.probe = p }

// SetShards partitions the mesh into n contiguous node tiles stepped
// by a persistent worker pool (n ≤ 1 restores serial stepping; n is
// clamped to the node count).  Results are bit-identical to serial
// stepping.  While a fault injector is armed the fabric falls back to
// serial stepping: recovery paths mutate shared retry state.
func (f *Fabric) SetShards(n int) error {
	f.StopShards()
	if nodes := len(f.nodes); n > nodes {
		n = nodes
	}
	if n <= 1 {
		return nil
	}
	f.tiles = n
	f.fxs = make([]tileFX, n)
	f.collectFn = f.collectTile
	f.resolveFn = f.resolveTile
	f.pool = shard.NewPool(n)
	return nil
}

// StopShards releases the worker pool and restores serial stepping.
func (f *Fabric) StopShards() {
	if f.pool == nil {
		return
	}
	f.pool.Close()
	f.pool, f.fxs, f.tiles = nil, nil, 0
	f.collectFn, f.resolveFn = nil, nil
}

// SetFaults arms a fault injector (nil to disarm).  Faults break the
// wave-balance invariant on purpose, so while armed the fabric routes
// stricken packets through drop-with-retransmit recovery instead of
// panicking.
func (f *Fabric) SetFaults(inj *fault.Injector) {
	f.faults = inj
	if inj == nil {
		f.recov = nil
		return
	}
	f.recov = &router.Recovery{MaxRetries: inj.MaxRetries(), Backoff: inj.Backoff()}
}

// Decoder exposes the wave→domain decoder (read-only use).
func (f *Fabric) Decoder() *wave.Decoder { return f.dec }

// Schedule exposes the wave schedule (read-only use).
func (f *Fabric) Schedule() *wave.Schedule { return f.sched }

// Inject offers p to node's per-domain NI queue.  It panics when the
// packet violates the static domain contract (bad domain index, or a
// size exceeding the domain's slot width) and returns false under
// backpressure.
func (f *Fabric) Inject(nodeID int, p *packet.Packet, now int64) bool {
	if p.Domain < 0 || p.Domain >= f.cfg.Domains {
		panic(fmt.Sprintf("surfbless: %v has domain outside [0,%d)", p, f.cfg.Domains))
	}
	if p.Size > f.slot[p.Domain] {
		panic(fmt.Sprintf("surfbless: %v exceeds domain %d slot width %d", p, p.Domain, f.slot[p.Domain]))
	}
	n := f.nodes[nodeID]
	if !n.ni.Offer(p) {
		f.col.Refused(p.Domain, now)
		return false
	}
	f.col.Created(p)
	f.meter.BufferWrite(p.Size)
	f.inFlight++
	return true
}

// Step advances the network by one cycle.
func (f *Fabric) Step(now int64) {
	if now <= f.lastStep {
		//nocvet:alloc panic-path formatting on a falsified invariant; runs at most once, while dying
		panic(fmt.Sprintf("surfbless: Step(%d) after Step(%d)", now, f.lastStep))
	}
	f.lastStep = now
	if f.recov != nil {
		f.relaunchRetries(now)
	}
	if f.pool != nil && f.faults == nil {
		f.stepSharded(now)
		return
	}
	for id, n := range f.nodes {
		f.collectNode(n, now, &f.fx0)
		f.resolveNode(id, n, now, &f.fx0)
	}
}

// stepSharded runs the cycle as two barrier-separated phases over the
// node tiles: collect (drain inbound link lines) then resolve (route,
// forward, inject — sending on outbound lines).  Every link line has
// exactly one reader (collect) and one writer (resolve) and a delay of
// at least one cycle, so neither phase observes a same-cycle write and
// the schedule is bit-identical to serial stepping.  Deferred effects
// replay in tile order — the serial node order.
func (f *Fabric) stepSharded(now int64) {
	f.shNow = now
	f.pool.Run(f.tiles, f.collectFn)
	f.pool.Run(f.tiles, f.resolveFn)
	for t := range f.fxs {
		f.applyFX(&f.fxs[t], now)
	}
	if f.probe != nil {
		// Draining the probe ring every cycle keeps workers from ever
		// hitting the flush-on-full path (shared aggregate state): a node
		// appends a bounded handful of events per cycle, far below a
		// segment's capacity.
		f.probe.Flush()
	}
}

// collectTile drains one tile's inbound link lines and ejections.
//
//shard:phase(receive)
func (f *Fabric) collectTile(t int) {
	lo, hi := shard.Range(len(f.nodes), f.tiles, t)
	for id := lo; id < hi; id++ {
		f.collectNode(f.nodes[id], f.shNow, &f.fxs[t])
	}
}

// resolveTile runs one tile's permutation/deflection resolution.
//
//shard:phase(resolve)
func (f *Fabric) resolveTile(t int) {
	lo, hi := shard.Range(len(f.nodes), f.tiles, t)
	for id := lo; id < hi; id++ {
		f.resolveNode(id, f.nodes[id], f.shNow, &f.fxs[t])
	}
}

// applyFX replays one tile's deferred effects at the cycle barrier.
//
//shard:phase(effects)
func (f *Fabric) applyFX(fx *tileFX, now int64) {
	f.meter.BufferRead(int(fx.bufR))
	f.meter.CrossbarTraversal(int(fx.xbar))
	f.meter.Allocation(int(fx.alloc))
	f.meter.LinkTraversal(int(fx.lnk))
	fx.bufR, fx.xbar, fx.alloc, fx.lnk = 0, 0, 0, 0
	f.inFlight += fx.inFlight
	fx.inFlight = 0
	for i := range fx.evts {
		ev := &fx.evts[i]
		if ev.eject {
			f.col.Ejected(ev.p)
			if f.sink != nil {
				f.sink(int(ev.node), ev.p, now)
			}
		} else {
			f.col.Injected(ev.p)
		}
		ev.p = nil
	}
	fx.evts = fx.evts[:0]
}

// relaunchRetries re-offers packets whose retransmission backoff
// expired to their source NI; a full NI costs another backoff round
// without consuming a retry attempt.
func (f *Fabric) relaunchRetries(now int64) {
	for p := f.recov.Queue.PopDue(now); p != nil; p = f.recov.Queue.PopDue(now) {
		if f.nodes[f.mesh.ID(p.Src)].ni.Offer(p) {
			f.meter.BufferWrite(p.Size)
		} else {
			f.recov.Queue.Push(p, now+f.recov.Backoff)
		}
	}
}

// collectNode is the cycle's receive phase for one router: arrivals
// drain into the node's dense scratch array under the confinement
// invariant — a packet must arrive on a wave owned by its own domain,
// at a window start.
func (f *Fabric) collectNode(n *node, now int64, fx *tileFX) {
	n.nArr = 0
	for _, d := range geom.LinkDirs {
		if n.in[d] == nil || n.in[d].Idle() {
			continue
		}
		fx.rbuf = n.in[d].RecvInto(now, fx.rbuf[:0])
		for _, p := range fx.rbuf {
			w := f.sched.InputWave(n.c, d, now)
			if dom := f.dec.Domain(w); dom != p.Domain {
				//nocvet:alloc panic-path formatting on a falsified invariant; runs at most once, while dying
				panic(fmt.Sprintf("surfbless: %v arrived at %v/%v cycle %d on wave %d of domain %d",
					p, n.c, d, now, w, dom))
			}
			if !f.dec.CanStart(w, f.slot[p.Domain]) {
				//nocvet:alloc panic-path formatting on a falsified invariant; runs at most once, while dying
				panic(fmt.Sprintf("surfbless: %v arrived at %v/%v cycle %d mid-window (wave %d)",
					p, n.c, d, now, w))
			}
			n.arrivals[n.nArr] = arrival{p: p, from: d}
			n.nArr++
		}
	}
}

// resolveNode is the cycle's routing phase for one router: ejection,
// old-first arbitration, output selection/forwarding and SE injection
// over the arrivals collectNode gathered.
func (f *Fabric) resolveNode(id int, n *node, now int64, fx *tileFX) {
	arrivals := n.arrivals[:n.nArr]

	// A frozen router's pipeline is dead: the links above were still
	// drained (they demand collection), but every arrival is lost at the
	// input and recovered via source retransmission.  Nothing ejects,
	// forwards or injects here until the freeze repairs.
	if f.faults != nil && f.faults.Frozen(id, now) {
		for _, a := range arrivals {
			f.dropOrRetry(a.p, now)
		}
		return
	}

	// Ejection happens only on the south-east sub-wave (§4.2): the
	// ejection port is owned by the SE scheduler's current wave, so a
	// packet at its destination ejects only when that wave belongs to
	// its domain — otherwise it is deflected onward (§5.1.3).
	seWave := f.sched.OutputWave(n.c, geom.Local, now)
	seDom := f.dec.Domain(seWave)
	seStart := seDom >= 0 && f.dec.CanStart(seWave, f.slot[seDom])
	ejected := -1
	if seStart {
		for i, a := range arrivals {
			if a.p.Dst == n.c && a.p.Domain == seDom && (ejected < 0 || a.p.Older(arrivals[ejected].p)) {
				ejected = i
			}
		}
	}
	if ejected >= 0 {
		f.eject(id, arrivals[ejected].p, now, fx)
		arrivals = append(arrivals[:ejected], arrivals[ejected+1:]...)
	}

	// Step 1 of the routing algorithm: old-first packet order
	// (allocation-free insertion sort; Older is a total order).
	sortArrivalsOldestFirst(arrivals)

	// Step 2: X-Y, then Y-X, then random same-domain deflection.
	var taken [geom.NumLinkDirs]bool
	for _, a := range arrivals {
		d := f.pickOutput(n, a.p, now, &taken)
		if d < 0 {
			// Fault-free, a missing output falsifies the paper's central
			// claim and must panic.  With faults armed the wave balance is
			// broken by design (a down link removes its port from the
			// schedule), so the stranded packet enters recovery instead.
			if f.faults != nil {
				f.dropOrRetry(a.p, now)
				continue
			}
			//nocvet:alloc panic-path formatting on a falsified invariant; runs at most once, while dying
			panic(fmt.Sprintf("surfbless: no same-domain output at %v cycle %d for %v (arrived %v) — wave balance violated",
				n.c, now, a.p, a.from))
		}
		f.forward(n, a.p, d, now, &taken, fx)
	}

	// Injection: only on the SE sub-wave, only for the domain owning it,
	// and only at the lowest priority (a free same-domain output must
	// remain, §4.3).
	if seStart {
		if p := n.ni.Head(seDom); p != nil {
			if d := f.pickOutput(n, p, now, &taken); d >= 0 {
				n.ni.Pop(seDom)
				if p.InjectedAt < 0 { // a retransmission keeps its first stamp
					p.InjectedAt = now
					if fx.direct {
						f.col.Injected(p)
					} else {
						fx.evts = append(fx.evts, lifeEvt{node: int32(id), p: p})
					}
				}
				if fx.direct {
					f.meter.BufferRead(p.Size)
				} else {
					fx.bufR += int64(p.Size)
				}
				f.forward(n, p, d, now, &taken, fx)
			}
		}
	}
}

// sortArrivalsOldestFirst is router.SortOldestFirst over (packet,
// direction) pairs: old-first arbitration order, ≤4 elements,
// allocation-free insertion sort.
func sortArrivalsOldestFirst(as []arrival) {
	for i := 1; i < len(as); i++ {
		a := as[i]
		j := i - 1
		for ; j >= 0 && a.p.Older(as[j].p); j-- {
			as[j+1] = as[j]
		}
		as[j+1] = a
	}
}

// eligible reports whether output d may carry p's head this cycle.
func (f *Fabric) eligible(n *node, p *packet.Packet, d geom.Dir, now int64, taken *[geom.NumLinkDirs]bool) bool {
	if d == geom.Local || n.out[d] == nil || taken[d] {
		return false
	}
	if f.faults != nil && f.faults.LinkDown(f.mesh.ID(n.c), d, now) {
		return false
	}
	w := f.sched.OutputWave(n.c, d, now)
	return f.dec.Domain(w) == p.Domain && f.dec.CanStart(w, f.slot[p.Domain])
}

// pickOutput implements Step 2 of §4.3.  It returns -1 when no
// same-domain output is free (legal only for injection attempts).
func (f *Fabric) pickOutput(n *node, p *packet.Packet, now int64, taken *[geom.NumLinkDirs]bool) geom.Dir {
	if d := geom.XYFirst(n.c, p.Dst); d != geom.Local && f.eligible(n, p, d, now, taken) {
		return d
	}
	if !f.pol.DisableYX {
		if d := geom.YXFirst(n.c, p.Dst); d != geom.Local && f.eligible(n, p, d, now, taken) {
			return d
		}
	}
	// Random deflection among the remaining same-domain outputs.  The
	// choice is a pure hash of (packet, cycle): no shared RNG state, so
	// one domain's traffic can never perturb another domain's draws.
	// A fixed-size candidate array keeps this off the heap.
	var free [geom.NumLinkDirs]geom.Dir
	nf := 0
	for _, d := range geom.LinkDirs {
		if f.eligible(n, p, d, now, taken) {
			free[nf] = d
			nf++
		}
	}
	if nf == 0 {
		return -1
	}
	if f.pol.DisableRandom {
		return free[0]
	}
	return free[router.Hash64(p.ID, uint64(now))%uint64(nf)]
}

func (f *Fabric) forward(n *node, p *packet.Packet, d geom.Dir, now int64, taken *[geom.NumLinkDirs]bool, fx *tileFX) {
	taken[d] = true
	// Single-flit corruption is modeled at link entry: the worm burned
	// the wire but fails its CRC, so it never reaches the neighbor and
	// the wave invariant at the receiver stays intact.  Faults force
	// serial stepping, so this branch always runs in the direct context.
	if f.faults != nil && f.faults.Corrupt(p, f.mesh.ID(n.c), d, now) {
		f.meter.LinkTraversal(p.Size)
		f.dropOrRetry(p, now)
		return
	}
	p.Hops++
	deflected := !geom.Productive(n.c, p.Dst, d)
	if deflected {
		p.Deflections++
	}
	if fx.direct {
		f.meter.Allocation(1)
		f.meter.CrossbarTraversal(p.Size)
		f.meter.LinkTraversal(p.Size)
	} else {
		fx.alloc++
		fx.xbar += int64(p.Size)
		fx.lnk += int64(p.Size)
	}
	if f.probe != nil {
		f.probe.Traverse(f.mesh.ID(n.c), d, p, p.Size, deflected, now)
	}
	n.out[d].Send(p, now)
}

func (f *Fabric) eject(id int, p *packet.Packet, now int64, fx *tileFX) {
	p.EjectedAt = now
	if fx.direct {
		f.meter.CrossbarTraversal(p.Size)
		f.col.Ejected(p)
		f.inFlight--
		if f.sink != nil {
			f.sink(id, p, now)
		}
		return
	}
	fx.xbar += int64(p.Size)
	fx.inFlight--
	fx.evts = append(fx.evts, lifeEvt{node: int32(id), eject: true, p: p})
}

// dropOrRetry hands a fault-stricken packet to NI-level recovery:
// bounded source retransmission with backoff, then a counted drop.
func (f *Fabric) dropOrRetry(p *packet.Packet, now int64) {
	if f.recov.TryRetry(p, now) {
		f.col.Retransmitted(p, now)
		return
	}
	f.col.Dropped(p, now)
	f.inFlight--
}

// InFlight returns accepted-but-undelivered packets.
func (f *Fabric) InFlight() int { return f.inFlight }

// Audit verifies that NI queues plus link occupancy account for every
// in-flight packet (Surf-Bless routers hold no state between cycles).
func (f *Fabric) Audit() error {
	n := 0
	for _, nd := range f.nodes {
		n += nd.ni.Backlog()
		for _, l := range nd.out {
			if l != nil {
				n += l.InFlight()
			}
		}
	}
	if f.recov != nil {
		n += f.recov.Queue.Len()
	}
	if n != f.inFlight {
		return fmt.Errorf("surfbless: %d packets in queues+links, %d in flight", n, f.inFlight)
	}
	return nil
}

var _ network.Fabric = (*Fabric)(nil)
