package surfbless

import (
	"testing"

	"surfbless/internal/config"
	"surfbless/internal/geom"
	"surfbless/internal/packet"
	"surfbless/internal/power"
	"surfbless/internal/stats"
	"surfbless/internal/wave"
)

type harness struct {
	f   *Fabric
	col *stats.Collector
	cfg config.Config
	ids packet.IDSource
	got []*packet.Packet
	now int64
}

func newHarness(t *testing.T, cfg config.Config, slots []int) *harness {
	t.Helper()
	h := &harness{cfg: cfg}
	h.col = stats.NewCollector(cfg.Domains, 0, 0)
	meter := power.NewMeter(cfg, power.Default45nm())
	var err error
	h.f, err = New(cfg, slots, func(node int, p *packet.Packet, now int64) {
		h.got = append(h.got, p)
	}, h.col, meter)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func (h *harness) pkt(src, dst geom.Coord, domain int, class packet.Class) *packet.Packet {
	p := packet.New(h.ids.Next(), src, dst, domain, class, h.now)
	return p
}

func (h *harness) steps(n int) {
	for i := 0; i < n; i++ {
		h.f.Step(h.now)
		h.now++
	}
}

func defCfg(domains int) config.Config {
	cfg := config.Default(config.SB)
	cfg.Domains = domains
	return cfg
}

func TestNewValidation(t *testing.T) {
	col := stats.NewCollector(1, 0, 0)
	meter := power.NewMeter(defCfg(1), power.Default45nm())
	if _, err := New(config.Default(config.BLESS), nil, nil, col, meter); err == nil {
		t.Error("BLESS config accepted")
	}
	if _, err := New(defCfg(1), nil, nil, nil, meter); err == nil {
		t.Error("nil collector accepted")
	}
	if _, err := New(defCfg(1), []int{1, 1}, nil, col, meter); err == nil {
		t.Error("slot-width count mismatch accepted")
	}
	if _, err := New(defCfg(1), []int{0}, nil, col, meter); err == nil {
		t.Error("zero slot width accepted")
	}
	// Round-robin waves have runs of length 1 for D=2: a 5-wide window
	// cannot exist, so the constructor must refuse slot width 5.
	if _, err := New(defCfg(2), []int{5, 5}, nil, col, meter); err == nil {
		t.Error("unsatisfiable slot width accepted")
	}
}

func TestAccessors(t *testing.T) {
	h := newHarness(t, defCfg(3), nil)
	if h.f.Decoder().Domains() != 3 {
		t.Error("Decoder accessor wrong")
	}
	if h.f.Schedule().Smax() != 42 {
		t.Error("Schedule accessor wrong")
	}
}

// Injection waits for the packet's domain to own the SE wave: with two
// domains, a packet is injected on the first cycle whose SE wave index
// at its source decodes to its domain.
func TestInjectionWaitsForOwnWave(t *testing.T) {
	h := newHarness(t, defCfg(2), nil)
	mesh := h.cfg.Mesh()
	sched := h.f.Schedule()
	src, dst := geom.Coord{X: 2, Y: 2}, geom.Coord{X: 5, Y: 2}

	p := h.pkt(src, dst, 0, packet.Ctrl)
	h.f.Inject(mesh.ID(src), p, 0)
	h.steps(50)
	if p.EjectedAt < 0 {
		t.Fatal("packet not delivered")
	}
	// The first cycle whose SE wave at src belongs to domain 0.
	wantInject := int64(-1)
	for tm := int64(0); tm < 42; tm++ {
		if h.f.Decoder().Domain(sched.Index(wave.SE, src, tm)) == 0 {
			wantInject = tm
			break
		}
	}
	if p.InjectedAt != wantInject {
		t.Errorf("InjectedAt = %d, want %d (first own SE wave)", p.InjectedAt, wantInject)
	}
	// After injection the packet surfs: no deflections, minimal hops.
	if p.Deflections != 0 || p.Hops != 3 {
		t.Errorf("Hops=%d Deflections=%d, want 3/0", p.Hops, p.Deflections)
	}
	if p.NetworkLatency() != int64(3*h.cfg.HopDelay()) {
		t.Errorf("network latency %d, want %d", p.NetworkLatency(), 3*h.cfg.HopDelay())
	}
}

// With D=1 the wave schedule admits everything: behaviour matches BLESS
// timing for a lone packet.
func TestSinglePacketTimingD1(t *testing.T) {
	h := newHarness(t, defCfg(1), nil)
	mesh := h.cfg.Mesh()
	src, dst := geom.Coord{X: 0, Y: 0}, geom.Coord{X: 3, Y: 2}
	p := h.pkt(src, dst, 0, packet.Ctrl)
	h.f.Inject(mesh.ID(src), p, 0)
	h.steps(40)
	if p.EjectedAt != int64(5*3) {
		t.Errorf("EjectedAt = %d, want 15", p.EjectedAt)
	}
}

// The §5.1.3 ejection miss: with D = 4 (6 % 4 ≠ 0), a packet whose last
// leg rides the N sub-wave arrives at its destination on a wave whose
// SE counterpart belongs to another domain, so it must deflect at its
// own destination.
func TestEjectionMissDeflectsAtDestination(t *testing.T) {
	h := newHarness(t, defCfg(4), nil)
	mesh := h.cfg.Mesh()
	// A purely northward journey rides WN; pick a destination row where
	// 2·P·y mod D ≠ 0 ⇒ misalignment (P=3, D=4: y odd ⇒ 6y mod 4 = 2).
	src, dst := geom.Coord{X: 3, Y: 6}, geom.Coord{X: 3, Y: 1}
	p := h.pkt(src, dst, 0, packet.Ctrl)
	h.f.Inject(mesh.ID(src), p, 0)
	h.steps(200)
	if p.EjectedAt < 0 {
		t.Fatal("packet not delivered")
	}
	if p.Deflections == 0 {
		t.Errorf("expected an ejection-miss deflection for a northbound packet at D=4")
	}
}

// And the aligned counterpart: D = 2 ejects northbound packets without
// any deflection.
func TestEjectionAlignedNoDeflection(t *testing.T) {
	h := newHarness(t, defCfg(2), nil)
	mesh := h.cfg.Mesh()
	src, dst := geom.Coord{X: 3, Y: 6}, geom.Coord{X: 3, Y: 1}
	p := h.pkt(src, dst, 1, packet.Ctrl)
	h.f.Inject(mesh.ID(src), p, 0)
	h.steps(200)
	if p.EjectedAt < 0 {
		t.Fatal("packet not delivered")
	}
	if p.Deflections != 0 {
		t.Errorf("aligned domain deflected %d times", p.Deflections)
	}
}

func TestInjectContractPanics(t *testing.T) {
	h := newHarness(t, defCfg(2), nil)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bad domain accepted")
			}
		}()
		h.f.Inject(0, h.pkt(geom.Coord{}, geom.Coord{X: 1, Y: 0}, 7, packet.Ctrl), 0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("packet wider than slot accepted")
			}
		}()
		h.f.Inject(0, h.pkt(geom.Coord{}, geom.Coord{X: 1, Y: 0}, 0, packet.Data), 0)
	}()
}

// Saturation stress with the always-on wave assertions: any domain
// leakage or balance violation panics, so surviving the run IS the
// confinement proof at the router level.
func TestStressAllDomainsAssertionsHold(t *testing.T) {
	for _, domains := range []int{2, 3, 4, 5, 6, 7} {
		h := newHarness(t, defCfg(domains), nil)
		mesh := h.cfg.Mesh()
		injected := 0
		for cyc := 0; cyc < 300; cyc++ {
			for node := 0; node < mesh.Nodes(); node += 3 {
				src := mesh.CoordOf(node)
				dst := mesh.CoordOf((node*11 + cyc*5 + 13) % mesh.Nodes())
				if dst == src {
					continue
				}
				dom := (node + cyc) % domains
				if h.f.Inject(node, h.pkt(src, dst, dom, packet.Ctrl), h.now) {
					injected++
				}
			}
			h.f.Step(h.now)
			h.now++
		}
		for i := 0; i < 20000 && h.f.InFlight() > 0; i++ {
			h.f.Step(h.now)
			h.now++
		}
		if h.f.InFlight() != 0 {
			t.Fatalf("D=%d: %d packets never delivered", domains, h.f.InFlight())
		}
		if len(h.got) != injected {
			t.Errorf("D=%d: delivered %d of %d", domains, len(h.got), injected)
		}
		if err := h.f.Audit(); err != nil {
			t.Error(err)
		}
	}
}

// Multi-flit worms with the §5.2 wave sets under stress.
func TestWormStress(t *testing.T) {
	cfg := defCfg(3)
	cfg.InjectionVCDepth = 5
	cfg.WaveSets = paperSets()
	h := newHarness(t, cfg, []int{5, 5, 1})
	mesh := cfg.Mesh()
	injected := 0
	for cyc := 0; cyc < 400; cyc++ {
		for node := 0; node < mesh.Nodes(); node += 5 {
			src := mesh.CoordOf(node)
			dst := mesh.CoordOf((node*17 + cyc*3 + 7) % mesh.Nodes())
			if dst == src {
				continue
			}
			dom := (node/5 + cyc) % 3
			class := packet.Data
			if dom == 2 {
				class = packet.Ctrl
			}
			if h.f.Inject(node, h.pkt(src, dst, dom, class), h.now) {
				injected++
			}
		}
		h.f.Step(h.now)
		h.now++
	}
	for i := 0; i < 40000 && h.f.InFlight() > 0; i++ {
		h.f.Step(h.now)
		h.now++
	}
	if h.f.InFlight() != 0 {
		t.Fatalf("%d worms never delivered", h.f.InFlight())
	}
	if len(h.got) != injected {
		t.Errorf("delivered %d of %d", len(h.got), injected)
	}
}

func paperSets() [][]int {
	span := func(a, b int) []int {
		var s []int
		for w := a; w <= b; w++ {
			s = append(s, w)
		}
		return s
	}
	data0 := append(append(span(0, 4), span(15, 19)...), span(30, 34)...)
	data1 := append(append(span(7, 11), span(22, 26)...), span(37, 41)...)
	owned := map[int]bool{}
	for _, w := range append(append([]int{}, data0...), data1...) {
		owned[w] = true
	}
	var ctrl []int
	for w := 0; w < 42; w++ {
		if !owned[w] {
			ctrl = append(ctrl, w)
		}
	}
	return [][]int{data0, data1, ctrl}
}

func TestStepMonotonic(t *testing.T) {
	h := newHarness(t, defCfg(1), nil)
	h.f.Step(5)
	defer func() {
		if recover() == nil {
			t.Error("non-monotonic Step must panic")
		}
	}()
	h.f.Step(5)
}

func TestBackpressureAndAudit(t *testing.T) {
	h := newHarness(t, defCfg(1), nil)
	accepted := 0
	for i := 0; i < h.cfg.InjectionQueueCap+3; i++ {
		if h.f.Inject(0, h.pkt(geom.Coord{X: 0, Y: 0}, geom.Coord{X: 7, Y: 7}, 0, packet.Ctrl), 0) {
			accepted++
		}
	}
	if accepted != h.cfg.InjectionQueueCap {
		t.Errorf("accepted %d, want %d", accepted, h.cfg.InjectionQueueCap)
	}
	if err := h.f.Audit(); err != nil {
		t.Error(err)
	}
	if h.f.InFlight() != accepted {
		t.Errorf("InFlight = %d, want %d", h.f.InFlight(), accepted)
	}
}
