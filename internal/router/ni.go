// Package router holds the plumbing shared by every router model: the
// network-interface queues feeding injection ports, priority ordering
// helpers, the drop-with-retransmit recovery machinery used under
// fault injection, and a deterministic hash used where the paper calls
// for a random choice.
package router

import (
	"container/heap"
	"fmt"

	"surfbless/internal/packet"
)

// NI models one node's network interface on the injection side: a
// bounded FIFO per domain.  Separate per-domain queues realize the
// paper's per-domain injection VCs — a packet of one domain can never
// be head-of-line blocked by a packet of another domain (§4.2).
type NI struct {
	queues   [][]*packet.Packet
	queueCap int
}

// NewNI returns an NI with one queue per domain, each holding at most
// queueCap packets.
func NewNI(domains, queueCap int) *NI {
	if domains < 1 || queueCap < 1 {
		panic(fmt.Sprintf("router: NewNI(%d, %d)", domains, queueCap))
	}
	return &NI{queues: make([][]*packet.Packet, domains), queueCap: queueCap}
}

// Offer appends p to its domain queue; it returns false when the queue
// is full (backpressure to the source).
func (ni *NI) Offer(p *packet.Packet) bool {
	d := p.Domain
	if d < 0 || d >= len(ni.queues) {
		//nocvet:alloc panic-path formatting on a falsified invariant; runs at most once, while dying
		panic(fmt.Sprintf("router: packet domain %d outside [0,%d)", d, len(ni.queues)))
	}
	if len(ni.queues[d]) >= ni.queueCap {
		return false
	}
	ni.queues[d] = append(ni.queues[d], p)
	return true
}

// Head returns the next packet of the given domain without removing it,
// or nil when the queue is empty.
func (ni *NI) Head(domain int) *packet.Packet {
	if len(ni.queues[domain]) == 0 {
		return nil
	}
	return ni.queues[domain][0]
}

// Pop removes the head packet of the given domain.  It panics on an
// empty queue: the router must only pop what it previously saw via Head.
func (ni *NI) Pop(domain int) *packet.Packet {
	q := ni.queues[domain]
	if len(q) == 0 {
		//nocvet:alloc panic-path formatting on a falsified invariant; runs at most once, while dying
		panic(fmt.Sprintf("router: Pop on empty domain %d queue", domain))
	}
	p := q[0]
	n := copy(q, q[1:])
	q[n] = nil // drop the stale tail reference so the GC can reclaim it
	ni.queues[domain] = q[:n]
	return p
}

// Domains returns the number of domain queues.
func (ni *NI) Domains() int { return len(ni.queues) }

// Backlog returns the total number of queued packets across domains.
func (ni *NI) Backlog() int {
	n := 0
	for _, q := range ni.queues {
		n += len(q)
	}
	return n
}

// DomainBacklog returns the number of queued packets for one domain.
func (ni *NI) DomainBacklog(domain int) int { return len(ni.queues[domain]) }

// retryItem is one packet awaiting source retransmission.
type retryItem struct {
	due int64
	seq uint64 // insertion order breaks due-cycle ties deterministically
	p   *packet.Packet
}

type retryItems []retryItem

func (h retryItems) Len() int { return len(h) }
func (h retryItems) Less(i, j int) bool {
	if h[i].due != h[j].due {
		return h[i].due < h[j].due
	}
	return h[i].seq < h[j].seq
}
func (h retryItems) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *retryItems) Push(x any)   { *h = append(*h, x.(retryItem)) }
func (h *retryItems) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// RetryQueue holds packets that a fault knocked out of the network
// until their retransmission backoff expires.  Ordering is (due cycle,
// insertion sequence), so draining is deterministic.  The zero value
// is ready to use.
type RetryQueue struct {
	items retryItems
	seq   uint64
}

// Push schedules p for retransmission at cycle due.
func (q *RetryQueue) Push(p *packet.Packet, due int64) {
	heap.Push(&q.items, retryItem{due: due, seq: q.seq, p: p})
	q.seq++
}

// PopDue removes and returns the next packet whose backoff has expired
// by cycle now, or nil when none is due.
func (q *RetryQueue) PopDue(now int64) *packet.Packet {
	if len(q.items) == 0 || q.items[0].due > now {
		return nil
	}
	return heap.Pop(&q.items).(retryItem).p
}

// Len returns the number of packets awaiting retransmission.
func (q *RetryQueue) Len() int { return len(q.items) }

// Recovery is the NI-level drop-with-retransmit policy shared by the
// fault-aware fabrics: a packet knocked out by a fault gets up to
// MaxRetries source retransmissions with exponential backoff
// (Backoff·2^(attempt−1) cycles) before it is dropped for good.  A nil
// *Recovery (faults off) makes TryRetry refuse, restoring the
// fault-free behavior.
type Recovery struct {
	Queue      RetryQueue
	MaxRetries int
	Backoff    int64
}

// TryRetry consumes one retransmission attempt for p at cycle now and
// queues it, or reports false when the budget is exhausted (the caller
// must then account a drop).
func (r *Recovery) TryRetry(p *packet.Packet, now int64) bool {
	if r == nil || p.Retries >= r.MaxRetries {
		return false
	}
	p.Retries++
	back := r.Backoff
	// Shift-capped exponential backoff; attempts beyond 2^20 backoffs
	// would outlive any simulation anyway.
	if shift := p.Retries - 1; shift > 0 {
		if shift > 20 {
			shift = 20
		}
		back <<= uint(shift)
	}
	r.Queue.Push(p, now+back)
	return true
}

// SortOldestFirst orders packets by the old-first arbitration policy
// [12]: longest time in network first, ties broken by packet ID.
// Insertion sort, not sort.Slice: the input is at most one packet per
// router port (≤4) and sort.Slice heap-allocates its interface header
// on every call, which would put an allocation in every router's
// per-cycle path.  Older is a total order, so any correct sort yields
// the identical sequence.
func SortOldestFirst(ps []*packet.Packet) {
	for i := 1; i < len(ps); i++ {
		p := ps[i]
		j := i - 1
		for ; j >= 0 && p.Older(ps[j]); j-- {
			ps[j+1] = ps[j]
		}
		ps[j+1] = p
	}
}

// Hash64 mixes its inputs with the splitmix64 finalizer.  Router models
// use it to make the paper's "randomly granted" deflection choice
// (§4.3 Step-2) deterministic per (packet, cycle) without any shared
// RNG state — shared state would let one domain's draws perturb
// another's, breaking the confinement guarantee the tests assert
// bit-exactly.
func Hash64(a, b uint64) uint64 {
	z := a*0x9E3779B97F4A7C15 + b + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
