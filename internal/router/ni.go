// Package router holds the plumbing shared by every router model: the
// network-interface queues feeding injection ports, priority ordering
// helpers, and a deterministic hash used where the paper calls for a
// random choice.
package router

import (
	"fmt"
	"sort"

	"surfbless/internal/packet"
)

// NI models one node's network interface on the injection side: a
// bounded FIFO per domain.  Separate per-domain queues realize the
// paper's per-domain injection VCs — a packet of one domain can never
// be head-of-line blocked by a packet of another domain (§4.2).
type NI struct {
	queues   [][]*packet.Packet
	queueCap int
}

// NewNI returns an NI with one queue per domain, each holding at most
// queueCap packets.
func NewNI(domains, queueCap int) *NI {
	if domains < 1 || queueCap < 1 {
		panic(fmt.Sprintf("router: NewNI(%d, %d)", domains, queueCap))
	}
	return &NI{queues: make([][]*packet.Packet, domains), queueCap: queueCap}
}

// Offer appends p to its domain queue; it returns false when the queue
// is full (backpressure to the source).
func (ni *NI) Offer(p *packet.Packet) bool {
	d := p.Domain
	if d < 0 || d >= len(ni.queues) {
		panic(fmt.Sprintf("router: packet domain %d outside [0,%d)", d, len(ni.queues)))
	}
	if len(ni.queues[d]) >= ni.queueCap {
		return false
	}
	ni.queues[d] = append(ni.queues[d], p)
	return true
}

// Head returns the next packet of the given domain without removing it,
// or nil when the queue is empty.
func (ni *NI) Head(domain int) *packet.Packet {
	if len(ni.queues[domain]) == 0 {
		return nil
	}
	return ni.queues[domain][0]
}

// Pop removes the head packet of the given domain.  It panics on an
// empty queue: the router must only pop what it previously saw via Head.
func (ni *NI) Pop(domain int) *packet.Packet {
	q := ni.queues[domain]
	if len(q) == 0 {
		panic(fmt.Sprintf("router: Pop on empty domain %d queue", domain))
	}
	p := q[0]
	ni.queues[domain] = append(q[:0], q[1:]...)
	return p
}

// Domains returns the number of domain queues.
func (ni *NI) Domains() int { return len(ni.queues) }

// Backlog returns the total number of queued packets across domains.
func (ni *NI) Backlog() int {
	n := 0
	for _, q := range ni.queues {
		n += len(q)
	}
	return n
}

// DomainBacklog returns the number of queued packets for one domain.
func (ni *NI) DomainBacklog(domain int) int { return len(ni.queues[domain]) }

// SortOldestFirst orders packets by the old-first arbitration policy
// [12]: longest time in network first, ties broken by packet ID.
func SortOldestFirst(ps []*packet.Packet) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].Older(ps[j]) })
}

// Hash64 mixes its inputs with the splitmix64 finalizer.  Router models
// use it to make the paper's "randomly granted" deflection choice
// (§4.3 Step-2) deterministic per (packet, cycle) without any shared
// RNG state — shared state would let one domain's draws perturb
// another's, breaking the confinement guarantee the tests assert
// bit-exactly.
func Hash64(a, b uint64) uint64 {
	z := a*0x9E3779B97F4A7C15 + b + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
