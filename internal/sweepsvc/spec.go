// Package sweepsvc is the fault-tolerant sweep service: a lease-based
// HTTP coordinator (cmd/sweepd) that shards sweep jobs into points, a
// worker fleet (cmd/sweepworker) that pulls leases and simulates them,
// and the shared spec/row layer that keeps the service's CSV output
// byte-identical to a serial `cmd/sweep` run.
//
// The design goal is crash-safety under partial failure (DESIGN.md
// §16): every state transition is journaled to an fsync'd, torn-tail-
// tolerant WAL so a bounced coordinator resumes exactly; work units
// are leases with TTL + heartbeat renewal so a SIGKILL'd worker loses
// nothing; identical in-flight point fingerprints are deduplicated via
// singleflight over the shared simcache-backed result store; and
// workers drain gracefully on SIGTERM — finish in-flight leases,
// release the rest.
package sweepsvc

import (
	"fmt"
	"strings"

	"surfbless/internal/config"
	"surfbless/internal/fault"
	"surfbless/internal/packet"
	"surfbless/internal/sim"
	"surfbless/internal/simcache"
	"surfbless/internal/traffic"
)

// DefaultMaxAttempts bounds executions of one failing point (first try
// plus retries under the backoff policy) when Spec.MaxAttempts is 0.
// Two preserves the retry-once budget sweeps always had.
const DefaultMaxAttempts = 2

// Spec is one sweep job: an injection-rate range over one model,
// expanded into one point per rate.  Field-for-field it mirrors
// cmd/sweep's flags so a job submitted with `sweep -remote` simulates
// exactly what the local flags would have, down to the result-cache
// fingerprints.
type Spec struct {
	Model   string  `json:"model"`   // WH, BLESS, Surf, SB, CHIPPER or RUNAHEAD
	Domains int     `json:"domains"` // number of interference domains
	From    float64 `json:"from"`    // first total injection rate
	To      float64 `json:"to"`      // last total injection rate
	Step    float64 `json:"step"`    // rate increment
	Cycles  int64   `json:"cycles"`  // measured cycles per point
	Seed    int64   `json:"seed"`

	// Width and Height override the Table-1 8×8 mesh when both are
	// positive; 0 keeps config.Default's dimensions.
	Width  int `json:"width,omitempty"`
	Height int `json:"height,omitempty"`

	// Faults optionally arms a deterministic fault plan on every point
	// (see internal/fault); it is validated against the mesh at submit
	// time.
	Faults *fault.Plan `json:"faults,omitempty"`

	// PointTimeoutMS bounds one point's wall-clock simulation time; an
	// expired timeout surfaces as a "failed: timeout" row after the
	// attempt budget.  0 = no timeout.
	PointTimeoutMS int64 `json:"point_timeout_ms,omitempty"`

	// MaxAttempts bounds executions of one failing point (0 =
	// DefaultMaxAttempts).  Degraded points are data, not failures, and
	// never consume retries.
	MaxAttempts int `json:"max_attempts,omitempty"`
}

// ParseModel resolves a model name (any case) to its config constant.
func ParseModel(name string) (config.Model, error) {
	switch strings.ToUpper(name) {
	case "WH":
		return config.WH, nil
	case "BLESS":
		return config.BLESS, nil
	case "SURF":
		return config.Surf, nil
	case "SB":
		return config.SB, nil
	case "CHIPPER":
		return config.CHIPPER, nil
	case "RUNAHEAD":
		return config.RUNAHEAD, nil
	default:
		return 0, fmt.Errorf("sweepsvc: unknown model %q", name)
	}
}

// Validate reports the first problem with the spec, or nil.
func (s Spec) Validate() error {
	m, err := ParseModel(s.Model)
	if err != nil {
		return err
	}
	if s.Domains < 1 {
		return fmt.Errorf("sweepsvc: %d domains, need ≥ 1", s.Domains)
	}
	if s.Step <= 0 || s.From <= 0 || s.To < s.From {
		return fmt.Errorf("sweepsvc: invalid rate range [%g, %g] step %g", s.From, s.To, s.Step)
	}
	if s.Cycles <= 0 {
		return fmt.Errorf("sweepsvc: %d cycles, need ≥ 1", s.Cycles)
	}
	if (s.Width > 0) != (s.Height > 0) {
		return fmt.Errorf("sweepsvc: width and height must be overridden together")
	}
	if s.MaxAttempts < 0 {
		return fmt.Errorf("sweepsvc: negative max_attempts")
	}
	if s.PointTimeoutMS < 0 {
		return fmt.Errorf("sweepsvc: negative point_timeout_ms")
	}
	cfg := s.baseConfig(m)
	if !s.Faults.Empty() {
		if err := s.Faults.Validate(cfg.Width, cfg.Height); err != nil {
			return fmt.Errorf("sweepsvc: fault plan: %w", err)
		}
	}
	return cfg.Validate()
}

// baseConfig builds the per-point configuration before traffic wiring.
func (s Spec) baseConfig(m config.Model) config.Config {
	cfg := config.Default(m)
	cfg.Domains = s.Domains
	if s.Width > 0 && s.Height > 0 {
		cfg.Width, cfg.Height = s.Width, s.Height
	}
	cfg.Faults = s.Faults
	return cfg
}

// Rates expands the sweep range in emission order.  The epsilon keeps
// the last rate inside the range despite float accumulation — the same
// loop cmd/sweep has always used, so point counts agree everywhere.
func (s Spec) Rates() []float64 {
	var rates []float64
	for rate := s.From; rate <= s.To+1e-9; rate += s.Step {
		rates = append(rates, rate)
	}
	return rates
}

// Attempts resolves the per-point execution budget.
func (s Spec) Attempts() int {
	if s.MaxAttempts > 0 {
		return s.MaxAttempts
	}
	return DefaultMaxAttempts
}

// Options builds the simulation options for one rate.  This is THE
// canonical expansion: cmd/sweep, the serial reference runner and the
// service workers all call it, which is what makes their fingerprints
// — and therefore their cache entries and CSV rows — interchangeable.
func (s Spec) Options(rate float64) (sim.Options, error) {
	m, err := ParseModel(s.Model)
	if err != nil {
		return sim.Options{}, err
	}
	cfg := s.baseConfig(m)
	sources := make([]traffic.Source, s.Domains)
	for i := range sources {
		sources[i] = traffic.Source{Rate: rate / float64(s.Domains), Class: packet.Ctrl, VNet: -1}
	}
	return sim.Options{
		Cfg:     cfg,
		Pattern: traffic.UniformRandom,
		Sources: sources,
		Warmup:  s.Cycles / 10, Measure: s.Cycles, Drain: 10 * s.Cycles,
		Seed: s.Seed,
	}, nil
}

// Fingerprint derives the content-addressed cache key of one point.
func (s Spec) Fingerprint(rate float64) (simcache.Key, error) {
	o, err := s.Options(rate)
	if err != nil {
		return simcache.Key{}, err
	}
	return sim.Fingerprint(o)
}

// CSVHeader is the sweep output header, shared verbatim by cmd/sweep
// and the coordinator's job CSV.
const CSVHeader = "rate,avg_latency,queue_latency,network_latency,throughput,deflections_per_pkt,refused,dropped,retransmits,status"

// RenderRow renders one completed point's CSV row from its result —
// the single formatting site behind the byte-identical guarantee.
func RenderRow(rate float64, domains int, res sim.Result, status string) string {
	tot := res.Total
	thr := 0.0
	for d := 0; d < domains && d < len(res.Domains); d++ {
		thr += res.Throughput(d)
	}
	return fmt.Sprintf("%.3f,%.3f,%.3f,%.3f,%.4f,%.3f,%d,%d,%d,%s",
		rate, tot.AvgTotalLatency(), tot.AvgQueueLatency(), tot.AvgNetworkLatency(),
		thr, tot.AvgDeflections(), tot.Refused, tot.Dropped, tot.Retransmits, status)
}

// ErrorRow renders the row of a point that failed every attempt: the
// rate and status cells are populated, the statistics stay empty.
func ErrorRow(rate float64, status string) string {
	return fmt.Sprintf("%.3f,,,,,,,,,%s", rate, status)
}

// StatusWithAttempts appends the attempt count to a status cell when a
// point needed retries, so flaky executions are visible in the CSV.  A
// first-attempt success keeps the bare status — and therefore byte
// parity with every sweep CSV ever produced.
func StatusWithAttempts(status string, attempts int) string {
	if attempts <= 1 {
		return status
	}
	return fmt.Sprintf("%s; attempts=%d", status, attempts)
}

// CSVSafe strips the characters that would break a one-line CSV status
// cell.
func CSVSafe(s string) string {
	s = strings.ReplaceAll(s, ",", ";")
	return strings.ReplaceAll(s, "\n", " ")
}
