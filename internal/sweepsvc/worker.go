package sweepsvc

import (
	"context"
	"fmt"
	"sync"
	"time"

	"surfbless/internal/sweepsvc/backoff"
)

// WorkerHooks are the worker's observation points for tests and the
// chaos harness (nil = disabled).
//
//hook:nil-disabled
type WorkerHooks struct {
	// LeaseAcquired fires for every lease pulled from the coordinator.
	LeaseAcquired func(l Lease)
	// PointFinished fires after a point's execution, before its
	// completion report.
	PointFinished func(l Lease, exec Execution)
	// Drained fires when a graceful drain finishes, with the number of
	// unstarted leases that were released.
	Drained func(released int)
}

// WorkerOptions configures a worker.
type WorkerOptions struct {
	// Name identifies the worker to the coordinator (lease ownership).
	Name string
	// Client reaches the coordinator.  Required.
	Client *Client
	// Runner executes leased points.  Required.
	Runner *Runner
	// Slots is the number of points simulated concurrently (0 = 1).
	Slots int
	// Prefetch is how many leases beyond Slots to hold queued so slots
	// never idle between points (0 = none).
	Prefetch int
	// Poll is the idle sleep when the coordinator has no work (0 =
	// 200 ms).
	Poll time.Duration
	// Backoff paces retries of coordinator RPCs (acquire, complete)
	// through transient outages such as a coordinator bounce.
	Backoff backoff.Policy
	// RPCAttempts bounds those retries (0 = 8).
	RPCAttempts int
	// Hooks observe the worker (nil-safe).
	Hooks *WorkerHooks
}

// Worker pulls leases from a coordinator, simulates them, and reports
// completions.  Two ways to stop:
//
//   - Drain (SIGTERM): stop acquiring, finish the points already being
//     simulated, release the queued-but-unstarted leases, then Run
//     returns nil.  No work is lost and nothing needs requeueing.
//   - Context cancellation (SIGKILL stand-in): everything stops where
//     it is, in-flight simulations included (the context is plumbed
//     through sim.Run).  The coordinator's lease TTL requeues whatever
//     this worker held.
type Worker struct {
	o         WorkerOptions
	drain     chan struct{}
	drainOnce sync.Once

	mu   sync.Mutex
	held map[string]Lease // acquired and not yet completed or released
}

// NewWorker validates the options and returns an idle worker; call Run
// to start it.
func NewWorker(o WorkerOptions) (*Worker, error) {
	if o.Client == nil || o.Runner == nil {
		return nil, fmt.Errorf("sweepsvc: worker needs a client and a runner")
	}
	if o.Name == "" {
		return nil, fmt.Errorf("sweepsvc: worker needs a name")
	}
	if o.Slots < 1 {
		o.Slots = 1
	}
	if o.Poll <= 0 {
		o.Poll = 200 * time.Millisecond
	}
	if o.RPCAttempts < 1 {
		o.RPCAttempts = 8
	}
	return &Worker{o: o, drain: make(chan struct{}), held: make(map[string]Lease)}, nil
}

// Drain begins a graceful shutdown (idempotent): in-flight points
// finish and report, queued leases go back to the coordinator.
func (w *Worker) Drain() { w.drainOnce.Do(func() { close(w.drain) }) }

// draining reports whether Drain was called.
func (w *Worker) draining() bool {
	select {
	case <-w.drain:
		return true
	default:
		return false
	}
}

func (w *Worker) track(l Lease) {
	w.mu.Lock()
	w.held[l.ID] = l
	w.mu.Unlock()
}

func (w *Worker) untrack(id string) {
	w.mu.Lock()
	delete(w.held, id)
	w.mu.Unlock()
}

func (w *Worker) heldIDs() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	ids := make([]string, 0, len(w.held))
	for id := range w.held {
		ids = append(ids, id)
	}
	return ids
}

// Run is the worker's main loop; it blocks until the context dies
// (returns ctx.Err()) or a drain completes (returns nil).
func (w *Worker) Run(ctx context.Context) error {
	queue := make(chan Lease, w.o.Slots+w.o.Prefetch)
	var slots sync.WaitGroup
	for i := 0; i < w.o.Slots; i++ {
		slots.Add(1)
		go func() {
			defer slots.Done()
			for l := range queue {
				w.runLease(ctx, l)
			}
		}()
	}

	// Heartbeat at a third of the lease TTL: three missed beats forfeit
	// a lease, one never does.
	hbCtx, hbCancel := context.WithCancel(ctx)
	var hb sync.WaitGroup
	hb.Add(1)
	go func() {
		defer hb.Done()
		w.heartbeat(hbCtx)
	}()

	err := w.dispatch(ctx, queue)

	// Dispatch is over (drain or dead context).  Pull the leases that
	// never reached a slot back out of the queue and release them, then
	// let the slots finish their in-flight points.
	released := 0
	var releaseIDs []string
drainQueue:
	for {
		select {
		case l := <-queue:
			releaseIDs = append(releaseIDs, l.ID)
			w.untrack(l.ID)
			released++
		default:
			break drainQueue
		}
	}
	close(queue)
	if len(releaseIDs) > 0 && ctx.Err() == nil {
		rctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		w.o.Client.Release(rctx, w.o.Name, releaseIDs) //nolint:errcheck // TTL expiry is the backstop
		cancel()
	}
	slots.Wait()
	hbCancel()
	hb.Wait()
	if w.o.Hooks != nil && w.o.Hooks.Drained != nil && err == nil {
		w.o.Hooks.Drained(released)
	}
	return err
}

// dispatch keeps the queue fed until drain or context death.
func (w *Worker) dispatch(ctx context.Context, queue chan<- Lease) error {
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-w.drain:
			return nil
		default:
		}
		w.mu.Lock()
		want := w.o.Slots + w.o.Prefetch - len(w.held)
		w.mu.Unlock()
		if want <= 0 {
			if !w.sleep(ctx, w.o.Poll/4) {
				continue // drain or death; loop re-checks
			}
			continue
		}
		leases, err := w.acquire(ctx, want)
		if err != nil || len(leases) == 0 {
			// Coordinator unreachable (acquire already backed off) or no
			// pending work right now: idle-poll.
			w.sleep(ctx, w.o.Poll)
			continue
		}
		for _, l := range leases {
			w.track(l)
			if w.o.Hooks != nil && w.o.Hooks.LeaseAcquired != nil {
				w.o.Hooks.LeaseAcquired(l)
			}
			queue <- l
		}
	}
}

// acquire pulls leases with retry + seeded backoff so a coordinator
// bounce mid-sweep looks like a slow RPC, not a worker crash.
func (w *Worker) acquire(ctx context.Context, max int) ([]Lease, error) {
	var leases []Lease
	_, err := backoff.Retry(ctx, w.o.Backoff, w.o.RPCAttempts, func(int) error {
		var aerr error
		leases, aerr = w.o.Client.Acquire(ctx, w.o.Name, max)
		return aerr
	})
	return leases, err
}

// runLease executes one leased point and reports it.
func (w *Worker) runLease(ctx context.Context, l Lease) {
	defer w.untrack(l.ID)
	exec := w.o.Runner.RunPoint(ctx, l.Spec, l.Rate)
	if w.o.Hooks != nil && w.o.Hooks.PointFinished != nil {
		w.o.Hooks.PointFinished(l, exec)
	}
	if exec.Canceled {
		return // hard kill: the lease TTL requeues the point
	}
	// Report even when draining — the point is finished; dropping the
	// row would waste the work.  The completion retries through
	// transient coordinator outages; if the lease expired meanwhile the
	// coordinator still accepts the first report for the point.
	w.o.Client.CompleteWithRetry(ctx, w.o.Backoff, w.o.RPCAttempts, Completion{ //nolint:errcheck // TTL requeue is the backstop
		Lease: l.ID, Job: l.Job, Point: l.Point,
		Row: exec.Row, Status: exec.Status, Attempts: exec.Attempts, Failed: exec.Failed,
	})
}

// heartbeat renews held leases until its context dies.  Lost leases
// (coordinator bounced, or we were presumed dead) are dropped from the
// held set; any simulation already running for them continues and its
// completion is absorbed idempotently.
func (w *Worker) heartbeat(ctx context.Context) {
	w.mu.Lock()
	ttl := DefaultLeaseTTL
	w.mu.Unlock()
	for {
		select {
		case <-ctx.Done():
			return
		case <-time.After(ttl / 3):
		}
		ids := w.heldIDs()
		if len(ids) == 0 {
			continue
		}
		// Refresh the cadence from the newest lease before renewing.
		w.mu.Lock()
		for _, l := range w.held {
			if l.TTLMS > 0 {
				ttl = time.Duration(l.TTLMS) * time.Millisecond
			}
			break
		}
		w.mu.Unlock()
		lost, err := w.o.Client.Renew(ctx, w.o.Name, ids)
		if err != nil {
			continue // transient; the next beat retries
		}
		for _, id := range lost {
			w.untrack(id)
		}
	}
}

// sleep waits for d, cut short by drain or context death; it reports
// whether the full duration elapsed.
func (w *Worker) sleep(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-w.drain:
		return false
	case <-ctx.Done():
		return false
	}
}
