package sweepsvc

import (
	"context"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"surfbless/internal/probe"
	"surfbless/internal/simcache"
	"surfbless/internal/sweepsvc/backoff"
)

// quickPolicy keeps test retries fast and deterministic.
func quickPolicy(seed int64) backoff.Policy {
	return backoff.Policy{Base: time.Millisecond, Max: 10 * time.Millisecond, Factor: 2, Jitter: 0.5, Seed: seed}
}

// startService spins up a coordinator + HTTP server on an ephemeral
// port.
func startService(t *testing.T, walPath string, store *simcache.Cache, m *probe.Metrics) (*Coordinator, *Server) {
	t.Helper()
	coord, err := OpenCoordinator(CoordinatorOptions{
		WALPath: walPath, Store: store, LeaseTTL: 2 * time.Second, Metrics: m,
	})
	if err != nil {
		t.Fatalf("OpenCoordinator: %v", err)
	}
	srv, err := NewServer("127.0.0.1:0", coord, m)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(func() { srv.Close(); coord.Close() })
	return coord, srv
}

// The full service path — submit over HTTP, two workers pulling
// leases, CSV assembled by the coordinator — must reproduce the serial
// reference byte for byte.
func TestServiceEndToEndMatchesSerial(t *testing.T) {
	dir := t.TempDir()
	m := probe.NewMetrics()
	_, srv := startService(t, filepath.Join(dir, "wal"), nil, m)
	client := NewClient(srv.Addr())
	ctx := context.Background()

	spec := testSpec()
	job, points, err := client.Submit(ctx, spec)
	if err != nil || points != 3 {
		t.Fatalf("Submit = (%s, %d, %v), want 3 points", job, points, err)
	}

	var wg sync.WaitGroup
	wctx, stopWorkers := context.WithCancel(ctx)
	defer stopWorkers()
	workers := make([]*Worker, 2)
	for i := range workers {
		w, err := NewWorker(WorkerOptions{
			Name:   "w" + string(rune('1'+i)),
			Client: client,
			Runner: &Runner{Policy: quickPolicy(int64(i))},
			Slots:  2, Poll: 10 * time.Millisecond, Backoff: quickPolicy(int64(10 + i)),
		})
		if err != nil {
			t.Fatalf("NewWorker: %v", err)
		}
		workers[i] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(wctx)
		}()
	}

	deadline := time.After(30 * time.Second)
	for {
		st, err := client.Status(ctx, job)
		if err != nil {
			t.Fatalf("Status: %v", err)
		}
		if st.Complete {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("job not complete: %+v", st)
		case <-time.After(20 * time.Millisecond):
		}
	}
	for _, w := range workers {
		w.Drain()
	}
	wg.Wait()

	got, err := client.CSV(ctx, job)
	if err != nil {
		t.Fatalf("CSV: %v", err)
	}
	var want strings.Builder
	ref := &Runner{Policy: quickPolicy(99)}
	if _, err := ref.SerialCSV(ctx, spec, &want); err != nil {
		t.Fatalf("SerialCSV: %v", err)
	}
	if got != want.String() {
		t.Errorf("service CSV differs from serial reference:\n--- service ---\n%s--- serial ---\n%s", got, want.String())
	}
}

// A SIGTERM drain must finish the in-flight point (its row lands at
// the coordinator) and release the queued leases so another worker can
// take them over immediately, without waiting out the TTL.
func TestWorkerDrainFinishesInFlightAndReleasesRest(t *testing.T) {
	dir := t.TempDir()
	coord, srv := startService(t, filepath.Join(dir, "wal"), nil, nil)
	client := NewClient(srv.Addr())
	ctx := context.Background()

	spec := testSpec()
	spec.Cycles = 2000 // slow enough that points are still running at drain time
	job, _, err := client.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}

	started := make(chan struct{}, 8)
	var released int
	drained := make(chan struct{})
	w, err := NewWorker(WorkerOptions{
		Name: "drainee", Client: client,
		Runner: &Runner{Policy: quickPolicy(1)},
		Slots:  1, Prefetch: 2, Poll: 5 * time.Millisecond, Backoff: quickPolicy(2),
		Hooks: &WorkerHooks{
			LeaseAcquired: func(Lease) { started <- struct{}{} },
			Drained:       func(n int) { released = n; close(drained) },
		},
	})
	if err != nil {
		t.Fatalf("NewWorker: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()

	// Wait until the worker holds the whole sweep (1 in flight + 2
	// queued), then drain.
	for i := 0; i < 3; i++ {
		select {
		case <-started:
		case <-time.After(10 * time.Second):
			t.Fatal("worker never acquired its leases")
		}
	}
	w.Drain()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run after drain = %v, want nil", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("drain did not complete")
	}
	<-drained
	if released != 2 {
		t.Errorf("released %d queued leases at drain, want 2", released)
	}
	st, _ := coord.Status(job)
	if st.Done != 1 {
		t.Errorf("in-flight point not completed during drain: %+v", st)
	}
	if st.Leased != 0 {
		t.Errorf("%d leases still held after drain, want 0", st.Leased)
	}
	// The released points must be grantable right now (no TTL wait).
	leases, _ := coord.AcquireLeases("successor", 10)
	if len(leases) != 2 {
		t.Errorf("successor got %d leases immediately after drain, want 2", len(leases))
	}
}

// Store-backed dedup: a second identical job must be satisfied from
// the shared result store without granting a single lease.
func TestServiceStoreSatisfiesRepeatJob(t *testing.T) {
	dir := t.TempDir()
	store, err := simcache.New(simcache.Options{Dir: filepath.Join(dir, "cache")})
	if err != nil {
		t.Fatalf("simcache.New: %v", err)
	}
	m := probe.NewMetrics()
	coord, srv := startService(t, filepath.Join(dir, "wal"), store, m)
	client := NewClient(srv.Addr())
	ctx := context.Background()

	spec := testSpec()
	jobA, _, _ := client.Submit(ctx, spec)

	// One worker whose runner shares the store: its results populate it.
	w, err := NewWorker(WorkerOptions{
		Name: "w1", Client: client,
		Runner: &Runner{Cache: store, Policy: quickPolicy(1)},
		Slots:  2, Poll: 5 * time.Millisecond, Backoff: quickPolicy(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()
	waitComplete(t, client, jobA, 30*time.Second)
	w.Drain()
	<-done

	// Second identical job: no worker is running, so only the store can
	// finish it — at lease-acquisition time.
	jobB, _, _ := client.Submit(ctx, spec)
	if leases, _ := coord.AcquireLeases("probe", 10); len(leases) != 0 {
		t.Fatalf("granted %d leases for a fully cached job, want 0", len(leases))
	}
	stB, _ := client.Status(ctx, jobB)
	if !stB.Complete {
		t.Fatalf("cached job not complete: %+v", stB)
	}
	csvA, _ := client.CSV(ctx, jobA)
	csvB, _ := client.CSV(ctx, jobB)
	if csvA != csvB {
		t.Errorf("store-satisfied CSV differs from executed CSV:\nA:\n%s\nB:\n%s", csvA, csvB)
	}
	if !strings.Contains(metricsText(m), "surfbless_sweepd_store_hits_total 3") {
		t.Errorf("store hits not counted:\n%s", metricsText(m))
	}
}

func waitComplete(t *testing.T, client *Client, job string, timeout time.Duration) {
	t.Helper()
	deadline := time.After(timeout)
	for {
		st, err := client.Status(context.Background(), job)
		if err != nil {
			t.Fatalf("Status: %v", err)
		}
		if st.Complete {
			return
		}
		select {
		case <-deadline:
			t.Fatalf("job %s not complete: %+v", job, st)
		case <-time.After(20 * time.Millisecond):
		}
	}
}

func metricsText(m *probe.Metrics) string {
	var b strings.Builder
	m.WritePrometheus(&b)
	return b.String()
}
