package sweepsvc

// The chaos harness: an in-process coordinator + worker fleet under a
// deterministic killer that hard-kills and restarts workers and
// bounces the coordinator (same WAL, new port) mid-sweep.  The
// acceptance bar is exact: the final CSV of every job must be
// byte-identical to the serial reference runner's output — zero lost
// points, zero duplicated points — and the kills must have actually
// bitten (leases requeued, coordinator resumed from its journal).
//
// Everything runs in one process so `make chaos` can soak it under
// -race: the kills are context cancellations (the same signal path a
// SIGKILL'd worker's simulations never get to see — from the
// coordinator's perspective both are a worker that stopped talking).

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// chaosRand is a splitmix64 sequence: the killer's deterministic
// schedule source.
type chaosRand struct{ s uint64 }

func (r *chaosRand) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// between returns a duration in [lo, hi) from the sequence.
func (r *chaosRand) between(lo, hi time.Duration) time.Duration {
	return lo + time.Duration(r.next()%uint64(hi-lo))
}

// chaosHarness owns the coordinator (bouncing it reuses the WAL) and
// the worker fleet (killing one cancels its context mid-simulation).
type chaosHarness struct {
	t       *testing.T
	walPath string

	mu    sync.Mutex
	coord *Coordinator
	srv   *Server
	addr  atomic.Value // string: current coordinator address

	expired     atomic.Int64 // leases forfeited across ALL coordinator incarnations
	completions atomic.Int64 // accepted completions across incarnations
	bounces     atomic.Int64
	kills       atomic.Int64
	restarts    atomic.Int64
	progressCh  chan struct{} // pinged per completion; drives the killer

	workers  []*chaosWorker
	workerWG sync.WaitGroup
}

type chaosWorker struct {
	name string
	kill context.CancelFunc
	done chan struct{}
}

func (h *chaosHarness) client() *Client {
	return &Client{Base: func() string { return "http://" + h.addr.Load().(string) }}
}

// startCoordinator (re)opens the WAL and serves it on a fresh port.
func (h *chaosHarness) startCoordinator() {
	h.t.Helper()
	coord, err := OpenCoordinator(CoordinatorOptions{
		WALPath:  h.walPath,
		LeaseTTL: 400 * time.Millisecond,
		Hooks: &Hooks{
			LeaseExpired: func(string, int, string) { h.expired.Add(1) },
			PointCompleted: func(_ string, _ int, dup bool) {
				if dup {
					return
				}
				h.completions.Add(1)
				select { // non-blocking: the hook runs under the coordinator lock
				case h.progressCh <- struct{}{}:
				default:
				}
			},
		},
	})
	if err != nil {
		h.t.Fatalf("OpenCoordinator: %v", err)
	}
	srv, err := NewServer("127.0.0.1:0", coord, nil)
	if err != nil {
		h.t.Fatalf("NewServer: %v", err)
	}
	h.mu.Lock()
	h.coord, h.srv = coord, srv
	h.mu.Unlock()
	h.addr.Store(srv.Addr())
}

// bounce crash-restarts the coordinator: listener gone, lease table
// forgotten, WAL replayed.  The gap is real — worker RPCs fail and
// retry through it.
func (h *chaosHarness) bounce() {
	h.mu.Lock()
	srv, coord := h.srv, h.coord
	h.mu.Unlock()
	srv.Close()
	coord.Close()
	time.Sleep(50 * time.Millisecond) // a visible outage window
	h.startCoordinator()
	h.bounces.Add(1)
}

// startWorker launches one fleet member with its own kill switch.
func (h *chaosHarness) startWorker(name string) *chaosWorker {
	h.t.Helper()
	pol := quickPolicy(int64(len(name)) + h.kills.Load())
	w, err := NewWorker(WorkerOptions{
		Name:   name,
		Client: h.client(),
		Runner: &Runner{Policy: pol},
		Slots:  1, Prefetch: 2,
		Poll: 10 * time.Millisecond, Backoff: pol, RPCAttempts: 4,
	})
	if err != nil {
		h.t.Fatalf("NewWorker: %v", err)
	}
	ctx, kill := context.WithCancel(context.Background())
	cw := &chaosWorker{name: name, kill: kill, done: make(chan struct{})}
	h.workerWG.Add(1)
	go func() {
		defer h.workerWG.Done()
		defer close(cw.done)
		w.Run(ctx)
	}()
	return cw
}

func TestChaosWorkerKillsAndCoordinatorBounces(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short")
	}
	dir := t.TempDir()
	h := &chaosHarness{
		t:          t,
		walPath:    filepath.Join(dir, "sweepd.wal"),
		progressCh: make(chan struct{}, 64),
	}
	h.startCoordinator()

	// Two jobs with distinct seeds (disjoint fingerprints) plus one
	// twin of the first (exercises singleflight under fire).
	specs := []Spec{
		{Model: "SB", Domains: 2, From: 0.02, To: 0.16, Step: 0.02, Cycles: 6000, Seed: 7, Width: 4, Height: 4},
		{Model: "BLESS", Domains: 2, From: 0.02, To: 0.16, Step: 0.02, Cycles: 6000, Seed: 8, Width: 4, Height: 4},
		{Model: "SB", Domains: 2, From: 0.02, To: 0.16, Step: 0.02, Cycles: 6000, Seed: 7, Width: 4, Height: 4},
	}
	client := h.client()
	ctx := context.Background()
	jobs := make([]string, len(specs))
	for i, s := range specs {
		job, points, err := client.Submit(ctx, s)
		if err != nil || points != 8 {
			t.Fatalf("Submit %d = (%s, %d, %v), want 8 points", i, job, points, err)
		}
		jobs[i] = job
	}

	// The fleet.
	const fleet = 3
	for i := 0; i < fleet; i++ {
		h.workers = append(h.workers, h.startWorker(fmt.Sprintf("w%d", i)))
	}

	// The killer is event-driven: every time the completion count
	// crosses the next threshold it hard-kills a (deterministically
	// chosen) worker and restarts it a beat later, or bounces the
	// coordinator — so the chaos always lands mid-sweep no matter how
	// fast the points simulate.
	const totalPoints = 3 * 8
	killerDone := make(chan struct{})
	stopKiller := make(chan struct{})
	go func() {
		defer close(killerDone)
		r := &chaosRand{s: 42}
		bounceAt := map[int64]bool{6: true, 14: true}
		nextKill := int64(2)
		for {
			select {
			case <-stopKiller:
				return
			case <-h.progressCh:
			}
			n := h.completions.Load()
			if n >= totalPoints-2 {
				return // leave the tail undisturbed so the run converges
			}
			for at := range bounceAt {
				if n >= at {
					delete(bounceAt, at)
					h.bounce()
				}
			}
			if n >= nextKill {
				nextKill = n + 2
				i := int(r.next() % fleet)
				h.workers[i].kill()
				<-h.workers[i].done
				h.kills.Add(1)
				select {
				case <-stopKiller:
					return
				case <-time.After(r.between(10*time.Millisecond, 60*time.Millisecond)):
				}
				h.workers[i] = h.startWorker(h.workers[i].name)
				h.restarts.Add(1)
			}
		}
	}()

	// Wait for every job to complete — through kills and bounces.
	deadline := time.After(120 * time.Second)
	for _, job := range jobs {
		for {
			st, err := client.Status(ctx, job)
			if err != nil {
				// Coordinator mid-bounce; try again.
				select {
				case <-deadline:
					t.Fatalf("job %s: status unavailable at deadline: %v", job, err)
				case <-time.After(50 * time.Millisecond):
				}
				continue
			}
			if st.Complete {
				break
			}
			select {
			case <-deadline:
				t.Fatalf("job %s incomplete at deadline: %+v (kills=%d bounces=%d expired=%d)",
					job, st, h.kills.Load(), h.bounces.Load(), h.expired.Load())
			case <-time.After(30 * time.Millisecond):
			}
		}
	}
	close(stopKiller)
	<-killerDone
	for _, cw := range h.workers {
		cw.kill()
		<-cw.done
	}
	h.workerWG.Wait()

	// The acceptance bar: every job's CSV must be byte-identical to the
	// serial reference — zero lost, zero duplicated, zero reordered
	// points — despite the kills and bounces.
	ref := &Runner{Policy: quickPolicy(99)}
	for i, job := range jobs {
		got, err := client.CSV(ctx, job)
		if err != nil {
			t.Fatalf("CSV(%s): %v", job, err)
		}
		var want strings.Builder
		if _, err := ref.SerialCSV(ctx, specs[i], &want); err != nil {
			t.Fatalf("SerialCSV: %v", err)
		}
		if got != want.String() {
			t.Errorf("job %s CSV diverged from serial reference:\n--- service ---\n%s--- serial ---\n%s",
				job, got, want.String())
		}
		rows := strings.Split(strings.TrimSpace(got), "\n")
		if len(rows) != 1+8 {
			t.Errorf("job %s: %d rows, want header + 8", job, len(rows)-1)
		}
	}

	// The chaos must have been real.
	if h.kills.Load() == 0 && h.bounces.Load() == 0 {
		t.Fatal("killer never fired; the harness proved nothing")
	}
	t.Logf("chaos: %d kills, %d restarts, %d coordinator bounces, %d leases expired",
		h.kills.Load(), h.restarts.Load(), h.bounces.Load(), h.expired.Load())

	h.mu.Lock()
	defer h.mu.Unlock()
	h.srv.Close()
	h.coord.Close()
}

// A coordinator killed between WAL appends must resume with exactly
// the journaled points done — nothing forgotten, nothing invented —
// and finish the remainder with a fresh worker.
func TestChaosCoordinatorResumeMidJob(t *testing.T) {
	dir := t.TempDir()
	wal := filepath.Join(dir, "wal")
	spec := testSpec()

	c1, err := OpenCoordinator(CoordinatorOptions{WALPath: wal})
	if err != nil {
		t.Fatal(err)
	}
	job, _, _ := c1.SubmitJob(spec)
	runner := &Runner{Policy: quickPolicy(1)}
	leases, _ := c1.AcquireLeases("w1", 1)
	exec := runner.RunPoint(context.Background(), spec, leases[0].Rate)
	if _, err := c1.CompletePoint(Completion{
		Job: job, Point: leases[0].Point,
		Row: exec.Row, Status: exec.Status, Attempts: exec.Attempts, Failed: exec.Failed,
	}); err != nil {
		t.Fatal(err)
	}
	c1.Close() // crash: one point journaled, one lease in flight, one pending

	c2, err := OpenCoordinator(CoordinatorOptions{WALPath: wal})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	st, _ := c2.Status(job)
	if st.Done != 1 || st.Leased != 0 {
		t.Fatalf("resume status = %+v, want exactly the journaled point done", st)
	}
	for {
		ls, _ := c2.AcquireLeases("w2", 1)
		if len(ls) == 0 {
			break
		}
		e := runner.RunPoint(context.Background(), ls[0].Spec, ls[0].Rate)
		if _, err := c2.CompletePoint(Completion{
			Job: ls[0].Job, Point: ls[0].Point,
			Row: e.Row, Status: e.Status, Attempts: e.Attempts, Failed: e.Failed,
		}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := c2.CSV(job)
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	if _, err := runner.SerialCSV(context.Background(), spec, &want); err != nil {
		t.Fatal(err)
	}
	if got != want.String() {
		t.Errorf("resumed CSV diverged:\n--- resumed ---\n%s--- serial ---\n%s", got, want.String())
	}
}
