package sweepsvc

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// Record kinds journaled by the coordinator.  Leases are deliberately
// NOT journaled: they are soft state.  A bounced coordinator forgets
// every lease, the affected points revert to pending, and either the
// original worker's late completion or a fresh lease finishes them —
// completions are idempotent per point, so nothing is lost and nothing
// is duplicated.
const (
	// RecordJob admits a job: its spec and assigned ID.
	RecordJob = "job"
	// RecordPoint completes a point: its row, status, attempt count and
	// whether it counts as a failure.  One per point, ever — duplicate
	// completions are dropped before reaching the WAL.
	RecordPoint = "point"
)

// Record is one WAL line.  The JSON-lines format mirrors
// simcache.Checkpoint: a process killed mid-write damages at most the
// final line, which replay skips (and counts) instead of refusing the
// journal.
type Record struct {
	T        string `json:"t"`
	Job      string `json:"job,omitempty"`
	Spec     *Spec  `json:"spec,omitempty"`   // RecordJob
	Point    int    `json:"point,omitempty"`  // RecordPoint: index into Rates()
	Row      string `json:"row,omitempty"`    // RecordPoint: finished CSV row
	Status   string `json:"status,omitempty"` // RecordPoint: typed status cell
	Attempts int    `json:"attempts,omitempty"`
	Failed   bool   `json:"failed,omitempty"`
}

// WAL is the coordinator's crash-safe journal of state transitions.
// Every Append is flushed to disk before it returns (fsync), so any
// transition the coordinator has acknowledged survives a kill -9; a
// torn final line from a crash mid-Append is tolerated at open time
// exactly like simcache.Checkpoint tolerates it.
type WAL struct {
	mu      sync.Mutex
	f       *os.File
	skipped int
}

// OpenWAL opens (creating if absent) the journal at path, replays
// every decodable record in order, and positions the file for
// appending — terminating a torn final line first so the next Append
// starts fresh instead of extending the damage.
func OpenWAL(path string) (*WAL, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("sweepsvc: wal: %w", err)
	}
	w := &WAL{f: f}
	var recs []Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var r Record
		if json.Unmarshal(line, &r) != nil || r.T == "" {
			w.skipped++
			continue
		}
		recs = append(recs, r)
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("sweepsvc: wal %s: %w", path, err)
	}
	end, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("sweepsvc: wal %s: %w", path, err)
	}
	if end > 0 {
		var last [1]byte
		if _, err := f.ReadAt(last[:], end-1); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("sweepsvc: wal %s: %w", path, err)
		}
		if last[0] != '\n' {
			if _, err := f.Write([]byte{'\n'}); err != nil {
				f.Close()
				return nil, nil, fmt.Errorf("sweepsvc: wal %s: %w", path, err)
			}
		}
	}
	return w, recs, nil
}

// Append journals one record and flushes it to disk before returning:
// once the coordinator acknowledges a transition to a worker or a
// client, a crash must not forget it.
func (w *WAL) Append(r Record) error {
	line, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("sweepsvc: wal: %w", err)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := w.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("sweepsvc: wal: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("sweepsvc: wal: %w", err)
	}
	return nil
}

// Skipped returns the number of undecodable lines dropped at open time
// (normally 0, or 1 after a crash mid-Append).
func (w *WAL) Skipped() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.skipped
}

// Close releases the journal file.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}
