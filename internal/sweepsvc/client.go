package sweepsvc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"surfbless/internal/sweepsvc/backoff"
)

// Client talks to a coordinator over HTTP.  Base is a function so the
// chaos harness (and any driver that restarts its coordinator on a new
// port) can re-resolve the address per request; NewClient wraps a fixed
// address for the common case.
type Client struct {
	// Base returns the coordinator's current base URL, e.g.
	// "http://127.0.0.1:8080".
	Base func() string
	// HTTP is the underlying client (nil = a 10 s-timeout default).
	HTTP *http.Client
}

// NewClient returns a client pinned to one coordinator address.
func NewClient(addr string) *Client {
	base := "http://" + addr
	return &Client{Base: func() string { return base }}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 10 * time.Second}
}

// call performs one JSON round trip.  A nil out discards the body; a
// non-2xx answer surfaces as an error carrying the server's message.
func (c *Client) call(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("sweepsvc: client: %w", err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base()+path, body)
	if err != nil {
		return fmt.Errorf("sweepsvc: client: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return fmt.Errorf("sweepsvc: client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("sweepsvc: %s %s: %s: %s", method, path, resp.Status, bytes.TrimSpace(msg))
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("sweepsvc: client: %w", err)
	}
	return nil
}

// Submit admits a sweep job and returns its ID and point count.
func (c *Client) Submit(ctx context.Context, spec Spec) (string, int, error) {
	var resp SubmitResponse
	if err := c.call(ctx, http.MethodPost, "/api/jobs", SubmitRequest{Spec: spec}, &resp); err != nil {
		return "", 0, err
	}
	return resp.Job, resp.Points, nil
}

// Status fetches a job's progress.
func (c *Client) Status(ctx context.Context, job string) (JobStatus, error) {
	var st JobStatus
	err := c.call(ctx, http.MethodGet, "/api/jobs/"+job, nil, &st)
	return st, err
}

// CSV fetches a completed job's assembled output.
func (c *Client) CSV(ctx context.Context, job string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base()+"/api/jobs/"+job+"/csv", nil)
	if err != nil {
		return "", fmt.Errorf("sweepsvc: client: %w", err)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", fmt.Errorf("sweepsvc: client: %w", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", fmt.Errorf("sweepsvc: client: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("sweepsvc: csv %s: %s: %s", job, resp.Status, bytes.TrimSpace(b))
	}
	return string(b), nil
}

// Rows fetches a job's per-point output state in rate order — readable
// while the job is still running, for incremental row printing.
func (c *Client) Rows(ctx context.Context, job string) ([]PointRow, error) {
	var rows []PointRow
	err := c.call(ctx, http.MethodGet, "/api/jobs/"+job+"/rows", nil, &rows)
	return rows, err
}

// RowsWithRetry fetches a job's rows through transient coordinator
// outages (a bounce mid-sweep) under the given backoff policy, stopping
// early on a 404.
func (c *Client) RowsWithRetry(ctx context.Context, p backoff.Policy, attempts int, job string) (rows []PointRow, err error) {
	_, err = backoff.Retry(ctx, p, attempts, func(int) error {
		var rerr error
		rows, rerr = c.Rows(ctx, job)
		if rerr != nil && isNotFound(rerr) {
			return backoff.Stop(rerr)
		}
		return rerr
	})
	return rows, err
}

// Acquire pulls up to max leases for worker.
func (c *Client) Acquire(ctx context.Context, worker string, max int) ([]Lease, error) {
	var resp LeaseResponse
	if err := c.call(ctx, http.MethodPost, "/api/lease", LeaseRequest{Worker: worker, Max: max}, &resp); err != nil {
		return nil, err
	}
	return resp.Leases, nil
}

// Renew heartbeats the given leases, returning the ones the
// coordinator no longer honors.
func (c *Client) Renew(ctx context.Context, worker string, leases []string) ([]string, error) {
	var resp RenewResponse
	if err := c.call(ctx, http.MethodPost, "/api/renew", RenewRequest{Worker: worker, Leases: leases}, &resp); err != nil {
		return nil, err
	}
	return resp.Lost, nil
}

// Release returns unstarted leases to the pending pool.
func (c *Client) Release(ctx context.Context, worker string, leases []string) error {
	return c.call(ctx, http.MethodPost, "/api/release", ReleaseRequest{Worker: worker, Leases: leases}, nil)
}

// Complete reports one finished point.  It returns whether the report
// was the point's first (false = dropped as an idempotent duplicate).
func (c *Client) Complete(ctx context.Context, comp Completion) (bool, error) {
	var resp CompleteResponse
	if err := c.call(ctx, http.MethodPost, "/api/complete", comp, &resp); err != nil {
		return false, err
	}
	return resp.Accepted, nil
}

// CompleteWithRetry pushes a completion through transient coordinator
// outages (a bounce mid-sweep) under the given backoff policy.  A 404
// (unknown job — the report outlived its journal) stops immediately.
func (c *Client) CompleteWithRetry(ctx context.Context, p backoff.Policy, attempts int, comp Completion) (accepted bool, err error) {
	_, err = backoff.Retry(ctx, p, attempts, func(int) error {
		var cerr error
		accepted, cerr = c.Complete(ctx, comp)
		if cerr != nil && isNotFound(cerr) {
			return backoff.Stop(cerr)
		}
		return cerr
	})
	return accepted, err
}

// StatusWithRetry polls a job's progress through transient coordinator
// outages (a bounce mid-sweep) under the given backoff policy.  A 404
// (unknown job — the journal is gone or the address is wrong) stops
// immediately.
func (c *Client) StatusWithRetry(ctx context.Context, p backoff.Policy, attempts int, job string) (st JobStatus, err error) {
	_, err = backoff.Retry(ctx, p, attempts, func(int) error {
		var serr error
		st, serr = c.Status(ctx, job)
		if serr != nil && isNotFound(serr) {
			return backoff.Stop(serr)
		}
		return serr
	})
	return st, err
}

// CSVWithRetry fetches a completed job's CSV through transient
// coordinator outages under the given backoff policy, stopping early
// on a 404.
func (c *Client) CSVWithRetry(ctx context.Context, p backoff.Policy, attempts int, job string) (csv string, err error) {
	_, err = backoff.Retry(ctx, p, attempts, func(int) error {
		var cerr error
		csv, cerr = c.CSV(ctx, job)
		if cerr != nil && isNotFound(cerr) {
			return backoff.Stop(cerr)
		}
		return cerr
	})
	return csv, err
}

// isNotFound sniffs the coordinator's 404 answer out of a client error.
func isNotFound(err error) bool {
	return err != nil && bytes.Contains([]byte(err.Error()), []byte("404"))
}
