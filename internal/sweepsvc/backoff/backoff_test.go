package backoff

import (
	"context"
	"errors"
	"testing"
	"time"
)

// The delay schedule must be exponential up to the cap, deterministic
// for a fixed seed, and jittered within [d·(1−J), d).
func TestDelayScheduleDeterministicAndBounded(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Max: 160 * time.Millisecond, Factor: 2, Jitter: 0.5, Seed: 7}
	q := p // identical policy ⇒ identical schedule
	prevCapped := false
	for attempt := 0; attempt < 10; attempt++ {
		d := p.Delay(attempt)
		if d != q.Delay(attempt) {
			t.Fatalf("attempt %d: schedule not deterministic", attempt)
		}
		pre := float64(10*time.Millisecond) * float64(int(1)<<attempt)
		if pre > float64(160*time.Millisecond) {
			pre = float64(160 * time.Millisecond)
			prevCapped = true
		}
		lo, hi := time.Duration(pre*0.5), time.Duration(pre)
		if d < lo || d >= hi {
			t.Errorf("attempt %d: delay %v outside [%v, %v)", attempt, d, lo, hi)
		}
	}
	if !prevCapped {
		t.Error("test never reached the cap; widen the attempt range")
	}
}

// Distinct seeds must de-synchronize the jitter.
func TestDelaySeedsDiverge(t *testing.T) {
	a := Policy{Base: 10 * time.Millisecond, Seed: 1}
	b := Policy{Base: 10 * time.Millisecond, Seed: 2}
	same := 0
	for attempt := 0; attempt < 8; attempt++ {
		if a.Delay(attempt) == b.Delay(attempt) {
			same++
		}
	}
	if same == 8 {
		t.Error("seeds 1 and 2 produced identical schedules")
	}
}

// Negative jitter disables randomization entirely.
func TestNoJitterIsExact(t *testing.T) {
	p := Policy{Base: 4 * time.Millisecond, Max: 32 * time.Millisecond, Factor: 2, Jitter: -1}
	want := []time.Duration{4, 8, 16, 32, 32}
	for i, w := range want {
		if d := p.Delay(i); d != w*time.Millisecond {
			t.Errorf("Delay(%d) = %v, want %v", i, d, w*time.Millisecond)
		}
	}
}

func TestRetrySucceedsAndCounts(t *testing.T) {
	p := Policy{Base: time.Microsecond, Jitter: -1}
	calls := 0
	n, err := Retry(context.Background(), p, 5, func(int) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || n != 3 || calls != 3 {
		t.Errorf("Retry = (%d, %v) after %d calls, want (3, nil, 3)", n, err, calls)
	}
}

func TestRetryExhaustsBudget(t *testing.T) {
	p := Policy{Base: time.Microsecond, Jitter: -1}
	boom := errors.New("boom")
	n, err := Retry(context.Background(), p, 3, func(int) error { return boom })
	if !errors.Is(err, boom) || n != 3 {
		t.Errorf("Retry = (%d, %v), want (3, boom)", n, err)
	}
}

// Stop must abort the loop immediately and unwrap transparently.
func TestRetryStopsOnPermanentError(t *testing.T) {
	p := Policy{Base: time.Microsecond, Jitter: -1}
	wedged := errors.New("fault-wedge")
	calls := 0
	n, err := Retry(context.Background(), p, 5, func(int) error {
		calls++
		return Stop(wedged)
	})
	if !errors.Is(err, wedged) || n != 1 || calls != 1 {
		t.Errorf("Retry = (%d, %v) after %d calls, want immediate stop", n, err, calls)
	}
}

// A cancelled context must cut the sleep short and surface both the
// attempt's error and the cancellation.
func TestRetryHonorsContext(t *testing.T) {
	p := Policy{Base: time.Hour, Jitter: -1} // would sleep forever
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := Retry(ctx, p, 3, func(int) error { return errors.New("transient") })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if time.Since(start) > time.Second {
		t.Error("Retry slept through a cancelled context")
	}
}
