// Package backoff is the seeded exponential-backoff-with-jitter policy
// shared by every retry loop in the sweep service: worker lease polls,
// completion reports racing a coordinator bounce, and cmd/sweep's
// per-point retries.  Delays are a pure function of (policy, attempt),
// so a seeded run retries on a reproducible schedule — the same
// property the simulator's fault plans have — while distinct seeds
// de-synchronize a worker fleet hammering a recovering coordinator.
package backoff

import (
	"context"
	"errors"
	"time"
)

// Defaults applied by Policy.Delay when the corresponding field is
// zero.
const (
	DefaultBase   = 50 * time.Millisecond
	DefaultMax    = 5 * time.Second
	DefaultFactor = 2.0
	DefaultJitter = 0.5
)

// Policy describes one exponential backoff schedule.  The zero value
// is usable and applies the defaults.
type Policy struct {
	// Base is the pre-jitter delay before the first retry.
	Base time.Duration
	// Max caps the pre-jitter delay growth.
	Max time.Duration
	// Factor multiplies the delay per attempt (≤ 1 defaults to 2).
	Factor float64
	// Jitter is the fraction of each delay that is randomized: the
	// delay spans [d·(1−Jitter), d).  0 applies DefaultJitter; a
	// negative value disables jitter entirely.
	Jitter float64
	// Seed selects the deterministic jitter stream.  Two policies with
	// equal fields and seeds produce identical delay sequences.
	Seed int64
}

// Delay returns the post-jitter delay to sleep before retry `attempt`
// (0-based: Delay(0) follows the first failure).
func (p Policy) Delay(attempt int) time.Duration {
	base, maxd, factor, jitter := p.Base, p.Max, p.Factor, p.Jitter
	if base <= 0 {
		base = DefaultBase
	}
	if maxd <= 0 {
		maxd = DefaultMax
	}
	if factor <= 1 {
		factor = DefaultFactor
	}
	switch {
	case jitter == 0:
		jitter = DefaultJitter
	case jitter < 0:
		jitter = 0
	case jitter > 1:
		jitter = 1
	}
	d := float64(base)
	for i := 0; i < attempt && d < float64(maxd); i++ {
		d *= factor
	}
	if d > float64(maxd) {
		d = float64(maxd)
	}
	if jitter > 0 {
		// u ∈ [0,1) from a splitmix64 draw of (seed, attempt): the
		// jitter is reproducible per attempt and independent across
		// seeds.
		u := float64(hash64(uint64(p.Seed), uint64(attempt))>>11) / (1 << 53)
		d = d*(1-jitter) + d*jitter*u
	}
	if d < 1 {
		d = 1
	}
	return time.Duration(d)
}

// Sleep blocks for Delay(attempt) or until ctx is done, returning
// ctx.Err() in the latter case.
func (p Policy) Sleep(ctx context.Context, attempt int) error {
	t := time.NewTimer(p.Delay(attempt))
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// stopError marks an error as non-retryable for Retry.
type stopError struct{ err error }

func (e *stopError) Error() string { return e.err.Error() }
func (e *stopError) Unwrap() error { return e.err }

// Stop wraps err so Retry returns it immediately instead of burning
// the remaining attempts — the caller has classified the failure as
// permanent (a wedged point, an invalid spec).
func Stop(err error) error {
	if err == nil {
		return nil
	}
	return &stopError{err: err}
}

// Retry runs f up to attempts times, sleeping Delay(i) between tries,
// and returns the number of attempts used along with f's final error
// (nil on success).  An error wrapped with Stop aborts the loop and is
// returned unwrapped; a cancelled ctx aborts with ctx's error.
func Retry(ctx context.Context, p Policy, attempts int, f func(attempt int) error) (int, error) {
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if err = f(attempt); err == nil {
			return attempt + 1, nil
		}
		var stop *stopError
		if errors.As(err, &stop) {
			return attempt + 1, stop.err
		}
		if attempt == attempts-1 {
			break
		}
		if serr := p.Sleep(ctx, attempt); serr != nil {
			return attempt + 1, errors.Join(err, serr)
		}
	}
	return attempts, err
}

// hash64 is the splitmix64 finalizer (duplicated from internal/fault
// to keep this leaf package dependency-free).
func hash64(a, b uint64) uint64 {
	z := a*0x9E3779B97F4A7C15 + b + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
