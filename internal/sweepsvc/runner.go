package sweepsvc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"surfbless/internal/sim"
	"surfbless/internal/simcache"
	"surfbless/internal/sweepsvc/backoff"
)

// RetryHook observes per-point retry attempts (nil = disabled): the
// binaries wire it to stderr logging and the retry counter on
// /metrics.  It is called with the failing attempt's 1-based number
// and error before the backoff sleep.
//
//hook:nil-disabled
type RetryHook func(rate float64, attempt int, err error)

// Runner executes sweep points against the shared result store with
// the service's retry policy.  The zero value runs uncached with the
// default backoff; it is safe for concurrent use by worker slots (the
// cache and hooks are internally synchronized or immutable).
type Runner struct {
	// Cache is the shared simcache-backed result store (nil = always
	// simulate).
	Cache *simcache.Cache
	// Policy paces retries of failing points.  Seed it per process so a
	// fleet's retries de-synchronize.
	Policy backoff.Policy
	// OnRetry, when non-nil, observes each failed attempt that will be
	// retried.
	OnRetry RetryHook
}

// Execution is one point's finished outcome.
type Execution struct {
	// Row is the point's CSV row ("" when Canceled).
	Row string
	// Status is the row's typed status cell: "ok", "degraded: <reason>"
	// or "error: <cause>", with "; attempts=N" appended when retries
	// were consumed.
	Status string
	// Attempts is the number of executions consumed (≥ 1).
	Attempts int
	// Failed marks a point that exhausted its attempt budget; its Row
	// is an ErrorRow and the job counts it as a failure.
	Failed bool
	// Permanent marks an outcome that is guaranteed to repeat —
	// a fault-wedge or recovered invariant (sim.DegradedKind.Permanent)
	// or an invalid spec — so the service must not schedule the point
	// again.
	Permanent bool
	// Canceled marks an execution stopped by the caller's context
	// (worker hard-kill): the point produced no row and should simply
	// be re-leased later.
	Canceled bool
	// Key is the point's cache fingerprint (valid iff KeyOK).
	Key   simcache.Key
	KeyOK bool
}

// RunPoint executes one point: up to spec.Attempts() tries under the
// runner's backoff policy, each bounded by the spec's per-point
// timeout, with context cancellation plumbed through sim.Run.
// Degraded runs are data — their partial statistics make the row and
// never consume retries.  A panic escaping the simulator's own recover
// boundary is contained here so worker slots never die.
func (r *Runner) RunPoint(ctx context.Context, spec Spec, rate float64) Execution {
	o, err := spec.Options(rate)
	if err != nil {
		status := "error: " + CSVSafe(err.Error())
		return Execution{Row: ErrorRow(rate, status), Status: status, Attempts: 1, Failed: true, Permanent: true}
	}
	out := Execution{}
	if key, err := sim.Fingerprint(o); err == nil {
		out.Key, out.KeyOK = key, true
	}

	attempts := spec.Attempts()
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		out.Attempts = attempt
		res, rerr := r.attempt(ctx, spec, o)

		if rerr == nil {
			out.Status = StatusWithAttempts("ok", attempt)
			out.Row = RenderRow(rate, spec.Domains, res, out.Status)
			return out
		}

		var de *sim.DegradedError
		if errors.As(rerr, &de) {
			// Degraded points carry partial statistics: record them as
			// data.  Fault wedges are permanent by classification, so
			// the service will never reschedule the point.
			out.Status = StatusWithAttempts("degraded: "+CSVSafe(de.Reason), attempt)
			out.Row = RenderRow(rate, spec.Domains, de.Partial, out.Status)
			out.Permanent = de.Kind.Permanent()
			return out
		}

		var ce *sim.CanceledError
		if errors.As(rerr, &ce) && ctx.Err() != nil {
			// The caller's context died (hard kill / shutdown), not the
			// per-point timeout: no row, the lease lapses and the point
			// is re-leased elsewhere.
			out.Canceled = true
			return out
		}
		if errors.Is(rerr, context.DeadlineExceeded) {
			rerr = fmt.Errorf("timeout after %dms", spec.PointTimeoutMS)
		}
		lastErr = rerr
		if attempt == attempts {
			break
		}
		if r.OnRetry != nil {
			r.OnRetry(rate, attempt, rerr)
		}
		if r.Policy.Sleep(ctx, attempt-1) != nil {
			out.Canceled = true
			return out
		}
	}
	out.Status = StatusWithAttempts("error: "+CSVSafe(lastErr.Error()), out.Attempts)
	out.Row = ErrorRow(rate, out.Status)
	out.Failed = true
	return out
}

// attempt runs one execution with the per-point timeout applied and
// panics contained.
func (r *Runner) attempt(ctx context.Context, spec Spec, o sim.Options) (res sim.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("panic: %v", p)
		}
	}()
	pctx := ctx
	if spec.PointTimeoutMS > 0 {
		var cancel context.CancelFunc
		pctx, cancel = context.WithTimeout(ctx, time.Duration(spec.PointTimeoutMS)*time.Millisecond)
		defer cancel()
	}
	// context.Background().Done() is nil, so an unbounded, uncancelled
	// point costs the run loop nothing.
	o.Ctx = pctx
	return sim.RunCached(o, r.Cache)
}

// SerialCSV runs every point of the spec serially in rate order and
// writes the header plus one row per point to w — the reference output
// the chaos harness compares the service's CSV against, and the local
// engine behind cmd/sweep.  It returns the number of failed points.
func (r *Runner) SerialCSV(ctx context.Context, spec Spec, w io.Writer) (failures int, err error) {
	if err := spec.Validate(); err != nil {
		return 0, err
	}
	if _, err := fmt.Fprintln(w, CSVHeader); err != nil {
		return 0, err
	}
	for _, rate := range spec.Rates() {
		exec := r.RunPoint(ctx, spec, rate)
		if exec.Canceled {
			return failures, ctx.Err()
		}
		if exec.Failed {
			failures++
		}
		if _, err := fmt.Fprintln(w, exec.Row); err != nil {
			return failures, err
		}
	}
	return failures, nil
}

// StoreLookup fetches and decodes the cached result for one point
// fingerprint, mirroring sim.RunCached's corruption handling: an entry
// that no longer decodes is counted corrupt and treated as a miss.
func StoreLookup(cache *simcache.Cache, key simcache.Key) (sim.Result, bool) {
	if cache == nil {
		return sim.Result{}, false
	}
	raw, ok := cache.Get(key)
	if !ok {
		return sim.Result{}, false
	}
	var res sim.Result
	if err := json.Unmarshal(raw, &res); err != nil {
		cache.NoteCorrupt()
		return sim.Result{}, false
	}
	return res, true
}
