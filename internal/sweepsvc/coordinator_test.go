package sweepsvc

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// testSpec is a small, fast sweep: 3 points on the deterministic SB
// model over a 4×4 mesh.
func testSpec() Spec {
	return Spec{
		Model: "SB", Domains: 2,
		From: 0.02, To: 0.06, Step: 0.02,
		Cycles: 200, Seed: 7,
		Width: 4, Height: 4,
	}
}

// fakeClock is a hand-cranked time source for lease-expiry tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func openTestCoordinator(t *testing.T, walPath string, clk *fakeClock) *Coordinator {
	t.Helper()
	o := CoordinatorOptions{WALPath: walPath, LeaseTTL: 10 * time.Second}
	if clk != nil {
		o.Clock = clk.Now
	}
	c, err := OpenCoordinator(o)
	if err != nil {
		t.Fatalf("OpenCoordinator: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestCoordinatorLeaseLifecycle(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	c := openTestCoordinator(t, filepath.Join(t.TempDir(), "wal"), clk)

	job, points, err := c.SubmitJob(testSpec())
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	if points != 3 {
		t.Fatalf("points = %d, want 3", points)
	}

	leases, err := c.AcquireLeases("w1", 2)
	if err != nil || len(leases) != 2 {
		t.Fatalf("AcquireLeases = %d leases, %v; want 2", len(leases), err)
	}
	if leases[0].Rate >= leases[1].Rate {
		t.Errorf("leases out of rate order: %v then %v", leases[0].Rate, leases[1].Rate)
	}

	// Renewal keeps a lease alive across what would otherwise be expiry.
	clk.Advance(8 * time.Second)
	if lost := c.RenewLeases("w1", []string{leases[0].ID}); len(lost) != 0 {
		t.Fatalf("renew lost %v, want none", lost)
	}
	clk.Advance(8 * time.Second) // lease 0 renewed 8s ago; lease 1 is 16s old
	got, err := c.AcquireLeases("w2", 3)
	if err != nil {
		t.Fatalf("AcquireLeases: %v", err)
	}
	// w2 should get the expired point (requeued) plus the never-leased
	// third point — not the renewed one.
	if len(got) != 2 {
		t.Fatalf("w2 got %d leases, want 2 (expired + fresh)", len(got))
	}

	// The original holder's renewal now reports the expired lease lost.
	if lost := c.RenewLeases("w1", []string{leases[0].ID, leases[1].ID}); len(lost) != 1 || lost[0] != leases[1].ID {
		t.Errorf("renew lost %v, want [%s]", lost, leases[1].ID)
	}

	st, err := c.Status(job)
	if err != nil || st.Leased != 3 || st.Done != 0 {
		t.Errorf("status = %+v, %v; want 3 leased, 0 done", st, err)
	}
}

func TestCoordinatorCompletionIdempotent(t *testing.T) {
	c := openTestCoordinator(t, filepath.Join(t.TempDir(), "wal"), nil)
	job, _, err := c.SubmitJob(testSpec())
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	leases, _ := c.AcquireLeases("w1", 1)
	if len(leases) != 1 {
		t.Fatalf("no lease granted")
	}
	comp := Completion{
		Lease: leases[0].ID, Job: job, Point: leases[0].Point,
		Row: "0.020,1,1,1,0.0100,0,0,0,0,ok", Status: "ok", Attempts: 1,
	}
	if ok, err := c.CompletePoint(comp); err != nil || !ok {
		t.Fatalf("first completion = (%v, %v), want accepted", ok, err)
	}
	// The same report again — a retransmit — must be dropped, not
	// double-counted.
	if ok, err := c.CompletePoint(comp); err != nil || ok {
		t.Fatalf("duplicate completion = (%v, %v), want dropped without error", ok, err)
	}
	st, _ := c.Status(job)
	if st.Done != 1 {
		t.Errorf("done = %d after duplicate, want 1", st.Done)
	}
}

// A completion whose lease expired (or predates a coordinator bounce)
// must still land if the point is open — the zero-lost guarantee.
func TestCoordinatorLateCompletionAccepted(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	c := openTestCoordinator(t, filepath.Join(t.TempDir(), "wal"), clk)
	job, _, _ := c.SubmitJob(testSpec())
	leases, _ := c.AcquireLeases("w1", 1)
	clk.Advance(time.Minute) // lease long dead
	ok, err := c.CompletePoint(Completion{
		Lease: leases[0].ID, Job: job, Point: leases[0].Point,
		Row: "row", Status: "ok", Attempts: 1,
	})
	if err != nil || !ok {
		t.Fatalf("late completion = (%v, %v), want accepted", ok, err)
	}
	// The point must not be leased out again now that it is done.
	rest, _ := c.AcquireLeases("w2", 10)
	for _, l := range rest {
		if l.Point == leases[0].Point {
			t.Errorf("completed point %d re-leased", l.Point)
		}
	}
}

func TestCoordinatorWALResume(t *testing.T) {
	wal := filepath.Join(t.TempDir(), "wal")
	c1 := openTestCoordinator(t, wal, nil)
	job, _, _ := c1.SubmitJob(testSpec())
	leases, _ := c1.AcquireLeases("w1", 2)
	if _, err := c1.CompletePoint(Completion{
		Job: job, Point: leases[0].Point, Row: "done-row", Status: "ok", Attempts: 1,
	}); err != nil {
		t.Fatalf("CompletePoint: %v", err)
	}
	c1.Close() // crash stand-in: leases held by w1 are forgotten

	c2 := openTestCoordinator(t, wal, nil)
	st, err := c2.Status(job)
	if err != nil {
		t.Fatalf("resumed Status: %v", err)
	}
	if st.Done != 1 || st.Leased != 0 || st.Total != 3 {
		t.Fatalf("resumed status = %+v, want 1 done / 0 leased / 3 total", st)
	}
	// The two unfinished points (incl. the one leased at crash time)
	// must be grantable again; the done one must not.
	got, _ := c2.AcquireLeases("w2", 10)
	if len(got) != 2 {
		t.Fatalf("resumed coordinator granted %d leases, want 2", len(got))
	}
	for _, l := range got {
		if l.Point == leases[0].Point {
			t.Errorf("done point %d re-leased after resume", l.Point)
		}
	}
}

// A torn final WAL line (kill -9 mid-Append) must not poison resume.
func TestCoordinatorWALTornTail(t *testing.T) {
	wal := filepath.Join(t.TempDir(), "wal")
	c1 := openTestCoordinator(t, wal, nil)
	job, _, _ := c1.SubmitJob(testSpec())
	c1.Close()

	f, err := os.OpenFile(wal, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"t":"point","job":"` + job + `","point":1,"row":"half`) // no close, no newline
	f.Close()

	c2 := openTestCoordinator(t, wal, nil)
	if c2.Skipped() != 1 {
		t.Errorf("Skipped = %d, want 1", c2.Skipped())
	}
	st, _ := c2.Status(job)
	if st.Done != 0 {
		t.Errorf("torn point record counted as done: %+v", st)
	}
	// The journal must accept appends again.
	if _, _, err := c2.SubmitJob(testSpec()); err != nil {
		t.Errorf("SubmitJob after torn tail: %v", err)
	}
}

// Two jobs sharing a fingerprint: the duplicate point must never be
// leased while the first is in flight, and must complete from the
// first execution's row.
func TestCoordinatorSingleflight(t *testing.T) {
	c := openTestCoordinator(t, filepath.Join(t.TempDir(), "wal"), nil)
	spec := testSpec()
	jobA, _, _ := c.SubmitJob(spec)
	jobB, _, _ := c.SubmitJob(spec) // identical ⇒ identical fingerprints

	leases, _ := c.AcquireLeases("w1", 10)
	if len(leases) != 3 {
		t.Fatalf("granted %d leases, want 3 (job B's twins held back)", len(leases))
	}
	for _, l := range leases {
		if l.Job != jobA {
			t.Fatalf("lease from %s, want all from %s while twins in flight", l.Job, jobA)
		}
	}
	for _, l := range leases {
		if _, err := c.CompletePoint(Completion{
			Job: l.Job, Point: l.Point,
			Row: "shared-row", Status: "ok", Attempts: 1,
		}); err != nil {
			t.Fatalf("CompletePoint: %v", err)
		}
	}
	stB, _ := c.Status(jobB)
	if !stB.Complete {
		t.Fatalf("job B not completed by singleflight: %+v", stB)
	}
	csvB, err := c.CSV(jobB)
	if err != nil {
		t.Fatalf("CSV(B): %v", err)
	}
	if strings.Count(csvB, "shared-row") != 3 {
		t.Errorf("job B CSV did not reuse the executed rows:\n%s", csvB)
	}
	csvA, _ := c.CSV(jobA)
	if csvA != csvB {
		t.Errorf("identical jobs produced different CSVs")
	}
}

// A failed twin must NOT propagate: only ok/degraded rows transfer.
func TestCoordinatorSingleflightSkipsFailures(t *testing.T) {
	c := openTestCoordinator(t, filepath.Join(t.TempDir(), "wal"), nil)
	spec := testSpec()
	jobA, _, _ := c.SubmitJob(spec)
	jobB, _, _ := c.SubmitJob(spec)
	leases, _ := c.AcquireLeases("w1", 1)
	l := leases[0]
	if _, err := c.CompletePoint(Completion{
		Job: l.Job, Point: l.Point,
		Row: ErrorRow(l.Rate, "error: boom"), Status: "error: boom", Attempts: 2, Failed: true,
	}); err != nil {
		t.Fatal(err)
	}
	stB, _ := c.Status(jobB)
	if stB.Done != 0 {
		t.Errorf("failure propagated to job B: %+v", stB)
	}
	// Job B's twin point must be leasable now that nothing is in flight.
	again, _ := c.AcquireLeases("w2", 10)
	foundTwin := false
	for _, g := range again {
		if g.Job == jobB && g.Rate == l.Rate {
			foundTwin = true
		}
	}
	if !foundTwin {
		t.Errorf("job B twin of the failed point not re-leasable")
	}
	_ = jobA
}

// At exactly TTL a heartbeat renewal and lease expiry collide.  The
// tie must resolve deterministically in expiry's favor — whether the
// lapse is noticed lazily by the renewal's own sweep or by the
// server's ticker in the same tick — because a renewal that resurrects
// a just-expired lease could overlap the new lease its point was
// requeued into: two workers, one work unit.
func TestCoordinatorRenewExpireAtExactTTL(t *testing.T) {
	for _, tickerFirst := range []bool{false, true} {
		name := "lazy-expiry-first"
		if tickerFirst {
			name = "ticker-sweep-first"
		}
		t.Run(name, func(t *testing.T) {
			clk := &fakeClock{now: time.Unix(1000, 0)}
			c := openTestCoordinator(t, filepath.Join(t.TempDir(), "wal"), clk)
			if _, _, err := c.SubmitJob(testSpec()); err != nil {
				t.Fatalf("SubmitJob: %v", err)
			}
			leases, err := c.AcquireLeases("w1", 1)
			if err != nil || len(leases) != 1 {
				t.Fatalf("AcquireLeases = %v, %v; want 1 lease", leases, err)
			}
			l := leases[0]
			clk.Advance(10 * time.Second) // exactly the lease TTL
			if tickerFirst {
				c.ExpireLeases()
			}
			if lost := c.RenewLeases("w1", []string{l.ID}); len(lost) != 1 || lost[0] != l.ID {
				t.Fatalf("renewal at exactly TTL lost %v, want [%s] (expiry wins ties)", lost, l.ID)
			}
			// The point is pending again and goes to a second worker.
			release, err := c.AcquireLeases("w2", 1)
			if err != nil || len(release) != 1 || release[0].Point != l.Point {
				t.Fatalf("expired point not re-leased: %v, %v", release, err)
			}
			// The original worker keeps heartbeating its dead ID: it must
			// stay lost, and w2's live lease must be untouched by it.
			if lost := c.RenewLeases("w1", []string{l.ID}); len(lost) != 1 {
				t.Errorf("dead lease resurrected: lost %v, want it reported lost", lost)
			}
			if lost := c.RenewLeases("w2", []string{release[0].ID}); len(lost) != 0 {
				t.Errorf("w2's live lease reported lost: %v", lost)
			}
		})
	}
}

// A renewal strictly inside the TTL keeps the lease: a ticker sweep
// arriving at the original expiry instant must see the extended
// deadline, not requeue the point under its old one.
func TestCoordinatorRenewJustInsideTTL(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	c := openTestCoordinator(t, filepath.Join(t.TempDir(), "wal"), clk)
	if _, _, err := c.SubmitJob(testSpec()); err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	leases, _ := c.AcquireLeases("w1", 1)
	if len(leases) != 1 {
		t.Fatal("no lease granted")
	}
	l := leases[0]
	clk.Advance(10*time.Second - time.Nanosecond)
	if lost := c.RenewLeases("w1", []string{l.ID}); len(lost) != 0 {
		t.Fatalf("renewal inside TTL lost %v, want none", lost)
	}
	clk.Advance(time.Nanosecond) // the lease's pre-renewal expiry instant
	c.ExpireLeases()
	if lost := c.RenewLeases("w1", []string{l.ID}); len(lost) != 0 {
		t.Fatalf("renewed lease expired at its old deadline: lost %v", lost)
	}
	got, _ := c.AcquireLeases("w2", 10)
	for _, g := range got {
		if g.Point == l.Point {
			t.Errorf("renewed point %d re-leased to w2", g.Point)
		}
	}
}

// Lease IDs must be disjoint across coordinator incarnations: WAL
// replay rebuilds jobs without advancing the sequence counter, so a
// bare counter would re-mint IDs that pre-bounce workers still
// heartbeat — and those heartbeats would extend (or their completions
// resolve) an unrelated post-bounce lease.
func TestCoordinatorLeaseIDsDisjointAcrossRestart(t *testing.T) {
	wal := filepath.Join(t.TempDir(), "wal")
	clk := &fakeClock{now: time.Unix(1000, 0)}
	c1 := openTestCoordinator(t, wal, clk)
	if _, _, err := c1.SubmitJob(testSpec()); err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	pre, _ := c1.AcquireLeases("w1", 1)
	if len(pre) != 1 {
		t.Fatal("no lease granted")
	}
	c1.Close()

	clk.Advance(time.Second) // restarts take nonzero wall time
	c2 := openTestCoordinator(t, wal, clk)
	post, _ := c2.AcquireLeases("w1", 1)
	if len(post) != 1 {
		t.Fatal("no lease granted after resume")
	}
	if pre[0].ID == post[0].ID {
		t.Fatalf("lease ID %q reused across incarnations", pre[0].ID)
	}
	// The pre-bounce heartbeat must come back lost without touching the
	// live lease.
	if lost := c2.RenewLeases("w1", []string{pre[0].ID}); len(lost) != 1 {
		t.Errorf("pre-bounce lease renewal lost %v, want it reported lost", lost)
	}
	if lost := c2.RenewLeases("w1", []string{post[0].ID}); len(lost) != 0 {
		t.Errorf("live lease reported lost: %v", lost)
	}
}

// RenewLeases on a closed coordinator reports every lease lost instead
// of silently extending soft state the next incarnation will not have.
func TestCoordinatorRenewAfterCloseReportsLost(t *testing.T) {
	c := openTestCoordinator(t, filepath.Join(t.TempDir(), "wal"), nil)
	if _, _, err := c.SubmitJob(testSpec()); err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	leases, _ := c.AcquireLeases("w1", 1)
	if len(leases) != 1 {
		t.Fatal("no lease granted")
	}
	c.Close()
	if lost := c.RenewLeases("w1", []string{leases[0].ID}); len(lost) != 1 || lost[0] != leases[0].ID {
		t.Errorf("renew after close lost %v, want [%s]", lost, leases[0].ID)
	}
}
