package sweepsvc

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// testSpec is a small, fast sweep: 3 points on the deterministic SB
// model over a 4×4 mesh.
func testSpec() Spec {
	return Spec{
		Model: "SB", Domains: 2,
		From: 0.02, To: 0.06, Step: 0.02,
		Cycles: 200, Seed: 7,
		Width: 4, Height: 4,
	}
}

// fakeClock is a hand-cranked time source for lease-expiry tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func openTestCoordinator(t *testing.T, walPath string, clk *fakeClock) *Coordinator {
	t.Helper()
	o := CoordinatorOptions{WALPath: walPath, LeaseTTL: 10 * time.Second}
	if clk != nil {
		o.Clock = clk.Now
	}
	c, err := OpenCoordinator(o)
	if err != nil {
		t.Fatalf("OpenCoordinator: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestCoordinatorLeaseLifecycle(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	c := openTestCoordinator(t, filepath.Join(t.TempDir(), "wal"), clk)

	job, points, err := c.SubmitJob(testSpec())
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	if points != 3 {
		t.Fatalf("points = %d, want 3", points)
	}

	leases, err := c.AcquireLeases("w1", 2)
	if err != nil || len(leases) != 2 {
		t.Fatalf("AcquireLeases = %d leases, %v; want 2", len(leases), err)
	}
	if leases[0].Rate >= leases[1].Rate {
		t.Errorf("leases out of rate order: %v then %v", leases[0].Rate, leases[1].Rate)
	}

	// Renewal keeps a lease alive across what would otherwise be expiry.
	clk.Advance(8 * time.Second)
	if lost := c.RenewLeases("w1", []string{leases[0].ID}); len(lost) != 0 {
		t.Fatalf("renew lost %v, want none", lost)
	}
	clk.Advance(8 * time.Second) // lease 0 renewed 8s ago; lease 1 is 16s old
	got, err := c.AcquireLeases("w2", 3)
	if err != nil {
		t.Fatalf("AcquireLeases: %v", err)
	}
	// w2 should get the expired point (requeued) plus the never-leased
	// third point — not the renewed one.
	if len(got) != 2 {
		t.Fatalf("w2 got %d leases, want 2 (expired + fresh)", len(got))
	}

	// The original holder's renewal now reports the expired lease lost.
	if lost := c.RenewLeases("w1", []string{leases[0].ID, leases[1].ID}); len(lost) != 1 || lost[0] != leases[1].ID {
		t.Errorf("renew lost %v, want [%s]", lost, leases[1].ID)
	}

	st, err := c.Status(job)
	if err != nil || st.Leased != 3 || st.Done != 0 {
		t.Errorf("status = %+v, %v; want 3 leased, 0 done", st, err)
	}
}

func TestCoordinatorCompletionIdempotent(t *testing.T) {
	c := openTestCoordinator(t, filepath.Join(t.TempDir(), "wal"), nil)
	job, _, err := c.SubmitJob(testSpec())
	if err != nil {
		t.Fatalf("SubmitJob: %v", err)
	}
	leases, _ := c.AcquireLeases("w1", 1)
	if len(leases) != 1 {
		t.Fatalf("no lease granted")
	}
	comp := Completion{
		Lease: leases[0].ID, Job: job, Point: leases[0].Point,
		Row: "0.020,1,1,1,0.0100,0,0,0,0,ok", Status: "ok", Attempts: 1,
	}
	if ok, err := c.CompletePoint(comp); err != nil || !ok {
		t.Fatalf("first completion = (%v, %v), want accepted", ok, err)
	}
	// The same report again — a retransmit — must be dropped, not
	// double-counted.
	if ok, err := c.CompletePoint(comp); err != nil || ok {
		t.Fatalf("duplicate completion = (%v, %v), want dropped without error", ok, err)
	}
	st, _ := c.Status(job)
	if st.Done != 1 {
		t.Errorf("done = %d after duplicate, want 1", st.Done)
	}
}

// A completion whose lease expired (or predates a coordinator bounce)
// must still land if the point is open — the zero-lost guarantee.
func TestCoordinatorLateCompletionAccepted(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	c := openTestCoordinator(t, filepath.Join(t.TempDir(), "wal"), clk)
	job, _, _ := c.SubmitJob(testSpec())
	leases, _ := c.AcquireLeases("w1", 1)
	clk.Advance(time.Minute) // lease long dead
	ok, err := c.CompletePoint(Completion{
		Lease: leases[0].ID, Job: job, Point: leases[0].Point,
		Row: "row", Status: "ok", Attempts: 1,
	})
	if err != nil || !ok {
		t.Fatalf("late completion = (%v, %v), want accepted", ok, err)
	}
	// The point must not be leased out again now that it is done.
	rest, _ := c.AcquireLeases("w2", 10)
	for _, l := range rest {
		if l.Point == leases[0].Point {
			t.Errorf("completed point %d re-leased", l.Point)
		}
	}
}

func TestCoordinatorWALResume(t *testing.T) {
	wal := filepath.Join(t.TempDir(), "wal")
	c1 := openTestCoordinator(t, wal, nil)
	job, _, _ := c1.SubmitJob(testSpec())
	leases, _ := c1.AcquireLeases("w1", 2)
	if _, err := c1.CompletePoint(Completion{
		Job: job, Point: leases[0].Point, Row: "done-row", Status: "ok", Attempts: 1,
	}); err != nil {
		t.Fatalf("CompletePoint: %v", err)
	}
	c1.Close() // crash stand-in: leases held by w1 are forgotten

	c2 := openTestCoordinator(t, wal, nil)
	st, err := c2.Status(job)
	if err != nil {
		t.Fatalf("resumed Status: %v", err)
	}
	if st.Done != 1 || st.Leased != 0 || st.Total != 3 {
		t.Fatalf("resumed status = %+v, want 1 done / 0 leased / 3 total", st)
	}
	// The two unfinished points (incl. the one leased at crash time)
	// must be grantable again; the done one must not.
	got, _ := c2.AcquireLeases("w2", 10)
	if len(got) != 2 {
		t.Fatalf("resumed coordinator granted %d leases, want 2", len(got))
	}
	for _, l := range got {
		if l.Point == leases[0].Point {
			t.Errorf("done point %d re-leased after resume", l.Point)
		}
	}
}

// A torn final WAL line (kill -9 mid-Append) must not poison resume.
func TestCoordinatorWALTornTail(t *testing.T) {
	wal := filepath.Join(t.TempDir(), "wal")
	c1 := openTestCoordinator(t, wal, nil)
	job, _, _ := c1.SubmitJob(testSpec())
	c1.Close()

	f, err := os.OpenFile(wal, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"t":"point","job":"` + job + `","point":1,"row":"half`) // no close, no newline
	f.Close()

	c2 := openTestCoordinator(t, wal, nil)
	if c2.Skipped() != 1 {
		t.Errorf("Skipped = %d, want 1", c2.Skipped())
	}
	st, _ := c2.Status(job)
	if st.Done != 0 {
		t.Errorf("torn point record counted as done: %+v", st)
	}
	// The journal must accept appends again.
	if _, _, err := c2.SubmitJob(testSpec()); err != nil {
		t.Errorf("SubmitJob after torn tail: %v", err)
	}
}

// Two jobs sharing a fingerprint: the duplicate point must never be
// leased while the first is in flight, and must complete from the
// first execution's row.
func TestCoordinatorSingleflight(t *testing.T) {
	c := openTestCoordinator(t, filepath.Join(t.TempDir(), "wal"), nil)
	spec := testSpec()
	jobA, _, _ := c.SubmitJob(spec)
	jobB, _, _ := c.SubmitJob(spec) // identical ⇒ identical fingerprints

	leases, _ := c.AcquireLeases("w1", 10)
	if len(leases) != 3 {
		t.Fatalf("granted %d leases, want 3 (job B's twins held back)", len(leases))
	}
	for _, l := range leases {
		if l.Job != jobA {
			t.Fatalf("lease from %s, want all from %s while twins in flight", l.Job, jobA)
		}
	}
	for _, l := range leases {
		if _, err := c.CompletePoint(Completion{
			Job: l.Job, Point: l.Point,
			Row: "shared-row", Status: "ok", Attempts: 1,
		}); err != nil {
			t.Fatalf("CompletePoint: %v", err)
		}
	}
	stB, _ := c.Status(jobB)
	if !stB.Complete {
		t.Fatalf("job B not completed by singleflight: %+v", stB)
	}
	csvB, err := c.CSV(jobB)
	if err != nil {
		t.Fatalf("CSV(B): %v", err)
	}
	if strings.Count(csvB, "shared-row") != 3 {
		t.Errorf("job B CSV did not reuse the executed rows:\n%s", csvB)
	}
	csvA, _ := c.CSV(jobA)
	if csvA != csvB {
		t.Errorf("identical jobs produced different CSVs")
	}
}

// A failed twin must NOT propagate: only ok/degraded rows transfer.
func TestCoordinatorSingleflightSkipsFailures(t *testing.T) {
	c := openTestCoordinator(t, filepath.Join(t.TempDir(), "wal"), nil)
	spec := testSpec()
	jobA, _, _ := c.SubmitJob(spec)
	jobB, _, _ := c.SubmitJob(spec)
	leases, _ := c.AcquireLeases("w1", 1)
	l := leases[0]
	if _, err := c.CompletePoint(Completion{
		Job: l.Job, Point: l.Point,
		Row: ErrorRow(l.Rate, "error: boom"), Status: "error: boom", Attempts: 2, Failed: true,
	}); err != nil {
		t.Fatal(err)
	}
	stB, _ := c.Status(jobB)
	if stB.Done != 0 {
		t.Errorf("failure propagated to job B: %+v", stB)
	}
	// Job B's twin point must be leasable now that nothing is in flight.
	again, _ := c.AcquireLeases("w2", 10)
	foundTwin := false
	for _, g := range again {
		if g.Job == jobB && g.Rate == l.Rate {
			foundTwin = true
		}
	}
	if !foundTwin {
		t.Errorf("job B twin of the failed point not re-leasable")
	}
	_ = jobA
}
