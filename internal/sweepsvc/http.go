package sweepsvc

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"time"

	"surfbless/internal/probe"
)

// API wire types for the endpoints that take request bodies.
type (
	// SubmitRequest is the body of POST /api/jobs.
	SubmitRequest struct {
		Spec Spec `json:"spec"`
	}
	// SubmitResponse acknowledges an admitted (and journaled) job.
	SubmitResponse struct {
		Job    string `json:"job"`
		Points int    `json:"points"`
	}
	// LeaseRequest is the body of POST /api/lease.
	LeaseRequest struct {
		Worker string `json:"worker"`
		Max    int    `json:"max"`
	}
	// LeaseResponse carries the granted work units (possibly empty).
	LeaseResponse struct {
		Leases []Lease `json:"leases"`
	}
	// RenewRequest is the body of POST /api/renew — the worker's
	// heartbeat.
	RenewRequest struct {
		Worker string   `json:"worker"`
		Leases []string `json:"leases"`
	}
	// RenewResponse reports the leases the coordinator no longer honors.
	RenewResponse struct {
		Lost []string `json:"lost,omitempty"`
	}
	// ReleaseRequest is the body of POST /api/release — the graceful
	// half of a worker drain.
	ReleaseRequest struct {
		Worker string   `json:"worker"`
		Leases []string `json:"leases"`
	}
	// CompleteResponse reports whether the completion was the point's
	// first (false = idempotent duplicate, dropped).
	CompleteResponse struct {
		Accepted bool `json:"accepted"`
	}
)

// Server exposes a Coordinator over HTTP and sweeps expired leases on a
// timer so abandoned work requeues even while no client is talking.
type Server struct {
	coord  *Coordinator
	srv    *http.Server
	addr   string
	done   chan struct{}
	stopGC chan struct{}
}

// NewServer binds addr (host:port; 127.0.0.1:0 for an ephemeral port)
// and starts serving the coordinator's API:
//
//	POST /api/jobs          submit a sweep spec        → SubmitResponse
//	GET  /api/jobs          list job IDs               → []string
//	GET  /api/jobs/{id}     job progress               → JobStatus
//	GET  /api/jobs/{id}/csv completed job's CSV        → text/csv
//	POST /api/lease         acquire work units         → LeaseResponse
//	POST /api/renew         heartbeat leases           → RenewResponse
//	POST /api/release       return unstarted leases    → 204
//	POST /api/complete      report a finished point    → CompleteResponse
//	GET  /healthz           liveness                   → "ok"
//	GET  /metrics           Prometheus text (when metrics were wired)
func NewServer(addr string, c *Coordinator, m *probe.Metrics) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("sweepsvc: listen: %w", err)
	}
	s := &Server{
		coord:  c,
		addr:   ln.Addr().String(),
		done:   make(chan struct{}),
		stopGC: make(chan struct{}),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/api/jobs", s.handleJobs)
	mux.HandleFunc("/api/jobs/", s.handleJob)
	mux.HandleFunc("/api/lease", s.handleLease)
	mux.HandleFunc("/api/renew", s.handleRenew)
	mux.HandleFunc("/api/release", s.handleRelease)
	mux.HandleFunc("/api/complete", s.handleComplete)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	if m != nil {
		mux.Handle("/metrics", m.Handler())
	}
	s.srv = &http.Server{Handler: mux}
	go func() {
		defer close(s.done)
		s.srv.Serve(ln) //nolint:errcheck // ErrServerClosed on shutdown
	}()
	// Expiry ticker at a quarter of the TTL: fine enough that a dead
	// worker's points requeue promptly, coarse enough to stay invisible
	// in profiles.  Lazy expiry inside the coordinator remains the
	// correctness backstop.
	go func() {
		t := time.NewTicker(c.opts.LeaseTTL / 4)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				c.ExpireLeases()
			case <-s.stopGC:
				return
			}
		}
	}()
	return s, nil
}

// Addr returns the server's bound address (host:port).
func (s *Server) Addr() string { return s.addr }

// Close stops the listener and the expiry ticker.  The coordinator
// (and its WAL) stays open — the caller owns it, which is what lets a
// driver bounce the HTTP layer without touching the journal.
func (s *Server) Close() error {
	close(s.stopGC)
	err := s.srv.Close()
	<-s.done
	return err
}

// decode parses a JSON request body into v, answering 400 on failure.
func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

// reply writes v as JSON.
func reply(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v) //nolint:errcheck // client gone
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var req SubmitRequest
		if !decode(w, r, &req) {
			return
		}
		id, points, err := s.coord.SubmitJob(req.Spec)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		reply(w, SubmitResponse{Job: id, Points: points})
	case http.MethodGet:
		reply(w, s.coord.Jobs())
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/api/jobs/")
	if id, ok := strings.CutSuffix(rest, "/rows"); ok {
		rows, err := s.coord.Rows(id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		reply(w, rows)
		return
	}
	if id, ok := strings.CutSuffix(rest, "/csv"); ok {
		csv, err := s.coord.CSV(id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		w.Header().Set("Content-Type", "text/csv")
		fmt.Fprint(w, csv) //nolint:errcheck // client gone
		return
	}
	st, err := s.coord.Status(rest)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	reply(w, st)
}

func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !decode(w, r, &req) {
		return
	}
	leases, err := s.coord.AcquireLeases(req.Worker, req.Max)
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	reply(w, LeaseResponse{Leases: leases})
}

func (s *Server) handleRenew(w http.ResponseWriter, r *http.Request) {
	var req RenewRequest
	if !decode(w, r, &req) {
		return
	}
	reply(w, RenewResponse{Lost: s.coord.RenewLeases(req.Worker, req.Leases)})
}

func (s *Server) handleRelease(w http.ResponseWriter, r *http.Request) {
	var req ReleaseRequest
	if !decode(w, r, &req) {
		return
	}
	s.coord.ReleaseLeases(req.Worker, req.Leases)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	var comp Completion
	if !decode(w, r, &comp) {
		return
	}
	accepted, err := s.coord.CompletePoint(comp)
	if err != nil {
		// Unknown job/point: the worker is talking to a coordinator that
		// never journaled this job (operator error) — nothing to retry.
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	reply(w, CompleteResponse{Accepted: accepted})
}
